package apknn

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/fpga"
	"repro/internal/gpu"
)

// The fixed-function accelerator baselines of §IV-C. Both compute exact
// results — bit-identical to the CPU scan, including the shared
// (distance, ID) tie-break — and accumulate their calibrated performance
// models as ModeledTime.
func init() {
	mustRegister(backendFunc{GPU, func(ds *Dataset, cfg Config) (Index, error) {
		gcfg := gpu.TitanX()
		if cfg.GPU == TegraK1 {
			gcfg = gpu.TegraK1()
		}
		if cfg.Workers > 0 {
			gcfg.Workers = cfg.Workers
		}
		dev, err := gpu.New(gcfg)
		if err != nil {
			return nil, err
		}
		return &gpuIndex{ds: ds, dev: dev, name: gcfg.Name}, nil
	}})
	mustRegister(backendFunc{FPGA, func(ds *Dataset, cfg Config) (Index, error) {
		acc, err := fpga.New(fpga.DefaultConfig())
		if err != nil {
			return nil, err
		}
		return &fpgaIndex{ds: ds, acc: acc}, nil
	}})
}

// gpuIndex serves the calibrated CUDA-kNN model.
type gpuIndex struct {
	ds      *Dataset
	dev     *gpu.Device
	name    string
	ctrs    counters
	modeled atomic.Int64 // nanoseconds
	pairs   atomic.Int64
}

func (g *gpuIndex) Search(ctx context.Context, queries []Vector, k int) ([][]Neighbor, error) {
	res, err := g.dev.Search(ctx, g.ds, queries, k)
	if err != nil {
		return nil, err
	}
	g.ctrs.countSearch(len(queries))
	g.modeled.Add(int64(res.Time))
	g.pairs.Add(int64(g.ds.Len()) * int64(len(queries)))
	return res.Neighbors, nil
}

func (g *gpuIndex) SearchBatch(ctx context.Context, batches [][]Vector, k int) <-chan BatchResult {
	return sequentialBatches(ctx, batches, k, g.Search)
}

func (g *gpuIndex) ModeledTime() time.Duration { return time.Duration(g.modeled.Load()) }

func (g *gpuIndex) Stats() Stats {
	st := g.ctrs.snapshot(GPU)
	st.Boards = 1
	st.CandidatesScanned = g.pairs.Load()
	return st
}

// fpgaIndex serves the cycle-level Kintex-7 accelerator model.
type fpgaIndex struct {
	ds      *Dataset
	acc     *fpga.Accelerator
	ctrs    counters
	modeled atomic.Int64 // nanoseconds
	cycles  atomic.Int64
	pairs   atomic.Int64
}

func (f *fpgaIndex) Search(ctx context.Context, queries []Vector, k int) ([][]Neighbor, error) {
	res, err := f.acc.Search(ctx, f.ds, queries, k)
	if err != nil {
		return nil, err
	}
	f.ctrs.countSearch(len(queries))
	f.modeled.Add(int64(res.Time))
	f.cycles.Add(int64(res.Cycles))
	f.pairs.Add(int64(f.ds.Len()) * int64(len(queries)))
	return res.Neighbors, nil
}

func (f *fpgaIndex) SearchBatch(ctx context.Context, batches [][]Vector, k int) <-chan BatchResult {
	return sequentialBatches(ctx, batches, k, f.Search)
}

func (f *fpgaIndex) ModeledTime() time.Duration { return time.Duration(f.modeled.Load()) }

func (f *fpgaIndex) Stats() Stats {
	st := f.ctrs.snapshot(FPGA)
	st.Boards = 1
	// The accelerator's streamed cycles play the symbol-cycle role here.
	st.SymbolsStreamed = f.cycles.Load()
	st.CandidatesScanned = f.pairs.Load()
	return st
}
