package apknn_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestSmokeBinaries compiles and runs every command and the quickstart
// examples end to end with tiny inputs, asserting the exit status and the
// key lines of their output — the check that the user-facing entry points
// actually work, not just compile.
func TestSmokeBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests build binaries; skipped in -short")
	}
	bindir := t.TempDir()
	cases := []struct {
		name string
		pkg  string
		args []string
		want []string
	}{
		{
			name: "apknn",
			pkg:  "./cmd/apknn",
			args: []string{"-n", "64", "-dim", "16", "-q", "2", "-k", "2", "-fast"},
			want: []string{
				"dataset: 64 vectors x 16 bits, 1 board configuration(s)",
				"AP result agreement with exact CPU scan: 2/2 queries",
			},
		},
		{
			name: "apknn-sim-sharded",
			pkg:  "./cmd/apknn",
			args: []string{"-n", "40", "-dim", "16", "-q", "2", "-k", "2", "-capacity", "10", "-boards", "2"},
			want: []string{
				"4 board configuration(s)",
				"across 2 board(s)",
				"AP result agreement with exact CPU scan: 2/2 queries",
				"modeled ap time",
			},
		},
		{
			name: "apknn-backend-gpu",
			pkg:  "./cmd/apknn",
			args: []string{"-n", "64", "-dim", "16", "-q", "2", "-k", "2", "-backend", "gpu", "-gpu", "tegrak1"},
			want: []string{
				"AP result agreement with exact CPU scan: 2/2 queries",
				"modeled gpu time",
			},
		},
		{
			name: "apknn-backend-approx",
			pkg:  "./cmd/apknn",
			args: []string{"-n", "200", "-dim", "16", "-q", "2", "-k", "2", "-backend", "approx", "-index", "kmeans", "-capacity", "32"},
			want: []string{
				"on backend \"approx\"",
				"recall@2 vs exact CPU scan:",
			},
		},
		{
			name: "apbench",
			pkg:  "./cmd/apbench",
			args: []string{"-table", "1"},
			want: []string{"Table I: evaluated platforms", "Automata Processor"},
		},
		{
			name: "apbench-backends",
			pkg:  "./cmd/apbench",
			args: []string{"-exp", "backends"},
			want: []string{
				"Cross-platform backends",
				"ap (Gen 2 sim)",
				"fpga (Kintex-7 model)",
				"approx (MPLSH)",
			},
		},
		{
			name: "apcompile",
			pkg:  "./cmd/apcompile",
			args: []string{"-n", "8", "-dim", "16", "-verify"},
			want: []string{
				"design: 8 vectors x 16 dims", "STEs",
				"verify: AP backend matches exact scan",
			},
		},
		{
			name: "aptrace",
			pkg:  "./cmd/aptrace",
			args: nil,
			want: []string{"Fig. 3 trace: vector=1011 query=1001"},
		},
		{
			name: "apknn-timeout",
			pkg:  "./cmd/apknn",
			args: []string{"-n", "64", "-dim", "16", "-q", "2", "-k", "2", "-fast", "-timeout", "30s"},
			want: []string{"AP result agreement with exact CPU scan: 2/2 queries"},
		},
		{
			name: "apbench-serve",
			pkg:  "./cmd/apbench",
			args: []string{"-exp", "serve"},
			want: []string{
				"HTTP serving: dynamic micro-batching",
				"fleet QPS (modeled)",
			},
		},
		{
			name: "apbench-churn",
			pkg:  "./cmd/apbench",
			args: []string{"-exp", "churn", "-quick"},
			want: []string{
				"Live index churn: insert:query ratio x compaction threshold",
				"modeled QPS = queries / modeled platform time",
				"Durability: WAL append / fsync cost and recovery vs log length",
			},
		},
		{
			name: "live",
			pkg:  "./examples/live",
			args: nil,
			want: []string{
				"at distance 0",
				"still returned: false",
				"generation 1",
			},
		},
		{
			name: "apbench-cluster",
			pkg:  "./cmd/apbench",
			args: []string{"-exp", "cluster"},
			want: []string{
				"Cluster scatter-gather: shards x replicas x hedging",
				"cluster QPS (modeled) = queries / max-across-nodes modeled time",
			},
		},
		{
			name: "cluster",
			pkg:  "./examples/cluster",
			args: nil,
			want: []string{
				"scatter-gather vs single-index exact scan: 8/8 queries byte-identical",
				"after the kill: 8/8 queries still byte-identical",
				"3/4 replicas healthy",
			},
		},
		{
			name: "quickstart",
			pkg:  "./examples/quickstart",
			args: nil,
			want: []string{"board configurations used: 1", "modeled AP execution time"},
		},
		{
			name: "sharded",
			pkg:  "./examples/sharded",
			args: nil,
			want: []string{"sharded across 4 boards", "modeled speedup"},
		},
		{
			name: "serve",
			pkg:  "./examples/serve",
			args: nil,
			want: []string{
				"0 mismatches vs exact scan",
				"mean realized batch",
				"drained and shut down cleanly",
			},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			bin := filepath.Join(bindir, c.name)
			build := exec.Command("go", "build", "-o", bin, c.pkg)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build %s: %v\n%s", c.pkg, err, out)
			}
			out, err := exec.Command(bin, c.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", c.name, c.args, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q:\n%s", c.name, want, out)
				}
			}
		})
	}
}

// TestSmokeAptrace runs the cycle-trace tool in both its shapes — the
// single-vector Fig. 3 macro and the two-vector Fig. 4 layout — and asserts
// the trace header, the per-cycle rows, and the report line that names the
// cycle where the inverted Hamming distance fires.
func TestSmokeAptrace(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests build binaries; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "aptrace")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/aptrace").CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/aptrace: %v\n%s", err, out)
	}
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "fig3",
			args: nil,
			want: []string{
				"Fig. 3 trace: vector=1011 query=1001",
				"t= 1 sym=SOF",
				"sym=EOF",
				"report: vector 0 at cycle 8",
				"Hamming distance 1",
			},
		},
		{
			name: "fig4",
			args: []string{"-two"},
			want: []string{
				"Fig. 4 trace: A=1011 B=0000 query=1001",
				"v1.ihd=",
				"report: vector 0",
				"report: vector 1",
			},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			out, err := exec.Command(bin, c.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("aptrace %v: %v\n%s", c.args, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("aptrace %v output missing %q:\n%s", c.args, want, out)
				}
			}
		})
	}
}

// TestSmokeDatasetSaveLoad round-trips a dataset through the binary format
// via the apknn CLI: -save one run, -load the next, same search results.
func TestSmokeDatasetSaveLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests build binaries; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "apknn")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/apknn").CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/apknn: %v\n%s", err, out)
	}
	path := filepath.Join(dir, "ds.apds")
	out1, err := exec.Command(bin, "-n", "128", "-dim", "16", "-q", "2", "-k", "2", "-fast", "-save", path).CombinedOutput()
	if err != nil {
		t.Fatalf("apknn -save: %v\n%s", err, out1)
	}
	out2, err := exec.Command(bin, "-q", "2", "-k", "2", "-fast", "-load", path).CombinedOutput()
	if err != nil {
		t.Fatalf("apknn -load: %v\n%s", err, out2)
	}
	for _, out := range [][]byte{out1, out2} {
		if !strings.Contains(string(out), "dataset: 128 vectors x 16 bits") {
			t.Fatalf("unexpected dataset line:\n%s", out)
		}
		if !strings.Contains(string(out), "agreement with exact CPU scan: 2/2") {
			t.Fatalf("search disagreement:\n%s", out)
		}
	}
}

// TestSmokeApserveLive boots apserve -live and drives the mutation
// lifecycle over real HTTP: insert a vector, find it at distance zero,
// delete it, and confirm it stops appearing.
// logAddr extracts the addr= attribute from a structured (slog text) boot
// line whose msg= matches, "" for any other line — how the smoke tests learn
// the port a ":0" listener actually bound.
func logAddr(line, msg string) string {
	if !strings.Contains(line, "msg="+msg) {
		return ""
	}
	i := strings.Index(line, "addr=")
	if i < 0 {
		return ""
	}
	return strings.Fields(line[i+len("addr="):])[0]
}

func TestSmokeApserveLive(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests build binaries; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "apserve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/apserve").CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/apserve: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-n", "1024", "-dim", "16",
		"-live", "-compact-threshold", "4", "-compact-interval", "0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cmd.Process.Kill() }()
	var addr string
	logs := &bytes.Buffer{}
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		logs.WriteString(line + "\n")
		if a := logAddr(line, "serving"); a != "" {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatalf("apserve never logged its address:\n%s", logs.String())
	}
	go func() {
		for sc.Scan() {
		}
	}()

	base := "http://" + addr
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	post := func(path, body string) (int, map[string]interface{}) {
		t.Helper()
		req, _ := http.NewRequestWithContext(ctx, "POST", base+path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var decoded map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
			t.Fatalf("POST %s: bad JSON: %v", path, err)
		}
		return resp.StatusCode, decoded
	}

	vector := strings.Repeat("10", 8)
	code, ins := post("/v1/insert", fmt.Sprintf(`{"vector":%q}`, vector))
	if code != 200 {
		t.Fatalf("insert: HTTP %d: %v", code, ins)
	}
	id := int(ins["id"].(float64))
	if id != 1024 {
		t.Fatalf("inserted id = %d, want 1024", id)
	}
	found := func() bool {
		t.Helper()
		code, res := post("/v1/search", fmt.Sprintf(`{"query":%q,"k":3}`, vector))
		if code != 200 {
			t.Fatalf("search: HTTP %d: %v", code, res)
		}
		for _, nb := range res["neighbors"].([]interface{}) {
			m := nb.(map[string]interface{})
			if int(m["id"].(float64)) == id {
				if m["dist"].(float64) != 0 {
					t.Fatalf("inserted vector at distance %v", m["dist"])
				}
				return true
			}
		}
		return false
	}
	if !found() {
		t.Fatal("inserted vector not returned")
	}
	if code, del := post("/v1/delete", fmt.Sprintf(`{"id":%d}`, id)); code != 200 {
		t.Fatalf("delete: HTTP %d: %v", code, del)
	}
	if found() {
		t.Fatal("deleted vector still returned")
	}
	if code, del := post("/v1/delete", fmt.Sprintf(`{"id":%d}`, id)); code != 404 {
		t.Fatalf("double delete: HTTP %d: %v", code, del)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("apserve -live exited dirty: %v\n%s", err, logs.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("apserve -live did not drain after SIGTERM\n%s", logs.String())
	}
}

// TestSmokeApserve boots the real apserve binary on an ephemeral port,
// exercises every endpoint over real HTTP, then sends SIGTERM and asserts
// a clean drain — the full serving lifecycle, binary edition.
func TestSmokeApserve(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests build binaries; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "apserve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/apserve").CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/apserve: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-n", "2048", "-dim", "16", "-batch-window", "2ms")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cmd.Process.Kill() }()

	// The startup log names the bound address; everything after is drained
	// in the background so the server never blocks on a full pipe.
	var addr string
	logs := &bytes.Buffer{}
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		logs.WriteString(line + "\n")
		if a := logAddr(line, "serving"); a != "" {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatalf("apserve never logged its address:\n%s", logs.String())
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc.Scan() {
			logs.WriteString(sc.Text() + "\n")
		}
	}()

	base := "http://" + addr
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	get := func(path string, into interface{}) {
		t.Helper()
		req, _ := http.NewRequestWithContext(ctx, "GET", base+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
	}
	var health struct {
		Status  string `json:"status"`
		Backend string `json:"backend"`
	}
	get("/healthz", &health)
	if health.Status != "ok" || health.Backend != "sharded" {
		t.Fatalf("healthz = %+v", health)
	}

	query := strings.Repeat("10", 8) // 16-dim bit string
	body := fmt.Sprintf(`{"query":%q,"k":3}`, query)
	req, _ := http.NewRequestWithContext(ctx, "POST", base+"/v1/search", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var search struct {
		Neighbors []struct {
			ID   int `json:"id"`
			Dist int `json:"dist"`
		} `json:"neighbors"`
		FlushSize int `json:"flush_size"`
	}
	err = json.NewDecoder(resp.Body).Decode(&search)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("POST /v1/search: HTTP %d, decode err %v", resp.StatusCode, err)
	}
	if len(search.Neighbors) != 3 || search.FlushSize < 1 {
		t.Fatalf("search response = %+v", search)
	}

	var stats struct {
		Serving struct {
			Requests int64 `json:"requests"`
			Flushes  int64 `json:"flushes"`
		} `json:"serving"`
		ModeledTimeNS int64 `json:"modeled_time_ns"`
	}
	get("/v1/stats", &stats)
	if stats.Serving.Requests != 1 || stats.Serving.Flushes != 1 || stats.ModeledTimeNS <= 0 {
		t.Fatalf("stats = %+v", stats)
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	// Finish reading stderr before Wait: Wait closes the pipe and would
	// race the drain goroutine out of the final log lines.
	go func() { <-drained; done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("apserve exited dirty: %v\n%s", err, logs.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("apserve did not drain after SIGTERM\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), "msg=stopped") || !strings.Contains(logs.String(), "requests=1") {
		t.Errorf("final drain log missing served-requests line:\n%s", logs.String())
	}
}

// TestSmokeApserveCrashRecovery is the durability lifecycle, binary
// edition: an apserve -live -data-dir node and a never-crashed mirror
// receive identical churn over HTTP, the durable node is kill -9'd with no
// chance to flush or drain, and its restart over the same directory must
// recover the exact pre-crash index — same live count, same next global ID,
// byte-identical search results against the mirror.
func TestSmokeApserveCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests build binaries; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "apserve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/apserve").CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/apserve: %v\n%s", err, out)
	}
	dataDir := filepath.Join(dir, "state")
	// A low compaction threshold so the churn below crosses snapshot
	// boundaries: recovery then exercises snapshot-load plus log-replay, not
	// just replay of a virgin log.
	nodeArgs := []string{"-n", "256", "-dim", "16", "-seed", "7",
		"-live", "-compact-threshold", "8", "-compact-interval", "0"}
	durArgs := append(nodeArgs, "-data-dir", dataDir, "-fsync", "always")
	durAddr, durCmd := startServeNode(t, bin, durArgs...)
	mirAddr, _ := startServeNode(t, bin, nodeArgs...)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	post := func(addr, path, body string) (int, map[string]interface{}) {
		t.Helper()
		req, _ := http.NewRequestWithContext(ctx, "POST", "http://"+addr+path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST %s%s: %v", addr, path, err)
		}
		defer resp.Body.Close()
		var decoded map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
			t.Fatalf("POST %s%s: bad JSON: %v", addr, path, err)
		}
		return resp.StatusCode, decoded
	}
	// Identical churn on both nodes: 24 inserts with a deterministic bit
	// pattern, every third pre-seeded vector of the first 24 deleted.
	both := []string{durAddr, mirAddr}
	for i := 0; i < 24; i++ {
		vec := fmt.Sprintf("%016b", (i*2654435761)%(1<<16))
		for _, addr := range both {
			code, res := post(addr, "/v1/insert", fmt.Sprintf(`{"vector":%q}`, vec))
			if code != 200 {
				t.Fatalf("insert %d on %s: HTTP %d: %v", i, addr, code, res)
			}
			if id := int(res["id"].(float64)); id != 256+i {
				t.Fatalf("insert %d on %s: id %d, want %d", i, addr, id, 256+i)
			}
		}
	}
	for id := 0; id < 24; id += 3 {
		for _, addr := range both {
			if code, res := post(addr, "/v1/delete", fmt.Sprintf(`{"id":%d}`, id)); code != 200 {
				t.Fatalf("delete %d on %s: HTTP %d: %v", id, addr, code, res)
			}
		}
	}

	// kill -9: no drain, no flush, no goodbye.
	if err := durCmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = durCmd.Wait()

	// Reboot over the same directory. The synthetic seed flags are repeated
	// but must be ignored: the directory is authoritative.
	backAddr, _ := startServeNode(t, bin, durArgs...)

	var stats struct {
		Backend struct {
			Durability *struct {
				Recovered       bool  `json:"recovered"`
				ReplayedRecords int64 `json:"replayed_records"`
			} `json:"durability"`
		} `json:"backend"`
	}
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://"+backAddr+"/v1/stats", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil || stats.Backend.Durability == nil {
		t.Fatalf("restarted stats missing durability block (err %v)", err)
	}
	if !stats.Backend.Durability.Recovered {
		t.Fatalf("restart did not report recovery: %+v", stats.Backend.Durability)
	}

	// Probe searches must be byte-identical to the never-crashed mirror.
	for qi := 0; qi < 4; qi++ {
		query := fmt.Sprintf("%016b", (qi*40503+11)%(1<<16))
		body := fmt.Sprintf(`{"query":%q,"k":6}`, query)
		code1, got := post(backAddr, "/v1/search", body)
		code2, want := post(mirAddr, "/v1/search", body)
		if code1 != 200 || code2 != 200 {
			t.Fatalf("probe %d: HTTP %d / %d", qi, code1, code2)
		}
		gotN, wantN := got["neighbors"].([]interface{}), want["neighbors"].([]interface{})
		if len(gotN) != len(wantN) {
			t.Fatalf("probe %d: %d neighbors, mirror has %d", qi, len(gotN), len(wantN))
		}
		for j := range gotN {
			g, w := gotN[j].(map[string]interface{}), wantN[j].(map[string]interface{})
			if g["id"] != w["id"] || g["dist"] != w["dist"] {
				t.Fatalf("probe %d rank %d: recovered (%v,%v), mirror (%v,%v)",
					qi, j, g["id"], g["dist"], w["id"], w["dist"])
			}
		}
	}
	// The ID watermark survived: the next insert on both nodes must assign
	// the same global ID even though deletes shrank the live count.
	vec := strings.Repeat("01", 8)
	_, insGot := post(backAddr, "/v1/insert", fmt.Sprintf(`{"vector":%q}`, vec))
	_, insWant := post(mirAddr, "/v1/insert", fmt.Sprintf(`{"vector":%q}`, vec))
	if insGot["id"] != insWant["id"] {
		t.Fatalf("post-recovery insert id %v, mirror %v", insGot["id"], insWant["id"])
	}
}

// startServeNode boots one apserve binary on an ephemeral port and returns
// its bound address and process handle (for mid-test kills); the process
// is also killed via t.Cleanup.
func startServeNode(t *testing.T, bin string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill() })
	logs := &bytes.Buffer{}
	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		logs.WriteString(line + "\n")
		if a := logAddr(line, "serving"); a != "" {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatalf("%v never logged its address:\n%s", cmd.Args, logs.String())
	}
	go func() {
		for sc.Scan() {
		}
	}()
	return addr, cmd
}

// TestSmokeAprouter is the cluster lifecycle, binary edition: three apserve
// nodes (two shards, the first replicated), an aprouter resolving shard
// bases by probing them, searches and tail-shard inserts through the
// router, a replica killed mid-run with service intact, then a SIGTERM
// drain.
func TestSmokeAprouter(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests build binaries; skipped in -short")
	}
	dir := t.TempDir()
	apserveBin := filepath.Join(dir, "apserve")
	aprouterBin := filepath.Join(dir, "aprouter")
	for pkg, bin := range map[string]string{"./cmd/apserve": apserveBin, "./cmd/aprouter": aprouterBin} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	// Shard 0 is replicated: same seed, same size, identical data.
	nodeArgs := []string{"-n", "1024", "-dim", "16", "-live", "-compact-interval", "0"}
	shard0a, _ := startServeNode(t, apserveBin, append(nodeArgs, "-seed", "100", "-node-id", "shard0-a")...)
	shard0b, shard0bCmd := startServeNode(t, apserveBin, append(nodeArgs, "-seed", "100", "-node-id", "shard0-b")...)
	shard1, _ := startServeNode(t, apserveBin, append(nodeArgs, "-seed", "200", "-node-id", "shard1-a")...)

	manifest := filepath.Join(dir, "cluster.json")
	router := exec.Command(aprouterBin, "-addr", "127.0.0.1:0",
		"-shards", fmt.Sprintf("%s,%s;%s", shard0a, shard0b, shard1),
		"-hedge", "5ms", "-probe-interval", "200ms", "-write-manifest", manifest)
	rerr, err := router.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := router.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = router.Process.Kill() }()
	// rlogs is appended by the drain goroutine while failure paths read it,
	// so every access holds the mutex.
	var (
		rlogsMu sync.Mutex
		rlogs   bytes.Buffer
	)
	logLine := func(line string) {
		rlogsMu.Lock()
		rlogs.WriteString(line + "\n")
		rlogsMu.Unlock()
	}
	logText := func() string {
		rlogsMu.Lock()
		defer rlogsMu.Unlock()
		return rlogs.String()
	}
	rsc := bufio.NewScanner(rerr)
	var raddr string
	for rsc.Scan() {
		line := rsc.Text()
		logLine(line)
		if a := logAddr(line, "routing"); a != "" {
			raddr = a
			break
		}
	}
	if raddr == "" {
		t.Fatalf("aprouter never logged its address:\n%s", logText())
	}
	go func() {
		for rsc.Scan() {
			logLine(rsc.Text())
		}
	}()

	base := "http://" + raddr
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	call := func(method, path, body string) (int, map[string]interface{}) {
		t.Helper()
		var rd *strings.Reader
		if body == "" {
			rd = strings.NewReader("")
		} else {
			rd = strings.NewReader(body)
		}
		req, _ := http.NewRequestWithContext(ctx, method, base+path, rd)
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		var decoded map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
			t.Fatalf("%s %s: bad JSON: %v", method, path, err)
		}
		return resp.StatusCode, decoded
	}

	// The recorded manifest carries the probed bases: 0 and 1024.
	mbuf, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var mjson struct {
		Shards []struct {
			Base     int      `json:"base"`
			Replicas []string `json:"replicas"`
		} `json:"shards"`
		Dim int `json:"dim"`
	}
	if err := json.Unmarshal(mbuf, &mjson); err != nil {
		t.Fatal(err)
	}
	if len(mjson.Shards) != 2 || mjson.Shards[0].Base != 0 || mjson.Shards[1].Base != 1024 ||
		len(mjson.Shards[0].Replicas) != 2 || mjson.Dim != 16 {
		t.Fatalf("recorded manifest = %s", mbuf)
	}

	query := strings.Repeat("10", 8)
	if code, res := call("GET", "/healthz", ""); code != 200 {
		t.Fatalf("healthz: HTTP %d: %v", code, res)
	}
	// The probed manifest dim lets the router refuse a wrong-length query
	// locally instead of scattering it.
	if code, res := call("POST", "/v1/search", `{"query":"1010","k":5}`); code != 400 {
		t.Fatalf("wrong-dim search: HTTP %d: %v, want 400", code, res)
	}
	code, res := call("POST", "/v1/search", fmt.Sprintf(`{"query":%q,"k":5}`, query))
	if code != 200 || len(res["neighbors"].([]interface{})) != 5 {
		t.Fatalf("search: HTTP %d: %v", code, res)
	}
	// Inserts route to the tail shard (one replica): global ID = 1024+1024.
	code, ins := call("POST", "/v1/insert", fmt.Sprintf(`{"vector":%q}`, query))
	if code != 200 || int(ins["id"].(float64)) != 2048 || int(ins["acked"].(float64)) != 1 {
		t.Fatalf("insert: HTTP %d: %v", code, ins)
	}
	code, res = call("POST", "/v1/search", fmt.Sprintf(`{"query":%q,"k":1}`, query))
	if code != 200 {
		t.Fatalf("search after insert: HTTP %d: %v", code, res)
	}
	if nb := res["neighbors"].([]interface{})[0].(map[string]interface{}); int(nb["id"].(float64)) != 2048 || nb["dist"].(float64) != 0 {
		t.Fatalf("inserted vector not first: %v", res)
	}

	// Kill the shard-0 replica; the router must keep answering.
	if err := shard0bCmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond) // a probe pass ejects it
	for i := 0; i < 3; i++ {
		code, res = call("POST", "/v1/search", fmt.Sprintf(`{"query":%q,"k":5}`, query))
		if code != 200 || len(res["neighbors"].([]interface{})) != 5 {
			t.Fatalf("search %d after replica death: HTTP %d: %v", i, code, res)
		}
	}
	code, st := call("GET", "/v1/stats", "")
	if code != 200 {
		t.Fatalf("stats: HTTP %d: %v", code, st)
	}
	cl := st["cluster"].(map[string]interface{})
	if cl["healthy"].(float64) != 2 || cl["replicas"].(float64) != 3 {
		t.Fatalf("cluster stats after kill: %v", cl)
	}

	if err := router.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- router.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("aprouter exited dirty: %v\n%s", err, logText())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("aprouter did not drain after SIGTERM\n%s", logText())
	}
}
