package apknn_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSmokeBinaries compiles and runs every command and the quickstart
// examples end to end with tiny inputs, asserting the exit status and the
// key lines of their output — the check that the user-facing entry points
// actually work, not just compile.
func TestSmokeBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests build binaries; skipped in -short")
	}
	bindir := t.TempDir()
	cases := []struct {
		name string
		pkg  string
		args []string
		want []string
	}{
		{
			name: "apknn",
			pkg:  "./cmd/apknn",
			args: []string{"-n", "64", "-dim", "16", "-q", "2", "-k", "2", "-fast"},
			want: []string{
				"dataset: 64 vectors x 16 bits, 1 board configuration(s)",
				"AP result agreement with exact CPU scan: 2/2 queries",
			},
		},
		{
			name: "apknn-sim-sharded",
			pkg:  "./cmd/apknn",
			args: []string{"-n", "40", "-dim", "16", "-q", "2", "-k", "2", "-capacity", "10", "-boards", "2"},
			want: []string{
				"4 board configuration(s)",
				"across 2 board(s)",
				"AP result agreement with exact CPU scan: 2/2 queries",
				"modeled ap time",
			},
		},
		{
			name: "apknn-backend-gpu",
			pkg:  "./cmd/apknn",
			args: []string{"-n", "64", "-dim", "16", "-q", "2", "-k", "2", "-backend", "gpu", "-gpu", "tegrak1"},
			want: []string{
				"AP result agreement with exact CPU scan: 2/2 queries",
				"modeled gpu time",
			},
		},
		{
			name: "apknn-backend-approx",
			pkg:  "./cmd/apknn",
			args: []string{"-n", "200", "-dim", "16", "-q", "2", "-k", "2", "-backend", "approx", "-index", "kmeans", "-capacity", "32"},
			want: []string{
				"on backend \"approx\"",
				"recall@2 vs exact CPU scan:",
			},
		},
		{
			name: "apbench",
			pkg:  "./cmd/apbench",
			args: []string{"-table", "1"},
			want: []string{"Table I: evaluated platforms", "Automata Processor"},
		},
		{
			name: "apbench-backends",
			pkg:  "./cmd/apbench",
			args: []string{"-exp", "backends"},
			want: []string{
				"Cross-platform backends",
				"ap (Gen 2 sim)",
				"fpga (Kintex-7 model)",
				"approx (MPLSH)",
			},
		},
		{
			name: "apcompile",
			pkg:  "./cmd/apcompile",
			args: []string{"-n", "8", "-dim", "16", "-verify"},
			want: []string{
				"design: 8 vectors x 16 dims", "STEs",
				"verify: AP backend matches exact scan",
			},
		},
		{
			name: "aptrace",
			pkg:  "./cmd/aptrace",
			args: nil,
			want: []string{"Fig. 3 trace: vector=1011 query=1001"},
		},
		{
			name: "apknn-timeout",
			pkg:  "./cmd/apknn",
			args: []string{"-n", "64", "-dim", "16", "-q", "2", "-k", "2", "-fast", "-timeout", "30s"},
			want: []string{"AP result agreement with exact CPU scan: 2/2 queries"},
		},
		{
			name: "apbench-serve",
			pkg:  "./cmd/apbench",
			args: []string{"-exp", "serve"},
			want: []string{
				"HTTP serving: dynamic micro-batching",
				"fleet QPS (modeled)",
			},
		},
		{
			name: "apbench-churn",
			pkg:  "./cmd/apbench",
			args: []string{"-exp", "churn"},
			want: []string{
				"Live index churn: insert:query ratio x compaction threshold",
				"modeled QPS = queries / modeled platform time",
			},
		},
		{
			name: "live",
			pkg:  "./examples/live",
			args: nil,
			want: []string{
				"at distance 0",
				"still returned: false",
				"generation 1",
			},
		},
		{
			name: "quickstart",
			pkg:  "./examples/quickstart",
			args: nil,
			want: []string{"board configurations used: 1", "modeled AP execution time"},
		},
		{
			name: "sharded",
			pkg:  "./examples/sharded",
			args: nil,
			want: []string{"sharded across 4 boards", "modeled speedup"},
		},
		{
			name: "serve",
			pkg:  "./examples/serve",
			args: nil,
			want: []string{
				"0 mismatches vs exact scan",
				"mean realized batch",
				"drained and shut down cleanly",
			},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			bin := filepath.Join(bindir, c.name)
			build := exec.Command("go", "build", "-o", bin, c.pkg)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build %s: %v\n%s", c.pkg, err, out)
			}
			out, err := exec.Command(bin, c.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", c.name, c.args, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q:\n%s", c.name, want, out)
				}
			}
		})
	}
}

// TestSmokeDatasetSaveLoad round-trips a dataset through the binary format
// via the apknn CLI: -save one run, -load the next, same search results.
func TestSmokeDatasetSaveLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests build binaries; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "apknn")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/apknn").CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/apknn: %v\n%s", err, out)
	}
	path := filepath.Join(dir, "ds.apds")
	out1, err := exec.Command(bin, "-n", "128", "-dim", "16", "-q", "2", "-k", "2", "-fast", "-save", path).CombinedOutput()
	if err != nil {
		t.Fatalf("apknn -save: %v\n%s", err, out1)
	}
	out2, err := exec.Command(bin, "-q", "2", "-k", "2", "-fast", "-load", path).CombinedOutput()
	if err != nil {
		t.Fatalf("apknn -load: %v\n%s", err, out2)
	}
	for _, out := range [][]byte{out1, out2} {
		if !strings.Contains(string(out), "dataset: 128 vectors x 16 bits") {
			t.Fatalf("unexpected dataset line:\n%s", out)
		}
		if !strings.Contains(string(out), "agreement with exact CPU scan: 2/2") {
			t.Fatalf("search disagreement:\n%s", out)
		}
	}
}

// TestSmokeApserveLive boots apserve -live and drives the mutation
// lifecycle over real HTTP: insert a vector, find it at distance zero,
// delete it, and confirm it stops appearing.
func TestSmokeApserveLive(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests build binaries; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "apserve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/apserve").CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/apserve: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-n", "1024", "-dim", "16",
		"-live", "-compact-threshold", "4", "-compact-interval", "0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cmd.Process.Kill() }()
	var addr string
	logs := &bytes.Buffer{}
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		logs.WriteString(line + "\n")
		if i := strings.Index(line, "serving on "); i >= 0 {
			addr = strings.Fields(line[i+len("serving on "):])[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("apserve never logged its address:\n%s", logs.String())
	}
	go func() {
		for sc.Scan() {
		}
	}()

	base := "http://" + addr
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	post := func(path, body string) (int, map[string]interface{}) {
		t.Helper()
		req, _ := http.NewRequestWithContext(ctx, "POST", base+path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var decoded map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
			t.Fatalf("POST %s: bad JSON: %v", path, err)
		}
		return resp.StatusCode, decoded
	}

	vector := strings.Repeat("10", 8)
	code, ins := post("/v1/insert", fmt.Sprintf(`{"vector":%q}`, vector))
	if code != 200 {
		t.Fatalf("insert: HTTP %d: %v", code, ins)
	}
	id := int(ins["id"].(float64))
	if id != 1024 {
		t.Fatalf("inserted id = %d, want 1024", id)
	}
	found := func() bool {
		t.Helper()
		code, res := post("/v1/search", fmt.Sprintf(`{"query":%q,"k":3}`, vector))
		if code != 200 {
			t.Fatalf("search: HTTP %d: %v", code, res)
		}
		for _, nb := range res["neighbors"].([]interface{}) {
			m := nb.(map[string]interface{})
			if int(m["id"].(float64)) == id {
				if m["dist"].(float64) != 0 {
					t.Fatalf("inserted vector at distance %v", m["dist"])
				}
				return true
			}
		}
		return false
	}
	if !found() {
		t.Fatal("inserted vector not returned")
	}
	if code, del := post("/v1/delete", fmt.Sprintf(`{"id":%d}`, id)); code != 200 {
		t.Fatalf("delete: HTTP %d: %v", code, del)
	}
	if found() {
		t.Fatal("deleted vector still returned")
	}
	if code, del := post("/v1/delete", fmt.Sprintf(`{"id":%d}`, id)); code != 404 {
		t.Fatalf("double delete: HTTP %d: %v", code, del)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("apserve -live exited dirty: %v\n%s", err, logs.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("apserve -live did not drain after SIGTERM\n%s", logs.String())
	}
}

// TestSmokeApserve boots the real apserve binary on an ephemeral port,
// exercises every endpoint over real HTTP, then sends SIGTERM and asserts
// a clean drain — the full serving lifecycle, binary edition.
func TestSmokeApserve(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests build binaries; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "apserve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/apserve").CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/apserve: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-n", "2048", "-dim", "16", "-batch-window", "2ms")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cmd.Process.Kill() }()

	// The startup log names the bound address; everything after is drained
	// in the background so the server never blocks on a full pipe.
	var addr string
	logs := &bytes.Buffer{}
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		logs.WriteString(line + "\n")
		if i := strings.Index(line, "serving on "); i >= 0 {
			addr = strings.Fields(line[i+len("serving on "):])[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("apserve never logged its address:\n%s", logs.String())
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc.Scan() {
			logs.WriteString(sc.Text() + "\n")
		}
	}()

	base := "http://" + addr
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	get := func(path string, into interface{}) {
		t.Helper()
		req, _ := http.NewRequestWithContext(ctx, "GET", base+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
	}
	var health struct {
		Status  string `json:"status"`
		Backend string `json:"backend"`
	}
	get("/healthz", &health)
	if health.Status != "ok" || health.Backend != "sharded" {
		t.Fatalf("healthz = %+v", health)
	}

	query := strings.Repeat("10", 8) // 16-dim bit string
	body := fmt.Sprintf(`{"query":%q,"k":3}`, query)
	req, _ := http.NewRequestWithContext(ctx, "POST", base+"/v1/search", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var search struct {
		Neighbors []struct {
			ID   int `json:"id"`
			Dist int `json:"dist"`
		} `json:"neighbors"`
		FlushSize int `json:"flush_size"`
	}
	err = json.NewDecoder(resp.Body).Decode(&search)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("POST /v1/search: HTTP %d, decode err %v", resp.StatusCode, err)
	}
	if len(search.Neighbors) != 3 || search.FlushSize < 1 {
		t.Fatalf("search response = %+v", search)
	}

	var stats struct {
		Serving struct {
			Requests int64 `json:"requests"`
			Flushes  int64 `json:"flushes"`
		} `json:"serving"`
		ModeledTimeNS int64 `json:"modeled_time_ns"`
	}
	get("/v1/stats", &stats)
	if stats.Serving.Requests != 1 || stats.Serving.Flushes != 1 || stats.ModeledTimeNS <= 0 {
		t.Fatalf("stats = %+v", stats)
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	// Finish reading stderr before Wait: Wait closes the pipe and would
	// race the drain goroutine out of the final log lines.
	go func() { <-drained; done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("apserve exited dirty: %v\n%s", err, logs.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("apserve did not drain after SIGTERM\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), "served 1 requests") {
		t.Errorf("final drain log missing served-requests line:\n%s", logs.String())
	}
}
