package apknn_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmokeBinaries compiles and runs every command and the quickstart
// examples end to end with tiny inputs, asserting the exit status and the
// key lines of their output — the check that the user-facing entry points
// actually work, not just compile.
func TestSmokeBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests build binaries; skipped in -short")
	}
	bindir := t.TempDir()
	cases := []struct {
		name string
		pkg  string
		args []string
		want []string
	}{
		{
			name: "apknn",
			pkg:  "./cmd/apknn",
			args: []string{"-n", "64", "-dim", "16", "-q", "2", "-k", "2", "-fast"},
			want: []string{
				"dataset: 64 vectors x 16 bits, 1 board configuration(s)",
				"AP result agreement with exact CPU scan: 2/2 queries",
			},
		},
		{
			name: "apknn-sim-sharded",
			pkg:  "./cmd/apknn",
			args: []string{"-n", "40", "-dim", "16", "-q", "2", "-k", "2", "-capacity", "10", "-boards", "2"},
			want: []string{
				"4 board configuration(s)",
				"across 2 board(s)",
				"AP result agreement with exact CPU scan: 2/2 queries",
				"modeled ap time",
			},
		},
		{
			name: "apknn-backend-gpu",
			pkg:  "./cmd/apknn",
			args: []string{"-n", "64", "-dim", "16", "-q", "2", "-k", "2", "-backend", "gpu", "-gpu", "tegrak1"},
			want: []string{
				"AP result agreement with exact CPU scan: 2/2 queries",
				"modeled gpu time",
			},
		},
		{
			name: "apknn-backend-approx",
			pkg:  "./cmd/apknn",
			args: []string{"-n", "200", "-dim", "16", "-q", "2", "-k", "2", "-backend", "approx", "-index", "kmeans", "-capacity", "32"},
			want: []string{
				"on backend \"approx\"",
				"recall@2 vs exact CPU scan:",
			},
		},
		{
			name: "apbench",
			pkg:  "./cmd/apbench",
			args: []string{"-table", "1"},
			want: []string{"Table I: evaluated platforms", "Automata Processor"},
		},
		{
			name: "apbench-backends",
			pkg:  "./cmd/apbench",
			args: []string{"-exp", "backends"},
			want: []string{
				"Cross-platform backends",
				"ap (Gen 2 sim)",
				"fpga (Kintex-7 model)",
				"approx (MPLSH)",
			},
		},
		{
			name: "apcompile",
			pkg:  "./cmd/apcompile",
			args: []string{"-n", "8", "-dim", "16", "-verify"},
			want: []string{
				"design: 8 vectors x 16 dims", "STEs",
				"verify: AP backend matches exact scan",
			},
		},
		{
			name: "aptrace",
			pkg:  "./cmd/aptrace",
			args: nil,
			want: []string{"Fig. 3 trace: vector=1011 query=1001"},
		},
		{
			name: "quickstart",
			pkg:  "./examples/quickstart",
			args: nil,
			want: []string{"board configurations used: 1", "modeled AP execution time"},
		},
		{
			name: "sharded",
			pkg:  "./examples/sharded",
			args: nil,
			want: []string{"sharded across 4 boards", "modeled speedup"},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			bin := filepath.Join(bindir, c.name)
			build := exec.Command("go", "build", "-o", bin, c.pkg)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build %s: %v\n%s", c.pkg, err, out)
			}
			out, err := exec.Command(bin, c.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", c.name, c.args, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q:\n%s", c.name, want, out)
				}
			}
		})
	}
}
