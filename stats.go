package apknn

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/aperr"
)

// Stats is a point-in-time snapshot of an Index's serving counters. Fields
// that do not apply to a backend are zero — only the board-backed backends
// stream symbols, only Approx prunes candidates.
type Stats struct {
	// Backend that produced this snapshot.
	Backend BackendKind
	// Boards in the fleet (board-backed backends; 1 for the single-device
	// models).
	Boards int
	// Partitions is the total board configurations the dataset spans.
	Partitions int
	// Queries served since Open.
	Queries int64
	// Batches answered through Search and SearchBatch since Open.
	Batches int64
	// SymbolsStreamed is the total symbol cycles streamed across boards.
	SymbolsStreamed int64
	// Reconfigs is the total board configurations loaded (§III-C sweeps).
	Reconfigs int64
	// CandidatesScanned is the total query/candidate distance pairs the
	// backend actually evaluated (CPU/GPU/FPGA scan everything; Approx
	// scans only probed buckets).
	CandidatesScanned int64
	// PerBoardTime is each board's modeled wall-clock, shard-ordered.
	// ModeledTime is its maximum for the fleet backends.
	PerBoardTime []time.Duration
}

// counters is the query/batch accounting embedded by every built-in index.
type counters struct {
	queries atomic.Int64
	batches atomic.Int64
}

func (c *counters) countSearch(queries int) {
	c.queries.Add(int64(queries))
	c.batches.Add(1)
}

// snapshot fills the shared fields of a Stats.
func (c *counters) snapshot(kind BackendKind) Stats {
	return Stats{
		Backend: kind,
		Queries: c.queries.Load(),
		Batches: c.batches.Load(),
	}
}

// sequentialBatches implements SearchBatch for backends without a pipelined
// driver: batches run one after another through search, results are
// delivered in submission order on a fully buffered channel, and a canceled
// context turns every remaining batch into an ErrCanceled result — the same
// contract the sharded pipeline honors.
func sequentialBatches(ctx context.Context, batches [][]Vector, k int,
	search func(ctx context.Context, queries []Vector, k int) ([][]Neighbor, error)) <-chan BatchResult {
	out := make(chan BatchResult, len(batches))
	go func() {
		defer close(out)
		for i, qs := range batches {
			if err := ctx.Err(); err != nil {
				out <- BatchResult{Batch: i, Err: aperr.Canceled(err)}
				continue
			}
			res, err := search(ctx, qs, k)
			out <- BatchResult{Batch: i, Results: res, Err: err}
		}
	}()
	return out
}
