package apknn

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/aperr"
)

// Stats is a point-in-time snapshot of an Index's serving counters. Fields
// that do not apply to a backend are zero — only the board-backed backends
// stream symbols, only Approx prunes candidates. The JSON field names are
// part of the serving API: GET /v1/stats on an apserve instance returns
// this struct verbatim under "backend".
type Stats struct {
	// Backend that produced this snapshot.
	Backend BackendKind `json:"backend"`
	// Boards in the fleet (board-backed backends; 1 for the single-device
	// models).
	Boards int `json:"boards"`
	// Partitions is the total board configurations the dataset spans.
	Partitions int `json:"partitions"`
	// Queries served since Open.
	Queries int64 `json:"queries"`
	// Batches answered through Search and SearchBatch since Open.
	Batches int64 `json:"batches"`
	// SymbolsStreamed is the total symbol cycles streamed across boards.
	SymbolsStreamed int64 `json:"symbols_streamed"`
	// Reconfigs is the total board configurations loaded (§III-C sweeps).
	Reconfigs int64 `json:"reconfigs"`
	// CandidatesScanned is the total query/candidate distance pairs the
	// backend actually evaluated (CPU/GPU/FPGA scan everything; Approx
	// scans only probed buckets).
	CandidatesScanned int64 `json:"candidates_scanned"`
	// PerBoardTime is each board's modeled wall-clock, shard-ordered.
	// ModeledTime is its maximum for the fleet backends.
	PerBoardTime []time.Duration `json:"per_board_time_ns,omitempty"`
	// Live is the mutable-index block, present only for indexes opened
	// with OpenLive.
	Live *LiveStats `json:"live,omitempty"`
	// Durability is the write-ahead-log block, present only for live
	// indexes opened with WithDurability.
	Durability *DurabilityStats `json:"durability,omitempty"`
}

// LiveStats is the mutable-index snapshot of an OpenLive index: how much
// churn is pending in the delta segment and tombstone set, how often the
// background compactor has folded it back into a compiled base, and what
// the churn cost in modeled time. GET /v1/stats on a live apserve reports
// it under "backend.live".
type LiveStats struct {
	// Inserts accepted since OpenLive.
	Inserts int64 `json:"inserts"`
	// Deletes accepted since OpenLive.
	Deletes int64 `json:"deletes"`
	// BaseSize is the vector count of the current compiled base.
	BaseSize int `json:"base_size"`
	// DeltaSize is the current delta-segment length (tombstoned entries
	// included until the next compaction reclaims them).
	DeltaSize int `json:"delta_size"`
	// Tombstones is the current tombstone-set size.
	Tombstones int `json:"tombstones"`
	// Compactions is how many times the compactor swapped in a fresh base.
	Compactions int64 `json:"compactions"`
	// Generation numbers the current base compilation; 0 is the seed.
	Generation int64 `json:"generation"`
	// MixedSearches counts searches answered while churn was pending —
	// served from the compiled base and the delta/tombstone overlay
	// together rather than one clean generation.
	MixedSearches int64 `json:"mixed_searches"`
	// ReconfigTime is the modeled reconfiguration time compactions have
	// charged (the paper's symbol-replacement sweep, once per compaction
	// instead of once per mutation).
	ReconfigTime time.Duration `json:"reconfig_time_ns"`
	// DeltaScanTime is the modeled CPU time of the exact delta scans.
	DeltaScanTime time.Duration `json:"delta_scan_time_ns"`
}

// DurabilityStats is the write-ahead-log snapshot of a durable live index:
// how much has been logged and synced since open, what recovery replayed at
// boot, and how stale the newest snapshot is (the length of the log a crash
// right now would replay). GET /v1/stats on a durable apserve reports it
// under "backend.durability".
type DurabilityStats struct {
	// Dir is the durability directory.
	Dir string `json:"dir"`
	// Fsync is the active sync policy: "always", "interval" or "never".
	Fsync string `json:"fsync"`
	// Appends is the number of WAL records appended since open.
	Appends int64 `json:"appends"`
	// AppendedBytes is the total record bytes appended since open.
	AppendedBytes int64 `json:"appended_bytes"`
	// Fsyncs is the number of fsync calls issued on the log.
	Fsyncs int64 `json:"fsyncs"`
	// WALSize is the current log length in bytes, replayed prefix included.
	WALSize int64 `json:"wal_size"`
	// Recovered reports whether this index was reconstructed from prior
	// durable state (false: the directory was seeded fresh).
	Recovered bool `json:"recovered"`
	// ReplayedRecords is how many log records recovery applied at open.
	ReplayedRecords int64 `json:"replayed_records"`
	// ReplayedBytes is the valid record bytes recovery replayed at open.
	ReplayedBytes int64 `json:"replayed_bytes"`
	// ReplayTorn reports that the log ended in a partial record that was
	// truncated away at open — the signature of a crash mid-append.
	ReplayTorn bool `json:"replay_torn"`
	// SnapshotGeneration numbers the newest on-disk snapshot.
	SnapshotGeneration int64 `json:"snapshot_generation"`
	// SnapshotAge is how long ago that snapshot was written (or loaded,
	// after recovery) — the staleness bound on the next recovery's replay.
	SnapshotAge time.Duration `json:"snapshot_age_ns"`
}

// ServingStats is the micro-batcher and admission-control snapshot of the
// HTTP serving layer (internal/serve). The batch window only earns its keep
// on the AP fleet when concurrent requests actually coalesce, so the layer
// counts exactly that: how many requests rode a shared flush, what forced
// each flush (the size cap, the deadline, or shutdown drain), and how many
// requests admission control turned away. GET /v1/stats reports this struct
// under "serving".
type ServingStats struct {
	// Requests admitted into the micro-batcher via /v1/search.
	Requests int64 `json:"requests"`
	// BatchRequests served directly via /v1/search_batch (pre-batched by
	// the client, never coalesced).
	BatchRequests int64 `json:"batch_requests"`
	// Coalesced is the number of requests that shared a flush with at
	// least one other request — the coalescing win the window buys.
	Coalesced int64 `json:"coalesced"`
	// Flushes is the total SearchBatch-sized calls the batcher issued.
	Flushes int64 `json:"flushes"`
	// FlushesBySize were forced by the batch-size cap filling up.
	FlushesBySize int64 `json:"flushes_by_size"`
	// FlushesByDeadline were forced by the batch window expiring — with a
	// zero window (coalescing disabled) every flush lands here, since the
	// deadline expires the moment a request arrives.
	FlushesByDeadline int64 `json:"flushes_by_deadline"`
	// FlushesOnClose drained pending requests during graceful shutdown.
	FlushesOnClose int64 `json:"flushes_on_close"`
	// Rejected counts requests refused with 429 by admission control.
	Rejected int64 `json:"rejected"`
	// Inserts accepted via /v1/insert (live indexes only).
	Inserts int64 `json:"inserts"`
	// Deletes accepted via /v1/delete (live indexes only).
	Deletes int64 `json:"deletes"`
	// Expired counts requests whose context ended while they waited in
	// the queue; they never reached the backend.
	Expired int64 `json:"expired"`
	// MeanBatch is the mean realized flush size (queries per backend
	// call); 0 until the first flush.
	MeanBatch float64 `json:"mean_batch"`
	// SLO is the adaptive admission controller's state, present only when
	// the server runs with an SLO target (apserve -slo-p99).
	SLO *SLOStats `json:"slo,omitempty"`
}

// SLOStats is the SLO-adaptive admission controller's state block inside
// ServingStats: what tail it is steering toward, what it currently
// observes over its sliding window, and where the dynamic in-flight limit
// sits between its floor and the static cap. GET /v1/stats reports it
// under "serving.slo"; /metrics exports the same values as apknn_slo_*
// gauges.
type SLOStats struct {
	// TargetP99NS is the queue-wait p99 the controller holds the tail to.
	TargetP99NS int64 `json:"target_p99_ns"`
	// ObservedP99NS is the windowed queue-wait p99 at the last control
	// tick — the signal the limit moved on.
	ObservedP99NS int64 `json:"observed_p99_ns"`
	// Limit is the current dynamic in-flight admission limit.
	Limit int64 `json:"limit"`
	// InFlight is the number of requests currently holding a slot.
	InFlight int64 `json:"inflight"`
	// ShedRate is the smoothed fraction of arrivals refused with 429 over
	// the controller's recent ticks, in [0,1].
	ShedRate float64 `json:"shed_rate"`
	// Increases / Decreases count limit movements: additive raises while
	// under target, multiplicative cuts on a breach.
	Increases int64 `json:"increases"`
	Decreases int64 `json:"decreases"`
}

// LatencySummary is one metric's quantile block inside the "latency" map of
// /v1/stats, on both apserve and aprouter: the count, mean, p50/p90/p99 and
// max of a server-side latency histogram, in nanoseconds. The map is keyed
// by the same stable metric names GET /metrics exports (apknn_*_seconds), so
// a dashboard can correlate the two surfaces; metrics that have not recorded
// a sample yet are omitted. Quantiles are log-bucket estimates with ≤6%
// relative error (see internal/obs).
type LatencySummary struct {
	Count  int64 `json:"count"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// ClusterStats is the routing-tier snapshot of a multi-node cluster
// (internal/cluster, cmd/aprouter): scatter-gather, replication and hedging
// counters, plus a per-node block attributing shard-local numbers fetched
// from each node's /v1/stats. GET /v1/stats on an aprouter reports it under
// "cluster".
type ClusterStats struct {
	// Shards is the number of dataset partitions in the manifest.
	Shards int `json:"shards"`
	// Replicas is the total replica endpoints across all shards.
	Replicas int `json:"replicas"`
	// Healthy is how many replicas the health prober currently admits.
	Healthy int `json:"healthy"`
	// Searches routed through /v1/search since boot.
	Searches int64 `json:"searches"`
	// BatchSearches routed through /v1/search_batch since boot.
	BatchSearches int64 `json:"batch_searches"`
	// Inserts routed to the tail shard via /v1/insert.
	Inserts int64 `json:"inserts"`
	// Deletes routed to the owning shard via /v1/delete.
	Deletes int64 `json:"deletes"`
	// ShardCalls is the total per-shard legs scattered (searches × shards,
	// plus failovers and hedges).
	ShardCalls int64 `json:"shard_calls"`
	// Hedges is how many hedged second requests were fired after the hedge
	// delay expired with the primary still silent.
	Hedges int64 `json:"hedges"`
	// HedgeWins is how many hedged requests answered first.
	HedgeWins int64 `json:"hedge_wins"`
	// Failovers is how many legs were re-sent to another replica after an
	// error.
	Failovers int64 `json:"failovers"`
	// Retries is how many 429/503 answers were retried after backoff
	// (honoring Retry-After) against the same replica.
	Retries int64 `json:"retries"`
	// Ejected / Readmitted count health-state transitions: a replica is
	// ejected on a failed probe or transport error and readmitted when a
	// probe succeeds again.
	Ejected    int64 `json:"ejected"`
	Readmitted int64 `json:"readmitted"`
	// PerNode attributes per-shard numbers to individual replicas, fetched
	// live from each node's /v1/stats at snapshot time.
	PerNode []NodeStats `json:"per_node,omitempty"`
}

// NodeStats is one replica's line inside ClusterStats.PerNode.
type NodeStats struct {
	// Shard is the partition index this node serves.
	Shard int `json:"shard"`
	// Base is the first global ID of the shard's range.
	Base int `json:"base"`
	// Addr is the replica's base URL.
	Addr string `json:"addr"`
	// NodeID is the node's self-reported identity (apserve -node-id).
	NodeID string `json:"node_id,omitempty"`
	// Healthy is the router's current admission state for this replica.
	Healthy bool `json:"healthy"`
	// Queries and Batches are the node's own backend counters.
	Queries int64 `json:"queries,omitempty"`
	Batches int64 `json:"batches,omitempty"`
	// Vectors is the node's live dataset size. It can be smaller than the
	// node's local ID space once deletes have happened — range sizing uses
	// the node's reported IDSpace, not this.
	Vectors int `json:"vectors,omitempty"`
	// UptimeNS is the node's self-reported uptime.
	UptimeNS int64 `json:"uptime_ns,omitempty"`
	// ModeledTimeNS is the node's accumulated modeled platform time.
	ModeledTimeNS int64 `json:"modeled_time_ns,omitempty"`
	// Error is set when the stats fetch from this node failed; the counter
	// fields are then zero.
	Error string `json:"error,omitempty"`
}

// counters is the query/batch accounting embedded by every built-in index.
type counters struct {
	queries atomic.Int64
	batches atomic.Int64
}

func (c *counters) countSearch(queries int) {
	c.queries.Add(int64(queries))
	c.batches.Add(1)
}

// snapshot fills the shared fields of a Stats.
func (c *counters) snapshot(kind BackendKind) Stats {
	return Stats{
		Backend: kind,
		Queries: c.queries.Load(),
		Batches: c.batches.Load(),
	}
}

// sequentialBatches implements SearchBatch for backends without a pipelined
// driver: batches run one after another through search, results are
// delivered in submission order on a fully buffered channel, and a canceled
// context turns every remaining batch into an ErrCanceled result — the same
// contract the sharded pipeline honors.
func sequentialBatches(ctx context.Context, batches [][]Vector, k int,
	search func(ctx context.Context, queries []Vector, k int) ([][]Neighbor, error)) <-chan BatchResult {
	out := make(chan BatchResult, len(batches))
	go func() {
		defer close(out)
		for i, qs := range batches {
			if err := ctx.Err(); err != nil {
				out <- BatchResult{Batch: i, Err: aperr.Canceled(err)}
				continue
			}
			res, err := search(ctx, qs, k)
			out <- BatchResult{Batch: i, Results: res, Err: err}
		}
	}()
	return out
}
