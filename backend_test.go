package apknn_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"

	apknn "repro"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RecallFloors documents the quality floor each approximate index must meet
// in TestBackendEquivalence: recall@10 on a clustered dataset with generous
// probe budgets. The floors are deliberately below typical observed recall
// (which sits well above them on this workload) so the test guards against
// collapse, not noise.
var recallFloors = map[apknn.IndexKind]float64{
	apknn.LSH:        0.55,
	apknn.KMeansTree: 0.55,
	apknn.KDForest:   0.55,
}

// backendFilter honors the CI matrix: when APKNN_BACKEND / APKNN_BOARDS are
// set, only that slice of the equivalence matrix runs.
func backendFilter() (apknn.BackendKind, int) {
	kind := apknn.BackendKind(os.Getenv("APKNN_BACKEND"))
	boards := 0
	if b := os.Getenv("APKNN_BOARDS"); b != "" {
		fmt.Sscanf(b, "%d", &boards)
	}
	return kind, boards
}

// TestBackendEquivalence is the cross-backend property test: every
// result-exact backend — AP sim, fast, sharded fleet, CPU, GPU model, FPGA
// model — must return byte-identical neighbor lists to ExactSearch across
// dims {32, 128, 256} and board counts {1, 3}, and every approximate
// backend must clear its documented recall floor.
func TestBackendEquivalence(t *testing.T) {
	filterKind, filterBoards := backendFilter()
	ctx := context.Background()
	cases := []struct {
		dim, n, capacity, k int
	}{
		{dim: 32, n: 130, capacity: 40, k: 7},
		{dim: 128, n: 96, capacity: 24, k: 5},
		{dim: 256, n: 60, capacity: 20, k: 4},
	}
	exactKinds := []apknn.BackendKind{apknn.AP, apknn.Fast, apknn.Sharded, apknn.CPU, apknn.GPU, apknn.FPGA}
	boardCounts := []int{1, 3}
	for _, c := range cases {
		ds := apknn.RandomDataset(uint64(c.dim), c.n, c.dim)
		queries := apknn.RandomQueries(uint64(c.dim)+1, 6, c.dim)
		want := apknn.ExactSearch(ds, queries, c.k, 2)
		for _, kind := range exactKinds {
			if filterKind != "" && kind != filterKind {
				continue
			}
			boardSweep := boardCounts
			if kind == apknn.CPU || kind == apknn.GPU || kind == apknn.FPGA {
				boardSweep = []int{0} // single-device models; boards don't apply
			}
			for _, boards := range boardSweep {
				if filterBoards != 0 && boards != 0 && boards != filterBoards {
					continue
				}
				name := fmt.Sprintf("%s/d%d/b%d", kind, c.dim, boards)
				t.Run(name, func(t *testing.T) {
					idx, err := apknn.Open(ds,
						apknn.WithBackend(kind),
						apknn.WithCapacity(c.capacity),
						apknn.WithBoards(boards),
					)
					if err != nil {
						t.Fatal(err)
					}
					got, err := idx.Search(ctx, queries, c.k)
					if err != nil {
						t.Fatal(err)
					}
					for qi := range queries {
						if len(got[qi]) != len(want[qi]) {
							t.Fatalf("query %d: %d neighbors, want %d", qi, len(got[qi]), len(want[qi]))
						}
						for j := range want[qi] {
							if got[qi][j] != want[qi][j] {
								t.Fatalf("query %d rank %d = %+v, want %+v", qi, j, got[qi][j], want[qi][j])
							}
						}
					}
					if st := idx.Stats(); st.Queries != int64(len(queries)) || st.Batches != 1 {
						t.Errorf("stats = %d queries / %d batches, want %d / 1", st.Queries, st.Batches, len(queries))
					}
				})
			}
		}
	}

	// Approximate backends: recall floor on a clustered workload.
	if filterKind == "" || filterKind == apknn.Approx {
		rng := stats.NewRNG(77)
		ds := workload.Clustered(rng, 30, 20, 64, 4)
		queries := workload.PlantedQueries(rng, ds, 12, 3)
		const k = 10
		want := apknn.ExactSearch(ds, queries, k, 2)
		for ik, floor := range recallFloors {
			t.Run(fmt.Sprintf("approx/%d", int(ik)), func(t *testing.T) {
				idx, err := apknn.Open(ds,
					apknn.WithBackend(apknn.Approx),
					apknn.WithIndex(ik),
					apknn.WithCapacity(40),
					apknn.WithProbes(16),
					apknn.WithSeed(7),
				)
				if err != nil {
					t.Fatal(err)
				}
				got, err := idx.Search(ctx, queries, k)
				if err != nil {
					t.Fatal(err)
				}
				recall := 0.0
				for qi := range queries {
					recall += apknn.Recall(got[qi], want[qi])
				}
				recall /= float64(len(queries))
				if recall < floor {
					t.Errorf("recall@%d = %.2f, floor %.2f", k, recall, floor)
				}
				if st := idx.Stats(); st.CandidatesScanned <= 0 {
					t.Errorf("CandidatesScanned = %d, want > 0", st.CandidatesScanned)
				}
			})
		}
	}
}

// TestOpenErrors checks the typed sentinel errors of the new surface.
func TestOpenErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := apknn.Open(nil); !errors.Is(err, apknn.ErrEmptyDataset) {
		t.Errorf("nil dataset: %v, want ErrEmptyDataset", err)
	}
	ds := apknn.RandomDataset(1, 50, 32)
	if _, err := apknn.Open(ds, apknn.WithBackend("warp-drive")); !errors.Is(err, apknn.ErrUnknownBackend) {
		t.Errorf("unknown backend: %v, want ErrUnknownBackend", err)
	}
	for _, kind := range apknn.Backends() {
		idx, err := apknn.Open(ds, apknn.WithBackend(kind))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if _, err := idx.Search(ctx, apknn.RandomQueries(2, 2, 32), 0); !errors.Is(err, apknn.ErrBadK) {
			t.Errorf("%s k=0: %v, want ErrBadK", kind, err)
		}
		if _, err := idx.Search(ctx, apknn.RandomQueries(2, 2, 16), 3); !errors.Is(err, apknn.ErrDimMismatch) {
			t.Errorf("%s dim mismatch: %v, want ErrDimMismatch", kind, err)
		}
	}
}

// TestBackendsRegistry checks the registry surface: the seven built-ins are
// present, duplicates are rejected, and a custom backend round-trips
// through Open.
func TestBackendsRegistry(t *testing.T) {
	kinds := map[apknn.BackendKind]bool{}
	for _, k := range apknn.Backends() {
		kinds[k] = true
	}
	for _, k := range []apknn.BackendKind{apknn.AP, apknn.Fast, apknn.Sharded, apknn.CPU, apknn.GPU, apknn.FPGA, apknn.Approx} {
		if !kinds[k] {
			t.Errorf("built-in backend %q not registered", k)
		}
	}
	if err := apknn.RegisterBackend(stubBackend{kind: apknn.CPU}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := apknn.RegisterBackend(stubBackend{kind: "stub"}); err != nil {
		t.Fatal(err)
	}
	ds := apknn.RandomDataset(3, 10, 16)
	idx, err := apknn.Open(ds, apknn.WithBackend("stub"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Search(context.Background(), apknn.RandomQueries(4, 1, 16), 1); err != nil {
		t.Fatal(err)
	}
}

// stubBackend delegates to the CPU index — just enough to prove external
// registration works.
type stubBackend struct{ kind apknn.BackendKind }

func (s stubBackend) Kind() apknn.BackendKind { return s.kind }

func (s stubBackend) Compile(ds *apknn.Dataset, cfg apknn.Config) (apknn.Index, error) {
	cfg.Backend = apknn.CPU
	return apknn.Open(ds, apknn.WithBackend(apknn.CPU), apknn.WithWorkers(cfg.Workers))
}

// TestStatsSnapshot exercises the serving counters of the board-backed path.
func TestStatsSnapshot(t *testing.T) {
	ctx := context.Background()
	ds := apknn.RandomDataset(9, 120, 32)
	idx, err := apknn.Open(ds, apknn.WithBackend(apknn.Fast), apknn.WithCapacity(30), apknn.WithBoards(2))
	if err != nil {
		t.Fatal(err)
	}
	queries := apknn.RandomQueries(10, 3, 32)
	if _, err := idx.Search(ctx, queries, 4); err != nil {
		t.Fatal(err)
	}
	for res := range idx.SearchBatch(ctx, [][]apknn.Vector{queries, queries}, 4) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	st := idx.Stats()
	if st.Backend != apknn.Fast {
		t.Errorf("Backend = %q", st.Backend)
	}
	if st.Queries != 9 || st.Batches != 3 {
		t.Errorf("Queries/Batches = %d/%d, want 9/3", st.Queries, st.Batches)
	}
	if st.Boards != 2 || st.Partitions != 4 {
		t.Errorf("Boards/Partitions = %d/%d, want 2/4", st.Boards, st.Partitions)
	}
	if st.SymbolsStreamed <= 0 {
		t.Errorf("SymbolsStreamed = %d, want > 0", st.SymbolsStreamed)
	}
	// 2 partitions per board, 3 batches: 6 reconfigurations each.
	if st.Reconfigs != 12 {
		t.Errorf("Reconfigs = %d, want 12", st.Reconfigs)
	}
	if len(st.PerBoardTime) != 2 {
		t.Fatalf("PerBoardTime has %d entries, want 2", len(st.PerBoardTime))
	}
	for i, bt := range st.PerBoardTime {
		if bt <= 0 {
			t.Errorf("PerBoardTime[%d] = %v, want > 0", i, bt)
		}
		if bt > idx.ModeledTime() {
			t.Errorf("PerBoardTime[%d] = %v exceeds ModeledTime %v", i, bt, idx.ModeledTime())
		}
	}
}

// TestShardedDefaultBoards checks the Sharded backend's scale-out default.
func TestShardedDefaultBoards(t *testing.T) {
	ds := apknn.RandomDataset(11, 400, 32)
	idx, err := apknn.Open(ds, apknn.WithBackend(apknn.Sharded), apknn.WithCapacity(50))
	if err != nil {
		t.Fatal(err)
	}
	if st := idx.Stats(); st.Boards != 4 {
		t.Errorf("Sharded default boards = %d, want 4", st.Boards)
	}
}
