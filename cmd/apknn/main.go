// Command apknn runs end-to-end k-nearest-neighbor search on any of the
// registered compute backends and cross-checks the result against the exact
// CPU scan.
//
//	apknn -n 2048 -dim 64 -q 8 -k 4 -gen 2
//	apknn -backend sharded -boards 4 -n 100000 -dim 128
//	apknn -backend gpu -gpu titanx
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	apknn "repro"
	"repro/internal/perfmodel"
)

func main() {
	n := flag.Int("n", 2048, "dataset size")
	dim := flag.Int("dim", 64, "code dimensionality")
	load := flag.String("load", "", "load the dataset from this binary dataset file instead of synthesizing (-n/-dim ignored)")
	save := flag.String("save", "", "save the dataset to this binary dataset file")
	q := flag.Int("q", 8, "number of queries")
	k := flag.Int("k", 4, "neighbors per query")
	gen := flag.Int("gen", 2, "AP generation (1 or 2)")
	seed := flag.Uint64("seed", 42, "random seed")
	backend := flag.String("backend", "", "compute backend: ap, fast, sharded, cpu, gpu, fpga, approx (default ap)")
	fast := flag.Bool("fast", false, "deprecated alias for -backend fast")
	gpuModel := flag.String("gpu", "titanx", "GPU to model with -backend gpu: titanx or tegrak1")
	idxKind := flag.String("index", "lsh", "index structure with -backend approx: lsh, kmeans or kdforest")
	probes := flag.Int("probes", 0, "candidate buckets per query with -backend approx (0 = default)")
	capacity := flag.Int("capacity", 0, "vectors per board configuration (0 = paper default)")
	boards := flag.Int("boards", 0, "shard the dataset across this many boards (0 = backend default)")
	workers := flag.Int("workers", 0, "host-side parallelism (0 = backend default)")
	timeout := flag.Duration("timeout", 0, "query deadline, e.g. 500ms (0 = none); the same context path apserve enforces per request")
	verbose := flag.Bool("v", false, "print each query's neighbors")
	flag.Parse()

	kind := apknn.BackendKind(*backend)
	if kind == "" {
		kind = apknn.AP
		if *fast {
			kind = apknn.Fast
		}
	}
	generation := apknn.Gen2
	if *gen == 1 {
		generation = apknn.Gen1
	}
	var gm apknn.GPUModel
	switch *gpuModel {
	case "titanx":
		gm = apknn.TitanX
	case "tegrak1":
		gm = apknn.TegraK1
	default:
		fmt.Fprintf(os.Stderr, "apknn: unknown GPU model %q (want titanx or tegrak1)\n", *gpuModel)
		os.Exit(2)
	}
	var ik apknn.IndexKind
	switch *idxKind {
	case "lsh":
		ik = apknn.LSH
	case "kmeans":
		ik = apknn.KMeansTree
	case "kdforest":
		ik = apknn.KDForest
	default:
		fmt.Fprintf(os.Stderr, "apknn: unknown index structure %q\n", *idxKind)
		os.Exit(2)
	}

	var ds *apknn.Dataset
	if *load != "" {
		var err error
		if ds, err = apknn.LoadDataset(*load); err != nil {
			fmt.Fprintln(os.Stderr, "apknn:", err)
			os.Exit(1)
		}
		*n, *dim = ds.Len(), ds.Dim()
	} else {
		ds = apknn.RandomDataset(*seed, *n, *dim)
	}
	if *save != "" {
		if err := apknn.SaveDataset(ds, *save); err != nil {
			fmt.Fprintln(os.Stderr, "apknn:", err)
			os.Exit(1)
		}
	}
	queries := apknn.RandomQueries(*seed+1, *q, *dim)

	idx, err := apknn.Open(ds,
		apknn.WithBackend(kind),
		apknn.WithGeneration(generation),
		apknn.WithCapacity(*capacity),
		apknn.WithBoards(*boards),
		apknn.WithWorkers(*workers),
		apknn.WithGPUModel(gm),
		apknn.WithIndex(ik),
		apknn.WithProbes(*probes),
		apknn.WithSeed(*seed+2),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apknn:", err)
		os.Exit(1)
	}

	// Ctrl-C cancels the in-flight batch instead of killing the process;
	// -timeout additionally bounds the whole query with a deadline.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	results, err := idx.Search(ctx, queries, *k)
	if err != nil {
		switch {
		case errors.Is(err, apknn.ErrCanceled) && errors.Is(ctx.Err(), context.DeadlineExceeded):
			fmt.Fprintf(os.Stderr, "apknn: timed out after %v: %v\n", *timeout, err)
		case errors.Is(err, apknn.ErrCanceled):
			fmt.Fprintln(os.Stderr, "apknn: interrupted:", err)
		default:
			fmt.Fprintln(os.Stderr, "apknn:", err)
		}
		os.Exit(1)
	}
	st := idx.Stats()
	if st.Partitions > 0 && kind != apknn.Approx {
		fmt.Printf("dataset: %d vectors x %d bits, %d board configuration(s) across %d board(s) on %s\n",
			*n, *dim, st.Partitions, st.Boards, generation)
	} else {
		fmt.Printf("dataset: %d vectors x %d bits on backend %q\n", *n, *dim, kind)
	}

	reference := apknn.ExactSearch(ds, queries, *k, 4)
	agree := 0
	recall := 0.0
	for qi := range queries {
		match := len(results[qi]) == len(reference[qi])
		if match {
			for j := range results[qi] {
				if results[qi][j] != reference[qi][j] {
					match = false
					break
				}
			}
		}
		if match {
			agree++
		}
		recall += apknn.Recall(results[qi], reference[qi])
		if *verbose {
			fmt.Printf("query %d:\n", qi)
			for rank, nb := range results[qi] {
				fmt.Printf("  #%d id=%d hamming=%d\n", rank+1, nb.ID, nb.Dist)
			}
		}
	}
	exactBackend := kind != apknn.Approx
	if exactBackend {
		fmt.Printf("AP result agreement with exact CPU scan: %d/%d queries\n", agree, len(queries))
	} else {
		fmt.Printf("recall@%d vs exact CPU scan: %.2f (scanned %d candidates; index spans %d buckets)\n",
			*k, recall/float64(len(queries)), st.CandidatesScanned, st.Partitions)
	}
	if t := idx.ModeledTime(); t > 0 {
		fmt.Printf("modeled %s time: %v\n", kind, t)
	}
	if st.SymbolsStreamed > 0 {
		fmt.Printf("stats: %d queries, %d batches, %d symbol cycles, %d reconfiguration(s)\n",
			st.Queries, st.Batches, st.SymbolsStreamed, st.Reconfigs)
	}
	armTime := perfmodel.CPUTime(perfmodel.CortexA15(), *n, *q, *dim)
	fmt.Printf("modeled ARM Cortex A15 time for the same batch: %v\n", armTime)
	if exactBackend && agree != len(queries) {
		os.Exit(1)
	}
}
