// Command apknn runs end-to-end k-nearest-neighbor search on the simulated
// Automata Processor and cross-checks the result against the exact CPU scan.
//
//	apknn -n 2048 -dim 64 -q 8 -k 4 -gen 2
package main

import (
	"flag"
	"fmt"
	"os"

	apknn "repro"
	"repro/internal/perfmodel"
)

func main() {
	n := flag.Int("n", 2048, "dataset size")
	dim := flag.Int("dim", 64, "code dimensionality")
	q := flag.Int("q", 8, "number of queries")
	k := flag.Int("k", 4, "neighbors per query")
	gen := flag.Int("gen", 2, "AP generation (1 or 2)")
	seed := flag.Uint64("seed", 42, "random seed")
	exact := flag.Bool("fast", false, "use the semantics-equivalent fast engine instead of cycle-accurate simulation")
	capacity := flag.Int("capacity", 0, "vectors per board configuration (0 = paper default)")
	boards := flag.Int("boards", 1, "shard the dataset across this many boards")
	workers := flag.Int("workers", 0, "concurrent board workers (0 = one per board)")
	verbose := flag.Bool("v", false, "print each query's neighbors")
	flag.Parse()

	ds := apknn.RandomDataset(*seed, *n, *dim)
	queries := apknn.RandomQueries(*seed+1, *q, *dim)

	opts := apknn.Options{Exact: *exact, Capacity: *capacity, Boards: *boards, Workers: *workers}
	if *gen == 1 {
		opts.Generation = apknn.Gen1
	}
	searcher, err := apknn.NewSearcher(ds, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apknn:", err)
		os.Exit(1)
	}
	fmt.Printf("dataset: %d vectors x %d bits, %d board configuration(s) across %d board(s) on %s\n",
		*n, *dim, searcher.Partitions(), searcher.Boards(), opts.Generation)

	results, err := searcher.Query(queries, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apknn:", err)
		os.Exit(1)
	}
	reference := apknn.ExactSearch(ds, queries, *k, 4)

	agree := 0
	for qi := range queries {
		match := len(results[qi]) == len(reference[qi])
		if match {
			for j := range results[qi] {
				if results[qi][j] != reference[qi][j] {
					match = false
					break
				}
			}
		}
		if match {
			agree++
		}
		if *verbose {
			fmt.Printf("query %d:\n", qi)
			for rank, nb := range results[qi] {
				fmt.Printf("  #%d id=%d hamming=%d\n", rank+1, nb.ID, nb.Dist)
			}
		}
	}
	fmt.Printf("AP result agreement with exact CPU scan: %d/%d queries\n", agree, len(queries))
	if t := searcher.ModeledTime(); t > 0 {
		fmt.Printf("modeled AP time (133 MHz stream + reconfiguration): %v\n", t)
	}
	armTime := perfmodel.CPUTime(perfmodel.CortexA15(), *n, *q, *dim)
	fmt.Printf("modeled ARM Cortex A15 time for the same batch: %v\n", armTime)
	if agree != len(queries) {
		os.Exit(1)
	}
}
