// Command aprouter is the stateless cluster tier over apserve: it
// partitions the dataset across N serving nodes (static range assignment
// recorded in a cluster manifest), scatter-gathers /v1/search and
// /v1/search_batch to every shard concurrently, over-fetches k per shard,
// and merges with the shared (Dist, ID) tie-break — results are
// byte-identical to a single-node index over the union dataset. Replicated
// shards get health-checked replica sets, hedged reads, and bounded 429
// retry; live /v1/insert and /v1/delete traffic routes to the owning
// shard's replicas best-effort with per-replica error reporting.
//
//	apserve -addr :9001 -seed 100 -n 65536 -dim 64 -live &
//	apserve -addr :9002 -seed 100 -n 65536 -dim 64 -live &   # replica of :9001
//	apserve -addr :9003 -seed 200 -n 65536 -dim 64 -live &   # second shard
//	aprouter -addr :8080 -shards "localhost:9001,localhost:9002;localhost:9003" \
//	    -hedge 5ms -write-manifest cluster.json
//	curl -s -X POST localhost:8080/v1/search -d '{"query":"1011...","k":4}'
//	curl -s localhost:8080/v1/stats
//
// Topology comes either from -shards (replicas comma-separated, shards
// semicolon-separated; global-ID bases probed from each shard's /v1/stats
// node block) or from -manifest, a JSON file with explicit bases as written
// by -write-manifest. SIGINT/SIGTERM drains the listener and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	shards := flag.String("shards", "", "topology: replicas comma-separated, shards semicolon-separated, e.g. \"h1:9001,h2:9001;h3:9001\"")
	manifestPath := flag.String("manifest", "", "load the cluster manifest (explicit bases) from this JSON file instead of -shards")
	writeManifest := flag.String("write-manifest", "", "record the resolved manifest to this JSON file at boot")
	hedge := flag.Duration("hedge", 5*time.Millisecond, "hedged reads: fire a second replica after this delay (0 disables)")
	adaptiveHedge := flag.Bool("adaptive-hedge", false, "derive each leg's hedge delay from the primary replica's windowed p99 once it has samples; -hedge is the warm-up fallback")
	probeInterval := flag.Duration("probe-interval", time.Second, "replica health-check period")
	probeTimeout := flag.Duration("probe-timeout", 500*time.Millisecond, "per-probe time budget")
	defaultK := flag.Int("k", 10, "neighbors returned when a request omits k")
	retries := flag.Int("retries", 3, "attempts per replica on saturated (429/503) answers, honoring Retry-After")
	bootTimeout := flag.Duration("boot-timeout", 30*time.Second, "how long to wait for shards to answer the base-resolving probe")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	pprofOn := flag.Bool("pprof", false, obs.PprofFlagDoc)
	slowQuery := flag.Duration("slow-query", -1, obs.SlowQueryFlagDoc)
	nodeID := flag.String("node-id", "", "identity stamped on trace roots and flight-recorder records (default: \"router\")")
	traceDepth := flag.Int("trace-depth", 0, "flight recorder: completed traces retained per class for /v1/debug/traces (0 = default 64)")
	traceSlowFactor := flag.Float64("trace-slow-factor", 0, "flight recorder: classify a request as slow at this multiple of the windowed routed p99 (0 = default 4)")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("aprouter", obs.BuildVersion())
		return
	}

	logger, err := obs.NewLogger(*logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aprouter:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	var m *cluster.Manifest
	switch {
	case *manifestPath != "" && *shards != "":
		fatal("flag validation", errors.New("-manifest and -shards are mutually exclusive"))
	case *manifestPath != "":
		if m, err = cluster.LoadManifest(*manifestPath); err != nil {
			fatal("load manifest", err)
		}
	case *shards != "":
		if m, err = cluster.ParseTopology(*shards); err != nil {
			fatal("parse topology", err)
		}
		// The nodes may still be booting; retry the probe until the budget
		// runs out so "start everything at once" just works.
		bootCtx, cancel := context.WithTimeout(context.Background(), *bootTimeout)
		for {
			err = m.ResolveBases(bootCtx, nil)
			if err == nil || bootCtx.Err() != nil {
				break
			}
			time.Sleep(200 * time.Millisecond)
		}
		cancel()
		if err != nil {
			fatal("resolve shard bases", err)
		}
	default:
		fatal("flag validation", errors.New("one of -shards or -manifest is required"))
	}
	if *writeManifest != "" {
		if err := m.Save(*writeManifest); err != nil {
			fatal("write manifest", err)
		}
		logger.Info("manifest written", "path", *writeManifest)
	}

	cfg := cluster.Config{
		HedgeDelay:      *hedge,
		AdaptiveHedge:   *adaptiveHedge,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
		DefaultK:        *defaultK,
		Dim:             m.Dim,
		Retry:           serve.RetryPolicy{MaxAttempts: *retries},
		Logger:          logger,
		NodeID:          *nodeID,
		TraceDepth:      *traceDepth,
		TraceSlowFactor: *traceSlowFactor,
	}
	if *slowQuery >= 0 {
		cfg.SlowQueryLog = logger
		cfg.SlowQuery = *slowQuery
	}
	router, err := cluster.New(m, cfg)
	if err != nil {
		fatal("build router", err)
	}
	for i, sh := range m.Shards {
		logger.Info("shard mapped",
			"shard", i, "base", sh.Base,
			"replicas", len(sh.Replicas), "addrs", fmt.Sprintf("%v", sh.Replicas))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", err)
	}
	handler := router.Handler()
	if *pprofOn {
		handler = withPprof(handler)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	httpSrv := &http.Server{Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logger.Info("routing",
		"addr", ln.Addr().String(), "version", obs.BuildVersion(),
		"shards", len(m.Shards), "hedge", *hedge,
		"adaptive_hedge", *adaptiveHedge, "probe_interval", *probeInterval)

	select {
	case err := <-errCh:
		fatal("serve", err)
	case <-ctx.Done():
	}
	stop()
	logger.Info("draining", "budget", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("shutdown", "error", err)
	}
	router.Close()
	st := router.Stats()
	logger.Info("stopped",
		"searches", st.Searches, "shard_calls", st.ShardCalls,
		"hedges", st.Hedges, "hedge_wins", st.HedgeWins,
		"failovers", st.Failovers, "retries", st.Retries)
}

// withPprof mounts the net/http/pprof handlers in front of the API handler —
// only when -pprof is set, so profiling surface is opt-in.
func withPprof(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
