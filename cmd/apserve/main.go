// Command apserve exposes any registered backend over the /v1 HTTP JSON
// API with dynamic micro-batching: concurrent single-query requests are
// coalesced into one backend call per batch window, recreating online the
// large batches the paper's offline evaluation streams (§II-A, §III-C).
//
//	apserve -addr :8080 -backend sharded -boards 4 -n 65536 -dim 64
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/search \
//	    -d '{"query":"1011...","k":4}'
//	curl -s localhost:8080/v1/stats
//
// With -live the index is mutable: POST /v1/insert and /v1/delete apply
// immediately through a delta segment and tombstone set, and a background
// compactor folds the churn into a fresh base compilation once it passes
// -compact-threshold or -compact-interval. -load/-save persist the dataset
// in the binary format instead of synthesizing a new one per boot; with
// -live the shutdown save captures the merged live view (base plus delta
// minus tombstones), not the stale boot dataset.
//
// -data-dir makes a live index durable: every acknowledged mutation is
// write-ahead logged there (-fsync selects the sync policy), compactions
// persist snapshots and truncate the log, and a reboot over the same
// directory recovers the exact pre-crash index — same global IDs, identical
// results. The seed flags (-n/-dim/-seed/-load) only matter on the first
// boot; afterwards the directory is authoritative.
//
// SIGINT/SIGTERM drains: the listener stops accepting, in-flight requests
// and queued micro-batches finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	apknn "repro"
	"repro/internal/live"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backend := flag.String("backend", "sharded", "compute backend: ap, fast, sharded, cpu, gpu, fpga, approx")
	n := flag.Int("n", 1<<16, "synthetic dataset size")
	dim := flag.Int("dim", 64, "code dimensionality")
	seed := flag.Uint64("seed", 42, "dataset random seed")
	load := flag.String("load", "", "load the dataset from this binary dataset file instead of synthesizing (-n/-dim/-seed ignored)")
	save := flag.String("save", "", "save the served dataset to this binary dataset file at boot")
	gen := flag.Int("gen", 2, "AP generation (1 or 2)")
	capacity := flag.Int("capacity", 0, "vectors per board configuration (0 = paper default)")
	boards := flag.Int("boards", 0, "boards to shard across (0 = backend default)")
	workers := flag.Int("workers", 0, "host-side parallelism (0 = backend default)")
	liveMode := flag.Bool("live", false, "serve a mutable index: enable /v1/insert and /v1/delete with background compaction")
	compactThreshold := flag.Int("compact-threshold", 0, "with -live: churn volume (delta inserts + tombstones) that triggers compaction (0 = default 1024, negative disables)")
	compactInterval := flag.Duration("compact-interval", 30*time.Second, "with -live: max staleness before pending churn is compacted (0 disables the timer)")
	dataDir := flag.String("data-dir", "", "with -live: durable state directory (write-ahead log + snapshots, recovered at boot)")
	fsync := flag.String("fsync", "always", "with -data-dir: WAL sync policy: always, interval or never")
	fsyncInterval := flag.Duration("fsync-interval", 0, "with -fsync interval: flush period (0 = 100ms)")
	maxBatch := flag.Int("batch", 32, "micro-batch size cap (flush when this many queries are pending)")
	window := flag.Duration("batch-window", serve.DefaultBatchWindow,
		"micro-batch flush deadline; 0 disables coalescing")
	maxInFlight := flag.Int("max-inflight", 256, "admission control: concurrent requests before 429")
	defaultK := flag.Int("k", 10, "neighbors returned when a request omits k")
	nodeID := flag.String("node-id", "", "cluster identity reported in the /v1/stats node block (default: the listen address)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
	flag.Parse()

	generation := apknn.Gen2
	if *gen == 1 {
		generation = apknn.Gen1
	}
	var ds *apknn.Dataset
	if *load != "" {
		var err error
		if ds, err = apknn.LoadDataset(*load); err != nil {
			log.Fatal("apserve: ", err)
		}
		log.Printf("apserve: loaded %d x %d-bit dataset from %s", ds.Len(), ds.Dim(), *load)
	} else {
		log.Printf("apserve: building %d x %d-bit dataset (seed %d)", *n, *dim, *seed)
		ds = apknn.RandomDataset(*seed, *n, *dim)
	}
	if *save != "" && !*liveMode {
		if err := apknn.SaveDataset(ds, *save); err != nil {
			log.Fatal("apserve: ", err)
		}
		log.Printf("apserve: saved dataset to %s", *save)
	}
	opts := []apknn.Option{
		apknn.WithBackend(apknn.BackendKind(*backend)),
		apknn.WithGeneration(generation),
		apknn.WithCapacity(*capacity),
		apknn.WithBoards(*boards),
		apknn.WithWorkers(*workers),
	}
	var idx apknn.Index
	var liveIdx *apknn.LiveIndex
	var err error
	if *liveMode {
		liveOpts := append(opts,
			apknn.WithCompactThreshold(*compactThreshold),
			apknn.WithCompactInterval(*compactInterval))
		if *dataDir != "" {
			policy, perr := apknn.ParseFsyncPolicy(*fsync)
			if perr != nil {
				log.Fatal("apserve: ", perr)
			}
			liveOpts = append(liveOpts, apknn.WithDurability(*dataDir, apknn.DurabilityOptions{
				Fsync:         policy,
				FsyncInterval: *fsyncInterval,
			}))
		}
		liveIdx, err = apknn.OpenLive(ds, liveOpts...)
		idx = liveIdx
	} else {
		if *dataDir != "" {
			log.Fatal("apserve: -data-dir requires -live")
		}
		idx, err = apknn.Open(ds, opts...)
	}
	if err != nil {
		log.Fatal("apserve: ", err)
	}
	if liveIdx != nil {
		if rec, ok := liveIdx.Recovery(); ok {
			if rec.Recovered {
				torn := ""
				if rec.Torn {
					torn = ", torn tail truncated"
				}
				log.Printf("apserve: recovered generation %d from %s: %d snapshot vectors + %d replayed records (%d bytes%s), %d live, next ID %d",
					rec.Generation, *dataDir, rec.SnapshotVectors, rec.ReplayedRecords,
					rec.ReplayedBytes, torn, liveIdx.Len(), liveIdx.NextID())
			} else {
				log.Printf("apserve: seeded durable state at %s (fsync %s)", *dataDir, *fsync)
			}
		}
	}
	st := idx.Stats()
	mode := "static"
	if *liveMode {
		threshold := *compactThreshold
		if threshold == 0 {
			threshold = live.DefaultCompactThreshold
		}
		mode = fmt.Sprintf("live (compact threshold %d, interval %v)", threshold, *compactInterval)
	}
	log.Printf("apserve: backend %q ready: %d board(s), %d partition(s), %s",
		st.Backend, st.Boards, st.Partitions, mode)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal("apserve: ", err)
	}
	id := *nodeID
	if id == "" {
		id = ln.Addr().String()
	}
	vectors := ds.Len()
	if liveIdx != nil {
		vectors = liveIdx.Len() // recovery may have diverged from the seed
	}
	srv := serve.New(idx, serve.Config{
		MaxBatch:    *maxBatch,
		BatchWindow: *window,
		MaxInFlight: *maxInFlight,
		DefaultK:    *defaultK,
		Dim:         ds.Dim(),
		NodeID:      id,
		Addr:        ln.Addr().String(),
		Vectors:     vectors,
	})
	httpSrv := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("apserve: serving on %s (batch cap %d, window %v, max in-flight %d)",
		ln.Addr(), *maxBatch, *window, *maxInFlight)

	select {
	case err := <-errCh:
		log.Fatal("apserve: ", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("apserve: draining (budget %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop the listener first so handlers finish, then flush the batcher's
	// remaining queue.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "apserve: shutdown:", err)
	}
	if err := srv.Close(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "apserve: drain:", err)
	}
	if liveIdx != nil {
		if err := liveIdx.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "apserve: live close:", err)
		}
		if *save != "" {
			// The merged live view — base plus delta minus tombstones — so
			// the saved file matches what the index was actually serving.
			if err := liveIdx.SaveDataset(*save); err != nil {
				fmt.Fprintln(os.Stderr, "apserve: save:", err)
			} else {
				log.Printf("apserve: saved %d-vector live view to %s", liveIdx.Len(), *save)
			}
		}
		if ls := liveIdx.Stats().Live; ls != nil {
			log.Printf("apserve: live index saw %d inserts, %d deletes, %d compaction(s)",
				ls.Inserts, ls.Deletes, ls.Compactions)
		}
	}
	final := srv.Stats()
	log.Printf("apserve: served %d requests in %d flushes (mean batch %.2f), %d rejected; bye",
		final.Requests, final.Flushes, final.MeanBatch, final.Rejected)
}
