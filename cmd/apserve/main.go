// Command apserve exposes any registered backend over the /v1 HTTP JSON
// API with dynamic micro-batching: concurrent single-query requests are
// coalesced into one backend call per batch window, recreating online the
// large batches the paper's offline evaluation streams (§II-A, §III-C).
//
//	apserve -addr :8080 -backend sharded -boards 4 -n 65536 -dim 64
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/search \
//	    -d '{"query":"1011...","k":4}'
//	curl -s localhost:8080/v1/stats
//
// With -live the index is mutable: POST /v1/insert and /v1/delete apply
// immediately through a delta segment and tombstone set, and a background
// compactor folds the churn into a fresh base compilation once it passes
// -compact-threshold or -compact-interval. -load/-save persist the dataset
// in the binary format instead of synthesizing a new one per boot; with
// -live the shutdown save captures the merged live view (base plus delta
// minus tombstones), not the stale boot dataset.
//
// -data-dir makes a live index durable: every acknowledged mutation is
// write-ahead logged there (-fsync selects the sync policy), compactions
// persist snapshots and truncate the log, and a reboot over the same
// directory recovers the exact pre-crash index — same global IDs, identical
// results. The seed flags (-n/-dim/-seed/-load) only matter on the first
// boot; afterwards the directory is authoritative.
//
// SIGINT/SIGTERM drains: the listener stops accepting, in-flight requests
// and queued micro-batches finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	apknn "repro"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backend := flag.String("backend", "sharded", "compute backend: ap, fast, sharded, cpu, gpu, fpga, approx")
	n := flag.Int("n", 1<<16, "synthetic dataset size")
	dim := flag.Int("dim", 64, "code dimensionality")
	seed := flag.Uint64("seed", 42, "dataset random seed")
	load := flag.String("load", "", "load the dataset from this binary dataset file instead of synthesizing (-n/-dim/-seed ignored)")
	save := flag.String("save", "", "save the served dataset to this binary dataset file at boot")
	gen := flag.Int("gen", 2, "AP generation (1 or 2)")
	capacity := flag.Int("capacity", 0, "vectors per board configuration (0 = paper default)")
	boards := flag.Int("boards", 0, "boards to shard across (0 = backend default)")
	workers := flag.Int("workers", 0, "host-side parallelism (0 = backend default)")
	liveMode := flag.Bool("live", false, "serve a mutable index: enable /v1/insert and /v1/delete with background compaction")
	compactThreshold := flag.Int("compact-threshold", 0, "with -live: churn volume (delta inserts + tombstones) that triggers compaction (0 = default 1024, negative disables)")
	compactInterval := flag.Duration("compact-interval", 30*time.Second, "with -live: max staleness before pending churn is compacted (0 disables the timer)")
	dataDir := flag.String("data-dir", "", "with -live: durable state directory (write-ahead log + snapshots, recovered at boot)")
	fsync := flag.String("fsync", "always", "with -data-dir: WAL sync policy: always, interval or never")
	fsyncInterval := flag.Duration("fsync-interval", 0, "with -fsync interval: flush period (0 = 100ms)")
	maxBatch := flag.Int("batch", 32, "micro-batch size cap (flush when this many queries are pending)")
	window := flag.Duration("batch-window", serve.DefaultBatchWindow,
		"micro-batch flush deadline; 0 disables coalescing")
	maxInFlight := flag.Int("max-inflight", 256, "admission control: concurrent requests before 429")
	maxFlushes := flag.Int("max-flushes", 0, "backend execution slots: concurrent micro-batch flushes (0 = unbounded); waiting for a slot counts as queue wait")
	sloP99 := flag.Duration("slo-p99", 0, "SLO-adaptive admission: hold the windowed queue-wait p99 under this target by shedding load early (0 = static -max-inflight gate)")
	defaultK := flag.Int("k", 10, "neighbors returned when a request omits k")
	nodeID := flag.String("node-id", "", "cluster identity reported in the /v1/stats node block (default: the listen address)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	pprofOn := flag.Bool("pprof", false, obs.PprofFlagDoc)
	slowQuery := flag.Duration("slow-query", -1, obs.SlowQueryFlagDoc)
	traceDepth := flag.Int("trace-depth", 0, "flight recorder: completed traces retained per class for /v1/debug/traces (0 = default 64)")
	traceSlowFactor := flag.Float64("trace-slow-factor", 0, "flight recorder: classify a request as slow at this multiple of the windowed search p99 (0 = default 4)")
	anomalyP99 := flag.Duration("anomaly-p99", 0, "anomaly capture: dump a debug bundle when the windowed search p99 breaches -anomaly-factor times this target (0 disables)")
	anomalyFactor := flag.Float64("anomaly-factor", 0, "anomaly capture: breach multiple over -anomaly-p99 (0 = default 3)")
	anomalyProfiles := flag.Bool("anomaly-profiles", false, "anomaly capture: include heap and goroutine pprof profiles in each bundle")
	debugDir := flag.String("debug-dir", "", "anomaly bundle directory (default: <data-dir>/debug)")
	pace := flag.Duration("pace", 0, "testing: artificial delay added to every backend search call, visible as backend-span time in traces")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("apserve", obs.BuildVersion())
		return
	}

	logger, err := obs.NewLogger(*logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apserve:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	generation := apknn.Gen2
	if *gen == 1 {
		generation = apknn.Gen1
	}
	var ds *apknn.Dataset
	if *load != "" {
		var err error
		if ds, err = apknn.LoadDataset(*load); err != nil {
			fatal("load dataset", err)
		}
		logger.Info("dataset loaded", "path", *load, "vectors", ds.Len(), "dim", ds.Dim())
	} else {
		logger.Info("building dataset", "vectors", *n, "dim", *dim, "seed", *seed)
		ds = apknn.RandomDataset(*seed, *n, *dim)
	}
	if *save != "" && !*liveMode {
		if err := apknn.SaveDataset(ds, *save); err != nil {
			fatal("save dataset", err)
		}
		logger.Info("dataset saved", "path", *save)
	}
	opts := []apknn.Option{
		apknn.WithBackend(apknn.BackendKind(*backend)),
		apknn.WithGeneration(generation),
		apknn.WithCapacity(*capacity),
		apknn.WithBoards(*boards),
		apknn.WithWorkers(*workers),
	}
	var idx apknn.Index
	var liveIdx *apknn.LiveIndex
	if *liveMode {
		liveOpts := append(opts,
			apknn.WithCompactThreshold(*compactThreshold),
			apknn.WithCompactInterval(*compactInterval))
		if *dataDir != "" {
			policy, perr := apknn.ParseFsyncPolicy(*fsync)
			if perr != nil {
				fatal("parse fsync policy", perr)
			}
			liveOpts = append(liveOpts, apknn.WithDurability(*dataDir, apknn.DurabilityOptions{
				Fsync:         policy,
				FsyncInterval: *fsyncInterval,
			}))
		}
		liveIdx, err = apknn.OpenLive(ds, liveOpts...)
		idx = liveIdx
	} else {
		if *dataDir != "" {
			fatal("flag validation", errors.New("-data-dir requires -live"))
		}
		idx, err = apknn.Open(ds, opts...)
	}
	if err != nil {
		fatal("open index", err)
	}
	if liveIdx != nil {
		if rec, ok := liveIdx.Recovery(); ok {
			if rec.Recovered {
				logger.Info("recovered durable state",
					"dir", *dataDir,
					"generation", rec.Generation,
					"snapshot_vectors", rec.SnapshotVectors,
					"replayed_records", rec.ReplayedRecords,
					"replayed_bytes", rec.ReplayedBytes,
					"torn_tail", rec.Torn,
					"live_vectors", liveIdx.Len(),
					"next_id", liveIdx.NextID())
			} else {
				logger.Info("seeded durable state", "dir", *dataDir, "fsync", *fsync)
			}
		}
	}
	st := idx.Stats()
	mode := "static"
	if *liveMode {
		threshold := *compactThreshold
		if threshold == 0 {
			threshold = live.DefaultCompactThreshold
		}
		mode = fmt.Sprintf("live (compact threshold %d, interval %v)", threshold, *compactInterval)
	}
	logger.Info("backend ready",
		"backend", string(st.Backend), "boards", st.Boards,
		"partitions", st.Partitions, "mode", mode)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", err)
	}
	id := *nodeID
	if id == "" {
		id = ln.Addr().String()
	}
	vectors := ds.Len()
	if liveIdx != nil {
		vectors = liveIdx.Len() // recovery may have diverged from the seed
	}
	if *pace > 0 {
		idx = paceIndex(idx, liveIdx, *pace)
		logger.Warn("pacing backend calls", "pace", *pace)
	}
	bundleDir := *debugDir
	if bundleDir == "" && *dataDir != "" {
		bundleDir = filepath.Join(*dataDir, "debug")
	}
	cfg := serve.Config{
		MaxBatch:             *maxBatch,
		BatchWindow:          *window,
		MaxInFlight:          *maxInFlight,
		MaxConcurrentFlushes: *maxFlushes,
		SLOTargetP99:         *sloP99,
		DefaultK:             *defaultK,
		Dim:                  ds.Dim(),
		NodeID:               id,
		Addr:                 ln.Addr().String(),
		Vectors:              vectors,
		TraceDepth:           *traceDepth,
		TraceSlowFactor:      *traceSlowFactor,
		AnomalyTarget:        *anomalyP99,
		AnomalyFactor:        *anomalyFactor,
		DebugDir:             bundleDir,
		AnomalyProfiles:      *anomalyProfiles,
		AnomalyLog:           logger,
	}
	if *anomalyP99 > 0 && bundleDir == "" {
		fatal("flag validation", errors.New("-anomaly-p99 needs a bundle directory: set -data-dir or -debug-dir"))
	}
	if *slowQuery >= 0 {
		cfg.SlowQueryLog = logger
		cfg.SlowQuery = *slowQuery
	}
	srv := serve.New(idx, cfg)
	handler := srv.Handler()
	if *pprofOn {
		handler = withPprof(handler)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	httpSrv := &http.Server{Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logger.Info("serving",
		"addr", ln.Addr().String(), "version", obs.BuildVersion(),
		"batch_cap", *maxBatch, "window", *window,
		"max_inflight", *maxInFlight, "slo_p99", *sloP99)

	select {
	case err := <-errCh:
		fatal("serve", err)
	case <-ctx.Done():
	}
	stop()
	logger.Info("draining", "budget", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop the listener first so handlers finish, then flush the batcher's
	// remaining queue.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("shutdown", "error", err)
	}
	if err := srv.Close(drainCtx); err != nil {
		logger.Error("drain", "error", err)
	}
	if liveIdx != nil {
		if err := liveIdx.Close(); err != nil {
			logger.Error("live close", "error", err)
		}
		if *save != "" {
			// The merged live view — base plus delta minus tombstones — so
			// the saved file matches what the index was actually serving.
			if err := liveIdx.SaveDataset(*save); err != nil {
				logger.Error("save live view", "error", err)
			} else {
				logger.Info("live view saved", "path", *save, "vectors", liveIdx.Len())
			}
		}
		if ls := liveIdx.Stats().Live; ls != nil {
			logger.Info("live index summary",
				"inserts", ls.Inserts, "deletes", ls.Deletes, "compactions", ls.Compactions)
		}
	}
	final := srv.Stats()
	logger.Info("stopped",
		"requests", final.Requests, "flushes", final.Flushes,
		"mean_batch", final.MeanBatch, "rejected", final.Rejected)
}

// withPprof mounts the net/http/pprof handlers in front of the API handler —
// only when -pprof is set, so profiling surface is opt-in.
func withPprof(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// pacedIndex is the -pace testing aid: it delays every backend search so a
// CI job (or a local repro) can manufacture a predictably slow request and
// assert it surfaces in the flight recorder. The sleep lands inside the
// backend span, exactly where a genuinely slow kernel would.
type pacedIndex struct {
	apknn.Index
	pace time.Duration
}

func (p *pacedIndex) Search(ctx context.Context, queries []apknn.Vector, k int) ([][]apknn.Neighbor, error) {
	select {
	case <-time.After(p.pace):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return p.Index.Search(ctx, queries, k)
}

// pacedLive additionally forwards the live index's write surface and sizing
// probes, which serve discovers by type assertion — without these a paced
// live node would silently lose /v1/insert and /v1/delete.
type pacedLive struct {
	pacedIndex
	live *apknn.LiveIndex
}

func (p *pacedLive) Insert(ctx context.Context, v apknn.Vector) (int, error) {
	return p.live.Insert(ctx, v)
}
func (p *pacedLive) Delete(ctx context.Context, id int) error { return p.live.Delete(ctx, id) }
func (p *pacedLive) Len() int                                 { return p.live.Len() }
func (p *pacedLive) NextID() int                              { return p.live.NextID() }

func paceIndex(idx apknn.Index, liveIdx *apknn.LiveIndex, d time.Duration) apknn.Index {
	paced := pacedIndex{Index: idx, pace: d}
	if liveIdx != nil {
		return &pacedLive{pacedIndex: paced, live: liveIdx}
	}
	return &paced
}
