// Command apbench regenerates every table and figure-level experiment of the
// paper's evaluation section, printing published-vs-reproduced comparisons.
//
//	apbench -table 4          # one table (1-8)
//	apbench -exp util         # a named experiment (util, bandwidth, packing, mux, shard, backends, serve, churn, cluster, overload, hotpath)
//	apbench -all              # everything
//	apbench -exp churn -json bench.json   # also emit machine-readable results
//	apbench -exp hotpath -cpuprofile cpu.pprof   # profile the scan kernel
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	apknn "repro"
	"repro/internal/ap"
	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/knn"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchRecord is one machine-readable result row of -json output; the
// schema is documented in README ("Machine-readable benchmarks"). Fields
// that do not apply to an experiment are omitted.
type benchRecord struct {
	// Experiment names the sweep the row came from (churn, serve, shard).
	Experiment string `json:"experiment"`
	// Params are the cell coordinates of the sweep (ratio, threshold,
	// window, boards, n, dim, k, ...).
	Params map[string]interface{} `json:"params,omitempty"`
	// ModeledQPS is queries / modeled platform time (every experiment
	// measures it, so a zero is a real measurement, never omitted).
	ModeledQPS float64 `json:"modeled_qps"`
	// HostQPS is queries / host wall-clock; nil when the cell did not
	// measure it. Pointers keep a measured 0 distinguishable from absent.
	HostQPS *float64 `json:"host_qps,omitempty"`
	// P50NS, P90NS and P99NS are request latency percentiles in nanoseconds.
	P50NS *int64 `json:"p50_ns,omitempty"`
	P90NS *int64 `json:"p90_ns,omitempty"`
	P99NS *int64 `json:"p99_ns,omitempty"`
	// Recall is mean recall@k against the exact scan.
	Recall *float64 `json:"recall,omitempty"`
	// NSPerQuery is the measured host nanoseconds per query (hotpath).
	NSPerQuery *int64 `json:"ns_per_query,omitempty"`
	// GBPerSec is the packed-word scan bandwidth the cell sustained.
	GBPerSec *float64 `json:"gb_per_sec,omitempty"`
	// Speedup is host speedup versus the cell's Linear oracle baseline.
	Speedup *float64 `json:"speedup,omitempty"`
	// OracleMatch reports whether the cell's results were byte-identical
	// to the Linear oracle (hotpath cells always verify; a false here
	// aborts the run, so persisted rows are always true).
	OracleMatch *bool `json:"oracle_match,omitempty"`
	// AppendNSPerOp is the host cost of one write-ahead-logged insert
	// under fsync=never (churn durability cells).
	AppendNSPerOp *float64 `json:"append_ns_per_op,omitempty"`
	// FsyncNSPerOp is the fsync=always premium on top of AppendNSPerOp.
	FsyncNSPerOp *float64 `json:"fsync_ns_per_op,omitempty"`
	// ReplayMBPerSec is the recovery log-replay rate at reopen.
	ReplayMBPerSec *float64 `json:"replay_mb_per_sec,omitempty"`
	// RecoveryNS is the total close-to-serving reopen time: snapshot load,
	// replay, base compile.
	RecoveryNS *int64 `json:"recovery_ns,omitempty"`
	// TargetP99NS is the overload cell's SLO target (0 for static cells).
	TargetP99NS *int64 `json:"target_p99_ns,omitempty"`
	// ObservedP99NS is the queue-wait p99 over the overload hold phase —
	// the tail the adaptive controller was asked to hold under the target.
	ObservedP99NS *int64 `json:"observed_p99_ns,omitempty"`
	// ShedRate is the fraction of overload arrivals refused with 429.
	ShedRate *float64 `json:"shed_rate,omitempty"`
	// GoodputQPS is successful overload answers per wall-clock second.
	GoodputQPS *float64 `json:"goodput_qps,omitempty"`
}

func fptr(v float64) *float64 { return &v }

func iptr(v int64) *int64 { return &v }

func bptr(v bool) *bool { return &v }

// benchJSON collects benchRecords across experiments and writes the
// BENCH_*.json-style artifact at exit.
type benchJSON struct {
	Schema      string        `json:"schema"`
	GeneratedAt string        `json:"generated_at"`
	Version     string        `json:"version,omitempty"`
	Results     []benchRecord `json:"results"`
}

// recorder is nil unless -json was given; experiments append through record.
var recorder *benchJSON

// quick shrinks experiment grids and measurement targets for CI smoke runs.
var quick bool

func record(r benchRecord) {
	if recorder != nil {
		recorder.Results = append(recorder.Results, r)
	}
}

func main() {
	table := flag.Int("table", 0, "paper table to regenerate (1-8)")
	exp := flag.String("exp", "", "named experiment: util, bandwidth, packing, mux, shard, backends, serve, churn, cluster, overload, hotpath")
	all := flag.Bool("all", false, "run every table and experiment")
	runs := flag.Int("runs", 100, "Monte Carlo repetitions for Table VI")
	jsonPath := flag.String("json", "", "also write machine-readable results (schema apbench/v1) to this path")
	quickFlag := flag.Bool("quick", false, "shrink experiment grids and timing targets (CI smoke)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this path")
	regress := flag.String("regress", "", "after the run, compare this run's hotpath cells against a committed apbench/v1 baseline file and exit non-zero on a speedup regression past -regress-band")
	regressBand := flag.Float64("regress-band", 0.25, "allowed relative speedup drop per matched cell for -regress")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	quick = *quickFlag
	if *showVersion {
		fmt.Println("apbench", obs.BuildVersion())
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "apbench: cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "apbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "apbench: memprofile:", err)
			}
		}()
	}

	if *jsonPath != "" || *regress != "" {
		recorder = &benchJSON{
			Schema:      "apbench/v1",
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			Version:     obs.BuildVersion(),
		}
	}
	switch {
	case *all:
		for t := 1; t <= 8; t++ {
			runTable(t, *runs)
		}
		for _, e := range []string{"util", "bandwidth", "packing", "mux", "shard", "backends", "serve", "churn", "cluster", "overload", "hotpath"} {
			runExperiment(e)
		}
	case *table != 0:
		runTable(*table, *runs)
	case *exp != "":
		runExperiment(*exp)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if recorder != nil && *jsonPath != "" {
		buf, err := json.MarshalIndent(recorder, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "apbench: encode json:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d result row(s) to %s\n", len(recorder.Results), *jsonPath)
	}
	if *regress != "" {
		if err := regressCheck(*regress, recorder.Results, *regressBand); err != nil {
			fmt.Fprintln(os.Stderr, "apbench: regress:", err)
			os.Exit(1)
		}
	}
}

func runTable(t, runs int) {
	switch t {
	case 1:
		table1()
	case 2:
		table2()
	case 3:
		rt, en := perfmodel.CompareTable3()
		rt.Render(os.Stdout)
		en.Render(os.Stdout)
	case 4:
		rt, en := perfmodel.CompareTable4()
		rt.Render(os.Stdout)
		en.Render(os.Stdout)
	case 5:
		cs := perfmodel.CompareTable5()
		cs.Render(os.Stdout)
	case 6:
		table6(runs)
	case 7:
		cs := perfmodel.CompareTable7()
		cs.Render(os.Stdout)
	case 8:
		cs := perfmodel.CompareTable8()
		cs.Render(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "apbench: unknown table %d (want 1-8)\n", t)
		os.Exit(2)
	}
	fmt.Println()
}

func table1() {
	tb := report.NewTable("Table I: evaluated platforms",
		"platform", "type", "cores", "process (nm)", "clock (MHz)")
	for _, p := range perfmodel.Platforms() {
		cores := fmt.Sprintf("%d", p.Cores)
		if p.Cores == 0 {
			cores = "N/A"
		}
		tb.Row(p.Name, p.Type, cores, p.ProcessNm, p.ClockMHz)
	}
	tb.Render(os.Stdout)
}

func table2() {
	tb := report.NewTable("Table II: kNN workload parameters",
		"workload", "dimensionality", "neighbors", "queries")
	for _, w := range workload.All() {
		tb.Row("kNN-"+w.Name, w.Dim, w.K, w.Queries)
	}
	tb.Render(os.Stdout)
}

func table6(runs int) {
	var cs report.ComparisonSet
	cs.Name = fmt.Sprintf("Table VI: %% incorrect results of statistical activation reduction (p=16, n=1024, %d runs, strict mode)", runs)
	rng := stats.NewRNG(1234)
	for _, w := range workload.All() {
		for _, kPrime := range []int{1, 2, 3, 4} {
			res := core.RunReduction(core.ReductionExperiment{
				Dim: w.Dim, N: 1024, P: 16, K: w.K, KPrime: kPrime,
				Runs: runs, Mode: core.SuppressStrict,
			}, rng)
			cs.Add(fmt.Sprintf("%s k=%d k'=%d", w.Name, w.K, kPrime),
				perfmodel.PaperTable6[w.Name][kPrime], res.IncorrectPercent, "%")
		}
	}
	cs.Render(os.Stdout)
	fmt.Println()

	tb := report.NewTable("Table VI addendum: faithful-hardware mode (see README.md)",
		"config", "incorrect (%)", "bandwidth reduction")
	tb.AlignLeft(0)
	for _, w := range workload.All() {
		for _, kPrime := range []int{1, 2, 3, 4} {
			res := core.RunReduction(core.ReductionExperiment{
				Dim: w.Dim, N: 1024, P: 16, K: w.K, KPrime: kPrime,
				Runs: runs, Mode: core.SuppressFaithful,
			}, rng)
			tb.Row(fmt.Sprintf("%s k=%d k'=%d", w.Name, w.K, kPrime),
				res.IncorrectPercent, fmt.Sprintf("%.1fx", res.BandwidthFactor))
		}
	}
	tb.Render(os.Stdout)
}

func runExperiment(name string) {
	switch name {
	case "util":
		cs, err := perfmodel.CompareUtilization()
		if err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		cs.Render(os.Stdout)
	case "bandwidth":
		cs := perfmodel.CompareBandwidth()
		cs.Render(os.Stdout)
	case "packing":
		packingExperiment()
	case "mux":
		muxExperiment()
	case "shard":
		shardExperiment()
	case "backends":
		backendsExperiment()
	case "serve":
		serveExperiment()
	case "churn":
		churnExperiment()
	case "cluster":
		clusterExperiment()
	case "overload":
		overloadExperiment()
	case "hotpath":
		hotpathExperiment()
	default:
		fmt.Fprintf(os.Stderr, "apbench: unknown experiment %q\n", name)
		os.Exit(2)
	}
	fmt.Println()
}

// packingExperiment is the Fig. 5 microbenchmark: place-and-route 8 vectors
// across 32/64/128 dimensions, packed versus plain, reporting STEs and
// routing pressure (§VI-A found packing compile-limited by routing).
func packingExperiment() {
	tb := report.NewTable("Fig. 5 / §VI-A: vector packing microbenchmark (8 vectors)",
		"dims", "plain STEs", "packed STEs", "analytical savings", "plain pressure", "packed pressure")
	rng := stats.NewRNG(77)
	for _, dim := range []int{32, 64, 128} {
		ds := bitvec.RandomDataset(rng, 8, dim)
		l := core.NewLayout(dim)
		plainNet := automata.NewNetwork()
		core.BuildLinear(plainNet, ds, l)
		packedNet := automata.NewNetwork()
		core.BuildPacked(packedNet, ds, l, 0)
		cfg := ap.Gen1()
		plain, err := ap.Compile(plainNet, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		packed, err := ap.Compile(packedNet, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		tb.Row(dim, plain.STEs, packed.STEs,
			fmt.Sprintf("%.2fx", core.PackingSavings(l, 8)),
			plain.RoutingPressure, packed.RoutingPressure)
	}
	tb.Render(os.Stdout)
}

// shardExperiment sweeps board counts on the sharded multi-board engine:
// the same 64k-vector dataset and query batch answered by 1..8 boards,
// reporting the modeled query time (max across boards), its speedup over
// one board, and the host wall-clock of the parallel scan.
func shardExperiment() {
	const n, dim, nq, k = 1 << 16, 64, 32, 8
	rng := stats.NewRNG(99)
	ds := bitvec.RandomDataset(rng, n, dim)
	queries := workload.Queries(rng, nq, dim)

	tb := report.NewTable(
		fmt.Sprintf("Sharded multi-board scaling (n=%d, d=%d, %d queries, k=%d, Gen 2)", n, dim, nq, k),
		"boards", "configs/board", "modeled time", "modeled speedup", "host wall-clock")
	var serial time.Duration
	for _, boards := range []int{1, 2, 4, 8} {
		eng, err := shard.New(ds, shard.Options{Boards: boards, Fast: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		start := time.Now()
		if _, err := eng.Query(context.Background(), queries, k); err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		wall := time.Since(start)
		modeled := eng.ModeledTime()
		if boards == 1 {
			serial = modeled
		}
		tb.Row(eng.Shards(),
			fmt.Sprintf("%.1f", float64(eng.Partitions())/float64(eng.Shards())),
			modeled,
			fmt.Sprintf("%.2fx", float64(serial)/float64(modeled)),
			wall.Round(time.Microsecond))
		record(benchRecord{
			Experiment: "shard",
			Params:     map[string]interface{}{"boards": eng.Shards(), "n": n, "dim": dim, "k": k, "queries": nq},
			ModeledQPS: float64(nq) / modeled.Seconds(),
			HostQPS:    fptr(float64(nq) / wall.Seconds()),
		})
	}
	tb.Render(os.Stdout)
}

// backendsExperiment is the paper-style cross-platform table over the
// public Backend surface: the same dataset and query batch answered by
// every registered backend through apknn.Open, reporting the platform's
// modeled time, this machine's host wall-clock, and result quality against
// the exact CPU scan (the comparative framing of Tables III/IV/V).
func backendsExperiment() {
	const n, dim, nq, k, capacity = 2048, 64, 8, 8, 512
	ds := apknn.RandomDataset(444, n, dim)
	queries := apknn.RandomQueries(445, nq, dim)
	exact := apknn.ExactSearch(ds, queries, k, 4)

	cases := []struct {
		name string
		opts []apknn.Option
	}{
		{"ap (Gen 2 sim)", []apknn.Option{apknn.WithBackend(apknn.AP)}},
		{"fast (analytic)", []apknn.Option{apknn.WithBackend(apknn.Fast)}},
		{"sharded x4 (fleet)", []apknn.Option{apknn.WithBackend(apknn.Sharded), apknn.WithBoards(4)}},
		{"cpu (Xeon E5 scan)", []apknn.Option{apknn.WithBackend(apknn.CPU)}},
		{"gpu (Titan X model)", []apknn.Option{apknn.WithBackend(apknn.GPU), apknn.WithGPUModel(apknn.TitanX)}},
		{"gpu (Tegra K1 model)", []apknn.Option{apknn.WithBackend(apknn.GPU), apknn.WithGPUModel(apknn.TegraK1)}},
		{"fpga (Kintex-7 model)", []apknn.Option{apknn.WithBackend(apknn.FPGA)}},
		{"approx (MPLSH)", []apknn.Option{apknn.WithBackend(apknn.Approx), apknn.WithIndex(apknn.LSH), apknn.WithProbes(16)}},
	}

	tb := report.NewTable(
		fmt.Sprintf("Cross-platform backends (n=%d, d=%d, %d queries, k=%d)", n, dim, nq, k),
		"backend", "boards", "modeled time", "host wall-clock", "recall@k", "exact")
	tb.AlignLeft(0)
	ctx := context.Background()
	for _, c := range cases {
		opts := append([]apknn.Option{apknn.WithCapacity(capacity)}, c.opts...)
		idx, err := apknn.Open(ds, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		start := time.Now()
		results, err := idx.Search(ctx, queries, k)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		wall := time.Since(start)
		recall := 0.0
		identical := true
		for qi := range queries {
			recall += apknn.Recall(results[qi], exact[qi])
			if len(results[qi]) != len(exact[qi]) {
				identical = false
				continue
			}
			for j := range exact[qi] {
				if results[qi][j] != exact[qi][j] {
					identical = false
					break
				}
			}
		}
		st := idx.Stats()
		tb.Row(c.name, st.Boards, idx.ModeledTime(), wall.Round(time.Microsecond),
			fmt.Sprintf("%.2f", recall/float64(len(queries))), identical)
	}
	tb.Render(os.Stdout)
}

// serveExperiment is the serving-layer load test: an in-process apserve
// over the sharded fleet, hammered by closed-loop HTTP clients across a
// concurrency x batch-window sweep. The point is the paper's batching
// argument replayed online: one-query-per-call serving (window 0) pays a
// full reconfiguration sweep per request, while the dynamic micro-batcher
// coalesces concurrent requests into shared sweeps — higher modeled fleet
// throughput at a latency cost bounded by the window.
func serveExperiment() {
	const (
		n, dim, k     = 1 << 15, 64, 8
		reqsPerClient = 40
		maxBatch      = 64
	)
	windows := []time.Duration{0, 2 * time.Millisecond}
	concs := []int{4, 16, 32}

	tb := report.NewTable(
		fmt.Sprintf("HTTP serving: dynamic micro-batching on sharded x4 (n=%d, d=%d, k=%d, %d reqs/client)",
			n, dim, k, reqsPerClient),
		"window", "clients", "mean batch", "fleet QPS (modeled)", "host QPS", "p50", "p90", "p99")
	for _, window := range windows {
		for _, conc := range concs {

			cell, err := runServeCell(n, dim, k, maxBatch, reqsPerClient, window, conc)
			if err != nil {
				fmt.Fprintln(os.Stderr, "apbench:", err)
				os.Exit(1)
			}
			tb.Row(window, conc,
				fmt.Sprintf("%.2f", cell.meanBatch),
				fmt.Sprintf("%.0f", cell.fleetQPS),
				fmt.Sprintf("%.0f", cell.hostQPS),
				cell.p50.Round(time.Microsecond),
				cell.p90.Round(time.Microsecond),
				cell.p99.Round(time.Microsecond))
			record(benchRecord{
				Experiment: "serve",
				Params: map[string]interface{}{
					"window_ns": int64(window), "clients": conc,
					"n": n, "dim": dim, "k": k,
				},
				ModeledQPS: cell.fleetQPS,
				HostQPS:    fptr(cell.hostQPS),
				P50NS:      iptr(int64(cell.p50)),
				P90NS:      iptr(int64(cell.p90)),
				P99NS:      iptr(int64(cell.p99)),
			})
		}
	}
	tb.Render(os.Stdout)
	fmt.Println("fleet QPS (modeled) = queries / modeled AP fleet time: coalesced flushes share one")
	fmt.Println("reconfiguration sweep per batch, so the window converts concurrency into throughput.")
}

type serveCell struct {
	meanBatch     float64
	fleetQPS      float64
	hostQPS       float64
	p50, p90, p99 time.Duration
}

// runServeCell serves one (window, concurrency) point on a fresh index and
// in-process HTTP server so the modeled-time and batcher counters belong
// to this cell alone.
func runServeCell(n, dim, k, maxBatch, reqsPerClient int, window time.Duration, conc int) (serveCell, error) {
	ds := apknn.RandomDataset(777, n, dim)
	idx, err := apknn.Open(ds, apknn.WithBackend(apknn.Sharded), apknn.WithBoards(4))
	if err != nil {
		return serveCell{}, err
	}
	srv := serve.New(idx, serve.Config{
		MaxBatch:    maxBatch,
		BatchWindow: window,
		MaxInFlight: 4 * conc * reqsPerClient, // admission is not under test here
		Dim:         dim,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return serveCell{}, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	// A per-cell transport so this cell's connection pool dies with it: a
	// pooled conn the transport dialed but never used would otherwise sit
	// in StateNew on the server and stall Shutdown's idle-conn sweep.
	transport := &http.Transport{MaxIdleConnsPerHost: conc}
	client := serve.Client{
		BaseURL:    "http://" + ln.Addr().String(),
		HTTPClient: &http.Client{Transport: transport},
	}

	queries := apknn.RandomQueries(778, conc*reqsPerClient, dim)
	latencies := make([][]time.Duration, conc)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lats := make([]time.Duration, 0, reqsPerClient)
			for r := 0; r < reqsPerClient; r++ {
				q := queries[c*reqsPerClient+r]
				t0 := time.Now()
				if _, err := client.Search(context.Background(), q, k); err != nil {
					fmt.Fprintln(os.Stderr, "apbench: serve client:", err)
					os.Exit(1)
				}
				lats = append(lats, time.Since(t0))
			}
			latencies[c] = lats
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	transport.CloseIdleConnections()

	closeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(closeCtx); err != nil {
		return serveCell{}, fmt.Errorf("listener shutdown: %w", err)
	}
	if err := srv.Close(closeCtx); err != nil {
		return serveCell{}, fmt.Errorf("serving drain: %w", err)
	}

	all := make([]time.Duration, 0, conc*reqsPerClient)
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total := float64(len(all))
	modeled := idx.ModeledTime()
	cell := serveCell{
		meanBatch: srv.Stats().MeanBatch,
		hostQPS:   total / wall.Seconds(),
		p50:       all[len(all)/2],
		p90:       all[len(all)*9/10],
		p99:       all[len(all)*99/100],
	}
	if modeled > 0 {
		cell.fleetQPS = total / modeled.Seconds()
	}
	return cell, nil
}

// churnExperiment sweeps dataset churn on the live mutable index: the same
// query load answered while inserts stream in at different insert:query
// ratios, across compaction thresholds. Modeled QPS shows what churn costs
// the platform — delta scans charge the calibrated CPU model, every
// compaction charges a full reconfiguration sweep (the cost the paper's
// model assigns to a dataset change, §III-C) — and recall@k against a
// brute-force mirror of the mutating dataset confirms the merged base +
// delta + tombstone path stays exact. Compactions run synchronously at the
// same threshold the background compactor would use, so the table is
// deterministic.
func churnExperiment() {
	const (
		n0, dim, k = 1 << 13, 64, 8
		nq, batch  = 512, 16
	)
	ratios := []struct {
		name         string
		insPerSearch float64
	}{
		{"1:16", 1.0 / 16}, {"1:4", 1.0 / 4}, {"1:1", 1}, {"4:1", 4},
	}
	thresholds := []int{256, 1024, 4096}

	tb := report.NewTable(
		fmt.Sprintf("Live index churn: insert:query ratio x compaction threshold (n0=%d, d=%d, %d queries, k=%d, Gen 2)",
			n0, dim, nq, k),
		"insert:query", "threshold", "inserts", "compactions", "delta@end", "reconfig time", "modeled QPS", "recall@k")
	for _, r := range ratios {
		for _, threshold := range thresholds {
			cell, err := runChurnCell(n0, dim, k, nq, batch, r.insPerSearch, threshold)
			if err != nil {
				fmt.Fprintln(os.Stderr, "apbench:", err)
				os.Exit(1)
			}
			tb.Row(r.name, threshold, cell.inserts, cell.compactions, cell.deltaEnd,
				cell.reconfig.Round(time.Microsecond),
				fmt.Sprintf("%.0f", cell.modeledQPS),
				fmt.Sprintf("%.2f", cell.recall))
			record(benchRecord{
				Experiment: "churn",
				Params: map[string]interface{}{
					"ratio": r.name, "threshold": threshold,
					"n0": n0, "dim": dim, "k": k, "queries": nq,
				},
				ModeledQPS: cell.modeledQPS,
				Recall:     fptr(cell.recall),
			})
		}
	}
	tb.Render(os.Stdout)
	fmt.Println("modeled QPS = queries / modeled platform time. Inserts land in the exactly-scanned")
	fmt.Println("delta segment; each compaction recompiles the base and charges one reconfiguration")
	fmt.Println("sweep — churn degrades throughput smoothly instead of paying a sweep per insert.")
	fmt.Println()
	churnDurability()
}

// churnDurability measures what the write-ahead log costs the churn path
// and what recovery costs at boot, as a function of log length: host
// nanoseconds per logged insert (append alone, and the fsync premium of
// the always policy on top of it), then the close/reopen replay rate and
// total recovery time over the same directory.
func churnDurability() {
	const (
		n0, dim = 1 << 12, 64
		fsyncN  = 256
	)
	lengths := []int{1 << 10, 1 << 12, 1 << 14}
	if quick {
		lengths = []int{256, 1024}
	}
	ctx := context.Background()

	tb := report.NewTable(
		fmt.Sprintf("Durability: WAL append / fsync cost and recovery vs log length (n0=%d, d=%d, fsync premium over %d synced appends)",
			n0, dim, fsyncN),
		"log records", "wal bytes", "append ns/op", "fsync ns/op", "replay MB/s", "recovery")
	for _, records := range lengths {
		ds := apknn.RandomDataset(909, n0, dim)
		rng := stats.NewRNG(917)
		dir, err := os.MkdirTemp("", "apbench-wal-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		idx, err := apknn.OpenLive(ds,
			apknn.WithBackend(apknn.Fast),
			apknn.WithCompactThreshold(-1), // keep every record in the log
			apknn.WithDurability(dir, apknn.DurabilityOptions{Fsync: apknn.FsyncNever}))
		if err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		vecs := make([]apknn.Vector, records)
		for i := range vecs {
			vecs[i] = bitvec.Random(rng, dim)
		}
		start := time.Now()
		for _, v := range vecs {
			if _, err := idx.Insert(ctx, v); err != nil {
				fmt.Fprintln(os.Stderr, "apbench:", err)
				os.Exit(1)
			}
		}
		appendNS := float64(time.Since(start)) / float64(records)
		var walBytes int64
		if d := idx.Stats().Durability; d != nil {
			walBytes = d.WALSize
		}
		if err := idx.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}

		// The fsync premium: the same appends under the always policy pay
		// one fsync each; the difference is the sync, not the write.
		fdir, err := os.MkdirTemp("", "apbench-fsync-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(fdir)
		fidx, err := apknn.OpenLive(ds,
			apknn.WithBackend(apknn.Fast),
			apknn.WithCompactThreshold(-1),
			apknn.WithDurability(fdir, apknn.DurabilityOptions{Fsync: apknn.FsyncAlways}))
		if err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		start = time.Now()
		for i := 0; i < fsyncN; i++ {
			if _, err := fidx.Insert(ctx, vecs[i%len(vecs)]); err != nil {
				fmt.Fprintln(os.Stderr, "apbench:", err)
				os.Exit(1)
			}
		}
		fsyncNS := float64(time.Since(start))/fsyncN - appendNS
		if fsyncNS < 0 {
			fsyncNS = 0
		}
		fidx.Close()

		// Recovery: reopen the long log's directory and time the replay.
		start = time.Now()
		back, err := apknn.OpenLive(nil,
			apknn.WithBackend(apknn.Fast),
			apknn.WithCompactThreshold(-1),
			apknn.WithDurability(dir, apknn.DurabilityOptions{Fsync: apknn.FsyncNever}))
		if err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		recovery := time.Since(start)
		rec, _ := back.Recovery()
		if !rec.Recovered || back.Len() != n0+records {
			fmt.Fprintf(os.Stderr, "apbench: recovery dropped records: %+v, len %d\n", rec, back.Len())
			os.Exit(1)
		}
		replayMBs := float64(rec.ReplayedBytes) / (1 << 20) / recovery.Seconds()
		back.Close()

		tb.Row(records, walBytes,
			fmt.Sprintf("%.0f", appendNS), fmt.Sprintf("%.0f", fsyncNS),
			fmt.Sprintf("%.1f", replayMBs), recovery.Round(10*time.Microsecond))
		record(benchRecord{
			Experiment: "churn",
			Params: map[string]interface{}{
				"sweep": "durability", "records": records,
				"n0": n0, "dim": dim, "wal_bytes": walBytes,
			},
			AppendNSPerOp:  fptr(appendNS),
			FsyncNSPerOp:   fptr(fsyncNS),
			ReplayMBPerSec: fptr(replayMBs),
			RecoveryNS:     iptr(int64(recovery)),
		})
	}
	tb.Render(os.Stdout)
	fmt.Println("append ns/op logs under fsync=never (the write alone); fsync ns/op is the always-")
	fmt.Println("policy premium per acked insert. Recovery reopens the directory: snapshot load,")
	fmt.Println("log replay at the shown rate, then one base compile — the boot cost a crash buys.")
}

type churnCell struct {
	inserts     int
	compactions int64
	deltaEnd    int
	reconfig    time.Duration
	modeledQPS  float64
	recall      float64
}

// runChurnCell streams interleaved inserts and query batches through one
// live index, compacting synchronously whenever pending churn reaches the
// threshold, then scores recall against a brute-force mirror.
func runChurnCell(n0, dim, k, nq, batch int, insPerSearch float64, threshold int) (churnCell, error) {
	ds := apknn.RandomDataset(909, n0, dim)
	idx, err := apknn.OpenLive(ds,
		apknn.WithBackend(apknn.Fast),
		apknn.WithCompactThreshold(-1)) // synchronous compaction below
	if err != nil {
		return churnCell{}, err
	}
	defer idx.Close()
	ctx := context.Background()

	mirror := bitvec.NewDataset(dim)
	for i := 0; i < n0; i++ {
		mirror.Append(ds.At(i))
	}
	rng := stats.NewRNG(911)
	queries := workload.Queries(rng, nq, dim)
	var cell churnCell
	owed := 0.0
	for qi := 0; qi < nq; qi += batch {
		end := qi + batch
		if end > nq {
			end = nq
		}
		owed += insPerSearch * float64(end-qi)
		for ; owed >= 1; owed-- {
			v := bitvec.Random(rng, dim)
			if _, err := idx.Insert(ctx, v); err != nil {
				return churnCell{}, err
			}
			mirror.Append(v)
			cell.inserts++
		}
		if _, err := idx.Search(ctx, queries[qi:end], k); err != nil {
			return churnCell{}, err
		}
		if ls := idx.Stats().Live; ls.DeltaSize+ls.Tombstones >= threshold {
			if err := idx.Compact(ctx); err != nil {
				return churnCell{}, err
			}
		}
	}
	ls := idx.Stats().Live
	cell.compactions = ls.Compactions
	cell.deltaEnd = ls.DeltaSize
	cell.reconfig = ls.ReconfigTime
	if mt := idx.ModeledTime(); mt > 0 {
		cell.modeledQPS = float64(nq) / mt.Seconds()
	}
	// Recall against the mirror: sample the tail of the query stream.
	sample := queries[nq-32:]
	exact := apknn.ExactSearch(mirror, sample, k, 4)
	got, err := idx.Search(ctx, sample, k)
	if err != nil {
		return churnCell{}, err
	}
	for i := range sample {
		cell.recall += apknn.Recall(got[i], exact[i])
	}
	cell.recall /= float64(len(sample))
	return cell, nil
}

// clusterExperiment sweeps the multi-node tier: the same dataset and
// closed-loop HTTP load routed through aprouter's scatter-gather across
// shards × replicas × hedging. Modeled cluster QPS is queries over the
// slowest node's modeled platform time — the node-granularity version of
// the paper's max-across-boards fleet bound — so adding shards shrinks
// each node's partition and lifts throughput, while replication buys
// fault-tolerance (and hedged tail-cutting) at no modeled-throughput cost
// until hedges start duplicating work.
func clusterExperiment() {
	const (
		n, dim, k     = 1 << 13, 64, 8
		clients, reqs = 12, 25
	)
	ds := apknn.RandomDataset(1234, n, dim)
	queries := apknn.RandomQueries(1235, clients*reqs, dim)

	tb := report.NewTable(
		fmt.Sprintf("Cluster scatter-gather: shards x replicas x hedging (n=%d, d=%d, k=%d, %d clients x %d reqs, fast nodes)",
			n, dim, k, clients, reqs),
		"shards", "replicas", "hedge", "cluster QPS (modeled)", "host QPS", "p50", "p99", "hedges")
	for _, shards := range []int{1, 2, 4} {
		for _, replicas := range []int{1, 2} {
			for _, hedge := range []time.Duration{0, 5 * time.Millisecond} {
				if hedge > 0 && replicas == 1 {
					continue // nothing to hedge to
				}
				cell, err := runClusterCell(ds, queries, shards, replicas, hedge, clients, reqs, k)
				if err != nil {
					fmt.Fprintln(os.Stderr, "apbench:", err)
					os.Exit(1)
				}
				tb.Row(shards, replicas, hedge,
					fmt.Sprintf("%.0f", cell.modeledQPS),
					fmt.Sprintf("%.0f", cell.hostQPS),
					cell.p50.Round(time.Microsecond),
					cell.p99.Round(time.Microsecond),
					cell.hedges)
				record(benchRecord{
					Experiment: "cluster",
					Params: map[string]interface{}{
						"shards": shards, "replicas": replicas, "hedge_ns": int64(hedge),
						"n": n, "dim": dim, "k": k, "clients": clients,
					},
					ModeledQPS: cell.modeledQPS,
					HostQPS:    fptr(cell.hostQPS),
					P50NS:      iptr(int64(cell.p50)),
					P99NS:      iptr(int64(cell.p99)),
				})
			}
		}
	}
	tb.Render(os.Stdout)
	fmt.Println("cluster QPS (modeled) = queries / max-across-nodes modeled time: partitioning the")
	fmt.Println("dataset across shard nodes divides each node's stream+reconfig work, the same")
	fmt.Println("data-parallel decomposition the paper applies across boards (§III-C), one level up.")
}

type clusterCell struct {
	modeledQPS float64
	hostQPS    float64
	p50, p99   time.Duration
	hedges     int64
}

// runClusterCell boots a full in-process cluster — shards × replicas
// apserve nodes plus a router — on loopback listeners, drives the
// closed-loop load through the router, and tears everything down so the
// next cell starts cold.
func runClusterCell(ds *apknn.Dataset, queries []apknn.Vector, shards, replicas int,
	hedge time.Duration, clients, reqs, k int) (clusterCell, error) {
	n := ds.Len()
	chunk := (n + shards - 1) / shards
	m := &cluster.Manifest{}
	var indexes []apknn.Index
	var nodeSrvs []*serve.Server
	var nodeHTTP []*http.Server
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, hs := range nodeHTTP {
			_ = hs.Shutdown(ctx)
		}
		for _, s := range nodeSrvs {
			_ = s.Close(ctx)
		}
	}
	for s := 0; s < shards; s++ {
		lo, hi := s*chunk, (s+1)*chunk
		if hi > n {
			hi = n
		}
		part := ds.Slice(lo, hi)
		sh := cluster.Shard{Base: lo}
		for rep := 0; rep < replicas; rep++ {
			idx, err := apknn.Open(part, apknn.WithBackend(apknn.Fast))
			if err != nil {
				shutdown()
				return clusterCell{}, err
			}
			srv := serve.New(idx, serve.Config{
				Dim:         ds.Dim(),
				NodeID:      fmt.Sprintf("shard%d-%c", s, 'a'+rep),
				Vectors:     part.Len(),
				MaxBatch:    64,
				BatchWindow: time.Millisecond,
				MaxInFlight: 4 * clients * reqs,
			})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				shutdown()
				return clusterCell{}, err
			}
			hs := &http.Server{Handler: srv.Handler()}
			go func() { _ = hs.Serve(ln) }()
			indexes = append(indexes, idx)
			nodeSrvs = append(nodeSrvs, srv)
			nodeHTTP = append(nodeHTTP, hs)
			sh.Replicas = append(sh.Replicas, "http://"+ln.Addr().String())
		}
		m.Shards = append(m.Shards, sh)
	}
	router, err := cluster.New(m, cluster.Config{
		HedgeDelay:    hedge,
		ProbeInterval: -1, // healthy in-process fleet; skip probe noise
		DefaultK:      k,
		Dim:           ds.Dim(),
	})
	if err != nil {
		shutdown()
		return clusterCell{}, err
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		shutdown()
		return clusterCell{}, err
	}
	rsrv := &http.Server{Handler: router.Handler()}
	go func() { _ = rsrv.Serve(rln) }()

	transport := &http.Transport{MaxIdleConnsPerHost: clients}
	client := serve.Client{
		BaseURL:    "http://" + rln.Addr().String(),
		HTTPClient: &http.Client{Transport: transport},
	}
	latencies := make([]time.Duration, clients*reqs)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < reqs; r++ {
				i := c*reqs + r
				t0 := time.Now()
				if _, err := client.Search(context.Background(), queries[i], k); err != nil {
					fmt.Fprintln(os.Stderr, "apbench: cluster client:", err)
					os.Exit(1)
				}
				latencies[i] = time.Since(t0)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	transport.CloseIdleConnections()

	closeCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rsrv.Shutdown(closeCtx); err != nil {
		shutdown()
		return clusterCell{}, fmt.Errorf("router shutdown: %w", err)
	}
	router.Close()
	shutdown()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	total := float64(len(latencies))
	var slowest time.Duration
	for _, idx := range indexes {
		if mt := idx.ModeledTime(); mt > slowest {
			slowest = mt
		}
	}
	cell := clusterCell{
		hostQPS: total / wall.Seconds(),
		p50:     latencies[len(latencies)/2],
		p99:     latencies[len(latencies)*99/100],
		hedges:  router.Stats().Hedges,
	}
	if slowest > 0 {
		cell.modeledQPS = total / slowest.Seconds()
	}
	return cell, nil
}

// muxExperiment demonstrates §VI-B: seven queries per stream pass at 7x the
// STE cost.
func muxExperiment() {
	rng := stats.NewRNG(88)
	const dim, n = 32, 16
	ds := bitvec.RandomDataset(rng, n, dim)
	l := core.NewLayout(dim)
	tb := report.NewTable("Fig. 6 / §VI-B: symbol stream multiplexing",
		"slices", "STEs", "stream symbols for 14 queries", "throughput gain")
	queries := workload.Queries(rng, 14, dim)
	for _, slices := range []int{1, 2, 4, 7} {
		net := automata.NewNetwork()
		core.BuildMux(net, ds, l, slices)
		stream := core.BuildMuxStream(queries, l, slices)
		tb.Row(slices, net.Stats().STEs, len(stream),
			fmt.Sprintf("%.0fx", core.MuxThroughputGain(slices)))
	}
	tb.Render(os.Stdout)
}

// hotpathExperiment is the real wall-clock benchmark of the blocked parallel
// Hamming kernel (internal/knn Scan) versus the Linear oracle it must match
// byte-for-byte: a n x dim x workers x block-size sweep reporting ns/query,
// host QPS, sustained scan bandwidth, and speedup over the oracle. Every cell
// re-verifies kernel results against Linear and aborts on any divergence, so
// a committed BENCH_hotpath.json can only ever contain oracle-identical
// cells. Unlike every other experiment here, the modeled column is secondary:
// this sweep is the committed trajectory of what the host actually sustains.
func hotpathExperiment() {
	ns := []int{1 << 15, 100_000}
	dims := []int{64, 128}
	workerSet := dedupInts([]int{1, 2, 4, runtime.NumCPU()})
	blocks := []int{0, 1024, 8192} // 0 = auto (L2-sized)
	target := 150 * time.Millisecond
	if quick {
		ns = []int{1 << 14}
		workerSet = dedupInts([]int{1, runtime.NumCPU()})
		blocks = []int{0}
		target = 30 * time.Millisecond
	}
	const k, nq = 10, 16

	tb := report.NewTable(
		fmt.Sprintf("Hot path: blocked Hamming kernel vs Linear oracle (k=%d, >=%.0fms/cell)",
			k, target.Seconds()*1000),
		"n", "dim", "impl", "workers", "block", "ns/query", "host QPS", "GB/s", "speedup", "oracle")
	rng := stats.NewRNG(2026)
	platform := perfmodel.XeonE5()
	for _, n := range ns {
		for _, dim := range dims {
			ds := bitvec.RandomDataset(rng, n, dim)
			queries := workload.Queries(rng, nq, dim)
			bytesPerQuery := int64(ds.Len()) * int64(bitvec.WordsFor(dim)) * 8
			modeledQPS := 1 / perfmodel.CPUTime(platform, n, 1, dim).Seconds()

			baseNS := timeHotpath(target, queries, func(q bitvec.Vector) {
				knn.Linear(ds, q, k)
			})
			tb.Row(n, dim, "linear", 1, "-",
				baseNS, fmt.Sprintf("%.0f", 1e9/float64(baseNS)),
				fmt.Sprintf("%.2f", gbPerSec(bytesPerQuery, baseNS)), "1.00x", true)
			record(benchRecord{
				Experiment:  "hotpath",
				Params:      map[string]interface{}{"impl": "linear", "n": n, "dim": dim, "k": k, "workers": 1, "block": 0},
				ModeledQPS:  modeledQPS,
				HostQPS:     fptr(1e9 / float64(baseNS)),
				NSPerQuery:  iptr(baseNS),
				GBPerSec:    fptr(gbPerSec(bytesPerQuery, baseNS)),
				Speedup:     fptr(1),
				OracleMatch: bptr(true),
			})

			for _, workers := range workerSet {
				for _, block := range blocks {
					cfg := knn.ScanConfig{Workers: workers, BlockVectors: block}
					for _, q := range queries {
						got, err := knn.Scan(ds, q, k, cfg)
						if err != nil {
							fmt.Fprintln(os.Stderr, "apbench: hotpath:", err)
							os.Exit(1)
						}
						if !neighborsIdentical(got, knn.Linear(ds, q, k)) {
							fmt.Fprintf(os.Stderr,
								"apbench: hotpath: kernel diverged from Linear oracle at n=%d dim=%d workers=%d block=%d\n",
								n, dim, workers, block)
							os.Exit(1)
						}
					}
					cellNS := timeHotpath(target, queries, func(q bitvec.Vector) {
						if _, err := knn.Scan(ds, q, k, cfg); err != nil {
							fmt.Fprintln(os.Stderr, "apbench: hotpath:", err)
							os.Exit(1)
						}
					})
					speedup := float64(baseNS) / float64(cellNS)
					blockLabel := fmt.Sprintf("%d", block)
					if block == 0 {
						blockLabel = "auto"
					}
					tb.Row(n, dim, "kernel", workers, blockLabel,
						cellNS, fmt.Sprintf("%.0f", 1e9/float64(cellNS)),
						fmt.Sprintf("%.2f", gbPerSec(bytesPerQuery, cellNS)),
						fmt.Sprintf("%.2fx", speedup), true)
					record(benchRecord{
						Experiment:  "hotpath",
						Params:      map[string]interface{}{"impl": "kernel", "n": n, "dim": dim, "k": k, "workers": workers, "block": block},
						ModeledQPS:  modeledQPS,
						HostQPS:     fptr(1e9 / float64(cellNS)),
						NSPerQuery:  iptr(cellNS),
						GBPerSec:    fptr(gbPerSec(bytesPerQuery, cellNS)),
						Speedup:     fptr(speedup),
						OracleMatch: bptr(true),
					})
				}
			}
		}
	}
	tb.Render(os.Stdout)
	fmt.Println("ns/query is single-query latency (adaptive reps per cell); GB/s is packed-word scan")
	fmt.Println("bandwidth; speedup is vs the Linear oracle on the same (n, dim). Every kernel cell")
	fmt.Println("is verified byte-identical to Linear before timing — a divergence aborts the run.")
}

// timeHotpath runs fn over the query set round-robin until at least target
// wall-clock has elapsed (minimum one full pass) and returns ns per call.
func timeHotpath(target time.Duration, queries []bitvec.Vector, fn func(bitvec.Vector)) int64 {
	fn(queries[0]) // warm up caches and the scheduler
	reps := 0
	start := time.Now()
	var elapsed time.Duration
	for elapsed < target || reps < len(queries) {
		fn(queries[reps%len(queries)])
		reps++
		elapsed = time.Since(start)
	}
	return elapsed.Nanoseconds() / int64(reps)
}

func gbPerSec(bytesPerQuery, nsPerQuery int64) float64 {
	return float64(bytesPerQuery) / float64(nsPerQuery) // bytes/ns == GB/s
}

func dedupInts(in []int) []int {
	var out []int
	for _, v := range in {
		seen := false
		for _, o := range out {
			seen = seen || o == v
		}
		if !seen {
			out = append(out, v)
		}
	}
	return out
}

func neighborsIdentical(a, b []knn.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
