package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// regressCheck gates a hotpath run against a committed apbench/v1 baseline
// (BENCH_hotpath.json). Absolute ns/query is machine-dependent, so the gate
// compares the host-normalized speedup instead — each run's kernel cells
// against that same run's Linear oracle baseline — which cancels the host
// out of both sides. Kernel cells are matched on (dim, workers, block),
// ignoring n: the -quick grid shrinks n below anything the committed full
// sweep contains, and per-candidate speedup is the stable quantity across
// sizes. A matched cell whose speedup drops more than band below the
// baseline mean fails the run; upside drift only warns (a faster kernel is
// not a regression, but past +band it is probably a baseline gone stale).
func regressCheck(path string, results []benchRecord, band float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchJSON
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if base.Schema != "apbench/v1" {
		return fmt.Errorf("baseline %s has schema %q, want apbench/v1", path, base.Schema)
	}
	baseline := speedupsByCell(base.Results)
	if len(baseline) == 0 {
		return fmt.Errorf("baseline %s has no hotpath kernel cells", path)
	}
	current := speedupsByCell(results)
	if len(current) == 0 {
		return fmt.Errorf("this run produced no hotpath kernel cells (did it include -exp hotpath?)")
	}

	keys := make([]string, 0, len(current))
	for key := range current {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	matched, failed := 0, 0
	for _, key := range keys {
		bs, ok := baseline[key]
		if !ok {
			fmt.Printf("regress: %-32s no baseline cell, skipped\n", key)
			continue
		}
		matched++
		got := mean(current[key])
		want := mean(bs)
		drift := got/want - 1
		verdict := "ok"
		switch {
		case drift < -band:
			verdict = "FAIL"
			failed++
		case drift > band:
			verdict = "warn: above band (stale baseline?)"
		}
		fmt.Printf("regress: %-32s speedup %.2fx vs baseline %.2fx (%+.1f%%) %s\n",
			key, got, want, drift*100, verdict)
	}
	if matched == 0 {
		return fmt.Errorf("no cells of this run match the baseline grid in %s", path)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d matched cell(s) regressed past -%.0f%%", failed, matched, band*100)
	}
	fmt.Printf("regress: %d matched cell(s) within the ±%.0f%% band\n", matched, band*100)
	return nil
}

// speedupsByCell collects hotpath kernel speedups keyed by the
// machine-portable cell coordinates.
func speedupsByCell(rows []benchRecord) map[string][]float64 {
	out := map[string][]float64{}
	for _, r := range rows {
		if r.Experiment != "hotpath" || r.Speedup == nil {
			continue
		}
		if impl, _ := r.Params["impl"].(string); impl != "kernel" {
			continue
		}
		key := fmt.Sprintf("dim=%v workers=%v block=%v",
			r.Params["dim"], r.Params["workers"], r.Params["block"])
		out[key] = append(out[key], *r.Speedup)
	}
	return out
}

func mean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
