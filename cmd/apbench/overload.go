// The overload experiment: an open-loop arrival ramp driven into a
// fixed-capacity backend, comparing the static MaxInFlight admission gate
// against the SLO-adaptive controller at different queue-wait p99 targets.
// Open-loop matters: arrivals do not slow down when the server does, which
// is exactly the regime where a static gate lets the queue tail blow past
// any latency objective while the adaptive gate sheds early and holds it.
package main

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	apknn "repro"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/serve"
)

// pacedIndex serializes a real index behind a fixed per-flush service time —
// the controllable saturation knob: capacity is exactly maxBatch/service
// queries per second, so the arrival schedule can be placed on either side
// of it.
type pacedIndex struct {
	apknn.Index
	mu      sync.Mutex
	service time.Duration
}

func (p *pacedIndex) Search(ctx context.Context, queries []apknn.Vector, k int) ([][]apknn.Neighbor, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	time.Sleep(p.service)
	return p.Index.Search(ctx, queries, k)
}

type overloadCell struct {
	arrivals, successes, sheds int64
	goodputQPS                 float64
	modeledQPS                 float64
	clientP50, clientP99       time.Duration
	// steadyP99 is the queue-wait p99 over the hold phase (peak load after
	// the ramp) — the tail the controller is asked to hold, measured from
	// the same histogram it watches via a start/end snapshot delta.
	steadyP99 time.Duration
	slo       *apknn.SLOStats
}

// overloadExperiment ramps an open-loop load to 4× its base rate against
// one paced backend, once per admission policy: the static gate at its
// in-flight cap, then the SLO-adaptive controller at each p99 target. The
// committed BENCH_overload.json acceptance reads the last two columns: the
// adaptive cells' held queue-wait p99 lands near their target while the
// static cell's blows past it, at comparable goodput.
func overloadExperiment() {
	const (
		dim, k      = 64, 8
		maxBatch    = 2
		staticCap   = 256
		adaptiveCap = 64
	)
	// The service quantum sets the controller's resolution: each queued
	// flush adds 4ms of queue wait, a 10% step against the 40ms target.
	service := 4 * time.Millisecond // capacity = 2/4ms = 500 qps
	baseQPS := 225.0                // ramps ×4 to 900 qps, 1.8× capacity
	ramp, hold := 6*time.Second, 3*time.Second
	if quick {
		ramp, hold = 1500*time.Millisecond, time.Second
	}
	targets := []time.Duration{0, 40 * time.Millisecond, 64 * time.Millisecond}

	tb := report.NewTable(
		fmt.Sprintf("Overload: open-loop ramp %.0f→%.0f qps over %v + %v hold, adaptive admission vs static gate",
			baseQPS, 4*baseQPS, ramp, hold),
		"mode", "target p99", "cap", "arrivals", "shed", "goodput QPS", "held p99", "client p99")
	var staticGoodput float64
	for _, target := range targets {
		inflightCap := staticCap
		if target > 0 {
			inflightCap = adaptiveCap
		}
		cell, err := runOverloadCell(target, inflightCap, maxBatch, k, dim, service, baseQPS, ramp, hold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		mode := "static"
		if target > 0 {
			mode = "adaptive"
		} else {
			staticGoodput = cell.goodputQPS
		}
		shedRate := float64(cell.sheds) / float64(cell.arrivals)
		tb.Row(mode, targetLabel(target), inflightCap,
			cell.arrivals,
			fmt.Sprintf("%.1f%%", 100*shedRate),
			fmt.Sprintf("%.0f", cell.goodputQPS),
			cell.steadyP99.Round(time.Millisecond),
			cell.clientP99.Round(time.Millisecond))
		record(benchRecord{
			Experiment: "overload",
			Params: map[string]interface{}{
				"mode": mode, "max_inflight": inflightCap, "batch": maxBatch,
				"service_ns": int64(service), "base_qps": baseQPS,
				"peak_qps": 4 * baseQPS, "ramp_ns": int64(ramp), "hold_ns": int64(hold),
				"dim": dim, "k": k,
			},
			ModeledQPS:    cell.modeledQPS,
			P50NS:         iptr(int64(cell.clientP50)),
			P99NS:         iptr(int64(cell.clientP99)),
			TargetP99NS:   iptr(int64(target)),
			ObservedP99NS: iptr(int64(cell.steadyP99)),
			ShedRate:      fptr(shedRate),
			GoodputQPS:    fptr(cell.goodputQPS),
		})
		if cell.slo != nil {
			fmt.Printf("  slo %v: final limit %d, controller p99 %v, %d cuts, %d raises\n",
				target, cell.slo.Limit, time.Duration(cell.slo.ObservedP99NS), cell.slo.Decreases, cell.slo.Increases)
		}
		if target > 0 && staticGoodput > 0 {
			fmt.Printf("  slo %v: held p99 at %.2fx target, goodput %.2fx static baseline\n",
				target, float64(cell.steadyP99)/float64(target), cell.goodputQPS/staticGoodput)
		}
		// The controller's ~1s signal window reads the shared queue-wait
		// histogram; let the previous cell's samples expire before the next
		// controller boots, or its first tick cuts on stale evidence.
		time.Sleep(1200 * time.Millisecond)
	}
	tb.Render(os.Stdout)
	fmt.Println("held p99 = queue-wait p99 over the hold phase (peak load, post-ramp): the static gate")
	fmt.Println("queues to its cap and breaches any target; the adaptive gate sheds early and holds it.")
}

func targetLabel(target time.Duration) string {
	if target == 0 {
		return "-"
	}
	return target.String()
}

// runOverloadCell fires one open-loop arrival schedule — linear rate ramp
// from base to 4×base over ramp, then held — at a fresh server over a paced
// backend, and measures shed rate, goodput, and the held queue-wait tail.
func runOverloadCell(target time.Duration, maxInFlight, maxBatch, k, dim int,
	service time.Duration, baseQPS float64, ramp, hold time.Duration) (overloadCell, error) {
	ds := apknn.RandomDataset(999, 4096, dim)
	inner, err := apknn.Open(ds, apknn.WithBackend(apknn.Fast))
	if err != nil {
		return overloadCell{}, err
	}
	idx := &pacedIndex{Index: inner, service: service}
	// One backend execution slot: flushes queue for it, so backlog shows up
	// where the controller looks — the members' queue wait.
	srv := serve.New(idx, serve.Config{
		MaxBatch:             maxBatch,
		BatchWindow:          2 * time.Millisecond,
		MaxInFlight:          maxInFlight,
		MaxConcurrentFlushes: 1,
		SLOTargetP99:         target,
		Dim:                  dim,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return overloadCell{}, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	transport := &http.Transport{MaxIdleConnsPerHost: maxInFlight}
	client := serve.Client{
		BaseURL:    "http://" + ln.Addr().String(),
		HTTPClient: &http.Client{Transport: transport},
	}
	queries := apknn.RandomQueries(998, 512, dim)
	// The same registered series serve's micro-batcher records queue waits
	// into; snapshot deltas isolate this cell's hold phase exactly.
	queueHist := obs.NewHistogram("apknn_serve_queue_seconds",
		"Micro-batcher queue wait per coalesced request")

	// Pre-compute the arrival schedule: open-loop, rate(t) = base×(1+3t/ramp)
	// capped at 4×base through the hold phase.
	var offsets []time.Duration
	total := ramp + hold
	for t := 0.0; t < total.Seconds(); {
		rate := baseQPS * (1 + 3*math.Min(t/ramp.Seconds(), 1))
		t += 1.0 / rate
		offsets = append(offsets, time.Duration(t*float64(time.Second)))
	}

	var wg sync.WaitGroup
	var successes, sheds atomic.Int64
	var latMu sync.Mutex
	var lats []time.Duration
	var firstErr error
	var holdSnap obs.Snapshot
	holdMarked := false
	start := time.Now()
	for i, off := range offsets {
		if !holdMarked && off >= ramp {
			holdSnap = queueHist.Snapshot()
			holdMarked = true
		}
		if d := time.Until(start.Add(off)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(q apknn.Vector) {
			defer wg.Done()
			t0 := time.Now()
			_, err := client.Search(context.Background(), q, k)
			switch {
			case err == nil:
				successes.Add(1)
				latMu.Lock()
				lats = append(lats, time.Since(t0))
				latMu.Unlock()
			case errors.Is(err, serve.ErrSaturated):
				sheds.Add(1)
			default:
				latMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				latMu.Unlock()
			}
		}(queries[i%len(queries)])
	}
	// Controller state at peak load, before the drain lets the window empty.
	slo := srv.Stats().SLO
	wg.Wait()
	steady := queueHist.Snapshot().Sub(holdSnap)
	transport.CloseIdleConnections()

	closeCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(closeCtx); err != nil {
		return overloadCell{}, fmt.Errorf("listener shutdown: %w", err)
	}
	if err := srv.Close(closeCtx); err != nil {
		return overloadCell{}, fmt.Errorf("serving drain: %w", err)
	}
	if firstErr != nil {
		return overloadCell{}, fmt.Errorf("overload client: %w", firstErr)
	}

	cell := overloadCell{
		arrivals:  int64(len(offsets)),
		successes: successes.Load(),
		sheds:     sheds.Load(),
		// Goodput over the scheduled window, not wall-with-drain: the static
		// gate's hundreds of queued stragglers would otherwise stretch its
		// own denominator and make the comparison shed-count dependent.
		goodputQPS: float64(successes.Load()) / total.Seconds(),
		steadyP99:  time.Duration(steady.Quantile(0.99)),
		slo:        slo,
	}
	if modeled := inner.ModeledTime(); modeled > 0 {
		cell.modeledQPS = float64(successes.Load()) / modeled.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		cell.clientP50 = lats[len(lats)/2]
		cell.clientP99 = lats[len(lats)*99/100]
	}
	return cell, nil
}
