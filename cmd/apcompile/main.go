// Command apcompile builds the paper's kNN automata for a workload, places
// them on the modeled AP board, prints the apadmin-style compilation report
// (§V-A), and optionally exports the design as ANML.
//
//	apcompile -workload SIFT
//	apcompile -n 64 -dim 32 -anml design.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/anml"
	"repro/internal/ap"
	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	wname := flag.String("workload", "", "Table II workload (WordEmbed, SIFT, TagSpace); overrides -n/-dim")
	n := flag.Int("n", 256, "dataset vectors to encode")
	dim := flag.Int("dim", 64, "code dimensionality")
	seed := flag.Uint64("seed", 7, "random seed")
	anmlOut := flag.String("anml", "", "write the design as ANML XML to this file")
	paperArea := flag.Bool("paper-area", true, "apply the §V-A calibrated routing-area factor")
	packed := flag.Bool("packed", false, "use the §VI-A vector-packed design")
	flag.Parse()

	if *wname != "" {
		w, err := workload.ByName(*wname)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apcompile:", err)
			os.Exit(2)
		}
		*dim = w.Dim
		*n = core.DefaultBoardCapacity(w.Dim)
	}

	ds := bitvec.RandomDataset(stats.NewRNG(*seed), *n, *dim)
	layout := core.NewLayout(*dim)
	net := automata.NewNetwork()
	if *packed {
		core.BuildPacked(net, ds, layout, 0)
	} else {
		core.BuildLinear(net, ds, layout)
	}
	if err := net.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "apcompile: invalid design:", err)
		os.Exit(1)
	}

	cfg := ap.Gen1()
	if *paperArea {
		cfg.CompilerAreaFactor = ap.PaperAreaFactor
	}
	placement, err := ap.Compile(net, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apcompile:", err)
		os.Exit(1)
	}
	fmt.Printf("design: %d vectors x %d dims (%s)\n", *n, *dim, designKind(*packed))
	fmt.Print(placement.Report())

	if *anmlOut != "" {
		f, err := os.Create(*anmlOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apcompile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := anml.Encode(f, net, fmt.Sprintf("knn-%dx%d", *n, *dim)); err != nil {
			fmt.Fprintln(os.Stderr, "apcompile:", err)
			os.Exit(1)
		}
		fmt.Printf("ANML written to %s\n", *anmlOut)
	}
}

func designKind(packed bool) string {
	if packed {
		return "vector-packed, §VI-A"
	}
	return "one macro per vector, §III"
}
