// Command apcompile builds the paper's kNN automata for a workload, places
// them on the modeled AP board, prints the apadmin-style compilation report
// (§V-A), and optionally exports the design as ANML or verifies the
// compiled design end to end through the public backend surface.
//
//	apcompile -workload SIFT
//	apcompile -n 64 -dim 32 -anml design.xml
//	apcompile -n 64 -dim 32 -verify
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	apknn "repro"
	"repro/internal/anml"
	"repro/internal/ap"
	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	wname := flag.String("workload", "", "Table II workload (WordEmbed, SIFT, TagSpace); overrides -n/-dim")
	n := flag.Int("n", 256, "dataset vectors to encode")
	dim := flag.Int("dim", 64, "code dimensionality")
	seed := flag.Uint64("seed", 7, "random seed")
	anmlOut := flag.String("anml", "", "write the design as ANML XML to this file")
	verify := flag.Bool("verify", false, "run the compiled design through the AP backend and check it against the exact scan")
	paperArea := flag.Bool("paper-area", true, "apply the §V-A calibrated routing-area factor")
	packed := flag.Bool("packed", false, "use the §VI-A vector-packed design")
	flag.Parse()

	if *wname != "" {
		w, err := workload.ByName(*wname)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apcompile:", err)
			os.Exit(2)
		}
		*dim = w.Dim
		*n = core.DefaultBoardCapacity(w.Dim)
	}

	ds := bitvec.RandomDataset(stats.NewRNG(*seed), *n, *dim)
	layout := core.NewLayout(*dim)
	net := automata.NewNetwork()
	if *packed {
		core.BuildPacked(net, ds, layout, 0)
	} else {
		core.BuildLinear(net, ds, layout)
	}
	if err := net.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "apcompile: invalid design:", err)
		os.Exit(1)
	}

	cfg := ap.Gen1()
	if *paperArea {
		cfg.CompilerAreaFactor = ap.PaperAreaFactor
	}
	placement, err := ap.Compile(net, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apcompile:", err)
		os.Exit(1)
	}
	fmt.Printf("design: %d vectors x %d dims (%s)\n", *n, *dim, designKind(*packed))
	fmt.Print(placement.Report())

	if *anmlOut != "" {
		f, err := os.Create(*anmlOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apcompile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := anml.Encode(f, net, fmt.Sprintf("knn-%dx%d", *n, *dim)); err != nil {
			fmt.Fprintln(os.Stderr, "apcompile:", err)
			os.Exit(1)
		}
		fmt.Printf("ANML written to %s\n", *anmlOut)
	}

	if *verify {
		// The same dataset served through the public Backend surface: the
		// cycle-accurate AP backend must agree with the exact CPU scan.
		idx, err := apknn.Open(ds, apknn.WithBackend(apknn.AP), apknn.WithGeneration(apknn.Gen1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "apcompile:", err)
			os.Exit(1)
		}
		const q, k = 4, 3
		queries := apknn.RandomQueries(*seed+1, q, *dim)
		got, err := idx.Search(context.Background(), queries, k)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apcompile:", err)
			os.Exit(1)
		}
		want := apknn.ExactSearch(ds, queries, k, 2)
		for qi := range queries {
			for j := range want[qi] {
				if got[qi][j] != want[qi][j] {
					fmt.Fprintf(os.Stderr, "apcompile: verify failed: query %d rank %d = %v, want %v\n",
						qi, j, got[qi][j], want[qi][j])
					os.Exit(1)
				}
			}
		}
		fmt.Printf("verify: AP backend matches exact scan on %d queries (modeled time %v)\n",
			q, idx.ModeledTime())
	}
}

func designKind(packed bool) string {
	if packed {
		return "vector-packed, §VI-A"
	}
	return "one macro per vector, §III"
}
