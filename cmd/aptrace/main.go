// Command aptrace prints the cycle-accurate execution traces of the paper's
// Fig. 3 (one macro) and Fig. 4 (temporal sort of two vectors).
//
//	aptrace                       # Fig. 3: vector 1011, query 1001
//	aptrace -two                  # Fig. 4: vectors 1011 and 0000
//	aptrace -vector 110010 -query 101010 -layout safe
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	apknn "repro"
	"repro/internal/automata"
	"repro/internal/core"
)

func main() {
	vecStr := flag.String("vector", "1011", "encoded dataset vector bits")
	vecBStr := flag.String("vector2", "0000", "second vector for -two")
	queryStr := flag.String("query", "1001", "query vector bits")
	two := flag.Bool("two", false, "trace two vectors (Fig. 4)")
	layoutName := flag.String("layout", "paper", "stream layout: paper (Fig. 3 exact) or safe (monotonic)")
	flag.Parse()

	vec, err := apknn.ParseVector(*vecStr)
	exitOn(err)
	query, err := apknn.ParseVector(*queryStr)
	exitOn(err)
	if vec.Dim() != query.Dim() {
		exitOn(fmt.Errorf("vector dim %d != query dim %d", vec.Dim(), query.Dim()))
	}

	var layout core.Layout
	switch *layoutName {
	case "paper":
		layout = core.PaperLayout(vec.Dim())
	case "safe":
		layout = core.NewLayout(vec.Dim())
	default:
		exitOn(fmt.Errorf("unknown layout %q", *layoutName))
	}

	net := automata.NewNetwork()
	core.BuildMacro(net, vec, layout, 0)
	if *two {
		vecB, err := apknn.ParseVector(*vecBStr)
		exitOn(err)
		core.BuildMacro(net, vecB, layout, 1)
		fmt.Printf("Fig. 4 trace: A=%s B=%s query=%s (%s layout)\n", *vecStr, *vecBStr, *queryStr, *layoutName)
	} else {
		fmt.Printf("Fig. 3 trace: vector=%s query=%s (%s layout)\n", *vecStr, *queryStr, *layoutName)
	}

	sim, err := automata.NewSimulator(net)
	exitOn(err)
	sim.Trace = func(tc automata.CycleTrace) {
		names := make([]string, 0, len(tc.Active))
		for _, id := range tc.Active {
			name := net.NameOf(id)
			if name == "" {
				name = fmt.Sprintf("e%d", id)
			}
			names = append(names, name)
		}
		var counts []string
		for _, c := range tc.Counters {
			counts = append(counts, fmt.Sprintf("%s=%d", net.NameOf(c.Element), c.Count))
		}
		fmt.Printf("t=%2d sym=%s  active: %-40s  %s\n",
			tc.Cycle+1, symName(tc.Symbol), strings.Join(names, " "), strings.Join(counts, " "))
	}
	reports := sim.Run(core.BuildQueryStream(query, layout))
	for _, r := range reports {
		ihd, err := layout.IHDFromCycle(r.Cycle)
		suffix := ""
		if err == nil {
			suffix = fmt.Sprintf(" (inverted Hamming distance %d, Hamming distance %d)",
				ihd, layout.Dim-ihd)
		}
		fmt.Printf("report: vector %d at cycle %d (t=%d)%s\n", r.ReportID, r.Cycle, r.Cycle+1, suffix)
	}
}

func symName(b byte) string {
	switch b {
	case core.SymSOF:
		return "SOF "
	case core.SymEOF:
		return "EOF "
	case core.SymPad:
		return "^EOF"
	case core.SymBit0:
		return "0   "
	case core.SymBit1:
		return "1   "
	default:
		return fmt.Sprintf("%02x  ", b)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "aptrace:", err)
		os.Exit(1)
	}
}
