// Command aptop is a terminal dashboard over a running fleet: it polls
// /v1/stats, /metrics and /v1/debug/traces on every node of a -shards
// topology (plus an optional -router) and renders one refreshing frame —
// live QPS, windowed p50/p99, shed and hedge columns per node, then the
// fleet's most recent anomalies (slow and errored traces straight out of
// each node's flight recorder, and anomaly-bundle trips from /metrics).
//
//	aptop -router 127.0.0.1:8090 -shards "127.0.0.1:9001,127.0.0.1:9002;127.0.0.1:9003"
//	aptop -shards 127.0.0.1:9001 -once        # one frame, no screen control
//
// aptop is read-only: it only issues GETs the nodes already serve, so it
// is safe to point at a production fleet.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
)

// node is one polled endpoint: a shard (serve.StatsResponse) or the router
// (cluster.StatsResponse). One frame holds each node's latest sample plus
// the previous frame's counters for QPS deltas.
type node struct {
	addr   string
	router bool

	client *serve.Client

	mu        sync.Mutex
	err       error     // last poll error, shown in the frame
	sampledAt time.Time // when the current counters were read
	prevAt    time.Time
	id        string
	version   string
	vectors   int
	requests  int64 // cumulative admitted requests (search + batch)
	prevReqs  int64
	shed      int64 // cumulative 429s (shard) — the router never sheds
	hedges    int64
	hedgeWins int64
	p50, p99  time.Duration // windowed (last ~1m)
	anomalies int64         // anomaly-bundle trips (apknn_anomaly_dumps_total)
	recorded  int64         // flight-recorder completions
	traces    []*obs.TraceRecord
}

func main() {
	routerAddr := flag.String("router", "", "router address to poll, e.g. 127.0.0.1:8090")
	shards := flag.String("shards", "", "shard topology to poll: replicas comma-separated, shards semicolon-separated (same syntax as aprouter)")
	interval := flag.Duration("interval", time.Second, "poll and redraw period")
	once := flag.Bool("once", false, "render a single frame and exit (no screen control)")
	nTraces := flag.Int("n", 5, "recent anomalous traces shown per class")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("aptop", obs.BuildVersion())
		return
	}
	if *routerAddr == "" && *shards == "" {
		fmt.Fprintln(os.Stderr, "aptop: at least one of -router or -shards is required")
		os.Exit(2)
	}

	var nodes []*node
	if *routerAddr != "" {
		nodes = append(nodes, newNode(*routerAddr, true))
	}
	if *shards != "" {
		m, err := cluster.ParseTopology(*shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aptop:", err)
			os.Exit(2)
		}
		for _, sh := range m.Shards {
			for _, addr := range sh.Replicas {
				nodes = append(nodes, newNode(addr, false))
			}
		}
	}

	out := bufio.NewWriter(os.Stdout)
	for {
		pollAll(nodes, *nTraces, *interval)
		if !*once {
			fmt.Fprint(out, "\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(out, nodes, *nTraces)
		out.Flush()
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

func newNode(addr string, router bool) *node {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &node{addr: addr, router: router, client: &serve.Client{BaseURL: base}}
}

// pollAll refreshes every node concurrently; a node that fails to answer
// keeps its previous sample and carries the error into the frame.
func pollAll(nodes []*node, nTraces int, interval time.Duration) {
	budget := interval
	if budget < time.Second {
		budget = time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	var wg sync.WaitGroup
	for _, n := range nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			n.poll(ctx, nTraces)
		}(n)
	}
	wg.Wait()
}

func (n *node) poll(ctx context.Context, nTraces int) {
	var (
		requests, shed, hedges, hedgeWins int64
		id                                string
		vectors                           int
		p50, p99                          time.Duration
	)
	if n.router {
		var st cluster.StatsResponse
		if err := n.client.Do(ctx, "GET", "/v1/stats", nil, &st); err != nil {
			n.fail(err)
			return
		}
		id = "router"
		requests = st.Cluster.Searches + st.Cluster.BatchSearches
		hedges = st.Cluster.Hedges
		hedgeWins = st.Cluster.HedgeWins
		if s, ok := st.LatencyWindow["apknn_cluster_search_seconds"]; ok {
			p50, p99 = time.Duration(s.P50NS), time.Duration(s.P99NS)
		}
	} else {
		st, err := n.client.Stats(ctx)
		if err != nil {
			n.fail(err)
			return
		}
		requests = st.Serving.Requests + st.Serving.BatchRequests
		shed = st.Serving.Rejected
		if st.Node != nil {
			id = st.Node.ID
			vectors = st.Node.Vectors
		}
		if s, ok := st.LatencyWindow["apknn_serve_search_seconds"]; ok {
			p50, p99 = time.Duration(s.P50NS), time.Duration(s.P99NS)
		}
	}
	version, anomalies, recorded := n.scrapeMetrics(ctx)
	var traces []*obs.TraceRecord
	for _, class := range []string{obs.ClassSlow, obs.ClassError} {
		dt, err := n.client.DebugTraces(ctx, url.Values{
			"class": {class}, "n": {strconv.Itoa(nTraces)},
		})
		if err == nil {
			traces = append(traces, dt.Traces...)
		}
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	n.err = nil
	n.prevAt, n.prevReqs = n.sampledAt, n.requests
	n.sampledAt = time.Now()
	n.requests, n.shed, n.hedges, n.hedgeWins = requests, shed, hedges, hedgeWins
	n.p50, n.p99 = p50, p99
	n.vectors = vectors
	if id != "" {
		n.id = id
	}
	if version != "" {
		n.version = version
	}
	n.anomalies, n.recorded = anomalies, recorded
	n.traces = traces
}

func (n *node) fail(err error) {
	n.mu.Lock()
	n.err = err
	n.mu.Unlock()
}

// scrapeMetrics pulls the few /metrics series the frame needs: the build
// version label, the anomaly-dump trip counter, and the flight-recorder
// completion counter. Best-effort — a node without /metrics just shows
// blanks. /metrics is Prometheus text, not JSON, so this bypasses the API
// client.
func (n *node) scrapeMetrics(ctx context.Context) (version string, anomalies, recorded int64) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.client.BaseURL+"/metrics", nil)
	if err != nil {
		return "", 0, 0
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", 0, 0
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return "", 0, 0
	}
	for _, line := range strings.Split(string(raw), "\n") {
		switch {
		case strings.HasPrefix(line, "apknn_build_info{"):
			if i := strings.Index(line, `version="`); i >= 0 {
				rest := line[i+len(`version="`):]
				if j := strings.IndexByte(rest, '"'); j >= 0 {
					version = rest[:j]
				}
			}
		case strings.HasPrefix(line, "apknn_anomaly_dumps_total "):
			anomalies, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		case strings.HasPrefix(line, "apknn_debug_traces_recorded_total "):
			recorded, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		}
	}
	return version, anomalies, recorded
}

func render(w *bufio.Writer, nodes []*node, nTraces int) {
	fmt.Fprintf(w, "aptop %s  %s  %d node(s)\n\n",
		obs.BuildVersion(), time.Now().Format("15:04:05"), len(nodes))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tADDR\tQPS\tP50(1m)\tP99(1m)\tSHED\tHEDGE\tVEC\tTRACES\tANOM\tVER")
	for _, n := range nodes {
		n.mu.Lock()
		if n.err != nil {
			fmt.Fprintf(tw, "%s\t%s\tDOWN: %v\t\t\t\t\t\t\t\t\n", n.label(), n.addr, n.err)
			n.mu.Unlock()
			continue
		}
		qps := "-"
		if !n.prevAt.IsZero() {
			dt := n.sampledAt.Sub(n.prevAt).Seconds()
			if dt > 0 {
				qps = fmt.Sprintf("%.1f", float64(n.requests-n.prevReqs)/dt)
			}
		}
		hedge := ""
		if n.router {
			hedge = fmt.Sprintf("%d/%d", n.hedgeWins, n.hedges)
		}
		vec := ""
		if n.vectors > 0 {
			vec = strconv.Itoa(n.vectors)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%d\t%s\t%s\t%d\t%d\t%s\n",
			n.label(), n.addr, qps, fmtDur(n.p50), fmtDur(n.p99),
			n.shed, hedge, vec, n.recorded, n.anomalies, n.version)
		n.mu.Unlock()
	}
	tw.Flush()

	type anomalous struct {
		node string
		rec  *obs.TraceRecord
	}
	var recent []anomalous
	for _, n := range nodes {
		n.mu.Lock()
		for _, rec := range n.traces {
			recent = append(recent, anomalous{n.label(), rec})
		}
		n.mu.Unlock()
	}
	sort.Slice(recent, func(i, j int) bool {
		return recent[i].rec.StartUnixNS > recent[j].rec.StartUnixNS
	})
	if len(recent) > nTraces {
		recent = recent[:nTraces]
	}
	fmt.Fprintf(w, "\nRECENT ANOMALIES (slow + error, newest first)\n")
	if len(recent) == 0 {
		fmt.Fprintln(w, "  none")
		return
	}
	for _, a := range recent {
		status := a.rec.Status
		if status == 0 {
			status = 200
		}
		fmt.Fprintf(w, "  %s  %s  trace=%s  %s  [%s] status=%d\n",
			time.Unix(0, a.rec.StartUnixNS).Format("15:04:05.000"),
			a.node, a.rec.TraceID, fmtDur(time.Duration(a.rec.TotalNS)),
			strings.Join(a.rec.Classes, ","), status)
	}
}

func (n *node) label() string {
	if n.id != "" {
		return n.id
	}
	return n.addr
}

func fmtDur(d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return d.Round(10 * time.Microsecond).String()
}
