package apknn

import "repro/internal/aperr"

// The typed sentinel errors every backend returns; match them with
// errors.Is. They replace the ad-hoc error strings of the pre-Backend API,
// and the internal engines wrap the same sentinels, so a failure surfaces
// the matching sentinel no matter how deep it originated.
var (
	// ErrDimMismatch reports a query whose dimensionality differs from the
	// dataset it is searched against.
	ErrDimMismatch = aperr.ErrDimMismatch
	// ErrEmptyDataset reports an Open over a nil or empty dataset.
	ErrEmptyDataset = aperr.ErrEmptyDataset
	// ErrBadK reports a non-positive neighbor count.
	ErrBadK = aperr.ErrBadK
	// ErrCanceled reports a search aborted by its context; the error chain
	// also carries the context's own cause.
	ErrCanceled = aperr.ErrCanceled
	// ErrUnknownBackend reports an Open with an unregistered backend kind.
	ErrUnknownBackend = aperr.ErrUnknownBackend
	// ErrNotFound reports a Delete naming an ID the live index does not
	// hold — never assigned, or already deleted.
	ErrNotFound = aperr.ErrNotFound
	// ErrBadFormat reports a persisted file (dataset, snapshot, write-ahead
	// log) whose header or structure is not the expected format: wrong magic,
	// unsupported version, impossible geometry, non-canonical payload bits.
	ErrBadFormat = aperr.ErrBadFormat
	// ErrTruncated reports a persisted file that ends before its declared
	// payload does — a short read, never a silent partial parse.
	ErrTruncated = aperr.ErrTruncated
	// ErrClosed reports a mutation on a durable live index after Close
	// released its write-ahead-log handle.
	ErrClosed = aperr.ErrClosed
)
