package apknn

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/aperr"
	"repro/internal/shard"
)

// BatchResult is one completed batch of an asynchronous SearchBatch (or
// legacy QueryBatch) call.
type BatchResult = shard.BatchResult

// BackendKind names a registered compute platform. The built-in kinds cover
// every platform of the paper's evaluation (Table I plus the Table V
// indexing structures); RegisterBackend adds more.
type BackendKind string

const (
	// AP is the cycle-accurate Automata Processor simulator: real automata,
	// real report decoding, partial reconfiguration across partitions. With
	// WithBoards(n) it becomes a fleet of simulated boards.
	AP BackendKind = "ap"
	// Fast is the semantics-equivalent analytic engine: identical results to
	// AP — including tie-breaks and partition boundaries — with the modeled
	// time charged from the same clock/reconfiguration model, minus the
	// cycle-level simulation. Use it for large datasets.
	Fast BackendKind = "fast"
	// Sharded is the scale-out serving fleet: the dataset partitioned across
	// multiple boards (default 4) on the fast substrate, all boards
	// streaming every batch concurrently, host-side top-k merge.
	Sharded BackendKind = "sharded"
	// CPU is the exact multi-threaded XOR+POPCOUNT linear scan (§IV-C),
	// with modeled time from the calibrated Xeon E5 cost model.
	CPU BackendKind = "cpu"
	// GPU is the calibrated CUDA-kNN performance model (§IV-C): exact
	// results, modeled launch-plus-pair-cost runtime for a Tegra K1 or
	// Titan X (WithGPUModel).
	GPU BackendKind = "gpu"
	// FPGA is the cycle-level Kintex-7 accelerator model (§IV-C): exact
	// results from systolic priority queues, wall-clock from counted cycles.
	FPGA BackendKind = "fpga"
	// Approx is the approximate-indexing baseline family of Table V: an LSH,
	// hierarchical-k-means or randomized-kd-forest index (WithIndex) whose
	// candidate buckets are scanned exactly (§III-D).
	Approx BackendKind = "approx"
)

// GPUModel selects which calibrated GPU the GPU backend models.
type GPUModel int

const (
	// TitanX is the desktop-class Titan X of Tables III/IV.
	TitanX GPUModel = iota
	// TegraK1 is the embedded Jetson TK1 of Tables III/IV.
	TegraK1
)

// IndexKind selects the approximate index structure of the Approx backend.
type IndexKind int

const (
	// LSH is multi-probe locality-sensitive hashing (MPLSH in Table V).
	LSH IndexKind = iota
	// KMeansTree is the hierarchical k-means tree.
	KMeansTree
	// KDForest is the randomized kd-tree forest.
	KDForest
)

// Config is the resolved option set handed to Backend.Compile. Fields a
// backend does not understand are ignored — WithBoards means nothing to the
// FPGA model — so one option list can be replayed across backends.
type Config struct {
	// Backend is the platform Open dispatches on (default AP).
	Backend BackendKind
	// Generation of the modeled AP board (default Gen2).
	Generation Generation
	// Capacity overrides vectors per board configuration (0 = the paper's
	// §V-A defaults: 1024 for d <= 128, 512 above).
	Capacity int
	// Boards shards the dataset across this many boards (0 = backend
	// default: 1 for AP/Fast, 4 for Sharded).
	Boards int
	// Workers bounds host-side parallelism: concurrent boards for the
	// board-backed backends, scan threads for CPU.
	Workers int
	// GPU selects the modeled GPU (default TitanX).
	GPU GPUModel
	// Index selects the approximate index structure (default LSH).
	Index IndexKind
	// Probes bounds how many candidate buckets the Approx backend scans per
	// query (0 = a structure-specific default).
	Probes int
	// Seed drives the randomized index constructions (default 1).
	Seed uint64
	// CompactThreshold is the churn volume (delta inserts + tombstones)
	// that triggers a background compaction on a live index opened with
	// OpenLive (0 = live.DefaultCompactThreshold, negative disables).
	// Backends ignore it.
	CompactThreshold int
	// CompactInterval is the live index's max-staleness timer: pending
	// churn is compacted at least this often (0 disables the timer).
	// Backends ignore it.
	CompactInterval time.Duration
	// DataDir, when set via WithDurability, roots a live index's durable
	// state: a write-ahead log of every mutation plus a snapshot per
	// compaction, recovered on the next OpenLive. Backends and Open ignore
	// it.
	DataDir string
	// Fsync selects when WAL appends reach stable storage on a durable live
	// index (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the flush period under FsyncInterval policy
	// (0 = 100ms).
	FsyncInterval time.Duration
}

// Option configures Open.
type Option func(*Config)

// WithBackend selects the compute platform.
func WithBackend(kind BackendKind) Option { return func(c *Config) { c.Backend = kind } }

// WithGeneration selects the modeled AP hardware generation.
func WithGeneration(g Generation) Option { return func(c *Config) { c.Generation = g } }

// WithCapacity overrides vectors per board configuration.
func WithCapacity(n int) Option { return func(c *Config) { c.Capacity = n } }

// WithBoards shards the dataset across n boards (board-backed backends).
func WithBoards(n int) Option { return func(c *Config) { c.Boards = n } }

// WithWorkers bounds host-side parallelism.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithGPUModel selects the calibrated GPU for the GPU backend.
func WithGPUModel(m GPUModel) Option { return func(c *Config) { c.GPU = m } }

// WithIndex selects the index structure for the Approx backend.
func WithIndex(k IndexKind) Option { return func(c *Config) { c.Index = k } }

// WithProbes bounds candidate buckets scanned per query (Approx backend).
func WithProbes(n int) Option { return func(c *Config) { c.Probes = n } }

// WithSeed seeds the randomized index constructions (Approx backend).
func WithSeed(seed uint64) Option { return func(c *Config) { c.Seed = seed } }

// WithCompactThreshold sets the churn volume that triggers a background
// compaction on a live index (OpenLive). Negative disables the trigger.
func WithCompactThreshold(n int) Option { return func(c *Config) { c.CompactThreshold = n } }

// WithCompactInterval sets the live index's max-staleness compaction timer
// (OpenLive). Zero disables the timer.
func WithCompactInterval(d time.Duration) Option { return func(c *Config) { c.CompactInterval = d } }

// DurabilityOptions tunes the write-ahead log of a durable live index.
type DurabilityOptions struct {
	// Fsync selects when appends reach stable storage (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the flush period under FsyncInterval (0 = 100ms).
	FsyncInterval time.Duration
}

// WithDurability roots a live index (OpenLive) at dir: every acknowledged
// Insert/Delete is write-ahead logged before it becomes searchable, each
// compaction persists a snapshot and truncates the log, and the next
// OpenLive over the same directory recovers the exact pre-crash index —
// identical global IDs, byte-identical search results. Open ignores it.
func WithDurability(dir string, opts DurabilityOptions) Option {
	return func(c *Config) {
		c.DataDir = dir
		c.Fsync = opts.Fsync
		c.FsyncInterval = opts.FsyncInterval
	}
}

// Index is a compiled dataset ready to serve queries on one backend. All
// implementations are safe for concurrent use.
type Index interface {
	// Search returns the k nearest neighbors of each query,
	// (distance, ID)-sorted with deterministic tie-breaks. Cancellation of
	// ctx aborts in-flight work and returns an error wrapping ErrCanceled.
	Search(ctx context.Context, queries []Vector, k int) ([][]Neighbor, error)
	// SearchBatch answers many query batches asynchronously. Results arrive
	// on the returned channel in submission order — one BatchResult per
	// submitted batch, even after cancellation — and the channel closes
	// after the last. Batches already delivered when ctx is canceled remain
	// valid.
	SearchBatch(ctx context.Context, batches [][]Vector, k int) <-chan BatchResult
	// ModeledTime returns the accumulated modeled wall-clock of the
	// platform: max-across-boards streaming plus reconfigurations for the
	// AP backends, the calibrated cost models for CPU/GPU/FPGA/Approx.
	ModeledTime() time.Duration
	// Stats returns a point-in-time snapshot of the serving counters.
	Stats() Stats
}

// Backend compiles datasets into servable indexes for one compute platform.
type Backend interface {
	// Kind is the name Open dispatches on.
	Kind() BackendKind
	// Compile builds the backend's index for ds. Implementations read the
	// Config fields they understand and ignore the rest.
	Compile(ds *Dataset, cfg Config) (Index, error)
}

var (
	backendsMu sync.RWMutex
	backends   = map[BackendKind]Backend{}
)

// RegisterBackend makes a backend selectable through Open. Registering a
// kind twice or an empty kind is an error; the built-in backends register
// themselves at init.
func RegisterBackend(b Backend) error {
	kind := b.Kind()
	if kind == "" {
		return fmt.Errorf("apknn: backend with empty kind")
	}
	backendsMu.Lock()
	defer backendsMu.Unlock()
	if _, dup := backends[kind]; dup {
		return fmt.Errorf("apknn: backend %q already registered", kind)
	}
	backends[kind] = b
	return nil
}

// Backends lists the registered backend kinds, sorted.
func Backends() []BackendKind {
	backendsMu.RLock()
	defer backendsMu.RUnlock()
	out := make([]BackendKind, 0, len(backends))
	for k := range backends {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mustRegister is the init-time registration path for the built-ins.
func mustRegister(b Backend) {
	if err := RegisterBackend(b); err != nil {
		panic(err)
	}
}

// backendFunc adapts a compile function into a Backend.
type backendFunc struct {
	kind    BackendKind
	compile func(ds *Dataset, cfg Config) (Index, error)
}

func (b backendFunc) Kind() BackendKind { return b.kind }

func (b backendFunc) Compile(ds *Dataset, cfg Config) (Index, error) { return b.compile(ds, cfg) }

// Open compiles ds for the selected backend (default AP) and returns the
// servable index. The dataset must be non-empty; the backend must be
// registered.
func Open(ds *Dataset, opts ...Option) (Index, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("apknn: %w", aperr.ErrEmptyDataset)
	}
	cfg := Config{Backend: AP, Seed: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	backendsMu.RLock()
	b, ok := backends[cfg.Backend]
	backendsMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("apknn: %w %q (registered: %v)", aperr.ErrUnknownBackend, cfg.Backend, Backends())
	}
	return b.Compile(ds, cfg)
}
