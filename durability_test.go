package apknn_test

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	apknn "repro"
)

// TestOpenLiveDurableRoundTrip drives the public durability surface end to
// end: open with WithDurability, churn, close, reopen the same directory
// with a nil seed, and require the recovered index to report recovery,
// resume the ID space, and answer byte-identical searches.
func TestOpenLiveDurableRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	const n0, dim, k = 120, 64, 5
	ds := apknn.RandomDataset(71, n0, dim)
	queries := apknn.RandomQueries(72, 6, dim)

	idx, err := apknn.OpenLive(ds,
		apknn.WithBackend(apknn.Fast),
		apknn.WithCompactThreshold(-1),
		apknn.WithDurability(dir, apknn.DurabilityOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := idx.Recovery(); !ok {
		t.Fatal("durable index reports no recovery info")
	}
	inserts := apknn.RandomQueries(73, 25, dim)
	for _, v := range inserts {
		if _, err := idx.Insert(ctx, v); err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < 20; id += 4 {
		if err := idx.Delete(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	want, err := idx.Search(ctx, queries, k)
	if err != nil {
		t.Fatal(err)
	}
	wantNext, wantLen := idx.NextID(), idx.Len()

	st := idx.Stats()
	if st.Durability == nil {
		t.Fatal("Stats missing Durability block")
	}
	if st.Durability.Dir != dir || st.Durability.Fsync != "always" {
		t.Fatalf("durability stats: %+v", st.Durability)
	}
	// 30 mutations plus the generation barrier the fresh log opens with.
	if st.Durability.Appends != 31 || st.Durability.Recovered {
		t.Fatalf("fresh-dir durability stats: %+v", st.Durability)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	// A closed durable index rejects mutations with the public sentinel.
	if _, err := idx.Insert(ctx, inserts[0]); !errors.Is(err, apknn.ErrClosed) {
		t.Fatalf("insert after close: %v", err)
	}

	// Reopen with a nil seed: the directory alone must reconstruct the index.
	back, err := apknn.OpenLive(nil,
		apknn.WithBackend(apknn.Fast),
		apknn.WithCompactThreshold(-1),
		apknn.WithDurability(dir, apknn.DurabilityOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	rec, ok := back.Recovery()
	if !ok || !rec.Recovered {
		t.Fatalf("recovery info after reopen: %+v ok=%v", rec, ok)
	}
	if rec.ReplayedRecords == 0 {
		t.Fatalf("reopen replayed no records: %+v", rec)
	}
	if back.NextID() != wantNext || back.Len() != wantLen {
		t.Fatalf("recovered shape: next=%d len=%d, want %d/%d",
			back.NextID(), back.Len(), wantNext, wantLen)
	}
	got, err := back.Search(ctx, queries, k)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		for j := range want[qi] {
			if got[qi][j] != want[qi][j] {
				t.Fatalf("query %d rank %d: recovered %v, want %v",
					qi, j, got[qi][j], want[qi][j])
			}
		}
	}
	st = back.Stats()
	if st.Durability == nil || !st.Durability.Recovered || st.Durability.ReplayedRecords == 0 {
		t.Fatalf("recovered durability stats: %+v", st.Durability)
	}
	// The wire shape: durability must marshal under the documented key.
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	var dur map[string]any
	if err := json.Unmarshal(decoded["durability"], &dur); err != nil {
		t.Fatalf("durability block: %v", err)
	}
	for _, field := range []string{"dir", "fsync", "appends", "wal_size",
		"recovered", "replayed_records", "snapshot_generation"} {
		if _, ok := dur[field]; !ok {
			t.Errorf("durability JSON missing %q: %v", field, dur)
		}
	}
}

// TestOpenLiveDurableEmptyDir pins the seed rules: a fresh durable directory
// still requires a seed dataset, and a dimension clash between the seed and
// recovered state surfaces ErrDimMismatch.
func TestOpenLiveDurableEmptyDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := apknn.OpenLive(nil, apknn.WithBackend(apknn.Fast),
		apknn.WithDurability(dir, apknn.DurabilityOptions{})); !errors.Is(err, apknn.ErrEmptyDataset) {
		t.Fatalf("nil seed over empty dir: %v", err)
	}
	idx, err := apknn.OpenLive(apknn.RandomDataset(5, 16, 32), apknn.WithBackend(apknn.Fast),
		apknn.WithDurability(dir, apknn.DurabilityOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := apknn.OpenLive(apknn.RandomDataset(6, 16, 64), apknn.WithBackend(apknn.Fast),
		apknn.WithDurability(dir, apknn.DurabilityOptions{})); !errors.Is(err, apknn.ErrDimMismatch) {
		t.Fatalf("mismatched seed dim over recovered state: %v", err)
	}
}

// TestSaveDatasetMergedView checks LiveIndex.SaveDataset persists the merged
// live view — base plus delta minus tombstones — so the saved file
// round-trips through LoadDataset+Open to the live index's own results
// instead of the stale compiled base.
func TestSaveDatasetMergedView(t *testing.T) {
	ctx := context.Background()
	const n0, dim, k = 90, 48, 4
	ds := apknn.RandomDataset(81, n0, dim)
	idx, err := apknn.OpenLive(ds,
		apknn.WithBackend(apknn.Fast),
		apknn.WithCompactThreshold(-1)) // keep churn pending in the delta
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	for _, v := range apknn.RandomQueries(82, 15, dim) {
		if _, err := idx.Insert(ctx, v); err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < 12; id += 3 {
		if err := idx.Delete(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "merged.apds")
	if err := idx.SaveDataset(path); err != nil {
		t.Fatal(err)
	}
	back, err := apknn.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != idx.Len() {
		t.Fatalf("saved %d vectors, live index holds %d", back.Len(), idx.Len())
	}
	reopened, err := apknn.Open(back, apknn.WithBackend(apknn.Fast))
	if err != nil {
		t.Fatal(err)
	}
	queries := apknn.RandomQueries(83, 5, dim)
	want, err := idx.Search(ctx, queries, k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopened.Search(ctx, queries, k)
	if err != nil {
		t.Fatal(err)
	}
	// Global IDs are densely renumbered in the file, so compare distances.
	for qi := range queries {
		if len(got[qi]) != len(want[qi]) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got[qi]), len(want[qi]))
		}
		for j := range got[qi] {
			if got[qi][j].Dist != want[qi][j].Dist {
				t.Fatalf("query %d rank %d: saved-view dist %d, live dist %d",
					qi, j, got[qi][j].Dist, want[qi][j].Dist)
			}
		}
	}
}

// TestParseFsyncPolicy pins the flag vocabulary.
func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want apknn.FsyncPolicy
	}{
		{"always", apknn.FsyncAlways},
		{"interval", apknn.FsyncInterval},
		{"never", apknn.FsyncNever},
	} {
		got, err := apknn.ParseFsyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("FsyncPolicy(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := apknn.ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestLoadDatasetTypedErrors pins that the file loaders surface the typed
// format sentinels at the public boundary.
func TestLoadDatasetTypedErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.apds")
	if err := os.WriteFile(path, []byte("NOPE00000000000000000000"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := apknn.LoadDataset(path); !errors.Is(err, apknn.ErrBadFormat) {
		t.Errorf("bad magic: %v", err)
	}
	ds := apknn.RandomDataset(9, 20, 24)
	if err := apknn.SaveDataset(ds, path); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := apknn.LoadDataset(path); !errors.Is(err, apknn.ErrTruncated) {
		t.Errorf("truncated payload: %v", err)
	}
}
