package apknn

import (
	"context"
	"time"

	"repro/internal/ap"
	"repro/internal/shard"
)

// The three AP-family backends all compile onto the sharded multi-board
// engine — it is the one query engine of this repository — differing only
// in substrate and default fleet size:
//
//   - AP: cycle-accurate board simulation, 1 board unless WithBoards says
//     otherwise. This is the paper's evaluated configuration.
//   - Fast: the semantics-equivalent analytic engine, 1 board by default.
//   - Sharded: the scale-out fleet on the fast substrate, 4 boards by
//     default — the production serving shape.
func init() {
	mustRegister(backendFunc{AP, func(ds *Dataset, cfg Config) (Index, error) {
		return newShardIndex(ds, cfg, AP, false, 1)
	}})
	mustRegister(backendFunc{Fast, func(ds *Dataset, cfg Config) (Index, error) {
		return newShardIndex(ds, cfg, Fast, true, 1)
	}})
	mustRegister(backendFunc{Sharded, func(ds *Dataset, cfg Config) (Index, error) {
		return newShardIndex(ds, cfg, Sharded, true, 4)
	}})
}

// shardIndex serves one of the AP-family backends through shard.Engine.
type shardIndex struct {
	kind BackendKind
	eng  *shard.Engine
	ctrs counters
}

func newShardIndex(ds *Dataset, cfg Config, kind BackendKind, fast bool, defaultBoards int) (Index, error) {
	boards := cfg.Boards
	if boards == 0 {
		boards = defaultBoards
	}
	device := ap.Gen2()
	if cfg.Generation == Gen1 {
		device = ap.Gen1()
	}
	eng, err := shard.New(ds, shard.Options{
		Boards:   boards,
		Workers:  cfg.Workers,
		Capacity: cfg.Capacity,
		Fast:     fast,
		Config:   device,
	})
	if err != nil {
		return nil, err
	}
	return &shardIndex{kind: kind, eng: eng}, nil
}

func (s *shardIndex) Search(ctx context.Context, queries []Vector, k int) ([][]Neighbor, error) {
	res, err := s.eng.Query(ctx, queries, k)
	if err != nil {
		return nil, err
	}
	s.ctrs.countSearch(len(queries))
	return res, nil
}

// SearchBatch delegates to the engine's pipelined driver (encoding overlaps
// board streaming) and counts delivered batches on the way through.
func (s *shardIndex) SearchBatch(ctx context.Context, batches [][]Vector, k int) <-chan BatchResult {
	in := s.eng.QueryBatch(ctx, batches, k)
	out := make(chan BatchResult, len(batches))
	go func() {
		defer close(out)
		for res := range in {
			if res.Err == nil {
				s.ctrs.queries.Add(int64(len(batches[res.Batch])))
				s.ctrs.batches.Add(1)
			}
			out <- res
		}
	}()
	return out
}

func (s *shardIndex) ModeledTime() time.Duration { return s.eng.ModeledTime() }

func (s *shardIndex) Stats() Stats {
	st := s.ctrs.snapshot(s.kind)
	st.Boards = s.eng.Shards()
	st.Partitions = s.eng.Partitions()
	st.SymbolsStreamed = int64(s.eng.SymbolsStreamed())
	st.Reconfigs = int64(s.eng.Reconfigs())
	st.PerBoardTime = s.eng.BoardTimes()
	return st
}

// Partitions reports how many board configurations the dataset spans.
func (s *shardIndex) Partitions() int { return s.eng.Partitions() }

// Boards reports how many boards the dataset is sharded across.
func (s *shardIndex) Boards() int { return s.eng.Shards() }
