package apknn_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	apknn "repro"
)

// waitGoroutines asserts the goroutine count returns to within slack of the
// baseline — the leak check for the worker pools and batch pipelines (no
// external goleak dependency; a converging count is the same evidence).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	const slack = 2
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+slack {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d running, baseline %d\n%s", runtime.NumGoroutine(), baseline, buf[:n])
}

// TestSearchCanceledBeforeStart: a pre-canceled context fails every backend
// promptly with ErrCanceled and leaks nothing.
func TestSearchCanceledBeforeStart(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ds := apknn.RandomDataset(21, 200, 32)
	queries := apknn.RandomQueries(22, 4, 32)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, kind := range []apknn.BackendKind{apknn.AP, apknn.Fast, apknn.Sharded, apknn.CPU, apknn.GPU, apknn.FPGA, apknn.Approx} {
		idx, err := apknn.Open(ds, apknn.WithBackend(kind), apknn.WithCapacity(50))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := idx.Search(ctx, queries, 3); !errors.Is(err, apknn.ErrCanceled) {
			t.Errorf("%s: %v, want ErrCanceled", kind, err)
		}
	}
	waitGoroutines(t, baseline)
}

// TestSearchBatchCancelMidFlight cancels a large sharded SearchBatch after
// the first result arrives. The pipeline must stop promptly (bounded by one
// batch), deliver exactly one result per submitted batch — the remainder
// carrying ErrCanceled — close the channel, and leak no goroutines. Results
// delivered before the cancellation stay valid.
func TestSearchBatchCancelMidFlight(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const dim, k, numBatches = 64, 10, 12
	ds := apknn.RandomDataset(23, 1<<16, dim)
	idx, err := apknn.Open(ds, apknn.WithBackend(apknn.Sharded), apknn.WithBoards(4))
	if err != nil {
		t.Fatal(err)
	}
	batches := make([][]apknn.Vector, numBatches)
	for i := range batches {
		batches[i] = apknn.RandomQueries(uint64(30+i), 16, dim)
	}
	want := apknn.ExactSearch(ds, batches[0], k, 4)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := idx.SearchBatch(ctx, batches, k)

	seen := 0
	canceled := 0
	deadline := time.After(30 * time.Second)
	for {
		select {
		case res, ok := <-out:
			if !ok {
				if seen != numBatches {
					t.Fatalf("received %d results, want %d", seen, numBatches)
				}
				if canceled == 0 {
					t.Error("no batch observed the cancellation; dataset too small to cancel mid-flight?")
				}
				waitGoroutines(t, baseline)
				return
			}
			if res.Batch == 0 {
				// First batch: completed before the cancel; must be valid
				// and identical to the exact scan.
				if res.Err != nil {
					t.Fatalf("batch 0: %v", res.Err)
				}
				for qi := range want {
					for j := range want[qi] {
						if res.Results[qi][j] != want[qi][j] {
							t.Fatalf("batch 0 query %d rank %d: %+v, want %+v", qi, j, res.Results[qi][j], want[qi][j])
						}
					}
				}
				cancel()
			} else if res.Err != nil {
				if !errors.Is(res.Err, apknn.ErrCanceled) {
					t.Fatalf("batch %d: %v, want ErrCanceled", res.Batch, res.Err)
				}
				canceled++
			}
			seen++
		case <-deadline:
			t.Fatalf("pipeline did not drain after cancellation (%d/%d results)", seen, numBatches)
		}
	}
}

// TestSearchBatchCompletedThenCanceled: canceling the context after the
// pipeline already finished must not disturb the delivered results — the
// buffered channel still yields every completed batch.
func TestSearchBatchCompletedThenCanceled(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ds := apknn.RandomDataset(41, 500, 32)
	idx, err := apknn.Open(ds, apknn.WithBackend(apknn.Fast), apknn.WithCapacity(100), apknn.WithBoards(2))
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]apknn.Vector{
		apknn.RandomQueries(42, 4, 32),
		apknn.RandomQueries(43, 4, 32),
	}
	ctx, cancel := context.WithCancel(context.Background())
	out := idx.SearchBatch(ctx, batches, 5)

	// Let the whole pipeline finish before anything is consumed, then
	// cancel. Every batch was computed under a live context, so every
	// buffered result must still arrive intact.
	waitGoroutines(t, baseline) // pipeline goroutines exit once all results are buffered
	cancel()

	got := 0
	for res := range out {
		if res.Err != nil {
			t.Fatalf("batch %d after completed-then-cancel: %v", res.Batch, res.Err)
		}
		want := apknn.ExactSearch(ds, batches[res.Batch], 5, 2)
		for qi := range want {
			for j := range want[qi] {
				if res.Results[qi][j] != want[qi][j] {
					t.Fatalf("batch %d query %d rank %d diverged", res.Batch, qi, j)
				}
			}
		}
		got++
	}
	if got != len(batches) {
		t.Fatalf("received %d results, want %d", got, len(batches))
	}
}

// TestQueryCancelUnblocksWorkers: Search on a canceled context must not
// strand worker-pool slots — a follow-up query on the same index succeeds.
func TestQueryCancelUnblocksWorkers(t *testing.T) {
	ds := apknn.RandomDataset(51, 1<<15, 64)
	idx, err := apknn.Open(ds, apknn.WithBackend(apknn.Sharded), apknn.WithBoards(4), apknn.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	queries := apknn.RandomQueries(52, 8, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := idx.Search(ctx, queries, 5); !errors.Is(err, apknn.ErrCanceled) {
		t.Fatalf("canceled search: %v, want ErrCanceled", err)
	}
	got, err := idx.Search(context.Background(), queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := apknn.ExactSearch(ds, queries, 5, 4)
	for qi := range want {
		for j := range want[qi] {
			if got[qi][j] != want[qi][j] {
				t.Fatalf("post-cancel query diverged at %d/%d", qi, j)
			}
		}
	}
}
