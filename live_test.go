package apknn_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	apknn "repro"
)

// TestOpenLiveBackendEquivalence runs the same churn script on a live
// index over each exact backend and asserts byte-identical results against
// the exact scan of a mirrored dataset — the OpenLive counterpart of
// TestBackendEquivalence.
func TestOpenLiveBackendEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, kind := range []apknn.BackendKind{apknn.AP, apknn.Fast, apknn.Sharded, apknn.CPU} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			const n0, dim, k = 300, 32, 6
			ds := apknn.RandomDataset(31, n0, dim)
			idx, err := apknn.OpenLive(ds,
				apknn.WithBackend(kind),
				apknn.WithCapacity(64),
				apknn.WithCompactThreshold(-1)) // compaction driven explicitly below
			if err != nil {
				t.Fatal(err)
			}
			defer idx.Close()

			// Churn: 30 inserts, delete every third seed vector of the
			// first 30, and one inserted vector.
			inserts := apknn.RandomQueries(32, 30, dim)
			insertIDs := make([]int, len(inserts))
			for i, v := range inserts {
				if insertIDs[i], err = idx.Insert(ctx, v); err != nil {
					t.Fatal(err)
				}
			}
			deleted := map[int]bool{}
			for id := 0; id < 30; id += 3 {
				if err := idx.Delete(ctx, id); err != nil {
					t.Fatal(err)
				}
				deleted[id] = true
			}
			if err := idx.Delete(ctx, insertIDs[5]); err != nil {
				t.Fatal(err)
			}
			deleted[insertIDs[5]] = true

			check := func(stage string) {
				t.Helper()
				mirror := apknn.RandomDataset(1, 0, dim)
				var gids []int
				for i := 0; i < n0; i++ {
					if !deleted[i] {
						mirror.Append(ds.At(i))
						gids = append(gids, i)
					}
				}
				for j, v := range inserts {
					if !deleted[insertIDs[j]] {
						mirror.Append(v)
						gids = append(gids, insertIDs[j])
					}
				}
				queries := apknn.RandomQueries(33, 8, dim)
				exact := apknn.ExactSearch(mirror, queries, k, 2)
				got, err := idx.Search(ctx, queries, k)
				if err != nil {
					t.Fatalf("%s: %v", stage, err)
				}
				for qi := range queries {
					if len(got[qi]) != len(exact[qi]) {
						t.Fatalf("%s query %d: %d results, want %d", stage, qi, len(got[qi]), len(exact[qi]))
					}
					for j := range got[qi] {
						want := apknn.Neighbor{ID: gids[exact[qi][j].ID], Dist: exact[qi][j].Dist}
						if got[qi][j] != want {
							t.Fatalf("%s query %d rank %d: got %v, want %v", stage, qi, j, got[qi][j], want)
						}
					}
				}
			}
			check("pre-compact")
			if err := idx.Compact(ctx); err != nil {
				t.Fatal(err)
			}
			check("post-compact")
			st := idx.Stats()
			if st.Live == nil {
				t.Fatal("Stats missing Live block")
			}
			if st.Live.Compactions != 1 || st.Live.DeltaSize != 0 || st.Live.Tombstones != 0 {
				t.Fatalf("post-compact live stats: %+v", st.Live)
			}
			if st.Live.Inserts != 30 || st.Live.Deletes != 11 {
				t.Fatalf("churn counters: %+v", st.Live)
			}
			if kind != apknn.CPU && st.Live.ReconfigTime <= 0 {
				t.Fatalf("%s compaction charged no reconfiguration time", kind)
			}
			if idx.ModeledTime() <= 0 {
				t.Fatal("live index modeled no time")
			}
		})
	}
}

// TestOpenLiveSearchBatch checks the Index-contract batch path delivers
// one result per submitted batch in order.
func TestOpenLiveSearchBatch(t *testing.T) {
	ds := apknn.RandomDataset(41, 200, 32)
	idx, err := apknn.OpenLive(ds, apknn.WithBackend(apknn.Fast))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	ctx := context.Background()
	if _, err := idx.Insert(ctx, apknn.RandomQueries(42, 1, 32)[0]); err != nil {
		t.Fatal(err)
	}
	batches := [][]apknn.Vector{
		apknn.RandomQueries(43, 3, 32),
		apknn.RandomQueries(44, 2, 32),
	}
	seen := 0
	for res := range idx.SearchBatch(ctx, batches, 4) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Batch != seen {
			t.Fatalf("batch %d arrived at position %d", res.Batch, seen)
		}
		if len(res.Results) != len(batches[res.Batch]) {
			t.Fatalf("batch %d: %d results", res.Batch, len(res.Results))
		}
		seen++
	}
	if seen != len(batches) {
		t.Fatalf("delivered %d batches, want %d", seen, len(batches))
	}
	st := idx.Stats()
	if st.Queries != 5 || st.Batches != 2 {
		t.Fatalf("counters after batches: queries=%d batches=%d", st.Queries, st.Batches)
	}
}

// TestOpenLiveErrors pins the public sentinel surface.
func TestOpenLiveErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := apknn.OpenLive(nil); !errors.Is(err, apknn.ErrEmptyDataset) {
		t.Errorf("nil dataset: %v", err)
	}
	if _, err := apknn.OpenLive(apknn.RandomDataset(1, 8, 16), apknn.WithBackend("nope")); !errors.Is(err, apknn.ErrUnknownBackend) {
		t.Errorf("unknown backend: %v", err)
	}
	idx, err := apknn.OpenLive(apknn.RandomDataset(1, 8, 16), apknn.WithBackend(apknn.Fast))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if err := idx.Delete(ctx, 123); !errors.Is(err, apknn.ErrNotFound) {
		t.Errorf("delete unknown: %v", err)
	}
	if _, err := idx.Search(ctx, apknn.RandomQueries(2, 1, 16), -1); !errors.Is(err, apknn.ErrBadK) {
		t.Errorf("bad k: %v", err)
	}
}

// TestDatasetRoundTrip exercises the binary dataset format: writer-to-
// reader in memory, file save/load, and the reject paths.
func TestDatasetRoundTrip(t *testing.T) {
	for _, dim := range []int{16, 64, 100} {
		ds := apknn.RandomDataset(uint64(dim), 77, dim)
		var buf bytes.Buffer
		if _, err := ds.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := apknn.ReadDataset(&buf)
		if err != nil {
			t.Fatalf("dim %d: %v", dim, err)
		}
		if back.Len() != ds.Len() || back.Dim() != ds.Dim() {
			t.Fatalf("dim %d: round-trip shape %dx%d", dim, back.Len(), back.Dim())
		}
		for i := 0; i < ds.Len(); i++ {
			if !back.At(i).Equal(ds.At(i)) {
				t.Fatalf("dim %d: vector %d differs", dim, i)
			}
		}
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "ds.apds")
	ds := apknn.RandomDataset(9, 50, 24)
	if err := apknn.SaveDataset(ds, path); err != nil {
		t.Fatal(err)
	}
	back, err := apknn.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 50 || back.Dim() != 24 {
		t.Fatalf("file round-trip shape %dx%d", back.Len(), back.Dim())
	}
	// A loaded dataset must be servable and mutable.
	idx, err := apknn.OpenLive(back, apknn.WithBackend(apknn.Fast))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	q := back.At(7).Clone()
	res, err := idx.Search(context.Background(), []apknn.Vector{q}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0][0].ID != 7 || res[0][0].Dist != 0 {
		t.Fatalf("loaded dataset search = %v", res[0])
	}

	// Reject paths: truncation, bad magic.
	if err := os.WriteFile(path, []byte("JUNKJUNKJUNK"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := apknn.LoadDataset(path); err == nil {
		t.Fatal("bad magic accepted")
	}
	var buf bytes.Buffer
	if _, err := ds.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := apknn.ReadDataset(bytes.NewReader(buf.Bytes()[:buf.Len()-5])); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// A hostile header claiming a petabyte-scale count must fail with a
	// clean truncation error, not attempt the allocation.
	hostile := make([]byte, 20)
	copy(hostile, "APDS")
	hostile[4] = 1                                       // version
	hostile[8] = 64                                      // dim
	binary.LittleEndian.PutUint64(hostile[12:20], 1<<50) // n
	if _, err := apknn.ReadDataset(bytes.NewReader(hostile)); err == nil {
		t.Fatal("hostile count accepted")
	}
}

// TestOpenLiveStatsJSONShape ensures the wire-visible stats marshal with
// the documented field names.
func TestOpenLiveStatsJSONShape(t *testing.T) {
	idx, err := apknn.OpenLive(apknn.RandomDataset(3, 64, 16), apknn.WithBackend(apknn.Fast))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if _, err := idx.Insert(context.Background(), apknn.RandomQueries(4, 1, 16)[0]); err != nil {
		t.Fatal(err)
	}
	st := idx.Stats()
	if st.Live == nil || st.Live.DeltaSize != 1 || st.Live.BaseSize != 64 {
		t.Fatalf("live stats: %+v", st.Live)
	}
	out := fmt.Sprintf("%+v", st.Live)
	if out == "" {
		t.Fatal("unprintable stats")
	}
}
