// Patternmatch: the AP's general programming path (§II-B) — compile Perl
// Compatible Regular Expressions to homogeneous NFAs, place them on the
// modeled board alongside each other, and stream text through the fabric.
// This is the workload family (pattern mining, motif search) that dominated
// prior AP literature; the kNN design of this repository rides on exactly
// this machinery.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/anml"
	"repro/internal/ap"
	"repro/internal/automata"
	"repro/internal/regexc"
)

func main() {
	patterns := []struct {
		id   int32
		expr string
		desc string
	}{
		{1, "GGATC", "BamHI-adjacent motif (exact)"},
		{2, "GC[AT]GC", "degenerate motif with one wildcard position"},
		{3, "A{3,5}T", "poly-A run of 3-5 followed by T"},
		{4, "(AT)+G", "AT-repeat followed by G"},
	}

	net := automata.NewNetwork()
	for _, p := range patterns {
		if _, err := regexc.Compile(net, p.expr, regexc.Options{ReportID: p.id}); err != nil {
			log.Fatalf("compile %q: %v", p.expr, err)
		}
	}

	board := ap.NewBoard(ap.Gen1())
	if err := board.Configure(net); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d patterns into %d NFAs (%d STEs)\n",
		len(patterns), len(board.Placement().Components), board.Placement().STEs)

	genome := "TTGGATCCAAATGCAGCGCTGCATATATGAAAAATGGATCTT"
	reports := board.Stream([]byte(genome))

	fmt.Printf("\nstream: %s\n", genome)
	for _, p := range patterns {
		var marks []string
		for _, r := range reports {
			if r.ReportID == p.id {
				marks = append(marks, fmt.Sprintf("ends@%d", r.Cycle))
			}
		}
		hit := "no match"
		if len(marks) > 0 {
			hit = strings.Join(marks, " ")
		}
		fmt.Printf("  /%s/  %-42s %s\n", p.expr, p.desc, hit)
	}

	// The same design exports as ANML, the file format the Micron toolchain
	// consumes.
	var sb strings.Builder
	if err := anml.Encode(&sb, net, "motifs"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nANML export: %d bytes (try apcompile -anml to write designs to disk)\n", sb.Len())
	fmt.Printf("modeled stream time at 133 MHz: %v\n", board.ModeledTime())
}
