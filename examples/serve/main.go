// Serving with dynamic micro-batching: an in-process apserve over the
// sharded fleet, hit by concurrent serve.Client queries. Each client sends
// one query per request — the worst case for an Automata Processor, which
// wants big batches so a configuration sweep is paid once per batch — and
// the server's micro-batcher coalesces the concurrent arrivals back into
// shared flushes. The printed stats show the realized batch sizes and what
// forced each flush (size cap vs. window deadline).
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	apknn "repro"
	"repro/internal/serve"
)

func main() {
	const n, dim, k, clients, perClient = 8192, 64, 5, 16, 4

	// A sharded fleet, as apserve would open it.
	ds := apknn.RandomDataset(3, n, dim)
	idx, err := apknn.Open(ds, apknn.WithBackend(apknn.Sharded), apknn.WithBoards(4))
	if err != nil {
		log.Fatal(err)
	}

	// The serving layer: flush a forming batch at 32 queries or 5ms,
	// whichever comes first.
	srv := serve.New(idx, serve.Config{MaxBatch: 32, BatchWindow: 5 * time.Millisecond, Dim: dim})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	fmt.Printf("serving %d vectors x %d bits on http://%s\n", n, dim, ln.Addr())

	transport := &http.Transport{MaxIdleConnsPerHost: clients}
	client := serve.Client{
		BaseURL:    "http://" + ln.Addr().String(),
		HTTPClient: &http.Client{Transport: transport},
	}

	// Concurrent single-query clients; every response is checked against
	// the exact CPU scan.
	queries := apknn.RandomQueries(4, clients*perClient, dim)
	exact := apknn.ExactSearch(ds, queries, k, 4)
	var wg sync.WaitGroup
	var mu sync.Mutex
	flushSizes := map[int]int{}
	mismatches := 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				qi := c*perClient + r
				resp, err := client.Search(context.Background(), queries[qi], k)
				if err != nil {
					log.Fatal(err)
				}
				got := serve.Neighbors(resp.Neighbors)
				ok := len(got) == len(exact[qi])
				for j := 0; ok && j < len(got); j++ {
					ok = got[j] == exact[qi][j]
				}
				mu.Lock()
				flushSizes[resp.FlushSize]++
				if !ok {
					mismatches++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	transport.CloseIdleConnections()

	fmt.Printf("%d clients x %d queries answered; %d mismatches vs exact scan\n",
		clients, perClient, mismatches)
	st := srv.Stats()
	fmt.Printf("mean realized batch: %.2f queries/flush across %d flushes\n",
		st.MeanBatch, st.Flushes)
	fmt.Printf("flushes: %d by size cap, %d by window deadline; %d requests coalesced\n",
		st.FlushesBySize, st.FlushesByDeadline, st.Coalesced)

	// Graceful shutdown: stop the listener, then drain the batcher.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := srv.Close(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained and shut down cleanly")
}
