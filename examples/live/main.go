// Live mutable index: insert → search → delete → compact. A compiled AP
// index is compile-once — on real hardware every dataset change pays a
// reconfiguration sweep (§III-C). OpenLive makes it mutable the way the
// serving layer makes it batched: inserts land in an exactly-scanned delta
// segment, deletes in a tombstone set, both visible to the next search
// immediately, and a compaction folds the churn into one fresh compilation,
// paying the sweep once for the whole batch of mutations.
package main

import (
	"context"
	"fmt"
	"log"

	apknn "repro"
)

func main() {
	const n, dim, k = 4096, 64, 3
	ctx := context.Background()

	ds := apknn.RandomDataset(5, n, dim)
	idx, err := apknn.OpenLive(ds,
		apknn.WithBackend(apknn.Fast),
		apknn.WithCompactThreshold(-1)) // compaction on our schedule below
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	fmt.Printf("live index over %d x %d-bit seed vectors\n", n, dim)

	// Insert: a brand-new vector gets the next global ID and is searchable
	// immediately — no recompilation happened yet.
	v := apknn.RandomQueries(6, 1, dim)[0]
	id, err := idx.Insert(ctx, v)
	if err != nil {
		log.Fatal(err)
	}
	res, err := idx.Search(ctx, []apknn.Vector{v}, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted as id %d; searching for it finds id %d at distance %d\n",
		id, res[0][0].ID, res[0][0].Dist)

	// Delete: tombstoned, gone from the very next search.
	if err := idx.Delete(ctx, id); err != nil {
		log.Fatal(err)
	}
	res, err = idx.Search(ctx, []apknn.Vector{v}, k)
	if err != nil {
		log.Fatal(err)
	}
	gone := true
	for _, nb := range res[0] {
		if nb.ID == id {
			gone = false
		}
	}
	fmt.Printf("deleted id %d; still returned: %v\n", id, !gone)

	st := idx.Stats().Live
	fmt.Printf("pending churn: delta=%d tombstones=%d (generation %d)\n",
		st.DeltaSize, st.Tombstones, st.Generation)

	// Compact: base+delta-tombstones recompiled into generation 1, the
	// reconfiguration sweep charged once for all of it.
	if err := idx.Compact(ctx); err != nil {
		log.Fatal(err)
	}
	st = idx.Stats().Live
	fmt.Printf("compacted: base=%d delta=%d tombstones=%d (generation %d, reconfig %v)\n",
		st.BaseSize, st.DeltaSize, st.Tombstones, st.Generation, st.ReconfigTime)
	fmt.Printf("modeled time including churn: %v\n", idx.ModeledTime())
}
