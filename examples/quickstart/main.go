// Quickstart: the sixty-second tour of the library — build a binary dataset,
// open it on the simulated Automata Processor backend, and verify against
// the exact CPU scan.
package main

import (
	"context"
	"fmt"
	"log"

	apknn "repro"
)

func main() {
	// A dataset of 1,000 binary codes of 64 bits (one board configuration),
	// as produced by offline quantization such as ITQ.
	ds := apknn.RandomDataset(42, 1000, 64)
	queries := apknn.RandomQueries(43, 5, 64)

	// Open compiles one Hamming + sorting macro per vector onto the modeled
	// AP board and answers queries with the temporally encoded sort.
	// WithBackend picks the compute platform; AP — the cycle-accurate
	// simulator — is also the default.
	idx, err := apknn.Open(ds, apknn.WithBackend(apknn.AP))
	if err != nil {
		log.Fatal(err)
	}
	results, err := idx.Search(context.Background(), queries, 3)
	if err != nil {
		log.Fatal(err)
	}

	exact := apknn.ExactSearch(ds, queries, 3, 4)
	for qi, neighbors := range results {
		fmt.Printf("query %d:\n", qi)
		for rank, n := range neighbors {
			fmt.Printf("  #%d  vector %4d  hamming distance %2d\n", rank+1, n.ID, n.Dist)
		}
		fmt.Printf("  recall vs exact CPU scan: %.0f%%\n", 100*apknn.Recall(neighbors, exact[qi]))
	}
	fmt.Printf("\nboard configurations used: %d\n", idx.Stats().Partitions)
	fmt.Printf("modeled AP execution time: %v\n", idx.ModeledTime())
}
