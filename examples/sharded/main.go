// Sharded search: spread a dataset across four simulated AP boards with the
// Sharded backend, answer query batches asynchronously with SearchBatch,
// and compare the modeled multi-board time against a single board — the
// data-parallel scaling story the paper's partial-reconfiguration engine
// (§III-C) builds toward.
package main

import (
	"context"
	"fmt"
	"log"

	apknn "repro"
)

func main() {
	ctx := context.Background()

	// 32k binary codes of 128 bits: a 32-configuration sweep on one board.
	ds := apknn.RandomDataset(7, 32<<10, 128)

	// One board, as the paper evaluates: the configuration sweep is serial.
	serial, err := apknn.Open(ds, apknn.WithBackend(apknn.Fast))
	if err != nil {
		log.Fatal(err)
	}
	// The Sharded backend: four boards by default, each owning a quarter of
	// the configurations and streaming concurrently; the host merges the
	// per-board top-k lists.
	sharded, err := apknn.Open(ds, apknn.WithBackend(apknn.Sharded), apknn.WithBoards(4))
	if err != nil {
		log.Fatal(err)
	}
	st := sharded.Stats()
	fmt.Printf("dataset: %d vectors x %d bits, %d board configurations\n",
		ds.Len(), ds.Dim(), serial.Stats().Partitions)
	fmt.Printf("sharded across %d boards (%d configurations each)\n",
		st.Boards, st.Partitions/st.Boards)

	// Submit three query batches asynchronously; encoding of the next
	// batch overlaps board streaming of the current one, and results
	// arrive in submission order. Canceling ctx would abort the pipeline
	// at the next batch boundary.
	batches := [][]apknn.Vector{
		apknn.RandomQueries(11, 8, 128),
		apknn.RandomQueries(12, 8, 128),
		apknn.RandomQueries(13, 8, 128),
	}
	for res := range sharded.SearchBatch(ctx, batches, 5) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		best := res.Results[0][0]
		fmt.Printf("batch %d: %d queries answered; first hit id=%d dist=%d\n",
			res.Batch, len(res.Results), best.ID, best.Dist)
	}

	// The serial board answers the same batches for the modeled-time
	// comparison; results are byte-identical.
	for _, qs := range batches {
		if _, err := serial.Search(ctx, qs, 5); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("modeled time, 1 board:  %v\n", serial.ModeledTime())
	fmt.Printf("modeled time, 4 boards: %v\n", sharded.ModeledTime())
	fmt.Printf("modeled speedup: %.2fx\n",
		float64(serial.ModeledTime())/float64(sharded.ModeledTime()))
}
