// Sharded search: spread a dataset across four simulated AP boards, answer
// query batches asynchronously with QueryBatch, and compare the modeled
// multi-board time against a single board — the data-parallel scaling story
// the paper's partial-reconfiguration engine (§III-C) builds toward.
package main

import (
	"fmt"
	"log"

	apknn "repro"
)

func main() {
	// 32k binary codes of 128 bits: a 32-configuration sweep on one board.
	ds := apknn.RandomDataset(7, 32<<10, 128)

	// One board, as the paper evaluates: the configuration sweep is serial.
	serial, err := apknn.NewSearcher(ds, apknn.Options{Exact: true})
	if err != nil {
		log.Fatal(err)
	}
	// Four boards: each owns a quarter of the configurations and streams
	// concurrently; the host merges the per-board top-k lists.
	sharded, err := apknn.NewSearcher(ds, apknn.Options{Exact: true, Boards: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d vectors x %d bits, %d board configurations\n",
		ds.Len(), ds.Dim(), serial.Partitions())
	fmt.Printf("sharded across %d boards (%d configurations each)\n",
		sharded.Boards(), sharded.Partitions()/sharded.Boards())

	// Submit three query batches asynchronously; encoding of the next
	// batch overlaps board streaming of the current one, and results
	// arrive in submission order.
	batches := [][]apknn.Vector{
		apknn.RandomQueries(11, 8, 128),
		apknn.RandomQueries(12, 8, 128),
		apknn.RandomQueries(13, 8, 128),
	}
	for res := range sharded.QueryBatch(batches, 5) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		best := res.Results[0][0]
		fmt.Printf("batch %d: %d queries answered; first hit id=%d dist=%d\n",
			res.Batch, len(res.Results), best.ID, best.Dist)
	}

	// The serial board answers the same batches for the modeled-time
	// comparison; results are byte-identical.
	for _, qs := range batches {
		if _, err := serial.Query(qs, 5); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("modeled time, 1 board:  %v\n", serial.ModeledTime())
	fmt.Printf("modeled time, 4 boards: %v\n", sharded.ModeledTime())
	fmt.Printf("modeled speedup: %.2fx\n",
		float64(serial.ModeledTime())/float64(sharded.ModeledTime()))
}
