// Dedup: near-duplicate detection, another §I motivating application.
// Documents are represented as binary sketches; an LSH index (§II-A) maps
// each incoming document to candidate buckets, and the bucket contents are
// scanned exactly on the AP (§III-D: index traversal on the host, bucket
// scan offloaded). Documents within a small Hamming radius are flagged as
// duplicates.
package main

import (
	"fmt"
	"log"

	apknn "repro"
	"repro/internal/bitvec"
	"repro/internal/index"
	"repro/internal/stats"
)

func main() {
	const (
		corpus    = 600 // stored document sketches
		dim       = 64  // sketch bits
		dupRadius = 6   // duplicates differ by at most this many bits
		probes    = 12  // LSH buckets to check per document
	)
	rng := stats.NewRNG(99)
	ds := bitvec.RandomDataset(rng, corpus, dim)

	lsh, err := index.BuildLSH(ds, index.DefaultLSHConfig(corpus, 64), rng)
	if err != nil {
		log.Fatal(err)
	}

	// Incoming batch: half are near-duplicates of stored documents, half are
	// fresh content.
	type incoming struct {
		sketch apknn.Vector
		dupOf  int // -1 for fresh documents
	}
	var batch []incoming
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			src := rng.Intn(corpus)
			v := ds.At(src).Clone()
			for f := 0; f < rng.Intn(dupRadius); f++ {
				v.Flip(rng.Intn(dim))
			}
			batch = append(batch, incoming{sketch: v, dupOf: src})
		} else {
			batch = append(batch, incoming{sketch: bitvec.Random(rng, dim), dupOf: -1})
		}
	}

	// Scan each incoming document's LSH buckets on the AP-backed searcher.
	searcher, err := apknn.NewSearcher(ds, apknn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, doc := range batch {
		// The LSH index prunes the search space; the pruned candidate set is
		// what a production system would load as board configurations. Here
		// the exact-bucket scan runs on the CPU path of the index and the
		// verification pass runs on the AP searcher.
		candidates, scanned := index.Search(ds, lsh, doc.sketch, 1, probes)
		apResult, err := searcher.Query([]apknn.Vector{doc.sketch}, 1)
		if err != nil {
			log.Fatal(err)
		}
		isDup := len(candidates) > 0 && candidates[0].Dist <= dupRadius
		apAgrees := apResult[0][0].Dist <= dupRadius
		status := "fresh"
		if isDup {
			status = fmt.Sprintf("duplicate of #%d (distance %d)", candidates[0].ID, candidates[0].Dist)
		}
		wantDup := doc.dupOf >= 0
		if isDup == wantDup {
			correct++
		}
		fmt.Printf("doc %2d: %-34s scanned %3d candidates; AP full-scan agrees: %v\n",
			i, status, scanned, apAgrees == isDup || apAgrees) // AP scans everything, so it can only find closer matches
	}
	fmt.Printf("\ndetection accuracy: %d/%d\n", correct, len(batch))
	if correct < len(batch)*8/10 {
		log.Fatal("dedup accuracy collapsed")
	}
}
