// Dedup: near-duplicate detection, another §I motivating application.
// Documents are represented as binary sketches; the Approx backend's LSH
// index (§II-A) maps each incoming document to candidate buckets whose
// contents are scanned exactly (§III-D: index traversal on the host, bucket
// scan offloaded), while the AP backend's full scan arbitrates. Documents
// within a small Hamming radius are flagged as duplicates.
package main

import (
	"context"
	"fmt"
	"log"

	apknn "repro"
	"repro/internal/bitvec"
	"repro/internal/stats"
)

func main() {
	const (
		corpus    = 600 // stored document sketches
		dim       = 64  // sketch bits
		dupRadius = 6   // duplicates differ by at most this many bits
		probes    = 12  // LSH buckets to check per document
	)
	ctx := context.Background()
	rng := stats.NewRNG(99)
	ds := bitvec.RandomDataset(rng, corpus, dim)

	// The pruned LSH path and the exhaustive AP path, both through the same
	// backend surface.
	lsh, err := apknn.Open(ds,
		apknn.WithBackend(apknn.Approx),
		apknn.WithIndex(apknn.LSH),
		apknn.WithProbes(probes),
		apknn.WithCapacity(64), // target bucket size ≈ one small board image
		apknn.WithSeed(99),
	)
	if err != nil {
		log.Fatal(err)
	}
	full, err := apknn.Open(ds) // default: the cycle-accurate AP backend
	if err != nil {
		log.Fatal(err)
	}

	// Incoming batch: half are near-duplicates of stored documents, half are
	// fresh content.
	type incoming struct {
		sketch apknn.Vector
		dupOf  int // -1 for fresh documents
	}
	var batch []incoming
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			src := rng.Intn(corpus)
			v := ds.At(src).Clone()
			for f := 0; f < rng.Intn(dupRadius); f++ {
				v.Flip(rng.Intn(dim))
			}
			batch = append(batch, incoming{sketch: v, dupOf: src})
		} else {
			batch = append(batch, incoming{sketch: bitvec.Random(rng, dim), dupOf: -1})
		}
	}

	correct := 0
	var scannedBefore int64
	for i, doc := range batch {
		// The LSH index prunes the search space; the pruned candidate set is
		// what a production system would load as board configurations. The
		// verification pass runs on the AP backend's full scan.
		candRes, err := lsh.Search(ctx, []apknn.Vector{doc.sketch}, 1)
		if err != nil {
			log.Fatal(err)
		}
		candidates := candRes[0]
		scannedNow := lsh.Stats().CandidatesScanned
		scanned := scannedNow - scannedBefore
		scannedBefore = scannedNow

		apResult, err := full.Search(ctx, []apknn.Vector{doc.sketch}, 1)
		if err != nil {
			log.Fatal(err)
		}
		isDup := len(candidates) > 0 && candidates[0].Dist <= dupRadius
		apAgrees := apResult[0][0].Dist <= dupRadius
		status := "fresh"
		if isDup {
			status = fmt.Sprintf("duplicate of #%d (distance %d)", candidates[0].ID, candidates[0].Dist)
		}
		wantDup := doc.dupOf >= 0
		if isDup == wantDup {
			correct++
		}
		// The AP full scan searches a superset of the LSH candidates, so it
		// can only flag more duplicates, never fewer: a disagreement means
		// the probe budget missed a duplicate's bucket.
		fmt.Printf("doc %2d: %-34s scanned %3d candidates; AP full-scan flags duplicate: %v\n",
			i, status, scanned, apAgrees)
	}
	fmt.Printf("\ndetection accuracy: %d/%d\n", correct, len(batch))
	if correct < len(batch)*8/10 {
		log.Fatal("dedup accuracy collapsed")
	}
}
