// Example cluster boots a miniature multi-node fleet in one process — two
// shards, each replicated twice, behind an aprouter-style scatter-gather
// router — then proves the two cluster-tier claims: results through the
// router are byte-identical to a single index over the union dataset, and
// killing a replica degrades nothing but the replica count.
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	apknn "repro"
	"repro/internal/cluster"
	"repro/internal/serve"
)

const (
	n, dim, k = 4096, 32, 5
	shards    = 2
	replicas  = 2
)

func main() {
	ds := apknn.RandomDataset(42, n, dim)
	fmt.Printf("union dataset: %d vectors x %d bits, %d shard(s) x %d replica(s)\n",
		n, dim, shards, replicas)

	// Boot the nodes: contiguous partitions, every replica of a shard
	// serving the identical slice.
	m := &cluster.Manifest{}
	var nodeHTTP [][]*http.Server
	chunk := n / shards
	for s := 0; s < shards; s++ {
		part := ds.Slice(s*chunk, (s+1)*chunk)
		sh := cluster.Shard{Base: s * chunk}
		var hss []*http.Server
		for rep := 0; rep < replicas; rep++ {
			idx, err := apknn.Open(part, apknn.WithBackend(apknn.Fast))
			if err != nil {
				log.Fatal(err)
			}
			srv := serve.New(idx, serve.Config{
				Dim:     dim,
				NodeID:  fmt.Sprintf("shard%d-%c", s, 'a'+rep),
				Vectors: part.Len(),
			})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			hs := &http.Server{Handler: srv.Handler()}
			go func() { _ = hs.Serve(ln) }()
			hss = append(hss, hs)
			sh.Replicas = append(sh.Replicas, "http://"+ln.Addr().String())
			fmt.Printf("  node shard%d-%c: %s, vectors [%d, %d)\n",
				s, 'a'+rep, ln.Addr(), s*chunk, (s+1)*chunk)
		}
		nodeHTTP = append(nodeHTTP, hss)
		m.Shards = append(m.Shards, sh)
	}

	// The router: scatter-gather with hedged reads and background probes.
	router, err := cluster.New(m, cluster.Config{
		HedgeDelay:    5 * time.Millisecond,
		ProbeInterval: 200 * time.Millisecond,
		DefaultK:      k,
		Dim:           dim,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	rsrv := &http.Server{Handler: router.Handler()}
	go func() { _ = rsrv.Serve(rln) }()
	client := serve.Client{BaseURL: "http://" + rln.Addr().String()}
	fmt.Printf("router: %s (hedge 5ms, probe every 200ms)\n\n", rln.Addr())

	// Claim 1: the cluster is indistinguishable from one big index.
	ctx := context.Background()
	queries := apknn.RandomQueries(43, 8, dim)
	exact := apknn.ExactSearch(ds, queries, k, 4)
	identical := 0
	for qi, q := range queries {
		resp, err := client.Search(ctx, q, k)
		if err != nil {
			log.Fatal(err)
		}
		got := serve.Neighbors(resp.Neighbors)
		same := len(got) == len(exact[qi])
		for j := 0; same && j < len(got); j++ {
			same = got[j] == exact[qi][j]
		}
		if same {
			identical++
		}
	}
	fmt.Printf("scatter-gather vs single-index exact scan: %d/%d queries byte-identical\n",
		identical, len(queries))

	// Claim 2: replication absorbs a node death.
	fmt.Println("\nkilling replica shard0-b ...")
	nodeHTTP[0][1].Close()
	time.Sleep(500 * time.Millisecond) // let a probe pass notice
	stillIdentical := 0
	for qi, q := range queries {
		resp, err := client.Search(ctx, q, k)
		if err != nil {
			log.Fatal(err)
		}
		got := serve.Neighbors(resp.Neighbors)
		same := len(got) == len(exact[qi])
		for j := 0; same && j < len(got); j++ {
			same = got[j] == exact[qi][j]
		}
		if same {
			stillIdentical++
		}
	}
	st := router.Stats()
	fmt.Printf("after the kill: %d/%d queries still byte-identical\n", stillIdentical, len(queries))
	fmt.Printf("cluster stats: %d/%d replicas healthy, %d searches, %d shard calls, %d failover(s), %d hedge(s)\n",
		st.Healthy, st.Replicas, st.Searches, st.ShardCalls, st.Failovers, st.Hedges)
}
