// Imagesearch: content-based image retrieval, the paper's motivating
// application (§I). Synthetic SIFT-like real-valued descriptors are
// quantized to 128-bit binary codes with ITQ (§II-A) and searched on the
// simulated AP; retrieval quality is measured as the fraction of retrieved
// neighbors that share the query image's scene cluster.
package main

import (
	"context"
	"fmt"
	"log"

	apknn "repro"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const (
		scenes   = 12  // distinct scene clusters
		perScene = 60  // descriptors per scene
		floatDim = 64  // raw descriptor dimensionality
		codeBits = 32  // binary code length after ITQ
		k        = 5   // neighbors per query
		numQuery = 24  // held-out queries
		spread   = 0.9 // intra-scene descriptor noise
	)
	rng := stats.NewRNG(7)
	features, labels := workload.GaussianFeatures(rng, scenes, perScene, floatDim, spread)

	// Offline: train ITQ on the corpus and encode it (the paper keeps this
	// off the kNN critical path).
	ds, itq, err := apknn.QuantizeITQ(features, features, codeBits, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d descriptors into %d-bit ITQ codes\n", ds.Len(), ds.Dim())

	searcher, err := apknn.Open(ds)
	if err != nil {
		log.Fatal(err)
	}

	// Online: query with perturbed versions of random corpus images.
	var queries []apknn.Vector
	var queryLabels []int
	for i := 0; i < numQuery; i++ {
		idx := rng.Intn(len(features))
		noisy := make([]float64, floatDim)
		for j, x := range features[idx] {
			noisy[j] = x + rng.NormFloat64()*spread/2
		}
		queries = append(queries, itq.Encode(noisy))
		queryLabels = append(queryLabels, labels[idx])
	}
	results, err := searcher.Search(context.Background(), queries, k)
	if err != nil {
		log.Fatal(err)
	}

	hits, total := 0, 0
	for qi, neighbors := range results {
		for _, n := range neighbors {
			total++
			if labels[n.ID] == queryLabels[qi] {
				hits++
			}
		}
	}
	fmt.Printf("retrieved %d neighbors for %d queries on %d board configuration(s)\n",
		total, numQuery, searcher.Stats().Partitions)
	fmt.Printf("scene precision@%d: %.1f%% (chance: %.1f%%)\n",
		k, 100*float64(hits)/float64(total), 100.0/scenes)
	if float64(hits)/float64(total) < 3.0/float64(scenes) {
		log.Fatal("retrieval quality collapsed; ITQ pipeline is broken")
	}
}
