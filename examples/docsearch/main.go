// Docsearch: word-embedding document retrieval (§I) over a dataset larger
// than one board configuration, demonstrating partial reconfiguration
// (§III-C) and the statistical activation reduction of §VI-C.
package main

import (
	"context"
	"fmt"
	"log"

	apknn "repro"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const (
		docs     = 3000 // document embedding codes — spans 3 board images
		dim      = 64   // WordEmbed dimensionality (Table II)
		k        = 2    // WordEmbed neighbor count (Table II)
		queries  = 12
		capacity = 1024 // vectors per board configuration (§V-A)
	)
	rng := stats.NewRNG(2718)
	ds := workload.Clustered(rng, 60, docs/60, dim, 5)
	qs := workload.PlantedQueries(rng, ds, queries, 3)

	searcher, err := apknn.Open(ds,
		apknn.WithCapacity(capacity),
		apknn.WithGeneration(apknn.Gen1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus of %d document codes spans %d board configurations\n",
		docs, searcher.Stats().Partitions)

	results, err := searcher.Search(context.Background(), qs, k)
	if err != nil {
		log.Fatal(err)
	}
	exact := apknn.ExactSearch(ds, qs, k, 4)
	agree := 0
	for qi := range qs {
		if apknn.Recall(results[qi], exact[qi]) == 1 {
			agree++
		}
	}
	fmt.Printf("partial-reconfiguration search matched the exact scan on %d/%d queries\n", agree, queries)
	fmt.Printf("modeled AP Gen 1 time (reconfiguration-dominated, §V-B): %v\n\n", searcher.ModeledTime())

	// Statistical activation reduction: how much report bandwidth can be
	// saved at what accuracy cost (Table VI methodology, faithful-hardware
	// suppression semantics).
	fmt.Println("statistical activation reduction (p=16 macros per group):")
	for _, kPrime := range []int{1, 2, 4} {
		res := core.RunReduction(core.ReductionExperiment{
			Dim: dim, N: 1024, P: 16, K: k, KPrime: kPrime,
			Runs: 50, Mode: core.SuppressFaithful,
		}, stats.NewRNG(uint64(kPrime)))
		fmt.Printf("  k'=%d: %.0f%% incorrect results, %.1fx report-bandwidth reduction\n",
			kPrime, res.IncorrectPercent, res.BandwidthFactor)
	}
}
