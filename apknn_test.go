package apknn_test

import (
	"testing"

	apknn "repro"
)

func TestSearcherMatchesExact(t *testing.T) {
	ds := apknn.RandomDataset(1, 80, 32)
	queries := apknn.RandomQueries(2, 5, 32)
	for _, exact := range []bool{false, true} {
		s, err := apknn.NewSearcher(ds, apknn.Options{Exact: exact, Capacity: 30})
		if err != nil {
			t.Fatal(err)
		}
		if s.Partitions() != 3 {
			t.Fatalf("partitions = %d, want 3", s.Partitions())
		}
		got, err := s.Query(queries, 4)
		if err != nil {
			t.Fatal(err)
		}
		want := apknn.ExactSearch(ds, queries, 4, 2)
		for qi := range queries {
			for j := range want[qi] {
				if got[qi][j] != want[qi][j] {
					t.Errorf("exact=%v query %d rank %d: %v vs %v", exact, qi, j, got[qi][j], want[qi][j])
				}
			}
			if r := apknn.Recall(got[qi], want[qi]); r != 1 {
				t.Errorf("recall = %v, want 1", r)
			}
		}
	}
}

func TestSearcherModeledTime(t *testing.T) {
	ds := apknn.RandomDataset(3, 40, 16)
	s, err := apknn.NewSearcher(ds, apknn.Options{Generation: apknn.Gen1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(apknn.RandomQueries(4, 2, 16), 1); err != nil {
		t.Fatal(err)
	}
	if s.ModeledTime() <= 0 {
		t.Error("modeled time not accumulated")
	}
}

func TestQuantizePipeline(t *testing.T) {
	// End to end: floats -> ITQ -> binary dataset -> searcher.
	training := make([][]float64, 0, 60)
	for c := 0; c < 3; c++ {
		for i := 0; i < 20; i++ {
			v := make([]float64, 16)
			for j := range v {
				v[j] = float64(c*7) + float64(i%5)*0.1 + float64(j%3)
			}
			training = append(training, v)
		}
	}
	ds, itq, err := apknn.QuantizeITQ(training, training, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 60 || ds.Dim() != 8 {
		t.Fatalf("encoded dataset %dx%d", ds.Len(), ds.Dim())
	}
	if itq.Bits() != 8 {
		t.Errorf("Bits = %d", itq.Bits())
	}
	s, err := apknn.NewSearcher(ds, apknn.Options{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	q := itq.Encode(training[0])
	res, err := s.Query([]apknn.Vector{q}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0]) != 3 || res[0][0].Dist != 0 {
		t.Errorf("self-query results = %v", res[0])
	}
}

func TestParseVector(t *testing.T) {
	v, err := apknn.ParseVector("1011")
	if err != nil || v.Dim() != 4 || !v.Bit(0) || v.Bit(1) {
		t.Errorf("ParseVector = %v, %v", v, err)
	}
	if _, err := apknn.ParseVector("10x"); err == nil {
		t.Error("bad vector accepted")
	}
}

func TestGenerationString(t *testing.T) {
	if apknn.Gen1.String() != "AP Gen 1" || apknn.Gen2.String() != "AP Gen 2" {
		t.Error("Generation.String wrong")
	}
}
