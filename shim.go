package apknn

import (
	"context"
	"time"
)

// Options configures a Searcher.
//
// Deprecated: Options is the pre-Backend flat configuration. Use Open with
// functional options (WithBackend, WithBoards, WithGeneration, ...), which
// reaches every compute platform instead of only the AP engines.
type Options struct {
	// Generation of the modeled board (default Gen2).
	Generation Generation
	// Capacity overrides vectors per board configuration (default: the
	// paper's §V-A capacities — 1024 for d <= 128, 512 above).
	Capacity int
	// Exact switches to the semantics-equivalent fast engine, which returns
	// identical results without cycle-accurate simulation. Use it for large
	// datasets; the default simulator engine exercises the real automata.
	Exact bool
	// Boards shards the dataset across this many simulated boards (default
	// 1). Each board owns a disjoint slice of the dataset, all boards
	// stream every query batch concurrently, and the host merges their
	// top-k lists — so results are identical to a single board while the
	// modeled time becomes the maximum across boards instead of the sum
	// over the configuration sweep.
	Boards int
	// Workers bounds how many boards stream concurrently (default: one
	// worker per board).
	Workers int
}

// Searcher answers kNN queries against a fixed dataset using the paper's
// automata design. It is safe for concurrent use.
//
// Deprecated: use the Index returned by Open, whose Search/SearchBatch
// accept a context.Context for cancellation. Searcher remains a thin shim
// over the same engine and will be removed after one release.
type Searcher struct {
	idx *shardIndex
}

// NewSearcher builds the kNN automata for ds and precompiles its board
// images.
//
// Deprecated: use Open. NewSearcher(ds, Options{Exact: true, Boards: 4}) is
// Open(ds, WithBackend(Fast), WithBoards(4)); the zero Options value is
// Open(ds) — the cycle-accurate AP backend.
func NewSearcher(ds *Dataset, opts Options) (*Searcher, error) {
	kind := AP
	if opts.Exact {
		kind = Fast
	}
	idx, err := Open(ds,
		WithBackend(kind),
		WithGeneration(opts.Generation),
		WithCapacity(opts.Capacity),
		WithBoards(opts.Boards),
		WithWorkers(opts.Workers),
	)
	if err != nil {
		return nil, err
	}
	return &Searcher{idx: idx.(*shardIndex)}, nil
}

// Query returns the k nearest neighbors of each query, (distance, ID)-sorted
// with deterministic tie-breaks.
//
// Deprecated: use Index.Search, which accepts a context.
func (s *Searcher) Query(queries []Vector, k int) ([][]Neighbor, error) {
	return s.idx.Search(context.Background(), queries, k)
}

// QueryBatch answers many query batches asynchronously, pipelining query
// encoding against board streaming and report decoding. Results arrive on
// the returned channel in submission order; the channel closes after the
// last batch. Multiple goroutines may call QueryBatch (and Query)
// concurrently on one Searcher.
//
// Deprecated: use Index.SearchBatch, which accepts a context.
func (s *Searcher) QueryBatch(batches [][]Vector, k int) <-chan BatchResult {
	return s.idx.SearchBatch(context.Background(), batches, k)
}

// Partitions reports how many board configurations the dataset spans.
func (s *Searcher) Partitions() int { return s.idx.Partitions() }

// Boards reports how many boards the dataset is sharded across.
func (s *Searcher) Boards() int { return s.idx.Boards() }

// ModeledTime returns the modeled AP wall-clock estimate (streaming at
// 133 MHz plus partial reconfigurations), taken as the maximum across
// boards since they stream concurrently. The exact engine charges the same
// analytic model.
func (s *Searcher) ModeledTime() time.Duration {
	return s.idx.ModeledTime()
}
