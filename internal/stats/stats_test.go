package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(1234), NewRNG(1234)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(21)
	const n = 20000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		ss += v * v
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN)%50 + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(5)
	child := parent.Split()
	// The child should not replay the parent's stream.
	p1 := parent.Uint64()
	c1 := child.Uint64()
	if p1 == c1 {
		t.Error("split generator replays parent stream")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s.StdDev, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v, want 2", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v, want 0", m)
	}
}
