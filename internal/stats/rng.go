// Package stats provides the small statistical toolkit shared by the
// simulators and benchmark harnesses: a fast deterministic random number
// generator, summary statistics, and histogram helpers.
//
// Experiments in this repository must be reproducible run-to-run, so every
// randomized component takes an explicit *stats.RNG seeded by the caller
// instead of reaching for package-level global randomness.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on the
// splitmix64 mixing function. It is small, fast, and has no shared state,
// which makes it safe to hand one instance to each goroutine.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators constructed
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0, matching the contract of math/rand.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn argument must be positive")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	// Reject u1 == 0 so the logarithm is finite.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Split derives an independent generator from the current stream. The
// derived generator's sequence does not overlap the parent's for practical
// stream lengths, which lets concurrent workers share one logical seed.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}
