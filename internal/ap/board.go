package ap

import (
	"fmt"
	"time"

	"repro/internal/automata"
)

// Board is the runtime view of an AP device: the host configures it with a
// compiled automata network, streams symbols through it, and collects report
// records — the workflow of paper Fig. 1. Alongside functional execution on
// the cycle-accurate simulator, the board accumulates the modeled wall-clock
// cost of every operation (reconfigurations at ReconfigLatency, streaming at
// the symbol clock), which is what the performance model consumes.
type Board struct {
	cfg       DeviceConfig
	placement *Placement
	sim       *automata.Simulator

	reconfigs     int
	symbols       int
	reportRecords int
}

// NewBoard returns an unconfigured board.
func NewBoard(cfg DeviceConfig) *Board {
	return &Board{cfg: cfg}
}

// Config returns the board's device configuration.
func (b *Board) Config() DeviceConfig { return b.cfg }

// Configure compiles net onto the board and makes it the active
// configuration, accounting one partial reconfiguration. Precompiled
// placements (the paper assumes board images are compiled offline, §III-C)
// can be loaded with ConfigurePlaced.
func (b *Board) Configure(net *automata.Network) error {
	placement, err := Compile(net, b.cfg)
	if err != nil {
		return err
	}
	return b.ConfigurePlaced(net, placement)
}

// ConfigurePlaced loads a precompiled placement.
func (b *Board) ConfigurePlaced(net *automata.Network, placement *Placement) error {
	sim, err := automata.NewSimulator(net)
	if err != nil {
		return fmt.Errorf("ap: configure: %w", err)
	}
	b.placement = placement
	b.sim = sim
	b.reconfigs++
	return nil
}

// Placement returns the active placement, or nil before Configure.
func (b *Board) Placement() *Placement { return b.placement }

// Simulator exposes the underlying simulator for trace hooks and
// architectural-extension flags.
func (b *Board) Simulator() *automata.Simulator { return b.sim }

// Stream resets the active configuration and drives the symbol stream
// through it, returning all reports. It panics if the board is not
// configured: streaming without a configuration is a host-programming bug.
func (b *Board) Stream(symbols []byte) []automata.Report {
	if b.sim == nil {
		panic("ap: Stream on unconfigured board")
	}
	b.symbols += len(symbols)
	reports := b.sim.Run(symbols)
	b.reportRecords += len(reports)
	return reports
}

// Reconfigs returns the number of configurations loaded so far.
func (b *Board) Reconfigs() int { return b.reconfigs }

// SymbolsStreamed returns the total number of symbols streamed.
func (b *Board) SymbolsStreamed() int { return b.symbols }

// ReportsEmitted returns the total number of report records produced.
func (b *Board) ReportsEmitted() int { return b.reportRecords }

// ModeledTime returns the accumulated wall-clock estimate: reconfiguration
// latency per configuration plus streaming time at the symbol clock. The
// first configuration is not charged — datasets are loaded before queries
// arrive, matching the paper's methodology of excluding offline compilation
// and initial setup.
func (b *Board) ModeledTime() time.Duration {
	t := b.cfg.StreamTime(b.symbols)
	if b.reconfigs > 1 {
		t += time.Duration(b.reconfigs-1) * b.cfg.ReconfigLatency
	}
	return t
}

// ReportBandwidthBits returns the §VI-C estimate of report traffic in bits:
// each report record is a 32-bit sparse-vector entry plus its 32-bit cycle
// offset amortized per stream.
func (b *Board) ReportBandwidthBits() int {
	return 32 * (b.reportRecords + b.symbols)
}
