package ap

import "time"

// Fleet is a set of identically configured boards operated in parallel by a
// data-parallel host driver: each board owns a disjoint dataset partition
// and all boards stream the same query batch simultaneously. The modeled
// wall-clock of the fleet is therefore the maximum across its boards — the
// whole point of scaling out — while throughput-style counters (symbols,
// reports, reconfigurations) aggregate as totals.
type Fleet struct {
	cfg    DeviceConfig
	boards []*Board
}

// NewFleet returns a fleet of n unconfigured boards sharing cfg.
func NewFleet(cfg DeviceConfig, n int) *Fleet {
	f := &Fleet{cfg: cfg, boards: make([]*Board, n)}
	for i := range f.boards {
		f.boards[i] = NewBoard(cfg)
	}
	return f
}

// Config returns the shared device configuration.
func (f *Fleet) Config() DeviceConfig { return f.cfg }

// Len returns the number of boards.
func (f *Fleet) Len() int { return len(f.boards) }

// Board returns board i.
func (f *Fleet) Board(i int) *Board { return f.boards[i] }

// ModeledTime returns the modeled wall-clock of the fleet: the maximum of
// the per-board estimates, since the boards stream concurrently.
func (f *Fleet) ModeledTime() time.Duration {
	var max time.Duration
	for _, b := range f.boards {
		if t := b.ModeledTime(); t > max {
			max = t
		}
	}
	return max
}

// SymbolsStreamed returns the total symbols streamed across all boards.
func (f *Fleet) SymbolsStreamed() int {
	n := 0
	for _, b := range f.boards {
		n += b.SymbolsStreamed()
	}
	return n
}

// Reconfigs returns the total configurations loaded across all boards.
func (f *Fleet) Reconfigs() int {
	n := 0
	for _, b := range f.boards {
		n += b.Reconfigs()
	}
	return n
}

// ReportsEmitted returns the total report records across all boards.
func (f *Fleet) ReportsEmitted() int {
	n := 0
	for _, b := range f.boards {
		n += b.ReportsEmitted()
	}
	return n
}

// ReportBandwidthBits returns the total §VI-C report traffic across boards.
func (f *Fleet) ReportBandwidthBits() int {
	n := 0
	for _, b := range f.boards {
		n += b.ReportBandwidthBits()
	}
	return n
}
