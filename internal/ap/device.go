// Package ap models the Micron Automata Processor as a device: the resource
// hierarchy of paper §II-B (blocks of STEs, counters and boolean elements,
// grouped into half-cores, chips and ranks), a compiler/placer that maps
// automata networks onto those resources and emits apadmin-style utilization
// reports, and a board runtime that executes configurations on the
// cycle-accurate simulator while accounting for reconfiguration and
// streaming time.
package ap

import (
	"fmt"
	"time"
)

// Architecture constants from paper §II-B.
const (
	STEsPerBlock      = 256
	CountersPerBlock  = 4
	BooleansPerBlock  = 12
	ReportingPerBlock = 32
	BlocksPerHalfCore = 96
	// STEsPerHalfCore is the maximum NFA size: "the maximum size automata
	// that can be implemented is limited to 24,576 states".
	STEsPerHalfCore  = STEsPerBlock * BlocksPerHalfCore // 24576
	HalfCoresPerChip = 2
	ChipsPerRank     = 8
	RanksPerBoard    = 4
)

// DeviceConfig describes one AP board variant. The two generations differ
// only in partial-reconfiguration latency (§III-C): Gen 1 needs 45 ms per
// reconfiguration; Gen 2 is projected two orders of magnitude faster.
type DeviceConfig struct {
	Name string
	// Ranks populated on the board (a full board has 4).
	Ranks int
	// ClockHz is the symbol-stream clock: 133 MHz, i.e. 7.5 ns per symbol.
	ClockHz float64
	// ReconfigLatency is the partial-reconfiguration time per board image.
	ReconfigLatency time.Duration
	// PCIeGbps is the host interconnect bandwidth (PCIe Gen3 x8, §VI-C).
	PCIeGbps float64
	// MaxFanIn is the routing-matrix fan-in the placer accepts per element
	// before demanding a reduction tree (§III-A "limit the maximum state fan
	// in and improve routability").
	MaxFanIn int
	// MaxFanOut is the fan-out budget per element used by the routing
	// pressure heuristic (§VI-A).
	MaxFanOut int
	// CompilerAreaFactor inflates each NFA's STE footprint before block
	// rounding, modeling the routing-driven spreading the real AP compiler
	// exhibits but a functional placer cannot see. Zero or one means tight
	// packing; PaperAreaFactor reproduces the §V-A apadmin reports.
	CompilerAreaFactor float64
}

// PaperAreaFactor is the area inflation calibrated against the paper's
// §V-A utilization figures (41.7% / 90.9% / 78.6%): the published reports
// imply roughly 4.7 STE slots of rectangular block area per design STE.
const PaperAreaFactor = 4.7

// Gen1 returns the current-generation board evaluated in the paper.
func Gen1() DeviceConfig {
	return DeviceConfig{
		Name:            "AP Gen 1",
		Ranks:           RanksPerBoard,
		ClockHz:         133e6,
		ReconfigLatency: 45 * time.Millisecond,
		PCIeGbps:        63,
		MaxFanIn:        16,
		MaxFanOut:       16,
	}
}

// Gen2 returns the projected next-generation board: ~100x faster partial
// reconfiguration (§III-C), all else equal.
func Gen2() DeviceConfig {
	cfg := Gen1()
	cfg.Name = "AP Gen 2"
	cfg.ReconfigLatency = 450 * time.Microsecond
	return cfg
}

// HalfCores returns the number of half-cores on the board.
func (c DeviceConfig) HalfCores() int {
	return c.Ranks * ChipsPerRank * HalfCoresPerChip
}

// TotalSTEs returns the STE capacity of the board.
func (c DeviceConfig) TotalSTEs() int {
	return c.HalfCores() * STEsPerHalfCore
}

// TotalBlocks returns the block count of the board.
func (c DeviceConfig) TotalBlocks() int {
	return c.HalfCores() * BlocksPerHalfCore
}

// TotalCounters returns the counter capacity of the board.
func (c DeviceConfig) TotalCounters() int {
	return c.TotalBlocks() * CountersPerBlock
}

// TotalBooleans returns the boolean-element capacity of the board.
func (c DeviceConfig) TotalBooleans() int {
	return c.TotalBlocks() * BooleansPerBlock
}

// TotalReporting returns the reporting-STE capacity of the board.
func (c DeviceConfig) TotalReporting() int {
	return c.TotalBlocks() * ReportingPerBlock
}

// SymbolPeriod returns the wall-clock duration of one symbol cycle.
func (c DeviceConfig) SymbolPeriod() time.Duration {
	return time.Duration(float64(time.Second) / c.ClockHz)
}

// StreamTime returns the modeled wall-clock time to stream n symbols.
func (c DeviceConfig) StreamTime(symbols int) time.Duration {
	return time.Duration(float64(symbols) / c.ClockHz * float64(time.Second))
}

func (c DeviceConfig) String() string {
	return fmt.Sprintf("%s (%d ranks, %.0f MHz, reconfig %v)",
		c.Name, c.Ranks, c.ClockHz/1e6, c.ReconfigLatency)
}
