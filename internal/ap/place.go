package ap

import (
	"fmt"
	"sort"

	"repro/internal/automata"
)

// ComponentUse is the resource demand of one connected component (one NFA).
type ComponentUse struct {
	Elements  []automata.ElementID
	STEs      int
	Counters  int
	Booleans  int
	Reporting int
	// HalfCore is the half-core index the placer assigned, filled by Compile.
	HalfCore int
}

// Blocks returns the rectangular block area the component occupies: the AP
// compiler allocates whole blocks, so the footprint is bounded by the
// scarcest per-block resource.
func (c ComponentUse) Blocks() int {
	b := ceilDiv(c.STEs, STEsPerBlock)
	if v := ceilDiv(c.Counters, CountersPerBlock); v > b {
		b = v
	}
	if v := ceilDiv(c.Booleans, BooleansPerBlock); v > b {
		b = v
	}
	if v := ceilDiv(c.Reporting, ReportingPerBlock); v > b {
		b = v
	}
	return b
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Placement is the result of compiling a network onto a device: the
// per-component assignment plus the utilization figures the paper reports in
// §V-A from apadmin compilation reports.
type Placement struct {
	Device     DeviceConfig
	Components []ComponentUse

	// Totals across the design.
	STEs      int
	Counters  int
	Booleans  int
	Reporting int
	// BlocksUsed is the total rectangular block area.
	BlocksUsed int
	// HalfCoresUsed is the number of half-cores with at least one component.
	HalfCoresUsed int
	// RoutingPressure counts fan-in/fan-out budget violations weighted by
	// excess degree; high pressure predicts the partially-routed compilations
	// the paper observed for vector packing (§VI-A).
	RoutingPressure int
}

// Utilization returns the fraction of the board's rectangular block area the
// design occupies, the §V-A metric (0.417, 0.909, 0.786 for the three paper
// workloads).
func (p *Placement) Utilization() float64 {
	return float64(p.BlocksUsed) / float64(p.Device.TotalBlocks())
}

// Routable reports whether the design fits the routing budget. The heuristic
// deems a design routable when no element exceeds twice the fan-out budget
// and average pressure per used block stays below one excess edge.
func (p *Placement) Routable() bool {
	if p.BlocksUsed == 0 {
		return true
	}
	return float64(p.RoutingPressure)/float64(p.BlocksUsed) < 1.0
}

// Compile maps net onto a device, assigning each connected component (NFA)
// to a half-core with first-fit-decreasing bin packing. It fails if any
// single component exceeds a half-core (NFAs cannot span half-cores, §II-B)
// or if the design does not fit on the board.
func Compile(net *automata.Network, cfg DeviceConfig) (*Placement, error) {
	comps := net.Components()
	p := &Placement{Device: cfg}
	p.Components = make([]ComponentUse, len(comps))
	for i, elems := range comps {
		use := ComponentUse{Elements: elems, HalfCore: -1}
		for _, id := range elems {
			switch net.KindOf(id) {
			case automata.KindSTE:
				use.STEs++
			case automata.KindCounter:
				use.Counters++
			case automata.KindGate:
				use.Booleans++
			}
			if rep, _ := net.IsReporting(id); rep {
				use.Reporting++
			}
			if fi := net.FanIn(id); fi > cfg.MaxFanIn {
				p.RoutingPressure += fi - cfg.MaxFanIn
			}
			if fo := len(net.Edges(id)); fo > cfg.MaxFanOut {
				p.RoutingPressure += fo - cfg.MaxFanOut
			}
		}
		if use.STEs > STEsPerHalfCore {
			return nil, fmt.Errorf("ap: component %d needs %d STEs; an NFA cannot exceed one half-core (%d)",
				i, use.STEs, STEsPerHalfCore)
		}
		if use.Counters > BlocksPerHalfCore*CountersPerBlock {
			return nil, fmt.Errorf("ap: component %d needs %d counters; half-core capacity is %d",
				i, use.Counters, BlocksPerHalfCore*CountersPerBlock)
		}
		p.Components[i] = use
		p.STEs += use.STEs
		p.Counters += use.Counters
		p.Booleans += use.Booleans
		p.Reporting += use.Reporting
	}

	// First-fit-decreasing by block footprint into half-cores.
	areaFactor := cfg.CompilerAreaFactor
	if areaFactor < 1 {
		areaFactor = 1
	}
	footprint := func(ci int) int {
		c := p.Components[ci]
		scaled := c
		scaled.STEs = int(float64(c.STEs) * areaFactor)
		return scaled.Blocks()
	}
	order := make([]int, len(p.Components))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return footprint(order[a]) > footprint(order[b])
	})
	type hcFree struct{ blocks int }
	free := make([]hcFree, cfg.HalfCores())
	for i := range free {
		free[i].blocks = BlocksPerHalfCore
	}
	for _, ci := range order {
		need := footprint(ci)
		placed := false
		for hc := range free {
			if free[hc].blocks >= need {
				free[hc].blocks -= need
				p.Components[ci].HalfCore = hc
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("ap: design does not fit: component of %d blocks has no half-core with space (board %s)",
				need, cfg.Name)
		}
		p.BlocksUsed += need
	}
	used := map[int]bool{}
	for i := range p.Components {
		used[p.Components[i].HalfCore] = true
	}
	p.HalfCoresUsed = len(used)
	return p, nil
}

// Report renders the apadmin-style compilation report.
func (p *Placement) Report() string {
	return fmt.Sprintf(
		"device: %s\ncomponents (NFAs): %d\nSTEs: %d / %d\ncounters: %d / %d\nbooleans: %d / %d\nreporting: %d / %d\nblocks: %d / %d (%.1f%% utilization)\nhalf-cores used: %d / %d\nrouting pressure: %d (routable: %v)\n",
		p.Device, len(p.Components),
		p.STEs, p.Device.TotalSTEs(),
		p.Counters, p.Device.TotalCounters(),
		p.Booleans, p.Device.TotalBooleans(),
		p.Reporting, p.Device.TotalReporting(),
		p.BlocksUsed, p.Device.TotalBlocks(), 100*p.Utilization(),
		p.HalfCoresUsed, p.Device.HalfCores(),
		p.RoutingPressure, p.Routable(),
	)
}
