package ap

import (
	"strings"
	"testing"
	"time"

	"repro/internal/automata"
)

func TestDeviceCapacities(t *testing.T) {
	cfg := Gen1()
	// Paper §II-B: 24,576 STEs per half core, 1,572,864 per device... a
	// device here being the 4-rank board of 64 half-cores.
	if STEsPerHalfCore != 24576 {
		t.Errorf("STEsPerHalfCore = %d, want 24576", STEsPerHalfCore)
	}
	if got := cfg.HalfCores(); got != 64 {
		t.Errorf("HalfCores = %d, want 64", got)
	}
	if got := cfg.TotalSTEs(); got != 1572864 {
		t.Errorf("TotalSTEs = %d, want 1572864", got)
	}
	if got := cfg.TotalCounters(); got != 64*96*4 {
		t.Errorf("TotalCounters = %d", got)
	}
}

func TestSymbolPeriod(t *testing.T) {
	cfg := Gen1()
	// 133 MHz -> 7.5 ns (paper §VI-C "2d x 7.5ns (133 MHz design)").
	got := cfg.SymbolPeriod()
	if got < 7*time.Nanosecond || got > 8*time.Nanosecond {
		t.Errorf("SymbolPeriod = %v, want ~7.5ns", got)
	}
}

func TestGen2ReconfigRatio(t *testing.T) {
	g1, g2 := Gen1(), Gen2()
	ratio := float64(g1.ReconfigLatency) / float64(g2.ReconfigLatency)
	// Paper §III-C: Gen 2 projected ~100x faster.
	if ratio < 90 || ratio > 110 {
		t.Errorf("reconfig ratio = %v, want ~100", ratio)
	}
}

// chainNet builds a simple linear NFA of n STEs with one counter.
func chainNet(n int) *automata.Network {
	net := automata.NewNetwork()
	prev := net.AddSTE(automata.SingleClass(1), automata.WithStart(automata.StartAll))
	for i := 1; i < n; i++ {
		cur := net.AddSTE(automata.AllClass())
		net.Connect(prev, cur)
		prev = cur
	}
	ctr := net.AddCounter(2, automata.CounterPulse)
	net.ConnectCount(prev, ctr)
	rep := net.AddSTE(automata.AllClass(), automata.WithReport(1))
	net.Connect(ctr, rep)
	return net
}

func TestCompileSingleComponent(t *testing.T) {
	net := chainNet(10)
	p, err := Compile(net, Gen1())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Components) != 1 {
		t.Fatalf("components = %d, want 1", len(p.Components))
	}
	if p.STEs != 11 || p.Counters != 1 {
		t.Errorf("STEs=%d counters=%d, want 11/1", p.STEs, p.Counters)
	}
	if p.BlocksUsed != 1 {
		t.Errorf("BlocksUsed = %d, want 1", p.BlocksUsed)
	}
	if !p.Routable() {
		t.Error("small chain should be routable")
	}
}

func TestCompileManyComponents(t *testing.T) {
	// 100 independent NFAs of ~300 STEs: each needs 2 blocks.
	net := automata.NewNetwork()
	for c := 0; c < 100; c++ {
		prev := net.AddSTE(automata.SingleClass(1), automata.WithStart(automata.StartAll))
		for i := 1; i < 300; i++ {
			cur := net.AddSTE(automata.AllClass())
			net.Connect(prev, cur)
			prev = cur
		}
	}
	p, err := Compile(net, Gen1())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Components) != 100 {
		t.Fatalf("components = %d, want 100", len(p.Components))
	}
	if p.BlocksUsed != 200 {
		t.Errorf("BlocksUsed = %d, want 200", p.BlocksUsed)
	}
	if p.Utilization() <= 0 || p.Utilization() > 1 {
		t.Errorf("Utilization = %v", p.Utilization())
	}
}

func TestCompileRejectsOversizedNFA(t *testing.T) {
	net := chainNet(STEsPerHalfCore + 10)
	if _, err := Compile(net, Gen1()); err == nil {
		t.Error("oversized NFA accepted")
	}
}

func TestCompileRejectsOverfullBoard(t *testing.T) {
	// A 1-rank board has 16 half-cores = 1536 blocks. 1600 components of a
	// full block each cannot fit.
	cfg := Gen1()
	cfg.Ranks = 1
	net := automata.NewNetwork()
	for c := 0; c < 1600; c++ {
		prev := net.AddSTE(automata.SingleClass(1), automata.WithStart(automata.StartAll))
		for i := 1; i < 256; i++ {
			cur := net.AddSTE(automata.AllClass())
			net.Connect(prev, cur)
			prev = cur
		}
	}
	if _, err := Compile(net, cfg); err == nil {
		t.Error("overfull design accepted")
	}
}

func TestRoutingPressure(t *testing.T) {
	// A hub state with fan-out far beyond the budget must raise pressure.
	net := automata.NewNetwork()
	hub := net.AddSTE(automata.SingleClass(1), automata.WithStart(automata.StartAll))
	for i := 0; i < 100; i++ {
		s := net.AddSTE(automata.AllClass())
		net.Connect(hub, s)
	}
	p, err := Compile(net, Gen1())
	if err != nil {
		t.Fatal(err)
	}
	if p.RoutingPressure == 0 {
		t.Error("high fan-out produced zero routing pressure")
	}
}

func TestComponentBlocksBoundedByScarcestResource(t *testing.T) {
	// 5 counters but only 2 STEs: counters (4/block) dominate -> 2 blocks.
	use := ComponentUse{STEs: 2, Counters: 5}
	if got := use.Blocks(); got != 2 {
		t.Errorf("Blocks = %d, want 2", got)
	}
	use = ComponentUse{STEs: 300}
	if got := use.Blocks(); got != 2 {
		t.Errorf("Blocks = %d, want 2", got)
	}
	use = ComponentUse{Reporting: 33}
	if got := use.Blocks(); got != 2 {
		t.Errorf("Blocks = %d, want 2", got)
	}
}

func TestBoardStreamAndTiming(t *testing.T) {
	b := NewBoard(Gen1())
	net := chainNet(4)
	if err := b.Configure(net); err != nil {
		t.Fatal(err)
	}
	stream := make([]byte, 1330) // 1330 symbols at 133 MHz = 10 us
	for i := range stream {
		stream[i] = 1
	}
	b.Stream(stream)
	got := b.ModeledTime()
	want := 10 * time.Microsecond
	if got < want*9/10 || got > want*11/10 {
		t.Errorf("ModeledTime = %v, want ~%v", got, want)
	}
	// Second configuration charges one reconfiguration.
	if err := b.Configure(chainNet(4)); err != nil {
		t.Fatal(err)
	}
	got = b.ModeledTime()
	if got < Gen1().ReconfigLatency {
		t.Errorf("ModeledTime after reconfig = %v, want >= %v", got, Gen1().ReconfigLatency)
	}
	if b.Reconfigs() != 2 {
		t.Errorf("Reconfigs = %d, want 2", b.Reconfigs())
	}
}

func TestBoardStreamUnconfiguredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Stream on unconfigured board did not panic")
		}
	}()
	NewBoard(Gen1()).Stream([]byte{1})
}

func TestBoardFunctionalExecution(t *testing.T) {
	b := NewBoard(Gen2())
	net := automata.NewNetwork()
	a := net.AddSTE(automata.SingleClass('a'), automata.WithStart(automata.StartAll))
	bb := net.AddSTE(automata.SingleClass('b'), automata.WithReport(3))
	net.Connect(a, bb)
	if err := b.Configure(net); err != nil {
		t.Fatal(err)
	}
	reports := b.Stream([]byte("abab"))
	if len(reports) != 2 {
		t.Fatalf("reports = %v, want 2", reports)
	}
	if b.ReportsEmitted() != 2 || b.SymbolsStreamed() != 4 {
		t.Errorf("counters: reports=%d symbols=%d", b.ReportsEmitted(), b.SymbolsStreamed())
	}
}

func TestPlacementReport(t *testing.T) {
	p, err := Compile(chainNet(10), Gen1())
	if err != nil {
		t.Fatal(err)
	}
	r := p.Report()
	for _, want := range []string{"STEs", "counters", "blocks", "utilization", "routable"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}
