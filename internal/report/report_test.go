package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.Row("alpha", 1.5)
	tb.Row("b", 123456.0)
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.50") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{48.10, "48.10"},
		{1.97, "1.97"},
		{0.039, "0.039"},
		{110445, "110445"},
		{593.89, "593.9"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestComparisonRatio(t *testing.T) {
	c := Comparison{Paper: 2, Reproduced: 4}
	if r := c.Ratio(); r != 2 {
		t.Errorf("Ratio = %v, want 2", r)
	}
	zero := Comparison{Paper: 0, Reproduced: 1}
	if !math.IsNaN(zero.Ratio()) {
		t.Error("Ratio with zero paper value should be NaN")
	}
}

func TestWithinFactor(t *testing.T) {
	c := Comparison{Paper: 10, Reproduced: 18}
	if !c.WithinFactor(2) {
		t.Error("1.8x should be within factor 2")
	}
	if c.WithinFactor(1.5) {
		t.Error("1.8x should not be within factor 1.5")
	}
	inv := Comparison{Paper: 10, Reproduced: 6}
	if !inv.WithinFactor(2) {
		t.Error("0.6x should be within factor 2")
	}
}

func TestComparisonSet(t *testing.T) {
	var cs ComparisonSet
	cs.Name = "Table X"
	cs.Add("a", 1, 1.2, "ms")
	cs.Add("b", 10, 5, "ms")
	if dev := cs.MaxDeviation(); math.Abs(dev-2) > 1e-9 {
		t.Errorf("MaxDeviation = %v, want 2", dev)
	}
	var sb strings.Builder
	cs.Render(&sb)
	if !strings.Contains(sb.String(), "1.20x") {
		t.Errorf("render missing ratio:\n%s", sb.String())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "label", "num")
	tb.Row("x", "9")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	last := lines[len(lines)-1]
	// numeric column is right-aligned under a 3-char header "num"
	if !strings.HasSuffix(last, "  9") {
		t.Errorf("numeric column not right-aligned: %q", last)
	}
}
