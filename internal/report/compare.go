package report

import (
	"fmt"
	"io"
	"math"
)

// Comparison records one paper-reported value next to our reproduction, so
// README.md and the apbench output carry an explicit fidelity audit.
type Comparison struct {
	Label      string
	Paper      float64
	Reproduced float64
	Unit       string
}

// Ratio returns Reproduced/Paper, or NaN if the paper value is zero.
func (c Comparison) Ratio() float64 {
	if c.Paper == 0 {
		return math.NaN()
	}
	return c.Reproduced / c.Paper
}

// WithinFactor reports whether the reproduction is within a multiplicative
// factor f (>= 1) of the paper value in either direction.
func (c Comparison) WithinFactor(f float64) bool {
	r := c.Ratio()
	if math.IsNaN(r) || r <= 0 {
		return c.Paper == c.Reproduced
	}
	return r <= f && r >= 1/f
}

// ComparisonSet is a named collection of comparisons for one experiment.
type ComparisonSet struct {
	Name  string
	Items []Comparison
}

// Add appends a comparison.
func (cs *ComparisonSet) Add(label string, paper, reproduced float64, unit string) {
	cs.Items = append(cs.Items, Comparison{Label: label, Paper: paper, Reproduced: reproduced, Unit: unit})
}

// Render prints the set as an aligned table with ratios.
func (cs *ComparisonSet) Render(w io.Writer) {
	t := NewTable(cs.Name, "metric", "paper", "reproduced", "ratio")
	t.AlignLeft(0)
	for _, c := range cs.Items {
		ratio := "n/a"
		if r := c.Ratio(); !math.IsNaN(r) {
			ratio = fmt.Sprintf("%.2fx", r)
		}
		unit := c.Unit
		if unit != "" {
			unit = " " + unit
		}
		t.Row(c.Label, FormatFloat(c.Paper)+unit, FormatFloat(c.Reproduced)+unit, ratio)
	}
	t.Render(w)
}

// MaxDeviation returns the largest |log-ratio| factor across items, a single
// fidelity score for the whole set (1.0 = exact).
func (cs *ComparisonSet) MaxDeviation() float64 {
	worst := 1.0
	for _, c := range cs.Items {
		r := c.Ratio()
		if math.IsNaN(r) || r <= 0 {
			continue
		}
		if r < 1 {
			r = 1 / r
		}
		if r > worst {
			worst = r
		}
	}
	return worst
}
