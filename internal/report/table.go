// Package report renders the aligned text tables and paper-vs-reproduced
// comparisons the benchmark harness prints. Keeping formatting in one place
// makes every table in cmd/apbench look like the tables in the paper.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	aligned []bool // true = right-align (numeric) column
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	t := &Table{Title: title, header: header, aligned: make([]bool, len(header))}
	for i := range t.aligned {
		t.aligned[i] = i > 0 // first column is labels by convention
	}
	return t
}

// AlignLeft marks column i as left-aligned.
func (t *Table) AlignLeft(i int) *Table {
	t.aligned[i] = false
	return t
}

// Row appends a row; cells are stringified with %v, floats compactly.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

func formatCell(c interface{}) string {
	switch v := c.(type) {
	case string:
		return v
	case float64:
		return FormatFloat(v)
	case float32:
		return FormatFloat(float64(v))
	default:
		return fmt.Sprintf("%v", c)
	}
}

// FormatFloat renders a float with precision adapted to its magnitude, the
// way the paper's tables mix "0.039" and "48.10".
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 10000:
		return strconv.FormatFloat(v, 'f', 0, 64)
	case av >= 100:
		return strconv.FormatFloat(v, 'f', 1, 64)
	case av >= 1:
		return strconv.FormatFloat(v, 'f', 2, 64)
	case av >= 0.01:
		return strconv.FormatFloat(v, 'f', 3, 64)
	default:
		return strconv.FormatFloat(v, 'g', 3, 64)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(t.aligned) && t.aligned[i] {
				parts[i] = pad(cell, widths[i], true)
			} else {
				parts[i] = pad(cell, widths[i], false)
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

func pad(s string, w int, right bool) string {
	if len(s) >= w {
		return s
	}
	fill := strings.Repeat(" ", w-len(s))
	if right {
		return fill + s
	}
	return s + fill
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
