package workload

import (
	"testing"

	"repro/internal/stats"
)

func TestTable2Parameters(t *testing.T) {
	// Table II exactly.
	cases := []struct {
		p   Params
		dim int
		k   int
	}{
		{WordEmbed(), 64, 2},
		{SIFT(), 128, 4},
		{TagSpace(), 256, 16},
	}
	for _, c := range cases {
		if c.p.Dim != c.dim || c.p.K != c.k {
			t.Errorf("%s: dim/k = %d/%d, want %d/%d", c.p.Name, c.p.Dim, c.p.K, c.dim, c.k)
		}
		if c.p.Queries != 4096 {
			t.Errorf("%s: queries = %d, want 4096 (§IV-A)", c.p.Name, c.p.Queries)
		}
		if c.p.LargeN != 1<<20 {
			t.Errorf("%s: largeN = %d, want 2^20", c.p.Name, c.p.LargeN)
		}
	}
	// §V-B small datasets: 1024, 1024, 512.
	if WordEmbed().SmallN != 1024 || SIFT().SmallN != 1024 || TagSpace().SmallN != 512 {
		t.Error("small dataset sizes do not match §V-B")
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("SIFT")
	if err != nil || p.Dim != 128 {
		t.Errorf("ByName(SIFT) = %+v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestClusteredStructure(t *testing.T) {
	rng := stats.NewRNG(9)
	const centers, per, dim, radius = 4, 25, 64, 3
	ds := Clustered(rng, centers, per, dim, radius)
	if ds.Len() != centers*per {
		t.Fatalf("Len = %d", ds.Len())
	}
	// Same-cluster distances bounded by 2*radius; cross-cluster typically
	// near dim/2.
	intra := ds.At(0).Hamming(ds.At(1))
	if intra > 2*radius {
		t.Errorf("intra-cluster distance %d > %d", intra, 2*radius)
	}
	inter := ds.At(0).Hamming(ds.At(per))
	if inter <= 2*radius {
		t.Errorf("inter-cluster distance %d suspiciously small", inter)
	}
}

func TestPlantedQueriesNearDataset(t *testing.T) {
	rng := stats.NewRNG(10)
	ds := Uniform(rng, 50, 48)
	qs := PlantedQueries(rng, ds, 20, 2)
	for i, q := range qs {
		best := ds.Dim()
		for j := 0; j < ds.Len(); j++ {
			if d := ds.Hamming(j, q); d < best {
				best = d
			}
		}
		if best > 2 {
			t.Errorf("query %d: nearest neighbor at distance %d, want <= 2", i, best)
		}
	}
}

func TestGaussianFeaturesShape(t *testing.T) {
	rng := stats.NewRNG(11)
	data, labels := GaussianFeatures(rng, 3, 10, 16, 1.0)
	if len(data) != 30 || len(labels) != 30 {
		t.Fatalf("sizes %d/%d", len(data), len(labels))
	}
	for _, v := range data {
		if len(v) != 16 {
			t.Fatalf("feature dim %d", len(v))
		}
	}
	if labels[0] != 0 || labels[29] != 2 {
		t.Errorf("labels %v...", labels[:3])
	}
}

func TestQueriesCount(t *testing.T) {
	qs := Queries(stats.NewRNG(2), 7, 32)
	if len(qs) != 7 || qs[0].Dim() != 32 {
		t.Errorf("Queries shape wrong")
	}
}
