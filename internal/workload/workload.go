// Package workload defines the paper's kNN workloads (Table II) and the
// synthetic data generators that stand in for the proprietary feature
// datasets: word embeddings (d=64), SIFT descriptors (d=128) and TagSpace
// semantic embeddings (d=256), all ITQ-binarized offline, with 4096 queries.
package workload

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/stats"
)

// Params is one evaluation workload.
type Params struct {
	Name string
	// Dim is the binary code length (Table II "Dimensionality").
	Dim int
	// K is the number of neighbors (Table II "Neighbors").
	K int
	// Queries is the batch size (§IV-A: "4096 queries").
	Queries int
	// SmallN is the small-dataset size of Table III (one board load).
	SmallN int
	// LargeN is the large-dataset size of Table IV (2^20).
	LargeN int
}

// WordEmbed is kNN-WordEmbed: word-embedding retrieval, d=64, k=2.
func WordEmbed() Params {
	return Params{Name: "WordEmbed", Dim: 64, K: 2, Queries: 4096, SmallN: 1024, LargeN: 1 << 20}
}

// SIFT is kNN-SIFT: image feature matching, d=128, k=4.
func SIFT() Params {
	return Params{Name: "SIFT", Dim: 128, K: 4, Queries: 4096, SmallN: 1024, LargeN: 1 << 20}
}

// TagSpace is kNN-TagSpace: semantic hashtag embeddings, d=256, k=16.
func TagSpace() Params {
	return Params{Name: "TagSpace", Dim: 256, K: 16, Queries: 4096, SmallN: 512, LargeN: 1 << 20}
}

// All returns the three Table II workloads in paper order.
func All() []Params {
	return []Params{WordEmbed(), SIFT(), TagSpace()}
}

// ByName looks a workload up by its Table II name.
func ByName(name string) (Params, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("workload: unknown workload %q (want WordEmbed, SIFT or TagSpace)", name)
}

// Uniform draws a dataset of independent uniform bits — the randomized-run
// methodology of Table VI.
func Uniform(rng *stats.RNG, n, dim int) *bitvec.Dataset {
	return bitvec.RandomDataset(rng, n, dim)
}

// Queries draws q uniform query vectors.
func Queries(rng *stats.RNG, q, dim int) []bitvec.Vector {
	out := make([]bitvec.Vector, q)
	for i := range out {
		out[i] = bitvec.Random(rng, dim)
	}
	return out
}

// Clustered plants centers-many clusters of perCenter vectors within the
// given Hamming radius — binary codes with the neighborhood structure real
// ITQ-quantized features exhibit. Vector i belongs to cluster i/perCenter.
func Clustered(rng *stats.RNG, centers, perCenter, dim, radius int) *bitvec.Dataset {
	ds := bitvec.NewDataset(dim)
	for c := 0; c < centers; c++ {
		center := bitvec.Random(rng, dim)
		for i := 0; i < perCenter; i++ {
			v := center.Clone()
			for f := 0; f < radius; f++ {
				v.Flip(rng.Intn(dim))
			}
			ds.Append(v)
		}
	}
	return ds
}

// PlantedQueries derives queries by perturbing random dataset members within
// flips bit flips, so each query has at least one known near neighbor.
func PlantedQueries(rng *stats.RNG, ds *bitvec.Dataset, q, flips int) []bitvec.Vector {
	out := make([]bitvec.Vector, q)
	for i := range out {
		v := ds.At(rng.Intn(ds.Len())).Clone()
		for f := 0; f < flips; f++ {
			v.Flip(rng.Intn(ds.Dim()))
		}
		out[i] = v
	}
	return out
}

// GaussianFeatures generates real-valued feature vectors from a mixture of
// Gaussians — the input side of the ITQ quantization pipeline (§II-A).
// Returned labels identify the mixture component of each vector.
func GaussianFeatures(rng *stats.RNG, clusters, perCluster, dim int, spread float64) (data [][]float64, labels []int) {
	for c := 0; c < clusters; c++ {
		center := make([]float64, dim)
		for j := range center {
			center[j] = rng.NormFloat64() * 4
		}
		for i := 0; i < perCluster; i++ {
			v := make([]float64, dim)
			for j := range v {
				v[j] = center[j] + rng.NormFloat64()*spread
			}
			data = append(data, v)
			labels = append(labels, c)
		}
	}
	return data, labels
}
