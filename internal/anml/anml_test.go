package anml

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/automata"
	"repro/internal/stats"
)

// buildMixedNetwork exercises every element kind, port, mode and option.
func buildMixedNetwork() *automata.Network {
	net := automata.NewNetwork()
	guard := net.AddSTE(automata.SingleClass(0xFE),
		automata.WithStart(automata.StartAll), automata.WithName("guard"))
	match := net.AddSTE(automata.ClassOf(0x00, 0x01), automata.WithName("match"))
	rst := net.AddSTE(automata.SingleClass(0xFF), automata.WithStart(automata.StartAll))
	ctr := net.AddCounter(4, automata.CounterPulse, automata.WithName("ihd"))
	latch := net.AddCounter(2, automata.CounterLatch)
	gate := net.AddGate(automata.GateAND)
	rep := net.AddSTE(automata.AllClass(), automata.WithReport(7), automata.WithName("report"))
	net.Connect(guard, match)
	net.ConnectCount(match, ctr)
	net.ConnectCount(match, latch)
	net.ConnectReset(rst, ctr)
	net.ConnectReset(rst, latch)
	net.Connect(ctr, gate)
	net.Connect(latch, gate)
	net.Connect(gate, rep)
	net.MustValidate()
	return net
}

// netsEquivalent compares two networks structurally.
func netsEquivalent(t *testing.T, a, b *automata.Network) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("element counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		id := automata.ElementID(i)
		if a.KindOf(id) != b.KindOf(id) {
			t.Fatalf("element %d kind %v vs %v", i, a.KindOf(id), b.KindOf(id))
		}
		switch a.KindOf(id) {
		case automata.KindSTE:
			if !a.ClassOf(id).Equal(b.ClassOf(id)) {
				t.Errorf("element %d class %v vs %v", i, a.ClassOf(id), b.ClassOf(id))
			}
			if a.StartOf(id) != b.StartOf(id) {
				t.Errorf("element %d start %v vs %v", i, a.StartOf(id), b.StartOf(id))
			}
		case automata.KindCounter:
			if a.ThresholdOf(id) != b.ThresholdOf(id) || a.ModeOf(id) != b.ModeOf(id) {
				t.Errorf("element %d counter mismatch", i)
			}
		case automata.KindGate:
			if a.OpOf(id) != b.OpOf(id) {
				t.Errorf("element %d op mismatch", i)
			}
		}
		ar, aid := a.IsReporting(id)
		br, bid := b.IsReporting(id)
		if ar != br || (ar && aid != bid) {
			t.Errorf("element %d reporting %v/%d vs %v/%d", i, ar, aid, br, bid)
		}
		ae, be := a.Edges(id), b.Edges(id)
		if len(ae) != len(be) {
			t.Fatalf("element %d edge count %d vs %d", i, len(ae), len(be))
		}
		for j := range ae {
			if ae[j] != be[j] {
				t.Errorf("element %d edge %d: %+v vs %+v", i, j, ae[j], be[j])
			}
		}
		if a.NameOf(id) != b.NameOf(id) {
			t.Errorf("element %d name %q vs %q", i, a.NameOf(id), b.NameOf(id))
		}
	}
}

func TestRoundTripMixedNetwork(t *testing.T) {
	net := buildMixedNetwork()
	var buf bytes.Buffer
	if err := Encode(&buf, net, "mixed"); err != nil {
		t.Fatal(err)
	}
	back, name, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v\nxml:\n%s", err, buf.String())
	}
	if name != "mixed" {
		t.Errorf("name = %q, want mixed", name)
	}
	netsEquivalent(t, net, back)
}

func TestRoundTripPreservesBehavior(t *testing.T) {
	net := buildMixedNetwork()
	var buf bytes.Buffer
	if err := Encode(&buf, net, "x"); err != nil {
		t.Fatal(err)
	}
	back, _, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(31)
	stream := make([]byte, 200)
	alphabet := []byte{0x00, 0x01, 0xFE, 0xFF}
	for i := range stream {
		stream[i] = alphabet[rng.Intn(len(alphabet))]
	}
	r1 := automata.MustSimulator(net).Run(stream)
	r2 := automata.MustSimulator(back).Run(stream)
	if len(r1) != len(r2) {
		t.Fatalf("report counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Cycle != r2[i].Cycle || r1[i].ReportID != r2[i].ReportID {
			t.Errorf("report %d: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

func TestRoundTripRandomNetworks(t *testing.T) {
	// Random DAG-ish networks over STEs and counters round trip structurally.
	rng := stats.NewRNG(77)
	for trial := 0; trial < 20; trial++ {
		net := automata.NewNetwork()
		n := rng.Intn(20) + 2
		var stes []automata.ElementID
		for i := 0; i < n; i++ {
			var class automata.SymbolClass
			for b := 0; b < 256; b++ {
				if rng.Float64() < 0.3 {
					class.Add(byte(b))
				}
			}
			if class.IsEmpty() {
				class = automata.AllClass()
			}
			var opts []automata.STEOpt
			if rng.Float64() < 0.3 {
				opts = append(opts, automata.WithStart(automata.StartAll))
			}
			if rng.Float64() < 0.2 {
				opts = append(opts, automata.WithReport(int32(rng.Intn(100))))
			}
			stes = append(stes, net.AddSTE(class, opts...))
		}
		for i := 1; i < n; i++ {
			net.Connect(stes[rng.Intn(i)], stes[i])
		}
		if rng.Bool() {
			ctr := net.AddCounter(rng.Intn(9)+1, automata.CounterPulse)
			net.ConnectCount(stes[0], ctr)
			net.Connect(ctr, stes[n-1])
		}
		var buf bytes.Buffer
		if err := Encode(&buf, net, "rand"); err != nil {
			t.Fatal(err)
		}
		back, _, err := Decode(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		netsEquivalent(t, net, back)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		xml  string
	}{
		{"bad xml", "<automata-network"},
		{"bad class", `<automata-network><state-transition-element id="e0" symbol-set="[unclosed"/></automata-network>`},
		{"bad start", `<automata-network><state-transition-element id="e0" symbol-set="*" start="bogus"/></automata-network>`},
		{"unknown target", `<automata-network><state-transition-element id="e0" symbol-set="*"><activate-on-match element="e9"/></state-transition-element></automata-network>`},
		{"bad mode", `<automata-network><counter id="e0" target="3" at-target="bogus"/></automata-network>`},
		{"bad target", `<automata-network><counter id="e0" target="0" at-target="pulse"/></automata-network>`},
		{"bad op", `<automata-network><boolean id="e0" function="bogus"/></automata-network>`},
		{"dup id", `<automata-network><state-transition-element id="e0" symbol-set="*"/><state-transition-element id="e0" symbol-set="*"/></automata-network>`},
	}
	for _, c := range cases {
		if _, _, err := Decode(strings.NewReader(c.xml)); err == nil {
			t.Errorf("%s: decode succeeded, want error", c.name)
		}
	}
}

func TestEncodeContainsExpectedMarkup(t *testing.T) {
	net := buildMixedNetwork()
	var buf bytes.Buffer
	if err := Encode(&buf, net, "knn"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"automata-network", "state-transition-element", "counter",
		"boolean", "reportcode", ":count", ":reset", `at-target="pulse"`,
		`at-target="latch"`, `function="and"`, `start="all-input"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("encoded ANML missing %q:\n%s", want, out)
		}
	}
}
