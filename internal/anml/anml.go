// Package anml encodes automata networks to and from an ANML-style XML
// representation, the Automata Network Markup Language the AP toolchain
// consumes (paper §II-B: "applications ... must specify an ANML file").
//
// The dialect follows Micron's structure: one XML element per fabric
// element, activation edges as child activate-on-* elements, and counter
// ports addressed with ":count" / ":reset" suffixes on the target ID.
package anml

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/automata"
	"repro/internal/regexc"
)

// orderedNetwork preserves document order of heterogeneous children during
// decoding, so a decoded network assigns the same element IDs the encoder
// used and round trips are exact.
type orderedNetwork struct {
	Name     string
	Children []interface{} // *xmlSTE | *xmlCounter | *xmlBoolean
}

func (o *orderedNetwork) UnmarshalXML(d *xml.Decoder, start xml.StartElement) error {
	for _, a := range start.Attr {
		if a.Name.Local == "name" {
			o.Name = a.Value
		}
	}
	for {
		tok, err := d.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "state-transition-element":
				var s xmlSTE
				if err := d.DecodeElement(&s, &t); err != nil {
					return err
				}
				o.Children = append(o.Children, &s)
			case "counter":
				var c xmlCounter
				if err := d.DecodeElement(&c, &t); err != nil {
					return err
				}
				o.Children = append(o.Children, &c)
			case "boolean":
				var b xmlBoolean
				if err := d.DecodeElement(&b, &t); err != nil {
					return err
				}
				o.Children = append(o.Children, &b)
			default:
				if err := d.Skip(); err != nil {
					return err
				}
			}
		case xml.EndElement:
			return nil
		}
	}
}

type xmlSTE struct {
	XMLName   xml.Name      `xml:"state-transition-element"`
	ID        string        `xml:"id,attr"`
	SymbolSet string        `xml:"symbol-set,attr"`
	Start     string        `xml:"start,attr,omitempty"`
	Name      string        `xml:"name,attr,omitempty"`
	Report    *xmlReport    `xml:"report-on-match"`
	Activate  []xmlActivate `xml:"activate-on-match"`
}

type xmlCounter struct {
	XMLName  xml.Name   `xml:"counter"`
	ID       string     `xml:"id,attr"`
	Target   int        `xml:"target,attr"`
	AtTarget string     `xml:"at-target,attr"`
	Name     string     `xml:"name,attr,omitempty"`
	Report   *xmlReport `xml:"report-on-target"`
	// TargetFrom names the counter whose live count serves as this counter's
	// threshold — the §VII-B dynamic-threshold extension. Empty for standard
	// counters.
	TargetFrom string        `xml:"target-from,attr,omitempty"`
	Activate   []xmlActivate `xml:"activate-on-target"`
}

type xmlBoolean struct {
	XMLName  xml.Name      `xml:"boolean"`
	ID       string        `xml:"id,attr"`
	Function string        `xml:"function,attr"`
	Name     string        `xml:"name,attr,omitempty"`
	Report   *xmlReport    `xml:"report-on-high"`
	Activate []xmlActivate `xml:"activate-on-high"`
}

type xmlReport struct {
	Code int32 `xml:"reportcode,attr"`
}

type xmlActivate struct {
	Element string `xml:"element,attr"`
}

// Encode writes net as ANML XML to w. Element IDs are "e<N>" and children
// appear in network order, so encoding is deterministic and decoding
// reconstructs identical element IDs.
func Encode(w io.Writer, net *automata.Network, name string) error {
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	root := xml.StartElement{Name: xml.Name{Local: "automata-network"}}
	if name != "" {
		root.Attr = append(root.Attr, xml.Attr{Name: xml.Name{Local: "name"}, Value: name})
	}
	if err := enc.EncodeToken(root); err != nil {
		return fmt.Errorf("anml: encode: %w", err)
	}
	for i := 0; i < net.Len(); i++ {
		id := automata.ElementID(i)
		reporting, code := net.IsReporting(id)
		var rep *xmlReport
		if reporting {
			rep = &xmlReport{Code: code}
		}
		acts := activationsOf(net, id)
		var err error
		switch net.KindOf(id) {
		case automata.KindSTE:
			err = enc.Encode(xmlSTE{
				ID:        elemID(id),
				SymbolSet: regexc.FormatClass(net.ClassOf(id)),
				Start:     startString(net.StartOf(id)),
				Name:      net.NameOf(id),
				Report:    rep,
				Activate:  acts,
			})
		case automata.KindCounter:
			c := xmlCounter{
				ID:       elemID(id),
				Target:   net.ThresholdOf(id),
				AtTarget: net.ModeOf(id).String(),
				Name:     net.NameOf(id),
				Report:   rep,
				Activate: acts,
			}
			if src, ok := net.DynamicSrcOf(id); ok {
				c.TargetFrom = elemID(src)
			}
			err = enc.Encode(c)
		case automata.KindGate:
			err = enc.Encode(xmlBoolean{
				ID:       elemID(id),
				Function: net.OpOf(id).String(),
				Name:     net.NameOf(id),
				Report:   rep,
				Activate: acts,
			})
		}
		if err != nil {
			return fmt.Errorf("anml: encode element %d: %w", i, err)
		}
	}
	if err := enc.EncodeToken(root.End()); err != nil {
		return fmt.Errorf("anml: encode: %w", err)
	}
	return enc.Flush()
}

func activationsOf(net *automata.Network, id automata.ElementID) []xmlActivate {
	var acts []xmlActivate
	for _, e := range net.Edges(id) {
		target := elemID(e.To)
		switch e.Port {
		case automata.PortCount:
			target += ":count"
		case automata.PortReset:
			target += ":reset"
		}
		acts = append(acts, xmlActivate{Element: target})
	}
	return acts
}

func elemID(id automata.ElementID) string { return fmt.Sprintf("e%d", id) }

func startString(s automata.StartKind) string {
	switch s {
	case automata.StartOfData:
		return "start-of-data"
	case automata.StartAll:
		return "all-input"
	default:
		return ""
	}
}

// Decode parses ANML XML from r and reconstructs the network and its name.
// Elements are created in document order, so a network encoded by Encode
// decodes with identical element IDs.
func Decode(r io.Reader) (*automata.Network, string, error) {
	var doc orderedNetwork
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, "", fmt.Errorf("anml: decode: %w", err)
	}
	net := automata.NewNetwork()
	ids := map[string]automata.ElementID{}

	addOpts := func(name string, rep *xmlReport) []automata.STEOpt {
		var opts []automata.STEOpt
		if name != "" {
			opts = append(opts, automata.WithName(name))
		}
		if rep != nil {
			opts = append(opts, automata.WithReport(rep.Code))
		}
		return opts
	}
	register := func(rawID string, id automata.ElementID) error {
		if _, dup := ids[rawID]; dup {
			return fmt.Errorf("anml: duplicate element id %q", rawID)
		}
		ids[rawID] = id
		return nil
	}

	// Pass 1: create elements in document order.
	for _, child := range doc.Children {
		switch e := child.(type) {
		case *xmlSTE:
			class, err := regexc.ParseClass(e.SymbolSet)
			if err != nil {
				return nil, "", fmt.Errorf("anml: STE %q: %w", e.ID, err)
			}
			opts := addOpts(e.Name, e.Report)
			switch e.Start {
			case "":
			case "start-of-data":
				opts = append(opts, automata.WithStart(automata.StartOfData))
			case "all-input":
				opts = append(opts, automata.WithStart(automata.StartAll))
			default:
				return nil, "", fmt.Errorf("anml: STE %q: unknown start kind %q", e.ID, e.Start)
			}
			if err := register(e.ID, net.AddSTE(class, opts...)); err != nil {
				return nil, "", err
			}
		case *xmlCounter:
			if e.TargetFrom != "" {
				// Dynamic-threshold counters reference an earlier counter;
				// Encode always emits sources before consumers is NOT
				// guaranteed, so resolve lazily after pass 1 would be
				// cleaner — but the generators only ever wire backwards
				// references, so a forward reference is rejected here.
				src, ok := ids[e.TargetFrom]
				if !ok {
					return nil, "", fmt.Errorf("anml: counter %q: unknown target-from %q", e.ID, e.TargetFrom)
				}
				if err := register(e.ID, net.AddDynamicCounter(src, addOpts(e.Name, e.Report)...)); err != nil {
					return nil, "", err
				}
				continue
			}
			mode, err := parseMode(e.AtTarget)
			if err != nil {
				return nil, "", fmt.Errorf("anml: counter %q: %w", e.ID, err)
			}
			if e.Target <= 0 {
				return nil, "", fmt.Errorf("anml: counter %q: non-positive target %d", e.ID, e.Target)
			}
			if err := register(e.ID, net.AddCounter(e.Target, mode, addOpts(e.Name, e.Report)...)); err != nil {
				return nil, "", err
			}
		case *xmlBoolean:
			op, err := parseOp(e.Function)
			if err != nil {
				return nil, "", fmt.Errorf("anml: boolean %q: %w", e.ID, err)
			}
			if err := register(e.ID, net.AddGate(op, addOpts(e.Name, e.Report)...)); err != nil {
				return nil, "", err
			}
		}
	}

	// Pass 2: edges.
	connect := func(fromID string, acts []xmlActivate) error {
		from := ids[fromID]
		for _, a := range acts {
			target := a.Element
			port := automata.PortDefault
			switch {
			case strings.HasSuffix(target, ":count"):
				port = automata.PortCount
				target = strings.TrimSuffix(target, ":count")
			case strings.HasSuffix(target, ":reset"):
				port = automata.PortReset
				target = strings.TrimSuffix(target, ":reset")
			}
			to, ok := ids[target]
			if !ok {
				return fmt.Errorf("anml: activation from %q to unknown element %q", fromID, a.Element)
			}
			net.ConnectPort(from, to, port)
		}
		return nil
	}
	for _, child := range doc.Children {
		var err error
		switch e := child.(type) {
		case *xmlSTE:
			err = connect(e.ID, e.Activate)
		case *xmlCounter:
			err = connect(e.ID, e.Activate)
		case *xmlBoolean:
			err = connect(e.ID, e.Activate)
		}
		if err != nil {
			return nil, "", err
		}
	}
	if err := net.Validate(); err != nil {
		return nil, "", fmt.Errorf("anml: decoded network invalid: %w", err)
	}
	return net, doc.Name, nil
}

func parseMode(s string) (automata.CounterMode, error) {
	switch s {
	case "pulse", "":
		return automata.CounterPulse, nil
	case "latch":
		return automata.CounterLatch, nil
	case "roll-over":
		return automata.CounterRollOver, nil
	default:
		return 0, fmt.Errorf("unknown counter mode %q", s)
	}
}

func parseOp(s string) (automata.GateOp, error) {
	switch s {
	case "or":
		return automata.GateOR, nil
	case "and":
		return automata.GateAND, nil
	case "not":
		return automata.GateNOT, nil
	case "nand":
		return automata.GateNAND, nil
	case "nor":
		return automata.GateNOR, nil
	case "xor":
		return automata.GateXOR, nil
	case "xnor":
		return automata.GateXNOR, nil
	default:
		return 0, fmt.Errorf("unknown boolean function %q", s)
	}
}
