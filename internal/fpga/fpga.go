// Package fpga is a cycle-level model of the paper's FPGA baseline (§IV-C):
// an AXI4-Stream fixed-function kNN accelerator for a Xilinx Kintex-7-325T
// consisting of a scratchpad for query vectors, an XOR/POPCOUNT distance
// unit, and a systolic hardware priority queue, processing multiple queries
// in parallel while dataset vectors are streamed through the core once per
// query batch.
//
// The simulator executes the exact computation (results match the CPU
// baseline bit for bit) and counts cycles with the microarchitectural
// parameters below; wall-clock time is cycles over the 185 MHz clock of
// Table I.
package fpga

import (
	"context"
	"fmt"
	"time"

	"repro/internal/aperr"
	"repro/internal/bitvec"
	"repro/internal/knn"
)

// Config describes the accelerator instance.
type Config struct {
	// ClockHz is the synthesized clock (Table I: 185 MHz).
	ClockHz float64
	// StreamBits is the AXI4-Stream data width in bits per cycle (512 for a
	// Kintex-7 class memory interface).
	StreamBits int
	// QueryLanes is the number of queries processed in parallel per pass;
	// each lane owns a scratchpad slot, a distance unit and a priority queue.
	QueryLanes int
	// PipelineDepth is the fill latency of the distance + insert pipeline.
	PipelineDepth int
}

// DefaultConfig returns the Kintex-7 baseline configuration. A 64-bit
// stream reproduces the published runtimes within ~30% across all six
// (workload, dataset-size) cells of Tables III/IV.
func DefaultConfig() Config {
	return Config{
		ClockHz:       185e6,
		StreamBits:    64,
		QueryLanes:    16,
		PipelineDepth: 8,
	}
}

// Accelerator simulates the fixed-function core.
type Accelerator struct {
	cfg Config
}

// New returns an accelerator, validating the configuration.
func New(cfg Config) (*Accelerator, error) {
	if cfg.ClockHz <= 0 || cfg.StreamBits <= 0 || cfg.QueryLanes <= 0 {
		return nil, fmt.Errorf("fpga: invalid config %+v", cfg)
	}
	if cfg.PipelineDepth < 0 {
		return nil, fmt.Errorf("fpga: negative pipeline depth")
	}
	return &Accelerator{cfg: cfg}, nil
}

// priorityQueue models the systolic hardware priority queue: a sorted
// register file of k entries that accepts one insertion per cycle. Inserting
// shifts worse entries down in the same cycle, exactly like the shift
// register chain in hardware. Ordering is knn.Neighbor.Less — the
// (distance, ID) tie-break every engine in this repository shares — so the
// queue's contents are always a (Dist, ID)-sorted prefix.
type priorityQueue struct {
	entries []knn.Neighbor
	k       int
}

func newPriorityQueue(k int) *priorityQueue {
	return &priorityQueue{k: k}
}

// insert offers a candidate; the queue keeps the k best by (Dist, ID).
func (pq *priorityQueue) insert(n knn.Neighbor) {
	if len(pq.entries) < pq.k {
		pq.entries = append(pq.entries, n)
		// Bubble into place: the systolic array keeps itself sorted.
		for i := len(pq.entries) - 1; i > 0 && pq.entries[i].Less(pq.entries[i-1]); i-- {
			pq.entries[i], pq.entries[i-1] = pq.entries[i-1], pq.entries[i]
		}
		return
	}
	if !n.Less(pq.entries[pq.k-1]) {
		return
	}
	pq.entries[pq.k-1] = n
	for i := pq.k - 1; i > 0 && pq.entries[i].Less(pq.entries[i-1]); i-- {
		pq.entries[i], pq.entries[i-1] = pq.entries[i-1], pq.entries[i]
	}
}

// Result is the output of one accelerated batch.
type Result struct {
	Neighbors [][]knn.Neighbor
	Cycles    int
	Time      time.Duration
}

// Search runs exact kNN for all queries and returns results plus the cycle
// count of the modeled execution. Results leave the systolic queues already
// in the shared (distance, ID) order and are normalized through
// knn.SortNeighbors on the way out, so they are byte-identical to the CPU
// baseline and merge cleanly with any other engine's lists. Cancellation is
// checked once per dataset stream pass (one batch of QueryLanes queries).
func (a *Accelerator) Search(ctx context.Context, ds *bitvec.Dataset, queries []bitvec.Vector, k int) (*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("fpga: got k=%d: %w", k, aperr.ErrBadK)
	}
	for i, q := range queries {
		if q.Dim() != ds.Dim() {
			return nil, fmt.Errorf("fpga: query %d dim %d != dataset dim %d: %w", i, q.Dim(), ds.Dim(), aperr.ErrDimMismatch)
		}
	}
	res := &Result{Neighbors: make([][]knn.Neighbor, len(queries))}

	// Cycle model: per batch of QueryLanes queries, every dataset vector
	// streams through once at StreamBits per cycle; distance + queue insert
	// are pipelined behind the stream. Loading the batch's queries into the
	// scratchpad costs one stream pass of the batch.
	vecCycles := ceilDiv(ds.Dim(), a.cfg.StreamBits)
	batches := ceilDiv(len(queries), a.cfg.QueryLanes)
	perBatch := ds.Len()*vecCycles + a.cfg.PipelineDepth + a.cfg.QueryLanes*vecCycles
	res.Cycles = batches * perBatch

	for lo := 0; lo < len(queries); lo += a.cfg.QueryLanes {
		if err := ctx.Err(); err != nil {
			return nil, aperr.Canceled(err)
		}
		hi := lo + a.cfg.QueryLanes
		if hi > len(queries) {
			hi = len(queries)
		}
		lanes := make([]*priorityQueue, hi-lo)
		for i := range lanes {
			lanes[i] = newPriorityQueue(k)
		}
		// Dataset streams once; all lanes consume each vector in parallel.
		for id := 0; id < ds.Len(); id++ {
			v := ds.At(id)
			for li, qi := lo, 0; li < hi; li, qi = li+1, qi+1 {
				lanes[qi].insert(knn.Neighbor{ID: id, Dist: v.Hamming(queries[li])})
			}
		}
		for qi := range lanes {
			out := make([]knn.Neighbor, len(lanes[qi].entries))
			copy(out, lanes[qi].entries)
			knn.SortNeighbors(out) // systolic order is already (Dist, ID); normalize regardless
			res.Neighbors[lo+qi] = out
		}
	}
	res.Time = time.Duration(float64(res.Cycles) / a.cfg.ClockHz * float64(time.Second))
	return res, nil
}

// ModelTime returns the modeled wall-clock time without executing, for the
// large-workload tables.
func (a *Accelerator) ModelTime(n, dim, numQueries int) time.Duration {
	vecCycles := ceilDiv(dim, a.cfg.StreamBits)
	batches := ceilDiv(numQueries, a.cfg.QueryLanes)
	perBatch := n*vecCycles + a.cfg.PipelineDepth + a.cfg.QueryLanes*vecCycles
	return time.Duration(float64(batches*perBatch) / a.cfg.ClockHz * float64(time.Second))
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
