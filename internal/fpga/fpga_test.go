package fpga

import (
	"context"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/knn"
	"repro/internal/stats"
)

func TestSearchMatchesCPU(t *testing.T) {
	rng := stats.NewRNG(11)
	ds := bitvec.RandomDataset(rng, 200, 64)
	queries := make([]bitvec.Vector, 37) // ragged final batch
	for i := range queries {
		queries[i] = bitvec.Random(rng, 64)
	}
	acc, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := acc.Search(context.Background(), ds, queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := knn.Batch(ds, queries, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		if len(res.Neighbors[qi]) != len(want[qi]) {
			t.Fatalf("query %d: %d results, want %d", qi, len(res.Neighbors[qi]), len(want[qi]))
		}
		for j := range want[qi] {
			if res.Neighbors[qi][j] != want[qi][j] {
				t.Errorf("query %d rank %d: fpga %v, cpu %v", qi, j, res.Neighbors[qi][j], want[qi][j])
			}
		}
	}
	if res.Cycles <= 0 || res.Time <= 0 {
		t.Errorf("cycle model produced %d cycles, %v", res.Cycles, res.Time)
	}
}

func TestPriorityQueueExact(t *testing.T) {
	pq := newPriorityQueue(3)
	for _, n := range []knn.Neighbor{{ID: 1, Dist: 9}, {ID: 2, Dist: 3}, {ID: 3, Dist: 7}, {ID: 4, Dist: 1}, {ID: 5, Dist: 3}} {
		pq.insert(n)
	}
	want := []knn.Neighbor{{ID: 4, Dist: 1}, {ID: 2, Dist: 3}, {ID: 5, Dist: 3}}
	if len(pq.entries) != 3 {
		t.Fatalf("queue holds %d, want 3", len(pq.entries))
	}
	for i := range want {
		if pq.entries[i] != want[i] {
			t.Errorf("entry %d = %v, want %v", i, pq.entries[i], want[i])
		}
	}
}

func TestModelTimeMatchesPaperScale(t *testing.T) {
	acc, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table III Kintex-7: 1.89 ms for WordEmbed-small; model within 2x.
	got := acc.ModelTime(1024, 64, 4096)
	if got < 900*time.Microsecond || got > 4*time.Millisecond {
		t.Errorf("ModelTime = %v, paper reports 1.89ms", got)
	}
	// Large: 1.85 s.
	got = acc.ModelTime(1<<20, 64, 4096)
	if got < 900*time.Millisecond || got > 4*time.Second {
		t.Errorf("large ModelTime = %v, paper reports 1.85s", got)
	}
}

func TestModelTimeScalesWithDim(t *testing.T) {
	acc, _ := New(DefaultConfig())
	t64 := acc.ModelTime(1<<20, 64, 4096)
	t256 := acc.ModelTime(1<<20, 256, 4096)
	ratio := t256.Seconds() / t64.Seconds()
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("d=256/d=64 time ratio = %v, want ~4 (streamed bits)", ratio)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	acc, _ := New(DefaultConfig())
	rng := stats.NewRNG(1)
	ds := bitvec.RandomDataset(rng, 4, 32)
	if _, err := acc.Search(context.Background(), ds, []bitvec.Vector{bitvec.Random(rng, 32)}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := acc.Search(context.Background(), ds, []bitvec.Vector{bitvec.Random(rng, 64)}, 1); err == nil {
		t.Error("dim mismatch accepted")
	}
}

// TestSearchTieBreakMatchesExact forces heavy distance ties — 8-bit codes
// over 300 vectors guarantee many duplicates — and requires the systolic
// priority queues to deliver exactly the CPU scan's (distance, ID) order.
// A k larger than one lane's queue and a ragged final batch are included.
func TestSearchTieBreakMatchesExact(t *testing.T) {
	rng := stats.NewRNG(13)
	ds := bitvec.RandomDataset(rng, 300, 8)
	queries := make([]bitvec.Vector, 21) // ragged: 16-lane batch + 5
	for i := range queries {
		queries[i] = bitvec.Random(rng, 8)
	}
	acc, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := acc.Search(context.Background(), ds, queries, 12)
	if err != nil {
		t.Fatal(err)
	}
	want, err := knn.Batch(ds, queries, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		if len(res.Neighbors[qi]) != len(want[qi]) {
			t.Fatalf("query %d: %d results, want %d", qi, len(res.Neighbors[qi]), len(want[qi]))
		}
		for j := range want[qi] {
			if res.Neighbors[qi][j] != want[qi][j] {
				t.Errorf("query %d rank %d: fpga %v, exact %v", qi, j, res.Neighbors[qi][j], want[qi][j])
			}
		}
	}
}

func TestSearchCanceled(t *testing.T) {
	rng := stats.NewRNG(14)
	ds := bitvec.RandomDataset(rng, 64, 16)
	acc, _ := New(DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := acc.Search(ctx, ds, []bitvec.Vector{bitvec.Random(rng, 16)}, 2); err == nil {
		t.Error("canceled context accepted")
	}
}
