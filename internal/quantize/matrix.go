// Package quantize converts real-valued feature vectors into the binary
// codes the kNN pipeline searches. The paper assumes dataset vectors are
// "quantized offline using techniques like ITQ" (§II-A); this package
// implements Iterative Quantization (Gong & Lazebnik) — PCA projection
// followed by alternating rotation optimization — plus a random-hyperplane
// baseline, entirely on the standard library (a Jacobi eigensolver stands in
// for LAPACK).
package quantize

import (
	"fmt"
	"math"
)

// matrix is a dense row-major float64 matrix, just large enough for ITQ's
// needs (covariances and rotations are bits x bits, at most 256 x 256).
type matrix struct {
	rows, cols int
	a          []float64
}

func newMatrix(rows, cols int) *matrix {
	return &matrix{rows: rows, cols: cols, a: make([]float64, rows*cols)}
}

func (m *matrix) at(i, j int) float64     { return m.a[i*m.cols+j] }
func (m *matrix) set(i, j int, v float64) { m.a[i*m.cols+j] = v }

func (m *matrix) clone() *matrix {
	c := newMatrix(m.rows, m.cols)
	copy(c.a, m.a)
	return c
}

// mul returns m * o.
func (m *matrix) mul(o *matrix) *matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("quantize: matrix dims %dx%d * %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	out := newMatrix(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			v := m.at(i, k)
			if v == 0 {
				continue
			}
			for j := 0; j < o.cols; j++ {
				out.a[i*out.cols+j] += v * o.a[k*o.cols+j]
			}
		}
	}
	return out
}

// transpose returns m^T.
func (m *matrix) transpose() *matrix {
	out := newMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.set(j, i, m.at(i, j))
		}
	}
	return out
}

func identity(n int) *matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m.set(i, i, 1)
	}
	return m
}

// jacobiEigen diagonalizes a symmetric matrix with cyclic Jacobi rotations,
// returning eigenvalues and the column-eigenvector matrix. It converges
// quadratically; 100 sweeps is far beyond what 256x256 covariances need.
func jacobiEigen(sym *matrix) (eigvals []float64, eigvecs *matrix) {
	n := sym.rows
	if sym.cols != n {
		panic("quantize: jacobiEigen on non-square matrix")
	}
	a := sym.clone()
	v := identity(n)
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a.at(i, j) * a.at(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.at(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := a.at(p, p), a.at(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for i := 0; i < n; i++ {
					aip, aiq := a.at(i, p), a.at(i, q)
					a.set(i, p, c*aip-s*aiq)
					a.set(i, q, s*aip+c*aiq)
				}
				for j := 0; j < n; j++ {
					apj, aqj := a.at(p, j), a.at(q, j)
					a.set(p, j, c*apj-s*aqj)
					a.set(q, j, s*apj+c*aqj)
				}
				for i := 0; i < n; i++ {
					vip, viq := v.at(i, p), v.at(i, q)
					v.set(i, p, c*vip-s*viq)
					v.set(i, q, s*vip+c*viq)
				}
			}
		}
	}
	eigvals = make([]float64, n)
	for i := 0; i < n; i++ {
		eigvals[i] = a.at(i, i)
	}
	return eigvals, v
}

// svd computes the thin SVD of a square matrix M = U * diag(s) * W^T via the
// eigendecomposition of M^T M (adequate for ITQ's well-conditioned bits x
// bits Procrustes steps).
func svd(m *matrix) (u *matrix, s []float64, w *matrix) {
	mtm := m.transpose().mul(m)
	eig, vecs := jacobiEigen(mtm)
	n := m.rows
	// Sort by descending eigenvalue.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if eig[order[j]] > eig[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	w = newMatrix(n, n)
	s = make([]float64, n)
	for c, idx := range order {
		ev := eig[idx]
		if ev < 0 {
			ev = 0
		}
		s[c] = math.Sqrt(ev)
		for r := 0; r < n; r++ {
			w.set(r, c, vecs.at(r, idx))
		}
	}
	// U = M W S^-1 for well-conditioned directions, then every column is
	// re-orthonormalized: numerically tiny singular values (rank-deficient
	// M, common once ITQ's sign matrix develops correlated columns) would
	// otherwise yield garbage columns and a non-orthogonal U.
	mw := m.mul(w)
	u = newMatrix(n, n)
	sMax := s[0]
	for c := 0; c < n; c++ {
		if sMax > 0 && s[c] > 1e-9*sMax {
			for r := 0; r < n; r++ {
				u.set(r, c, mw.at(r, c)/s[c])
			}
		}
		if orthonormalizeColumn(u, c) {
			continue
		}
		// Degenerate direction: substitute standard basis vectors until one
		// survives orthogonalization against the previous columns.
		for e := 0; e < n; e++ {
			for r := 0; r < n; r++ {
				u.set(r, c, 0)
			}
			u.set(e, c, 1)
			if orthonormalizeColumn(u, c) {
				break
			}
		}
	}
	return u, s, w
}

// orthonormalizeColumn makes column c of m unit-length and orthogonal to
// columns 0..c-1 (two Gram-Schmidt passes for numerical stability). It
// reports false if the column is linearly dependent on its predecessors.
func orthonormalizeColumn(m *matrix, c int) bool {
	n := m.rows
	for pass := 0; pass < 2; pass++ {
		for prev := 0; prev < c; prev++ {
			dot := 0.0
			for r := 0; r < n; r++ {
				dot += m.at(r, c) * m.at(r, prev)
			}
			for r := 0; r < n; r++ {
				m.set(r, c, m.at(r, c)-dot*m.at(r, prev))
			}
		}
	}
	norm := 0.0
	for r := 0; r < n; r++ {
		norm += m.at(r, c) * m.at(r, c)
	}
	norm = math.Sqrt(norm)
	if norm < 1e-8 {
		return false
	}
	for r := 0; r < n; r++ {
		m.set(r, c, m.at(r, c)/norm)
	}
	return true
}
