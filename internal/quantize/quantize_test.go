package quantize

import (
	"math"
	"testing"

	"repro/internal/knn"
	"repro/internal/stats"
)

// ---- matrix kernel tests ----

func TestMatrixMul(t *testing.T) {
	a := newMatrix(2, 3)
	copy(a.a, []float64{1, 2, 3, 4, 5, 6})
	b := newMatrix(3, 2)
	copy(b.a, []float64{7, 8, 9, 10, 11, 12})
	c := a.mul(b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if math.Abs(c.a[i]-w) > 1e-12 {
			t.Errorf("mul[%d] = %v, want %v", i, c.a[i], w)
		}
	}
}

func TestMatrixTranspose(t *testing.T) {
	a := newMatrix(2, 3)
	copy(a.a, []float64{1, 2, 3, 4, 5, 6})
	at := a.transpose()
	if at.rows != 3 || at.cols != 2 || at.at(2, 1) != 6 || at.at(0, 1) != 4 {
		t.Errorf("transpose wrong: %+v", at)
	}
}

func TestJacobiEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := newMatrix(2, 2)
	copy(m.a, []float64{2, 1, 1, 2})
	vals, vecs := jacobiEigen(m)
	lo, hi := math.Min(vals[0], vals[1]), math.Max(vals[0], vals[1])
	if math.Abs(lo-1) > 1e-9 || math.Abs(hi-3) > 1e-9 {
		t.Errorf("eigenvalues = %v, want 1 and 3", vals)
	}
	// Eigenvector columns are orthonormal.
	checkOrthonormal(t, vecs)
}

func TestJacobiEigenReconstruction(t *testing.T) {
	rng := stats.NewRNG(12)
	n := 8
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.set(i, j, v)
			m.set(j, i, v)
		}
	}
	vals, vecs := jacobiEigen(m)
	// Reconstruct V diag(vals) V^T and compare.
	d := newMatrix(n, n)
	for i, v := range vals {
		d.set(i, i, v)
	}
	rec := vecs.mul(d).mul(vecs.transpose())
	for i := range m.a {
		if math.Abs(rec.a[i]-m.a[i]) > 1e-8 {
			t.Fatalf("reconstruction off at %d: %v vs %v", i, rec.a[i], m.a[i])
		}
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := stats.NewRNG(13)
	n := 6
	m := newMatrix(n, n)
	for i := range m.a {
		m.a[i] = rng.NormFloat64()
	}
	u, s, w := svd(m)
	d := newMatrix(n, n)
	for i, v := range s {
		d.set(i, i, v)
	}
	rec := u.mul(d).mul(w.transpose())
	for i := range m.a {
		if math.Abs(rec.a[i]-m.a[i]) > 1e-7 {
			t.Fatalf("SVD reconstruction off at %d: %v vs %v", i, rec.a[i], m.a[i])
		}
	}
	checkOrthonormal(t, u)
	checkOrthonormal(t, w)
	for i := 1; i < n; i++ {
		if s[i] > s[i-1]+1e-12 {
			t.Errorf("singular values not descending: %v", s)
		}
	}
}

func checkOrthonormal(t *testing.T, m *matrix) {
	t.Helper()
	p := m.transpose().mul(m)
	for i := 0; i < p.rows; i++ {
		for j := 0; j < p.cols; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(p.at(i, j)-want) > 1e-7 {
				t.Fatalf("not orthonormal at (%d,%d): %v", i, j, p.at(i, j))
			}
		}
	}
}

// ---- quantizer tests ----

// gaussianClusters generates labeled cluster data in R^dim.
func gaussianClusters(rng *stats.RNG, clusters, perCluster, dim int, spread float64) (data [][]float64, labels []int) {
	for c := 0; c < clusters; c++ {
		center := make([]float64, dim)
		for j := range center {
			center[j] = rng.NormFloat64() * 4
		}
		for i := 0; i < perCluster; i++ {
			v := make([]float64, dim)
			for j := range v {
				v[j] = center[j] + rng.NormFloat64()*spread
			}
			data = append(data, v)
			labels = append(labels, c)
		}
	}
	return data, labels
}

func TestTrainITQValidation(t *testing.T) {
	rng := stats.NewRNG(1)
	if _, err := TrainITQ(nil, ITQConfig{Bits: 8}, rng); err == nil {
		t.Error("empty training set accepted")
	}
	data, _ := gaussianClusters(rng, 2, 10, 4, 1)
	if _, err := TrainITQ(data, ITQConfig{Bits: 8}, rng); err == nil {
		t.Error("bits > dim accepted")
	}
	ragged := [][]float64{{1, 2}, {1, 2, 3}}
	if _, err := TrainITQ(ragged, ITQConfig{Bits: 2}, rng); err == nil {
		t.Error("ragged data accepted")
	}
}

func TestITQRotationOrthogonal(t *testing.T) {
	rng := stats.NewRNG(2)
	data, _ := gaussianClusters(rng, 4, 40, 16, 1)
	q, err := TrainITQ(data, ITQConfig{Bits: 8, Iters: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkOrthonormal(t, q.rotation)
}

// TestITQPreservesNeighborhoods: codes of same-cluster points must be closer
// in Hamming space than codes of different-cluster points — the property
// that makes Hamming kNN a valid proxy for Euclidean kNN (§II-A).
func TestITQPreservesNeighborhoods(t *testing.T) {
	rng := stats.NewRNG(3)
	data, labels := gaussianClusters(rng, 4, 50, 32, 0.8)
	q, err := TrainITQ(data, ITQConfig{Bits: 16, Iters: 30}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ds := EncodeDataset(q, data)
	var intra, inter, intraN, interN float64
	for i := 0; i < ds.Len(); i += 3 {
		for j := i + 1; j < ds.Len(); j += 7 {
			d := float64(ds.At(i).Hamming(ds.At(j)))
			if labels[i] == labels[j] {
				intra += d
				intraN++
			} else {
				inter += d
				interN++
			}
		}
	}
	intra /= intraN
	inter /= interN
	if intra >= inter {
		t.Errorf("ITQ codes: intra-cluster distance %v >= inter-cluster %v", intra, inter)
	}
	// The margin should be substantial for well-separated clusters.
	if inter < intra*1.5 {
		t.Errorf("weak separation: intra %v, inter %v", intra, inter)
	}
}

// TestITQKNNRecall: Hamming kNN on ITQ codes should retrieve mostly
// same-cluster neighbors.
func TestITQKNNRecall(t *testing.T) {
	rng := stats.NewRNG(4)
	data, labels := gaussianClusters(rng, 5, 40, 24, 0.7)
	q, err := TrainITQ(data, ITQConfig{Bits: 16, Iters: 30}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ds := EncodeDataset(q, data)
	correct, total := 0, 0
	for i := 0; i < ds.Len(); i += 5 {
		res := knn.Linear(ds, ds.At(i), 6)
		for _, nb := range res[1:] { // skip self
			total++
			if labels[nb.ID] == labels[i] {
				correct++
			}
		}
	}
	ratio := float64(correct) / float64(total)
	if ratio < 0.8 {
		t.Errorf("same-cluster neighbor ratio = %v, want >= 0.8", ratio)
	}
}

// TestITQBeatsRandomHyperplane: on the same data and bit budget, ITQ's
// quantization should preserve neighborhoods at least as well as random
// hyperplanes (the advantage Gong & Lazebnik report).
func TestITQBeatsRandomHyperplane(t *testing.T) {
	rng := stats.NewRNG(5)
	data, labels := gaussianClusters(rng, 5, 40, 32, 1.0)
	itq, err := TrainITQ(data, ITQConfig{Bits: 12, Iters: 30}, rng)
	if err != nil {
		t.Fatal(err)
	}
	rh := NewRandomHyperplane(32, 12, rng)
	score := func(q Quantizer) float64 {
		ds := EncodeDataset(q, data)
		correct, total := 0, 0
		for i := 0; i < ds.Len(); i += 4 {
			res := knn.Linear(ds, ds.At(i), 5)
			for _, nb := range res[1:] {
				total++
				if labels[nb.ID] == labels[i] {
					correct++
				}
			}
		}
		return float64(correct) / float64(total)
	}
	si, sr := score(itq), score(rh)
	if si < sr-0.05 {
		t.Errorf("ITQ score %v below random hyperplane %v", si, sr)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	rng := stats.NewRNG(6)
	data, _ := gaussianClusters(rng, 2, 20, 8, 1)
	q, err := TrainITQ(data, ITQConfig{Bits: 6, Iters: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	a := q.Encode(data[0])
	b := q.Encode(data[0])
	if !a.Equal(b) {
		t.Error("Encode not deterministic")
	}
}

func TestRandomHyperplaneDimCheck(t *testing.T) {
	rh := NewRandomHyperplane(8, 4, stats.NewRNG(7))
	defer func() {
		if recover() == nil {
			t.Error("wrong-dim Encode did not panic")
		}
	}()
	rh.Encode(make([]float64, 9))
}
