package quantize

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/stats"
)

// Quantizer maps real-valued feature vectors to binary codes.
type Quantizer interface {
	// Bits returns the code length.
	Bits() int
	// Encode converts one feature vector to its binary code.
	Encode(vec []float64) bitvec.Vector
}

// EncodeDataset runs a quantizer over a feature matrix.
func EncodeDataset(q Quantizer, data [][]float64) *bitvec.Dataset {
	ds := bitvec.NewDataset(q.Bits())
	for _, v := range data {
		ds.Append(q.Encode(v))
	}
	return ds
}

// ITQ is Iterative Quantization (Gong & Lazebnik, CVPR'11), the offline
// binarization the paper assumes for its workloads (§II-A): mean-center,
// project onto the top principal components, then alternate between optimal
// binary codes and an orthogonal rotation (a Procrustes problem solved by
// SVD) that minimizes quantization error.
type ITQ struct {
	mean       []float64
	projection *matrix // dim x bits: top PCA directions
	rotation   *matrix // bits x bits orthogonal
	bits       int
}

// ITQConfig configures training.
type ITQConfig struct {
	Bits  int
	Iters int // rotation refinement iterations; Gong & Lazebnik use 50
}

// TrainITQ learns an ITQ quantizer from training data (rows = vectors).
func TrainITQ(data [][]float64, cfg ITQConfig, rng *stats.RNG) (*ITQ, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("quantize: empty training set")
	}
	dim := len(data[0])
	if cfg.Bits <= 0 || cfg.Bits > dim {
		return nil, fmt.Errorf("quantize: bits %d out of range [1,%d]", cfg.Bits, dim)
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 50
	}
	for i, v := range data {
		if len(v) != dim {
			return nil, fmt.Errorf("quantize: vector %d has %d dims, want %d", i, len(v), dim)
		}
	}
	q := &ITQ{bits: cfg.Bits}

	// Mean-center.
	q.mean = make([]float64, dim)
	for _, v := range data {
		for j, x := range v {
			q.mean[j] += x
		}
	}
	for j := range q.mean {
		q.mean[j] /= float64(len(data))
	}

	// Covariance and PCA.
	cov := newMatrix(dim, dim)
	for _, v := range data {
		for i := 0; i < dim; i++ {
			ci := v[i] - q.mean[i]
			for j := i; j < dim; j++ {
				cov.a[i*dim+j] += ci * (v[j] - q.mean[j])
			}
		}
	}
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			val := cov.at(i, j) / float64(len(data))
			cov.set(i, j, val)
			cov.set(j, i, val)
		}
	}
	eigvals, eigvecs := jacobiEigen(cov)
	top := topIndices(eigvals, cfg.Bits)
	q.projection = newMatrix(dim, cfg.Bits)
	for c, idx := range top {
		for r := 0; r < dim; r++ {
			q.projection.set(r, c, eigvecs.at(r, idx))
		}
	}

	// Projected data V (n x bits).
	v := newMatrix(len(data), cfg.Bits)
	for i, row := range data {
		centered := make([]float64, dim)
		for j := range row {
			centered[j] = row[j] - q.mean[j]
		}
		for c := 0; c < cfg.Bits; c++ {
			s := 0.0
			for r := 0; r < dim; r++ {
				s += centered[r] * q.projection.at(r, c)
			}
			v.set(i, c, s)
		}
	}

	// Random orthogonal initialization: QR of a Gaussian matrix via
	// Gram-Schmidt.
	q.rotation = randomOrthogonal(cfg.Bits, rng)

	// Alternating optimization: B = sign(VR); R from the Procrustes problem
	// min ||B - VR||_F solved by SVD of V^T B.
	for iter := 0; iter < cfg.Iters; iter++ {
		vr := v.mul(q.rotation)
		b := newMatrix(v.rows, cfg.Bits)
		for i := 0; i < b.rows; i++ {
			for j := 0; j < b.cols; j++ {
				if vr.at(i, j) >= 0 {
					b.set(i, j, 1)
				} else {
					b.set(i, j, -1)
				}
			}
		}
		vtb := v.transpose().mul(b)
		u, _, w := svd(vtb)
		q.rotation = u.mul(w.transpose())
	}
	return q, nil
}

func topIndices(vals []float64, k int) []int {
	order := make([]int, len(vals))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if vals[order[j]] > vals[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	return order[:k]
}

func randomOrthogonal(n int, rng *stats.RNG) *matrix {
	m := newMatrix(n, n)
	for i := range m.a {
		m.a[i] = rng.NormFloat64()
	}
	// Gram-Schmidt over columns.
	for c := 0; c < n; c++ {
		for prev := 0; prev < c; prev++ {
			dot := 0.0
			for r := 0; r < n; r++ {
				dot += m.at(r, c) * m.at(r, prev)
			}
			for r := 0; r < n; r++ {
				m.set(r, c, m.at(r, c)-dot*m.at(r, prev))
			}
		}
		norm := 0.0
		for r := 0; r < n; r++ {
			norm += m.at(r, c) * m.at(r, c)
		}
		norm = sqrtOr1(norm)
		for r := 0; r < n; r++ {
			m.set(r, c, m.at(r, c)/norm)
		}
	}
	return m
}

// Bits returns the code length.
func (q *ITQ) Bits() int { return q.bits }

// Encode projects, rotates and signs one feature vector.
func (q *ITQ) Encode(vec []float64) bitvec.Vector {
	if len(vec) != len(q.mean) {
		panic(fmt.Sprintf("quantize: vector dim %d, trained on %d", len(vec), len(q.mean)))
	}
	proj := make([]float64, q.bits)
	for c := 0; c < q.bits; c++ {
		s := 0.0
		for r := 0; r < len(vec); r++ {
			s += (vec[r] - q.mean[r]) * q.projection.at(r, c)
		}
		proj[c] = s
	}
	out := bitvec.New(q.bits)
	for j := 0; j < q.bits; j++ {
		s := 0.0
		for c := 0; c < q.bits; c++ {
			s += proj[c] * q.rotation.at(c, j)
		}
		if s >= 0 {
			out.Set(j, true)
		}
	}
	return out
}

// RandomHyperplane is the classical LSH-style binarization baseline: bit j
// is the sign of a dot product with a random Gaussian direction.
type RandomHyperplane struct {
	planes *matrix // dim x bits
	bits   int
}

// NewRandomHyperplane draws the projection directions.
func NewRandomHyperplane(dim, bits int, rng *stats.RNG) *RandomHyperplane {
	m := newMatrix(dim, bits)
	for i := range m.a {
		m.a[i] = rng.NormFloat64()
	}
	return &RandomHyperplane{planes: m, bits: bits}
}

// Bits returns the code length.
func (r *RandomHyperplane) Bits() int { return r.bits }

// Encode signs the random projections.
func (r *RandomHyperplane) Encode(vec []float64) bitvec.Vector {
	if len(vec) != r.planes.rows {
		panic(fmt.Sprintf("quantize: vector dim %d, planes built for %d", len(vec), r.planes.rows))
	}
	out := bitvec.New(r.bits)
	for j := 0; j < r.bits; j++ {
		s := 0.0
		for i, x := range vec {
			s += x * r.planes.at(i, j)
		}
		if s >= 0 {
			out.Set(j, true)
		}
	}
	return out
}

func sqrtOr1(x float64) float64 {
	if x <= 1e-24 {
		return 1
	}
	return math.Sqrt(x)
}
