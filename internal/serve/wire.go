package serve

import (
	apknn "repro"
	"repro/internal/obs"
)

// The JSON wire types of the /v1 serving API, shared by the HTTP handlers
// and the Go Client. Vectors travel as "1011"-style bit strings — the same
// textual form apknn.ParseVector accepts and Vector.String prints — so the
// API is curl-able without a binary encoding step.

// SearchRequest is the body of POST /v1/search: one query destined for the
// dynamic micro-batcher.
type SearchRequest struct {
	// Query is the bit-string query vector; its length must equal the
	// served dataset's dimensionality.
	Query string `json:"query"`
	// K is the number of neighbors wanted (default 10).
	K int `json:"k,omitempty"`
	// TimeoutMS optionally bounds the server-side time budget; expiry
	// answers 504. The client's own context cancellation is honored
	// regardless.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// Neighbor is one search hit on the wire.
type Neighbor struct {
	ID   int `json:"id"`
	Dist int `json:"dist"`
}

// SearchResponse answers POST /v1/search.
type SearchResponse struct {
	Neighbors []Neighbor `json:"neighbors"`
	// FlushSize is the realized micro-batch this query was coalesced
	// into — 1 means the query paid a full reconfiguration sweep alone.
	FlushSize int `json:"flush_size"`
}

// SearchBatchRequest is the body of POST /v1/search_batch: a client-formed
// batch served in one backend call, bypassing the micro-batcher.
type SearchBatchRequest struct {
	Queries []string `json:"queries"`
	K       int      `json:"k,omitempty"`
}

// SearchBatchResponse answers POST /v1/search_batch; Neighbors is indexed
// like Queries.
type SearchBatchResponse struct {
	Neighbors [][]Neighbor `json:"neighbors"`
}

// InsertRequest is the body of POST /v1/insert: one vector to add to a
// live (mutable) index.
type InsertRequest struct {
	// Vector is the bit-string vector to insert; its length must equal the
	// served dataset's dimensionality.
	Vector string `json:"vector"`
}

// InsertResponse answers POST /v1/insert.
type InsertResponse struct {
	// ID is the global ID assigned to the inserted vector — stable across
	// compactions, never reused.
	ID int `json:"id"`
}

// DeleteRequest is the body of POST /v1/delete.
type DeleteRequest struct {
	// ID is the global ID to delete (a seed, loaded, or inserted vector).
	ID int `json:"id"`
}

// DeleteResponse answers POST /v1/delete.
type DeleteResponse struct {
	ID int `json:"id"`
	// Deleted confirms the tombstone landed; an unknown or already-deleted
	// ID answers 404 instead.
	Deleted bool `json:"deleted"`
}

// NodeInfo is the serving node's identity block on /v1/stats: which cluster
// shard this process serves, where, and how big its slice of the dataset
// is. The cluster router (internal/cluster) probes it at boot to assign
// global-ID bases and reads it on aggregation so every ClusterStats line is
// attributable to a node.
type NodeInfo struct {
	// ID names the node, e.g. "shard0-a" (apserve -node-id; defaults to the
	// listen address).
	ID string `json:"id"`
	// Addr is the advertised listen address.
	Addr string `json:"addr,omitempty"`
	// UptimeNS is nanoseconds since the serving layer was built.
	UptimeNS int64 `json:"uptime_ns"`
	// Vectors is the served dataset's current size (a live index reports
	// its mutating Len, a static one its boot-time size).
	Vectors int `json:"vectors"`
	// IDSpace is the node's local ID-space size: local IDs span
	// [0, IDSpace). For a static index this equals Vectors; a live index's
	// ID space only grows (deletes shrink Vectors but IDs are never
	// reused), so the router's global-ID base assignment must use this,
	// not Vectors.
	IDSpace int `json:"id_space"`
	// Dim is the served dataset's dimensionality.
	Dim int `json:"dim,omitempty"`
}

// StatsResponse answers GET /v1/stats.
type StatsResponse struct {
	// Backend is the served Index's own counters.
	Backend apknn.Stats `json:"backend"`
	// Serving is the micro-batcher and admission-control snapshot.
	Serving apknn.ServingStats `json:"serving"`
	// ModeledTimeNS is the backend's accumulated modeled wall-clock.
	ModeledTimeNS int64 `json:"modeled_time_ns"`
	// Node identifies this server within a cluster; present when the server
	// was configured with a NodeID.
	Node *NodeInfo `json:"node,omitempty"`
	// Latency maps stable metric names (the same ones GET /metrics exports)
	// to quantile summaries; metrics with no samples yet are omitted.
	Latency map[string]apknn.LatencySummary `json:"latency,omitempty"`
	// LatencyWindow is the same map computed over roughly the last minute
	// (a 6×10s rotating window) instead of since boot — what a dashboard
	// without a scraping Prometheus reads for "p99 right now". Metrics
	// with no samples inside the window are omitted.
	LatencyWindow map[string]apknn.LatencySummary `json:"latency_1m,omitempty"`
}

// HotQuery is one entry of the /v1/analytics heat block: a query key (the
// canonical bit-string form), its estimated frequency, and the
// space-saving error bound (the key may have occurred up to Err times
// while untracked; 0 means the count is exact).
type HotQuery struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err,omitempty"`
}

// ShardLoad is the per-node load block of /v1/analytics — the counters a
// shard-split advisor compares across shards.
type ShardLoad struct {
	// Queries and Batches are the backend's own serving counters.
	Queries int64 `json:"queries"`
	Batches int64 `json:"batches"`
	// CandidatesScanned is the total query/candidate distance evaluations.
	CandidatesScanned int64 `json:"candidates_scanned"`
	// BytesScanned is CandidatesScanned × the packed vector size — the
	// scan bandwidth this node has paid. Zero when the server does not
	// know its dimensionality.
	BytesScanned int64 `json:"bytes_scanned"`
	// DeltaSize is the live index's current delta-segment length (0 for a
	// static index) — pending churn not yet compacted into the base.
	DeltaSize int `json:"delta_size"`
	// Vectors is the node's current dataset size.
	Vectors int `json:"vectors"`
}

// AnalyticsResponse answers GET /v1/analytics on one apserve node.
type AnalyticsResponse struct {
	// Node identifies this server within a cluster, when configured.
	Node *NodeInfo `json:"node,omitempty"`
	// QueriesObserved is the number of queries the heat tracker has seen
	// (search and batch members both count).
	QueriesObserved uint64 `json:"queries_observed"`
	// TopQueries is the hottest queries, count-descending.
	TopQueries []HotQuery `json:"top_queries"`
	// Load is this node's load-counter block.
	Load ShardLoad `json:"load"`
}

// DebugTracesResponse answers GET /v1/debug/traces: the node's flight
// recorder contents. Query parameters select the view — ?class= one of
// recent|slow|error|shed|hedge (default recent), ?n= caps the count,
// ?trace_id= returns every retained record of one trace instead (the form
// the router's stitcher fetches from shards).
type DebugTracesResponse struct {
	// Node is the answering node's identity.
	Node string `json:"node,omitempty"`
	// Depth is the per-class ring retention.
	Depth int `json:"depth"`
	// Recorded counts every trace completed into the recorder since boot.
	Recorded int64 `json:"recorded"`
	// Classes maps each class to how many records it currently retains.
	Classes map[string]int `json:"classes"`
	// Traces is the selected records, newest first. On the router, each
	// record's tree has shard-side trees stitched under their scatter legs.
	Traces []*obs.TraceRecord `json:"traces"`
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status  string `json:"status"`
	Backend string `json:"backend"`
	Boards  int    `json:"boards"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// toWire converts engine neighbors to their wire form.
func toWire(ns []apknn.Neighbor) []Neighbor {
	out := make([]Neighbor, len(ns))
	for i, n := range ns {
		out[i] = Neighbor{ID: n.ID, Dist: n.Dist}
	}
	return out
}

// Neighbors converts wire neighbors back to engine form, for callers that
// compare server results against a local index or exact scan.
func Neighbors(ws []Neighbor) []apknn.Neighbor {
	out := make([]apknn.Neighbor, len(ws))
	for i, w := range ws {
		out[i] = apknn.Neighbor{ID: w.ID, Dist: w.Dist}
	}
	return out
}
