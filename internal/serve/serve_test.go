package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	apknn "repro"
	"repro/internal/aperr"
)

// waitGoroutines asserts the goroutine count converges back to within slack
// of baseline — the leak check for handlers, flush workers, and watcher
// goroutines.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	const slack = 3
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+slack {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d running, baseline %d\n%s", runtime.NumGoroutine(), baseline, buf[:n])
}

// newTestServer opens a small sharded index and serves it on an in-process
// HTTP listener. Callers get the client, the exact-scan oracle inputs, and
// a cleanup that drains the serving layer before the leak check runs.
func newTestServer(t *testing.T, cfg Config) (*Client, *Server, *apknn.Dataset) {
	t.Helper()
	ds := apknn.RandomDataset(7, 2000, 32)
	idx, err := apknn.Open(ds, apknn.WithBackend(apknn.Sharded), apknn.WithBoards(2), apknn.WithCapacity(250))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Dim == 0 {
		cfg.Dim = ds.Dim()
	}
	srv := New(idx, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return &Client{BaseURL: ts.URL}, srv, ds
}

// TestSearchCoalescesConcurrentRequests is the tentpole behavior: N
// concurrent single-query requests ride shared flushes, every response is
// byte-identical to the exact scan, and the counters record the coalescing.
func TestSearchCoalescesConcurrentRequests(t *testing.T) {
	const nq, k = 8, 5
	client, srv, ds := newTestServer(t, Config{MaxBatch: nq, BatchWindow: 200 * time.Millisecond})
	queries := apknn.RandomQueries(8, nq, 32)
	exact := apknn.ExactSearch(ds, queries, k, 2)

	var wg sync.WaitGroup
	responses := make([]*SearchResponse, nq)
	errs := make([]error, nq)
	for i := 0; i < nq; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = client.Search(context.Background(), queries[i], k)
		}(i)
	}
	wg.Wait()

	coalesced := false
	for i := 0; i < nq; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		got := Neighbors(responses[i].Neighbors)
		if len(got) != len(exact[i]) {
			t.Fatalf("request %d: %d neighbors, want %d", i, len(got), len(exact[i]))
		}
		for j := range got {
			if got[j] != exact[i][j] {
				t.Errorf("request %d rank %d: %+v, want %+v", i, j, got[j], exact[i][j])
			}
		}
		if responses[i].FlushSize > 1 {
			coalesced = true
		}
	}
	if !coalesced {
		t.Error("no request reported a flush size > 1; micro-batching never coalesced")
	}
	st := srv.Stats()
	if st.Requests != nq {
		t.Errorf("Requests = %d, want %d", st.Requests, nq)
	}
	if st.Coalesced == 0 {
		t.Error("Coalesced = 0, want > 0")
	}
	if st.Flushes == 0 || st.Flushes >= nq {
		t.Errorf("Flushes = %d, want in [1, %d)", st.Flushes, nq)
	}
	if got := st.FlushesBySize + st.FlushesByDeadline + st.FlushesOnClose; got != st.Flushes {
		t.Errorf("flush causes sum to %d, want %d", got, st.Flushes)
	}
	if st.MeanBatch <= 1 {
		t.Errorf("MeanBatch = %.2f, want > 1", st.MeanBatch)
	}
}

// TestSearchDeadlineFlush: fewer requests than the size cap still flush
// once the window expires, attributed to the deadline counter.
func TestSearchDeadlineFlush(t *testing.T) {
	client, srv, _ := newTestServer(t, Config{MaxBatch: 64, BatchWindow: 5 * time.Millisecond})
	queries := apknn.RandomQueries(9, 3, 32)
	var wg sync.WaitGroup
	for _, q := range queries {
		wg.Add(1)
		go func(q apknn.Vector) {
			defer wg.Done()
			if _, err := client.Search(context.Background(), q, 3); err != nil {
				t.Error(err)
			}
		}(q)
	}
	wg.Wait()
	if st := srv.Stats(); st.FlushesByDeadline == 0 {
		t.Errorf("FlushesByDeadline = 0 with a 5ms window and 3 requests, stats: %+v", st)
	}
}

// TestSearchDifferentK: members of one flush may want different k; each
// response is trimmed to its own ask.
func TestSearchDifferentK(t *testing.T) {
	client, _, ds := newTestServer(t, Config{MaxBatch: 2, BatchWindow: 200 * time.Millisecond})
	queries := apknn.RandomQueries(10, 2, 32)
	ks := []int{2, 7}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Search(context.Background(), queries[i], ks[i])
			if err != nil {
				t.Error(err)
				return
			}
			exact := apknn.ExactSearch(ds, queries[i:i+1], ks[i], 1)[0]
			got := Neighbors(resp.Neighbors)
			if len(got) != ks[i] {
				t.Errorf("request %d: %d neighbors, want %d", i, len(got), ks[i])
				return
			}
			for j := range got {
				if got[j] != exact[j] {
					t.Errorf("request %d rank %d: %+v, want %+v", i, j, got[j], exact[j])
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestSearchBatchEndpoint: the pre-batched endpoint answers in one backend
// call and matches the exact scan.
func TestSearchBatchEndpoint(t *testing.T) {
	client, srv, ds := newTestServer(t, Config{})
	queries := apknn.RandomQueries(11, 6, 32)
	exact := apknn.ExactSearch(ds, queries, 4, 2)
	got, err := client.SearchBatch(context.Background(), queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		for j := range exact[i] {
			if got[i][j] != exact[i][j] {
				t.Fatalf("query %d rank %d: %+v, want %+v", i, j, got[i][j], exact[i][j])
			}
		}
	}
	if st := srv.Stats(); st.BatchRequests != 1 {
		t.Errorf("BatchRequests = %d, want 1", st.BatchRequests)
	}
}

// TestStatsAndHealthEndpoints: both report well-formed JSON with live
// counters after traffic.
func TestStatsAndHealthEndpoints(t *testing.T) {
	client, _, _ := newTestServer(t, Config{})
	ctx := context.Background()
	h, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Backend != string(apknn.Sharded) || h.Boards != 2 {
		t.Errorf("health = %+v", h)
	}
	q := apknn.RandomQueries(12, 1, 32)[0]
	if _, err := client.Search(ctx, q, 3); err != nil {
		t.Fatal(err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Serving.Requests != 1 || st.Serving.Flushes != 1 {
		t.Errorf("serving stats = %+v", st.Serving)
	}
	if st.Backend.Queries != 1 || st.Backend.Boards != 2 {
		t.Errorf("backend stats = %+v", st.Backend)
	}
	if st.ModeledTimeNS <= 0 {
		t.Errorf("ModeledTimeNS = %d, want > 0", st.ModeledTimeNS)
	}
}

// TestBadRequests: malformed inputs answer 400 with a JSON error body.
func TestBadRequests(t *testing.T) {
	client, _, _ := newTestServer(t, Config{})
	ctx := context.Background()
	q := apknn.RandomQueries(13, 1, 32)[0]

	var apiErr *APIError
	// Wrong dimensionality.
	if _, err := client.Search(ctx, apknn.RandomQueries(13, 1, 16)[0], 3); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Errorf("dim mismatch: %v, want APIError 400", err)
	}
	// Negative k.
	if _, err := client.Search(ctx, q, -2); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Errorf("bad k: %v, want APIError 400", err)
	}
	// Empty batch.
	if _, err := client.SearchBatch(ctx, nil, 3); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Errorf("empty batch: %v, want APIError 400", err)
	}
}

// TestBadDimRiderDoesNotPoisonFlush: a wrong-dimension query is refused at
// the door with 400; a valid request sharing the same batch window still
// gets its exact answer — one misbehaving client cannot fail a coalesced
// flush for everyone else.
func TestBadDimRiderDoesNotPoisonFlush(t *testing.T) {
	client, srv, ds := newTestServer(t, Config{MaxBatch: 64, BatchWindow: 100 * time.Millisecond})
	good := apknn.RandomQueries(20, 1, 32)[0]
	bad := apknn.RandomQueries(20, 1, 8)[0] // parseable, wrong length
	exact := apknn.ExactSearch(ds, []apknn.Vector{good}, 3, 1)[0]

	var wg sync.WaitGroup
	wg.Add(2)
	var goodResp *SearchResponse
	var goodErr, badErr error
	go func() { defer wg.Done(); goodResp, goodErr = client.Search(context.Background(), good, 3) }()
	go func() { defer wg.Done(); _, badErr = client.Search(context.Background(), bad, 3) }()
	wg.Wait()

	var apiErr *APIError
	if !errors.As(badErr, &apiErr) || apiErr.Status != 400 {
		t.Errorf("bad-dim request: %v, want APIError 400", badErr)
	}
	if goodErr != nil {
		t.Fatalf("valid rider failed alongside the bad one: %v", goodErr)
	}
	got := Neighbors(goodResp.Neighbors)
	for j := range exact {
		if got[j] != exact[j] {
			t.Errorf("valid rider rank %d: %+v, want %+v", j, got[j], exact[j])
		}
	}
	if st := srv.Stats(); st.Requests != 1 {
		t.Errorf("Requests = %d, want 1 (the bad query must never be admitted)", st.Requests)
	}
}

// TestCloseSubmitRace: requests racing Close must all resolve — an answer,
// a 503, or a cancellation — never a hang. This pins the shutdown drain
// against submits that win the queue-send race after the loop exits.
func TestCloseSubmitRace(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		ds := apknn.RandomDataset(21, 200, 16)
		idx, err := apknn.Open(ds, apknn.WithBackend(apknn.Fast), apknn.WithCapacity(100))
		if err != nil {
			t.Fatal(err)
		}
		srv := New(idx, Config{MaxBatch: 8, BatchWindow: 50 * time.Millisecond, Dim: 16})
		ts := httptest.NewServer(srv.Handler())
		client := &Client{BaseURL: ts.URL}
		q := apknn.RandomQueries(22, 1, 16)[0]

		const racers = 8
		done := make(chan error, racers)
		for i := 0; i < racers; i++ {
			go func() {
				_, err := client.Search(context.Background(), q, 3)
				done <- err
			}()
		}
		closeCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Close(closeCtx); err != nil {
			t.Fatalf("trial %d: close: %v", trial, err)
		}
		for i := 0; i < racers; i++ {
			select {
			case err := <-done:
				if err != nil {
					var apiErr *APIError
					if !errors.As(err, &apiErr) || apiErr.Status != 503 {
						t.Fatalf("trial %d: racer got %v, want success or 503", trial, err)
					}
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("trial %d: a racer never resolved — request stranded by shutdown", trial)
			}
		}
		cancel()
		ts.Close()
	}
}

// blockingIndex is a stub backend whose Search parks until released or
// canceled — the admission-control and cancellation-propagation probes.
type blockingIndex struct {
	entered chan struct{} // one tick per Search call that started
	release chan struct{} // closed to let parked Searches finish
}

func newBlockingIndex() *blockingIndex {
	return &blockingIndex{entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (b *blockingIndex) Search(ctx context.Context, queries []apknn.Vector, k int) ([][]apknn.Neighbor, error) {
	b.entered <- struct{}{}
	select {
	case <-ctx.Done():
		return nil, aperr.Canceled(ctx.Err())
	case <-b.release:
	}
	out := make([][]apknn.Neighbor, len(queries))
	for i := range out {
		out[i] = []apknn.Neighbor{{ID: i, Dist: 0}}
	}
	return out, nil
}

func (b *blockingIndex) SearchBatch(ctx context.Context, batches [][]apknn.Vector, k int) <-chan apknn.BatchResult {
	panic("not used")
}

func (b *blockingIndex) ModeledTime() time.Duration { return 0 }

func (b *blockingIndex) Stats() apknn.Stats { return apknn.Stats{Backend: "blocking", Boards: 1} }

// TestAdmissionControl: once MaxInFlight requests are parked in the
// backend, the next request is refused with 429 + Retry-After and the
// rejection is counted; after release, the parked requests complete.
func TestAdmissionControl(t *testing.T) {
	idx := newBlockingIndex()
	srv := New(idx, Config{MaxInFlight: 2, BatchWindow: 0})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}
	q := apknn.RandomQueries(14, 1, 8)[0]

	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := client.Search(context.Background(), q, 1)
			results <- err
		}()
	}
	// Both requests admitted and parked inside the backend.
	for i := 0; i < 2; i++ {
		select {
		case <-idx.entered:
		case <-time.After(5 * time.Second):
			t.Fatal("parked requests never reached the backend")
		}
	}

	_, err := client.Search(context.Background(), q, 1)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("3rd request: %v, want ErrSaturated", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.RetryAfter <= 0 {
		t.Errorf("saturated error carries no Retry-After: %v", err)
	}
	if st := srv.Stats(); st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}

	close(idx.release)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("parked request failed after release: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestFlushConcurrencyCap pins MaxConcurrentFlushes: with 2 backend slots
// and coalescing disabled, at most 2 flushes reach the backend at once no
// matter how many requests are admitted; the overflow waits for a slot and
// completes once the parked flushes release.
func TestFlushConcurrencyCap(t *testing.T) {
	idx := newBlockingIndex()
	srv := New(idx, Config{MaxInFlight: 16, BatchWindow: 0, MaxConcurrentFlushes: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}
	q := apknn.RandomQueries(16, 1, 8)[0]

	const n = 6
	results := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := client.Search(context.Background(), q, 1)
			results <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-idx.entered:
		case <-time.After(5 * time.Second):
			t.Fatal("parked flushes never reached the backend")
		}
	}
	// Both slots are held; no further flush may enter while they park.
	select {
	case <-idx.entered:
		t.Fatal("a third flush entered the backend past the 2-slot cap")
	case <-time.After(100 * time.Millisecond):
	}

	close(idx.release)
	for i := 0; i < n; i++ {
		if err := <-results; err != nil {
			t.Errorf("request failed after release: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestCanceledRequestReturnsPromptly is the acceptance bound: a request
// whose context ends while queued returns within one batch window + one
// batch — here well under the deliberately huge window — and nothing
// leaks once the server is torn down.
func TestCanceledRequestReturnsPromptly(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ds := apknn.RandomDataset(15, 2000, 32)
	idx, err := apknn.Open(ds, apknn.WithBackend(apknn.Sharded), apknn.WithBoards(2), apknn.WithCapacity(250))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(idx, Config{MaxBatch: 64, BatchWindow: 2 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	client := &Client{BaseURL: ts.URL}
	q := apknn.RandomQueries(15, 1, 32)[0]

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.Search(ctx, q, 3)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected an error from the timed-out request")
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("timed-out request took %v; want bounded by its own 30ms deadline, not the 2s window", elapsed)
	}
	// The expired member is discarded — never searched — when its flush
	// finally fires at the window.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Expired == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if st := srv.Stats(); st.Expired != 1 {
		t.Errorf("Expired = %d, want 1 (stats %+v)", st.Expired, st)
	}
	if st := idx.Stats(); st.Queries != 0 {
		t.Errorf("backend served %d queries; the expired request should never reach it", st.Queries)
	}
	ts.Close()
	closeCtx, cancelClose := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelClose()
	if err := srv.Close(closeCtx); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
}

// TestServerSideTimeout: a request carrying timeout_ms gets 504 from the
// server once its budget expires, bounded well below the batch window.
func TestServerSideTimeout(t *testing.T) {
	idx := newBlockingIndex()
	srv := New(idx, Config{BatchWindow: 0})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}

	q := apknn.RandomQueries(16, 1, 8)[0]
	start := time.Now()
	var out SearchResponse
	err := client.do(context.Background(), "POST", "/v1/search",
		SearchRequest{Query: q.String(), K: 1, TimeoutMS: 40}, &out)
	elapsed := time.Since(start)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 504 {
		t.Fatalf("got %v, want APIError 504", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("server-side timeout took %v", elapsed)
	}
	close(idx.release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestCancelPropagatesToBackend: when every rider of a flush hangs up, the
// shared batch context is canceled and the in-flight backend call aborts —
// the worker pool is not left streaming for nobody.
func TestCancelPropagatesToBackend(t *testing.T) {
	baseline := runtime.NumGoroutine()
	idx := newBlockingIndex()
	srv := New(idx, Config{BatchWindow: 0, MaxInFlight: 8})
	ts := httptest.NewServer(srv.Handler())
	client := &Client{BaseURL: ts.URL}
	q := apknn.RandomQueries(17, 1, 8)[0]

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := client.Search(ctx, q, 1)
		done <- err
	}()
	select {
	case <-idx.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the backend")
	}
	cancel() // the flush's only rider hangs up
	if err := <-done; err == nil {
		t.Fatal("canceled request returned no error")
	}
	// The parked Search must unblock via its context, not b.release —
	// which this test never closes. Drain: Close succeeds only if the
	// flush goroutine finished.
	closeCtx, cancelClose := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelClose()
	if err := srv.Close(closeCtx); err != nil {
		t.Fatalf("close after rider hangup: %v (backend likely still parked)", err)
	}
	ts.Close()
	waitGoroutines(t, baseline)
}

// TestGracefulShutdownDrains: requests already queued when Close begins
// are answered by the final drain flush, and late arrivals get 503.
func TestGracefulShutdownDrains(t *testing.T) {
	const nq = 4
	ds := apknn.RandomDataset(18, 500, 32)
	idx, err := apknn.Open(ds, apknn.WithBackend(apknn.Fast), apknn.WithCapacity(100))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(idx, Config{MaxBatch: 64, BatchWindow: time.Minute})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}
	queries := apknn.RandomQueries(19, nq, 32)
	exact := apknn.ExactSearch(ds, queries, 3, 2)

	var wg sync.WaitGroup
	errs := make([]error, nq)
	responses := make([]*SearchResponse, nq)
	for i := 0; i < nq; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = client.Search(context.Background(), queries[i], 3)
		}(i)
	}
	// Wait until all requests are inside the batcher (admitted and
	// counted), then close: the minute-long window means only the drain
	// flush can answer them.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Requests < nq && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	closeCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Close(closeCtx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := 0; i < nq; i++ {
		if errs[i] != nil {
			t.Fatalf("queued request %d lost to shutdown: %v", i, errs[i])
		}
		got := Neighbors(responses[i].Neighbors)
		for j := range exact[i] {
			if got[j] != exact[i][j] {
				t.Errorf("request %d rank %d: %+v, want %+v", i, j, got[j], exact[i][j])
			}
		}
	}
	st := srv.Stats()
	if st.FlushesOnClose != 1 {
		t.Errorf("FlushesOnClose = %d, want 1 (stats %+v)", st.FlushesOnClose, st)
	}
	// Late arrival: refused, not queued forever.
	if _, err := client.Search(context.Background(), queries[0], 3); err == nil {
		t.Error("request after Close succeeded, want 503")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != 503 {
			t.Errorf("request after Close: %v, want APIError 503", err)
		}
	}
}
