package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	apknn "repro"
	"repro/internal/obs"
)

// pollTraces retries a /v1/debug/traces lookup until the record appears:
// the recorder completes in a deferred hook that can run a beat after the
// response body reaches the client.
func pollTraces(t *testing.T, c *Client, query url.Values) *DebugTracesResponse {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for {
		dt, err := c.DebugTraces(ctx, query)
		if err != nil {
			t.Fatal(err)
		}
		if len(dt.Traces) > 0 {
			return dt
		}
		select {
		case <-ctx.Done():
			t.Fatalf("trace %v never reached the flight recorder", query)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestDebugTracesSpanTree drives one search through the full serving stack
// on the CPU backend and asserts the flight recorder serves its complete
// span tree: queue wait and flush assembly from the micro-batcher, the
// shared backend flush span, and the kernel scan nested inside it.
func TestDebugTracesSpanTree(t *testing.T) {
	ds := apknn.RandomDataset(11, 1500, 32)
	idx, err := apknn.Open(ds, apknn.WithBackend(apknn.CPU))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(idx, Config{Dim: ds.Dim(), NodeID: "debug-node"})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	client := &Client{BaseURL: ts.URL}

	q := apknn.RandomQueries(12, 1, 32)[0]
	ctx := obs.WithRequestID(context.Background(), "debug-e2e-1")
	if _, err := client.Search(ctx, q, 3); err != nil {
		t.Fatal(err)
	}

	dt := pollTraces(t, client, url.Values{"trace_id": {"debug-e2e-1"}})
	if dt.Node != "debug-node" || dt.Recorded < 1 {
		t.Fatalf("response header block = %+v", dt)
	}
	rec := dt.Traces[0]
	if rec.TraceID != "debug-e2e-1" || rec.Status != 200 {
		t.Fatalf("record = %+v", rec)
	}
	root := rec.Root
	if root.Name != "serve.search" || root.Attr("node") != "debug-node" {
		t.Fatalf("root = %+v", root)
	}
	for _, name := range []string{"queue_wait", "flush_assembly", "backend", "kernel_scan"} {
		if root.Find(name) == nil {
			t.Errorf("span %q missing from tree %+v", name, root)
		}
	}
	// The kernel scan must be nested inside the backend flush span, not a
	// root-level sibling — nesting is what attributes flush time.
	backend := root.Find("backend")
	if backend == nil || backend.Find("kernel_scan") == nil {
		t.Fatalf("kernel_scan is not a child of backend: %+v", backend)
	}
	if backend.Attr("flush_size") == "" {
		t.Errorf("backend span lost its flush_size attr: %v", backend.Attrs)
	}

	// Class listing and parameter validation.
	ctx2, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if dt, err := client.DebugTraces(ctx2, url.Values{"class": {obs.ClassRecent}}); err != nil || len(dt.Traces) == 0 {
		t.Fatalf("recent listing: %v (%d traces)", err, len(dt.Traces))
	}
	_, err = client.DebugTraces(ctx2, url.Values{"class": {"bogus"}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("bogus class gave %v, want 400", err)
	}
}

// TestDebugTracesShedClassification fills the admission gate and checks a
// 429 lands in the shed ring with its status preserved.
func TestDebugTracesShedClassification(t *testing.T) {
	client, srv, ds := newTestServer(t, Config{MaxInFlight: 1})
	_ = srv
	// Saturate: one slot, many concurrent requests — some must shed.
	q := apknn.RandomQueries(13, 1, ds.Dim())[0]
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shed := false
	for i := 0; i < 40 && !shed; i++ {
		done := make(chan struct{})
		go func() { client.Search(ctx, q, 3); close(done) }()
		if _, err := client.Search(ctx, q, 3); err != nil {
			var apiErr *APIError
			if errors.As(err, &apiErr) && apiErr.Status == 429 {
				shed = true
			}
		}
		<-done
	}
	if !shed {
		t.Skip("admission gate never refused under this scheduler; nothing to assert")
	}
	dt := pollTraces(t, client, url.Values{"class": {obs.ClassShed}})
	if dt.Traces[0].Status != 429 {
		t.Fatalf("shed record = %+v", dt.Traces[0])
	}
}
