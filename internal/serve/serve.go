// Package serve is the HTTP serving layer: it turns many concurrent
// single-query requests into the large coalesced batches the Automata
// Processor model rewards. The paper's evaluation (§II-A, §III-C) batches
// queries into one symbol stream so a configuration sweep is paid once per
// batch instead of once per query; an online service only sees one query
// per request, so a dynamic micro-batcher recreates the batch at the
// server: concurrent /v1/search requests coalesce into a single
// Index.Search call when either a size cap fills or a flush window
// expires. Around the batcher sit admission control (bounded in-flight
// requests, 429 + Retry-After when saturated), per-request context
// deadlines propagated into the shard worker pool, live counters on
// /v1/stats, and graceful shutdown that drains in-flight batches.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	apknn "repro"
	"repro/internal/heat"
	"repro/internal/obs"
)

// Config tunes a Server. The zero value serves with the defaults below.
type Config struct {
	// MaxBatch is the flush size cap: a forming batch is dispatched as
	// soon as this many queries are pending (default 32).
	MaxBatch int
	// BatchWindow is the flush deadline, measured from the first query of
	// a forming batch (default 2ms). Zero disables coalescing — every
	// query is served in its own backend call.
	BatchWindow time.Duration
	// MaxInFlight bounds admitted requests across /v1/search and
	// /v1/search_batch; excess requests are refused with 429 and a
	// Retry-After header (default 256). With SLOTargetP99 set it becomes
	// the ceiling of the adaptive limit rather than the limit itself.
	MaxInFlight int
	// MaxConcurrentFlushes bounds how many dispatched flushes may run
	// backend calls at once (apserve -max-flushes). The default 0 leaves
	// dispatch unbounded — the next batch forms while the backend streams
	// the current one. Bounding it models a backend with that many
	// independent execution slots (boards); when every slot is busy a
	// dispatched flush waits, and that wait is charged to its members'
	// queue wait — which makes backlog visible to the SLO controller
	// instead of hiding inside backend latency.
	MaxConcurrentFlushes int
	// SLOTargetP99, when positive, enables SLO-adaptive admission
	// (apserve -slo-p99): a controller watches the windowed queue-wait p99
	// and moves the in-flight limit AIMD-style between 1 and MaxInFlight,
	// shedding with 429 + a computed Retry-After before the tail breaches
	// this target. Zero keeps the static MaxInFlight behavior.
	SLOTargetP99 time.Duration
	// DefaultK answers requests that omit k (default 10).
	DefaultK int
	// Dim, when set, is the served dataset's dimensionality and lets the
	// handler refuse a wrong-length query with 400 before it is admitted.
	// Without it a bad-dimension query is only caught inside the backend
	// call, failing the whole coalesced flush it rode in — every innocent
	// rider of that batch would see the one bad client's error.
	Dim int
	// NodeID, when set, adds a node identity block to /v1/stats so a
	// cluster router can attribute aggregated per-shard numbers to this
	// process (see internal/cluster).
	NodeID string
	// Addr is the advertised listen address reported in the node block.
	Addr string
	// Vectors is the served dataset's size at boot, reported in the node
	// block; an index that exposes Len() (a live index) reports its current
	// size instead.
	Vectors int
	// SlowQueryLog, when non-nil, receives one structured record per request
	// whose end-to-end latency is at least SlowQuery, carrying the request ID
	// and the full per-stage breakdown. Nil disables slow-query logging (the
	// zero-value Config stays silent).
	SlowQueryLog *slog.Logger
	// SlowQuery is the slow-query threshold. With SlowQueryLog set, zero
	// means every request is logged — the trace-everything setting.
	SlowQuery time.Duration
	// TraceDepth is how many completed traces the always-on flight recorder
	// retains per class (recent, slow, error, shed, hedge); 0 uses
	// obs.DefaultTraceDepth. The recorder backs GET /v1/debug/traces.
	TraceDepth int
	// TraceSlowFactor classifies a request into the slow ring when its total
	// reaches this multiple of the windowed search p99 (0 = the obs default).
	TraceSlowFactor float64
	// AnomalyTarget, when positive together with DebugDir, arms the anomaly
	// watcher: a windowed search p99 breaching AnomalyFactor×AnomalyTarget
	// dumps a post-mortem bundle (retained traces, window summaries,
	// optional profiles) into DebugDir.
	AnomalyTarget time.Duration
	// AnomalyFactor is the breach multiple (0 = default 3).
	AnomalyFactor float64
	// DebugDir receives anomaly bundles (apserve passes -data-dir/debug).
	DebugDir string
	// AnomalyProfiles adds heap and goroutine pprof profiles to each bundle.
	AnomalyProfiles bool
	// AnomalyLog, when non-nil, gets one structured line per anomaly trip.
	AnomalyLog *slog.Logger
}

// DefaultBatchWindow is the flush deadline used when Config.BatchWindow is
// zero-valued via DefaultConfig — around 4 reconfiguration latencies of a
// Gen-2 board, long enough to coalesce a bursty arrival, short enough to
// stay invisible next to a configuration sweep.
const DefaultBatchWindow = 2 * time.Millisecond

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.DefaultK <= 0 {
		c.DefaultK = 10
	}
	return c
}

// DefaultConfig is the serving shape apserve starts with.
func DefaultConfig() Config {
	return Config{BatchWindow: DefaultBatchWindow}.withDefaults()
}

// Mutable is the write surface of a live index. apknn.LiveIndex implements
// it; a Server whose Index also implements Mutable serves /v1/insert and
// /v1/delete, otherwise those endpoints answer 501.
type Mutable interface {
	Insert(ctx context.Context, v apknn.Vector) (int, error)
	Delete(ctx context.Context, id int) error
}

// Server serves one compiled Index over the /v1 HTTP JSON API. Create it
// with New, mount Handler on any http.Server, and Close it to drain.
type Server struct {
	idx     apknn.Index
	mut     Mutable // non-nil when idx is a live index
	cfg     Config
	batcher *batcher
	// inflight/limit are the admission gate: a request is admitted while
	// inflight < limit. Static mode pins limit at MaxInFlight; with an SLO
	// target the controller is the only writer of limit.
	inflight atomic.Int64
	limit    atomic.Int64
	slo      *sloController // non-nil when cfg.SLOTargetP99 > 0
	heat     *heat.Tracker
	rec      *obs.FlightRecorder
	anomaly  *obs.AnomalyWatcher // non-nil when cfg.AnomalyTarget > 0 and DebugDir is set
	ctrs     counters
	closed   atomic.Bool
	mux      *http.ServeMux
	started  time.Time
}

// New builds a Server around an already-opened Index. The Index must be
// safe for concurrent use (every apknn backend is). An Index that also
// implements Mutable — apknn.OpenLive's — additionally gets the /v1/insert
// and /v1/delete endpoints.
func New(idx apknn.Index, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		idx:     idx,
		cfg:     cfg,
		heat:    heat.NewTracker(analyticsTopK),
		started: time.Now(),
	}
	s.limit.Store(int64(cfg.MaxInFlight))
	if cfg.SLOTargetP99 > 0 {
		s.slo = newSLOController(cfg.SLOTargetP99, &s.limit, &s.inflight, int64(cfg.MaxInFlight))
		go s.slo.run()
	}
	s.mut, _ = idx.(Mutable)
	s.batcher = newBatcher(idx, cfg.MaxBatch, cfg.BatchWindow, cfg.MaxConcurrentFlushes, &s.ctrs)
	s.rec = newFlightRecorder(cfg)
	if cfg.AnomalyTarget > 0 && cfg.DebugDir != "" {
		s.anomaly = obs.NewAnomalyWatcher(obs.AnomalyConfig{
			Target:   cfg.AnomalyTarget,
			Factor:   cfg.AnomalyFactor,
			Dir:      cfg.DebugDir,
			Profiles: cfg.AnomalyProfiles,
			Logger:   cfg.AnomalyLog,
		}, func(now time.Time) int64 {
			return searchHist.WindowSnapshot(now).Quantile(0.99)
		}, s.rec, obs.Default)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/search", s.handleSearch)
	s.mux.HandleFunc("/v1/search_batch", s.handleSearchBatch)
	s.mux.HandleFunc("/v1/insert", s.handleInsert)
	s.mux.HandleFunc("/v1/delete", s.handleDelete)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/analytics", s.handleAnalytics)
	s.mux.HandleFunc("/v1/debug/traces", s.handleDebugTraces)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the API handler, mountable on any http.Server or mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats snapshots the serving-layer counters, including the SLO
// controller's state block when adaptive admission is enabled.
func (s *Server) Stats() apknn.ServingStats {
	st := s.ctrs.snapshot()
	if s.slo != nil {
		st.SLO = s.slo.stats()
	}
	return st
}

// Index returns the served index, for callers that co-host the server and
// want the backend counters too.
func (s *Server) Index() apknn.Index { return s.idx }

// Close performs graceful shutdown of the serving layer: new requests are
// refused with 503, queued requests are flushed in one final batch, and
// the call waits — bounded by ctx — until every in-flight flush has
// delivered its responses. Call it after (not instead of) draining the
// HTTP listener with http.Server.Shutdown.
func (s *Server) Close(ctx context.Context) error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.slo != nil {
		s.slo.close()
	}
	if s.anomaly != nil {
		s.anomaly.Close()
	}
	return s.batcher.close(ctx)
}

// admit reserves an in-flight slot, answering 429 with Retry-After when
// the server is saturated and 503 when it is shutting down. The returned
// release func is non-nil iff admission succeeded. The gate is a CAS loop
// over the inflight counter against the (possibly controller-moved) limit,
// so admission stays lock-free in both modes.
func (s *Server) admit(w http.ResponseWriter) func() {
	if s.closed.Load() {
		WriteError(w, http.StatusServiceUnavailable, errClosed.Error())
		return nil
	}
	for {
		cur := s.inflight.Load()
		limit := s.limit.Load()
		if cur >= limit {
			s.ctrs.rejected.Add(1)
			if s.slo != nil {
				s.slo.shed.Add(1)
				// The adaptive shed computes Retry-After from the observed
				// queue-wait tail: by then the queue the client would have
				// joined has turned over.
				w.Header().Set("Retry-After", strconv.Itoa(s.slo.retryAfterSeconds()))
				WriteError(w, http.StatusTooManyRequests, fmt.Sprintf(
					"serve: shedding at %d in flight to hold queue-wait p99 under %s",
					limit, s.cfg.SLOTargetP99))
				return nil
			}
			// One batch window from now the queue has turned over at least
			// once; round up so the header stays meaningful at ms windows.
			retry := int(s.cfg.BatchWindow/time.Second) + 1
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			WriteError(w, http.StatusTooManyRequests,
				fmt.Sprintf("serve: %d requests already in flight", s.cfg.MaxInFlight))
			return nil
		}
		if s.inflight.CompareAndSwap(cur, cur+1) {
			if s.slo != nil {
				s.slo.admitted.Add(1)
			}
			return func() { s.inflight.Add(-1) }
		}
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	start := time.Now()
	sw := NewStatusRecorder(w)
	w = sw
	tr := s.beginTrace(w, r, "serve.search")
	defer s.observeRequest(searchHist, tr, start, sw)
	release := s.admit(w)
	if release == nil {
		return
	}
	defer release()

	var body SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		WriteError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	q, err := apknn.ParseVector(body.Query)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "bad query vector: "+err.Error())
		return
	}
	if s.cfg.Dim > 0 && q.Dim() != s.cfg.Dim {
		WriteError(w, http.StatusBadRequest, fmt.Sprintf(
			"query has %d bits, dataset has %d: %v", q.Dim(), s.cfg.Dim, apknn.ErrDimMismatch))
		return
	}
	k := body.K
	if k == 0 {
		k = s.cfg.DefaultK
	}
	if k < 0 {
		WriteError(w, http.StatusBadRequest, apknn.ErrBadK.Error())
		return
	}
	// Heat is tracked on the canonical vector form so "1011" and a padded
	// equivalent count as one key.
	s.heat.Observe(q.String())

	ctx := obs.WithTrace(obs.WithRequestID(r.Context(), tr.ID), tr)
	if body.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(body.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	req := &request{ctx: ctx, query: q, k: k, resp: make(chan response, 1),
		enqueued: time.Now(), trace: tr}
	if err := s.batcher.submit(req); err != nil {
		if errors.Is(err, errClosed) {
			WriteError(w, http.StatusServiceUnavailable, err.Error())
		} else {
			WriteError(w, statusFor(err), err.Error())
		}
		return
	}
	s.ctrs.requests.Add(1)
	// The handler returns the moment the request's own context ends — the
	// client's wait is bounded by its deadline, not by the flush that will
	// eventually discard the expired member.
	select {
	case resp := <-req.resp:
		if resp.err != nil {
			WriteError(w, statusFor(resp.err), resp.err.Error())
			return
		}
		WriteJSON(w, http.StatusOK, SearchResponse{
			Neighbors: toWire(resp.neighbors),
			FlushSize: resp.flushSize,
		})
	case <-ctx.Done():
		WriteError(w, http.StatusGatewayTimeout, ctx.Err().Error())
	}
}

func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	start := time.Now()
	sw := NewStatusRecorder(w)
	w = sw
	tr := s.beginTrace(w, r, "serve.search_batch")
	defer s.observeRequest(searchBatchHist, tr, start, sw)
	release := s.admit(w)
	if release == nil {
		return
	}
	defer release()

	var body SearchBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		WriteError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(body.Queries) == 0 {
		WriteError(w, http.StatusBadRequest, "empty query batch")
		return
	}
	queries := make([]apknn.Vector, len(body.Queries))
	for i, qs := range body.Queries {
		q, err := apknn.ParseVector(qs)
		if err != nil {
			WriteError(w, http.StatusBadRequest,
				fmt.Sprintf("bad query vector %d: %v", i, err))
			return
		}
		if s.cfg.Dim > 0 && q.Dim() != s.cfg.Dim {
			WriteError(w, http.StatusBadRequest, fmt.Sprintf(
				"query %d has %d bits, dataset has %d: %v", i, q.Dim(), s.cfg.Dim, apknn.ErrDimMismatch))
			return
		}
		queries[i] = q
		s.heat.Observe(q.String())
	}
	k := body.K
	if k == 0 {
		k = s.cfg.DefaultK
	}
	// A client-formed batch skips the micro-batcher, so the backend span is
	// opened here; backend-internal spans (kernel scan, delta scan) nest
	// under it via the context.
	ctx := obs.WithTrace(obs.WithRequestID(r.Context(), tr.ID), tr)
	bspan := obs.StartSpan(ctx, "backend")
	bspan.SetAttr("flush_size", strconv.Itoa(len(queries)))
	backendStart := time.Now()
	results, err := s.idx.Search(obs.WithSpan(ctx, bspan), queries, k)
	backendDur := time.Since(backendStart)
	bspan.EndIn(backendDur)
	backendHist.Record(backendDur)
	if err != nil {
		WriteError(w, statusFor(err), err.Error())
		return
	}
	s.ctrs.batchRequests.Add(1)
	out := SearchBatchResponse{Neighbors: make([][]Neighbor, len(results))}
	for i, ns := range results {
		out.Neighbors[i] = toWire(ns)
	}
	WriteJSON(w, http.StatusOK, out)
}

// handleInsert serves POST /v1/insert on a live index: the vector lands in
// the delta segment and is searchable the moment the response is written;
// the board reconfiguration is deferred to the next compaction.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := NewStatusRecorder(w)
	w = sw
	tr := s.beginTrace(w, r, "serve.insert")
	defer s.observeRequest(nil, tr, start, sw)
	mut, release := s.admitMutation(w, r)
	if release == nil {
		return
	}
	defer release()
	var body InsertRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		WriteError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	v, err := apknn.ParseVector(body.Vector)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "bad vector: "+err.Error())
		return
	}
	if s.cfg.Dim > 0 && v.Dim() != s.cfg.Dim {
		WriteError(w, http.StatusBadRequest, fmt.Sprintf(
			"vector has %d bits, dataset has %d: %v", v.Dim(), s.cfg.Dim, apknn.ErrDimMismatch))
		return
	}
	// The trace rides the context so the live index's WAL append lands as a
	// span in this tree.
	id, err := mut.Insert(obs.WithTrace(obs.WithRequestID(r.Context(), tr.ID), tr), v)
	if err != nil {
		WriteError(w, statusFor(err), err.Error())
		return
	}
	s.ctrs.inserts.Add(1)
	WriteJSON(w, http.StatusOK, InsertResponse{ID: id})
}

// handleDelete serves POST /v1/delete on a live index: the ID is
// tombstoned and stops appearing in results immediately; storage is
// reclaimed by the next compaction.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := NewStatusRecorder(w)
	w = sw
	tr := s.beginTrace(w, r, "serve.delete")
	defer s.observeRequest(nil, tr, start, sw)
	mut, release := s.admitMutation(w, r)
	if release == nil {
		return
	}
	defer release()
	var body DeleteRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		WriteError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if err := mut.Delete(obs.WithTrace(obs.WithRequestID(r.Context(), tr.ID), tr), body.ID); err != nil {
		WriteError(w, statusFor(err), err.Error())
		return
	}
	s.ctrs.deletes.Add(1)
	WriteJSON(w, http.StatusOK, DeleteResponse{ID: body.ID, Deleted: true})
}

// admitMutation is the shared front door of the mutation endpoints: POST
// only, 501 when the served index is not live, then the same admission
// control searches pass through.
func (s *Server) admitMutation(w http.ResponseWriter, r *http.Request) (Mutable, func()) {
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, "POST only")
		return nil, nil
	}
	if s.mut == nil {
		WriteError(w, http.StatusNotImplemented,
			"index is not live: start apserve with -live to enable mutations")
		return nil, nil
	}
	release := s.admit(w)
	if release == nil {
		return nil, nil
	}
	return s.mut, release
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	WriteJSON(w, http.StatusOK, StatsResponse{
		Backend:       s.idx.Stats(),
		Serving:       s.Stats(),
		ModeledTimeNS: int64(s.idx.ModeledTime()),
		Node:          s.nodeInfo(),
		Latency:       LatencySummaries(),
		LatencyWindow: WindowLatencySummaries(time.Now()),
	})
}

// analyticsTopK is how many hot queries /v1/analytics reports.
const analyticsTopK = 10

// handleAnalytics serves GET /v1/analytics: the query-heat block (top
// queries by frequency with space-saving error bounds) plus this node's
// load counters — the signal a hot-query cache or a shard-split advisor
// consumes, and what aprouter aggregates across the fleet.
func (s *Server) handleAnalytics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.idx.Stats()
	load := ShardLoad{
		Queries:           st.Queries,
		Batches:           st.Batches,
		CandidatesScanned: st.CandidatesScanned,
		BytesScanned:      st.CandidatesScanned * int64(vectorBytes(s.cfg.Dim)),
	}
	if st.Live != nil {
		load.DeltaSize = st.Live.DeltaSize
	}
	if sized, ok := s.idx.(interface{ Len() int }); ok {
		load.Vectors = sized.Len()
	} else {
		load.Vectors = s.cfg.Vectors
	}
	top := s.heat.Top(analyticsTopK)
	hot := make([]HotQuery, len(top))
	for i, e := range top {
		hot[i] = HotQuery{Key: e.Key, Count: e.Count, Err: e.Err}
	}
	WriteJSON(w, http.StatusOK, AnalyticsResponse{
		Node:            s.nodeInfo(),
		QueriesObserved: s.heat.Total(),
		TopQueries:      hot,
		Load:            load,
	})
}

// vectorBytes is the packed size of one dim-bit vector — the per-candidate
// cost a scan pays, used to convert candidates scanned into bytes scanned.
// An unconfigured dim reports zero rather than guessing.
func vectorBytes(dim int) int {
	if dim <= 0 {
		return 0
	}
	return (dim + 63) / 64 * 8
}

// nodeInfo builds the /v1/stats identity block, nil when the server has no
// cluster identity configured.
func (s *Server) nodeInfo() *NodeInfo {
	if s.cfg.NodeID == "" {
		return nil
	}
	vectors := s.cfg.Vectors
	if sized, ok := s.idx.(interface{ Len() int }); ok {
		vectors = sized.Len()
	}
	idSpace := vectors
	if hw, ok := s.idx.(interface{ NextID() int }); ok {
		idSpace = hw.NextID()
	}
	return &NodeInfo{
		ID:       s.cfg.NodeID,
		Addr:     s.cfg.Addr,
		UptimeNS: time.Since(s.started).Nanoseconds(),
		Vectors:  vectors,
		IDSpace:  idSpace,
		Dim:      s.cfg.Dim,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	status := "ok"
	code := http.StatusOK
	if s.closed.Load() {
		status = "shutting down"
		code = http.StatusServiceUnavailable
	}
	st := s.idx.Stats()
	WriteJSON(w, code, HealthResponse{
		Status:  status,
		Backend: string(st.Backend),
		Boards:  st.Boards,
	})
}

// statusFor maps engine errors onto HTTP statuses: caller mistakes are
// 400s, a missing ID is 404, deadline/cancellation is 504, anything else
// is a 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, apknn.ErrDimMismatch), errors.Is(err, apknn.ErrBadK):
		return http.StatusBadRequest
	case errors.Is(err, apknn.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, apknn.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// WriteJSON writes v as indented JSON with the given status — the one
// response-writing convention of the /v1 wire format, shared with the
// cluster router so both tiers emit byte-identical envelopes.
func WriteJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// WriteError writes the error envelope serve.Client's decoding expects.
func WriteError(w http.ResponseWriter, code int, msg string) {
	WriteJSON(w, code, errorResponse{Error: msg})
}
