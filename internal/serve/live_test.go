package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	apknn "repro"
)

// newLiveTestServer serves an OpenLive index over an in-process listener.
func newLiveTestServer(t *testing.T, opts ...apknn.Option) (*Client, *Server, *apknn.LiveIndex, *apknn.Dataset) {
	t.Helper()
	ds := apknn.RandomDataset(17, 500, 32)
	opts = append([]apknn.Option{apknn.WithBackend(apknn.Fast)}, opts...)
	idx, err := apknn.OpenLive(ds, opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(idx, Config{Dim: ds.Dim(), BatchWindow: 0})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := idx.Close(); err != nil {
			t.Errorf("index close: %v", err)
		}
	})
	return &Client{BaseURL: ts.URL}, srv, idx, ds
}

// TestInsertSearchDeleteLifecycle drives the full mutation lifecycle over
// real HTTP: an inserted vector becomes searchable at distance zero, a
// delete makes it vanish, and the counters record both.
func TestInsertSearchDeleteLifecycle(t *testing.T) {
	client, srv, _, ds := newLiveTestServer(t)
	ctx := context.Background()
	v := apknn.RandomQueries(99, 1, 32)[0]

	id, err := client.Insert(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	if id != ds.Len() {
		t.Fatalf("inserted id = %d, want %d (first past the seed)", id, ds.Len())
	}
	found := func() bool {
		resp, err := client.Search(ctx, v, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range resp.Neighbors {
			if n.ID == id {
				if n.Dist != 0 {
					t.Fatalf("inserted vector at distance %d", n.Dist)
				}
				return true
			}
		}
		return false
	}
	if !found() {
		t.Fatal("inserted vector not returned by search")
	}
	if err := client.Delete(ctx, id); err != nil {
		t.Fatal(err)
	}
	if found() {
		t.Fatal("deleted vector still returned by search")
	}
	// Deleting again is a 404 that errors.As can unpack.
	err = client.Delete(ctx, id)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("double delete: got %v, want 404 APIError", err)
	}
	st := srv.Stats()
	if st.Inserts != 1 || st.Deletes != 1 {
		t.Fatalf("serving counters: %+v", st)
	}
	var stats *StatsResponse
	if stats, err = client.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	if stats.Backend.Live == nil {
		t.Fatal("stats missing live block")
	}
	if stats.Backend.Live.Inserts != 1 || stats.Backend.Live.Deletes != 1 {
		t.Fatalf("live stats: %+v", stats.Backend.Live)
	}
}

// TestMutationsOnStaticIndexAnswer501 pins the non-live behavior: the
// endpoints exist but refuse with 501 and a pointer at -live.
func TestMutationsOnStaticIndexAnswer501(t *testing.T) {
	client, _, _ := newTestServer(t, Config{})
	ctx := context.Background()
	v := apknn.RandomQueries(99, 1, 32)[0]
	_, err := client.Insert(ctx, v)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotImplemented {
		t.Fatalf("insert on static index: got %v, want 501", err)
	}
	if err := client.Delete(ctx, 0); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotImplemented {
		t.Fatalf("delete on static index: got %v, want 501", err)
	}
}

// TestInsertValidation covers the handler's reject paths: bad JSON, bad
// bit strings, wrong dimensionality.
func TestInsertValidation(t *testing.T) {
	client, _, _, _ := newLiveTestServer(t)
	ctx := context.Background()
	var apiErr *APIError

	_, err := client.Insert(ctx, apknn.RandomQueries(1, 1, 64)[0]) // wrong dim
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("wrong-dim insert: got %v, want 400", err)
	}
	resp, err := http.Post(client.BaseURL+"/v1/insert", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body insert: HTTP %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(client.BaseURL + "/v1/insert")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET insert: HTTP %d, want 405", resp.StatusCode)
	}
}

// TestLiveServedSearchMatchesExact checks the serving path end to end
// after churn: post-insert/delete searches through the micro-batcher are
// byte-identical to an exact scan of the mutated vector set.
func TestLiveServedSearchMatchesExact(t *testing.T) {
	client, _, idx, ds := newLiveTestServer(t, apknn.WithCompactThreshold(-1))
	ctx := context.Background()
	const k = 5

	// Mirror dataset: seed plus inserts, minus one deleted seed vector.
	inserts := apknn.RandomQueries(55, 20, 32)
	for _, v := range inserts {
		if _, err := client.Insert(ctx, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Delete(ctx, 3); err != nil {
		t.Fatal(err)
	}
	mirror := apknn.RandomDataset(1, 0, 32)
	ids := []int{}
	for i := 0; i < ds.Len(); i++ {
		if i == 3 {
			continue
		}
		mirror.Append(ds.At(i))
		ids = append(ids, i)
	}
	for j, v := range inserts {
		mirror.Append(v)
		ids = append(ids, ds.Len()+j)
	}
	queries := apknn.RandomQueries(56, 6, 32)
	exact := apknn.ExactSearch(mirror, queries, k, 2)
	for qi, q := range queries {
		resp, err := client.Search(ctx, q, k)
		if err != nil {
			t.Fatal(err)
		}
		got := Neighbors(resp.Neighbors)
		if len(got) != len(exact[qi]) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(exact[qi]))
		}
		for j := range got {
			want := apknn.Neighbor{ID: ids[exact[qi][j].ID], Dist: exact[qi][j].Dist}
			if got[j] != want {
				t.Fatalf("query %d rank %d: got %v, want %v", qi, j, got[j], want)
			}
		}
	}
	// Compact and re-verify: the served results must not change shape.
	if err := idx.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		resp, err := client.Search(ctx, q, k)
		if err != nil {
			t.Fatal(err)
		}
		got := Neighbors(resp.Neighbors)
		for j := range got {
			want := apknn.Neighbor{ID: ids[exact[qi][j].ID], Dist: exact[qi][j].Dist}
			if got[j] != want {
				t.Fatalf("post-compact query %d rank %d: got %v, want %v", qi, j, got[j], want)
			}
		}
	}
}
