package serve

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	apknn "repro"
	"repro/internal/obs"
)

// The serving tier's latency histograms. All of them live on obs.Default, so
// GET /metrics and the /v1/stats latency block read the same series the hot
// path records into.
var (
	// searchHist is the end-to-end /v1/search handler latency: admission,
	// queue wait, flush, response write — what the client actually waited.
	searchHist = obs.NewHistogram("apknn_serve_search_seconds",
		"End-to-end /v1/search request latency")
	// searchBatchHist is the end-to-end /v1/search_batch handler latency.
	searchBatchHist = obs.NewHistogram("apknn_serve_search_batch_seconds",
		"End-to-end /v1/search_batch request latency")
	// queueHist is each coalesced request's wait between submission and its
	// flush starting — the latency cost the batch window charges per query.
	queueHist = obs.NewHistogram("apknn_serve_queue_seconds",
		"Micro-batcher queue wait per coalesced request")
	// assemblyHist is each flush's assembly span: first member enqueued to
	// flush dispatch — how long the batch took to form.
	assemblyHist = obs.NewHistogram("apknn_serve_flush_assembly_seconds",
		"Micro-batch assembly time from first enqueue to flush dispatch")
	// backendHist is the coalesced Index.Search call itself.
	backendHist = obs.NewHistogram("apknn_serve_backend_seconds",
		"Backend Index.Search latency per micro-batch flush")
)

// LatencySummaries condenses every metric that has recorded at least one
// sample into the /v1/stats latency block.
func LatencySummaries() map[string]apknn.LatencySummary {
	return toLatencySummaries(obs.Default.Summaries())
}

// WindowLatencySummaries is LatencySummaries over roughly the last minute
// (each histogram's built-in 6×10s window) — the /v1/stats latency_1m
// block, shared with the cluster router.
func WindowLatencySummaries(now time.Time) map[string]apknn.LatencySummary {
	return toLatencySummaries(obs.Default.WindowSummaries(now))
}

func toLatencySummaries(sums map[string]obs.Summary) map[string]apknn.LatencySummary {
	out := make(map[string]apknn.LatencySummary, len(sums))
	for name, s := range sums {
		out[name] = apknn.LatencySummary{
			Count: s.Count, MeanNS: s.MeanNS,
			P50NS: s.P50NS, P90NS: s.P90NS, P99NS: s.P99NS, MaxNS: s.MaxNS,
		}
	}
	return out
}

// handleMetrics serves GET /metrics in Prometheus text exposition: every
// histogram on the default registry, then the serving-layer counters. The
// counters are the same atomics /v1/stats snapshots — one source of truth,
// two surfaces.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	obs.SetMetricsHeaders(w)
	obs.WriteBuildInfo(w)
	obs.Default.WritePrometheus(w)
	obs.Default.WriteWindowed(w, time.Now())
	obs.WriteCounter(w, "apknn_debug_traces_recorded_total",
		"Traces completed into the flight recorder", s.rec.Recorded())
	if s.anomaly != nil {
		obs.WriteCounter(w, "apknn_anomaly_dumps_total",
			"Anomaly bundles dumped to the debug directory", s.anomaly.Trips())
	}
	st := s.ctrs.snapshot()
	obs.WriteCounter(w, "apknn_serve_requests_total",
		"Requests admitted into the micro-batcher via /v1/search", st.Requests)
	obs.WriteCounter(w, "apknn_serve_batch_requests_total",
		"Client-formed batches served via /v1/search_batch", st.BatchRequests)
	obs.WriteCounter(w, "apknn_serve_coalesced_total",
		"Requests that shared a flush with at least one other request", st.Coalesced)
	obs.WriteCounter(w, "apknn_serve_flushes_total",
		"Coalesced backend calls issued by the micro-batcher", st.Flushes)
	obs.WriteCounter(w, "apknn_serve_rejected_total",
		"Requests refused with 429 by admission control", st.Rejected)
	obs.WriteCounter(w, "apknn_serve_expired_total",
		"Requests whose context ended while queued", st.Expired)
	obs.WriteCounter(w, "apknn_serve_inserts_total",
		"Vectors accepted via /v1/insert", st.Inserts)
	obs.WriteCounter(w, "apknn_serve_deletes_total",
		"Tombstones accepted via /v1/delete", st.Deletes)
	bst := s.idx.Stats()
	obs.WriteCounter(w, "apknn_backend_queries_total",
		"Queries answered by the backend index", bst.Queries)
	obs.WriteCounter(w, "apknn_backend_batches_total",
		"Batches answered by the backend index", bst.Batches)
	obs.WriteGauge(w, "apknn_serve_inflight",
		"Requests currently holding an admission slot", float64(s.inflight.Load()))
	obs.WriteGauge(w, "apknn_serve_inflight_limit",
		"Current admission limit (static cap, or the SLO controller's dynamic limit)",
		float64(s.limit.Load()))
	if s.slo != nil {
		slo := s.slo.stats()
		obs.WriteGauge(w, "apknn_slo_target_p99_seconds",
			"Queue-wait p99 target the admission controller holds", float64(slo.TargetP99NS)/1e9)
		obs.WriteGauge(w, "apknn_slo_observed_p99_seconds",
			"Windowed queue-wait p99 at the last control tick", float64(slo.ObservedP99NS)/1e9)
		obs.WriteGauge(w, "apknn_slo_limit",
			"Current SLO-adaptive in-flight limit", float64(slo.Limit))
		obs.WriteGauge(w, "apknn_slo_shed_rate",
			"Smoothed fraction of arrivals shed with 429", slo.ShedRate)
	}
}

// observeRequest finishes one traced request: the end-to-end histogram
// record (h may be nil for endpoints without one), the root span's end, the
// flight-recorder completion, and — when the request overran the configured
// threshold — one structured slow-query line with the full stage breakdown.
func (s *Server) observeRequest(h *obs.Histogram, tr *obs.Trace, start time.Time, sw *StatusRecorder) {
	total := time.Since(start)
	if h != nil {
		h.Record(total)
	}
	tr.Root().EndIn(total)
	s.rec.Complete(tr, total, obs.Outcome{Status: sw.Status(), Err: sw.ErrorBody()})
	lg := s.cfg.SlowQueryLog
	if lg == nil || total < s.cfg.SlowQuery {
		return
	}
	lg.LogAttrs(context.Background(), slog.LevelWarn, "slow query", tr.Attrs(total)...)
}

// beginTrace opens the span tree for one request: the (sanitized) request
// ID is assigned and echoed, and an incoming X-Trace-Context — the router's
// scatter legs send one per attempt — makes this tree a child of the
// caller's: same trace ID, parent span ID retained for stitching.
func (s *Server) beginTrace(w http.ResponseWriter, r *http.Request, rootName string) *obs.Trace {
	id := ensureRequestID(w, r)
	traceID, parent := id, ""
	if tid, sid, ok := obs.ParseTraceContext(r.Header.Get(obs.TraceContextHeader)); ok {
		traceID, parent = tid, sid
	}
	tr := obs.NewTrace(traceID, rootName)
	root := tr.Root()
	if s.cfg.NodeID != "" {
		root.SetAttr("node", s.cfg.NodeID)
	}
	if id != traceID {
		root.SetAttr("request_id", id)
	}
	if parent != "" {
		root.SetAttr("parent_span_id", parent)
	}
	return tr
}

// ensureRequestID reads the caller's request ID, sanitizes it (length cap
// plus charset whitelist, so a hostile header cannot forge fields in the
// structured log stream), assigns a fresh one when absent or empty after
// filtering, and echoes it on the response — so every answer names the ID
// that will appear in any slow-query log line it produced.
func ensureRequestID(w http.ResponseWriter, r *http.Request) string {
	id := obs.SanitizeRequestID(r.Header.Get(obs.RequestIDHeader))
	if id == "" {
		id = obs.NewRequestID()
	}
	w.Header().Set(obs.RequestIDHeader, id)
	return id
}
