package serve

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// StatusRecorder wraps a ResponseWriter to capture the final status code
// and, for error answers, a bounded copy of the body — what the flight
// recorder needs to classify a finished request (shed vs errored vs ok)
// without coupling the handlers to the recorder. Shared with the cluster
// router so both tiers classify identically.
type StatusRecorder struct {
	http.ResponseWriter
	status  int
	errBody []byte
}

// NewStatusRecorder wraps w; handlers must write through the wrapper.
func NewStatusRecorder(w http.ResponseWriter) *StatusRecorder {
	return &StatusRecorder{ResponseWriter: w}
}

func (w *StatusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// errBodyCap bounds how much of an error body a trace record retains.
const errBodyCap = 256

func (w *StatusRecorder) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	if w.status >= http.StatusBadRequest && len(w.errBody) < errBodyCap {
		take := errBodyCap - len(w.errBody)
		if take > len(p) {
			take = len(p)
		}
		w.errBody = append(w.errBody, p[:take]...)
	}
	return w.ResponseWriter.Write(p)
}

// Status returns the written status, 200 when the handler never set one.
func (w *StatusRecorder) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// ErrorBody returns the captured (bounded, trimmed) error body, "" for
// successful answers.
func (w *StatusRecorder) ErrorBody() string {
	return strings.TrimSpace(string(w.errBody))
}

// validTraceClass reports whether class names a flight-recorder ring.
func validTraceClass(class string) bool {
	for _, c := range obs.Classes {
		if c == class {
			return true
		}
	}
	return false
}

// handleDebugTraces serves GET /v1/debug/traces: the node's flight
// recorder. ?trace_id= returns every retained record of one trace;
// otherwise ?class= (default recent) and ?n= select a newest-first listing.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	resp := DebugTracesResponse{
		Node:     s.cfg.NodeID,
		Depth:    s.rec.Depth(),
		Recorded: s.rec.Recorded(),
		Classes:  s.rec.ClassCounts(),
	}
	if id := obs.SanitizeRequestID(q.Get("trace_id")); id != "" {
		resp.Traces = s.rec.ByTraceID(id)
	} else {
		class := q.Get("class")
		if class == "" {
			class = obs.ClassRecent
		}
		if !validTraceClass(class) {
			WriteError(w, http.StatusBadRequest,
				"unknown trace class "+strconv.Quote(class)+": one of "+strings.Join(obs.Classes, "|"))
			return
		}
		n, _ := strconv.Atoi(q.Get("n"))
		resp.Traces = s.rec.Class(class, n)
	}
	WriteJSON(w, http.StatusOK, resp)
}

// newFlightRecorder builds the serving tier's recorder: the slow classifier
// compares each request against the windowed end-to-end search p99.
func newFlightRecorder(cfg Config) *obs.FlightRecorder {
	node := cfg.NodeID
	if node == "" {
		node = cfg.Addr
	}
	return obs.NewFlightRecorder(node, cfg.TraceDepth, cfg.TraceSlowFactor,
		func(now time.Time) int64 {
			return searchHist.WindowSnapshot(now).Quantile(0.99)
		})
}
