package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	apknn "repro"
)

// ErrSaturated reports a request refused by the server's admission control
// (HTTP 429). Match with errors.Is; the wrapping APIError carries the
// suggested Retry-After delay.
var ErrSaturated = errors.New("serve: server saturated")

// APIError is a non-2xx answer from an apserve instance.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error string.
	Message string
	// RetryAfter is the server's suggested backoff on 429, zero otherwise.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Status, e.Message)
}

// Unwrap lets errors.Is(err, ErrSaturated) match a 429.
func (e *APIError) Unwrap() error {
	if e.Status == http.StatusTooManyRequests {
		return ErrSaturated
	}
	return nil
}

// Client talks to an apserve instance. The zero value is not usable; set
// BaseURL ("http://host:port", no trailing slash needed). Methods are safe
// for concurrent use — the load generator drives one Client from many
// goroutines.
type Client struct {
	// BaseURL locates the server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when non-nil.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Search asks for the k nearest neighbors of one query through the
// server's micro-batcher, returning the hits and the realized flush size
// the query was coalesced into.
func (c *Client) Search(ctx context.Context, q apknn.Vector, k int) (*SearchResponse, error) {
	var out SearchResponse
	err := c.do(ctx, http.MethodPost, "/v1/search",
		SearchRequest{Query: q.String(), K: k}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// SearchBatch sends a client-formed batch, answered in one backend call.
func (c *Client) SearchBatch(ctx context.Context, queries []apknn.Vector, k int) ([][]apknn.Neighbor, error) {
	req := SearchBatchRequest{Queries: make([]string, len(queries)), K: k}
	for i, q := range queries {
		req.Queries[i] = q.String()
	}
	var out SearchBatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/search_batch", req, &out); err != nil {
		return nil, err
	}
	results := make([][]apknn.Neighbor, len(out.Neighbors))
	for i, ns := range out.Neighbors {
		results[i] = Neighbors(ns)
	}
	return results, nil
}

// Insert adds one vector to a live apserve instance and returns the global
// ID it was assigned. A server not started with -live answers 501.
func (c *Client) Insert(ctx context.Context, v apknn.Vector) (int, error) {
	var out InsertResponse
	if err := c.do(ctx, http.MethodPost, "/v1/insert", InsertRequest{Vector: v.String()}, &out); err != nil {
		return 0, err
	}
	return out.ID, nil
}

// Delete tombstones the vector with the given global ID on a live apserve
// instance. An unknown or already-deleted ID is an *APIError with Status
// 404.
func (c *Client) Delete(ctx context.Context, id int) error {
	var out DeleteResponse
	return c.do(ctx, http.MethodPost, "/v1/delete", DeleteRequest{ID: id}, &out)
}

// Stats fetches the live backend and serving-layer counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (c *Client) do(ctx context.Context, method, path string, body, out interface{}) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("serve: encode request: %w", err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("serve: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{Status: resp.StatusCode}
		var eresp errorResponse
		if json.NewDecoder(resp.Body).Decode(&eresp) == nil {
			apiErr.Message = eresp.Error
		}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
		return apiErr
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serve: decode response: %w", err)
	}
	return nil
}
