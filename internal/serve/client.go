package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	apknn "repro"
	"repro/internal/obs"
)

// ErrSaturated reports a request refused by the server's admission control
// (HTTP 429). Match with errors.Is; the wrapping APIError carries the
// suggested Retry-After delay.
var ErrSaturated = errors.New("serve: server saturated")

// APIError is a non-2xx answer from an apserve instance.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error string.
	Message string
	// RetryAfter is the server's suggested backoff on 429, zero otherwise.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Status, e.Message)
}

// Unwrap lets errors.Is(err, ErrSaturated) match a 429.
func (e *APIError) Unwrap() error {
	if e.Status == http.StatusTooManyRequests {
		return ErrSaturated
	}
	return nil
}

// Client talks to an apserve instance. The zero value is not usable; set
// BaseURL ("http://host:port", no trailing slash needed). Methods are safe
// for concurrent use — the load generator drives one Client from many
// goroutines.
type Client struct {
	// BaseURL locates the server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when non-nil.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Search asks for the k nearest neighbors of one query through the
// server's micro-batcher, returning the hits and the realized flush size
// the query was coalesced into.
func (c *Client) Search(ctx context.Context, q apknn.Vector, k int) (*SearchResponse, error) {
	var out SearchResponse
	err := c.do(ctx, http.MethodPost, "/v1/search",
		SearchRequest{Query: q.String(), K: k}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// SearchBatch sends a client-formed batch, answered in one backend call.
func (c *Client) SearchBatch(ctx context.Context, queries []apknn.Vector, k int) ([][]apknn.Neighbor, error) {
	req := SearchBatchRequest{Queries: make([]string, len(queries)), K: k}
	for i, q := range queries {
		req.Queries[i] = q.String()
	}
	var out SearchBatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/search_batch", req, &out); err != nil {
		return nil, err
	}
	results := make([][]apknn.Neighbor, len(out.Neighbors))
	for i, ns := range out.Neighbors {
		results[i] = Neighbors(ns)
	}
	return results, nil
}

// Insert adds one vector to a live apserve instance and returns the global
// ID it was assigned. A server not started with -live answers 501.
func (c *Client) Insert(ctx context.Context, v apknn.Vector) (int, error) {
	var out InsertResponse
	if err := c.do(ctx, http.MethodPost, "/v1/insert", InsertRequest{Vector: v.String()}, &out); err != nil {
		return 0, err
	}
	return out.ID, nil
}

// Delete tombstones the vector with the given global ID on a live apserve
// instance. An unknown or already-deleted ID is an *APIError with Status
// 404.
func (c *Client) Delete(ctx context.Context, id int) error {
	var out DeleteResponse
	return c.do(ctx, http.MethodPost, "/v1/delete", DeleteRequest{ID: id}, &out)
}

// Stats fetches the live backend and serving-layer counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Analytics fetches the node's query-heat block: top queries by frequency
// and per-shard load counters.
func (c *Client) Analytics(ctx context.Context) (*AnalyticsResponse, error) {
	var out AnalyticsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/analytics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DebugTraces fetches the node's flight recorder. query selects the view
// (class=, n=, trace_id= — see DebugTracesResponse); nil lists the recent
// ring. The router's stitcher uses the trace_id form against shards.
func (c *Client) DebugTraces(ctx context.Context, query url.Values) (*DebugTracesResponse, error) {
	path := "/v1/debug/traces"
	if len(query) > 0 {
		path += "?" + query.Encode()
	}
	var out DebugTracesResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Do issues one request against the server and decodes the JSON answer
// into out. It is the raw building block under the typed methods, exported
// for callers — the cluster router — that speak the wire types directly.
// Non-2xx answers return an *APIError with any Retry-After suggestion
// parsed (both the delay-seconds and HTTP-date forms RFC 9110 allows).
func (c *Client) Do(ctx context.Context, method, path string, body, out interface{}) error {
	return c.do(ctx, method, path, body, out)
}

// RetryPolicy bounds DoRetry's retry loop on saturation answers.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first included (default 3).
	MaxAttempts int
	// BaseDelay is the first backoff used when the server suggests no
	// Retry-After; it doubles per retry (default 5ms).
	BaseDelay time.Duration
	// MaxDelay clamps both the backoff and the server's Retry-After
	// suggestion (default 1s).
	MaxDelay time.Duration
	// OnRetry, when non-nil, observes every scheduled retry before its wait
	// — the cluster router counts these into ClusterStats.
	OnRetry func(attempt int, err error, wait time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// retriable reports whether status is worth re-asking the same server:
// admission-control saturation (429) and shutdown-window refusals (503).
// Everything else — caller mistakes, genuine server faults — returns to the
// caller unchanged.
func (p RetryPolicy) retriable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// DoRetry is Do with bounded retry/backoff on saturation: a 429 or 503
// answer is retried after the server's Retry-After suggestion, falling back
// to exponential backoff from BaseDelay, until MaxAttempts is exhausted or
// ctx ends. The last error is returned verbatim, so errors.Is(err,
// ErrSaturated) still matches a server that stayed saturated throughout.
func (c *Client) DoRetry(ctx context.Context, method, path string, body, out interface{}, p RetryPolicy) error {
	p = p.withDefaults()
	backoff := p.BaseDelay
	for attempt := 1; ; attempt++ {
		err := c.Do(ctx, method, path, body, out)
		var apiErr *APIError
		if err == nil || !errors.As(err, &apiErr) || !p.retriable(apiErr.Status) || attempt >= p.MaxAttempts {
			return err
		}
		wait := apiErr.RetryAfter
		if wait <= 0 {
			wait = backoff
			backoff *= 2
		}
		if wait > p.MaxDelay {
			wait = p.MaxDelay
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, wait)
		}
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return fmt.Errorf("serve: retry wait: %w", ctx.Err())
		}
	}
}

// parseRetryAfter interprets a Retry-After header value in either form RFC
// 9110 allows — delay-seconds or an HTTP-date — relative to now. Absent,
// malformed, or already-elapsed values come back as zero.
func parseRetryAfter(h string, now time.Time) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

func (c *Client) do(ctx context.Context, method, path string, body, out interface{}) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("serve: encode request: %w", err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("serve: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// A request ID attached to the context travels upstream — this is how
	// aprouter's scatter legs carry the caller's ID to every shard.
	if id := obs.RequestID(ctx); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	// Span parentage travels the same way: the router attaches one trace
	// context per scatter attempt, so the shard's tree records which leg
	// span it hangs under.
	if tid, sid, ok := obs.TraceContext(ctx); ok {
		req.Header.Set(obs.TraceContextHeader, obs.FormatTraceContext(tid, sid))
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{Status: resp.StatusCode}
		var eresp errorResponse
		if json.NewDecoder(resp.Body).Decode(&eresp) == nil {
			apiErr.Message = eresp.Error
		}
		apiErr.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
		return apiErr
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serve: decode response: %w", err)
	}
	return nil
}
