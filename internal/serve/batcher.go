package serve

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	apknn "repro"
	"repro/internal/aperr"
	"repro/internal/obs"
)

// errClosed reports a submit racing a graceful shutdown; the handler maps
// it to 503.
var errClosed = errors.New("serve: server is shutting down")

// request is one admitted /v1/search query waiting to be coalesced.
type request struct {
	ctx   context.Context
	query apknn.Vector
	k     int
	// resp receives exactly one response; buffered so a flush never blocks
	// on a handler that already hung up.
	resp chan response
	// enqueued marks submission time; the flush subtracts it to charge each
	// member its queue wait.
	enqueued time.Time
	// trace is the request's span recorder; nil when untraced.
	trace *obs.Trace
}

type response struct {
	neighbors []apknn.Neighbor
	// flushSize is the realized batch this query rode in — the number the
	// benchmark sweeps exist to maximize.
	flushSize int
	err       error
}

// flushCause records what forced a flush; /v1/stats reports the split.
type flushCause int

const (
	flushBySize flushCause = iota
	flushByDeadline
	flushOnClose
)

func (c flushCause) String() string {
	switch c {
	case flushBySize:
		return "size"
	case flushByDeadline:
		return "deadline"
	default:
		return "close"
	}
}

// counters is the atomically updated backing store for ServingStats.
type counters struct {
	requests        atomic.Int64
	batchRequests   atomic.Int64
	coalesced       atomic.Int64
	flushes         atomic.Int64
	flushesSize     atomic.Int64
	flushesDeadline atomic.Int64
	flushesClose    atomic.Int64
	rejected        atomic.Int64
	expired         atomic.Int64
	batchedQueries  atomic.Int64
	inserts         atomic.Int64
	deletes         atomic.Int64
}

func (c *counters) snapshot() apknn.ServingStats {
	st := apknn.ServingStats{
		Requests:          c.requests.Load(),
		BatchRequests:     c.batchRequests.Load(),
		Coalesced:         c.coalesced.Load(),
		Flushes:           c.flushes.Load(),
		FlushesBySize:     c.flushesSize.Load(),
		FlushesByDeadline: c.flushesDeadline.Load(),
		FlushesOnClose:    c.flushesClose.Load(),
		Rejected:          c.rejected.Load(),
		Expired:           c.expired.Load(),
		Inserts:           c.inserts.Load(),
		Deletes:           c.deletes.Load(),
	}
	if st.Flushes > 0 {
		st.MeanBatch = float64(c.batchedQueries.Load()) / float64(st.Flushes)
	}
	return st
}

// batcher coalesces concurrent single-query requests into one
// Index.Search call per flush. A flush is forced when maxBatch queries are
// pending (size flush) or when the window expires, measured from the first
// request of the forming batch (deadline flush). A window of zero disables
// coalescing: every request flushes alone, the one-query-per-call serving
// shape the AP model punishes with a full reconfiguration sweep per call.
type batcher struct {
	idx      apknn.Index
	maxBatch int
	window   time.Duration
	ctrs     *counters

	in   chan *request
	quit chan struct{} // closed by close(); submit fails fast after
	done chan struct{} // closed when the loop has exited
	// slots, when non-nil, is the backend-concurrency semaphore: a
	// dispatched flush acquires one before it starts the clock, so time
	// spent waiting for a free slot lands in its members' queue wait.
	slots chan struct{}

	mu      sync.Mutex // guards closed and the submits Add/Wait ordering
	closed  bool
	submits sync.WaitGroup // submit calls still in flight
	flushes sync.WaitGroup // in-flight dispatched flushes
}

func newBatcher(idx apknn.Index, maxBatch int, window time.Duration, maxFlushes int, ctrs *counters) *batcher {
	b := &batcher{
		idx:      idx,
		maxBatch: maxBatch,
		window:   window,
		ctrs:     ctrs,
		in:       make(chan *request, maxBatch),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if maxFlushes > 0 {
		b.slots = make(chan struct{}, maxFlushes)
	}
	go b.loop()
	return b
}

// submit hands a request to the batching loop, honoring the request's own
// context while the input queue is full and failing fast once the batcher
// is closed. A submit racing close may still win the send after the loop
// has exited; close waits for all in-flight submits and re-drains the
// queue, so an admitted request is never stranded unanswered.
func (b *batcher) submit(req *request) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errClosed
	}
	b.submits.Add(1)
	b.mu.Unlock()
	defer b.submits.Done()
	select {
	case b.in <- req:
		return nil
	case <-b.quit:
		return errClosed
	case <-req.ctx.Done():
		return aperr.Canceled(req.ctx.Err())
	}
}

// loop is the single collector goroutine. Flushes are dispatched to worker
// goroutines so the next batch keeps forming while the backend streams the
// current one — the same pipelining the shard engine's QueryBatch does for
// pre-formed batches.
func (b *batcher) loop() {
	defer close(b.done)
	var pending []*request
	timer := time.NewTimer(time.Hour)
	stopTimer(timer)
	defer timer.Stop()
	for {
		var expire <-chan time.Time
		if len(pending) > 0 && b.window > 0 {
			expire = timer.C
		}
		select {
		case req := <-b.in:
			pending = append(pending, req)
			if len(pending) == 1 && b.window > 0 {
				timer.Reset(b.window)
			}
			if len(pending) >= b.maxBatch {
				stopTimer(timer)
				b.dispatch(pending, flushBySize)
				pending = nil
			} else if b.window <= 0 {
				// No coalescing: the zero-length window expires the moment
				// the request arrives, so the flush is a deadline flush.
				b.dispatch(pending, flushByDeadline)
				pending = nil
			}
		case <-expire:
			b.dispatch(pending, flushByDeadline)
			pending = nil
		case <-b.quit:
			stopTimer(timer)
			// Flush what this loop collected; close() re-drains b.in for
			// submits that won the send race against shutdown.
			if len(pending) > 0 {
				b.dispatch(pending, flushOnClose)
			}
			return
		}
	}
}

func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

func (b *batcher) dispatch(reqs []*request, cause flushCause) {
	b.flushes.Add(1)
	go func() {
		defer b.flushes.Done()
		if b.slots != nil {
			// Waiting for a backend slot happens before runFlush starts the
			// clock: the wait is queue time the members pay, not backend time.
			b.slots <- struct{}{}
			defer func() { <-b.slots }()
		}
		b.runFlush(reqs, cause)
	}()
}

// runFlush answers one coalesced batch. Members may carry different k
// values; the flush searches for the largest and trims each response back
// down — the top-k of a larger k is exactly the top-k of the smaller.
func (b *batcher) runFlush(reqs []*request, cause flushCause) {
	flushStart := time.Now()
	// Members whose context ended while queued get their error now; their
	// handlers have long since returned, so don't spend board time on them.
	live := make([]*request, 0, len(reqs))
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			b.ctrs.expired.Add(1)
			r.resp <- response{err: aperr.Canceled(err)}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	// Queue wait is charged per member; assembly once per flush, measured
	// from the batch's first enqueue — how long the window held the batch
	// open before the backend saw it.
	for _, r := range live {
		if !r.enqueued.IsZero() {
			wait := flushStart.Sub(r.enqueued)
			queueHist.Record(wait)
			r.trace.Observe("queue_wait", wait)
		}
	}
	if first := live[0].enqueued; !first.IsZero() {
		assembly := flushStart.Sub(first)
		assemblyHist.Record(assembly)
		for _, r := range live {
			r.trace.Observe("flush_assembly", assembly)
		}
	}
	b.ctrs.flushes.Add(1)
	switch cause {
	case flushBySize:
		b.ctrs.flushesSize.Add(1)
	case flushByDeadline:
		b.ctrs.flushesDeadline.Add(1)
	case flushOnClose:
		b.ctrs.flushesClose.Add(1)
	}
	b.ctrs.batchedQueries.Add(int64(len(live)))
	if len(live) > 1 {
		b.ctrs.coalesced.Add(int64(len(live)))
	}

	maxK := 0
	queries := make([]apknn.Vector, len(live))
	for i, r := range live {
		queries[i] = r.query
		if r.k > maxK {
			maxK = r.k
		}
	}
	ctx, cancel := batchContext(live)
	defer cancel()
	// One backend span is recorded for the whole flush and grafted into
	// every member's tree afterwards: the flush context does not descend
	// from any single member, so backend-internal spans (kernel scan, delta
	// scan, WAL) nest under this shared subtree instead.
	fspan := obs.NewSpan("backend")
	fspan.SetAttr("flush_size", strconv.Itoa(len(live)))
	fspan.SetAttr("flush_cause", cause.String())
	backendStart := time.Now()
	results, err := b.idx.Search(obs.WithSpan(ctx, fspan), queries, maxK)
	backendDur := time.Since(backendStart)
	fspan.EndIn(backendDur)
	backendHist.Record(backendDur)
	for _, r := range live {
		// The subtree is complete and shared read-only between members.
		r.trace.Root().AttachChild(fspan)
	}
	for i, r := range live {
		if err != nil {
			// A shared-batch failure reaches every rider, but a rider whose
			// own context ended reports its own cancellation, not the
			// batch's fate.
			e := err
			if cerr := r.ctx.Err(); cerr != nil {
				e = aperr.Canceled(cerr)
			}
			r.resp <- response{flushSize: len(live), err: e}
			continue
		}
		ns := results[i]
		if len(ns) > r.k {
			ns = ns[:r.k]
		}
		r.resp <- response{neighbors: ns, flushSize: len(live)}
	}
}

// batchContext derives the context a coalesced Search runs under: canceled
// only once every member request's own context is done. One hung-up client
// must not abort a batch other clients are still waiting on, but a batch
// whose every rider is gone stops streaming and releases the shard workers
// promptly.
func batchContext(reqs []*request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for _, r := range reqs {
			select {
			case <-r.ctx.Done():
			case <-ctx.Done():
				return
			}
		}
		cancel()
	}()
	return ctx, cancel
}

// close stops intake, drains every admitted request into one final flush,
// and waits — bounded by ctx — for every in-flight flush to deliver its
// responses. Callers must not invoke it twice (Server.Close guards).
func (b *batcher) close(ctx context.Context) error {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	close(b.quit)
	select {
	case <-b.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	// Submits that were past the closed check when it flipped resolve
	// promptly now that quit is closed — either into b.in or with
	// errClosed. Wait them out, then answer whatever landed in the queue
	// after the loop stopped reading it.
	if err := waitBounded(ctx, &b.submits); err != nil {
		return err
	}
	var pending []*request
	for stragglers := false; !stragglers; {
		select {
		case req := <-b.in:
			pending = append(pending, req)
		default:
			stragglers = true
		}
	}
	if len(pending) > 0 {
		b.dispatch(pending, flushOnClose)
	}
	return waitBounded(ctx, &b.flushes)
}

// waitBounded is WaitGroup.Wait with a context bound.
func waitBounded(ctx context.Context, wg *sync.WaitGroup) error {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
