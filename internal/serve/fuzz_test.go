package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	apknn "repro"
)

// fuzzServer is built once per fuzz worker process: a small exact index
// behind the real handler chain, coalescing disabled so every request
// flushes synchronously.
var (
	fuzzOnce    sync.Once
	fuzzHandler http.Handler
)

const fuzzDim = 16

func fuzzSetup() {
	ds := apknn.RandomDataset(5, 256, fuzzDim)
	idx, err := apknn.Open(ds, apknn.WithBackend(apknn.Fast))
	if err != nil {
		panic(err)
	}
	srv := New(idx, Config{Dim: fuzzDim, MaxInFlight: 64})
	fuzzHandler = srv.Handler()
}

// FuzzSearchRequestJSON throws arbitrary bodies at POST /v1/search: the
// wire boundary must answer every malformed vector, absurd k, or broken
// JSON with a clean 4xx — never a panic, never a 5xx, never an unparseable
// response — and every 200 must carry a well-formed, (Dist, ID)-sorted
// result over real dataset IDs.
func FuzzSearchRequestJSON(f *testing.F) {
	f.Add([]byte(`{"query":"1010101010101010","k":3}`))
	f.Add([]byte(`{"query":"1010101010101010"}`))
	f.Add([]byte(`{"query":"1010101010101010","k":-1}`))
	f.Add([]byte(`{"query":"1010101010101010","k":9223372036854775807}`))
	f.Add([]byte(`{"query":"101","k":3}`))
	f.Add([]byte(`{"query":"10x0101010101010","k":3}`))
	f.Add([]byte(`{"query":"","k":3}`))
	f.Add([]byte(`{"query":1010}`))
	f.Add([]byte(`{"k":3}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`{"query":"1010101010101010","k":3,"timeout_ms":1}`))
	f.Add([]byte(`{"query":"1010101010101010","timeout_ms":-5}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		fuzzOnce.Do(fuzzSetup)
		req := httptest.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		fuzzHandler.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK:
			var resp SearchResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 with undecodable body %q: %v", rec.Body.Bytes(), err)
			}
			if resp.FlushSize < 1 {
				t.Fatalf("200 with flush size %d", resp.FlushSize)
			}
			for i, n := range resp.Neighbors {
				if n.ID < 0 || n.ID >= 256 || n.Dist < 0 || n.Dist > fuzzDim {
					t.Fatalf("neighbor %d out of range: %+v", i, n)
				}
				if i > 0 {
					prev := resp.Neighbors[i-1]
					if n.Dist < prev.Dist || (n.Dist == prev.Dist && n.ID <= prev.ID) {
						t.Fatalf("neighbors not (Dist, ID)-sorted at %d: %+v after %+v", i, n, prev)
					}
				}
			}
		case http.StatusBadRequest, http.StatusTooManyRequests, http.StatusGatewayTimeout:
			var eresp errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &eresp); err != nil || eresp.Error == "" {
				t.Fatalf("status %d with undecodable error body %q", rec.Code, rec.Body.Bytes())
			}
		default:
			t.Fatalf("status %d (body %q) for input %q", rec.Code, rec.Body.Bytes(), body)
		}
	})
}
