package serve

import (
	"math"
	"sync/atomic"
	"time"

	apknn "repro"
	"repro/internal/obs"
)

// SLO-adaptive admission control. The static MaxInFlight cap answers the
// wrong question: the right in-flight bound for a latency target depends on
// the backend's current speed (dataset size, batch shapes, churn), so any
// fixed number either over-sheds when the backend is fast or lets the queue
// tail blow past the SLO when it is slow. The controller closes the loop
// the observability layer opened: it watches the *windowed* queue-wait p99
// (the latency cost admission directly controls — backend time is paid
// regardless) and moves the admission limit AIMD-style, cutting
// multiplicatively the moment the tail breaches the target and re-earning
// capacity additively while comfortably under it. Shedding happens at the
// admission gate with 429 and a Retry-After computed from the observed
// tail, so clients back off proportionally to how saturated the server is.

const (
	// sloTick is the control period.
	sloTick = 100 * time.Millisecond
	// sloWindowSlots × sloWindowWidth is the controller's sliding signal
	// window (~1s): long enough to see a stable p99 under load, short
	// enough to react within a ramp. The minute-scale reporting window
	// would lag the controller into oscillation.
	sloWindowSlots = 4
	sloWindowWidth = 250 * time.Millisecond
	// sloCooldown is the lockout after a multiplicative decrease: the
	// window still holds pre-cut samples for about its span, and cutting
	// again on stale evidence collapses the limit to the floor.
	sloCooldown = 500 * time.Millisecond
	// sloMinSamples gates control action: below this the windowed p99 is
	// an artifact of one or two requests, not a signal.
	sloMinSamples = 16
	// sloDecrease is the multiplicative-decrease factor (×0.7 per breach).
	sloDecreaseNum, sloDecreaseDen = 7, 10
	// sloIncreaseFrac divides the cap into the additive-increase step, so
	// recovery from a cut takes a few seconds regardless of scale.
	sloIncreaseFrac = 50
	// sloMinLimit is the limit floor: always admit something, or the
	// controller never sees fresh queue-wait samples to recover on.
	sloMinLimit = 1
	// sloHeadroom is the fraction of target below which the controller
	// considers the tail comfortable and re-earns capacity. The deadband
	// between it and the target is where the limit rests, so the held p99
	// settles in [headroom, 1.0]×target — keep it close to 1 or the
	// controller parks the tail far under the target it was asked to hold.
	sloHeadroomNum, sloHeadroomDen = 17, 20
)

// sloController runs the AIMD loop. It shares the Server's inflight/limit
// atomics: admit() reads limit and counts admissions and sheds; the
// controller goroutine is the only writer of limit.
type sloController struct {
	target   time.Duration
	limit    *atomic.Int64
	inflight *atomic.Int64
	maxLimit int64
	win      *obs.Window
	now      func() time.Time

	admitted    atomic.Int64
	shed        atomic.Int64
	observedP99 atomic.Int64
	shedRate    atomic.Uint64 // Float64bits of the smoothed shed fraction
	increases   atomic.Int64
	decreases   atomic.Int64

	stop chan struct{}
	done chan struct{}
}

func newSLOController(target time.Duration, limit, inflight *atomic.Int64, maxLimit int64) *sloController {
	return &sloController{
		target:   target,
		limit:    limit,
		inflight: inflight,
		maxLimit: maxLimit,
		win:      obs.NewWindow(queueHist, sloWindowSlots, sloWindowWidth),
		now:      time.Now,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

func (c *sloController) run() {
	defer close(c.done)
	ticker := time.NewTicker(sloTick)
	defer ticker.Stop()
	var lastAdmitted, lastShed int64
	var cooldownUntil time.Time
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		now := c.now()
		s := c.win.Snapshot(now)
		p99 := s.Quantile(0.99)
		c.observedP99.Store(p99)

		// Smooth the per-tick shed fraction so the gauge is readable and
		// the bench's shed-rate column is not tick-phase noise.
		a, sh := c.admitted.Load(), c.shed.Load()
		da, ds := a-lastAdmitted, sh-lastShed
		lastAdmitted, lastShed = a, sh
		inst := 0.0
		if da+ds > 0 {
			inst = float64(ds) / float64(da+ds)
		}
		prev := math.Float64frombits(c.shedRate.Load())
		c.shedRate.Store(math.Float64bits(0.7*prev + 0.3*inst))

		cur := c.limit.Load()
		switch {
		case s.Count >= sloMinSamples && p99 > int64(c.target):
			if now.Before(cooldownUntil) {
				continue
			}
			next := cur * sloDecreaseNum / sloDecreaseDen
			if next < sloMinLimit {
				next = sloMinLimit
			}
			if next != cur {
				c.limit.Store(next)
				c.decreases.Add(1)
			}
			cooldownUntil = now.Add(sloCooldown)
		case cur < c.maxLimit && (s.Count < sloMinSamples ||
			p99 < int64(c.target)*sloHeadroomNum/sloHeadroomDen):
			step := c.maxLimit / sloIncreaseFrac
			if step < 1 {
				step = 1
			}
			next := cur + step
			if next > c.maxLimit {
				next = c.maxLimit
			}
			c.limit.Store(next)
			c.increases.Add(1)
		}
	}
}

func (c *sloController) close() {
	close(c.stop)
	<-c.done
}

// retryAfterSeconds computes the Retry-After a shed response carries: about
// two observed tails from now the queue the client would have joined has
// turned over, floored at the 1-second granularity the header allows.
func (c *sloController) retryAfterSeconds() int {
	wait := 2 * time.Duration(c.observedP99.Load())
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

func (c *sloController) stats() *apknn.SLOStats {
	return &apknn.SLOStats{
		TargetP99NS:   int64(c.target),
		ObservedP99NS: c.observedP99.Load(),
		Limit:         c.limit.Load(),
		InFlight:      c.inflight.Load(),
		ShedRate:      math.Float64frombits(c.shedRate.Load()),
		Increases:     c.increases.Load(),
		Decreases:     c.decreases.Load(),
	}
}
