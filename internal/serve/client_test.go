package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestParseRetryAfter covers both header forms RFC 9110 allows plus the
// garbage a client must shrug off.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 7, 27, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{" 7 ", 7 * time.Second},
		{"0", 0},
		{"-2", 0},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{now.Add(-time.Hour).Format(http.TimeFormat), 0},
		// RFC 850 and ANSI C asctime forms, which http.ParseTime accepts.
		{now.Add(30 * time.Second).Format(time.RFC850), 30 * time.Second},
		{now.Add(30 * time.Second).Format(time.ANSIC), 30 * time.Second},
		{"soon", 0},
		{"3.5", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.header, now); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

// retryTestServer answers 429 for the first fail requests — alternating the
// two Retry-After forms — then echoes a fixed healthz body.
func retryTestServer(t *testing.T, fail int64) (*Client, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if n <= fail {
			if n%2 == 1 {
				w.Header().Set("Retry-After", "0")
			} else {
				w.Header().Set("Retry-After", time.Now().UTC().Add(-time.Minute).Format(http.TimeFormat))
			}
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"saturated"}`))
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"status":"ok","backend":"fast","boards":1}`))
	}))
	t.Cleanup(ts.Close)
	return &Client{BaseURL: ts.URL}, &hits
}

// TestDoRetryRecovers: a server saturated for two attempts answers on the
// third; DoRetry delivers the response and reports each scheduled retry.
func TestDoRetryRecovers(t *testing.T) {
	client, hits := retryTestServer(t, 2)
	var retries atomic.Int64
	p := RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		OnRetry: func(attempt int, err error, wait time.Duration) {
			retries.Add(1)
			if !errors.Is(err, ErrSaturated) {
				t.Errorf("OnRetry attempt %d: err = %v, want ErrSaturated", attempt, err)
			}
		},
	}
	var out HealthResponse
	if err := client.DoRetry(context.Background(), http.MethodGet, "/healthz", nil, &out, p); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ok" {
		t.Fatalf("response = %+v", out)
	}
	if hits.Load() != 3 || retries.Load() != 2 {
		t.Fatalf("hits = %d, retries = %d; want 3 and 2", hits.Load(), retries.Load())
	}
}

// TestDoRetryExhausted: a server that never recovers returns the last 429
// verbatim, still matchable as ErrSaturated.
func TestDoRetryExhausted(t *testing.T) {
	client, hits := retryTestServer(t, 1<<30)
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}
	err := client.DoRetry(context.Background(), http.MethodGet, "/healthz", nil, &HealthResponse{}, p)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("hits = %d, want exactly MaxAttempts = 3", hits.Load())
	}
}

// TestDoRetryNonRetriable: a 404 is the caller's problem, not saturation —
// one attempt, no backoff.
func TestDoRetryNonRetriable(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusNotFound)
		_, _ = w.Write([]byte(`{"error":"nope"}`))
	}))
	t.Cleanup(ts.Close)
	client := &Client{BaseURL: ts.URL}
	err := client.DoRetry(context.Background(), http.MethodGet, "/healthz", nil, &HealthResponse{}, RetryPolicy{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want APIError 404", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("hits = %d, want 1", hits.Load())
	}
}

// TestDoRetryHonorsContext: a long server-suggested wait does not outlive
// the caller's context.
func TestDoRetryHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"saturated"}`))
	}))
	t.Cleanup(ts.Close)
	client := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := client.DoRetry(ctx, http.MethodGet, "/healthz", nil, &HealthResponse{},
		RetryPolicy{MaxAttempts: 5, MaxDelay: time.Minute})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("DoRetry waited %v past its context", elapsed)
	}
}
