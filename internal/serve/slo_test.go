package serve

import (
	"context"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	apknn "repro"
)

// slowIndex answers every Search after a fixed delay — the controllable
// "backend is this fast today" knob the SLO tests steer against.
type slowIndex struct {
	delay time.Duration
}

func (s *slowIndex) Search(ctx context.Context, queries []apknn.Vector, k int) ([][]apknn.Neighbor, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	out := make([][]apknn.Neighbor, len(queries))
	for i := range out {
		out[i] = []apknn.Neighbor{{ID: 0, Dist: 0}}
	}
	return out, nil
}

func (s *slowIndex) SearchBatch(ctx context.Context, batches [][]apknn.Vector, k int) <-chan apknn.BatchResult {
	ch := make(chan apknn.BatchResult, len(batches))
	go func() {
		defer close(ch)
		for i, b := range batches {
			res, err := s.Search(ctx, b, k)
			ch <- apknn.BatchResult{Batch: i, Results: res, Err: err}
		}
	}()
	return ch
}

func (s *slowIndex) ModeledTime() time.Duration { return 0 }
func (s *slowIndex) Stats() apknn.Stats         { return apknn.Stats{Backend: "slow", Boards: 1} }

// TestSLOControllerShedsOnBreach drives a server whose backend is far too
// slow for the configured queue-wait target and requires the closed loop to
// engage: the limit is cut below the static cap, sheds happen with a
// Retry-After header, and the controller state is visible in Stats.
func TestSLOControllerShedsOnBreach(t *testing.T) {
	idx := &slowIndex{delay: 20 * time.Millisecond}
	srv := New(idx, Config{
		MaxBatch:     4,
		BatchWindow:  time.Millisecond,
		MaxInFlight:  32,
		SLOTargetP99: time.Millisecond, // unholdable: queue waits are tens of ms
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if st := srv.Stats(); st.SLO == nil || st.SLO.TargetP99NS != int64(time.Millisecond) {
		t.Fatalf("SLO block missing or wrong target: %+v", st.SLO)
	}

	q := apknn.RandomQueries(3, 1, 8)[0]
	var shed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(2*time.Second, func() { close(stop) })
	// Open-ish loop: more workers than the cap can ever serve at the target,
	// re-posting as fast as the server answers. Cuts are 500ms apart, so the
	// limit needs ~3 cuts (32→22→15→10) to drop below the worker count and
	// start shedding — 2s leaves margin for four.
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := newRecorder()
				if release := srv.admit(rec); release != nil {
					req := &request{ctx: context.Background(), query: q, k: 1,
						resp: make(chan response, 1), enqueued: time.Now()}
					if err := srv.batcher.submit(req); err == nil {
						<-req.resp
					}
					release()
				} else if rec.Code == 429 {
					if rec.Header().Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
					shed.Add(1)
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()

	st := srv.Stats()
	if st.SLO.Decreases == 0 {
		t.Fatalf("controller never cut the limit: %+v", st.SLO)
	}
	if st.SLO.Limit >= 32 {
		t.Fatalf("limit %d did not drop below the static cap", st.SLO.Limit)
	}
	if shed.Load() == 0 || st.Rejected == 0 {
		t.Fatalf("no sheds despite unholdable target (shed=%d rejected=%d)", shed.Load(), st.Rejected)
	}
	if st.SLO.ObservedP99NS <= int64(time.Millisecond) {
		t.Fatalf("observed p99 %d did not register the breach", st.SLO.ObservedP99NS)
	}
}

// TestSLOControllerRecovers pins the additive-increase half: after load
// stops, a cut limit climbs back toward the static cap so a recovered
// server re-earns its capacity.
func TestSLOControllerRecovers(t *testing.T) {
	var limit, inflight atomic.Int64
	limit.Store(4) // as if a breach had cut it
	c := newSLOController(50*time.Millisecond, &limit, &inflight, 256)
	go c.run()
	defer c.close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		// Climbing well past the cut (4 → ≥64) proves additive increase is
		// live without racing the full ramp-to-cap against the deadline.
		if limit.Load() >= 64 {
			if c.stats().Increases == 0 {
				t.Fatal("limit climbed but no increases counted")
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("limit never recovered: %d", limit.Load())
}

// TestStaticAdmissionUnchanged pins that without an SLO target the gate
// still behaves like the old channel semaphore: fixed limit, no SLO block,
// batch-window Retry-After.
func TestStaticAdmissionUnchanged(t *testing.T) {
	idx := newBlockingIndex()
	srv := New(idx, Config{MaxInFlight: 1, BatchWindow: 0})
	defer func() {
		close(idx.release)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	}()
	if srv.slo != nil {
		t.Fatal("static config built an SLO controller")
	}
	if st := srv.Stats(); st.SLO != nil {
		t.Fatal("static stats carry an SLO block")
	}
	rec := newRecorder()
	release := srv.admit(rec)
	if release == nil {
		t.Fatal("first admit refused")
	}
	rec2 := newRecorder()
	if r2 := srv.admit(rec2); r2 != nil {
		t.Fatal("second admit exceeded MaxInFlight=1")
	}
	if rec2.Code != 429 || rec2.Header().Get("Retry-After") == "" {
		t.Fatalf("static shed: code %d, Retry-After %q", rec2.Code, rec2.Header().Get("Retry-After"))
	}
	release()
	if r3 := srv.admit(newRecorder()); r3 == nil {
		t.Fatal("admit after release refused")
	} else {
		r3()
	}
}

// TestAnalyticsEndpoint drives repeated queries through the server and
// reads /v1/analytics back: the hot key ranks first with a sane count, the
// load block carries the backend counters, and bytes scanned reflects the
// packed vector size.
func TestAnalyticsEndpoint(t *testing.T) {
	// The CPU backend counts candidate scans, so BytesScanned is non-zero —
	// the sharded automata model streams symbols and reports no scan count.
	ds := apknn.RandomDataset(7, 2000, 32)
	idx, err := apknn.Open(ds, apknn.WithBackend(apknn.CPU))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(idx, Config{BatchWindow: 0, Vectors: 2000, Dim: ds.Dim()})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	client := &Client{BaseURL: ts.URL}
	queries := apknn.RandomQueries(11, 3, ds.Dim())
	hot := queries[0]
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		if _, err := client.Search(ctx, hot, 3); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range queries[1:] {
		if _, err := client.Search(ctx, q, 3); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.SearchBatch(ctx, queries[1:], 3); err != nil {
		t.Fatal(err)
	}

	an, err := client.Analytics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if an.QueriesObserved != 16 { // 12 hot + 2 singles + 2 batch members
		t.Fatalf("queries observed %d, want 16", an.QueriesObserved)
	}
	if len(an.TopQueries) == 0 || an.TopQueries[0].Key != hot.String() {
		t.Fatalf("hot query not ranked first: %+v", an.TopQueries)
	}
	if got := an.TopQueries[0].Count; got != 12 {
		t.Fatalf("hot query count %d, want 12", got)
	}
	if an.Load.Queries == 0 || an.Load.CandidatesScanned == 0 {
		t.Fatalf("load block empty: %+v", an.Load)
	}
	wantBytes := an.Load.CandidatesScanned * int64((ds.Dim()+63)/64*8)
	if an.Load.BytesScanned != wantBytes {
		t.Fatalf("bytes scanned %d, want %d", an.Load.BytesScanned, wantBytes)
	}
	if an.Load.Vectors != 2000 {
		t.Fatalf("vectors %d, want 2000", an.Load.Vectors)
	}

	// The windowed latency block appears on /v1/stats once requests flowed.
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	win, ok := st.LatencyWindow["apknn_serve_search_seconds"]
	if !ok || win.Count == 0 {
		t.Fatalf("latency_1m missing search series: %+v", st.LatencyWindow)
	}
	if cum := st.Latency["apknn_serve_search_seconds"]; win.Count > cum.Count {
		t.Fatalf("windowed count %d exceeds cumulative %d", win.Count, cum.Count)
	}
}

// newRecorder shortens the admit()-without-an-HTTP-stack pattern.
func newRecorder() *httptest.ResponseRecorder { return httptest.NewRecorder() }
