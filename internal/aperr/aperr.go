// Package aperr declares the typed sentinel errors shared by every engine
// and backend in this repository. Callers match them with errors.Is; the
// public package re-exports them (apknn.ErrBadK and friends) so API users
// never import an internal path.
package aperr

import (
	"errors"
	"fmt"
)

var (
	// ErrDimMismatch reports a query whose dimensionality differs from the
	// dataset (or stream layout) it is searched against.
	ErrDimMismatch = errors.New("dimension mismatch")
	// ErrEmptyDataset reports an attempt to compile an index over no vectors.
	ErrEmptyDataset = errors.New("empty dataset")
	// ErrBadK reports a non-positive neighbor count.
	ErrBadK = errors.New("k must be positive")
	// ErrCanceled reports a query aborted by its context. The wrapped error
	// carries the context's own cause (context.Canceled or DeadlineExceeded).
	ErrCanceled = errors.New("query canceled")
	// ErrUnknownBackend reports a backend kind with no registered
	// implementation.
	ErrUnknownBackend = errors.New("unknown backend")
	// ErrNotFound reports a mutation naming an ID the index does not hold —
	// never assigned, or already deleted.
	ErrNotFound = errors.New("id not found")
	// ErrBadFormat reports a persisted file (dataset, snapshot, or WAL) whose
	// header or structure is not the expected format: wrong magic, unsupported
	// version, impossible geometry, or non-canonical payload bits.
	ErrBadFormat = errors.New("bad file format")
	// ErrTruncated reports a persisted file that ends before its declared
	// payload does — a short read, never a silent partial parse.
	ErrTruncated = errors.New("truncated file")
	// ErrClosed reports an operation on an index after Close released its
	// durable handles.
	ErrClosed = errors.New("index closed")
)

// Canceled wraps ErrCanceled with the context's cause so errors.Is matches
// the sentinel while the message still says why the query stopped.
func Canceled(cause error) error {
	if cause == nil {
		return ErrCanceled
	}
	return fmt.Errorf("%w: %v", ErrCanceled, cause)
}
