// Package heat tracks query heat: which keys are hot and how hot, in
// bounded memory, cheap enough to sit on the serving hot path. It is the
// signal source the roadmap's hot-query cache and tail-shard-splitting
// advisor consume — both need "what are the top queries and how skewed is
// the load" without storing every distinct query ever seen.
//
// Two classic streaming sketches compose into the Tracker:
//
//   - A count-min sketch estimates any key's frequency in O(depth) atomic
//     adds with a bounded overcount (≤ εN with probability 1−δ for width
//     e/ε, depth ln(1/δ)). It never undercounts.
//   - A space-saving top-k tracker maintains the k (plus slack) heaviest
//     keys exactly enough to rank them: when a new key arrives with the
//     table full, it replaces the current minimum and inherits its count as
//     the key's error bound — the Metwally et al. guarantee that any key
//     with true frequency above the evicted minimum is present.
//
// The sketch absorbs the full keyspace lock-free; the top-k table takes a
// mutex but only does map+heap work for keys that are (or are becoming)
// frequent.
package heat

import (
	"container/heap"
	"sort"
	"sync"
	"sync/atomic"
)

// Sketch is a count-min sketch over string keys with atomic counters: Add
// and Estimate are safe for concurrent use and allocation-free.
type Sketch struct {
	depth, width int
	cells        []atomic.Uint64 // depth rows of width cells, row-major
	seeds        []uint64
}

// NewSketch builds a depth×width sketch. Depth 4, width 2048 bounds the
// overcount to ~2e/2048 ≈ 0.13% of the stream per key with probability
// 1−e⁻⁴; at 8 bytes a cell that is 64 KiB.
func NewSketch(depth, width int) *Sketch {
	if depth < 1 {
		depth = 1
	}
	if width < 2 {
		width = 2
	}
	s := &Sketch{depth: depth, width: width, cells: make([]atomic.Uint64, depth*width)}
	// Seeds are fixed odd constants (splitmix64 outputs): the sketch must
	// hash identically across restarts so persisted snapshots stay
	// comparable, and rows must hash independently of each other.
	seed := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < depth; i++ {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.seeds = append(s.seeds, z^(z>>31))
	}
	return s
}

// hash is seeded FNV-1a — one multiply and xor per byte, no allocation.
func hash(seed uint64, key string) uint64 {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 0x100000001b3
	}
	return h
}

// Add counts one occurrence of key and returns the new estimate.
func (s *Sketch) Add(key string) uint64 {
	est := ^uint64(0)
	for d := 0; d < s.depth; d++ {
		c := s.cells[d*s.width+int(hash(s.seeds[d], key)%uint64(s.width))].Add(1)
		if c < est {
			est = c
		}
	}
	return est
}

// Estimate returns key's frequency estimate: never below the true count,
// above it by at most the sketch's collision error.
func (s *Sketch) Estimate(key string) uint64 {
	est := ^uint64(0)
	for d := 0; d < s.depth; d++ {
		c := s.cells[d*s.width+int(hash(s.seeds[d], key)%uint64(s.width))].Load()
		if c < est {
			est = c
		}
	}
	return est
}

// Entry is one tracked hot key: its estimated count and the error bound
// inherited from the eviction it rode in on (0 = exact).
type Entry struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err,omitempty"`
}

// TopK is a space-saving heavy-hitters table of fixed capacity.
type TopK struct {
	capacity int
	mu       sync.Mutex
	entries  map[string]*ssEntry
	heap     ssHeap // min-heap by count: the eviction candidate is the root
}

type ssEntry struct {
	key        string
	count, err uint64
	idx        int // heap position
}

// NewTopK builds a table tracking the `capacity` heaviest keys. Track a few
// times more slots than you intend to report so ranks near the cut are
// stable.
func NewTopK(capacity int) *TopK {
	if capacity < 1 {
		capacity = 1
	}
	return &TopK{capacity: capacity, entries: make(map[string]*ssEntry, capacity)}
}

// Observe counts one occurrence of key, admitting it by evicting the
// current minimum if the table is full (the space-saving replacement rule).
func (t *TopK) Observe(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[key]; ok {
		e.count++
		heap.Fix(&t.heap, e.idx)
		return
	}
	if len(t.entries) < t.capacity {
		e := &ssEntry{key: key, count: 1}
		t.entries[key] = e
		heap.Push(&t.heap, e)
		return
	}
	min := t.heap[0]
	delete(t.entries, min.key)
	// The newcomer inherits the evicted minimum's count — it may have
	// occurred up to that many times while untracked — and records that
	// inheritance as its error bound.
	min.err = min.count
	min.count++
	min.key = key
	t.entries[key] = min
	heap.Fix(&t.heap, 0)
}

// Top returns up to n entries, heaviest first (count-descending, key
// tie-break so output is deterministic).
func (t *TopK) Top(n int) []Entry {
	t.mu.Lock()
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, Entry{Key: e.key, Count: e.count, Err: e.err})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

type ssHeap []*ssEntry

func (h ssHeap) Len() int            { return len(h) }
func (h ssHeap) Less(i, j int) bool  { return h[i].count < h[j].count }
func (h ssHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *ssHeap) Push(x interface{}) { e := x.(*ssEntry); e.idx = len(*h); *h = append(*h, e) }
func (h *ssHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Tracker is the combined query-heat tracker a server embeds: every key
// goes through the sketch (full keyspace, lock-free) and the space-saving
// table (heavy hitters, one short critical section).
type Tracker struct {
	sketch *Sketch
	top    *TopK
	total  atomic.Uint64
}

// NewTracker sizes a tracker that reports about `reportK` hot keys: the
// space-saving table holds 4× that so ranks near the cut are trustworthy.
func NewTracker(reportK int) *Tracker {
	if reportK < 1 {
		reportK = 10
	}
	return &Tracker{sketch: NewSketch(4, 2048), top: NewTopK(4 * reportK)}
}

// Observe counts one occurrence of key.
func (t *Tracker) Observe(key string) {
	t.total.Add(1)
	t.sketch.Add(key)
	t.top.Observe(key)
}

// Total is the number of observations since construction.
func (t *Tracker) Total() uint64 { return t.total.Load() }

// Estimate returns the sketch's frequency estimate for any key, tracked in
// the top table or not.
func (t *Tracker) Estimate(key string) uint64 { return t.sketch.Estimate(key) }

// Top returns up to n hot keys, heaviest first.
func (t *Tracker) Top(n int) []Entry { return t.top.Top(n) }

// MergeTop combines hot-key lists from several trackers (e.g. one per
// shard) by summing counts and error bounds per key, returning the n
// heaviest of the union — the aggregation the cluster router serves.
func MergeTop(n int, lists ...[]Entry) []Entry {
	byKey := make(map[string]*Entry)
	for _, list := range lists {
		for _, e := range list {
			if acc, ok := byKey[e.Key]; ok {
				acc.Count += e.Count
				acc.Err += e.Err
			} else {
				c := e
				byKey[e.Key] = &c
			}
		}
	}
	out := make([]Entry, 0, len(byKey))
	for _, e := range byKey {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
