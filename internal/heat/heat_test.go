package heat

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestSketchNeverUndercounts drives a zipf-ish stream and checks the two
// count-min invariants: estimates are never below the true count, and the
// aggregate overcount stays within the sketch's ε·N bound.
func TestSketchNeverUndercounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, 5000)
	s := NewSketch(4, 2048)
	truth := make(map[string]uint64)
	const n = 100_000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("q%d", zipf.Uint64())
		truth[key]++
		s.Add(key)
	}
	var overs, checked int
	for key, want := range truth {
		got := s.Estimate(key)
		if got < want {
			t.Fatalf("sketch undercounted %q: %d < %d", key, got, want)
		}
		// ε = 2/width, so εN is the per-key overcount budget.
		if got > want+2*n/2048+1 {
			overs++
		}
		checked++
	}
	// The probabilistic bound holds per key with prob 1−e⁻⁴; allow a few
	// outliers across thousands of keys.
	if overs > checked/50 {
		t.Fatalf("%d/%d keys exceeded the ε·N overcount bound", overs, checked)
	}
	if s.Estimate("never-seen") > 2*n/2048+1 {
		t.Fatalf("unseen key estimated %d", s.Estimate("never-seen"))
	}
}

// TestTopKFindsHeavyHitters checks the space-saving guarantee: with enough
// capacity, every key whose true frequency clears the eviction floor is
// present, ranked correctly, and its count is within its error bound.
func TestTopKFindsHeavyHitters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := NewTracker(10)
	truth := make(map[string]uint64)
	// 8 heavy keys on a long uniform tail.
	for i := 0; i < 50_000; i++ {
		var key string
		if rng.Intn(100) < 60 {
			key = fmt.Sprintf("hot%d", rng.Intn(8))
		} else {
			key = fmt.Sprintf("cold%d", rng.Intn(20_000))
		}
		truth[key]++
		tr.Observe(key)
	}
	top := tr.Top(10)
	if len(top) == 0 {
		t.Fatal("empty top list")
	}
	inTop := make(map[string]Entry)
	for _, e := range top {
		inTop[e.Key] = e
	}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("hot%d", i)
		e, ok := inTop[key]
		if !ok {
			t.Fatalf("heavy hitter %q missing from top-10: %v", key, top)
		}
		if e.Count < truth[key] || e.Count-e.Err > truth[key] {
			t.Fatalf("%q count %d (err %d), true %d", key, e.Count, e.Err, truth[key])
		}
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatalf("top list not count-descending at %d", i)
		}
	}
	if tr.Total() != 50_000 {
		t.Fatalf("total %d, want 50000", tr.Total())
	}
}

// TestMergeTop pins the cross-shard aggregation: counts sum per key and the
// merged ranking reflects the union stream.
func TestMergeTop(t *testing.T) {
	a := []Entry{{Key: "x", Count: 10}, {Key: "y", Count: 6}, {Key: "z", Count: 1}}
	b := []Entry{{Key: "y", Count: 7, Err: 1}, {Key: "w", Count: 9}}
	got := MergeTop(3, a, b)
	want := []Entry{{Key: "y", Count: 13, Err: 1}, {Key: "x", Count: 10}, {Key: "w", Count: 9}}
	if len(got) != len(want) {
		t.Fatalf("merged %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestTrackerConcurrent is the -race check: concurrent observers, a reader
// polling Top and Estimate, and an exact final total.
func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker(5)
	const writers, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tr.Top(5)
			tr.Estimate("k3")
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < per; i++ {
				tr.Observe(fmt.Sprintf("k%d", (w+i)%10))
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if tr.Total() != writers*per {
		t.Fatalf("total %d, want %d", tr.Total(), writers*per)
	}
	var sum uint64
	for _, e := range tr.Top(0) {
		sum += e.Count
	}
	if sum != writers*per {
		t.Fatalf("tracked counts sum %d, want %d (capacity exceeds keyspace, no evictions)", sum, writers*per)
	}
}
