package perfmodel

import (
	"time"

	"repro/internal/ap"
	"repro/internal/core"
)

// APSymbolsPerQuery is the paper's per-query symbol budget: d query symbols
// plus SOF/EOF framing. The published runtimes (Tables III/IV) fit
// q*(d+2)*7.5ns exactly, which implies the sorting phase of one query is
// overlapped with the Hamming phase of the next; our functional stream
// (core.Layout.StreamLen, ~2d+Δ) is the conservative non-overlapped variant.
// Both are reported by the harness.
func APSymbolsPerQuery(dim int) int { return dim + 2 }

// APTime models a linear-scan kNN batch on the AP: the dataset spans
// ceil(n/capacity) board images; each image is loaded (one partial
// reconfiguration) and the full query batch streamed through it (§III-C).
// A single-image dataset needs no reconfiguration, matching Table III.
func APTime(cfg ap.DeviceConfig, n, queries, dim int) time.Duration {
	capacity := core.DefaultBoardCapacity(dim)
	partitions := (n + capacity - 1) / capacity
	stream := cfg.StreamTime(queries * APSymbolsPerQuery(dim))
	total := time.Duration(partitions) * stream
	if partitions > 1 {
		total += time.Duration(partitions) * cfg.ReconfigLatency
	}
	return total
}

// APFunctionalTime is the non-overlapped variant using the functional
// stream layout this repository actually executes.
func APFunctionalTime(cfg ap.DeviceConfig, n, queries, dim int) time.Duration {
	capacity := core.DefaultBoardCapacity(dim)
	partitions := (n + capacity - 1) / capacity
	stream := cfg.StreamTime(queries * core.NewLayout(dim).StreamLen())
	total := time.Duration(partitions) * stream
	if partitions > 1 {
		total += time.Duration(partitions) * cfg.ReconfigLatency
	}
	return total
}

// OptExtGains breaks down the Table VIII compounded improvement for one
// workload dimensionality, computed from this repository's own analytical
// models: technology scaling (§VII-D), vector packing in groups of 4
// (§VI-A), STE decomposition at x=4 (§VII-C) and the counter-increment
// extension (§VII-A).
type OptExtGains struct {
	TechScaling      float64
	VectorPacking    float64
	STEDecomposition float64
	CounterIncrement float64
}

// Total compounds the mutually orthogonal gains.
func (g OptExtGains) Total() float64 {
	return g.TechScaling * g.VectorPacking * g.STEDecomposition * g.CounterIncrement
}

// ComputeOptExtGains evaluates the gains for a code dimensionality using
// the paper's parameter choices (§VII-D: 28 nm target, pack groups of 4,
// decomposition factor 4, 7-dim counter increments).
func ComputeOptExtGains(dim int) OptExtGains {
	layout := core.NewLayout(dim)
	return OptExtGains{
		TechScaling:      core.TechnologyScaling(28),
		VectorPacking:    core.PackingSavings(layout, 4),
		STEDecomposition: decompositionSavings(dim, 4),
		CounterIncrement: core.NewMultiDimLayout(dim).SpeedupOverPlain(),
	}
}

// decompositionSavings evaluates §VII-C's model on an actual generated
// macro for the dimensionality.
func decompositionSavings(dim, factor int) float64 {
	rep := macroDecomposition(dim)
	return rep.Savings(factor)
}

// APOptExtTime applies the compounded gains to the Gen 2 runtime, the
// paper's "AP (Opt+Ext)" column of Table IV.
func APOptExtTime(n, queries, dim int) time.Duration {
	base := APTime(ap.Gen2(), n, queries, dim)
	return time.Duration(float64(base) / ComputeOptExtGains(dim).Total())
}

// ReportBandwidthGbps is the §VI-C sustained report-bandwidth estimate: a
// query delivering n sparse-vector activations (32 bits each) plus 32*d bits
// of offsets every 2d cycles at 7.5 ns.
func ReportBandwidthGbps(n, dim int) float64 {
	bitsPerQuery := 32 * float64(n+dim)
	seconds := float64(2*dim) * 7.5e-9
	return bitsPerQuery / seconds / 1e9
}
