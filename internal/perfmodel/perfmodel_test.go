package perfmodel

import (
	"testing"
	"time"

	"repro/internal/workload"
)

// withinFactor fails the test if reproduced is not within factor of paper.
func withinFactor(t *testing.T, label string, paper, reproduced, factor float64) {
	t.Helper()
	if paper <= 0 || reproduced <= 0 {
		t.Fatalf("%s: non-positive values paper=%v repro=%v", label, paper, reproduced)
	}
	r := reproduced / paper
	if r < 1/factor || r > factor {
		t.Errorf("%s: reproduced %v vs paper %v (ratio %.2f, budget %.2f)", label, reproduced, paper, r, factor)
	}
}

func TestPlatformsMatchTable1(t *testing.T) {
	ps := Platforms()
	if len(ps) != 6 {
		t.Fatalf("got %d platforms, want 6 (Table I)", len(ps))
	}
	x := XeonE5()
	if x.Cores != 6 || x.ProcessNm != 32 || x.ClockMHz != 2000 {
		t.Errorf("Xeon descriptor wrong: %+v", x)
	}
	apb := APBoard()
	if apb.ProcessNm != 50 || apb.ClockMHz != 133 {
		t.Errorf("AP descriptor wrong: %+v", apb)
	}
}

// TestTable3RuntimesWithinBudget: every modeled small-dataset runtime must be
// within 1.6x of the published value.
func TestTable3RuntimesWithinBudget(t *testing.T) {
	for _, c := range Table3() {
		paper := PaperTable3Runtime[c.Workload][c.Platform]
		withinFactor(t, c.Workload+"/"+c.Platform,
			paper, float64(c.Runtime)/float64(time.Millisecond), 1.6)
	}
}

// TestTable4RuntimesWithinBudget: large-dataset runtimes within 1.6x.
func TestTable4RuntimesWithinBudget(t *testing.T) {
	for _, c := range Table4() {
		paper := PaperTable4Runtime[c.Workload][c.Platform]
		withinFactor(t, c.Workload+"/"+c.Platform, paper, c.Runtime.Seconds(), 1.6)
	}
}

// TestTable4EnergyWithinBudget: energies within 1.6x.
func TestTable4EnergyWithinBudget(t *testing.T) {
	for _, c := range Table4() {
		paper := PaperTable4Energy[c.Workload][c.Platform]
		withinFactor(t, c.Workload+"/"+c.Platform+" energy", paper, c.Energy, 1.6)
	}
}

// TestHeadlineSpeedup reproduces the abstract's claim: "over 50x speedup
// over CPUs" — AP Gen 1 versus the ARM multicore on small datasets.
func TestHeadlineSpeedup(t *testing.T) {
	w := workload.WordEmbed()
	arm := CPUTime(CortexA15(), w.SmallN, w.Queries, w.Dim)
	apt := APTime(APGen1(), w.SmallN, w.Queries, w.Dim)
	speedup := arm.Seconds() / apt.Seconds()
	if speedup < PaperSpeedupOverCPU {
		t.Errorf("AP speedup over ARM = %.1fx, paper claims ~%.0fx", speedup, PaperSpeedupOverCPU)
	}
}

// TestGen1ReconfigDominates reproduces §V-B: "reconfiguration overheads ...
// account for upwards of 98% of the execution time" on large datasets.
func TestGen1ReconfigDominates(t *testing.T) {
	w := workload.WordEmbed()
	total := APTime(APGen1(), w.LargeN, w.Queries, w.Dim)
	noReconfig := APTime(APGen2(), w.LargeN, w.Queries, w.Dim) -
		time.Duration(w.LargeN/1024)*APGen2().ReconfigLatency
	frac := 1 - noReconfig.Seconds()/total.Seconds()
	if frac < 0.9 {
		t.Errorf("reconfiguration fraction = %.2f, paper reports ~0.98", frac)
	}
}

// TestGen2Improvement reproduces §V-B: "19.4x performance improvement
// between Gen 1 and Gen 2" for WordEmbed-large.
func TestGen2Improvement(t *testing.T) {
	w := workload.WordEmbed()
	g1 := APTime(APGen1(), w.LargeN, w.Queries, w.Dim)
	g2 := APTime(APGen2(), w.LargeN, w.Queries, w.Dim)
	ratio := g1.Seconds() / g2.Seconds()
	if ratio < 15 || ratio > 25 {
		t.Errorf("Gen1/Gen2 = %.1fx, paper reports 19.4x", ratio)
	}
}

func TestTable5Shape(t *testing.T) {
	cs := CompareTable5()
	vals := map[string]float64{}
	for _, c := range cs.Items {
		vals[c.Label] = c.Reproduced
	}
	// Shape assertions from §V-B: Gen 1 indexing is at or below break-even
	// because reconfiguration dominates; Gen 2 recovers large speedups; and
	// MPLSH trails the tree indexes in both generations.
	for _, s := range []string{"KD-Tree", "K-Means", "MPLSH"} {
		if vals[s+" / Gen 1"] > 1.5 {
			t.Errorf("%s Gen 1 speedup %.2f, expected reconfiguration-bound (~<=1)", s, vals[s+" / Gen 1"])
		}
		if vals[s+" / Gen 2"] < 10 && s != "MPLSH" {
			t.Errorf("%s Gen 2 speedup %.2f, expected large", s, vals[s+" / Gen 2"])
		}
	}
	if vals["MPLSH / Gen 2"] >= vals["KD-Tree / Gen 2"] {
		t.Error("MPLSH should trail tree indexes on Gen 2")
	}
	if vals["Linear (No Index) / Gen 1"] < 10 {
		t.Errorf("linear Gen 1 speedup %.2f, paper reports 16x", vals["Linear (No Index) / Gen 1"])
	}
}

// TestTable7WithinBudget: our exact decomposition analysis versus the
// paper's analytical model, within 1.3x everywhere.
func TestTable7WithinBudget(t *testing.T) {
	cs := CompareTable7()
	for _, c := range cs.Items {
		withinFactor(t, c.Label, c.Paper, c.Reproduced, 1.3)
	}
}

// TestTable8WithinBudget: compounded gains within 1.35x.
func TestTable8WithinBudget(t *testing.T) {
	cs := CompareTable8()
	for _, c := range cs.Items {
		withinFactor(t, c.Label, c.Paper, c.Reproduced, 1.35)
	}
}

// TestBandwidthWithinBudget: §VI-C bandwidths within 1.5x.
func TestBandwidthWithinBudget(t *testing.T) {
	cs := CompareBandwidth()
	for _, c := range cs.Items {
		withinFactor(t, c.Label, c.Paper, c.Reproduced, 1.5)
	}
	// The WordEmbed bandwidth is the paper's sharpest number: 36.2 Gbps is a
	// "significant fraction" of the 63 Gbps PCIe budget.
	if bw := ReportBandwidthGbps(1024, 64); bw < 30 || bw > 63 {
		t.Errorf("WordEmbed bandwidth = %v Gbps, want significant fraction of 63", bw)
	}
}

// TestUtilizationWithinBudget: §V-A utilization within 1.3x per workload.
func TestUtilizationWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three full board configurations")
	}
	cs, err := CompareUtilization()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs.Items {
		withinFactor(t, c.Label, c.Paper, c.Reproduced, 1.3)
	}
}

func TestAPSymbolsPerQuery(t *testing.T) {
	// §VI-C: a query has a latency of ~2d cycles; the runtime model uses the
	// pipelined d+2 per query. Both must bracket the functional stream.
	if APSymbolsPerQuery(64) != 66 {
		t.Errorf("APSymbolsPerQuery(64) = %d, want 66", APSymbolsPerQuery(64))
	}
	fn := APFunctionalTime(APGen1(), 1024, 4096, 64)
	model := APTime(APGen1(), 1024, 4096, 64)
	if fn <= model {
		t.Error("functional (non-overlapped) time should exceed the pipelined model")
	}
	if fn > 3*model {
		t.Errorf("functional time %v implausibly far from model %v", fn, model)
	}
}

func TestOptExtGainsComposition(t *testing.T) {
	g := ComputeOptExtGains(128)
	want := g.TechScaling * g.VectorPacking * g.STEDecomposition * g.CounterIncrement
	if g.Total() != want {
		t.Errorf("Total = %v, want product %v", g.Total(), want)
	}
}

func TestQueriesPerJoule(t *testing.T) {
	p := Platform{DynamicPowerW: 10}
	if got := QueriesPerJoule(p, 100, time.Second); got != 10 {
		t.Errorf("QueriesPerJoule = %v, want 10", got)
	}
	if got := QueriesPerJoule(p, 100, 0); got != 0 {
		t.Errorf("zero-time energy = %v, want 0", got)
	}
}

func TestSingleThreadScaling(t *testing.T) {
	p := CortexA15()
	multi := CPUTime(p, 1000, 10, 64)
	single := SingleThreadCPUTime(p, 1000, 10, 64)
	if single != 4*multi {
		t.Errorf("single-thread time %v, want 4x multicore %v", single, multi)
	}
}
