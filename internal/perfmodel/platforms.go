// Package perfmodel contains the calibrated analytical performance and
// energy models that regenerate the paper's evaluation tables. The
// functional simulators in this repository establish *correctness*; this
// package reproduces the *numbers*: runtimes from per-platform cost models
// whose few constants are fitted to the published small-dataset measurements
// and then extrapolated (README.md documents the audit), and energy as
// dynamic power times runtime, exactly the paper's methodology (§IV).
package perfmodel

import (
	"time"

	"repro/internal/ap"
)

// Platform is one Table I row plus calibrated model constants.
type Platform struct {
	Name      string
	Type      string
	Cores     int
	ProcessNm int
	ClockMHz  int
	// DynamicPowerW is the load-minus-idle power. The paper measured these
	// with a power meter; the values here are derived from its published
	// (runtime, queries/Joule) pairs, e.g. Xeon WordEmbed-small: 4096 q /
	// (3344 q/J * 23.33 ms) = 52.5 W.
	DynamicPowerW float64
	// pairBase/pairWord model a CPU Hamming scan: cost per candidate pair is
	// pairBase + pairWord per 64-bit code word, in nanoseconds. Fitted to
	// the platform's Table III rows; zero for non-CPU platforms.
	pairBaseNs float64
	pairWordNs float64
}

// XeonE5 returns the Xeon E5-2620 CPU baseline.
func XeonE5() Platform {
	return Platform{
		Name: "Xeon E5-2620", Type: "CPU", Cores: 6, ProcessNm: 32, ClockMHz: 2000,
		DynamicPowerW: 52.5, pairBaseNs: 2.18, pairWordNs: 3.38,
	}
}

// CortexA15 returns the ARM Cortex A15 CPU baseline.
func CortexA15() Platform {
	return Platform{
		Name: "Cortex A15", Type: "CPU", Cores: 4, ProcessNm: 28, ClockMHz: 2300,
		DynamicPowerW: 8.0, pairBaseNs: 3.8, pairWordNs: 20.9,
	}
}

// JetsonTK1 returns the Tegra Jetson K1 GPU descriptor (runtimes come from
// internal/gpu; power is used for energy).
func JetsonTK1() Platform {
	return Platform{
		Name: "Jetson TK1", Type: "GPU", Cores: 192, ProcessNm: 28, ClockMHz: 852,
		DynamicPowerW: 1.2,
	}
}

// TitanX returns the Titan X GPU descriptor.
func TitanX() Platform {
	return Platform{
		Name: "Titan X", Type: "GPU", Cores: 3072, ProcessNm: 28, ClockMHz: 1075,
		DynamicPowerW: 49.3,
	}
}

// Kintex7 returns the Kintex-7 FPGA descriptor (runtimes from internal/fpga).
func Kintex7() Platform {
	return Platform{
		Name: "Kintex-7", Type: "FPGA", ProcessNm: 28, ClockMHz: 185,
		DynamicPowerW: 3.7,
	}
}

// APBoard returns the Automata Processor descriptor (Table I: 64 half-cores
// as "cores", 50 nm, 133 MHz).
func APBoard() Platform {
	return Platform{
		Name: "Automata Processor", Type: "AP", Cores: 64, ProcessNm: 50, ClockMHz: 133,
		DynamicPowerW: 18.9,
	}
}

// Platforms returns Table I in paper order.
func Platforms() []Platform {
	return []Platform{XeonE5(), CortexA15(), JetsonTK1(), TitanX(), Kintex7(), APBoard()}
}

// CPUTime models a batched exact Hamming scan on a CPU platform:
// queries*n candidate pairs, each costing pairBase + pairWord*ceil(dim/64).
func CPUTime(p Platform, n, queries, dim int) time.Duration {
	words := float64((dim + 63) / 64)
	pairs := float64(n) * float64(queries)
	ns := pairs * (p.pairBaseNs + p.pairWordNs*words)
	return time.Duration(ns * float64(time.Nanosecond))
}

// SingleThreadCPUTime scales the (multicore-calibrated) CPU model to one
// core, the Table V baseline ("compared to single threaded CPU baselines").
func SingleThreadCPUTime(p Platform, n, queries, dim int) time.Duration {
	return time.Duration(int64(CPUTime(p, n, queries, dim)) * int64(p.Cores))
}

// QueriesPerJoule converts a runtime into the paper's energy-efficiency
// metric using the platform's dynamic power.
func QueriesPerJoule(p Platform, queries int, t time.Duration) float64 {
	joules := p.DynamicPowerW * t.Seconds()
	if joules <= 0 {
		return 0
	}
	return float64(queries) / joules
}

// APGen1 and APGen2 re-export the device configurations for table builders.
func APGen1() ap.DeviceConfig { return ap.Gen1() }

// APGen2 returns the projected next-generation device.
func APGen2() ap.DeviceConfig { return ap.Gen2() }
