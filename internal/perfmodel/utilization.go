package perfmodel

import (
	"repro/internal/ap"
	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

// UtilizationFor compiles one board configuration of real kNN automata for a
// workload and returns the placement, the §V-A experiment. The dataset size
// is the workload's per-configuration capacity.
func UtilizationFor(w workload.Params, rng *stats.RNG) (*ap.Placement, error) {
	n := core.DefaultBoardCapacity(w.Dim)
	ds := bitvec.RandomDataset(rng, n, w.Dim)
	net := automata.NewNetwork()
	core.BuildLinear(net, ds, core.NewLayout(w.Dim))
	cfg := ap.Gen1()
	cfg.CompilerAreaFactor = ap.PaperAreaFactor
	return ap.Compile(net, cfg)
}

// CompareUtilization builds the §V-A paper-vs-reproduced utilization audit.
func CompareUtilization() (report.ComparisonSet, error) {
	var cs report.ComparisonSet
	cs.Name = "§V-A: board utilization per configuration"
	rng := stats.NewRNG(51)
	for _, w := range workload.All() {
		placement, err := UtilizationFor(w, rng)
		if err != nil {
			return cs, err
		}
		cs.Add(w.Name, 100*PaperUtilization[w.Name], 100*placement.Utilization(), "%")
	}
	return cs, nil
}
