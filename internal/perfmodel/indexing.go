package perfmodel

import (
	"time"

	"repro/internal/ap"
	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/stats"
)

// macroDecomposition builds one real kNN macro of the given dimensionality
// and analyzes its STE widths.
func macroDecomposition(dim int) *core.DecompositionReport {
	net := automata.NewNetwork()
	core.BuildMacro(net, bitvec.Random(stats.NewRNG(1), dim), core.NewLayout(dim), 0)
	return core.AnalyzeDecomposition(net)
}

// IndexingModel is the §V-B analytical model behind Table V: "we use an
// analytical model to estimate run time by benchmarking the index traversals
// on the CPU, and adding it to estimated AP reconfiguration and simulated
// run time." Bucket size equals one board configuration.
type IndexingModel struct {
	// ProbesPerQuery is how many bucket loads one query triggers on the AP
	// (trees: parallel trees plus backtracking; MPLSH: exact buckets plus
	// hash-distance-one probes across tables).
	ProbesPerQuery float64
	// TraversalNsPerQuery is the host-side index-walk cost.
	TraversalNsPerQuery float64
}

// IndexingModels returns the per-structure parameters used for Table V.
// KD: 4 randomized trees with ~2.25 leaf visits each; K-means: branching-8
// tree, ~8 leaf visits with per-level centroid distances on the host;
// MPLSH: 4 tables, exact bucket + 9 single-bit probes each.
func IndexingModels() map[string]IndexingModel {
	return map[string]IndexingModel{
		"Linear (No Index)": {ProbesPerQuery: 0},
		"KD-Tree":           {ProbesPerQuery: 9, TraversalNsPerQuery: 800},
		"K-Means":           {ProbesPerQuery: 8, TraversalNsPerQuery: 2800},
		"MPLSH":             {ProbesPerQuery: 40, TraversalNsPerQuery: 400},
	}
}

// IndexedAPTime models ARM+AP indexed search: the host walks the index and
// loads each probed bucket as one board configuration, streaming the query
// over it (§III-D).
func IndexedAPTime(cfg ap.DeviceConfig, m IndexingModel, n, queries, dim int) time.Duration {
	if m.ProbesPerQuery == 0 {
		return APTime(cfg, n, queries, dim)
	}
	probes := m.ProbesPerQuery * float64(queries)
	reconfig := time.Duration(probes * float64(cfg.ReconfigLatency))
	stream := time.Duration(probes * float64(APSymbolsPerQuery(dim)) * float64(cfg.SymbolPeriod()))
	traversal := time.Duration(m.TraversalNsPerQuery * float64(queries))
	return reconfig + stream + traversal
}

// IndexingSpeedup returns the Table V ratio: single-threaded ARM linear scan
// over ARM+AP time for the given indexing structure.
func IndexingSpeedup(cfg ap.DeviceConfig, m IndexingModel, n, queries, dim int) float64 {
	baseline := SingleThreadCPUTime(CortexA15(), n, queries, dim)
	t := IndexedAPTime(cfg, m, n, queries, dim)
	return baseline.Seconds() / t.Seconds()
}
