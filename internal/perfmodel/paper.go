package perfmodel

// Published numbers from the paper's evaluation section, kept verbatim so
// every harness prints paper-vs-reproduced comparisons. Units follow the
// paper: Table III in milliseconds, Table IV in seconds, energy in
// queries/Joule.

// PaperTable3Runtime maps workload -> platform -> milliseconds (small
// datasets: n=1024 for WordEmbed/SIFT, 512 for TagSpace).
var PaperTable3Runtime = map[string]map[string]float64{
	"WordEmbed": {
		"Xeon E5-2620": 23.33, "Cortex A15": 103.63, "Jetson TK1": 125.80,
		"Kintex-7": 1.89, "AP Gen 1": 1.97,
	},
	"SIFT": {
		"Xeon E5-2620": 37.50, "Cortex A15": 191.44, "Jetson TK1": 155.94,
		"Kintex-7": 3.78, "AP Gen 1": 3.94,
	},
	"TagSpace": {
		"Xeon E5-2620": 33.97, "Cortex A15": 185.34, "Jetson TK1": 160.15,
		"Kintex-7": 4.33, "AP Gen 1": 7.88,
	},
}

// PaperTable3Energy maps workload -> platform -> queries/Joule.
var PaperTable3Energy = map[string]map[string]float64{
	"WordEmbed": {
		"Xeon E5-2620": 3344, "Cortex A15": 4941, "Jetson TK1": 27133,
		"Kintex-7": 579214, "AP Gen 1": 110445,
	},
	"SIFT": {
		"Xeon E5-2620": 2081, "Cortex A15": 2674, "Jetson TK1": 21889,
		"Kintex-7": 289607, "AP Gen 1": 44603,
	},
	"TagSpace": {
		"Xeon E5-2620": 2297, "Cortex A15": 2762, "Jetson TK1": 21314,
		"Kintex-7": 253406, "AP Gen 1": 22301,
	},
}

// PaperTable4Runtime maps workload -> platform -> seconds (n = 2^20).
var PaperTable4Runtime = map[string]map[string]float64{
	"WordEmbed": {
		"Xeon E5-2620": 19.89, "Cortex A15": 109.06, "Jetson TK1": 16.09,
		"Titan X": 0.99, "Kintex-7": 1.85,
		"AP Gen 1": 48.10, "AP Gen 2": 2.48, "AP Opt+Ext": 0.039,
	},
	"SIFT": {
		"Xeon E5-2620": 33.18, "Cortex A15": 199.5, "Jetson TK1": 16.73,
		"Titan X": 1.02, "Kintex-7": 3.69,
		"AP Gen 1": 50.11, "AP Gen 2": 4.50, "AP Opt+Ext": 0.062,
	},
	"TagSpace": {
		"Xeon E5-2620": 60.12, "Cortex A15": 382.82, "Jetson TK1": 16.41,
		"Titan X": 1.03, "Kintex-7": 7.38,
		"AP Gen 1": 108.31, "AP Gen 2": 17.07, "AP Opt+Ext": 0.23,
	},
}

// PaperTable4Energy maps workload -> platform -> queries/Joule.
var PaperTable4Energy = map[string]map[string]float64{
	"WordEmbed": {
		"Xeon E5-2620": 3.92, "Cortex A15": 4.69, "Jetson TK1": 212.14,
		"Titan X": 83.84, "Kintex-7": 593.89,
		"AP Gen 1": 4.53, "AP Gen 2": 87.81, "AP Opt+Ext": 1737.92,
	},
	"SIFT": {
		"Xeon E5-2620": 2.35, "Cortex A15": 2.57, "Jetson TK1": 204.02,
		"Titan X": 81.94, "Kintex-7": 296.95,
		"AP Gen 1": 4.34, "AP Gen 2": 48.40, "AP Opt+Ext": 1091.86,
	},
	"TagSpace": {
		"Xeon E5-2620": 1.30, "Cortex A15": 1.34, "Jetson TK1": 208.00,
		"Titan X": 81.05, "Kintex-7": 148.47,
		"AP Gen 1": 1.62, "AP Gen 2": 10.20, "AP Opt+Ext": 236.30,
	},
}

// PaperTable5 maps indexing structure -> [Gen1 speedup, Gen2 speedup] on
// large kNN-TagSpace versus a single-threaded ARM baseline.
var PaperTable5 = map[string][2]float64{
	"Linear (No Index)": {16, 91},
	"KD-Tree":           {0.89, 106},
	"K-Means":           {0.88, 120},
	"MPLSH":             {0.62, 3.5},
}

// PaperTable6 maps workload -> k' -> percent incorrect over 100 randomized
// runs (p=16, n=1024). k' >= 4 is 0 for every workload.
var PaperTable6 = map[string]map[int]float64{
	"WordEmbed": {1: 100, 2: 1, 3: 0, 4: 0},
	"SIFT":      {1: 100, 2: 1, 3: 0, 4: 0},
	"TagSpace":  {1: 100, 2: 72, 3: 5, 4: 0},
}

// PaperTable7 maps workload -> decomposition factor -> resource savings.
var PaperTable7 = map[string]map[int]float64{
	"WordEmbed": {1: 1, 2: 1.98, 4: 3.86, 8: 7.38, 16: 13.56, 32: 23.34},
	"SIFT":      {1: 1, 2: 1.99, 4: 3.93, 8: 7.67, 16: 14.68, 32: 27.00},
	"TagSpace":  {1: 1, 2: 1.99, 4: 3.96, 8: 7.83, 16: 15.31, 32: 29.26},
}

// PaperTable8 maps workload -> compounded gain rows.
var PaperTable8 = map[string]OptExtGains{
	"WordEmbed": {TechScaling: 3.19, VectorPacking: 2.93, STEDecomposition: 3.86, CounterIncrement: 1.75},
	"SIFT":      {TechScaling: 3.19, VectorPacking: 3.28, STEDecomposition: 3.93, CounterIncrement: 1.75},
	"TagSpace":  {TechScaling: 3.19, VectorPacking: 3.31, STEDecomposition: 3.96, CounterIncrement: 1.75},
}

// PaperTable8Total maps workload -> total compounded improvement.
var PaperTable8Total = map[string]float64{
	"WordEmbed": 63.14, "SIFT": 71.96, "TagSpace": 73.17,
}

// PaperUtilization maps workload -> §V-A board utilization fraction.
var PaperUtilization = map[string]float64{
	"WordEmbed": 0.417, "SIFT": 0.909, "TagSpace": 0.786,
}

// PaperBandwidthGbps maps workload -> §VI-C sustained report bandwidth.
var PaperBandwidthGbps = map[string]float64{
	"WordEmbed": 36.2, "SIFT": 18.1, "TagSpace": 9.0,
}

// PaperSpeedupOverCPU is the headline claim: "current generation hardware
// can achieve ~50x performance over multicore processors" (small datasets,
// Xeon vs AP Gen 1 is ~10x; the ~50x figure refers to ARM-class multicores:
// 103.63/1.97 = 52.6 for WordEmbed).
const PaperSpeedupOverCPU = 50.0
