package perfmodel

import (
	"time"

	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/gpu"
	"repro/internal/report"
	"repro/internal/workload"
)

// Cell is one (platform, workload) model evaluation.
type Cell struct {
	Workload string
	Platform string
	Runtime  time.Duration
	Energy   float64 // queries per Joule
}

// modelRuntime evaluates the runtime model for one platform name.
func modelRuntime(platform string, n, queries, dim int) time.Duration {
	switch platform {
	case "Xeon E5-2620":
		return CPUTime(XeonE5(), n, queries, dim)
	case "Cortex A15":
		return CPUTime(CortexA15(), n, queries, dim)
	case "Jetson TK1":
		return mustGPU(gpu.TegraK1()).ModelTime(n, queries)
	case "Titan X":
		return mustGPU(gpu.TitanX()).ModelTime(n, queries)
	case "Kintex-7":
		return mustFPGA().ModelTime(n, dim, queries)
	case "AP Gen 1":
		return APTime(APGen1(), n, queries, dim)
	case "AP Gen 2":
		return APTime(APGen2(), n, queries, dim)
	case "AP Opt+Ext":
		return APOptExtTime(n, queries, dim)
	default:
		panic("perfmodel: unknown platform " + platform)
	}
}

func platformOf(name string) Platform {
	switch name {
	case "Xeon E5-2620":
		return XeonE5()
	case "Cortex A15":
		return CortexA15()
	case "Jetson TK1":
		return JetsonTK1()
	case "Titan X":
		return TitanX()
	case "Kintex-7":
		return Kintex7()
	case "AP Gen 1", "AP Gen 2", "AP Opt+Ext":
		return APBoard()
	default:
		panic("perfmodel: unknown platform " + name)
	}
}

func mustGPU(cfg gpu.Config) *gpu.Device {
	d, err := gpu.New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

func mustFPGA() *fpga.Accelerator {
	a, err := fpga.New(fpga.DefaultConfig())
	if err != nil {
		panic(err)
	}
	return a
}

// Table3Platforms lists the small-dataset columns in paper order.
var Table3Platforms = []string{"Xeon E5-2620", "Cortex A15", "Jetson TK1", "Kintex-7", "AP Gen 1"}

// Table4Platforms lists the large-dataset columns in paper order.
var Table4Platforms = []string{
	"Xeon E5-2620", "Cortex A15", "Jetson TK1", "Titan X", "Kintex-7",
	"AP Gen 1", "AP Gen 2", "AP Opt+Ext",
}

// Table3 evaluates the small-dataset models for every cell.
func Table3() []Cell {
	return evalTable(Table3Platforms, true)
}

// Table4 evaluates the large-dataset models for every cell.
func Table4() []Cell {
	return evalTable(Table4Platforms, false)
}

func evalTable(platforms []string, small bool) []Cell {
	var out []Cell
	for _, w := range workload.All() {
		n := w.LargeN
		if small {
			n = w.SmallN
		}
		for _, p := range platforms {
			rt := modelRuntime(p, n, w.Queries, w.Dim)
			plat := platformOf(p)
			if p == "AP Opt+Ext" {
				// §VII-D: "the additional compute density from technology
				// scaling incurs power overheads so we expect energy
				// efficiency to only improve by up to 23x" — the denser
				// 28 nm fabric burns proportionally more power.
				plat.DynamicPowerW *= core.TechnologyScaling(28)
			}
			out = append(out, Cell{
				Workload: w.Name,
				Platform: p,
				Runtime:  rt,
				Energy:   QueriesPerJoule(plat, w.Queries, rt),
			})
		}
	}
	return out
}

// CompareTable3 builds the paper-vs-model comparison for Table III runtimes
// (milliseconds) and energies (queries/Joule).
func CompareTable3() (runtime, energy report.ComparisonSet) {
	runtime.Name = "Table III: small-dataset runtime (ms)"
	energy.Name = "Table III: small-dataset energy (queries/Joule)"
	for _, c := range Table3() {
		label := c.Workload + " / " + c.Platform
		runtime.Add(label, PaperTable3Runtime[c.Workload][c.Platform],
			float64(c.Runtime)/float64(time.Millisecond), "ms")
		energy.Add(label, PaperTable3Energy[c.Workload][c.Platform], c.Energy, "q/J")
	}
	return runtime, energy
}

// CompareTable4 builds the paper-vs-model comparison for Table IV runtimes
// (seconds) and energies.
func CompareTable4() (runtime, energy report.ComparisonSet) {
	runtime.Name = "Table IV: large-dataset runtime (s)"
	energy.Name = "Table IV: large-dataset energy (queries/Joule)"
	for _, c := range Table4() {
		label := c.Workload + " / " + c.Platform
		runtime.Add(label, PaperTable4Runtime[c.Workload][c.Platform], c.Runtime.Seconds(), "s")
		energy.Add(label, PaperTable4Energy[c.Workload][c.Platform], c.Energy, "q/J")
	}
	return runtime, energy
}

// Table5Structures lists the Table V rows in paper order.
var Table5Structures = []string{"Linear (No Index)", "KD-Tree", "K-Means", "MPLSH"}

// CompareTable5 builds the paper-vs-model comparison for the indexing
// speedups on large kNN-TagSpace.
func CompareTable5() report.ComparisonSet {
	var cs report.ComparisonSet
	cs.Name = "Table V: indexing speedups on kNN-TagSpace (vs single-thread ARM)"
	w := workload.TagSpace()
	models := IndexingModels()
	for _, name := range Table5Structures {
		m := models[name]
		gen1 := IndexingSpeedup(APGen1(), m, w.LargeN, w.Queries, w.Dim)
		gen2 := IndexingSpeedup(APGen2(), m, w.LargeN, w.Queries, w.Dim)
		cs.Add(name+" / Gen 1", PaperTable5[name][0], gen1, "x")
		cs.Add(name+" / Gen 2", PaperTable5[name][1], gen2, "x")
	}
	return cs
}

// CompareTable7 builds the STE-decomposition comparison from analyses of the
// actual generated macros.
func CompareTable7() report.ComparisonSet {
	var cs report.ComparisonSet
	cs.Name = "Table VII: STE decomposition resource savings"
	for _, w := range workload.All() {
		rep := macroDecomposition(w.Dim)
		for _, x := range []int{1, 2, 4, 8, 16, 32} {
			cs.Add(w.Name+" / x="+itoa(x), PaperTable7[w.Name][x], rep.Savings(x), "x")
		}
	}
	return cs
}

// CompareTable8 builds the compounded-gain comparison.
func CompareTable8() report.ComparisonSet {
	var cs report.ComparisonSet
	cs.Name = "Table VIII: compounded optimization gains"
	for _, w := range workload.All() {
		g := ComputeOptExtGains(w.Dim)
		p := PaperTable8[w.Name]
		cs.Add(w.Name+" / tech scaling", p.TechScaling, g.TechScaling, "x")
		cs.Add(w.Name+" / vector packing", p.VectorPacking, g.VectorPacking, "x")
		cs.Add(w.Name+" / STE decomposition", p.STEDecomposition, g.STEDecomposition, "x")
		cs.Add(w.Name+" / counter increment", p.CounterIncrement, g.CounterIncrement, "x")
		cs.Add(w.Name+" / total", PaperTable8Total[w.Name], g.Total(), "x")
	}
	return cs
}

// CompareBandwidth builds the §VI-C report-bandwidth comparison.
func CompareBandwidth() report.ComparisonSet {
	var cs report.ComparisonSet
	cs.Name = "§VI-C: sustained report bandwidth (Gbps)"
	for _, w := range workload.All() {
		cs.Add(w.Name, PaperBandwidthGbps[w.Name], ReportBandwidthGbps(w.SmallN, w.Dim), "Gbps")
	}
	return cs
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
