package bitvec

import (
	"testing"

	"repro/internal/stats"
)

func TestDatasetAppendAt(t *testing.T) {
	ds := NewDataset(64)
	rng := stats.NewRNG(3)
	var originals []Vector
	for i := 0; i < 10; i++ {
		v := Random(rng, 64)
		originals = append(originals, v)
		if id := ds.Append(v); id != i {
			t.Fatalf("Append returned id %d, want %d", id, i)
		}
	}
	if ds.Len() != 10 {
		t.Fatalf("Len = %d, want 10", ds.Len())
	}
	for i, v := range originals {
		if !ds.At(i).Equal(v) {
			t.Errorf("vector %d does not round trip", i)
		}
	}
}

func TestDatasetAppendDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Append with wrong dim did not panic")
		}
	}()
	NewDataset(64).Append(New(32))
}

func TestDatasetSlice(t *testing.T) {
	rng := stats.NewRNG(11)
	ds := RandomDataset(rng, 20, 32)
	s := ds.Slice(5, 12)
	if s.Len() != 7 {
		t.Fatalf("slice Len = %d, want 7", s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if !s.At(i).Equal(ds.At(i + 5)) {
			t.Errorf("slice vector %d differs from source %d", i, i+5)
		}
	}
}

func TestDatasetSubset(t *testing.T) {
	rng := stats.NewRNG(13)
	ds := RandomDataset(rng, 16, 48)
	ids := []int{3, 0, 15, 7}
	sub := ds.Subset(ids)
	if sub.Len() != len(ids) {
		t.Fatalf("subset Len = %d, want %d", sub.Len(), len(ids))
	}
	for i, id := range ids {
		if !sub.At(i).Equal(ds.At(id)) {
			t.Errorf("subset vector %d differs from source %d", i, id)
		}
	}
}

func TestDatasetHamming(t *testing.T) {
	ds := NewDataset(4)
	a, _ := ParseBits("1011")
	ds.Append(a)
	q, _ := ParseBits("1001")
	if d := ds.Hamming(0, q); d != 1 {
		t.Errorf("dataset Hamming = %d, want 1", d)
	}
}

func TestDatasetBytesEncoded(t *testing.T) {
	// Paper §V-A: 1024 vectors x 128 dims = 128 Kb = 16 KB of encoded data.
	ds := RandomDataset(stats.NewRNG(1), 1024, 128)
	if got := ds.BytesEncoded(); got != 16*1024 {
		t.Errorf("BytesEncoded = %d, want %d", got, 16*1024)
	}
}

// Regression: dims that are not byte multiples round up per vector instead of
// truncating (dim=12 used to count 1 byte per vector, dim=1 counted 0).
func TestDatasetBytesEncodedRoundsUp(t *testing.T) {
	cases := []struct {
		n, dim, want int
	}{
		{10, 12, 20}, // ceil(12/8) = 2 bytes each
		{5, 1, 5},    // ceil(1/8) = 1 byte each, was 0
		{3, 8, 3},    // exact byte multiple unchanged
		{7, 65, 63},  // ceil(65/8) = 9 bytes each
	}
	for _, c := range cases {
		ds := RandomDataset(stats.NewRNG(uint64(c.dim)), c.n, c.dim)
		if got := ds.BytesEncoded(); got != c.want {
			t.Errorf("n=%d dim=%d: BytesEncoded = %d, want %d", c.n, c.dim, got, c.want)
		}
	}
}

func TestDatasetWordsSlab(t *testing.T) {
	ds := RandomDataset(stats.NewRNG(3), 9, 100)
	wpv := ds.WordsPerVector()
	if wpv != WordsFor(100) {
		t.Fatalf("WordsPerVector = %d, want %d", wpv, WordsFor(100))
	}
	slab := ds.Words()
	if len(slab) != 9*wpv {
		t.Fatalf("Words len = %d, want %d", len(slab), 9*wpv)
	}
	for i := 0; i < ds.Len(); i++ {
		row := slab[i*wpv : (i+1)*wpv]
		for w, want := range ds.WordsAt(i) {
			if row[w] != want {
				t.Fatalf("vector %d word %d: slab %x != WordsAt %x", i, w, row[w], want)
			}
		}
	}
}

func TestDatasetAtOutOfRangePanics(t *testing.T) {
	ds := RandomDataset(stats.NewRNG(2), 4, 16)
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	ds.At(4)
}
