package bitvec

import (
	"fmt"

	"repro/internal/stats"
)

// Dataset is a collection of equal-dimensionality binary vectors stored
// contiguously, the in-memory layout the scan kernels stream through. Index
// positions double as the vector IDs the automata reporting states return.
type Dataset struct {
	dim     int
	wordsPV int // words per vector
	words   []uint64
	n       int
}

// NewDataset returns an empty dataset for vectors of the given dimensionality.
func NewDataset(dim int) *Dataset {
	if dim <= 0 {
		panic(fmt.Sprintf("bitvec: non-positive dimensionality %d", dim))
	}
	return &Dataset{dim: dim, wordsPV: WordsFor(dim)}
}

// RandomDataset returns a dataset of n independent uniform vectors.
func RandomDataset(rng *stats.RNG, n, dim int) *Dataset {
	ds := NewDataset(dim)
	for i := 0; i < n; i++ {
		ds.Append(Random(rng, dim))
	}
	return ds
}

// Dim returns the vector dimensionality.
func (ds *Dataset) Dim() int { return ds.dim }

// Len returns the number of vectors.
func (ds *Dataset) Len() int { return ds.n }

// Append adds a vector and returns its ID. It panics on a dimensionality
// mismatch.
func (ds *Dataset) Append(v Vector) int {
	if v.Dim() != ds.dim {
		panic(fmt.Sprintf("bitvec: dataset dim %d, vector dim %d", ds.dim, v.Dim()))
	}
	ds.words = append(ds.words, v.Words()...)
	id := ds.n
	ds.n++
	return id
}

// At returns vector i without copying; the returned vector aliases dataset
// storage and must not be mutated. Because Append may reallocate the backing
// array, At is only safe against a dataset that is not being appended to
// concurrently — a mutable layer that interleaves reads and appends must use
// a stable-snapshot store instead (see internal/live's delta segment).
func (ds *Dataset) At(i int) Vector {
	if i < 0 || i >= ds.n {
		panic(fmt.Sprintf("bitvec: dataset index %d out of range [0,%d)", i, ds.n))
	}
	return Vector{dim: ds.dim, words: ds.words[i*ds.wordsPV : (i+1)*ds.wordsPV]}
}

// WordsAt returns the packed words of vector i for kernel use.
func (ds *Dataset) WordsAt(i int) []uint64 {
	return ds.words[i*ds.wordsPV : (i+1)*ds.wordsPV]
}

// Words returns the packed backing words of all vectors as one contiguous
// slab — vector i occupies words [i*WordsPerVector(), (i+1)*WordsPerVector()).
// The blocked scan kernel streams this directly; callers must not mutate it,
// and (like At) must not hold it across a concurrent Append.
func (ds *Dataset) Words() []uint64 {
	return ds.words[:ds.n*ds.wordsPV]
}

// WordsPerVector returns the stride of the packed slab: the number of 64-bit
// words each vector occupies, WordsFor(Dim()).
func (ds *Dataset) WordsPerVector() int { return ds.wordsPV }

// Slice returns a new dataset sharing storage with vectors [lo, hi).
func (ds *Dataset) Slice(lo, hi int) *Dataset {
	if lo < 0 || hi > ds.n || lo > hi {
		panic(fmt.Sprintf("bitvec: slice [%d,%d) out of range [0,%d)", lo, hi, ds.n))
	}
	return &Dataset{
		dim:     ds.dim,
		wordsPV: ds.wordsPV,
		words:   ds.words[lo*ds.wordsPV : hi*ds.wordsPV],
		n:       hi - lo,
	}
}

// Subset returns a new dataset containing copies of the vectors at ids.
func (ds *Dataset) Subset(ids []int) *Dataset {
	out := NewDataset(ds.dim)
	for _, id := range ids {
		out.Append(ds.At(id))
	}
	return out
}

// Hamming returns the Hamming distance between vector i and q.
func (ds *Dataset) Hamming(i int, q Vector) int {
	return ds.At(i).Hamming(q)
}

// BytesEncoded returns the total number of encoded data bytes, the figure the
// paper reports as "128 Kb of encoded data per board configuration" (§V-A).
// Each vector is accounted at its own byte-rounded size — ceil(dim/8) — so
// dimensionalities that are not byte multiples are not under-reported (a
// dim=12 vector encodes 2 bytes, not 1).
func (ds *Dataset) BytesEncoded() int {
	return ds.n * ((ds.dim + 7) / 8)
}
