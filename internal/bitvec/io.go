package bitvec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/aperr"
)

// Binary dataset format: a fixed little-endian header followed by the packed
// vector words, so apserve/apknn can persist and reload real datasets
// instead of synthesizing one per boot.
//
//	offset  size  field
//	0       4     magic "APDS"
//	4       4     format version (currently 1)
//	8       4     dim — bits per vector
//	12      8     n — vector count
//	20      ...   n * WordsFor(dim) uint64 words, little-endian
//
// The payload is exactly the in-memory layout Dataset streams through, so a
// load is one contiguous read.

// DatasetMagic is the four-byte file signature of the binary dataset format.
const DatasetMagic = "APDS"

// datasetVersion is the current format version written by WriteTo.
const datasetVersion = 1

// headerLen is the fixed byte length of the dataset header.
const headerLen = 4 + 4 + 4 + 8

// WriteTo serializes the dataset in the binary format above. It implements
// io.WriterTo; the returned count is the total bytes written.
func (ds *Dataset) WriteTo(w io.Writer) (int64, error) {
	var hdr [headerLen]byte
	copy(hdr[0:4], DatasetMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], datasetVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(ds.dim))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(ds.n))
	n, err := w.Write(hdr[:])
	written := int64(n)
	if err != nil {
		return written, fmt.Errorf("bitvec: write dataset header: %w", err)
	}
	buf := make([]byte, 8*len(ds.words))
	for i, word := range ds.words {
		binary.LittleEndian.PutUint64(buf[8*i:], word)
	}
	n, err = w.Write(buf)
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("bitvec: write dataset words: %w", err)
	}
	return written, nil
}

// truncated maps a short read onto the typed aperr.ErrTruncated sentinel,
// passing genuine I/O failures through unchanged.
func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return aperr.ErrTruncated
	}
	return err
}

// ReadDataset parses a dataset serialized by WriteTo, validating the magic,
// version and geometry before allocating the payload. Failures carry the
// typed sentinels: a file that ends early wraps aperr.ErrTruncated, a wrong
// magic, version, impossible geometry or non-canonical tail bits wrap
// aperr.ErrBadFormat — never a panic, never a silent short read.
func ReadDataset(r io.Reader) (*Dataset, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("bitvec: read dataset header: %w", truncated(err))
	}
	if string(hdr[0:4]) != DatasetMagic {
		return nil, fmt.Errorf("bitvec: bad dataset magic %q (want %q): %w", hdr[0:4], DatasetMagic, aperr.ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != datasetVersion {
		return nil, fmt.Errorf("bitvec: unsupported dataset format version %d (want %d): %w", v, datasetVersion, aperr.ErrBadFormat)
	}
	dim := binary.LittleEndian.Uint32(hdr[8:12])
	count := binary.LittleEndian.Uint64(hdr[12:20])
	if dim == 0 || dim > 1<<20 {
		return nil, fmt.Errorf("bitvec: dataset dim %d out of range: %w", dim, aperr.ErrBadFormat)
	}
	wordsPV := uint64(WordsFor(int(dim)))
	if count > math.MaxInt64/(8*wordsPV) {
		return nil, fmt.Errorf("bitvec: dataset count %d overflows: %w", count, aperr.ErrBadFormat)
	}
	ds := NewDataset(int(dim))
	ds.n = int(count)
	if err := readWords(r, &ds.words, int(count*wordsPV)); err != nil {
		return nil, fmt.Errorf("bitvec: read dataset words: %w", err)
	}
	// Tails beyond dim must be zero (canonical form); reject corrupt files
	// rather than search garbage bits.
	if tail := uint(dim) & 63; tail != 0 {
		mask := ^uint64(0) << tail
		for i := int(wordsPV) - 1; i < len(ds.words); i += int(wordsPV) {
			if ds.words[i]&mask != 0 {
				return nil, fmt.Errorf("bitvec: vector %d has bits beyond dim %d: %w", i/int(wordsPV), dim, aperr.ErrBadFormat)
			}
		}
	}
	return ds, nil
}

// readWords appends total little-endian uint64s from r into dst in bounded
// chunks, so a corrupt or hostile header claiming petabytes fails with a
// clean aperr.ErrTruncated as soon as the actual bytes run out, instead of
// a giant up-front allocation.
func readWords(r io.Reader, dst *[]uint64, total int) error {
	const chunkWords = 1 << 16
	buf := make([]byte, 8*min(chunkWords, total))
	for read := 0; read < total; {
		n := min(chunkWords, total-read)
		if _, err := io.ReadFull(r, buf[:8*n]); err != nil {
			return truncated(err)
		}
		for i := 0; i < n; i++ {
			*dst = append(*dst, binary.LittleEndian.Uint64(buf[8*i:]))
		}
		read += n
	}
	return nil
}

// SaveFile writes the dataset to path in the binary format.
func (ds *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := ds.WriteTo(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset saved by SaveFile.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDataset(bufio.NewReader(f))
}
