package bitvec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary dataset format: a fixed little-endian header followed by the packed
// vector words, so apserve/apknn can persist and reload real datasets
// instead of synthesizing one per boot.
//
//	offset  size  field
//	0       4     magic "APDS"
//	4       4     format version (currently 1)
//	8       4     dim — bits per vector
//	12      8     n — vector count
//	20      ...   n * WordsFor(dim) uint64 words, little-endian
//
// The payload is exactly the in-memory layout Dataset streams through, so a
// load is one contiguous read.

// DatasetMagic is the four-byte file signature of the binary dataset format.
const DatasetMagic = "APDS"

// datasetVersion is the current format version written by WriteTo.
const datasetVersion = 1

// headerLen is the fixed byte length of the dataset header.
const headerLen = 4 + 4 + 4 + 8

// WriteTo serializes the dataset in the binary format above. It implements
// io.WriterTo; the returned count is the total bytes written.
func (ds *Dataset) WriteTo(w io.Writer) (int64, error) {
	var hdr [headerLen]byte
	copy(hdr[0:4], DatasetMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], datasetVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(ds.dim))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(ds.n))
	n, err := w.Write(hdr[:])
	written := int64(n)
	if err != nil {
		return written, fmt.Errorf("bitvec: write dataset header: %w", err)
	}
	buf := make([]byte, 8*len(ds.words))
	for i, word := range ds.words {
		binary.LittleEndian.PutUint64(buf[8*i:], word)
	}
	n, err = w.Write(buf)
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("bitvec: write dataset words: %w", err)
	}
	return written, nil
}

// ReadDataset parses a dataset serialized by WriteTo, validating the magic,
// version and geometry before allocating the payload.
func ReadDataset(r io.Reader) (*Dataset, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("bitvec: read dataset header: %w", err)
	}
	if string(hdr[0:4]) != DatasetMagic {
		return nil, fmt.Errorf("bitvec: bad dataset magic %q (want %q)", hdr[0:4], DatasetMagic)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != datasetVersion {
		return nil, fmt.Errorf("bitvec: unsupported dataset format version %d (want %d)", v, datasetVersion)
	}
	dim := binary.LittleEndian.Uint32(hdr[8:12])
	count := binary.LittleEndian.Uint64(hdr[12:20])
	if dim == 0 || dim > 1<<20 {
		return nil, fmt.Errorf("bitvec: dataset dim %d out of range", dim)
	}
	wordsPV := uint64(WordsFor(int(dim)))
	if count > math.MaxInt64/(8*wordsPV) {
		return nil, fmt.Errorf("bitvec: dataset count %d overflows", count)
	}
	ds := NewDataset(int(dim))
	ds.n = int(count)
	// The payload is read in bounded chunks so a corrupt or hostile header
	// claiming petabytes fails with a clean truncation error as soon as the
	// actual bytes run out, instead of a giant up-front allocation.
	const chunkWords = 1 << 16
	total := int(count * wordsPV)
	buf := make([]byte, 8*min(chunkWords, total))
	for read := 0; read < total; {
		n := min(chunkWords, total-read)
		if _, err := io.ReadFull(r, buf[:8*n]); err != nil {
			return nil, fmt.Errorf("bitvec: read dataset words: %w", err)
		}
		for i := 0; i < n; i++ {
			ds.words = append(ds.words, binary.LittleEndian.Uint64(buf[8*i:]))
		}
		read += n
	}
	// Tails beyond dim must be zero (canonical form); reject corrupt files
	// rather than search garbage bits.
	if tail := uint(dim) & 63; tail != 0 {
		mask := ^uint64(0) << tail
		for i := int(wordsPV) - 1; i < len(ds.words); i += int(wordsPV) {
			if ds.words[i]&mask != 0 {
				return nil, fmt.Errorf("bitvec: vector %d has bits beyond dim %d", i/int(wordsPV), dim)
			}
		}
	}
	return ds, nil
}

// SaveFile writes the dataset to path in the binary format.
func (ds *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := ds.WriteTo(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset saved by SaveFile.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDataset(bufio.NewReader(f))
}
