package bitvec_test

import (
	"strings"
	"testing"

	"repro/internal/bitvec"
)

// FuzzParseBits checks the parsing boundary: arbitrary strings either parse
// into a vector that round-trips exactly through String, or return an error
// — never a panic, never silent truncation.
func FuzzParseBits(f *testing.F) {
	for _, seed := range []string{"1011", "0", "1 0 1 1", "", " ", "10x1", "1111111111111111111111111111111111111111111111111111111111111111110"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := bitvec.ParseBits(s)
		clean := strings.ReplaceAll(s, " ", "")
		if err != nil {
			// Errors are reserved for genuinely malformed input: empty after
			// space-stripping, or a non-bit rune.
			if clean != "" && strings.Trim(clean, "01") == "" {
				t.Fatalf("ParseBits(%q) rejected well-formed input: %v", s, err)
			}
			return
		}
		if strings.Trim(clean, "01") != "" || clean == "" {
			t.Fatalf("ParseBits(%q) accepted malformed input", s)
		}
		if v.Dim() != len(clean) {
			t.Fatalf("ParseBits(%q): dim %d, want %d", s, v.Dim(), len(clean))
		}
		for i := 0; i < v.Dim(); i++ {
			if v.Bit(i) != (clean[i] == '1') {
				t.Fatalf("ParseBits(%q): bit %d = %v", s, i, v.Bit(i))
			}
		}
		// Round-trip: String renders the same bits (grouped with spaces).
		back, err := bitvec.ParseBits(v.String())
		if err != nil {
			t.Fatalf("round-trip ParseBits(String) failed: %v", err)
		}
		if !back.Equal(v) {
			t.Fatalf("round-trip mismatch: %v vs %v", back, v)
		}
	})
}
