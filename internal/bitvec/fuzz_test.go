package bitvec_test

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/stats"
)

// FuzzParseBits checks the parsing boundary: arbitrary strings either parse
// into a vector that round-trips exactly through String, or return an error
// — never a panic, never silent truncation.
func FuzzParseBits(f *testing.F) {
	for _, seed := range []string{"1011", "0", "1 0 1 1", "", " ", "10x1", "1111111111111111111111111111111111111111111111111111111111111111110"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := bitvec.ParseBits(s)
		clean := strings.ReplaceAll(s, " ", "")
		if err != nil {
			// Errors are reserved for genuinely malformed input: empty after
			// space-stripping, or a non-bit rune.
			if clean != "" && strings.Trim(clean, "01") == "" {
				t.Fatalf("ParseBits(%q) rejected well-formed input: %v", s, err)
			}
			return
		}
		if strings.Trim(clean, "01") != "" || clean == "" {
			t.Fatalf("ParseBits(%q) accepted malformed input", s)
		}
		if v.Dim() != len(clean) {
			t.Fatalf("ParseBits(%q): dim %d, want %d", s, v.Dim(), len(clean))
		}
		for i := 0; i < v.Dim(); i++ {
			if v.Bit(i) != (clean[i] == '1') {
				t.Fatalf("ParseBits(%q): bit %d = %v", s, i, v.Bit(i))
			}
		}
		// Round-trip: String renders the same bits (grouped with spaces).
		back, err := bitvec.ParseBits(v.String())
		if err != nil {
			t.Fatalf("round-trip ParseBits(String) failed: %v", err)
		}
		if !back.Equal(v) {
			t.Fatalf("round-trip mismatch: %v vs %v", back, v)
		}
	})
}

// FuzzReadDataset hammers the binary dataset header boundary: arbitrary
// bytes either parse into a dataset whose re-serialization reproduces the
// consumed input prefix exactly, or fail with an error — never a panic and
// never a large allocation driven by a hostile header (a corrupt count
// must fail on byte exhaustion, not OOM first).
func FuzzReadDataset(f *testing.F) {
	valid := func(n, dim int) []byte {
		var buf bytes.Buffer
		ds := bitvec.RandomDataset(stats.NewRNG(7), n, dim)
		if _, err := ds.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(valid(3, 16))
	f.Add(valid(1, 64))
	f.Add(valid(2, 70)) // tail mask in play
	f.Add(valid(3, 16)[:10])
	f.Add([]byte("APDS"))
	f.Add([]byte("JPEG then garbage"))
	corrupt := valid(2, 70)
	corrupt[len(corrupt)-1] |= 0x80 // set a bit beyond dim in the last word
	f.Add(corrupt)
	badVersion := valid(3, 16)
	binary.LittleEndian.PutUint32(badVersion[4:8], 2)
	f.Add(badVersion)
	hugeCount := valid(1, 16)
	binary.LittleEndian.PutUint64(hugeCount[12:20], 1<<40) // claims a terabyte
	f.Add(hugeCount)
	zeroDim := valid(1, 16)
	binary.LittleEndian.PutUint32(zeroDim[8:12], 0)
	f.Add(zeroDim)

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := bitvec.ReadDataset(bytes.NewReader(data))
		if err != nil {
			return
		}
		if ds.Dim() <= 0 || ds.Len() < 0 {
			t.Fatalf("accepted dataset with geometry %dx%d", ds.Len(), ds.Dim())
		}
		// Round-trip: a successfully parsed dataset re-serializes to exactly
		// the bytes that were consumed (trailing junk is not the parser's
		// concern), so parse is the inverse of WriteTo and accepted files
		// are canonical.
		var buf bytes.Buffer
		if _, err := ds.WriteTo(&buf); err != nil {
			t.Fatalf("re-serialize parsed dataset: %v", err)
		}
		if buf.Len() > len(data) || !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatalf("round-trip mismatch: parsed %d vectors x %d bits, re-encoded %d bytes from %d input bytes",
				ds.Len(), ds.Dim(), buf.Len(), len(data))
		}
		// Every vector must be readable without panicking.
		for i := 0; i < ds.Len(); i++ {
			_ = ds.At(i)
		}
	})
}
