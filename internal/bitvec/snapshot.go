package bitvec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/aperr"
)

// Snapshot format: version 2 of the APDS container. It extends the plain
// dataset format with a manifest so a snapshot plus a write-ahead-log suffix
// reconstructs the exact live view of a mutable index — identical global
// IDs, identical tie-breaks, identical NextID watermark.
//
//	offset  size  field
//	0       4     magic "APDS"
//	4       4     format version (2 for snapshots)
//	8       4     dim — bits per vector
//	12      8     n — vector count
//	20      8     generation — the base compilation this snapshot captures
//	28      8     NextID — the global-ID watermark at the snapshot cut
//	36      1     ids flag: 0 = identity (vector i has global ID i),
//	              1 = explicit ascending ID list follows
//	37      ...   [flag=1] n uint64 global IDs, strictly ascending
//	...     8     tombstone count
//	...     ...   tombstone global IDs, strictly ascending
//	...     ...   n * WordsFor(dim) uint64 words (same payload as version 1)
//
// Version 1 files (WriteTo/ReadDataset) remain the interchange format for
// plain datasets; version 2 is what the durability layer persists.

// snapshotVersion is the APDS container version carrying a manifest.
const snapshotVersion = 2

// Manifest is the recovery metadata of one snapshot.
type Manifest struct {
	// Generation numbers the base compilation the snapshot captures.
	Generation int64
	// NextID is the global-ID watermark: the ID the next insert would have
	// been assigned at the snapshot cut. Replay advances it.
	NextID int
	// IDs maps vector position to global ID, strictly ascending. Nil means
	// identity — position i holds global ID i.
	IDs []int
	// Tombstones are global IDs deleted but not folded out of the payload,
	// strictly ascending. Snapshots written at a compaction cut fold every
	// tombstone into the survivor set, so this is normally empty; the format
	// carries it so any consistent view can be persisted.
	Tombstones []int
}

// WriteSnapshot serializes ds plus its manifest in APDS version 2. The
// manifest's IDs, when present, must be one strictly ascending global ID per
// vector, all below NextID.
func WriteSnapshot(w io.Writer, ds *Dataset, m *Manifest) (int64, error) {
	if m.IDs != nil && len(m.IDs) != ds.Len() {
		return 0, fmt.Errorf("bitvec: snapshot has %d ids for %d vectors: %w", len(m.IDs), ds.Len(), aperr.ErrBadFormat)
	}
	var buf []byte
	buf = append(buf, DatasetMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, snapshotVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ds.dim))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ds.n))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Generation))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.NextID))
	if m.IDs == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		for _, id := range m.IDs {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(m.Tombstones)))
	for _, id := range m.Tombstones {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
	}
	n, err := w.Write(buf)
	written := int64(n)
	if err != nil {
		return written, fmt.Errorf("bitvec: write snapshot manifest: %w", err)
	}
	payload := make([]byte, 8*len(ds.words))
	for i, word := range ds.words {
		binary.LittleEndian.PutUint64(payload[8*i:], word)
	}
	n, err = w.Write(payload)
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("bitvec: write snapshot words: %w", err)
	}
	return written, nil
}

// ReadSnapshot parses an APDS version 2 snapshot, validating the header,
// manifest and payload geometry. Failures carry the typed sentinels
// (aperr.ErrBadFormat, aperr.ErrTruncated) like ReadDataset.
func ReadSnapshot(r io.Reader) (*Dataset, *Manifest, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("bitvec: read snapshot header: %w", truncated(err))
	}
	if string(hdr[0:4]) != DatasetMagic {
		return nil, nil, fmt.Errorf("bitvec: bad snapshot magic %q (want %q): %w", hdr[0:4], DatasetMagic, aperr.ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != snapshotVersion {
		return nil, nil, fmt.Errorf("bitvec: unsupported snapshot version %d (want %d): %w", v, snapshotVersion, aperr.ErrBadFormat)
	}
	dim := binary.LittleEndian.Uint32(hdr[8:12])
	count := binary.LittleEndian.Uint64(hdr[12:20])
	if dim == 0 || dim > 1<<20 {
		return nil, nil, fmt.Errorf("bitvec: snapshot dim %d out of range: %w", dim, aperr.ErrBadFormat)
	}
	wordsPV := uint64(WordsFor(int(dim)))
	if count > math.MaxInt64/(8*wordsPV) {
		return nil, nil, fmt.Errorf("bitvec: snapshot count %d overflows: %w", count, aperr.ErrBadFormat)
	}
	var mhdr [17]byte
	if _, err := io.ReadFull(r, mhdr[:]); err != nil {
		return nil, nil, fmt.Errorf("bitvec: read snapshot manifest: %w", truncated(err))
	}
	m := &Manifest{
		Generation: int64(binary.LittleEndian.Uint64(mhdr[0:8])),
		NextID:     int(binary.LittleEndian.Uint64(mhdr[8:16])),
	}
	if m.Generation < 0 || m.NextID < 0 || uint64(m.NextID) < count {
		return nil, nil, fmt.Errorf("bitvec: snapshot watermark %d below %d vectors: %w", m.NextID, count, aperr.ErrBadFormat)
	}
	switch mhdr[16] {
	case 0:
	case 1:
		ids, err := readIDList(r, int(count), m.NextID, "id")
		if err != nil {
			return nil, nil, err
		}
		m.IDs = ids
	default:
		return nil, nil, fmt.Errorf("bitvec: snapshot ids flag %d: %w", mhdr[16], aperr.ErrBadFormat)
	}
	var tc [8]byte
	if _, err := io.ReadFull(r, tc[:]); err != nil {
		return nil, nil, fmt.Errorf("bitvec: read snapshot tombstone count: %w", truncated(err))
	}
	tombCount := binary.LittleEndian.Uint64(tc[:])
	if tombCount > uint64(m.NextID) {
		return nil, nil, fmt.Errorf("bitvec: %d tombstones exceed watermark %d: %w", tombCount, m.NextID, aperr.ErrBadFormat)
	}
	if tombCount > 0 {
		tombs, err := readIDList(r, int(tombCount), m.NextID, "tombstone")
		if err != nil {
			return nil, nil, err
		}
		m.Tombstones = tombs
	}
	ds := NewDataset(int(dim))
	ds.n = int(count)
	if err := readWords(r, &ds.words, int(count*wordsPV)); err != nil {
		return nil, nil, fmt.Errorf("bitvec: read snapshot words: %w", err)
	}
	if tail := uint(dim) & 63; tail != 0 {
		mask := ^uint64(0) << tail
		for i := int(wordsPV) - 1; i < len(ds.words); i += int(wordsPV) {
			if ds.words[i]&mask != 0 {
				return nil, nil, fmt.Errorf("bitvec: snapshot vector %d has bits beyond dim %d: %w", i/int(wordsPV), dim, aperr.ErrBadFormat)
			}
		}
	}
	return ds, m, nil
}

// readIDList reads n strictly ascending uint64 IDs below limit, in bounded
// chunks so a hostile count fails on byte exhaustion rather than OOM.
func readIDList(r io.Reader, n, limit int, what string) ([]int, error) {
	const chunk = 1 << 14
	ids := make([]int, 0, min(chunk, n))
	buf := make([]byte, 8*min(chunk, n))
	prev := -1
	for read := 0; read < n; {
		c := min(chunk, n-read)
		if _, err := io.ReadFull(r, buf[:8*c]); err != nil {
			return nil, fmt.Errorf("bitvec: read snapshot %s list: %w", what, truncated(err))
		}
		for i := 0; i < c; i++ {
			id := binary.LittleEndian.Uint64(buf[8*i:])
			if id >= uint64(limit) || int(id) <= prev {
				return nil, fmt.Errorf("bitvec: snapshot %s %d out of order or beyond watermark %d: %w", what, id, limit, aperr.ErrBadFormat)
			}
			prev = int(id)
			ids = append(ids, int(id))
		}
		read += c
	}
	return ids, nil
}

// SaveSnapshotFile writes the snapshot atomically: to path.tmp, fsynced,
// then renamed over path with the directory synced — a crash leaves either
// the old snapshot or the new one, never a torn file under the real name.
func SaveSnapshotFile(path string, ds *Dataset, m *Manifest) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := WriteSnapshot(w, ds, m); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadSnapshotFile reads a snapshot written by SaveSnapshotFile.
func LoadSnapshotFile(path string) (*Dataset, *Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadSnapshot(bufio.NewReader(f))
}
