// Package bitvec implements packed binary feature vectors and the Hamming
// distance kernels every other package builds on.
//
// The paper's kNN pipeline operates on binary codes produced by offline
// quantization (e.g. ITQ, §II-A): a feature vector of dimensionality d is a
// string of d bits. Vector represents such a code packed into 64-bit words so
// that Hamming distance reduces to XOR + POPCOUNT, exactly the primitive the
// CPU, GPU and FPGA baselines in the paper use.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/stats"
)

// Vector is a packed binary vector of fixed dimensionality. The dimensionality
// is carried explicitly because it need not be a multiple of 64; bits beyond
// Dim in the last word are always zero (the canonical form all constructors
// and mutators maintain).
type Vector struct {
	dim   int
	words []uint64
}

// WordsFor returns the number of 64-bit words needed to store dim bits.
func WordsFor(dim int) int {
	return (dim + 63) / 64
}

// New returns a zero vector of the given dimensionality. It panics if dim is
// not positive.
func New(dim int) Vector {
	if dim <= 0 {
		panic(fmt.Sprintf("bitvec: non-positive dimensionality %d", dim))
	}
	return Vector{dim: dim, words: make([]uint64, WordsFor(dim))}
}

// FromBits builds a vector from an explicit bit slice, where bit i of the
// result equals bitsIn[i] != 0.
func FromBits(bitsIn []byte) Vector {
	v := New(len(bitsIn))
	for i, b := range bitsIn {
		if b != 0 {
			v.Set(i, true)
		}
	}
	return v
}

// FromBools builds a vector from a bool slice.
func FromBools(bs []bool) Vector {
	v := New(len(bs))
	for i, b := range bs {
		if b {
			v.Set(i, true)
		}
	}
	return v
}

// ParseBits builds a vector from a string of '0' and '1' runes, ignoring
// spaces. It returns an error on any other rune or an empty string.
func ParseBits(s string) (Vector, error) {
	clean := strings.ReplaceAll(s, " ", "")
	if clean == "" {
		return Vector{}, fmt.Errorf("bitvec: empty bit string")
	}
	v := New(len(clean))
	for i, r := range clean {
		switch r {
		case '0':
		case '1':
			v.Set(i, true)
		default:
			return Vector{}, fmt.Errorf("bitvec: invalid bit %q at position %d", r, i)
		}
	}
	return v, nil
}

// FromWords builds a vector of the given dimensionality from packed 64-bit
// words, copying them into fresh storage and masking the tail back to
// canonical form. It panics if words is shorter than WordsFor(dim) — packed
// storage of the wrong shape is a caller bug. The copy-on-read delta
// segment (internal/live) and the binary dataset reader are built on this.
func FromWords(dim int, words []uint64) Vector {
	v := New(dim)
	if len(words) < len(v.words) {
		panic(fmt.Sprintf("bitvec: %d words cannot hold %d bits", len(words), dim))
	}
	copy(v.words, words)
	v.maskTail()
	return v
}

// Random returns a vector with independent uniform bits drawn from rng.
func Random(rng *stats.RNG, dim int) Vector {
	v := New(dim)
	for i := range v.words {
		v.words[i] = rng.Uint64()
	}
	v.maskTail()
	return v
}

// Dim returns the dimensionality.
func (v Vector) Dim() int { return v.dim }

// Words exposes the packed words for read-only kernel use. Callers must not
// mutate the returned slice.
func (v Vector) Words() []uint64 { return v.words }

// Bit returns bit i.
func (v Vector) Bit(i int) bool {
	if i < 0 || i >= v.dim {
		panic(fmt.Sprintf("bitvec: bit index %d out of range [0,%d)", i, v.dim))
	}
	return v.words[i>>6]>>(uint(i)&63)&1 == 1
}

// Set assigns bit i.
func (v Vector) Set(i int, b bool) {
	if i < 0 || i >= v.dim {
		panic(fmt.Sprintf("bitvec: bit index %d out of range [0,%d)", i, v.dim))
	}
	if b {
		v.words[i>>6] |= 1 << (uint(i) & 63)
	} else {
		v.words[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Flip toggles bit i.
func (v Vector) Flip(i int) {
	v.Set(i, !v.Bit(i))
}

// Clone returns a deep copy.
func (v Vector) Clone() Vector {
	c := Vector{dim: v.dim, words: make([]uint64, len(v.words))}
	copy(c.words, v.words)
	return c
}

// Equal reports whether v and o have the same dimensionality and bits.
func (v Vector) Equal(o Vector) bool {
	if v.dim != o.dim {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits.
func (v Vector) PopCount() int {
	n := 0
	for _, w := range v.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Hamming returns the Hamming distance between v and o. It panics if the
// dimensionalities differ: distance between incompatible codes is a caller
// bug, not a runtime condition.
func (v Vector) Hamming(o Vector) int {
	if v.dim != o.dim {
		panic(fmt.Sprintf("bitvec: dimensionality mismatch %d vs %d", v.dim, o.dim))
	}
	d := 0
	for i, w := range v.words {
		d += bits.OnesCount64(w ^ o.words[i])
	}
	return d
}

// InvertedHamming returns dim - Hamming(o), the similarity score the paper's
// automata counters accumulate (§III-A).
func (v Vector) InvertedHamming(o Vector) int {
	return v.dim - v.Hamming(o)
}

// Bits expands the vector to a byte-per-bit slice (0 or 1), the layout the
// symbol-stream builder consumes.
func (v Vector) Bits() []byte {
	out := make([]byte, v.dim)
	for i := 0; i < v.dim; i++ {
		if v.Bit(i) {
			out[i] = 1
		}
	}
	return out
}

// String renders the vector as a bit string, most significant dimension last
// (dimension 0 first), grouped in bytes for readability.
func (v Vector) String() string {
	var sb strings.Builder
	for i := 0; i < v.dim; i++ {
		if i > 0 && i%8 == 0 {
			sb.WriteByte(' ')
		}
		if v.Bit(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// maskTail zeroes the bits beyond dim in the last word, restoring canonical
// form after whole-word writes.
func (v Vector) maskTail() {
	if tail := uint(v.dim) & 63; tail != 0 {
		v.words[len(v.words)-1] &= (1 << tail) - 1
	}
}
