package bitvec

import (
	"math/bits"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestNewZero(t *testing.T) {
	v := New(100)
	if v.Dim() != 100 {
		t.Fatalf("Dim = %d, want 100", v.Dim())
	}
	if v.PopCount() != 0 {
		t.Fatalf("PopCount of zero vector = %d", v.PopCount())
	}
	for i := 0; i < 100; i++ {
		if v.Bit(i) {
			t.Fatalf("bit %d set in zero vector", i)
		}
	}
}

func TestSetGetFlip(t *testing.T) {
	v := New(130) // crosses word boundaries, non-multiple of 64
	idxs := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idxs {
		v.Set(i, true)
		if !v.Bit(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if got := v.PopCount(); got != len(idxs) {
		t.Fatalf("PopCount = %d, want %d", got, len(idxs))
	}
	for _, i := range idxs {
		v.Flip(i)
		if v.Bit(i) {
			t.Errorf("bit %d still set after Flip", i)
		}
	}
	if got := v.PopCount(); got != 0 {
		t.Fatalf("PopCount after clearing = %d, want 0", got)
	}
}

func TestParseBits(t *testing.T) {
	v, err := ParseBits("1011")
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, true}
	for i, w := range want {
		if v.Bit(i) != w {
			t.Errorf("bit %d = %v, want %v", i, v.Bit(i), w)
		}
	}
	if _, err := ParseBits("10x1"); err == nil {
		t.Error("ParseBits accepted invalid rune")
	}
	if _, err := ParseBits(""); err == nil {
		t.Error("ParseBits accepted empty string")
	}
	if _, err := ParseBits("  "); err == nil {
		t.Error("ParseBits accepted all-space string")
	}
}

func TestParseBitsIgnoresSpaces(t *testing.T) {
	a, err := ParseBits("1010 1100")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseBits("10101100")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("spaced and unspaced parse differ")
	}
}

func TestHammingKnownValues(t *testing.T) {
	a, _ := ParseBits("1011")
	b, _ := ParseBits("1001")
	if d := a.Hamming(b); d != 1 {
		t.Errorf("Hamming(1011,1001) = %d, want 1", d)
	}
	if ih := a.InvertedHamming(b); ih != 3 {
		t.Errorf("InvertedHamming = %d, want 3 (paper Fig. 3 example)", ih)
	}
	z, _ := ParseBits("0000")
	if d := z.Hamming(b); d != 2 {
		t.Errorf("Hamming(0000,1001) = %d, want 2 (paper Fig. 4 vector B)", d)
	}
}

func TestHammingPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Hamming on mismatched dims did not panic")
		}
	}()
	New(64).Hamming(New(65))
}

// Property: Hamming distance is a metric on the Boolean cube.
func TestHammingMetricProperties(t *testing.T) {
	rng := stats.NewRNG(42)
	const dim = 96
	f := func(seedA, seedB, seedC uint64) bool {
		a := Random(stats.NewRNG(seedA), dim)
		b := Random(stats.NewRNG(seedB), dim)
		c := Random(stats.NewRNG(seedC), dim)
		dab, dba := a.Hamming(b), b.Hamming(a)
		if dab != dba {
			return false // symmetry
		}
		if a.Hamming(a) != 0 {
			return false // identity
		}
		if dab < 0 || dab > dim {
			return false // bounds
		}
		return a.Hamming(c) <= dab+b.Hamming(c) // triangle inequality
	}
	cfg := &quick.Config{MaxCount: 200, Rand: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	_ = rng
}

// Property: Hamming computed via packed words equals the per-bit reference.
func TestHammingMatchesBitwiseReference(t *testing.T) {
	f := func(seedA, seedB uint64, rawDim uint16) bool {
		dim := int(rawDim)%300 + 1
		a := Random(stats.NewRNG(seedA), dim)
		b := Random(stats.NewRNG(seedB), dim)
		ref := 0
		for i := 0; i < dim; i++ {
			if a.Bit(i) != b.Bit(i) {
				ref++
			}
		}
		return a.Hamming(b) == ref
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomTailIsMasked(t *testing.T) {
	rng := stats.NewRNG(7)
	for _, dim := range []int{1, 7, 63, 65, 100, 127} {
		v := Random(rng, dim)
		last := v.Words()[len(v.Words())-1]
		if tail := uint(dim) & 63; tail != 0 {
			if last>>tail != 0 {
				t.Errorf("dim %d: bits beyond dim are set: %064b", dim, last)
			}
		}
		// PopCount must never exceed dim.
		if pc := v.PopCount(); pc > dim {
			t.Errorf("dim %d: PopCount %d > dim", dim, pc)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := Random(stats.NewRNG(1), 80)
	b := a.Clone()
	b.Flip(3)
	if a.Bit(3) == b.Bit(3) {
		t.Error("Clone shares storage with original")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	v := Random(stats.NewRNG(99), 70)
	back := FromBits(v.Bits())
	if !v.Equal(back) {
		t.Error("Bits/FromBits round trip failed")
	}
}

func TestFromBoolsRoundTrip(t *testing.T) {
	in := []bool{true, false, false, true, true}
	v := FromBools(in)
	for i, b := range in {
		if v.Bit(i) != b {
			t.Errorf("bit %d = %v, want %v", i, v.Bit(i), b)
		}
	}
}

func TestPopCountMatchesWords(t *testing.T) {
	v := Random(stats.NewRNG(5), 256)
	want := 0
	for _, w := range v.Words() {
		want += bits.OnesCount64(w)
	}
	if got := v.PopCount(); got != want {
		t.Errorf("PopCount = %d, want %d", got, want)
	}
}

func TestStringGrouping(t *testing.T) {
	v, _ := ParseBits("101011001")
	s := v.String()
	if s != "10101100 1" {
		t.Errorf("String() = %q, want %q", s, "10101100 1")
	}
}
