package bitvec_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/aperr"
	"repro/internal/bitvec"
	"repro/internal/stats"
)

func snapshotBytes(t *testing.T, ds *bitvec.Dataset, m *bitvec.Manifest) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := bitvec.WriteSnapshot(&buf, ds, m); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    bitvec.Manifest
	}{
		{"identity", bitvec.Manifest{Generation: 3, NextID: 40}},
		{"explicitIDs", bitvec.Manifest{Generation: 7, NextID: 100, IDs: nil}},
		{"tombstones", bitvec.Manifest{Generation: 1, NextID: 64, Tombstones: []int{2, 17, 63}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ds := bitvec.RandomDataset(stats.NewRNG(5), 40, 70)
			m := tc.m
			if tc.name == "explicitIDs" {
				ids := make([]int, ds.Len())
				for i := range ids {
					ids[i] = 2*i + 1 // ascending, sparse, all < NextID
				}
				m.IDs = ids
			}
			data := snapshotBytes(t, ds, &m)
			got, gm, err := bitvec.ReadSnapshot(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("ReadSnapshot: %v", err)
			}
			if got.Len() != ds.Len() || got.Dim() != ds.Dim() {
				t.Fatalf("geometry %dx%d, want %dx%d", got.Len(), got.Dim(), ds.Len(), ds.Dim())
			}
			for i := 0; i < ds.Len(); i++ {
				if !got.At(i).Equal(ds.At(i)) {
					t.Fatalf("vector %d differs after round trip", i)
				}
			}
			if gm.Generation != m.Generation || gm.NextID != m.NextID {
				t.Fatalf("manifest (%d,%d), want (%d,%d)", gm.Generation, gm.NextID, m.Generation, m.NextID)
			}
			if len(gm.IDs) != len(m.IDs) {
				t.Fatalf("got %d ids, want %d", len(gm.IDs), len(m.IDs))
			}
			for i, id := range m.IDs {
				if gm.IDs[i] != id {
					t.Fatalf("id[%d] = %d, want %d", i, gm.IDs[i], id)
				}
			}
			if len(gm.Tombstones) != len(m.Tombstones) {
				t.Fatalf("got %d tombstones, want %d", len(gm.Tombstones), len(m.Tombstones))
			}
			for i, id := range m.Tombstones {
				if gm.Tombstones[i] != id {
					t.Fatalf("tombstone[%d] = %d, want %d", i, gm.Tombstones[i], id)
				}
			}
		})
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	ds := bitvec.RandomDataset(stats.NewRNG(9), 33, 64)
	m := &bitvec.Manifest{Generation: 2, NextID: 50, IDs: nil}
	path := filepath.Join(t.TempDir(), "snap.apds")
	if err := bitvec.SaveSnapshotFile(path, ds, m); err != nil {
		t.Fatalf("SaveSnapshotFile: %v", err)
	}
	got, gm, err := bitvec.LoadSnapshotFile(path)
	if err != nil {
		t.Fatalf("LoadSnapshotFile: %v", err)
	}
	if got.Len() != ds.Len() || gm.NextID != 50 || gm.Generation != 2 {
		t.Fatalf("recovered %d vectors, manifest (%d,%d)", got.Len(), gm.Generation, gm.NextID)
	}
}

// TestSnapshotErrors walks the corruption taxonomy: every malformed input
// must surface the matching typed sentinel, never a panic or short read.
func TestSnapshotErrors(t *testing.T) {
	ds := bitvec.RandomDataset(stats.NewRNG(4), 12, 70)
	good := snapshotBytes(t, ds, &bitvec.Manifest{Generation: 1, NextID: 20, Tombstones: []int{3, 9}})

	mutate := func(f func([]byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, aperr.ErrTruncated},
		{"truncatedHeader", good[:10], aperr.ErrTruncated},
		{"truncatedManifest", good[:25], aperr.ErrTruncated},
		{"truncatedPayload", good[:len(good)-5], aperr.ErrTruncated},
		{"badMagic", mutate(func(b []byte) []byte { b[0] = 'X'; return b }), aperr.ErrBadFormat},
		{"datasetVersion", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], 1)
			return b
		}), aperr.ErrBadFormat},
		{"futureVersion", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], 99)
			return b
		}), aperr.ErrBadFormat},
		{"zeroDim", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 0)
			return b
		}), aperr.ErrBadFormat},
		{"watermarkBelowCount", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[28:36], 5) // NextID < n
			return b
		}), aperr.ErrBadFormat},
		{"badIDsFlag", mutate(func(b []byte) []byte { b[36] = 7; return b }), aperr.ErrBadFormat},
		{"tombstoneBeyondWatermark", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[45:53], 21) // first tombstone >= NextID
			return b
		}), aperr.ErrBadFormat},
		{"tombstonesOutOfOrder", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[45:53], 9)
			binary.LittleEndian.PutUint64(b[53:61], 3)
			return b
		}), aperr.ErrBadFormat},
		{"dirtyTailBits", mutate(func(b []byte) []byte {
			b[len(b)-1] |= 0x80 // dim 70: bits 70..127 of the last word must be zero
			return b
		}), aperr.ErrBadFormat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := bitvec.ReadSnapshot(bytes.NewReader(tc.data))
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want errors.Is(..., %v)", err, tc.want)
			}
		})
	}
}

func TestSnapshotIDCountMismatchRejected(t *testing.T) {
	ds := bitvec.RandomDataset(stats.NewRNG(2), 8, 64)
	var buf bytes.Buffer
	_, err := bitvec.WriteSnapshot(&buf, ds, &bitvec.Manifest{NextID: 100, IDs: []int{1, 2, 3}})
	if !errors.Is(err, aperr.ErrBadFormat) {
		t.Fatalf("got %v, want ErrBadFormat for id/vector count mismatch", err)
	}
}

// TestReadDatasetErrors covers the same taxonomy for the version-1 dataset
// reader: truncated header, truncated payload, wrong magic, wrong version —
// each a typed sentinel, never a panic or silent short read.
func TestReadDatasetErrors(t *testing.T) {
	ds := bitvec.RandomDataset(stats.NewRNG(6), 10, 70)
	var w bytes.Buffer
	if _, err := ds.WriteTo(&w); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	good := w.Bytes()

	mutate := func(f func([]byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, aperr.ErrTruncated},
		{"truncatedHeader", good[:7], aperr.ErrTruncated},
		{"headerOnly", good[:20], aperr.ErrTruncated},
		{"truncatedPayload", good[:len(good)-3], aperr.ErrTruncated},
		{"badMagic", mutate(func(b []byte) []byte { copy(b, "NOPE"); return b }), aperr.ErrBadFormat},
		{"snapshotVersion", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], 2)
			return b
		}), aperr.ErrBadFormat},
		{"zeroDim", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 0)
			return b
		}), aperr.ErrBadFormat},
		{"hugeDim", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 1<<21)
			return b
		}), aperr.ErrBadFormat},
		{"countOverflow", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[12:20], ^uint64(0))
			return b
		}), aperr.ErrBadFormat},
		{"dirtyTailBits", mutate(func(b []byte) []byte {
			b[len(b)-1] |= 0x80
			return b
		}), aperr.ErrBadFormat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := bitvec.ReadDataset(bytes.NewReader(tc.data))
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want errors.Is(..., %v)", err, tc.want)
			}
		})
	}
}
