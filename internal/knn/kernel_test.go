package knn

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/aperr"
	"repro/internal/bitvec"
	"repro/internal/stats"
)

// tieHeavyDataset builds a dataset where most vectors are duplicates of a
// small pool, so nearly every distance ties and the (Dist, ID) tie-break is
// the only thing separating results.
func tieHeavyDataset(rng *stats.RNG, n, dim int) *bitvec.Dataset {
	pool := make([]bitvec.Vector, 4)
	for i := range pool {
		pool[i] = bitvec.Random(rng, dim)
	}
	ds := bitvec.NewDataset(dim)
	for i := 0; i < n; i++ {
		ds.Append(pool[rng.Uint64()%uint64(len(pool))])
	}
	return ds
}

// TestScanMatchesLinear is the kernel-vs-oracle equivalence property the
// acceptance gate runs: over word-aligned and non-word-aligned dims, worker
// counts, block sizes that split vectors mid-range, random and tie-heavy
// datasets, the kernel must return byte-identical (Dist, ID) lists to the
// Linear oracle.
func TestScanMatchesLinear(t *testing.T) {
	rng := stats.NewRNG(4242)
	for _, dim := range []int{32, 64, 128, 192} {
		for _, tieHeavy := range []bool{false, true} {
			// Large enough that 8 requested workers survive the
			// minShardVectors cap and genuinely shard the slab.
			var ds *bitvec.Dataset
			n := 4*minShardVectors + int(rng.Uint64()%1000)
			if tieHeavy {
				ds = tieHeavyDataset(rng, n, dim)
			} else {
				ds = bitvec.RandomDataset(rng, n, dim)
			}
			for _, workers := range []int{1, 2, 8} {
				for _, block := range []int{0, 7, 256} {
					for _, k := range []int{1, 5, n + 10} {
						q := bitvec.Random(rng, dim)
						want := Linear(ds, q, k)
						got, err := Scan(ds, q, k, ScanConfig{Workers: workers, BlockVectors: block})
						if err != nil {
							t.Fatalf("dim=%d workers=%d block=%d k=%d: %v", dim, workers, block, k, err)
						}
						if !equalNeighbors(got, want) {
							t.Fatalf("dim=%d tie=%v workers=%d block=%d k=%d: kernel diverged from Linear\n got %v\nwant %v",
								dim, tieHeavy, workers, block, k, got, want)
						}
					}
				}
			}
		}
	}
}

// TestScanBatchMatchesLinear covers both parallelism axes: batches larger
// than the worker pool (query-parallel) and smaller (data-parallel with
// block reuse), against per-query Linear.
func TestScanBatchMatchesLinear(t *testing.T) {
	rng := stats.NewRNG(77)
	for _, dim := range []int{64, 128, 192} {
		ds := bitvec.RandomDataset(rng, 5000, dim)
		for _, nq := range []int{1, 3, 16} {
			queries := make([]bitvec.Vector, nq)
			for i := range queries {
				queries[i] = bitvec.Random(rng, dim)
			}
			for _, workers := range []int{1, 2, 8} {
				got, err := ScanBatch(context.Background(), ds, queries, 7, ScanConfig{Workers: workers})
				if err != nil {
					t.Fatalf("dim=%d nq=%d workers=%d: %v", dim, nq, workers, err)
				}
				for qi, q := range queries {
					if want := Linear(ds, q, 7); !equalNeighbors(got[qi], want) {
						t.Fatalf("dim=%d nq=%d workers=%d query %d: kernel diverged from Linear", dim, nq, workers, qi)
					}
				}
			}
		}
	}
}

// TestBatchBadK is the process-survival regression: Batch/BatchContext/Scan
// with k <= 0 must return aperr.ErrBadK from the calling goroutine — the old
// pass-through to Linear panicked inside a worker goroutine and took the
// whole process (apserve included) down.
func TestBatchBadK(t *testing.T) {
	rng := stats.NewRNG(5)
	ds := bitvec.RandomDataset(rng, 5000, 64)
	queries := []bitvec.Vector{bitvec.Random(rng, 64), bitvec.Random(rng, 64)}
	for _, k := range []int{0, -1, -100} {
		for _, workers := range []int{1, 4} {
			if _, err := Batch(ds, queries, k, workers); !errors.Is(err, aperr.ErrBadK) {
				t.Errorf("Batch(k=%d, workers=%d) err = %v, want ErrBadK", k, workers, err)
			}
			if _, err := BatchContext(context.Background(), ds, queries, k, workers); !errors.Is(err, aperr.ErrBadK) {
				t.Errorf("BatchContext(k=%d, workers=%d) err = %v, want ErrBadK", k, workers, err)
			}
		}
		if _, err := Scan(ds, queries[0], k, ScanConfig{}); !errors.Is(err, aperr.ErrBadK) {
			t.Errorf("Scan(k=%d) err = %v, want ErrBadK", k, err)
		}
	}
}

func TestScanDimMismatch(t *testing.T) {
	rng := stats.NewRNG(6)
	ds := bitvec.RandomDataset(rng, 100, 64)
	q32 := bitvec.Random(rng, 32)
	if _, err := Scan(ds, q32, 3, ScanConfig{}); !errors.Is(err, aperr.ErrDimMismatch) {
		t.Errorf("Scan dim mismatch err = %v, want ErrDimMismatch", err)
	}
	queries := []bitvec.Vector{bitvec.Random(rng, 64), q32}
	if _, err := ScanBatch(context.Background(), ds, queries, 3, ScanConfig{}); !errors.Is(err, aperr.ErrDimMismatch) {
		t.Errorf("ScanBatch dim mismatch err = %v, want ErrDimMismatch", err)
	}
}

func TestScanEmptyInputs(t *testing.T) {
	rng := stats.NewRNG(7)
	ds := bitvec.NewDataset(32)
	got, err := Scan(ds, bitvec.Random(rng, 32), 3, ScanConfig{})
	if err != nil || len(got) != 0 {
		t.Errorf("Scan over empty dataset = %v, %v; want empty, nil", got, err)
	}
	out, err := ScanBatch(context.Background(), ds, nil, 3, ScanConfig{})
	if err != nil || len(out) != 0 {
		t.Errorf("ScanBatch with no queries = %v, %v; want empty, nil", out, err)
	}
	full := bitvec.RandomDataset(rng, 10, 32)
	out, err = ScanBatch(context.Background(), full, nil, 3, ScanConfig{Workers: 4})
	if err != nil || len(out) != 0 {
		t.Errorf("ScanBatch no queries over data = %v, %v; want empty, nil", out, err)
	}
}

func TestScanBatchCanceled(t *testing.T) {
	rng := stats.NewRNG(8)
	ds := bitvec.RandomDataset(rng, 5000, 64)
	queries := make([]bitvec.Vector, 4)
	for i := range queries {
		queries[i] = bitvec.Random(rng, 64)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// All three execution paths: serial, query-parallel, data-parallel.
	for _, cfg := range []ScanConfig{{Workers: 1}, {Workers: 2}, {Workers: 16}} {
		if _, err := ScanBatch(ctx, ds, queries, 3, cfg); !errors.Is(err, aperr.ErrCanceled) {
			t.Errorf("ScanBatch(workers=%d) on canceled ctx err = %v, want ErrCanceled", cfg.Workers, err)
		}
	}
}

func TestScanBlockFilteredSkips(t *testing.T) {
	rng := stats.NewRNG(9)
	ds := bitvec.RandomDataset(rng, 200, 96)
	q := bitvec.Random(rng, 96)
	dead := map[int]struct{}{3: {}, 50: {}, 199: {}}
	tk := NewTopK(200)
	ScanBlockFiltered(tk, ds.Words(), ds.WordsPerVector(), q.Words(), 0, ds.Len(),
		func(id int) bool { _, d := dead[id]; return d })
	got := tk.Neighbors()
	if len(got) != 197 {
		t.Fatalf("filtered scan kept %d, want 197", len(got))
	}
	for _, n := range got {
		if _, d := dead[n.ID]; d {
			t.Errorf("skipped ID %d leaked into results", n.ID)
		}
		if want := ds.Hamming(n.ID, q); n.Dist != want {
			t.Errorf("ID %d dist %d, want %d", n.ID, n.Dist, want)
		}
	}
}

// TestTopKAgainstOracle: the accumulator alone, fed in slab order, matches
// the full-sort oracle including ID ties at the cut boundary.
func TestTopKAgainstOracle(t *testing.T) {
	rng := stats.NewRNG(10)
	for trial := 0; trial < 100; trial++ {
		n := int(rng.Uint64()%50) + 1
		k := int(rng.Uint64()%12) + 1
		all := make([]Neighbor, n)
		tk := NewTopK(k)
		for i := 0; i < n; i++ {
			d := int(rng.Uint64() % 5) // heavy ties
			all[i] = Neighbor{ID: i, Dist: d}
			tk.Offer(i, d)
		}
		SortNeighbors(all)
		want := all
		if k < len(want) {
			want = want[:k]
		}
		if got := tk.Neighbors(); !equalNeighbors(got, want) {
			t.Fatalf("trial %d n=%d k=%d: TopK = %v, want %v", trial, n, k, got, want)
		}
	}
}

func TestNewTopKBadKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTopK(0) did not panic")
		}
	}()
	NewTopK(0)
}

// Benchmarks for the bench trajectory: the oracle vs the kernel at the
// acceptance point (n=100k, d=128) and the batch paths. Run with
// go test -bench 'Kernel|LinearOracle' ./internal/knn/
func benchDataset(n, dim int) (*bitvec.Dataset, bitvec.Vector) {
	rng := stats.NewRNG(31)
	return bitvec.RandomDataset(rng, n, dim), bitvec.Random(rng, dim)
}

func BenchmarkLinearOracle100k128(b *testing.B) {
	ds, q := benchDataset(100_000, 128)
	b.SetBytes(int64(ds.Len() * ds.WordsPerVector() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Linear(ds, q, 10)
	}
}

func BenchmarkKernelScan100k128(b *testing.B) {
	ds, q := benchDataset(100_000, 128)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("Workers%d", workers), func(b *testing.B) {
			b.SetBytes(int64(ds.Len() * ds.WordsPerVector() * 8))
			for i := 0; i < b.N; i++ {
				if _, err := Scan(ds, q, 10, ScanConfig{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKernelBatch100k128(b *testing.B) {
	ds, _ := benchDataset(100_000, 128)
	rng := stats.NewRNG(32)
	queries := make([]bitvec.Vector, 16)
	for i := range queries {
		queries[i] = bitvec.Random(rng, 128)
	}
	b.SetBytes(int64(len(queries) * ds.Len() * ds.WordsPerVector() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScanBatch(context.Background(), ds, queries, 10, ScanConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
