// The production hot-path kernel: a cache-blocked, goroutine-parallel
// bit-Hamming scan. Where Linear is the readable oracle — one slice header,
// one function call, one heap interaction per vector — the kernel streams
// the dataset's packed-word slab in L2-sized blocks, specializes and unrolls
// the XOR+POPCNT inner loop per word count, keeps a bounded per-core heap
// whose threshold prunes candidates with a single integer compare, and
// merges per-core partials through MergeTopK. Results are byte-identical to
// Linear: the same (Dist, ID) tie-break everywhere, and the global top-k is
// always contained in the union of per-shard top-k sets.
//
// Entry points are panic-proof: Scan and ScanBatch validate k and query
// dimensionality up front and return typed errors in the calling goroutine,
// so a hostile wire-supplied k can never kill a worker goroutine (and with
// it the serving process).
package knn

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aperr"
	"repro/internal/bitvec"
	"repro/internal/obs"
)

// The kernel's latency histograms: the scan itself and the merge of
// per-shard partials, separated so a regression in either shows up as its
// own series rather than folded into an aggregate. Record costs two
// monotonic reads and a few atomic adds per entry-point call — noise next
// to even the smallest full-dataset scan.
var (
	scanHist = obs.NewHistogram("apknn_kernel_scan_seconds",
		"Blocked Hamming-scan kernel latency per Scan/ScanBatch call")
	mergeHist = obs.NewHistogram("apknn_kernel_merge_seconds",
		"Per-shard partial top-k merge latency per parallel scan")
)

// ScanConfig tunes the kernel. The zero value auto-sizes everything: one
// worker per CPU (bounded so each shard stays worth a goroutine) and blocks
// sized to defaultBlockBytes of packed data.
type ScanConfig struct {
	// Workers is the data-parallel width for a single query (the paper's
	// §II-A data-level parallelism) and the query-parallel width for large
	// batches. <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// BlockVectors is the number of vectors per cache block. <= 0 derives it
	// from defaultBlockBytes and the vector width.
	BlockVectors int
}

const (
	// defaultBlockBytes is the packed-data footprint of one kernel block,
	// sized to sit comfortably in L2 next to the query words and heaps —
	// small enough that the multi-query path reuses a resident block across
	// all queries, large enough that the block loop is free.
	defaultBlockBytes = 64 << 10
	// minShardVectors is the smallest per-worker range worth a goroutine:
	// below this, spawn-and-merge overhead beats the parallel win.
	minShardVectors = 2048
)

// effectiveWorkers resolves the worker count for a scan over n vectors.
func (cfg ScanConfig) effectiveWorkers(n int) int {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if max := n / minShardVectors; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// effectiveBlock resolves the block size in vectors for the given stride.
func (cfg ScanConfig) effectiveBlock(wordsPV int) int {
	if cfg.BlockVectors > 0 {
		return cfg.BlockVectors
	}
	b := defaultBlockBytes / (8 * wordsPV)
	if b < 1 {
		return 1
	}
	return b
}

// TopK is the bounded-heap top-k accumulator the kernel fills: it retains
// the k best (Dist, ID) candidates seen so far, with Threshold exposing the
// current worst retained distance so hot loops can prune with one integer
// compare before touching the heap.
type TopK struct {
	k int
	h maxHeap
}

// NewTopK returns an accumulator for the k best neighbors. It panics on
// k <= 0 — the public entry points validate k before any TopK exists, so a
// non-positive k here is a kernel bug, not a runtime condition.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic(fmt.Sprintf("knn: TopK k must be positive, got %d", k))
	}
	// Lazily grown: a hostile wire-supplied k (math.MaxInt) must not
	// allocate k slots up front. The heap never exceeds min(k, offers).
	hcap := k
	if hcap > 1024 {
		hcap = 1024
	}
	return &TopK{k: k, h: make(maxHeap, 0, hcap+1)}
}

// Offer considers one candidate. It is cheap once the heap is full: a single
// (Dist, ID) compare against the root unless the candidate displaces it.
func (t *TopK) Offer(id, dist int) {
	cand := Neighbor{ID: id, Dist: dist}
	if len(t.h) < t.k {
		pushHeap(&t.h, cand)
		return
	}
	if cand.Less(t.h[0]) {
		t.h[0] = cand
		fixRoot(t.h)
	}
}

// Threshold returns the distance a candidate must not exceed to possibly be
// retained: the root (worst) distance once the heap is full, MaxInt before.
// A candidate with dist > Threshold() can be skipped without consulting the
// heap; dist == Threshold() still needs Offer for the ID tie-break.
func (t *TopK) Threshold() int {
	if len(t.h) < t.k {
		return math.MaxInt
	}
	return t.h[0].Dist
}

// Len returns the number of retained candidates.
func (t *TopK) Len() int { return len(t.h) }

// Neighbors drains the accumulator as a (Dist, ID)-sorted result list.
func (t *TopK) Neighbors() []Neighbor {
	out := []Neighbor(t.h)
	t.h = nil
	SortNeighbors(out)
	return out
}

// pushHeap and fixRoot are container/heap's Push and Fix(0) specialized to
// maxHeap: the interface{} boxing and indirect method calls of the generic
// versions are measurable at one call per retained candidate.
func pushHeap(h *maxHeap, n Neighbor) {
	*h = append(*h, n)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h)[parent].Less((*h)[i]) { // parent >= child in max-heap order
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func fixRoot(h maxHeap) {
	i := 0
	n := len(h)
	for {
		worst := i
		if l := 2*i + 1; l < n && h[worst].Less(h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && h[worst].Less(h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// ScanBlock streams one contiguous block of n packed vectors into t: slab
// holds wordsPV words per vector, vector i gets ID baseID+i, qw is the
// query's packed words. This is the unrolled XOR+POPCNT inner loop shared by
// every scan in the repository — the dataset kernel iterates it over
// L2-sized slices of the backing slab, internal/live iterates it over delta
// chunks. It panics on a malformed block (a kernel-caller bug, never
// reachable from validated public entry points).
func ScanBlock(t *TopK, slab []uint64, wordsPV int, qw []uint64, baseID, n int) {
	if wordsPV <= 0 || n < 0 || len(slab) < n*wordsPV || len(qw) < wordsPV {
		panic(fmt.Sprintf("knn: malformed block: %d words, stride %d, %d vectors, %d query words",
			len(slab), wordsPV, n, len(qw)))
	}
	worst := t.Threshold()
	switch wordsPV {
	case 1:
		q0 := qw[0]
		i := 0
		for ; i+4 <= n; i += 4 {
			// Four independent distance chains per iteration keep the
			// POPCNT pipeline full instead of serializing on one counter.
			d0 := bits.OnesCount64(slab[i] ^ q0)
			d1 := bits.OnesCount64(slab[i+1] ^ q0)
			d2 := bits.OnesCount64(slab[i+2] ^ q0)
			d3 := bits.OnesCount64(slab[i+3] ^ q0)
			if d0 <= worst {
				t.Offer(baseID+i, d0)
				worst = t.Threshold()
			}
			if d1 <= worst {
				t.Offer(baseID+i+1, d1)
				worst = t.Threshold()
			}
			if d2 <= worst {
				t.Offer(baseID+i+2, d2)
				worst = t.Threshold()
			}
			if d3 <= worst {
				t.Offer(baseID+i+3, d3)
				worst = t.Threshold()
			}
		}
		for ; i < n; i++ {
			if d := bits.OnesCount64(slab[i] ^ q0); d <= worst {
				t.Offer(baseID+i, d)
				worst = t.Threshold()
			}
		}
	case 2:
		q0, q1 := qw[0], qw[1]
		i, off := 0, 0
		for ; i+4 <= n; i, off = i+4, off+8 {
			s := slab[off : off+8 : off+8]
			d0 := bits.OnesCount64(s[0]^q0) + bits.OnesCount64(s[1]^q1)
			d1 := bits.OnesCount64(s[2]^q0) + bits.OnesCount64(s[3]^q1)
			d2 := bits.OnesCount64(s[4]^q0) + bits.OnesCount64(s[5]^q1)
			d3 := bits.OnesCount64(s[6]^q0) + bits.OnesCount64(s[7]^q1)
			if d0 <= worst {
				t.Offer(baseID+i, d0)
				worst = t.Threshold()
			}
			if d1 <= worst {
				t.Offer(baseID+i+1, d1)
				worst = t.Threshold()
			}
			if d2 <= worst {
				t.Offer(baseID+i+2, d2)
				worst = t.Threshold()
			}
			if d3 <= worst {
				t.Offer(baseID+i+3, d3)
				worst = t.Threshold()
			}
		}
		for ; i < n; i, off = i+1, off+2 {
			d := bits.OnesCount64(slab[off]^q0) + bits.OnesCount64(slab[off+1]^q1)
			if d <= worst {
				t.Offer(baseID+i, d)
				worst = t.Threshold()
			}
		}
	case 3:
		q0, q1, q2 := qw[0], qw[1], qw[2]
		off := 0
		for i := 0; i < n; i, off = i+1, off+3 {
			s := slab[off : off+3 : off+3]
			d := bits.OnesCount64(s[0]^q0) + bits.OnesCount64(s[1]^q1) + bits.OnesCount64(s[2]^q2)
			if d <= worst {
				t.Offer(baseID+i, d)
				worst = t.Threshold()
			}
		}
	case 4:
		q0, q1, q2, q3 := qw[0], qw[1], qw[2], qw[3]
		off := 0
		for i := 0; i < n; i, off = i+1, off+4 {
			s := slab[off : off+4 : off+4]
			d := bits.OnesCount64(s[0]^q0) + bits.OnesCount64(s[1]^q1) +
				bits.OnesCount64(s[2]^q2) + bits.OnesCount64(s[3]^q3)
			if d <= worst {
				t.Offer(baseID+i, d)
				worst = t.Threshold()
			}
		}
	default:
		off := 0
		for i := 0; i < n; i, off = i+1, off+wordsPV {
			s := slab[off : off+wordsPV : off+wordsPV]
			d := 0
			w := 0
			for ; w+4 <= wordsPV; w += 4 {
				d += bits.OnesCount64(s[w]^qw[w]) + bits.OnesCount64(s[w+1]^qw[w+1]) +
					bits.OnesCount64(s[w+2]^qw[w+2]) + bits.OnesCount64(s[w+3]^qw[w+3])
			}
			for ; w < wordsPV; w++ {
				d += bits.OnesCount64(s[w] ^ qw[w])
			}
			if d <= worst {
				t.Offer(baseID+i, d)
				worst = t.Threshold()
			}
		}
	}
}

// ScanBlockFiltered is ScanBlock with a skip predicate: vector i is ignored
// when skip(baseID+i) is true. This is the tombstone path of internal/live's
// delta scan; the unfiltered ScanBlock stays branch-free for the common
// no-tombstone case.
func ScanBlockFiltered(t *TopK, slab []uint64, wordsPV int, qw []uint64, baseID, n int, skip func(id int) bool) {
	if skip == nil {
		ScanBlock(t, slab, wordsPV, qw, baseID, n)
		return
	}
	if wordsPV <= 0 || n < 0 || len(slab) < n*wordsPV || len(qw) < wordsPV {
		panic(fmt.Sprintf("knn: malformed block: %d words, stride %d, %d vectors, %d query words",
			len(slab), wordsPV, n, len(qw)))
	}
	worst := t.Threshold()
	off := 0
	for i := 0; i < n; i, off = i+1, off+wordsPV {
		if skip(baseID + i) {
			continue
		}
		s := slab[off : off+wordsPV : off+wordsPV]
		d := 0
		w := 0
		for ; w+4 <= wordsPV; w += 4 {
			d += bits.OnesCount64(s[w]^qw[w]) + bits.OnesCount64(s[w+1]^qw[w+1]) +
				bits.OnesCount64(s[w+2]^qw[w+2]) + bits.OnesCount64(s[w+3]^qw[w+3])
		}
		for ; w < wordsPV; w++ {
			d += bits.OnesCount64(s[w] ^ qw[w])
		}
		if d <= worst {
			t.Offer(baseID+i, d)
			worst = t.Threshold()
		}
	}
}

// scanRange runs the blocked kernel over vectors [lo, hi) of the slab.
func scanRange(t *TopK, words []uint64, wordsPV int, qw []uint64, lo, hi, block int) {
	for b := lo; b < hi; b += block {
		be := b + block
		if be > hi {
			be = hi
		}
		ScanBlock(t, words[b*wordsPV:be*wordsPV], wordsPV, qw, b, be-b)
	}
}

// shardRanges splits [0, n) into workers contiguous ranges of near-equal
// size; every range is non-empty.
func shardRanges(n, workers int) [][2]int {
	out := make([][2]int, 0, workers)
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// Scan is the single-query kernel entry point: an exact top-k scan of ds,
// data-parallel across cfg.Workers cores (each worker runs the blocked
// kernel over its contiguous shard into a private bounded heap; partials
// merge through MergeTopK), byte-identical to Linear. It returns
// aperr.ErrBadK for k <= 0 and aperr.ErrDimMismatch for a query of the
// wrong dimensionality.
func Scan(ds *bitvec.Dataset, q bitvec.Vector, k int, cfg ScanConfig) ([]Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("knn: got k=%d: %w", k, aperr.ErrBadK)
	}
	if q.Dim() != ds.Dim() {
		return nil, fmt.Errorf("knn: query dim %d != dataset dim %d: %w", q.Dim(), ds.Dim(), aperr.ErrDimMismatch)
	}
	n := ds.Len()
	if n == 0 {
		return []Neighbor{}, nil
	}
	wordsPV := ds.WordsPerVector()
	words := ds.Words()
	qw := q.Words()
	block := cfg.effectiveBlock(wordsPV)
	workers := cfg.effectiveWorkers(n)
	start := time.Now()
	if workers == 1 {
		t := NewTopK(k)
		scanRange(t, words, wordsPV, qw, 0, n, block)
		scanHist.Record(time.Since(start))
		return t.Neighbors(), nil
	}
	parts := shardRanges(n, workers)
	partials := make([][]Neighbor, len(parts))
	var wg sync.WaitGroup
	for w, p := range parts {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			t := NewTopK(k)
			scanRange(t, words, wordsPV, qw, lo, hi, block)
			partials[w] = t.Neighbors()
		}(w, p[0], p[1])
	}
	wg.Wait()
	scanHist.Record(time.Since(start))
	mergeStart := time.Now()
	merged := partials[0]
	for _, r := range partials[1:] {
		merged = MergeTopK(merged, r, k)
	}
	mergeHist.Record(time.Since(mergeStart))
	return merged, nil
}

// ScanBatch answers many queries through the kernel, choosing the
// parallelism axis by shape (§II-A evaluates both):
//
//   - batches with at least as many queries as workers use query-level
//     parallelism — each worker owns whole queries and streams the dataset
//     with the blocked kernel;
//   - smaller batches (a single query in the extreme) use data-level
//     parallelism — the dataset is sharded across workers and every worker
//     scans each L2-resident block once per query, so the block is fetched
//     from memory once, not once per query.
//
// Cancellation is checked between queries and between blocks; a canceled
// context returns an error wrapping aperr.ErrCanceled instead of a partial
// result set.
func ScanBatch(ctx context.Context, ds *bitvec.Dataset, queries []bitvec.Vector, k int, cfg ScanConfig) ([][]Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("knn: got k=%d: %w", k, aperr.ErrBadK)
	}
	for i, q := range queries {
		if q.Dim() != ds.Dim() {
			return nil, fmt.Errorf("knn: query %d dim %d != dataset dim %d: %w", i, q.Dim(), ds.Dim(), aperr.ErrDimMismatch)
		}
	}
	out := make([][]Neighbor, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	n := ds.Len()
	if n == 0 {
		for i := range out {
			out[i] = []Neighbor{}
		}
		return out, nil
	}
	wordsPV := ds.WordsPerVector()
	words := ds.Words()
	block := cfg.effectiveBlock(wordsPV)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	start := time.Now()
	if workers <= 1 {
		for i, q := range queries {
			if err := ctx.Err(); err != nil {
				return nil, aperr.Canceled(err)
			}
			t := NewTopK(k)
			scanRange(t, words, wordsPV, q.Words(), 0, n, block)
			out[i] = t.Neighbors()
		}
		scanHist.Record(time.Since(start))
		return out, nil
	}

	if len(queries) >= workers {
		// Query-level parallelism: workers pull query indexes off a shared
		// feed; each full scan stays on one core.
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if ctx.Err() != nil {
						return
					}
					t := NewTopK(k)
					scanRange(t, words, wordsPV, queries[i].Words(), 0, n, block)
					out[i] = t.Neighbors()
				}
			}()
		}
	feed:
		for i := range queries {
			select {
			case next <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(next)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, aperr.Canceled(err)
		}
		scanHist.Record(time.Since(start))
		return out, nil
	}

	// Data-level parallelism: shard the dataset, scan every query against
	// each resident block before moving on, merge per-query partials.
	dataWorkers := cfg.effectiveWorkers(n)
	qws := make([][]uint64, len(queries))
	for i, q := range queries {
		qws[i] = q.Words()
	}
	parts := shardRanges(n, dataWorkers)
	partials := make([][][]Neighbor, len(parts)) // [part][query]
	var canceled atomic.Bool
	var wg sync.WaitGroup
	for w, p := range parts {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			heaps := make([]*TopK, len(qws))
			for qi := range heaps {
				heaps[qi] = NewTopK(k)
			}
			for b := lo; b < hi; b += block {
				if canceled.Load() {
					return
				}
				if ctx.Err() != nil {
					canceled.Store(true)
					return
				}
				be := b + block
				if be > hi {
					be = hi
				}
				slab := words[b*wordsPV : be*wordsPV]
				for qi, qw := range qws {
					ScanBlock(heaps[qi], slab, wordsPV, qw, b, be-b)
				}
			}
			res := make([][]Neighbor, len(heaps))
			for qi, t := range heaps {
				res[qi] = t.Neighbors()
			}
			partials[w] = res
		}(w, p[0], p[1])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, aperr.Canceled(err)
	}
	scanHist.Record(time.Since(start))
	mergeStart := time.Now()
	for qi := range queries {
		merged := partials[0][qi]
		for _, part := range partials[1:] {
			merged = MergeTopK(merged, part[qi], k)
		}
		out[qi] = merged
	}
	mergeHist.Record(time.Since(mergeStart))
	return out, nil
}
