package knn

import (
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/stats"
)

// refKNN is the simplest possible reference: compute all distances, full
// sort with the shared tie-break.
func refKNN(ds *bitvec.Dataset, q bitvec.Vector, k int) []Neighbor {
	all := make([]Neighbor, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		all[i] = Neighbor{ID: i, Dist: ds.Hamming(i, q)}
	}
	SortNeighbors(all)
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func equalNeighbors(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLinearSmallKnown(t *testing.T) {
	ds := bitvec.NewDataset(4)
	for _, s := range []string{"1011", "0000", "1001", "1111"} {
		v, err := bitvec.ParseBits(s)
		if err != nil {
			t.Fatal(err)
		}
		ds.Append(v)
	}
	q, _ := bitvec.ParseBits("1001")
	got := Linear(ds, q, 2)
	want := []Neighbor{{ID: 2, Dist: 0}, {ID: 0, Dist: 1}}
	if !equalNeighbors(got, want) {
		t.Errorf("Linear = %v, want %v", got, want)
	}
}

// Property: all exact variants agree with the reference for random data.
func TestVariantsMatchReference(t *testing.T) {
	f := func(seed uint64, rawN uint16, rawK uint8) bool {
		rng := stats.NewRNG(seed)
		n := int(rawN)%200 + 1
		k := int(rawK)%10 + 1
		dim := 64
		ds := bitvec.RandomDataset(rng, n, dim)
		q := bitvec.Random(rng, dim)
		want := refKNN(ds, q, k)
		if !equalNeighbors(Linear(ds, q, k), want) {
			return false
		}
		if !equalNeighbors(LinearFullSort(ds, q, k), want) {
			return false
		}
		if !equalNeighbors(LinearSelect(ds, q, k), want) {
			return false
		}
		scanned, err := Scan(ds, q, k, ScanConfig{Workers: 4})
		if err != nil || !equalNeighbors(scanned, want) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKLargerThanDataset(t *testing.T) {
	rng := stats.NewRNG(9)
	ds := bitvec.RandomDataset(rng, 5, 32)
	q := bitvec.Random(rng, 32)
	for _, impl := range []func(*bitvec.Dataset, bitvec.Vector, int) []Neighbor{
		Linear, LinearFullSort, LinearSelect,
	} {
		got := impl(ds, q, 10)
		if len(got) != 5 {
			t.Errorf("k > n returned %d results, want 5", len(got))
		}
	}
}

func TestLinearPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	Linear(bitvec.RandomDataset(stats.NewRNG(1), 4, 8), bitvec.Random(stats.NewRNG(2), 8), 0)
}

func TestMergeTopK(t *testing.T) {
	a := []Neighbor{{1, 1}, {3, 4}, {5, 9}}
	b := []Neighbor{{2, 2}, {4, 4}, {6, 10}}
	got := MergeTopK(a, b, 4)
	want := []Neighbor{{1, 1}, {2, 2}, {3, 4}, {4, 4}}
	if !equalNeighbors(got, want) {
		t.Errorf("MergeTopK = %v, want %v", got, want)
	}
}

func TestMergeTopKShortInputs(t *testing.T) {
	a := []Neighbor{{1, 1}}
	got := MergeTopK(a, nil, 5)
	if !equalNeighbors(got, a) {
		t.Errorf("MergeTopK with nil = %v", got)
	}
	got = MergeTopK(nil, nil, 3)
	if len(got) != 0 {
		t.Errorf("MergeTopK(nil,nil) = %v", got)
	}
}

// Property: MergeTopK over a split equals top-k of the union.
func TestMergeTopKProperty(t *testing.T) {
	f := func(seed uint64, rawSplit uint8, rawK uint8) bool {
		rng := stats.NewRNG(seed)
		n := 60
		k := int(rawK)%12 + 1
		ds := bitvec.RandomDataset(rng, n, 48)
		q := bitvec.Random(rng, 48)
		split := int(rawSplit)%(n-1) + 1
		left := Linear(ds.Slice(0, split), q, k)
		right := Linear(ds.Slice(split, n), q, k)
		for i := range right {
			right[i].ID += split
		}
		return equalNeighbors(MergeTopK(left, right, k), refKNN(ds, q, k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBatch(t *testing.T) {
	rng := stats.NewRNG(77)
	ds := bitvec.RandomDataset(rng, 100, 64)
	queries := make([]bitvec.Vector, 9)
	for i := range queries {
		queries[i] = bitvec.Random(rng, 64)
	}
	for _, workers := range []int{1, 4} {
		got, err := Batch(ds, queries, 3, workers)
		if err != nil {
			t.Fatalf("Batch(workers=%d): %v", workers, err)
		}
		if len(got) != len(queries) {
			t.Fatalf("Batch returned %d result sets", len(got))
		}
		for i, q := range queries {
			if !equalNeighbors(got[i], refKNN(ds, q, 3)) {
				t.Errorf("workers=%d query %d mismatch", workers, i)
			}
		}
	}
}

func TestTiesBreakByID(t *testing.T) {
	// All-identical dataset: every distance ties; IDs must come back in
	// ascending order.
	ds := bitvec.NewDataset(16)
	v := bitvec.Random(stats.NewRNG(4), 16)
	for i := 0; i < 10; i++ {
		ds.Append(v)
	}
	got := Linear(ds, bitvec.Random(stats.NewRNG(5), 16), 4)
	for i, n := range got {
		if n.ID != i {
			t.Errorf("tie order: result %d has ID %d", i, n.ID)
		}
	}
}

func TestSortNeighborsStableOrder(t *testing.T) {
	ns := []Neighbor{{5, 2}, {1, 2}, {3, 1}}
	SortNeighbors(ns)
	want := []Neighbor{{3, 1}, {1, 2}, {5, 2}}
	if !equalNeighbors(ns, want) {
		t.Errorf("SortNeighbors = %v, want %v", ns, want)
	}
}

// refMerge is the obvious MergeTopK oracle: concatenate, sort with the
// shared tie-break, truncate.
func refMerge(a, b []Neighbor, k int) []Neighbor {
	all := append(append([]Neighbor{}, a...), b...)
	SortNeighbors(all)
	if k < 0 {
		k = 0
	}
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestMergeTopKNonPositiveK(t *testing.T) {
	a := []Neighbor{{ID: 1, Dist: 0}}
	b := []Neighbor{{ID: 2, Dist: 1}}
	for _, k := range []int{0, -1, -100} {
		if got := MergeTopK(a, b, k); len(got) != 0 {
			t.Errorf("MergeTopK(k=%d) = %v, want empty", k, got)
		}
	}
}

func TestMergeTopKEmptyLists(t *testing.T) {
	a := []Neighbor{{ID: 3, Dist: 1}, {ID: 1, Dist: 2}}
	if got := MergeTopK(a, nil, 5); !equalNeighbors(got, a) {
		t.Errorf("MergeTopK(a, nil) = %v, want %v", got, a)
	}
	if got := MergeTopK(nil, a, 5); !equalNeighbors(got, a) {
		t.Errorf("MergeTopK(nil, a) = %v, want %v", got, a)
	}
	if got := MergeTopK(nil, a, 1); !equalNeighbors(got, a[:1]) {
		t.Errorf("MergeTopK(nil, a, 1) = %v, want %v", got, a[:1])
	}
	if got := MergeTopK(nil, nil, 3); len(got) != 0 {
		t.Errorf("MergeTopK(nil, nil) = %v, want empty", got)
	}
}

func TestMergeTopKLargerThanBothLists(t *testing.T) {
	a := []Neighbor{{ID: 0, Dist: 1}, {ID: 4, Dist: 3}}
	b := []Neighbor{{ID: 2, Dist: 2}}
	got := MergeTopK(a, b, 100)
	want := refMerge(a, b, 100)
	if !equalNeighbors(got, want) {
		t.Errorf("MergeTopK(k=100) = %v, want all %v", got, want)
	}
	if len(got) != 3 {
		t.Errorf("kept %d neighbors, want all 3", len(got))
	}
}

// TestMergeTopKTieStability: equal distances break by ID no matter which
// side of the merge a neighbor arrives on — the property that makes every
// board-merge order produce identical serving results.
func TestMergeTopKTieStability(t *testing.T) {
	a := []Neighbor{{ID: 1, Dist: 5}, {ID: 4, Dist: 5}, {ID: 9, Dist: 5}}
	b := []Neighbor{{ID: 0, Dist: 5}, {ID: 3, Dist: 5}, {ID: 7, Dist: 5}}
	for _, k := range []int{1, 3, 4, 6} {
		ab := MergeTopK(a, b, k)
		ba := MergeTopK(b, a, k)
		want := refMerge(a, b, k)
		if !equalNeighbors(ab, want) {
			t.Errorf("k=%d: MergeTopK(a,b) = %v, want %v", k, ab, want)
		}
		if !equalNeighbors(ab, ba) {
			t.Errorf("k=%d: merge order changed the result: %v vs %v", k, ab, ba)
		}
	}
}

// TestMergeTopKRandomizedAgainstOracle: random sorted inputs, k from empty
// through oversize, both merge orders — always the oracle's answer. IDs
// are kept disjoint (evens vs odds) so equal (Dist, ID) pairs cannot occur
// across lists.
func TestMergeTopKRandomizedAgainstOracle(t *testing.T) {
	rng := stats.NewRNG(77)
	for trial := 0; trial < 200; trial++ {
		na := int(rng.Uint64() % 8)
		nb := int(rng.Uint64() % 8)
		a := make([]Neighbor, na)
		for i := range a {
			a[i] = Neighbor{ID: 2 * int(rng.Uint64()%50), Dist: int(rng.Uint64() % 6)}
		}
		b := make([]Neighbor, nb)
		for i := range b {
			b[i] = Neighbor{ID: 2*int(rng.Uint64()%50) + 1, Dist: int(rng.Uint64() % 6)}
		}
		SortNeighbors(a)
		SortNeighbors(b)
		for _, k := range []int{0, 1, 3, na + nb, na + nb + 5} {
			want := refMerge(a, b, k)
			if got := MergeTopK(a, b, k); !equalNeighbors(got, want) {
				t.Fatalf("trial %d k=%d: MergeTopK = %v, want %v (a=%v b=%v)", trial, k, got, want, a, b)
			}
			if got := MergeTopK(b, a, k); !equalNeighbors(got, want) {
				t.Fatalf("trial %d k=%d reversed: MergeTopK = %v, want %v", trial, k, got, want)
			}
		}
	}
}
