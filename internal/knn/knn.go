// Package knn implements the exact CPU k-nearest-neighbor baselines the
// paper compares against (§IV-C): linear Hamming-distance scans with
// XOR+POPCOUNT, bounded-heap top-k selection, the O(n log n) priority-queue
// sort the paper attributes to von-Neumann architectures (§III-B), and
// multi-threaded batch drivers exploiting both query- and data-level
// parallelism (§II-A).
package knn

import (
	"container/heap"
	"context"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/bitvec"
)

func popcount(w uint64) int { return bits.OnesCount64(w) }

// Neighbor is one search result: a dataset vector ID and its Hamming
// distance from the query. Result sets are ordered by (Dist, ID) so that
// ties break deterministically; every implementation in this repository —
// CPU, AP, FPGA, GPU — uses the same order, which makes results directly
// comparable in tests.
type Neighbor struct {
	ID   int
	Dist int
}

// Less orders neighbors by distance, then ID.
func (n Neighbor) Less(o Neighbor) bool {
	return n.Dist < o.Dist || (n.Dist == o.Dist && n.ID < o.ID)
}

// SortNeighbors sorts in place by (Dist, ID).
func SortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].Less(ns[j]) })
}

// maxHeap is a bounded max-heap over neighbors: the root is the worst
// retained candidate, evicted when a better one arrives.
type maxHeap []Neighbor

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[j].Less(h[i]) } // max at root
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Linear performs an exact scan of ds for the k nearest neighbors of q,
// using a bounded max-heap: O(n log k) after the O(nd/64) distance kernel.
func Linear(ds *bitvec.Dataset, q bitvec.Vector, k int) []Neighbor {
	if k <= 0 {
		panic(fmt.Sprintf("knn: k must be positive, got %d", k))
	}
	// The heap never holds more than min(k, n) neighbors; capping the
	// capacity keeps a hostile wire-supplied k (e.g. math.MaxInt from a
	// fuzzed /v1/search body) from allocating k+1 slots up front.
	hcap := k
	if n := ds.Len(); hcap > n {
		hcap = n
	}
	h := make(maxHeap, 0, hcap+1)
	qw := q.Words()
	for i := 0; i < ds.Len(); i++ {
		d := hamming(ds.WordsAt(i), qw)
		cand := Neighbor{ID: i, Dist: d}
		if len(h) < k {
			heap.Push(&h, cand)
			continue
		}
		if cand.Less(h[0]) {
			h[0] = cand
			heap.Fix(&h, 0)
		}
	}
	out := []Neighbor(h)
	SortNeighbors(out)
	return out
}

// hamming is the packed-word XOR+POPCOUNT kernel shared by the scans.
func hamming(a, b []uint64) int {
	d := 0
	for i, w := range a {
		d += popcount(w ^ b[i])
	}
	return d
}

// LinearFullSort is the naive baseline the paper ascribes to von-Neumann
// sorting (§III-B): compute every distance, then fully sort — O(n log n)
// per query instead of O(n log k).
func LinearFullSort(ds *bitvec.Dataset, q bitvec.Vector, k int) []Neighbor {
	all := make([]Neighbor, ds.Len())
	qw := q.Words()
	for i := 0; i < ds.Len(); i++ {
		all[i] = Neighbor{ID: i, Dist: hamming(ds.WordsAt(i), qw)}
	}
	SortNeighbors(all)
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// LinearSelect uses quickselect k-selection (the "alternative algorithms
// like k-selection" of §III-B): average O(n) selection, then an O(k log k)
// sort of the survivors.
func LinearSelect(ds *bitvec.Dataset, q bitvec.Vector, k int) []Neighbor {
	all := make([]Neighbor, ds.Len())
	qw := q.Words()
	for i := 0; i < ds.Len(); i++ {
		all[i] = Neighbor{ID: i, Dist: hamming(ds.WordsAt(i), qw)}
	}
	if k > len(all) {
		k = len(all)
	}
	quickselect(all, k)
	out := all[:k]
	SortNeighbors(out)
	return out
}

// quickselect partitions ns so its first k elements are the k smallest under
// Neighbor.Less, in no particular order. Median-of-three pivoting keeps it
// allocation-free and deterministic.
func quickselect(ns []Neighbor, k int) {
	lo, hi := 0, len(ns)
	for hi-lo > 1 && k > lo && k < hi {
		p := partition(ns, lo, hi)
		switch {
		case p == k-1:
			return
		case p < k-1:
			lo = p + 1
		default:
			hi = p
		}
	}
}

func partition(ns []Neighbor, lo, hi int) int {
	mid := lo + (hi-lo)/2
	last := hi - 1
	// Median-of-three pivot.
	if ns[mid].Less(ns[lo]) {
		ns[mid], ns[lo] = ns[lo], ns[mid]
	}
	if ns[last].Less(ns[lo]) {
		ns[last], ns[lo] = ns[lo], ns[last]
	}
	if ns[last].Less(ns[mid]) {
		ns[last], ns[mid] = ns[mid], ns[last]
	}
	pivot := ns[mid]
	ns[mid], ns[last] = ns[last], ns[mid]
	store := lo
	for i := lo; i < last; i++ {
		if ns[i].Less(pivot) {
			ns[i], ns[store] = ns[store], ns[i]
			store++
		}
	}
	ns[store], ns[last] = ns[last], ns[store]
	return store
}

// MergeTopK merges two (Dist, ID)-sorted neighbor lists, keeping the k best.
// This is the host-side merge the partial-reconfiguration driver performs
// across board configurations (§III-C). A non-positive k keeps nothing.
func MergeTopK(a, b []Neighbor, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	out := make([]Neighbor, 0, min(k, len(a)+len(b)))
	i, j := 0, 0
	for len(out) < k && (i < len(a) || j < len(b)) {
		switch {
		case i >= len(a):
			out = append(out, b[j])
			j++
		case j >= len(b):
			out = append(out, a[i])
			i++
		case a[i].Less(b[j]):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	return out
}

// Batch answers many queries through the blocked kernel, exploiting query-
// and data-level parallelism by batch shape (§II-A; see ScanBatch). Unlike
// Linear it never panics: a non-positive k returns aperr.ErrBadK from the
// calling goroutine — the historical pass-through to Linear fired the panic
// inside a worker goroutine, which no caller can recover and which killed
// the whole serving process.
func Batch(ds *bitvec.Dataset, queries []bitvec.Vector, k, workers int) ([][]Neighbor, error) {
	return BatchContext(context.Background(), ds, queries, k, workers)
}

// BatchContext is Batch with cancellation: the scan stops at the next query
// or block boundary once ctx is canceled and returns an error wrapping
// aperr.ErrCanceled instead of a partially filled result set. workers <= 1
// keeps the historical meaning of a serial scan (ScanConfig's auto-sizing
// applies only through the kernel entry points).
func BatchContext(ctx context.Context, ds *bitvec.Dataset, queries []bitvec.Vector, k, workers int) ([][]Neighbor, error) {
	if workers < 1 {
		workers = 1
	}
	return ScanBatch(ctx, ds, queries, k, ScanConfig{Workers: workers})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
