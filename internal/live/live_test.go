package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aperr"
	"repro/internal/bitvec"
	"repro/internal/knn"
	"repro/internal/stats"
)

// compileCPU is the test backend: an exact linear scan with the shared
// tie-break, no modeled time, one "partition" per capacity-sized range so
// the reconfiguration accounting has something to charge.
func compileCPU(t *testing.T) CompileFunc {
	return func(ds *bitvec.Dataset) (Searcher, error) {
		return &cpuSearcher{ds: ds}, nil
	}
}

type cpuSearcher struct {
	ds      *bitvec.Dataset
	modeled atomic.Int64
}

func (c *cpuSearcher) Search(ctx context.Context, queries []bitvec.Vector, k int) ([][]knn.Neighbor, error) {
	if err := ctx.Err(); err != nil {
		return nil, aperr.Canceled(err)
	}
	out := make([][]knn.Neighbor, len(queries))
	for i, q := range queries {
		out[i] = knn.Linear(c.ds, q, k)
	}
	c.modeled.Add(int64(time.Duration(len(queries)) * time.Microsecond))
	return out, nil
}

func (c *cpuSearcher) ModeledTime() time.Duration { return time.Duration(c.modeled.Load()) }

func (c *cpuSearcher) Partitions() int { return (c.ds.Len() + 1023) / 1024 }

// mirror is the brute-force reference the property test compares against:
// a plain map of live vectors searched by full scan + sort.
type mirror struct {
	dim  int
	vecs map[int]bitvec.Vector
}

func newMirror(ds *bitvec.Dataset) *mirror {
	m := &mirror{dim: ds.Dim(), vecs: make(map[int]bitvec.Vector, ds.Len())}
	for i := 0; i < ds.Len(); i++ {
		m.vecs[i] = ds.At(i).Clone()
	}
	return m
}

func (m *mirror) insert(id int, v bitvec.Vector) { m.vecs[id] = v.Clone() }

func (m *mirror) delete(id int) bool {
	if _, ok := m.vecs[id]; !ok {
		return false
	}
	delete(m.vecs, id)
	return true
}

func (m *mirror) search(q bitvec.Vector, k int) []knn.Neighbor {
	all := make([]knn.Neighbor, 0, len(m.vecs))
	for id, v := range m.vecs {
		all = append(all, knn.Neighbor{ID: id, Dist: v.Hamming(q)})
	}
	knn.SortNeighbors(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func neighborsEqual(a, b []knn.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLiveChurnProperty interleaves Insert/Delete/Search against the
// brute-force mirror and asserts byte-identical top-k — including
// tie-stability around tombstoned IDs — across dimensionalities, with a
// compaction forced mid-stream and the background threshold compactor
// armed low enough to fire on its own.
func TestLiveChurnProperty(t *testing.T) {
	for _, dim := range []int{32, 128} {
		dim := dim
		t.Run(fmt.Sprintf("dim%d", dim), func(t *testing.T) {
			rng := stats.NewRNG(uint64(1000 + dim))
			const n0, ops = 200, 600
			ds := bitvec.RandomDataset(rng, n0, dim)
			idx, err := New(ds, compileCPU(t), Options{CompactThreshold: 64})
			if err != nil {
				t.Fatal(err)
			}
			defer idx.Close()
			m := newMirror(ds)
			ctx := context.Background()

			liveIDs := make([]int, 0, n0+ops)
			for i := 0; i < n0; i++ {
				liveIDs = append(liveIDs, i)
			}
			checks := 0
			for op := 0; op < ops; op++ {
				switch c := rng.Intn(10); {
				case c < 4: // insert
					v := bitvec.Random(rng, dim)
					id, err := idx.Insert(ctx, v)
					if err != nil {
						t.Fatalf("op %d: insert: %v", op, err)
					}
					m.insert(id, v)
					liveIDs = append(liveIDs, id)
				case c < 6 && len(liveIDs) > 0: // delete
					i := rng.Intn(len(liveIDs))
					id := liveIDs[i]
					liveIDs[i] = liveIDs[len(liveIDs)-1]
					liveIDs = liveIDs[:len(liveIDs)-1]
					if err := idx.Delete(ctx, id); err != nil {
						t.Fatalf("op %d: delete %d: %v", op, id, err)
					}
					if !m.delete(id) {
						t.Fatalf("op %d: mirror missing id %d", op, id)
					}
					// A second delete of the same ID must report not-found.
					if err := idx.Delete(ctx, id); !errors.Is(err, aperr.ErrNotFound) {
						t.Fatalf("op %d: double delete %d: got %v, want ErrNotFound", op, id, err)
					}
				default: // search
					q := bitvec.Random(rng, dim)
					k := 1 + rng.Intn(10)
					got, err := idx.Search(ctx, []bitvec.Vector{q}, k)
					if err != nil {
						t.Fatalf("op %d: search: %v", op, err)
					}
					want := m.search(q, k)
					if !neighborsEqual(got[0], want) {
						t.Fatalf("op %d (k=%d, %d live): got %v, want %v",
							op, k, idx.Len(), got[0], want)
					}
					checks++
				}
				if op == ops/2 {
					// Mid-stream compaction; results must stay identical.
					if err := idx.Compact(ctx); err != nil {
						t.Fatalf("op %d: compact: %v", op, err)
					}
				}
				if idx.Len() != len(m.vecs) {
					t.Fatalf("op %d: Len=%d, mirror=%d", op, idx.Len(), len(m.vecs))
				}
			}
			if checks == 0 {
				t.Fatal("property stream never searched")
			}
			// Settle: a final compaction folds every tombstone; the result
			// set must still match the mirror exactly.
			if err := idx.Compact(ctx); err != nil {
				t.Fatal(err)
			}
			q := bitvec.Random(rng, dim)
			got, err := idx.Search(ctx, []bitvec.Vector{q}, 10)
			if err != nil {
				t.Fatal(err)
			}
			if want := m.search(q, 10); !neighborsEqual(got[0], want) {
				t.Fatalf("post-compact: got %v, want %v", got[0], want)
			}
			st := idx.Stats()
			if st.Compactions < 2 {
				t.Fatalf("expected at least the 2 forced compactions, got %d", st.Compactions)
			}
			if st.DeltaSize != 0 || st.Tombstones != 0 {
				t.Fatalf("post-compact churn not folded: %+v", st)
			}
		})
	}
}

// TestLiveTombstoneTieStability pins the tie-break contract the merge must
// preserve: equidistant vectors order by ID, and tombstoning one of a tie
// group promotes exactly the next ID, before and after compaction.
func TestLiveTombstoneTieStability(t *testing.T) {
	const dim = 32
	base := bitvec.New(dim) // all zeros
	ds := bitvec.NewDataset(dim)
	for i := 0; i < 4; i++ {
		ds.Append(base.Clone()) // ids 0..3, all identical
	}
	idx, err := New(ds, compileCPU(t), Options{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	ctx := context.Background()

	// Two more identical vectors through the delta path: ids 4, 5.
	for i := 0; i < 2; i++ {
		if _, err := idx.Insert(ctx, base.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	q := base.Clone()
	want := []knn.Neighbor{{ID: 0, Dist: 0}, {ID: 1, Dist: 0}, {ID: 2, Dist: 0}}
	got, err := idx.Search(ctx, []bitvec.Vector{q}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !neighborsEqual(got[0], want) {
		t.Fatalf("tie order: got %v, want %v", got[0], want)
	}
	// Tombstone the middle of the tie group: ID 1 must vanish, ID 3 must
	// slide in — the over-fetch past baseTombs is what makes this exact.
	if err := idx.Delete(ctx, 1); err != nil {
		t.Fatal(err)
	}
	want = []knn.Neighbor{{ID: 0, Dist: 0}, {ID: 2, Dist: 0}, {ID: 3, Dist: 0}}
	got, err = idx.Search(ctx, []bitvec.Vector{q}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !neighborsEqual(got[0], want) {
		t.Fatalf("tie order after tombstone: got %v, want %v", got[0], want)
	}
	// Compaction must not renumber: global IDs survive the rebuild.
	if err := idx.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	got, err = idx.Search(ctx, []bitvec.Vector{q}, 6)
	if err != nil {
		t.Fatal(err)
	}
	want = []knn.Neighbor{{ID: 0, Dist: 0}, {ID: 2, Dist: 0}, {ID: 3, Dist: 0}, {ID: 4, Dist: 0}, {ID: 5, Dist: 0}}
	if !neighborsEqual(got[0], want) {
		t.Fatalf("ids after compaction: got %v, want %v", got[0], want)
	}
}

// TestLiveConcurrentChurn hammers Search, Insert, Delete and Compact from
// parallel goroutines — the -race workout for the RCU swap and the
// snapshot stability of the delta segment.
func TestLiveConcurrentChurn(t *testing.T) {
	const dim, n0 = 64, 256
	rng := stats.NewRNG(7)
	ds := bitvec.RandomDataset(rng, n0, dim)
	idx, err := New(ds, compileCPU(t), Options{CompactThreshold: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	const writers, searchers, each = 4, 4, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := stats.NewRNG(uint64(100 + w))
			for i := 0; i < each; i++ {
				id, err := idx.Insert(ctx, bitvec.Random(r, dim))
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if i%3 == 0 {
					if err := idx.Delete(ctx, id); err != nil {
						t.Errorf("delete %d: %v", id, err)
						return
					}
				}
			}
		}(w)
	}
	for s := 0; s < searchers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r := stats.NewRNG(uint64(200 + s))
			for i := 0; i < each; i++ {
				res, err := idx.Search(ctx, []bitvec.Vector{bitvec.Random(r, dim)}, 5)
				if err != nil {
					t.Errorf("search: %v", err)
					return
				}
				// The snapshot can never shrink below the seed minus its
				// deletes; 5 live vectors always exist here.
				if len(res[0]) != 5 {
					t.Errorf("search returned %d results, want 5", len(res[0]))
					return
				}
				prev := knn.Neighbor{ID: -1, Dist: -1}
				for _, nb := range res[0] {
					if !prev.Less(nb) {
						t.Errorf("unsorted result %v after %v", nb, prev)
						return
					}
					prev = nb
				}
			}
		}(s)
	}
	wg.Wait()
	if err := idx.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	st := idx.Stats()
	wantLive := n0 + writers*each - writers*((each+2)/3)
	if got := idx.Len(); got != wantLive {
		t.Fatalf("live count %d, want %d (stats %+v)", got, wantLive, st)
	}
	if st.Inserts != writers*each {
		t.Fatalf("inserts %d, want %d", st.Inserts, writers*each)
	}
}

// TestLiveErrors covers the sentinel paths: bad k, dim mismatch, unknown
// and double deletes, empty seed.
func TestLiveErrors(t *testing.T) {
	rng := stats.NewRNG(3)
	ds := bitvec.RandomDataset(rng, 16, 32)
	idx, err := New(ds, compileCPU(t), Options{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	ctx := context.Background()
	if _, err := idx.Search(ctx, []bitvec.Vector{bitvec.Random(rng, 32)}, 0); !errors.Is(err, aperr.ErrBadK) {
		t.Errorf("k=0: got %v", err)
	}
	if _, err := idx.Search(ctx, []bitvec.Vector{bitvec.Random(rng, 64)}, 3); !errors.Is(err, aperr.ErrDimMismatch) {
		t.Errorf("dim mismatch search: got %v", err)
	}
	if _, err := idx.Insert(ctx, bitvec.Random(rng, 64)); !errors.Is(err, aperr.ErrDimMismatch) {
		t.Errorf("dim mismatch insert: got %v", err)
	}
	if err := idx.Delete(ctx, 99); !errors.Is(err, aperr.ErrNotFound) {
		t.Errorf("delete unknown: got %v", err)
	}
	if err := idx.Delete(ctx, -1); !errors.Is(err, aperr.ErrNotFound) {
		t.Errorf("delete negative: got %v", err)
	}
	if _, err := New(bitvec.NewDataset(8), compileCPU(t), Options{}); !errors.Is(err, aperr.ErrEmptyDataset) {
		t.Errorf("empty seed: got %v", err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := idx.Insert(canceled, bitvec.Random(rng, 32)); !errors.Is(err, aperr.ErrCanceled) {
		t.Errorf("canceled insert: got %v", err)
	}
}

// TestLiveDeleteEverything drives the index down to zero vectors and back:
// searches against an all-deleted index return empty result sets, a
// compaction of an empty survivor set parks the base at nil, and inserts
// repopulate it.
func TestLiveDeleteEverything(t *testing.T) {
	rng := stats.NewRNG(5)
	const dim = 32
	ds := bitvec.RandomDataset(rng, 8, dim)
	idx, err := New(ds, compileCPU(t), Options{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	ctx := context.Background()
	for id := 0; id < 8; id++ {
		if err := idx.Delete(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	res, err := idx.Search(ctx, []bitvec.Vector{bitvec.Random(rng, dim)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0]) != 0 {
		t.Fatalf("all-deleted search returned %v", res[0])
	}
	if err := idx.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 0 {
		t.Fatalf("Len=%d after deleting everything", idx.Len())
	}
	res, err = idx.Search(ctx, []bitvec.Vector{bitvec.Random(rng, dim)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0]) != 0 {
		t.Fatalf("post-compact empty search returned %v", res[0])
	}
	// Repopulate through the delta path and compact back into a base.
	v := bitvec.Random(rng, dim)
	id, err := idx.Insert(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	if id != 8 {
		t.Fatalf("id after wipe = %d, want 8 (never reused)", id)
	}
	if err := idx.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	res, err = idx.Search(ctx, []bitvec.Vector{v}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0]) != 1 || res[0][0].ID != 8 || res[0][0].Dist != 0 {
		t.Fatalf("reborn index search = %v", res[0])
	}
}

// TestLiveBackgroundCompaction proves the threshold trigger fires without
// any explicit Compact call.
func TestLiveBackgroundCompaction(t *testing.T) {
	rng := stats.NewRNG(9)
	const dim = 32
	ds := bitvec.RandomDataset(rng, 32, dim)
	idx, err := New(ds, compileCPU(t), Options{CompactThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	ctx := context.Background()
	for i := 0; i < 16; i++ {
		if _, err := idx.Insert(ctx, bitvec.Random(rng, dim)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if idx.Stats().Compactions > 0 {
			if got := idx.Stats().BaseSize; got != 48 {
				t.Fatalf("base size after background compaction = %d, want 48", got)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background compaction never fired")
}

// TestLiveStaleTimerCompaction proves the max-staleness interval folds
// churn that never reaches the threshold.
func TestLiveStaleTimerCompaction(t *testing.T) {
	rng := stats.NewRNG(11)
	const dim = 32
	ds := bitvec.RandomDataset(rng, 32, dim)
	idx, err := New(ds, compileCPU(t), Options{
		CompactThreshold: 1 << 20, // unreachable
		CompactInterval:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if _, err := idx.Insert(context.Background(), bitvec.Random(rng, dim)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if idx.Stats().Compactions > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("staleness timer never compacted")
}

// TestLiveKernelSearchDuringCompaction pins the blocked kernel's delta scan
// (chunked ScanBlock over snapshot slabs, tombstone-filtered) against the RCU
// view swap: searchers run flat out while a compactor loop folds the delta
// into fresh base compilations and a writer keeps refilling it. Every
// returned neighbor is re-verified by recomputing its Hamming distance from
// the recorded vector — IDs are never reused, so a torn read of a moved or
// recycled slab would surface as a distance mismatch under -race.
func TestLiveKernelSearchDuringCompaction(t *testing.T) {
	const dim, n0 = 128, 512
	rng := stats.NewRNG(21)
	ds := bitvec.RandomDataset(rng, n0, dim)
	idx, err := New(ds, compileCPU(t), Options{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	ctx := context.Background()

	// vecs records every vector the index has ever held, by global ID.
	var vecs sync.Map
	for i := 0; i < n0; i++ {
		vecs.Store(i, ds.At(i).Clone())
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writer: keep the delta segment non-empty so each compaction has work
	// and searches always cross the base/delta merge.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := stats.NewRNG(1000)
		for i := 0; !stop.Load(); i++ {
			v := bitvec.Random(r, dim)
			id, err := idx.Insert(ctx, v)
			if err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			vecs.Store(id, v)
			if i%4 == 0 {
				if err := idx.Delete(ctx, id); err != nil {
					t.Errorf("delete %d: %v", id, err)
					return
				}
			}
		}
	}()

	// Compactor: fold the churn repeatedly so view swaps overlap searches.
	// Compact is a no-op on a clean index, so guarantee each round has at
	// least one delta entry to fold.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := stats.NewRNG(3000)
		for i := 0; i < 20; i++ {
			v := bitvec.Random(r, dim)
			id, err := idx.Insert(ctx, v)
			if err != nil {
				t.Errorf("compactor insert: %v", err)
				return
			}
			vecs.Store(id, v)
			if err := idx.Compact(ctx); err != nil {
				t.Errorf("compact %d: %v", i, err)
				return
			}
		}
		stop.Store(true)
	}()

	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r := stats.NewRNG(uint64(2000 + s))
			for !stop.Load() {
				q := bitvec.Random(r, dim)
				res, err := idx.Search(ctx, []bitvec.Vector{q}, 10)
				if err != nil {
					t.Errorf("search: %v", err)
					return
				}
				prev := knn.Neighbor{ID: -1, Dist: -1}
				for _, nb := range res[0] {
					if !prev.Less(nb) {
						t.Errorf("unsorted result %v after %v", nb, prev)
						return
					}
					prev = nb
					v, ok := vecs.Load(nb.ID)
					for retry := 0; !ok && retry < 100; retry++ {
						// An insert becomes searchable inside idx.Insert, a
						// beat before the inserter goroutine records the
						// returned ID in vecs — give the Store a moment
						// before calling the ID phantom.
						time.Sleep(100 * time.Microsecond)
						v, ok = vecs.Load(nb.ID)
					}
					if !ok {
						t.Errorf("result ID %d was never inserted", nb.ID)
						return
					}
					if want := v.(bitvec.Vector).Hamming(q); nb.Dist != want {
						t.Errorf("ID %d dist %d, want %d (torn read?)", nb.ID, nb.Dist, want)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	if idx.Stats().Compactions < 20 {
		t.Fatalf("compactions %d, want >= 20", idx.Stats().Compactions)
	}
}
