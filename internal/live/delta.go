// Package live implements the mutable index layer: a small, exactly-scanned
// delta segment of recent inserts and a tombstone set of deletes stacked on
// top of a compiled base index, with a background compactor that folds the
// churn back into a fresh base compilation.
//
// The paper's performance model charges a full symbol-replacement sweep per
// dataset change (§III-C): on a real Automata Processor every insert or
// delete would pay a board reconfiguration. The same amortization that the
// serving layer applies to query streams — batch many small events into one
// reconfiguration — applies to dataset churn: mutations land in host memory
// immediately (delta appends, tombstone marks) and the reconfiguration is
// paid once per compaction instead of once per mutation. Searches merge
// base and delta results through the shared (Dist, ID) tie-break with
// tombstones filtered, so results stay byte-identical to an exact scan of
// the current live set.
package live

import (
	"fmt"

	"repro/internal/bitvec"
)

// deltaChunkVecs is the number of vectors per delta chunk. Chunks are
// allocated at full size and never reallocated, which is what makes a
// published snapshot stable under concurrent appends.
const deltaChunkVecs = 256

// delta is the append-only store behind the delta segment. Appends must be
// serialized by the caller (the engine's writer lock); snapshots taken
// between appends are stable forever. Unlike bitvec.Dataset — whose Append
// may reallocate the storage an earlier At aliases — a delta chunk is
// allocated at its final size up front, so a reader holding a snapshot
// never observes a torn or moved vector.
type delta struct {
	dim     int
	wordsPV int
	firstID int // global ID of entry 0
	chunks  [][]uint64
	n       int
}

func newDelta(dim, firstID int) *delta {
	if dim <= 0 {
		panic(fmt.Sprintf("live: non-positive dimensionality %d", dim))
	}
	return &delta{dim: dim, wordsPV: bitvec.WordsFor(dim), firstID: firstID}
}

// append adds a vector and returns its global ID. Callers must hold the
// engine writer lock; the words are fully written before any snapshot that
// includes the new entry is published.
func (d *delta) append(v bitvec.Vector) int {
	if v.Dim() != d.dim {
		panic(fmt.Sprintf("live: delta dim %d, vector dim %d", d.dim, v.Dim()))
	}
	chunk, off := d.n/deltaChunkVecs, d.n%deltaChunkVecs
	if chunk == len(d.chunks) {
		d.chunks = append(d.chunks, make([]uint64, deltaChunkVecs*d.wordsPV))
	}
	copy(d.chunks[chunk][off*d.wordsPV:(off+1)*d.wordsPV], v.Words())
	id := d.firstID + d.n
	d.n++
	return id
}

// snapshot publishes the current visible prefix. The returned view is an
// immutable value: later appends write only into chunk positions beyond its
// length (or into chunks its header slice does not reference).
func (d *delta) snapshot() deltaView {
	return deltaView{
		dim:     d.dim,
		wordsPV: d.wordsPV,
		firstID: d.firstID,
		chunks:  d.chunks[:len(d.chunks):len(d.chunks)],
		n:       d.n,
	}
}

// deltaView is a stable point-in-time snapshot of the delta segment. The
// zero value is an empty segment.
type deltaView struct {
	dim     int
	wordsPV int
	firstID int
	chunks  [][]uint64
	n       int
}

// Len returns the number of visible entries (tombstoned ones included).
func (v deltaView) Len() int { return v.n }

// FirstID returns the global ID of entry 0; entry i has ID FirstID()+i.
func (v deltaView) FirstID() int { return v.firstID }

// contains reports whether the global id names a visible delta entry.
func (v deltaView) contains(id int) bool {
	return id >= v.firstID && id < v.firstID+v.n
}

// words returns the packed words of entry i for the scan kernel. The slice
// aliases chunk storage, which is immutable for indexes below Len.
func (v deltaView) words(i int) []uint64 {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("live: delta index %d out of range [0,%d)", i, v.n))
	}
	chunk, off := i/deltaChunkVecs, i%deltaChunkVecs
	return v.chunks[chunk][off*v.wordsPV : (off+1)*v.wordsPV]
}

// chunkCount returns the number of chunks holding visible entries.
func (v deltaView) chunkCount() int {
	return (v.n + deltaChunkVecs - 1) / deltaChunkVecs
}

// chunkWords returns chunk c's packed words trimmed to visible entries plus
// the number of vectors it holds — one contiguous block for the scan kernel.
// Chunk storage below the snapshot length is immutable, so the slab is
// stable no matter how many appends land after the snapshot.
func (v deltaView) chunkWords(c int) ([]uint64, int) {
	n := v.n - c*deltaChunkVecs
	if n > deltaChunkVecs {
		n = deltaChunkVecs
	}
	return v.chunks[c][:n*v.wordsPV], n
}

// vector returns a copy of entry i — copy-on-read, so callers can hold it
// across compactions without aliasing the store.
func (v deltaView) vector(i int) bitvec.Vector {
	return bitvec.FromWords(v.dim, v.words(i))
}
