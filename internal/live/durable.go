package live

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aperr"
	"repro/internal/bitvec"
	"repro/internal/wal"
)

// Durability: the live index optionally owns a directory of generation-paired
// files — snap-<gen>.apds (an APDS v2 snapshot with manifest) and
// wal-<gen>.log (the write-ahead log of every mutation since that snapshot).
// Every acknowledged Insert/Delete is appended to the log before it is
// published to readers; every compaction writes a fresh snapshot and rotates
// the log, so the replay tail stays bounded by the compaction threshold.
// Recovery loads the newest complete pair and replays the log over it,
// reconstructing the exact pre-crash live view: identical global IDs,
// identical NextID watermark, byte-identical search results.
//
// Crash windows and why the pairing rule survives them:
//
//   - during snapshot write: the snapshot lands at a .tmp name; the previous
//     pair is untouched and authoritative.
//   - between snapshot rename and log rotation: snap-G exists without wal-G
//     (an orphan). Every record acknowledged so far is still in wal-(G-1),
//     so recovery prefers the older *complete* pair. An orphan is trusted
//     only when no complete pair exists anywhere — the first-open window,
//     where no mutation has ever been acknowledged.
//   - after log rotation: wal-G was assembled at a .tmp name (header, barrier,
//     the churn that landed mid-compile) and renamed into place, so a wal that
//     exists is never a torn prefix of itself; pair G is authoritative.
//   - mid-append: the torn final record is detected by its CRC and truncated
//     away on replay; only the unacknowledged tail is lost.

// DurableOptions configures the durability directory of an Index.
type DurableOptions struct {
	// Dir is the directory holding the snapshot and log generations.
	Dir string
	// Policy selects when WAL appends reach stable storage (default
	// wal.SyncAlways).
	Policy wal.SyncPolicy
	// SyncInterval is the flush period under wal.SyncInterval (default
	// 100ms; ignored for the other policies).
	SyncInterval time.Duration
}

// DefaultSyncInterval is the flush period wal.SyncInterval uses when
// DurableOptions doesn't say otherwise.
const DefaultSyncInterval = 100 * time.Millisecond

// RecoveryInfo reports what NewDurable reconstructed from the directory.
type RecoveryInfo struct {
	// Recovered is false on a first open (empty directory, seed dataset used).
	Recovered bool
	// Generation of the snapshot the index resumed from.
	Generation int64
	// SnapshotVectors is the vector count of the loaded snapshot.
	SnapshotVectors int
	// ReplayedRecords is the number of WAL records applied over the snapshot.
	ReplayedRecords int
	// ReplayedBytes is the valid record bytes replayed.
	ReplayedBytes int64
	// Torn reports that the log ended in a partial or corrupt record that was
	// truncated away — the expected shape of a crash mid-append.
	Torn bool
}

// durState is the per-index durability bookkeeping behind DurStats.
type durState struct {
	dir     string
	policy  wal.SyncPolicy
	info    RecoveryInfo
	snapGen atomic.Int64
	// snapUnixNano is when the current snapshot generation was written (or
	// loaded, after recovery) — the freshness behind DurSnapshot.SnapshotAge.
	snapUnixNano atomic.Int64

	syncMu  sync.Mutex
	syncErr error
}

// DurSnapshot is the point-in-time durability counter block behind apknn's
// Stats.Durability.
type DurSnapshot struct {
	Dir             string
	Policy          string
	Appends         int64
	AppendedBytes   int64
	Fsyncs          int64
	WALSize         int64
	Recovered       bool
	ReplayedRecords int64
	ReplayedBytes   int64
	ReplayTorn      bool
	SnapshotGen     int64
	SnapshotAge     time.Duration
}

// snapName and walName name one generation's file pair. The zero-padded
// decimal keeps lexical and numeric order identical.
func snapName(gen int64) string { return fmt.Sprintf("snap-%016d.apds", gen) }
func walName(gen int64) string  { return fmt.Sprintf("wal-%016d.log", gen) }

// parseGen inverts snapName/walName; ok is false for foreign files.
func parseGen(name, prefix, suffix string) (int64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	gen, err := strconv.ParseInt(mid, 10, 64)
	if err != nil || gen < 0 || len(mid) != 16 {
		return 0, false
	}
	return gen, true
}

// NewDurable opens (or creates) a durable live index rooted at d.Dir. An
// empty directory seeds generation 0 from ds, exactly as New would, and
// persists it before returning; a directory with prior state recovers from
// its newest complete snapshot/log pair — ds is then only checked for
// dimensional agreement (it may be nil). The returned RecoveryInfo says
// which path was taken.
func NewDurable(ds *bitvec.Dataset, compile CompileFunc, opts Options, d DurableOptions) (*Index, RecoveryInfo, error) {
	if d.Dir == "" {
		return nil, RecoveryInfo{}, fmt.Errorf("live: durable open needs a directory: %w", aperr.ErrBadFormat)
	}
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("live: durable dir: %w", err)
	}
	gen, walExists, err := newestState(d.Dir)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	if gen < 0 {
		return firstOpen(ds, compile, opts, d)
	}
	return openExisting(ds, compile, opts, d, gen, walExists)
}

// newestState picks the recovery generation: the newest gen with both files,
// else the newest orphan snapshot, else -1 for an empty directory.
func newestState(dir string) (gen int64, walExists bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return -1, false, fmt.Errorf("live: scan durable dir: %w", err)
	}
	snaps := map[int64]bool{}
	wals := map[int64]bool{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if g, ok := parseGen(e.Name(), "snap-", ".apds"); ok {
			snaps[g] = true
		}
		if g, ok := parseGen(e.Name(), "wal-", ".log"); ok {
			wals[g] = true
		}
	}
	best, orphan := int64(-1), int64(-1)
	for g := range snaps {
		if wals[g] {
			if g > best {
				best = g
			}
		} else if g > orphan {
			orphan = g
		}
	}
	if best >= 0 {
		return best, true, nil
	}
	return orphan, false, nil
}

// firstOpen seeds generation 0 from ds and persists it: snapshot first, then
// the log — so a crash between the two leaves an orphan snapshot that the
// recovery rule accepts (no mutation can have been acknowledged yet).
func firstOpen(ds *bitvec.Dataset, compile CompileFunc, opts Options, d DurableOptions) (*Index, RecoveryInfo, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, RecoveryInfo{}, fmt.Errorf("live: %w", aperr.ErrEmptyDataset)
	}
	base, err := compile(ds)
	if err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("live: compile base: %w", err)
	}
	m := &bitvec.Manifest{Generation: 0, NextID: ds.Len()}
	if err := bitvec.SaveSnapshotFile(filepath.Join(d.Dir, snapName(0)), ds, m); err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("live: write seed snapshot: %w", err)
	}
	if err := wal.SyncDir(d.Dir); err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("live: sync durable dir: %w", err)
	}
	lg, err := createWAL(filepath.Join(d.Dir, walName(0)), ds.Dim(), d.Policy, func(l *wal.Log) error {
		return l.Append(wal.Record{Type: wal.RecBarrier, Gen: 0, NextID: ds.Len()})
	})
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	x := newIndex(&baseGen{searcher: base, ds: ds}, newDelta(ds.Dim(), ds.Len()),
		map[int]struct{}{}, 0, compile, opts)
	info := RecoveryInfo{Generation: 0, SnapshotVectors: ds.Len()}
	x.attachDurable(lg, d, info)
	x.start()
	return x, info, nil
}

// openExisting recovers from snapshot generation gen: compile the snapshot
// dataset as the base, replay the paired log over it (or create a fresh log
// when the pair is an orphan), and resume with the exact pre-crash state.
func openExisting(ds *bitvec.Dataset, compile CompileFunc, opts Options, d DurableOptions, gen int64, walExists bool) (*Index, RecoveryInfo, error) {
	snapDS, m, err := bitvec.LoadSnapshotFile(filepath.Join(d.Dir, snapName(gen)))
	if err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("live: load snapshot gen %d: %w", gen, err)
	}
	if m.Generation != gen {
		return nil, RecoveryInfo{}, fmt.Errorf("live: snapshot file gen %d holds manifest gen %d: %w", gen, m.Generation, aperr.ErrBadFormat)
	}
	if ds != nil && ds.Dim() != snapDS.Dim() {
		return nil, RecoveryInfo{}, fmt.Errorf("live: seed dim %d, durable state dim %d: %w", ds.Dim(), snapDS.Dim(), aperr.ErrDimMismatch)
	}
	dim := snapDS.Dim()
	var base *baseGen
	if snapDS.Len() > 0 {
		searcher, err := compile(snapDS)
		if err != nil {
			return nil, RecoveryInfo{}, fmt.Errorf("live: compile recovered base: %w", err)
		}
		base = &baseGen{searcher: searcher, ds: snapDS, ids: m.IDs}
	}
	store := newDelta(dim, m.NextID)
	tomb := map[int]struct{}{}
	baseTombs := 0
	for _, id := range m.Tombstones {
		tomb[id] = struct{}{}
		if base != nil && base.contains(id) {
			baseTombs++
		}
	}
	info := RecoveryInfo{Recovered: true, Generation: gen, SnapshotVectors: snapDS.Len()}
	var lg *wal.Log
	if walExists {
		first := true
		var rep wal.Replay
		lg, rep, err = wal.Open(filepath.Join(d.Dir, walName(gen)), dim, wal.Options{Policy: d.Policy}, func(r wal.Record) error {
			if first {
				first = false
				if r.Type != wal.RecBarrier || r.Gen != gen || r.NextID != m.NextID {
					return fmt.Errorf("live: log gen %d barrier (%d,%d) disagrees with manifest (%d,%d): %w",
						gen, r.Gen, r.NextID, gen, m.NextID, aperr.ErrBadFormat)
				}
				return nil
			}
			return applyRecord(r, dim, base, store, tomb, &baseTombs)
		})
		if err != nil {
			return nil, RecoveryInfo{}, fmt.Errorf("live: replay gen %d: %w", gen, err)
		}
		info.ReplayedRecords = rep.Records
		info.ReplayedBytes = rep.Bytes
		info.Torn = rep.Torn
	} else {
		// Orphan snapshot: the crash hit between the snapshot rename and the
		// log rotation of a first open, before any mutation was acknowledged.
		// Materialize the missing log.
		lg, err = createWAL(filepath.Join(d.Dir, walName(gen)), dim, d.Policy, func(l *wal.Log) error {
			return l.Append(wal.Record{Type: wal.RecBarrier, Gen: gen, NextID: m.NextID})
		})
		if err != nil {
			return nil, RecoveryInfo{}, err
		}
	}
	x := newIndex(base, store, tomb, baseTombs, compile, opts)
	x.generation.Store(gen)
	x.attachDurable(lg, d, info)
	// Stale generations — older pairs superseded by this one, or a newer
	// orphan snapshot whose rotation never completed — are dead weight now.
	removeOtherGens(d.Dir, gen)
	x.start()
	return x, info, nil
}

// applyRecord replays one mutation record into the recovery state, enforcing
// the invariants the appender maintained: insert IDs are exactly sequential,
// deletes name a live vector, barriers appear only at the head.
func applyRecord(r wal.Record, dim int, base *baseGen, store *delta, tomb map[int]struct{}, baseTombs *int) error {
	switch r.Type {
	case wal.RecInsert:
		if want := store.firstID + store.n; r.ID != want {
			return fmt.Errorf("live: replay insert id %d, want %d: %w", r.ID, want, aperr.ErrBadFormat)
		}
		store.append(bitvec.FromWords(dim, r.Words))
		return nil
	case wal.RecDelete:
		if _, dead := tomb[r.ID]; dead {
			return fmt.Errorf("live: replay double delete %d: %w", r.ID, aperr.ErrBadFormat)
		}
		inBase := base != nil && base.contains(r.ID)
		inDelta := r.ID >= store.firstID && r.ID < store.firstID+store.n
		if !inBase && !inDelta {
			return fmt.Errorf("live: replay delete of unknown id %d: %w", r.ID, aperr.ErrBadFormat)
		}
		tomb[r.ID] = struct{}{}
		if inBase {
			*baseTombs++
		}
		return nil
	case wal.RecBarrier:
		return fmt.Errorf("live: barrier after head of log: %w", aperr.ErrBadFormat)
	default:
		return fmt.Errorf("live: replay record type %d: %w", r.Type, aperr.ErrBadFormat)
	}
}

// createWAL assembles a log at a temporary name — header plus whatever
// records fill writes — syncs it, and renames it into place. A wal file that
// exists under its real name is therefore always a complete prefix: recovery
// never has to distinguish a torn header from a foreign file.
func createWAL(path string, dim int, policy wal.SyncPolicy, fill func(*wal.Log) error) (*wal.Log, error) {
	tmp := path + ".tmp"
	l, err := wal.Create(tmp, dim, wal.Options{Policy: policy})
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*wal.Log, error) {
		l.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := fill(l); err != nil {
		return fail(err)
	}
	if err := l.Sync(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fail(fmt.Errorf("live: rotate wal: %w", err))
	}
	if err := wal.SyncDir(filepath.Dir(path)); err != nil {
		l.Close()
		return nil, fmt.Errorf("live: sync durable dir: %w", err)
	}
	return l, nil
}

// removeOtherGens deletes every generation file except gen's pair, plus any
// stranded .tmp files. Best-effort: a leftover is storage waste, not a
// correctness hazard, so failures are ignored.
func removeOtherGens(dir string, gen int64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		keep := name == snapName(gen) || name == walName(gen)
		g, isSnap := parseGen(name, "snap-", ".apds")
		g2, isWal := parseGen(name, "wal-", ".log")
		stale := (isSnap && g != gen) || (isWal && g2 != gen) || filepath.Ext(name) == ".tmp"
		if stale && !keep {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// attachDurable hands the index its WAL and bookkeeping. Called before start.
func (x *Index) attachDurable(lg *wal.Log, d DurableOptions, info RecoveryInfo) {
	x.wal = lg
	x.dur = &durState{dir: d.Dir, policy: d.Policy, info: info}
	x.dur.snapGen.Store(info.Generation)
	x.dur.snapUnixNano.Store(time.Now().UnixNano())
	if d.Policy == wal.SyncInterval {
		interval := d.SyncInterval
		if interval <= 0 {
			interval = DefaultSyncInterval
		}
		x.wg.Add(1)
		go x.syncLoop(interval)
	}
}

// syncLoop is the wal.SyncInterval flusher: acknowledged mutations reach
// stable storage at least once per interval.
func (x *Index) syncLoop(interval time.Duration) {
	defer x.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-x.closed:
			return
		case <-t.C:
			x.mu.Lock()
			l := x.wal
			x.mu.Unlock()
			if l == nil {
				continue
			}
			// A log rotated away and closed mid-tick is not a failure; the
			// rotation synced it.
			if err := l.Sync(); err != nil && !errors.Is(err, aperr.ErrClosed) {
				x.dur.syncMu.Lock()
				x.dur.syncErr = err
				x.dur.syncMu.Unlock()
			}
		}
	}
}

// SyncErr returns the most recent background flush failure under the
// interval policy, nil otherwise.
func (x *Index) SyncErr() error {
	if x.dur == nil {
		return nil
	}
	x.dur.syncMu.Lock()
	defer x.dur.syncMu.Unlock()
	return x.dur.syncErr
}

// DurStats snapshots the durability counters; ok is false for an index
// opened without a durability directory.
func (x *Index) DurStats() (DurSnapshot, bool) {
	if x.dur == nil {
		return DurSnapshot{}, false
	}
	x.mu.Lock()
	l := x.wal
	x.mu.Unlock()
	s := DurSnapshot{
		Dir:             x.dur.dir,
		Policy:          x.dur.policy.String(),
		Recovered:       x.dur.info.Recovered,
		ReplayedRecords: int64(x.dur.info.ReplayedRecords),
		ReplayedBytes:   x.dur.info.ReplayedBytes,
		ReplayTorn:      x.dur.info.Torn,
		SnapshotGen:     x.dur.snapGen.Load(),
		SnapshotAge:     time.Duration(time.Now().UnixNano() - x.dur.snapUnixNano.Load()),
	}
	if l != nil {
		ws := l.Stats()
		s.Appends = ws.Appends
		s.AppendedBytes = ws.Bytes
		s.Fsyncs = ws.Fsyncs
		s.WALSize = ws.Size
	}
	return s, true
}

// rotateDurable is the log half of a durable compaction, called under x.mu
// at the swap point. It assembles the new generation's log — barrier, then
// the churn that landed mid-compile (the same inserts and tombstones the new
// view carries) — and atomically renames it into place. The old log is
// returned for the caller to close outside the lock.
func (x *Index) rotateDurable(newGen int64, snap, cur *view, tomb map[int]struct{}) (*wal.Log, *wal.Log, error) {
	newLog, err := createWAL(filepath.Join(x.dur.dir, walName(newGen)), x.dim, x.dur.policy, func(l *wal.Log) error {
		if err := l.Append(wal.Record{Type: wal.RecBarrier, Gen: newGen, NextID: snap.nextID}); err != nil {
			return err
		}
		for i := snap.delta.Len(); i < cur.delta.Len(); i++ {
			if err := l.Append(wal.Record{Type: wal.RecInsert, ID: cur.delta.FirstID() + i, Words: cur.delta.words(i)}); err != nil {
				return err
			}
		}
		for id := range tomb {
			if err := l.Append(wal.Record{Type: wal.RecDelete, ID: id}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	old := x.wal
	x.wal = newLog
	return newLog, old, nil
}

// finishDurable is the post-swap cleanup of a durable compaction: close the
// rotated-away log, drop superseded generations, refresh the age stamp.
func (x *Index) finishDurable(newGen int64, old *wal.Log) {
	if old != nil {
		old.Close()
	}
	removeOtherGens(x.dur.dir, newGen)
	x.dur.snapGen.Store(newGen)
	x.dur.snapUnixNano.Store(time.Now().UnixNano())
}
