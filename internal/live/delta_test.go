package live

import (
	"context"
	"sync"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/stats"
)

// TestDeltaSnapshotStableUnderAppend is the aliasing regression test: a
// snapshot taken from the delta store must keep returning the exact same
// bytes while appends keep landing — the property bitvec.Dataset.At cannot
// give (Append may reallocate the storage an earlier At aliases), and the
// reason the delta segment exists. Run it under -race.
func TestDeltaSnapshotStableUnderAppend(t *testing.T) {
	const dim, warm, churn = 96, 300, 3000 // warm crosses a chunk boundary
	rng := stats.NewRNG(21)
	d := newDelta(dim, 0)
	var mu sync.Mutex // stands in for the engine writer lock
	want := make([]bitvec.Vector, warm)
	for i := range want {
		v := bitvec.Random(rng, dim)
		want[i] = v
		mu.Lock()
		d.append(v)
		mu.Unlock()
	}
	snap := d.snapshot()

	done := make(chan struct{})
	go func() {
		defer close(done)
		r := stats.NewRNG(22)
		for i := 0; i < churn; i++ {
			mu.Lock()
			d.append(bitvec.Random(r, dim))
			mu.Unlock()
		}
	}()
	// Re-read the snapshot repeatedly while the writer churns; every read
	// must see the original bytes, and the snapshot length must not move.
	for pass := 0; pass < 50; pass++ {
		if snap.Len() != warm {
			t.Fatalf("snapshot length moved: %d", snap.Len())
		}
		for i := 0; i < warm; i++ {
			if got := snap.vector(i); !got.Equal(want[i]) {
				t.Fatalf("pass %d: snapshot entry %d changed:\n got %v\nwant %v", pass, i, got, want[i])
			}
		}
	}
	<-done
	if d.snapshot().Len() != warm+churn {
		t.Fatalf("store length = %d, want %d", d.snapshot().Len(), warm+churn)
	}
}

// TestLiveSearchSnapshotStableUnderInsert is the end-to-end version: a
// search result captured before a burst of concurrent Inserts must be
// reproducible from the IDs and distances it reported, i.e. the snapshot
// the search ran on was not mutated underneath it.
func TestLiveSearchSnapshotStableUnderInsert(t *testing.T) {
	const dim, n0 = 64, 128
	rng := stats.NewRNG(23)
	ds := bitvec.RandomDataset(rng, n0, dim)
	idx, err := New(ds, func(sub *bitvec.Dataset) (Searcher, error) {
		return &cpuSearcher{ds: sub}, nil
	}, Options{CompactThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	ctx := context.Background()

	// Seed the delta so the search path crosses it.
	inserted := make([]bitvec.Vector, 40)
	for i := range inserted {
		inserted[i] = bitvec.Random(rng, dim)
		if _, err := idx.Insert(ctx, inserted[i]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := stats.NewRNG(24)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := idx.Insert(ctx, bitvec.Random(r, dim)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()
	q := bitvec.Random(rng, dim)
	for i := 0; i < 200; i++ {
		res, err := idx.Search(ctx, []bitvec.Vector{q}, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(res[0]) != 8 {
			t.Fatalf("got %d results", len(res[0]))
		}
	}
	close(stop)
	wg.Wait()
}
