package live

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/aperr"
	"repro/internal/bitvec"
	"repro/internal/stats"
	"repro/internal/wal"
)

// mutation is one scripted op of the crash-recovery property tests.
type mutation struct {
	insert bool
	vec    bitvec.Vector // insert payload
	id     int           // delete target / assigned insert ID
	// walSize is the log's byte length after the op was acknowledged: the
	// truncation boundary that separates "survives the crash" from "lost".
	walSize int64
}

// copyFile clones one file byte-for-byte, optionally truncated to limit.
func copyFile(t *testing.T, src, dst string, limit int64) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if limit >= 0 && int64(len(data)) > limit {
		data = data[:limit]
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// checkState asserts the recovered index matches the mirror exactly: live
// count, NextID watermark, and byte-identical search results at a k that
// covers every live vector.
func checkState(t *testing.T, x *Index, m *mirror, wantNextID int, rng *stats.RNG, label string) {
	t.Helper()
	if got := x.Len(); got != len(m.vecs) {
		t.Fatalf("%s: Len=%d, mirror=%d", label, got, len(m.vecs))
	}
	if got := x.NextID(); got != wantNextID {
		t.Fatalf("%s: NextID=%d, want %d", label, got, wantNextID)
	}
	k := len(m.vecs) + 1
	for i := 0; i < 3; i++ {
		q := bitvec.Random(rng, m.dim)
		res, err := x.Search(context.Background(), []bitvec.Vector{q}, k)
		if err != nil {
			t.Fatalf("%s: search: %v", label, err)
		}
		if want := m.search(q, k); !neighborsEqual(res[0], want) {
			t.Fatalf("%s: search mismatch\n got %v\nwant %v", label, res[0], want)
		}
	}
}

// TestDurableFirstOpenAndReopen is the basic durable lifecycle: seed a fresh
// directory, churn, close cleanly, reopen, and get the identical index back —
// same IDs, same results, and the ID sequence continues where it stopped.
func TestDurableFirstOpenAndReopen(t *testing.T) {
	const dim, n0 = 64, 24
	rng := stats.NewRNG(41)
	ds := bitvec.RandomDataset(rng, n0, dim)
	dir := t.TempDir()
	ctx := context.Background()

	idx, info, err := NewDurable(ds, compileCPU(t), Options{CompactThreshold: -1},
		DurableOptions{Dir: dir, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if info.Recovered || info.Generation != 0 || info.SnapshotVectors != n0 {
		t.Fatalf("first open info = %+v", info)
	}
	m := newMirror(ds)
	for i := 0; i < 30; i++ {
		v := bitvec.Random(rng, dim)
		id, err := idx.Insert(ctx, v)
		if err != nil {
			t.Fatal(err)
		}
		m.insert(id, v)
		if i%3 == 0 {
			if err := idx.Delete(ctx, id); err != nil {
				t.Fatal(err)
			}
			m.delete(id)
		}
	}
	ds2, ok := idx.DurStats()
	if !ok || ds2.Appends == 0 || ds2.Fsyncs == 0 {
		t.Fatalf("durable stats = %+v ok=%v", ds2, ok)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	re, info, err := NewDurable(nil, compileCPU(t), Options{CompactThreshold: -1},
		DurableOptions{Dir: dir, Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !info.Recovered || info.Generation != 0 || info.Torn {
		t.Fatalf("reopen info = %+v", info)
	}
	// Barrier + 30 inserts + 10 deletes.
	if info.ReplayedRecords != 41 {
		t.Fatalf("replayed %d records, want 41", info.ReplayedRecords)
	}
	checkState(t, re, m, n0+30, rng, "reopen")
	// The ID sequence must continue exactly where the crash-free run stopped.
	v := bitvec.Random(rng, dim)
	id, err := re.Insert(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	if id != n0+30 {
		t.Fatalf("post-recovery insert id = %d, want %d", id, n0+30)
	}
}

// TestDurableTornTailSweep is the crash-recovery property test: a scripted
// mutation stream records the WAL length after every acknowledged op, then
// the log is cut at EVERY byte offset in turn and recovered in a fresh
// directory. Each recovery must equal the oracle prefix — exactly the ops
// whose acknowledgment boundary lies at or before the cut — with the torn
// flag set iff the cut fell inside a record.
func TestDurableTornTailSweep(t *testing.T) {
	const dim, n0, ops = 64, 16, 24
	rng := stats.NewRNG(43)
	ds := bitvec.RandomDataset(rng, n0, dim)
	dir := t.TempDir()
	ctx := context.Background()

	idx, _, err := NewDurable(ds, compileCPU(t), Options{CompactThreshold: -1},
		DurableOptions{Dir: dir, Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := idx.DurStats()
	size0 := base.WALSize // header + barrier: the empty-log length

	script := make([]mutation, 0, ops)
	liveIDs := make([]int, 0, n0+ops)
	for i := 0; i < n0; i++ {
		liveIDs = append(liveIDs, i)
	}
	for op := 0; op < ops; op++ {
		var mu mutation
		if rng.Intn(3) > 0 || len(liveIDs) == 0 {
			mu.insert = true
			mu.vec = bitvec.Random(rng, dim)
			if mu.id, err = idx.Insert(ctx, mu.vec); err != nil {
				t.Fatal(err)
			}
			liveIDs = append(liveIDs, mu.id)
		} else {
			i := rng.Intn(len(liveIDs))
			mu.id = liveIDs[i]
			liveIDs[i] = liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
			if err := idx.Delete(ctx, mu.id); err != nil {
				t.Fatal(err)
			}
		}
		st, _ := idx.DurStats()
		mu.walSize = st.WALSize
		script = append(script, mu)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	full := script[len(script)-1].walSize

	srcSnap := filepath.Join(dir, snapName(0))
	srcWAL := filepath.Join(dir, walName(0))
	boundaries := map[int64]bool{size0: true}
	for _, mu := range script {
		boundaries[mu.walSize] = true
	}
	for cut := size0; cut <= full; cut++ {
		crash := t.TempDir()
		copyFile(t, srcSnap, filepath.Join(crash, snapName(0)), -1)
		copyFile(t, srcWAL, filepath.Join(crash, walName(0)), cut)

		re, info, err := NewDurable(nil, compileCPU(t), Options{CompactThreshold: -1},
			DurableOptions{Dir: crash, Policy: wal.SyncNever})
		if err != nil {
			t.Fatalf("cut %d: recover: %v", cut, err)
		}
		if wantTorn := !boundaries[cut]; info.Torn != wantTorn {
			t.Fatalf("cut %d: torn=%v, want %v", cut, info.Torn, wantTorn)
		}
		m := newMirror(ds)
		nextID := n0
		for _, mu := range script {
			if mu.walSize > cut {
				break
			}
			if mu.insert {
				m.insert(mu.id, mu.vec)
				nextID = mu.id + 1
			} else {
				m.delete(mu.id)
			}
		}
		checkState(t, re, m, nextID, rng, fmt.Sprintf("cut %d", cut))
		re.Close()
	}
}

// TestDurableCompactionRecovery drives compactions — including churn injected
// while the compile is in flight, the carried-over records the rotation must
// write into the fresh log — closes, reopens, and requires the exact state
// back from the rotated pair alone.
func TestDurableCompactionRecovery(t *testing.T) {
	const dim, n0 = 64, 32
	rng := stats.NewRNG(47)
	ds := bitvec.RandomDataset(rng, n0, dim)
	dir := t.TempDir()
	ctx := context.Background()

	var idx *Index
	m := newMirror(ds)
	var injectMu sync.Mutex
	inject := false
	compile := func(cds *bitvec.Dataset) (Searcher, error) {
		injectMu.Lock()
		doIt := inject
		inject = false
		injectMu.Unlock()
		if doIt {
			// Churn while the compile is running: these mutations are
			// acknowledged against the old log but must carry into the
			// rotated one.
			v := bitvec.Random(rng, dim)
			id, err := idx.Insert(ctx, v)
			if err != nil {
				return nil, err
			}
			m.insert(id, v)
			if err := idx.Delete(ctx, 0); err != nil {
				return nil, err
			}
			m.delete(0)
		}
		return &cpuSearcher{ds: cds}, nil
	}

	var err error
	idx, _, err = NewDurable(ds, compile, Options{CompactThreshold: -1},
		DurableOptions{Dir: dir, Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		v := bitvec.Random(rng, dim)
		id, err := idx.Insert(ctx, v)
		if err != nil {
			t.Fatal(err)
		}
		m.insert(id, v)
		if i%4 == 0 && i > 0 {
			if err := idx.Delete(ctx, id-1); err != nil {
				t.Fatal(err)
			}
			m.delete(id - 1)
		}
	}
	injectMu.Lock()
	inject = true
	injectMu.Unlock()
	if err := idx.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		v := bitvec.Random(rng, dim)
		id, err := idx.Insert(ctx, v)
		if err != nil {
			t.Fatal(err)
		}
		m.insert(id, v)
	}
	if err := idx.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	nextID := idx.NextID()
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	// Only the newest generation's pair may remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("durable dir holds %v, want exactly the gen-2 pair", names)
	}

	re, info, err := NewDurable(nil, compileCPU(t), Options{CompactThreshold: -1},
		DurableOptions{Dir: dir, Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !info.Recovered || info.Generation != 2 {
		t.Fatalf("reopen info = %+v, want recovery from gen 2", info)
	}
	checkState(t, re, m, nextID, rng, "post-compaction reopen")
}

// TestDurableCrashBetweenSnapshotAndRotate pins the recovery rule for the
// riskiest window: the next generation's snapshot is durably renamed but the
// log rotation never happened. The orphan must be ignored — the previous
// complete pair still holds every acknowledged record — and cleaned up.
func TestDurableCrashBetweenSnapshotAndRotate(t *testing.T) {
	const dim, n0 = 64, 16
	rng := stats.NewRNG(53)
	ds := bitvec.RandomDataset(rng, n0, dim)
	dir := t.TempDir()
	ctx := context.Background()

	idx, _, err := NewDurable(ds, compileCPU(t), Options{CompactThreshold: -1},
		DurableOptions{Dir: dir, Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	m := newMirror(ds)
	for i := 0; i < 12; i++ {
		v := bitvec.Random(rng, dim)
		id, err := idx.Insert(ctx, v)
		if err != nil {
			t.Fatal(err)
		}
		m.insert(id, v)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	// Fake the crash: a gen-1 snapshot (with whatever the compaction would
	// have folded — here deliberately stale content) exists, its log doesn't.
	stale := bitvec.RandomDataset(stats.NewRNG(99), 4, dim)
	if err := bitvec.SaveSnapshotFile(filepath.Join(dir, snapName(1)),
		stale, &bitvec.Manifest{Generation: 1, NextID: 4}); err != nil {
		t.Fatal(err)
	}

	re, info, err := NewDurable(nil, compileCPU(t), Options{CompactThreshold: -1},
		DurableOptions{Dir: dir, Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !info.Recovered || info.Generation != 0 {
		t.Fatalf("recovered gen %d, want the complete pair at gen 0 (info %+v)", info.Generation, info)
	}
	checkState(t, re, m, n0+12, rng, "orphan-ignored reopen")
	if _, err := os.Stat(filepath.Join(dir, snapName(1))); !os.IsNotExist(err) {
		t.Fatalf("stale orphan snapshot not cleaned up: %v", err)
	}
}

// TestDurableFirstOpenCrash covers the one window where an orphan snapshot
// IS the truth: first open crashed after the seed snapshot rename, before
// the log existed. No mutation can have been acknowledged, so recovery
// accepts the snapshot and materializes the missing log.
func TestDurableFirstOpenCrash(t *testing.T) {
	const dim, n0 = 64, 16
	ds := bitvec.RandomDataset(stats.NewRNG(59), n0, dim)
	dir := t.TempDir()
	if err := bitvec.SaveSnapshotFile(filepath.Join(dir, snapName(0)),
		ds, &bitvec.Manifest{Generation: 0, NextID: n0}); err != nil {
		t.Fatal(err)
	}
	idx, info, err := NewDurable(nil, compileCPU(t), Options{CompactThreshold: -1},
		DurableOptions{Dir: dir, Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if !info.Recovered || info.Generation != 0 || info.SnapshotVectors != n0 {
		t.Fatalf("orphan first-open info = %+v", info)
	}
	if idx.Len() != n0 || idx.NextID() != n0 {
		t.Fatalf("Len=%d NextID=%d, want %d/%d", idx.Len(), idx.NextID(), n0, n0)
	}
	if _, err := os.Stat(filepath.Join(dir, walName(0))); err != nil {
		t.Fatalf("wal-0 not materialized: %v", err)
	}
	// And the index is fully usable: the next mutation lands in the new log.
	if _, err := idx.Insert(context.Background(), bitvec.Random(stats.NewRNG(1), dim)); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCloseLifecycle is the satellite regression: Close is idempotent
// (twice, and while owning a WAL handle), stops every background goroutine,
// and flips durable mutations to aperr.ErrClosed instead of silently
// dropping durability.
func TestDurableCloseLifecycle(t *testing.T) {
	const dim, n0 = 64, 16
	rng := stats.NewRNG(61)
	ds := bitvec.RandomDataset(rng, n0, dim)
	ctx := context.Background()
	before := runtime.NumGoroutine()

	idx, _, err := NewDurable(ds, compileCPU(t), Options{CompactThreshold: 8, CompactInterval: 5 * time.Millisecond},
		DurableOptions{Dir: t.TempDir(), Policy: wal.SyncInterval, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := idx.Insert(ctx, bitvec.Random(rng, dim)); err != nil {
			t.Fatal(err)
		}
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// Both loops (compactor, interval flusher) must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: %d, started with %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := idx.Insert(ctx, bitvec.Random(rng, dim)); !errors.Is(err, aperr.ErrClosed) {
		t.Fatalf("insert after close: got %v, want ErrClosed", err)
	}
	if err := idx.Delete(ctx, 0); !errors.Is(err, aperr.ErrClosed) {
		t.Fatalf("delete after close: got %v, want ErrClosed", err)
	}
	// Reads keep working: the in-memory view outlives the handles.
	if _, err := idx.Search(ctx, []bitvec.Vector{bitvec.Random(rng, dim)}, 3); err != nil {
		t.Fatalf("search after close: %v", err)
	}

	// A non-durable index stays fully usable after (double) Close.
	plain, err := New(bitvec.RandomDataset(rng, 8, dim), compileCPU(t), Options{CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Insert(ctx, bitvec.Random(rng, dim)); err != nil {
		t.Fatalf("non-durable insert after close: %v", err)
	}
}

// TestDurableConcurrentChurn is the -race workout for the WAL path: parallel
// writers and searchers over a durable index with background compaction
// armed, then a clean close, reopen, and an exact state comparison.
func TestDurableConcurrentChurn(t *testing.T) {
	const dim, n0 = 64, 128
	rng := stats.NewRNG(67)
	ds := bitvec.RandomDataset(rng, n0, dim)
	dir := t.TempDir()
	ctx := context.Background()

	idx, _, err := NewDurable(ds, compileCPU(t), Options{CompactThreshold: 32},
		DurableOptions{Dir: dir, Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	m := newMirror(ds)
	var mmu sync.Mutex
	var wg sync.WaitGroup
	const writers, each = 4, 60
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := stats.NewRNG(uint64(300 + w))
			for i := 0; i < each; i++ {
				v := bitvec.Random(r, dim)
				id, err := idx.Insert(ctx, v)
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				mmu.Lock()
				m.insert(id, v)
				mmu.Unlock()
				if i%3 == 0 {
					if err := idx.Delete(ctx, id); err != nil {
						t.Errorf("delete %d: %v", id, err)
						return
					}
					mmu.Lock()
					m.delete(id)
					mmu.Unlock()
				}
			}
		}(w)
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r := stats.NewRNG(uint64(400 + s))
			for i := 0; i < each; i++ {
				if _, err := idx.Search(ctx, []bitvec.Vector{bitvec.Random(r, dim)}, 5); err != nil {
					t.Errorf("search: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	nextID := idx.NextID()
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	re, info, err := NewDurable(nil, compileCPU(t), Options{CompactThreshold: -1},
		DurableOptions{Dir: dir, Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !info.Recovered {
		t.Fatalf("reopen info = %+v", info)
	}
	checkState(t, re, m, nextID, rng, "concurrent churn reopen")
}

// TestDurableDimMismatchOnReopen: a seed of the wrong width against an
// existing durable directory must fail with the typed sentinel.
func TestDurableDimMismatchOnReopen(t *testing.T) {
	dir := t.TempDir()
	ds := bitvec.RandomDataset(stats.NewRNG(71), 8, 64)
	idx, _, err := NewDurable(ds, compileCPU(t), Options{CompactThreshold: -1},
		DurableOptions{Dir: dir, Policy: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	wrong := bitvec.RandomDataset(stats.NewRNG(72), 8, 128)
	if _, _, err := NewDurable(wrong, compileCPU(t), Options{}, DurableOptions{Dir: dir}); !errors.Is(err, aperr.ErrDimMismatch) {
		t.Fatalf("got %v, want ErrDimMismatch", err)
	}
}
