package live

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aperr"
	"repro/internal/bitvec"
	"repro/internal/knn"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/wal"
)

// deltaScanHist is the wall-clock cost of the exact delta-segment scans a
// mixed search pays on top of the compiled base — the latency churn adds
// between compactions.
var deltaScanHist = obs.NewHistogram("apknn_live_delta_scan_seconds",
	"Exact delta-segment scan latency per mixed live search")

// Searcher is the compiled-base contract the engine needs from a backend
// index: batched search with the shared (Dist, ID) tie-break, the modeled
// wall-clock meter, and the partition count the compaction cost model
// charges reconfigurations for.
type Searcher interface {
	Search(ctx context.Context, queries []bitvec.Vector, k int) ([][]knn.Neighbor, error)
	ModeledTime() time.Duration
	Partitions() int
}

// CompileFunc builds a fresh base index over a dataset — apknn adapts
// Backend.Compile into this, so the compactor recompiles through the same
// path Open uses.
type CompileFunc func(ds *bitvec.Dataset) (Searcher, error)

// Options tunes an Index. The zero value compacts at DefaultCompactThreshold
// with no staleness timer and charges no reconfiguration time.
type Options struct {
	// CompactThreshold triggers a background compaction when the delta
	// segment plus tombstone set reach this many entries (default
	// DefaultCompactThreshold; negative disables the threshold trigger).
	CompactThreshold int
	// CompactInterval is the max-staleness timer: a background compaction
	// folds any pending churn at least this often (0 disables the timer).
	CompactInterval time.Duration
	// ReconfigCost models the time a compaction charges for loading the
	// freshly compiled base onto the device, given its partition count —
	// the symbol-replacement sweep of the paper's model. Nil charges zero.
	ReconfigCost func(partitions int) time.Duration
	// ScanCost models the host time of one delta scan of n entries for q
	// queries of dimensionality dim. Nil uses the calibrated Xeon E5 model,
	// the same cost the CPU backend charges per candidate pair.
	ScanCost func(n, q, dim int) time.Duration
}

// DefaultCompactThreshold is the churn volume (delta entries + tombstones)
// that triggers a background compaction when Options doesn't say otherwise.
const DefaultCompactThreshold = 1024

// baseGen is one compiled generation of the base index: the backend index,
// the dataset it was compiled from, and the internal→global ID map.
type baseGen struct {
	searcher Searcher
	ds       *bitvec.Dataset
	// ids maps the backend's internal IDs (dataset positions) to global
	// IDs. Nil means identity — true for the initial generation and for any
	// compaction that never dropped an ID. The mapping is strictly
	// ascending either way, so a (Dist, internalID)-sorted result list is
	// (Dist, globalID)-sorted after remapping.
	ids []int
}

func (b *baseGen) size() int { return b.ds.Len() }

// globalID translates an internal (dataset-position) ID.
func (b *baseGen) globalID(internal int) int {
	if b.ids == nil {
		return internal
	}
	return b.ids[internal]
}

// contains reports whether a global ID names a base-resident vector.
func (b *baseGen) contains(id int) bool {
	if b.ids == nil {
		return id >= 0 && id < b.ds.Len()
	}
	i := sort.SearchInts(b.ids, id)
	return i < len(b.ids) && b.ids[i] == id
}

// view is one immutable snapshot of the whole mutable index. Readers load
// it from an atomic pointer and never block on writers; writers build a new
// view under the writer lock and publish it atomically (RCU).
type view struct {
	base  *baseGen // nil when every vector has been deleted
	delta deltaView
	// tomb is the tombstone set: global IDs deleted but not yet compacted
	// away. The map is immutable once published — Delete copies it.
	tomb map[int]struct{}
	// baseTombs counts tombstones that target base-resident IDs; base
	// searches over-fetch by exactly this many so filtering never starves
	// the top-k.
	baseTombs int
	// nextID is the next global ID an Insert will assign. IDs are never
	// reused, so a delete followed by any number of compactions can never
	// resurrect an ID.
	nextID int
}

// liveLen returns the number of live (visible, non-tombstoned) vectors.
func (v *view) liveLen() int {
	n := v.delta.Len() - len(v.tomb)
	if v.base != nil {
		n += v.base.size()
	}
	return n
}

// churn returns the pending mutation volume a compaction would fold.
func (v *view) churn() int { return v.delta.Len() + len(v.tomb) }

// Index is the mutable index: a compiled base plus delta segment and
// tombstones, recompacted in the background. Search/Insert/Delete are safe
// for concurrent use; searches never block on mutations or compactions.
type Index struct {
	compile CompileFunc
	opts    Options
	dim     int

	cur atomic.Pointer[view]

	// mu is the writer lock: Insert, Delete and the compaction swap hold
	// it; readers never do.
	mu    sync.Mutex
	store *delta // canonical delta store; mutate under mu

	// wal, when non-nil, is the write-ahead log every mutation is appended
	// to before it is published; the compaction swap rotates it. Both under
	// mu. dur is the rest of the durability state (nil without a directory).
	wal *wal.Log
	dur *durState

	// compactMu serializes compactions (background and explicit).
	compactMu      sync.Mutex
	lastCompactErr error // under compactMu

	inserts       atomic.Int64
	deletes       atomic.Int64
	searches      atomic.Int64
	mixedSearches atomic.Int64
	compactions   atomic.Int64
	generation    atomic.Int64
	deltaScanNS   atomic.Int64
	reconfigNS    atomic.Int64
	retiredNS     atomic.Int64

	notify    chan struct{}
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New compiles ds as generation 0 and starts the background compactor. The
// seed dataset must be non-empty (the backends cannot compile an empty
// automaton); it is referenced, not copied — callers must not mutate it.
func New(ds *bitvec.Dataset, compile CompileFunc, opts Options) (*Index, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("live: %w", aperr.ErrEmptyDataset)
	}
	base, err := compile(ds)
	if err != nil {
		return nil, fmt.Errorf("live: compile base: %w", err)
	}
	x := newIndex(&baseGen{searcher: base, ds: ds}, newDelta(ds.Dim(), ds.Len()),
		map[int]struct{}{}, 0, compile, opts)
	x.start()
	return x, nil
}

// newIndex assembles an Index around an already-built state — the shared
// tail of New and the durable recovery paths. Options defaults are applied
// here; start launches the background loops.
func newIndex(base *baseGen, store *delta, tomb map[int]struct{}, baseTombs int, compile CompileFunc, opts Options) *Index {
	if opts.CompactThreshold == 0 {
		opts.CompactThreshold = DefaultCompactThreshold
	}
	if opts.ScanCost == nil {
		xeon := perfmodel.XeonE5()
		opts.ScanCost = func(n, q, dim int) time.Duration {
			return perfmodel.CPUTime(xeon, n, q, dim)
		}
	}
	x := &Index{
		compile: compile,
		opts:    opts,
		dim:     store.dim,
		store:   store,
		notify:  make(chan struct{}, 1),
		closed:  make(chan struct{}),
	}
	x.cur.Store(&view{
		base:      base,
		delta:     store.snapshot(),
		tomb:      tomb,
		baseTombs: baseTombs,
		nextID:    store.firstID + store.n,
	})
	return x
}

// start launches the background compactor; durable opens attach their WAL
// (and flush loop) before calling it.
func (x *Index) start() {
	x.wg.Add(1)
	go x.compactor()
}

// Dim returns the index dimensionality.
func (x *Index) Dim() int { return x.dim }

// Len returns the number of live vectors currently searchable.
func (x *Index) Len() int { return x.cur.Load().liveLen() }

// NextID returns the global ID the next Insert will assign.
func (x *Index) NextID() int { return x.cur.Load().nextID }

// Insert appends v to the delta segment and returns its global ID. The
// vector is searchable the moment Insert returns; the reconfiguration that
// folds it into the compiled base is deferred to the next compaction. On a
// durable index the record reaches the write-ahead log (synced per policy)
// before the vector becomes visible, so an acknowledged insert survives a
// crash; after Close, durable inserts fail with aperr.ErrClosed.
func (x *Index) Insert(ctx context.Context, v bitvec.Vector) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, aperr.Canceled(err)
	}
	if v.Dim() != x.dim {
		return 0, fmt.Errorf("live: vector dim %d != index dim %d: %w", v.Dim(), x.dim, aperr.ErrDimMismatch)
	}
	x.mu.Lock()
	if x.wal != nil {
		sp := obs.StartSpan(ctx, "wal_append")
		if err := x.wal.Append(wal.InsertRecord(x.store.firstID+x.store.n, v)); err != nil {
			sp.End()
			x.mu.Unlock()
			return 0, fmt.Errorf("live: log insert: %w", err)
		}
		sp.End()
	}
	id := x.store.append(v)
	old := x.cur.Load()
	next := *old
	next.delta = x.store.snapshot()
	next.nextID = id + 1
	x.cur.Store(&next)
	x.mu.Unlock()
	x.inserts.Add(1)
	x.maybeNotify(&next)
	return id, nil
}

// Delete tombstones the vector with the given global ID. It returns
// aperr.ErrNotFound if the ID was never assigned or is already deleted.
// The vector stops appearing in results the moment Delete returns; its
// storage is reclaimed by the next compaction.
func (x *Index) Delete(ctx context.Context, id int) error {
	if err := ctx.Err(); err != nil {
		return aperr.Canceled(err)
	}
	x.mu.Lock()
	old := x.cur.Load()
	if _, dead := old.tomb[id]; dead {
		x.mu.Unlock()
		return fmt.Errorf("live: id %d already deleted: %w", id, aperr.ErrNotFound)
	}
	inBase := old.base != nil && old.base.contains(id)
	if !inBase && !old.delta.contains(id) {
		x.mu.Unlock()
		return fmt.Errorf("live: id %d: %w", id, aperr.ErrNotFound)
	}
	if x.wal != nil {
		sp := obs.StartSpan(ctx, "wal_append")
		if err := x.wal.Append(wal.Record{Type: wal.RecDelete, ID: id}); err != nil {
			sp.End()
			x.mu.Unlock()
			return fmt.Errorf("live: log delete: %w", err)
		}
		sp.End()
	}
	tomb := make(map[int]struct{}, len(old.tomb)+1)
	for t := range old.tomb {
		tomb[t] = struct{}{}
	}
	tomb[id] = struct{}{}
	next := *old
	next.tomb = tomb
	if inBase {
		next.baseTombs++
	}
	x.cur.Store(&next)
	x.mu.Unlock()
	x.deletes.Add(1)
	x.maybeNotify(&next)
	return nil
}

// maybeNotify wakes the background compactor when the pending churn has
// reached the threshold.
func (x *Index) maybeNotify(v *view) {
	if x.opts.CompactThreshold < 0 || v.churn() < x.opts.CompactThreshold {
		return
	}
	select {
	case x.notify <- struct{}{}:
	default:
	}
}

// Search returns the k nearest live neighbors of each query: the base
// index's results (over-fetched past the base tombstones, remapped to
// global IDs, filtered) merged with an exact scan of the delta segment,
// through the same (Dist, ID) tie-break every engine in this repository
// uses. The snapshot is taken once — mutations and compactions that land
// mid-search do not tear the result.
func (x *Index) Search(ctx context.Context, queries []bitvec.Vector, k int) ([][]knn.Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("live: got k=%d: %w", k, aperr.ErrBadK)
	}
	for i, q := range queries {
		if q.Dim() != x.dim {
			return nil, fmt.Errorf("live: query %d dim %d != index dim %d: %w", i, q.Dim(), x.dim, aperr.ErrDimMismatch)
		}
	}
	v := x.cur.Load()
	results := make([][]knn.Neighbor, len(queries))
	if v.base != nil {
		// Over-fetch by the base tombstone count: the top k+baseTombs of
		// the base always contain at least k live vectors (or the whole
		// base, if it is smaller).
		bsp := obs.StartSpan(ctx, "base_search")
		bres, err := v.base.searcher.Search(obs.WithSpan(ctx, bsp), queries, k+v.baseTombs)
		bsp.End()
		if err != nil {
			return nil, err
		}
		for qi, ns := range bres {
			kept := make([]knn.Neighbor, 0, min(k, len(ns)))
			for _, n := range ns {
				gid := v.base.globalID(n.ID)
				if _, dead := v.tomb[gid]; dead {
					continue
				}
				kept = append(kept, knn.Neighbor{ID: gid, Dist: n.Dist})
				if len(kept) == k {
					break
				}
			}
			results[qi] = kept
		}
	}
	if v.delta.Len() > 0 {
		scanStart := time.Now()
		for qi, q := range queries {
			if err := ctx.Err(); err != nil {
				return nil, aperr.Canceled(err)
			}
			results[qi] = knn.MergeTopK(results[qi], v.scanDelta(q, k), k)
		}
		obs.CurrentSpan(ctx).ObserveChild("delta_scan", time.Since(scanStart))
		deltaScanHist.Record(time.Since(scanStart))
		x.deltaScanNS.Add(int64(x.opts.ScanCost(v.delta.Len(), len(queries), x.dim)))
	}
	if v.base == nil {
		// All-deleted base: results are delta-only; normalize nils so every
		// query still gets a (possibly empty) list.
		for qi := range results {
			if results[qi] == nil {
				results[qi] = []knn.Neighbor{}
			}
		}
	}
	x.searches.Add(1)
	if v.churn() > 0 {
		x.mixedSearches.Add(1)
	}
	return results, nil
}

// scanDelta is the exact Hamming scan of one query over the visible,
// non-tombstoned delta entries of a snapshot, through the same blocked
// XOR+POPCNT kernel the CPU backend runs: each delta chunk is one contiguous
// block streamed into a bounded top-k heap (knn.ScanBlock), with the
// tombstone filter applied only when tombstones exist. Deltas past
// parallelDeltaVecs — possible when compaction is disabled or far behind —
// shard their chunks across cores and merge per-core partials, the same
// data-parallel decomposition as the base kernel.
func (v *view) scanDelta(q bitvec.Vector, k int) []knn.Neighbor {
	qw := q.Words()
	var skip func(id int) bool
	if len(v.tomb) > 0 {
		skip = func(id int) bool {
			_, dead := v.tomb[id]
			return dead
		}
	}
	chunks := v.delta.chunkCount()
	if v.delta.Len() < parallelDeltaVecs {
		t := knn.NewTopK(k)
		for c := 0; c < chunks; c++ {
			slab, n := v.delta.chunkWords(c)
			v.scanChunk(t, slab, qw, c, n, skip)
		}
		return t.Neighbors()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > chunks {
		workers = chunks
	}
	partials := make([][]knn.Neighbor, workers)
	per := (chunks + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > chunks {
			hi = chunks
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			t := knn.NewTopK(k)
			for c := lo; c < hi; c++ {
				slab, n := v.delta.chunkWords(c)
				v.scanChunk(t, slab, qw, c, n, skip)
			}
			partials[w] = t.Neighbors()
		}(w, lo, hi)
	}
	wg.Wait()
	var merged []knn.Neighbor
	for _, p := range partials {
		merged = knn.MergeTopK(merged, p, k)
	}
	return merged
}

// parallelDeltaVecs is the delta size past which scanDelta shards chunks
// across cores; below it a single core wins (the steady-state delta stays
// under the compaction threshold, well below this).
const parallelDeltaVecs = 1 << 15

// scanChunk streams delta chunk c into t.
func (v *view) scanChunk(t *knn.TopK, slab []uint64, qw []uint64, c, n int, skip func(id int) bool) {
	base := v.delta.FirstID() + c*deltaChunkVecs
	if skip == nil {
		knn.ScanBlock(t, slab, v.delta.wordsPV, qw, base, n)
	} else {
		knn.ScanBlockFiltered(t, slab, v.delta.wordsPV, qw, base, n, skip)
	}
}

// Compact synchronously folds the current delta segment and tombstone set
// into a freshly compiled base and swaps it in. Searches keep running
// against the old view during the compile and see the new one atomically.
// Mutations that land while the compile is running survive into the new
// view's delta/tombstones. A no-churn Compact is a no-op.
func (x *Index) Compact(ctx context.Context) error {
	x.compactMu.Lock()
	defer x.compactMu.Unlock()
	if err := ctx.Err(); err != nil {
		return aperr.Canceled(err)
	}
	snap := x.cur.Load()
	if snap.churn() == 0 {
		return nil
	}
	// Build the survivor dataset in ascending global-ID order — base IDs
	// all precede delta IDs — so the compiled index's internal order, and
	// therefore its (Dist, internalID) tie-breaks, match the global order.
	survivors := bitvec.NewDataset(x.dim)
	ids := make([]int, 0, snap.liveLen())
	if snap.base != nil {
		for i := 0; i < snap.base.size(); i++ {
			gid := snap.base.globalID(i)
			if _, dead := snap.tomb[gid]; dead {
				continue
			}
			survivors.Append(snap.base.ds.At(i))
			ids = append(ids, gid)
		}
	}
	for i := 0; i < snap.delta.Len(); i++ {
		gid := snap.delta.FirstID() + i
		if _, dead := snap.tomb[gid]; dead {
			continue
		}
		survivors.Append(snap.delta.vector(i))
		ids = append(ids, gid)
	}
	if identity(ids) {
		ids = nil
	}
	var newBase *baseGen
	var reconfig time.Duration
	if survivors.Len() > 0 {
		searcher, err := x.compile(survivors)
		if err != nil {
			err = fmt.Errorf("live: compact compile: %w", err)
			x.lastCompactErr = err
			return err
		}
		newBase = &baseGen{searcher: searcher, ds: survivors, ids: ids}
		if x.opts.ReconfigCost != nil {
			reconfig = x.opts.ReconfigCost(searcher.Partitions())
		}
	}
	// Durable half one: persist the survivor set as the next generation's
	// snapshot before the swap. A crash from here until the log rotation
	// below leaves this snapshot an orphan the recovery rule ignores — the
	// previous pair still holds every acknowledged record.
	newGen := x.generation.Load() + 1
	if x.dur != nil {
		m := &bitvec.Manifest{Generation: newGen, NextID: snap.nextID, IDs: ids}
		if err := bitvec.SaveSnapshotFile(filepath.Join(x.dur.dir, snapName(newGen)), survivors, m); err != nil {
			err = fmt.Errorf("live: compact snapshot: %w", err)
			x.lastCompactErr = err
			return err
		}
		if err := wal.SyncDir(x.dur.dir); err != nil {
			err = fmt.Errorf("live: compact snapshot sync: %w", err)
			x.lastCompactErr = err
			return err
		}
	}
	// Swap: everything that mutated while the compile ran — inserts past
	// the snapshot's delta length, tombstones not in the snapshot's set —
	// carries over into the new view.
	x.mu.Lock()
	cur := x.cur.Load()
	fresh := newDelta(x.dim, snap.nextID)
	for i := snap.delta.Len(); i < cur.delta.Len(); i++ {
		fresh.append(cur.delta.vector(i))
	}
	tomb := map[int]struct{}{}
	baseTombs := 0
	for t := range cur.tomb {
		if _, folded := snap.tomb[t]; folded {
			continue
		}
		tomb[t] = struct{}{}
		if newBase != nil && newBase.contains(t) {
			baseTombs++
		}
	}
	// Durable half two: rotate the log under the writer lock, so the carried
	// churn written into the new log is exactly the churn the new view holds
	// and no mutation can slip between them.
	var oldLog *wal.Log
	if x.dur != nil {
		select {
		case <-x.closed:
			x.mu.Unlock()
			err := fmt.Errorf("live: compact: %w", aperr.ErrClosed)
			x.lastCompactErr = err
			return err
		default:
		}
		var err error
		if _, oldLog, err = x.rotateDurable(newGen, snap, cur, tomb); err != nil {
			x.mu.Unlock()
			err = fmt.Errorf("live: compact rotate: %w", err)
			x.lastCompactErr = err
			return err
		}
	}
	next := &view{
		base:      newBase,
		delta:     fresh.snapshot(),
		tomb:      tomb,
		baseTombs: baseTombs,
		nextID:    cur.nextID,
	}
	x.store = fresh
	x.cur.Store(next)
	x.mu.Unlock()
	if x.dur != nil {
		x.finishDurable(newGen, oldLog)
	}
	// Retire the old generation's modeled meter into the accumulator; the
	// brief tail a search still in flight on the old view accrues after
	// this sample is accepted accounting slack.
	if snap.base != nil {
		x.retiredNS.Add(int64(snap.base.searcher.ModeledTime()))
	}
	x.reconfigNS.Add(int64(reconfig))
	x.compactions.Add(1)
	x.generation.Add(1)
	x.lastCompactErr = nil
	return nil
}

// identity reports whether ids is exactly [0, len).
func identity(ids []int) bool {
	for i, id := range ids {
		if id != i {
			return false
		}
	}
	return true
}

// compactor is the background loop: it folds churn when the threshold
// notification fires or the max-staleness ticker does.
func (x *Index) compactor() {
	defer x.wg.Done()
	var tick <-chan time.Time
	if x.opts.CompactInterval > 0 {
		t := time.NewTicker(x.opts.CompactInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-x.closed:
			return
		case <-x.notify:
		case <-tick:
		}
		// Compile errors are kept for Stats/Compact callers; the loop keeps
		// serving the old generation either way.
		_ = x.Compact(context.Background())
	}
}

// Close stops the background loops (compactor and, when durable, the flush
// timer) and releases the WAL handle, syncing it first. Closing twice — or
// concurrently — is safe and returns nil after the first call. A non-durable
// index remains searchable and mutable afterwards; a durable index remains
// searchable but rejects further mutations with aperr.ErrClosed, because an
// unlogged mutation could not survive a crash.
func (x *Index) Close() error {
	var err error
	x.closeOnce.Do(func() {
		close(x.closed)
		x.wg.Wait()
		x.mu.Lock()
		if x.wal != nil {
			err = x.wal.Close()
		}
		x.mu.Unlock()
	})
	return err
}

// Dataset returns a point-in-time copy of the merged live view — base
// survivors then delta entries, ascending global-ID order, tombstones
// dropped — densely renumbered from zero. This is the exact vector set a
// search sees, so saving it and recompiling yields identical distances; the
// global IDs themselves are the durability directory's job to persist.
func (x *Index) Dataset() *bitvec.Dataset {
	v := x.cur.Load()
	out := bitvec.NewDataset(x.dim)
	if v.base != nil {
		for i := 0; i < v.base.size(); i++ {
			if _, dead := v.tomb[v.base.globalID(i)]; dead {
				continue
			}
			out.Append(v.base.ds.At(i))
		}
	}
	for i := 0; i < v.delta.Len(); i++ {
		if _, dead := v.tomb[v.delta.FirstID()+i]; dead {
			continue
		}
		out.Append(v.delta.vector(i))
	}
	return out
}

// CompactErr returns the most recent background compaction failure, nil
// after a success.
func (x *Index) CompactErr() error {
	x.compactMu.Lock()
	defer x.compactMu.Unlock()
	return x.lastCompactErr
}

// Base returns the current generation's compiled backend index, or nil when
// every base vector is deleted — apknn merges its counters into Stats.
func (x *Index) Base() Searcher {
	if b := x.cur.Load().base; b != nil {
		return b.searcher
	}
	return nil
}

// ModeledTime returns the accumulated modeled wall-clock of the live index:
// the current base's meter, every retired generation's meter at the moment
// it was swapped out, the CPU cost of the delta scans, and the
// reconfiguration sweeps the compactions charged.
func (x *Index) ModeledTime() time.Duration {
	t := time.Duration(x.retiredNS.Load() + x.deltaScanNS.Load() + x.reconfigNS.Load())
	if b := x.Base(); b != nil {
		t += b.ModeledTime()
	}
	return t
}

// Snapshot is the point-in-time counter block behind apknn's LiveStats.
type Snapshot struct {
	Inserts       int64
	Deletes       int64
	Searches      int64
	MixedSearches int64
	Compactions   int64
	Generation    int64
	BaseSize      int
	DeltaSize     int
	Tombstones    int
	NextID        int
	ReconfigTime  time.Duration
	DeltaScanTime time.Duration
}

// Stats snapshots the live-layer counters.
func (x *Index) Stats() Snapshot {
	v := x.cur.Load()
	s := Snapshot{
		Inserts:       x.inserts.Load(),
		Deletes:       x.deletes.Load(),
		Searches:      x.searches.Load(),
		MixedSearches: x.mixedSearches.Load(),
		Compactions:   x.compactions.Load(),
		Generation:    x.generation.Load(),
		DeltaSize:     v.delta.Len(),
		Tombstones:    len(v.tomb),
		NextID:        v.nextID,
		ReconfigTime:  time.Duration(x.reconfigNS.Load()),
		DeltaScanTime: time.Duration(x.deltaScanNS.Load()),
	}
	if v.base != nil {
		s.BaseSize = v.base.size()
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
