// Package wal implements the write-ahead log behind the live index's
// durability: an append-only file of length-prefixed, CRC32C-checksummed
// mutation records that, replayed over the newest snapshot, reconstructs the
// exact live view — identical global IDs, identical search results.
//
// The design follows the same amortization argument as the rest of the
// stack: the paper's cost model makes recovery-by-recompile expensive (every
// reconfiguration sweep is the dominant per-batch cost, §III-C), so durable
// state is snapshot + log-replay rather than replaying every mutation
// through compaction. Each compaction writes a fresh snapshot and rotates
// the log, so the replay tail stays bounded by the compaction threshold.
//
// File layout (all little-endian):
//
//	offset  size  field
//	0       4     magic "APWL"
//	4       4     format version (currently 1)
//	8       4     dim — bits per vector of insert payloads
//	12      4     reserved (zero)
//	16      ...   records
//
// Record framing:
//
//	offset  size  field
//	0       4     payload length
//	4       4     CRC32 (Castagnoli) of the payload
//	8       len   payload
//
// Payloads begin with a one-byte record type:
//
//	insert  (1): uint64 global ID, then WordsFor(dim) packed uint64 words
//	delete  (2): uint64 global ID
//	barrier (3): uint64 generation, uint64 NextID — the compaction cut:
//	             every record before the barrier is folded into the
//	             snapshot of that generation
//
// A torn final record — the header or payload cut short by a crash, or a
// checksum that does not match because the write never completed — is not
// corruption: Open stops replay at the last valid record and truncates the
// tail so new appends extend a clean prefix.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aperr"
	"repro/internal/bitvec"
	"repro/internal/obs"
)

// The durability tier's latency histograms: how long acknowledged mutations
// wait on the log. Fsync dominates under SyncAlways — these two series are
// what separates "the disk is slow" from "the scan is slow" when a live
// index's insert latency moves.
var (
	appendHist = obs.NewHistogram("apknn_wal_append_seconds",
		"WAL record append latency including any policy-driven fsync")
	fsyncHist = obs.NewHistogram("apknn_wal_fsync_seconds",
		"WAL fsync latency per sync call")
)

// Magic is the four-byte file signature of the write-ahead log format.
const Magic = "APWL"

// version is the current format version written by Create.
const version = 1

// headerLen is the fixed byte length of the log file header.
const headerLen = 4 + 4 + 4 + 4

// recHeaderLen is the per-record framing: payload length + CRC32C.
const recHeaderLen = 4 + 4

// castagnoli is the CRC32C table shared by append and replay.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RecordType tags a WAL record payload.
type RecordType uint8

const (
	// RecInsert is an insert with its assigned global ID and packed vector.
	RecInsert RecordType = 1
	// RecDelete is a tombstone for a global ID.
	RecDelete RecordType = 2
	// RecBarrier marks a compaction cut: the snapshot of the recorded
	// generation folds every record before the barrier.
	RecBarrier RecordType = 3
)

// Record is one decoded WAL entry. Only the fields of its type are set.
type Record struct {
	Type RecordType
	// ID is the global ID an insert assigned or a delete targets.
	ID int
	// Words is the packed vector payload of an insert; it aliases the replay
	// buffer during Open's apply callback and must be copied to retain.
	Words []uint64
	// Gen and NextID are the barrier's generation and ID watermark.
	Gen    int64
	NextID int
}

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged mutation
	// survives power loss. The default, and the slowest.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a timer the owner drives (Log.Sync); a crash
	// loses at most one interval of acknowledged mutations.
	SyncInterval
	// SyncNever leaves flushing to the OS: process crashes lose nothing
	// (writes are in the page cache), power loss may lose the tail.
	SyncNever
)

// String names the policy the way the -fsync flag spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParsePolicy parses the -fsync flag values.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// Options tunes a Log.
type Options struct {
	// Policy selects when appends are fsynced (default SyncAlways).
	Policy SyncPolicy
}

// Stats is the point-in-time counter block of one Log.
type Stats struct {
	// Appends is the number of records appended since Open/Create.
	Appends int64
	// Bytes is the total record bytes appended since Open/Create.
	Bytes int64
	// Fsyncs is the number of fsync calls issued.
	Fsyncs int64
	// Size is the current file size including the header and any replayed
	// prefix.
	Size int64
}

// Replay reports what Open reconstructed from an existing log.
type Replay struct {
	// Records successfully decoded and applied.
	Records int
	// Bytes of valid record data replayed (header excluded).
	Bytes int64
	// Torn reports that the file ended in a partial or corrupt record that
	// was truncated away — the expected shape of a crash mid-append.
	Torn bool
}

// Log is an open write-ahead log positioned for appending. Append and Sync
// are safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	f       *os.File
	buf     []byte // reusable append encode buffer
	dim     int
	wordsPV int
	policy  SyncPolicy
	closed  bool

	appends atomic.Int64
	bytes   atomic.Int64
	fsyncs  atomic.Int64
	size    atomic.Int64
}

// Create writes a fresh, empty log at path — header only, synced — and
// returns it open for appending. An existing file at path is truncated.
func Create(path string, dim int, opts Options) (*Log, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("wal: non-positive dim %d: %w", dim, aperr.ErrBadFormat)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", path, err)
	}
	var hdr [headerLen]byte
	copy(hdr[0:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(dim))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: write header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: sync header: %w", err)
	}
	l := newLog(f, dim, opts)
	l.size.Store(headerLen)
	l.fsyncs.Add(1)
	return l, nil
}

// Open replays an existing log at path: the header is validated against dim,
// every intact record is decoded and handed to apply in order, a torn tail
// is truncated away, and the returned Log is positioned to append after the
// last valid record. A nil apply skips decoding side effects but still
// validates framing.
func Open(path string, dim int, opts Options, apply func(Record) error) (*Log, Replay, error) {
	if dim <= 0 {
		return nil, Replay{}, fmt.Errorf("wal: non-positive dim %d: %w", dim, aperr.ErrBadFormat)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, Replay{}, err
	}
	info, err := replayFile(f, dim, apply)
	if err != nil {
		f.Close()
		return nil, Replay{}, err
	}
	l := newLog(f, dim, opts)
	l.size.Store(headerLen + info.Bytes)
	return l, info, nil
}

func newLog(f *os.File, dim int, opts Options) *Log {
	return &Log{
		f:       f,
		dim:     dim,
		wordsPV: bitvec.WordsFor(dim),
		policy:  opts.Policy,
	}
}

// replayFile validates the header, streams records through apply, truncates
// any torn tail, and leaves the file offset at the end of the valid prefix.
func replayFile(f *os.File, dim int, apply func(Record) error) (Replay, error) {
	var info Replay
	var hdr [headerLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return info, fmt.Errorf("wal: log header: %w", aperr.ErrTruncated)
		}
		return info, fmt.Errorf("wal: read log header: %w", err)
	}
	if string(hdr[0:4]) != Magic {
		return info, fmt.Errorf("wal: bad magic %q (want %q): %w", hdr[0:4], Magic, aperr.ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != version {
		return info, fmt.Errorf("wal: unsupported log version %d (want %d): %w", v, version, aperr.ErrBadFormat)
	}
	if d := binary.LittleEndian.Uint32(hdr[8:12]); int(d) != dim {
		return info, fmt.Errorf("wal: log dim %d, index dim %d: %w", d, dim, aperr.ErrDimMismatch)
	}
	wordsPV := bitvec.WordsFor(dim)
	maxPayload := 1 + 8 + 8 + 8*wordsPV // barrier and insert are the widest
	var rh [recHeaderLen]byte
	payload := make([]byte, maxPayload)
	valid := int64(headerLen)
	for {
		if _, err := io.ReadFull(f, rh[:]); err != nil {
			if errors.Is(err, io.EOF) {
				break // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				info.Torn = true
				break
			}
			return info, fmt.Errorf("wal: read record header: %w", err)
		}
		n := binary.LittleEndian.Uint32(rh[0:4])
		want := binary.LittleEndian.Uint32(rh[4:8])
		if n == 0 || int(n) > maxPayload {
			// An impossible length is indistinguishable from a torn header
			// half-written over garbage; stop here and truncate.
			info.Torn = true
			break
		}
		if _, err := io.ReadFull(f, payload[:n]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				info.Torn = true
				break
			}
			return info, fmt.Errorf("wal: read record payload: %w", err)
		}
		if crc32.Checksum(payload[:n], castagnoli) != want {
			info.Torn = true
			break
		}
		rec, err := decode(payload[:n], wordsPV)
		if err != nil {
			info.Torn = true
			break
		}
		if apply != nil {
			if err := apply(rec); err != nil {
				return info, fmt.Errorf("wal: replay record %d: %w", info.Records, err)
			}
		}
		info.Records++
		info.Bytes += recHeaderLen + int64(n)
		valid += recHeaderLen + int64(n)
	}
	if info.Torn {
		if err := f.Truncate(valid); err != nil {
			return info, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		return info, fmt.Errorf("wal: seek: %w", err)
	}
	return info, nil
}

// decode parses one payload. Lengths are validated exactly against the
// record type so a bit-flipped type byte cannot smuggle a short vector in.
func decode(p []byte, wordsPV int) (Record, error) {
	switch RecordType(p[0]) {
	case RecInsert:
		if len(p) != 1+8+8*wordsPV {
			return Record{}, fmt.Errorf("wal: insert payload %d bytes, want %d: %w", len(p), 1+8+8*wordsPV, aperr.ErrBadFormat)
		}
		words := make([]uint64, wordsPV)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(p[9+8*i:])
		}
		return Record{Type: RecInsert, ID: int(binary.LittleEndian.Uint64(p[1:9])), Words: words}, nil
	case RecDelete:
		if len(p) != 1+8 {
			return Record{}, fmt.Errorf("wal: delete payload %d bytes, want 9: %w", len(p), aperr.ErrBadFormat)
		}
		return Record{Type: RecDelete, ID: int(binary.LittleEndian.Uint64(p[1:9]))}, nil
	case RecBarrier:
		if len(p) != 1+8+8 {
			return Record{}, fmt.Errorf("wal: barrier payload %d bytes, want 17: %w", len(p), aperr.ErrBadFormat)
		}
		return Record{
			Type:   RecBarrier,
			Gen:    int64(binary.LittleEndian.Uint64(p[1:9])),
			NextID: int(binary.LittleEndian.Uint64(p[9:17])),
		}, nil
	default:
		return Record{}, fmt.Errorf("wal: unknown record type %d: %w", p[0], aperr.ErrBadFormat)
	}
}

// Append encodes rec, writes it in a single write call, and fsyncs when the
// policy is SyncAlways. The record is durable (per policy) when Append
// returns; callers publish the mutation to readers only after that.
func (l *Log) Append(rec Record) error {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: append: %w", aperr.ErrClosed)
	}
	payload, err := l.encode(rec)
	if err != nil {
		return err
	}
	n := len(payload) - recHeaderLen
	binary.LittleEndian.PutUint32(payload[0:4], uint32(n))
	binary.LittleEndian.PutUint32(payload[4:8], crc32.Checksum(payload[recHeaderLen:], castagnoli))
	if _, err := l.f.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.appends.Add(1)
	l.bytes.Add(int64(len(payload)))
	l.size.Add(int64(len(payload)))
	if l.policy == SyncAlways {
		syncStart := time.Now()
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		fsyncHist.Record(time.Since(syncStart))
		l.fsyncs.Add(1)
	}
	appendHist.Record(time.Since(start))
	return nil
}

// encode builds the framed record into the reusable buffer, leaving the
// length and CRC fields for Append to fill.
func (l *Log) encode(rec Record) ([]byte, error) {
	need := recHeaderLen + 1 + 8 + 8 + 8*l.wordsPV
	if cap(l.buf) < need {
		l.buf = make([]byte, need)
	}
	b := l.buf[:recHeaderLen]
	switch rec.Type {
	case RecInsert:
		if len(rec.Words) != l.wordsPV {
			return nil, fmt.Errorf("wal: insert vector has %d words, want %d: %w", len(rec.Words), l.wordsPV, aperr.ErrDimMismatch)
		}
		b = append(b, byte(RecInsert))
		b = binary.LittleEndian.AppendUint64(b, uint64(rec.ID))
		for _, w := range rec.Words {
			b = binary.LittleEndian.AppendUint64(b, w)
		}
	case RecDelete:
		b = append(b, byte(RecDelete))
		b = binary.LittleEndian.AppendUint64(b, uint64(rec.ID))
	case RecBarrier:
		b = append(b, byte(RecBarrier))
		b = binary.LittleEndian.AppendUint64(b, uint64(rec.Gen))
		b = binary.LittleEndian.AppendUint64(b, uint64(rec.NextID))
	default:
		return nil, fmt.Errorf("wal: unknown record type %d: %w", rec.Type, aperr.ErrBadFormat)
	}
	return b, nil
}

// Sync flushes appended records to stable storage — the interval policy's
// timer calls this; explicit checkpoints may too.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: sync: %w", aperr.ErrClosed)
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	fsyncHist.Record(time.Since(start))
	l.fsyncs.Add(1)
	return nil
}

// Close syncs and closes the log. Closing twice is a no-op.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	syncErr := l.f.Sync()
	if syncErr == nil {
		l.fsyncs.Add(1)
	}
	closeErr := l.f.Close()
	if syncErr != nil {
		return fmt.Errorf("wal: close sync: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("wal: close: %w", closeErr)
	}
	return nil
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends: l.appends.Load(),
		Bytes:   l.bytes.Load(),
		Fsyncs:  l.fsyncs.Load(),
		Size:    l.size.Load(),
	}
}

// InsertRecord builds an insert record from a vector. The words are
// referenced, not copied — the caller's vector must stay immutable until
// Append returns (live's writer lock guarantees it).
func InsertRecord(id int, v bitvec.Vector) Record {
	return Record{Type: RecInsert, ID: id, Words: v.Words()}
}

// SyncDir fsyncs a directory so renames and creates inside it are durable —
// the metadata half of every snapshot/rotation step.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
