package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/aperr"
	"repro/internal/bitvec"
	"repro/internal/stats"
)

// script builds a deterministic mixed record stream: a barrier, then
// alternating inserts and deletes.
func script(t *testing.T, dim, n int) []Record {
	t.Helper()
	rng := stats.NewRNG(uint64(dim))
	recs := []Record{{Type: RecBarrier, Gen: 3, NextID: 100}}
	for i := 0; i < n; i++ {
		if i%3 == 2 {
			recs = append(recs, Record{Type: RecDelete, ID: 100 + i/2})
		} else {
			v := bitvec.Random(rng, dim)
			recs = append(recs, Record{Type: RecInsert, ID: 100 + i, Words: v.Words()})
		}
	}
	return recs
}

func writeLog(t *testing.T, path string, dim int, recs []Record) {
	t.Helper()
	l, err := Create(path, dim, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func collect(got *[]Record) func(Record) error {
	return func(r Record) error {
		if r.Words != nil {
			// Words alias the replay buffer; copy to retain.
			w := make([]uint64, len(r.Words))
			copy(w, r.Words)
			r.Words = w
		}
		*got = append(*got, r)
		return nil
	}
}

func recordsEqual(a, b Record) bool {
	if a.Type != b.Type || a.ID != b.ID || a.Gen != b.Gen || a.NextID != b.NextID {
		return false
	}
	if len(a.Words) != len(b.Words) {
		return false
	}
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			return false
		}
	}
	return true
}

// TestWALRoundTrip writes a mixed record stream and replays it back
// byte-identically across dimensionalities, including non-word-multiple dims.
func TestWALRoundTrip(t *testing.T) {
	for _, dim := range []int{16, 64, 70, 128} {
		t.Run(fmt.Sprintf("dim%d", dim), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			recs := script(t, dim, 50)
			writeLog(t, path, dim, recs)

			var got []Record
			l, info, err := Open(path, dim, Options{}, collect(&got))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			if info.Torn {
				t.Fatal("clean log reported torn")
			}
			if info.Records != len(recs) {
				t.Fatalf("replayed %d records, want %d", info.Records, len(recs))
			}
			for i := range recs {
				if !recordsEqual(got[i], recs[i]) {
					t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
				}
			}
			// The reopened log keeps appending where the old one stopped.
			extra := Record{Type: RecDelete, ID: 999}
			if err := l.Append(extra); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			got = got[:0]
			l2, info2, err := Open(path, dim, Options{}, collect(&got))
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if info2.Records != len(recs)+1 || !recordsEqual(got[len(got)-1], extra) {
				t.Fatalf("append after reopen lost: %d records, tail %+v", info2.Records, got[len(got)-1])
			}
		})
	}
}

// TestWALTornTailSweep truncates a valid log at every byte offset inside its
// record region and asserts replay recovers exactly the longest prefix of
// whole records — never an error, never a panic, never a partial record.
func TestWALTornTailSweep(t *testing.T) {
	const dim = 24
	dir := t.TempDir()
	full := filepath.Join(dir, "full.log")
	recs := script(t, dim, 12)
	writeLog(t, full, dim, recs)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruct each record's end offset by replaying with a byte counter.
	ends := []int64{headerLen}
	wordsPV := bitvec.WordsFor(dim)
	payloadLen := func(r Record) int64 {
		switch r.Type {
		case RecInsert:
			return 1 + 8 + int64(8*wordsPV)
		case RecDelete:
			return 1 + 8
		default:
			return 1 + 8 + 8
		}
	}
	for _, r := range recs {
		ends = append(ends, ends[len(ends)-1]+recHeaderLen+payloadLen(r))
	}
	if ends[len(ends)-1] != int64(len(data)) {
		t.Fatalf("offset math: computed %d, file %d", ends[len(ends)-1], len(data))
	}

	for cut := int64(headerLen); cut <= int64(len(data)); cut++ {
		path := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []Record
		l, info, err := Open(path, dim, Options{}, collect(&got))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Expected: the largest i with ends[i] <= cut.
		want := 0
		for i, e := range ends {
			if e <= cut {
				want = i
			}
		}
		if info.Records != want {
			l.Close()
			t.Fatalf("cut %d: replayed %d records, want %d", cut, info.Records, want)
		}
		wholeRecord := ends[want] == cut
		if info.Torn == wholeRecord && cut != ends[len(ends)-1] {
			l.Close()
			t.Fatalf("cut %d: torn=%v, whole-record boundary=%v", cut, info.Torn, wholeRecord)
		}
		// The torn tail was truncated: appends after reopen must survive a
		// second replay.
		if err := l.Append(Record{Type: RecDelete, ID: 7}); err != nil {
			t.Fatalf("cut %d: append: %v", cut, err)
		}
		l.Close()
		var got2 []Record
		l2, info2, err := Open(path, dim, Options{}, collect(&got2))
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if info2.Torn || info2.Records != want+1 {
			l2.Close()
			t.Fatalf("cut %d: after truncate+append: torn=%v records=%d want=%d",
				cut, info2.Torn, info2.Records, want+1)
		}
		l2.Close()
	}
}

// TestWALCorruptRecord flips payload bytes mid-log: the CRC must stop the
// replay at the last intact record, treating the rest as a torn tail.
func TestWALCorruptRecord(t *testing.T) {
	const dim = 32
	path := filepath.Join(t.TempDir(), "wal.log")
	recs := script(t, dim, 10)
	writeLog(t, path, dim, recs)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte inside the 4th record's payload.
	off := headerLen
	for i := 0; i < 3; i++ {
		off += recHeaderLen + payloadSize(recs[i], dim)
	}
	data[off+recHeaderLen+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var got []Record
	l, info, err := Open(path, dim, Options{}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if !info.Torn || info.Records != 3 {
		t.Fatalf("corrupt record: torn=%v records=%d, want torn at 3", info.Torn, info.Records)
	}
}

func payloadSize(r Record, dim int) int {
	switch r.Type {
	case RecInsert:
		return 1 + 8 + 8*bitvec.WordsFor(dim)
	case RecDelete:
		return 1 + 8
	default:
		return 1 + 8 + 8
	}
}

// TestWALHeaderErrors pins the typed sentinels of the header boundary:
// truncated header, wrong magic, wrong version, and a dim that does not
// match the opening index.
func TestWALHeaderErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	valid := filepath.Join(dir, "valid.log")
	writeLog(t, valid, 16, script(t, 16, 3))
	validData, err := os.ReadFile(valid)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		path string
		dim  int
		want error
	}{
		{"truncated header", write("trunc.log", validData[:7]), 16, aperr.ErrTruncated},
		{"empty file", write("empty.log", nil), 16, aperr.ErrTruncated},
		{"bad magic", write("magic.log", append([]byte("NOPE"), validData[4:]...)), 16, aperr.ErrBadFormat},
		{"bad version", write("ver.log", append(append([]byte{}, validData[:4]...), append([]byte{9, 0, 0, 0}, validData[8:]...)...)), 16, aperr.ErrBadFormat},
		{"dim mismatch", valid, 64, aperr.ErrDimMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l, _, err := Open(tc.path, tc.dim, Options{}, nil)
			if l != nil {
				l.Close()
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestWALSyncPolicies checks the fsync accounting each policy produces.
func TestWALSyncPolicies(t *testing.T) {
	dir := t.TempDir()
	rec := Record{Type: RecDelete, ID: 1}
	const appends = 5

	always, err := Create(filepath.Join(dir, "a.log"), 8, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < appends; i++ {
		if err := always.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Create's header sync + one per append.
	if got := always.Stats().Fsyncs; got != 1+appends {
		t.Fatalf("always: %d fsyncs, want %d", got, 1+appends)
	}
	always.Close()

	never, err := Create(filepath.Join(dir, "n.log"), 8, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < appends; i++ {
		if err := never.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := never.Stats().Fsyncs; got != 1 {
		t.Fatalf("never: %d fsyncs after appends, want 1 (header)", got)
	}
	if err := never.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := never.Stats().Fsyncs; got != 2 {
		t.Fatalf("never: %d fsyncs after explicit Sync, want 2", got)
	}
	st := never.Stats()
	if st.Appends != appends || st.Bytes <= 0 || st.Size != headerLen+st.Bytes {
		t.Fatalf("stats off: %+v", st)
	}
	never.Close()
}

// TestWALCloseIdempotent double-closes and asserts post-close appends fail
// with the typed sentinel instead of writing to a dead fd.
func TestWALCloseIdempotent(t *testing.T) {
	l, err := Create(filepath.Join(t.TempDir(), "wal.log"), 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := l.Append(Record{Type: RecDelete, ID: 0}); !errors.Is(err, aperr.ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, aperr.ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
}

// TestWALConcurrentAppend hammers Append and Sync from parallel goroutines
// (the -race workout), then replays and asserts every record arrived intact.
func TestWALConcurrentAppend(t *testing.T) {
	const dim, writers, each = 48, 8, 50
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, dim, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(w))
			for i := 0; i < each; i++ {
				v := bitvec.Random(rng, dim)
				if err := l.Append(InsertRecord(w*each+i, v)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if i%10 == 0 {
					if err := l.Sync(); err != nil {
						t.Errorf("sync: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	l2, info, err := Open(path, dim, Options{}, func(r Record) error {
		if r.Type != RecInsert {
			return fmt.Errorf("unexpected type %d", r.Type)
		}
		if seen[r.ID] {
			return fmt.Errorf("duplicate id %d", r.ID)
		}
		seen[r.ID] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.Torn || info.Records != writers*each || len(seen) != writers*each {
		t.Fatalf("replay: torn=%v records=%d unique=%d, want %d", info.Torn, info.Records, len(seen), writers*each)
	}
}
