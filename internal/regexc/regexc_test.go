package regexc

import (
	"regexp"
	"testing"
	"testing/quick"

	"repro/internal/automata"
	"repro/internal/stats"
)

func mustClass(t *testing.T, expr string) automata.SymbolClass {
	t.Helper()
	c, err := ParseClass(expr)
	if err != nil {
		t.Fatalf("ParseClass(%q): %v", expr, err)
	}
	return c
}

func TestParseClassBasics(t *testing.T) {
	cases := []struct {
		expr  string
		count int
		has   []byte
		lacks []byte
	}{
		{"a", 1, []byte{'a'}, []byte{'b'}},
		{"*", 256, []byte{0, 255}, nil},
		{".", 255, []byte{'a'}, []byte{'\n'}},
		{`\x41`, 1, []byte{'A'}, []byte{'B'}},
		{`\n`, 1, []byte{'\n'}, []byte{'n'}},
		{`\d`, 10, []byte{'0', '9'}, []byte{'a'}},
		{`\w`, 63, []byte{'a', 'Z', '0', '_'}, []byte{'-'}},
		{`\s`, 6, []byte{' ', '\t'}, []byte{'a'}},
		{`[abc]`, 3, []byte{'a', 'c'}, []byte{'d'}},
		{`[a-f]`, 6, []byte{'a', 'f'}, []byte{'g'}},
		{`[^a]`, 255, []byte{'b', 0}, []byte{'a'}},
		{`[a-c x-z]`, 7, []byte{'b', ' ', 'y'}, []byte{'d'}},
		{`[\x00-\x01]`, 2, []byte{0, 1}, []byte{2}},
		{`[-a]`, 2, []byte{'-', 'a'}, []byte{'b'}},
		{`\*`, 1, []byte{'*'}, []byte{'a'}},
	}
	for _, c := range cases {
		cls := mustClass(t, c.expr)
		if got := cls.Count(); got != c.count {
			t.Errorf("%q: Count = %d, want %d", c.expr, got, c.count)
		}
		for _, b := range c.has {
			if !cls.Match(b) {
				t.Errorf("%q: missing %q", c.expr, b)
			}
		}
		for _, b := range c.lacks {
			if cls.Match(b) {
				t.Errorf("%q: unexpectedly contains %q", c.expr, b)
			}
		}
	}
}

func TestParseClassErrors(t *testing.T) {
	for _, expr := range []string{"", "[abc", `\x4`, `\xg0`, "[z-a]", "ab", `\`} {
		if _, err := ParseClass(expr); err == nil {
			t.Errorf("ParseClass(%q) succeeded, want error", expr)
		}
	}
}

// Property: FormatClass output round-trips through ParseClass.
func TestFormatClassRoundTrip(t *testing.T) {
	f := func(c automata.SymbolClass) bool {
		back, err := ParseClass(FormatClass(c))
		return err == nil && back.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Edge cases quick may not hit.
	for _, c := range []automata.SymbolClass{
		automata.AllClass(), automata.EmptyClass(), automata.SingleClass(0),
		automata.SingleClass(255), automata.RangeClass(10, 200),
	} {
		back, err := ParseClass(FormatClass(c))
		if err != nil || !back.Equal(c) {
			t.Errorf("round trip failed for %v (encoded %q): %v", c, FormatClass(c), err)
		}
	}
}

// runPattern compiles pattern into a fresh network and returns the set of
// cycles at which a report fired for the given input.
func runPattern(t *testing.T, pattern string, input []byte, anchored bool) map[int]bool {
	t.Helper()
	net := automata.NewNetwork()
	if _, err := Compile(net, pattern, Options{Anchored: anchored, ReportID: 1}); err != nil {
		t.Fatalf("Compile(%q): %v", pattern, err)
	}
	sim := automata.MustSimulator(net)
	cycles := map[int]bool{}
	for _, r := range sim.Run(input) {
		cycles[r.Cycle] = true
	}
	return cycles
}

// refEndPositions returns, per byte offset, whether some match of the Go
// regexp equivalent ends at that offset (inclusive).
func refEndPositions(t *testing.T, pattern string, input []byte, anchored bool) map[int]bool {
	t.Helper()
	p := pattern
	if anchored {
		p = "^(?:" + p + ")$"
	} else {
		p = "(?:" + p + ")$"
	}
	re := regexp.MustCompile(p)
	out := map[int]bool{}
	for end := 0; end < len(input); end++ {
		if re.Match(input[:end+1]) {
			out[end] = true
		}
	}
	return out
}

func checkAgainstRegexp(t *testing.T, pattern string, input []byte, anchored bool) {
	t.Helper()
	got := runPattern(t, pattern, input, anchored)
	want := refEndPositions(t, pattern, input, anchored)
	for c := range want {
		if !got[c] {
			t.Errorf("pattern %q input %q anchored=%v: missing report at %d (got %v)", pattern, input, anchored, c, got)
		}
	}
	for c := range got {
		if !want[c] {
			t.Errorf("pattern %q input %q anchored=%v: spurious report at %d", pattern, input, anchored, c)
		}
	}
}

func TestCompileAgainstGoRegexp(t *testing.T) {
	patterns := []string{
		"abc",
		"a|b",
		"ab|cd",
		"a*b",
		"a+b",
		"ab?c",
		"(ab)+",
		"a(b|c)d",
		"[a-c]+x",
		"a.c",
		"(a|b)(c|d)",
		"ab{2,3}c",
		"x(ab)*y",
		"a(bc|de)*f",
	}
	inputs := []string{
		"", "a", "b", "ab", "abc", "abcabc", "aabbc", "abbbc", "xababy",
		"abcdef", "acd", "abd", "cda", "aaaab", "abbc", "xya.c", "adefdef",
		"abbbbc", "cdcd", "afbcdef",
	}
	for _, p := range patterns {
		for _, in := range inputs {
			checkAgainstRegexp(t, p, []byte(in), false)
			checkAgainstRegexp(t, p, []byte(in), true)
		}
	}
}

func TestCompileRandomizedAgainstGoRegexp(t *testing.T) {
	rng := stats.NewRNG(2024)
	patterns := []string{"a(b|c)*d", "[ab]+c", "ab|ba", "a?b?c", "(ab|a)b"}
	alphabet := []byte("abcd")
	for _, p := range patterns {
		for trial := 0; trial < 40; trial++ {
			n := rng.Intn(12) + 1
			in := make([]byte, n)
			for i := range in {
				in[i] = alphabet[rng.Intn(len(alphabet))]
			}
			checkAgainstRegexp(t, p, in, false)
		}
	}
}

func TestCompileRejectsNullable(t *testing.T) {
	for _, p := range []string{"a*", "a?", "(a|b)*", "a{0,2}"} {
		net := automata.NewNetwork()
		if _, err := Compile(net, p, Options{}); err == nil {
			t.Errorf("nullable pattern %q accepted", p)
		}
	}
}

func TestCompileSyntaxErrors(t *testing.T) {
	for _, p := range []string{"", "(", "a)", "a|", "|a", "*a", "a{2,1}", "a{x}", "a{2", "(a"} {
		net := automata.NewNetwork()
		if _, err := Compile(net, p, Options{}); err == nil {
			t.Errorf("bad pattern %q accepted", p)
		}
	}
}

func TestCompileBoundedRepetition(t *testing.T) {
	checkAgainstRegexp(t, "a{3}", []byte("aaaa"), false)
	checkAgainstRegexp(t, "a{2,}b", []byte("aaab"), false)
	checkAgainstRegexp(t, "a{1,3}b", []byte("ab"), false)
	checkAgainstRegexp(t, "a{1,3}b", []byte("aaaab"), false)
}

func TestCompiledNetworkIsHomogeneous(t *testing.T) {
	// Every element emitted by the compiler must be an STE — the Glushkov
	// construction yields homogeneous automata with no counters or gates.
	net := automata.NewNetwork()
	MustCompile(net, "a(b|c)+d", Options{ReportID: 3})
	for i := 0; i < net.Len(); i++ {
		if k := net.KindOf(automata.ElementID(i)); k != automata.KindSTE {
			t.Errorf("element %d is %v, want ste", i, k)
		}
	}
}

func TestCompileReportIDs(t *testing.T) {
	net := automata.NewNetwork()
	acc := MustCompile(net, "ab", Options{ReportID: 42})
	if len(acc) != 1 {
		t.Fatalf("accepting states = %d, want 1", len(acc))
	}
	reporting, id := net.IsReporting(acc[0])
	if !reporting || id != 42 {
		t.Errorf("accepting state reporting=%v id=%d", reporting, id)
	}
}
