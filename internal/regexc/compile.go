package regexc

import (
	"fmt"

	"repro/internal/automata"
)

// Options controls pattern compilation.
type Options struct {
	// Anchored pins the match to the start of the symbol stream (PCRE "^").
	// Unanchored patterns may begin matching at any offset, the AP's natural
	// behaviour for streams.
	Anchored bool
	// ReportID is the report code assigned to accepting states.
	ReportID int32
}

// Compile translates a pattern into a homogeneous NFA on net using the
// Glushkov construction and returns the IDs of its accepting (reporting)
// states. The supported syntax is the PCRE subset of ParseClass plus
// grouping "()", alternation "|", and the quantifiers "?", "*", "+" and
// "{m,n}".
//
// Patterns that can match the empty string are rejected: a reporting state
// must consume at least one symbol on the AP.
func Compile(net *automata.Network, pattern string, opts Options) ([]automata.ElementID, error) {
	ast, err := parsePattern(pattern)
	if err != nil {
		return nil, err
	}
	info := analyze(ast)
	if info.nullable {
		return nil, fmt.Errorf("regexc: pattern %q matches the empty string; the AP cannot report without consuming a symbol", pattern)
	}
	// One STE per position.
	ids := make([]automata.ElementID, len(info.classes))
	lastSet := make(map[int]bool, len(info.last))
	for _, p := range info.last {
		lastSet[p] = true
	}
	firstSet := make(map[int]bool, len(info.first))
	for _, p := range info.first {
		firstSet[p] = true
	}
	start := automata.StartAll
	if opts.Anchored {
		start = automata.StartOfData
	}
	for i, class := range info.classes {
		var steOpts []automata.STEOpt
		if firstSet[i] {
			steOpts = append(steOpts, automata.WithStart(start))
		}
		if lastSet[i] {
			steOpts = append(steOpts, automata.WithReport(opts.ReportID))
		}
		steOpts = append(steOpts, automata.WithName(fmt.Sprintf("p%d:%s", i, FormatClass(class))))
		ids[i] = net.AddSTE(class, steOpts...)
	}
	for from, tos := range info.follow {
		for to := range tos {
			net.Connect(ids[from], ids[to])
		}
	}
	var accepting []automata.ElementID
	for _, p := range info.last {
		accepting = append(accepting, ids[p])
	}
	return accepting, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(net *automata.Network, pattern string, opts Options) []automata.ElementID {
	ids, err := Compile(net, pattern, opts)
	if err != nil {
		panic(err)
	}
	return ids
}

// ---- AST ----

type nodeKind uint8

const (
	nodeClass nodeKind = iota
	nodeConcat
	nodeAlt
	nodeStar // zero or more
	nodePlus // one or more
	nodeOpt  // zero or one
)

type node struct {
	kind  nodeKind
	class automata.SymbolClass // nodeClass
	subs  []*node
}

// parsePattern is a recursive-descent parser over the pattern grammar:
//
//	alt    = concat ('|' concat)*
//	concat = repeat+
//	repeat = atom ('*' | '+' | '?' | '{m,n}')*
//	atom   = class | '(' alt ')'
type patternParser struct {
	in  string
	pos int
}

func parsePattern(pattern string) (*node, error) {
	if pattern == "" {
		return nil, fmt.Errorf("regexc: empty pattern")
	}
	p := &patternParser{in: pattern}
	n, err := p.alt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("regexc: unexpected %q at offset %d in %q", p.in[p.pos], p.pos, p.in)
	}
	return n, nil
}

func (p *patternParser) alt() (*node, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	subs := []*node{first}
	for p.pos < len(p.in) && p.in[p.pos] == '|' {
		p.pos++
		nxt, err := p.concat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, nxt)
	}
	if len(subs) == 1 {
		return first, nil
	}
	return &node{kind: nodeAlt, subs: subs}, nil
}

func (p *patternParser) concat() (*node, error) {
	var subs []*node
	for p.pos < len(p.in) && p.in[p.pos] != '|' && p.in[p.pos] != ')' {
		n, err := p.repeat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("regexc: empty branch at offset %d in %q", p.pos, p.in)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return &node{kind: nodeConcat, subs: subs}, nil
}

func (p *patternParser) repeat() (*node, error) {
	n, err := p.atom()
	if err != nil {
		return nil, err
	}
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case '*':
			p.pos++
			n = &node{kind: nodeStar, subs: []*node{n}}
		case '+':
			p.pos++
			n = &node{kind: nodePlus, subs: []*node{n}}
		case '?':
			p.pos++
			n = &node{kind: nodeOpt, subs: []*node{n}}
		case '{':
			rep, err := p.bounds()
			if err != nil {
				return nil, err
			}
			n = expandBounds(n, rep[0], rep[1])
		default:
			return n, nil
		}
	}
	return n, nil
}

// bounds parses "{m}", "{m,}" or "{m,n}" and returns [m, n] with n = -1 for
// unbounded.
func (p *patternParser) bounds() ([2]int, error) {
	start := p.pos
	p.pos++ // '{'
	m, ok := p.number()
	if !ok {
		return [2]int{}, fmt.Errorf("regexc: bad repetition at offset %d in %q", start, p.in)
	}
	n := m
	if p.pos < len(p.in) && p.in[p.pos] == ',' {
		p.pos++
		if p.pos < len(p.in) && p.in[p.pos] == '}' {
			n = -1
		} else {
			n, ok = p.number()
			if !ok {
				return [2]int{}, fmt.Errorf("regexc: bad repetition upper bound in %q", p.in)
			}
		}
	}
	if p.pos >= len(p.in) || p.in[p.pos] != '}' {
		return [2]int{}, fmt.Errorf("regexc: unterminated repetition in %q", p.in)
	}
	p.pos++
	if n != -1 && n < m {
		return [2]int{}, fmt.Errorf("regexc: repetition {%d,%d} has upper < lower in %q", m, n, p.in)
	}
	return [2]int{m, n}, nil
}

func (p *patternParser) number() (int, bool) {
	start := p.pos
	v := 0
	for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
		v = v*10 + int(p.in[p.pos]-'0')
		p.pos++
	}
	return v, p.pos > start
}

// expandBounds rewrites n{m,k} into concatenations and optionals; k = -1
// means unbounded (suffix star).
func expandBounds(n *node, m, k int) *node {
	var subs []*node
	for i := 0; i < m; i++ {
		subs = append(subs, n)
	}
	switch {
	case k == -1:
		subs = append(subs, &node{kind: nodeStar, subs: []*node{n}})
	default:
		for i := m; i < k; i++ {
			subs = append(subs, &node{kind: nodeOpt, subs: []*node{n}})
		}
	}
	if len(subs) == 0 {
		// {0,0}: matches only empty string; represent as Opt of nothing —
		// caller rejects nullable patterns, so return an optional atom.
		return &node{kind: nodeOpt, subs: []*node{n}}
	}
	if len(subs) == 1 {
		return subs[0]
	}
	return &node{kind: nodeConcat, subs: subs}
}

func (p *patternParser) atom() (*node, error) {
	if p.pos >= len(p.in) {
		return nil, fmt.Errorf("regexc: unexpected end of pattern %q", p.in)
	}
	switch p.in[p.pos] {
	case '(':
		p.pos++
		inner, err := p.alt()
		if err != nil {
			return nil, err
		}
		if p.pos >= len(p.in) || p.in[p.pos] != ')' {
			return nil, fmt.Errorf("regexc: unbalanced parenthesis in %q", p.in)
		}
		p.pos++
		return inner, nil
	case ')', '|', '*', '+', '?', '{':
		return nil, fmt.Errorf("regexc: unexpected %q at offset %d in %q", p.in[p.pos], p.pos, p.in)
	default:
		cp := &classParser{in: p.in, pos: p.pos}
		c, err := cp.parseTop()
		if err != nil {
			return nil, err
		}
		p.pos = cp.pos
		return &node{kind: nodeClass, class: c}, nil
	}
}

// ---- Glushkov analysis ----

type glushkov struct {
	classes  []automata.SymbolClass
	nullable bool
	first    []int
	last     []int
	follow   []map[int]bool
}

type nodeInfo struct {
	nullable bool
	first    []int
	last     []int
}

// analyze computes the Glushkov sets of the AST: positions (one per class
// occurrence), nullability, first/last position sets, and the follow
// relation. The resulting automaton has one state per position.
func analyze(root *node) *glushkov {
	g := &glushkov{}
	var walk func(n *node) nodeInfo
	walk = func(n *node) nodeInfo {
		switch n.kind {
		case nodeClass:
			pos := len(g.classes)
			g.classes = append(g.classes, n.class)
			g.follow = append(g.follow, map[int]bool{})
			return nodeInfo{first: []int{pos}, last: []int{pos}}
		case nodeAlt:
			var out nodeInfo
			for _, s := range n.subs {
				si := walk(s)
				out.nullable = out.nullable || si.nullable
				out.first = append(out.first, si.first...)
				out.last = append(out.last, si.last...)
			}
			return out
		case nodeConcat:
			infos := make([]nodeInfo, len(n.subs))
			for i, s := range n.subs {
				infos[i] = walk(s)
			}
			// follow: last(i) -> first(i+1), transitively across nullables.
			for i := 0; i < len(infos)-1; i++ {
				for j := i + 1; j < len(infos); j++ {
					for _, l := range infos[i].last {
						for _, f := range infos[j].first {
							g.follow[l][f] = true
						}
					}
					if !infos[j].nullable {
						break
					}
				}
			}
			out := nodeInfo{nullable: true}
			for _, si := range infos {
				out.nullable = out.nullable && si.nullable
			}
			for i := 0; i < len(infos); i++ {
				out.first = append(out.first, infos[i].first...)
				if !infos[i].nullable {
					break
				}
			}
			for i := len(infos) - 1; i >= 0; i-- {
				out.last = append(out.last, infos[i].last...)
				if !infos[i].nullable {
					break
				}
			}
			return out
		case nodeStar, nodePlus:
			si := walk(n.subs[0])
			for _, l := range si.last {
				for _, f := range si.first {
					g.follow[l][f] = true
				}
			}
			return nodeInfo{
				nullable: n.kind == nodeStar || si.nullable,
				first:    si.first,
				last:     si.last,
			}
		case nodeOpt:
			si := walk(n.subs[0])
			return nodeInfo{nullable: true, first: si.first, last: si.last}
		default:
			panic(fmt.Sprintf("regexc: unknown node kind %d", n.kind))
		}
	}
	rootInfo := walk(root)
	g.nullable = rootInfo.nullable
	g.first = rootInfo.first
	g.last = rootInfo.last
	return g
}
