// Package regexc compiles the PCRE subset the AP programming model accepts
// (paper §II-B: "applications can either be compiled to NFAs by supplying a
// Perl Compatible Regular Expression...") into automata networks.
//
// Two layers are exposed: symbol-class expressions (character classes, the
// per-STE match condition) and full patterns (concatenation, alternation,
// repetition) compiled position-by-position with the Glushkov construction,
// which yields exactly the homogeneous NFAs the AP fabric implements — every
// state carries a symbol class and edges are unlabeled.
package regexc

import (
	"fmt"
	"strings"

	"repro/internal/automata"
)

// ParseClass parses a single symbol-class expression and returns its class.
// Supported forms:
//
//   - every symbol (the paper's "*" state)
//     .            every symbol except \n (PCRE dot)
//     a            a literal byte
//     \xHH         hex escape
//     \n \r \t \0 \\ \* \. \[ \] \- \^   escapes
//     \d \w \s     digit, word, whitespace classes
//     [...]        set of literals and lo-hi ranges, ^ negates
func ParseClass(expr string) (automata.SymbolClass, error) {
	p := &classParser{in: expr}
	c, err := p.parseTop()
	if err != nil {
		return automata.SymbolClass{}, err
	}
	if p.pos != len(p.in) {
		return automata.SymbolClass{}, fmt.Errorf("regexc: trailing input %q in class %q", p.in[p.pos:], expr)
	}
	return c, nil
}

type classParser struct {
	in  string
	pos int
}

func (p *classParser) parseTop() (automata.SymbolClass, error) {
	if p.in == "" {
		return automata.SymbolClass{}, fmt.Errorf("regexc: empty class expression")
	}
	switch p.in[p.pos] {
	case '*':
		p.pos++
		return automata.AllClass(), nil
	case '.':
		p.pos++
		return dotClass(), nil
	case '[':
		return p.parseBracket()
	case '\\':
		return p.parseEscape()
	default:
		b := p.in[p.pos]
		p.pos++
		return automata.SingleClass(b), nil
	}
}

func dotClass() automata.SymbolClass {
	c := automata.AllClass()
	c.Remove('\n')
	return c
}

func (p *classParser) parseEscape() (automata.SymbolClass, error) {
	p.pos++ // consume backslash
	if p.pos >= len(p.in) {
		return automata.SymbolClass{}, fmt.Errorf("regexc: dangling escape in %q", p.in)
	}
	b := p.in[p.pos]
	p.pos++
	switch b {
	case 'x':
		if p.pos+2 > len(p.in) {
			return automata.SymbolClass{}, fmt.Errorf("regexc: truncated \\x escape in %q", p.in)
		}
		var v int
		for i := 0; i < 2; i++ {
			d := hexVal(p.in[p.pos])
			if d < 0 {
				return automata.SymbolClass{}, fmt.Errorf("regexc: bad hex digit %q in %q", p.in[p.pos], p.in)
			}
			v = v*16 + d
			p.pos++
		}
		return automata.SingleClass(byte(v)), nil
	case 'n':
		return automata.SingleClass('\n'), nil
	case 'r':
		return automata.SingleClass('\r'), nil
	case 't':
		return automata.SingleClass('\t'), nil
	case '0':
		return automata.SingleClass(0), nil
	case 'd':
		return automata.RangeClass('0', '9'), nil
	case 'w':
		c := automata.RangeClass('a', 'z').
			Union(automata.RangeClass('A', 'Z')).
			Union(automata.RangeClass('0', '9'))
		c.Add('_')
		return c, nil
	case 's':
		return automata.ClassOf(' ', '\t', '\n', '\r', '\v', '\f'), nil
	default:
		// Escaped metacharacter: the literal byte.
		return automata.SingleClass(b), nil
	}
}

func (p *classParser) parseBracket() (automata.SymbolClass, error) {
	p.pos++ // consume '['
	negate := false
	if p.pos < len(p.in) && p.in[p.pos] == '^' {
		negate = true
		p.pos++
	}
	var c automata.SymbolClass
	for {
		if p.pos >= len(p.in) {
			return automata.SymbolClass{}, fmt.Errorf("regexc: unterminated class in %q", p.in)
		}
		if p.in[p.pos] == ']' {
			p.pos++
			break
		}
		lo, err := p.bracketAtom()
		if err != nil {
			return automata.SymbolClass{}, err
		}
		if loSingle, ok := singleOf(lo); ok && p.pos+1 < len(p.in) && p.in[p.pos] == '-' && p.in[p.pos+1] != ']' {
			p.pos++ // consume '-'
			hi, err := p.bracketAtom()
			if err != nil {
				return automata.SymbolClass{}, err
			}
			hiSingle, ok := singleOf(hi)
			if !ok {
				return automata.SymbolClass{}, fmt.Errorf("regexc: range upper bound is a class in %q", p.in)
			}
			if hiSingle < loSingle {
				return automata.SymbolClass{}, fmt.Errorf("regexc: inverted range %#x-%#x in %q", loSingle, hiSingle, p.in)
			}
			c = c.Union(automata.RangeClass(loSingle, hiSingle))
			continue
		}
		c = c.Union(lo)
	}
	if negate {
		c = c.Negate()
	}
	return c, nil
}

// bracketAtom parses one element inside [...]: a literal or escape.
func (p *classParser) bracketAtom() (automata.SymbolClass, error) {
	if p.in[p.pos] == '\\' {
		return p.parseEscape()
	}
	b := p.in[p.pos]
	p.pos++
	return automata.SingleClass(b), nil
}

// singleOf reports whether c contains exactly one symbol and returns it.
func singleOf(c automata.SymbolClass) (byte, bool) {
	if c.Count() != 1 {
		return 0, false
	}
	for s := 0; s < 256; s++ {
		if c.Match(byte(s)) {
			return byte(s), true
		}
	}
	return 0, false
}

func hexVal(b byte) int {
	switch {
	case b >= '0' && b <= '9':
		return int(b - '0')
	case b >= 'a' && b <= 'f':
		return int(b-'a') + 10
	case b >= 'A' && b <= 'F':
		return int(b-'A') + 10
	default:
		return -1
	}
}

// FormatClass renders a class as an expression ParseClass accepts: "*" for
// the universal class, "\xHH" for singletons, and "[\xAA-\xBB...]" otherwise.
// FormatClass(ParseClass(s)) is canonical: parsing its output reproduces the
// class exactly.
func FormatClass(c automata.SymbolClass) string {
	if c.Equal(automata.AllClass()) {
		return "*"
	}
	if b, ok := singleOf(c); ok {
		return fmt.Sprintf("\\x%02x", b)
	}
	// Negated form is shorter for large classes such as ^EOF.
	if c.Count() > 128 {
		return "[^" + rangesOf(c.Negate()) + "]"
	}
	return "[" + rangesOf(c) + "]"
}

func rangesOf(c automata.SymbolClass) string {
	var sb strings.Builder
	s := 0
	for s < 256 {
		if !c.Match(byte(s)) {
			s++
			continue
		}
		start := s
		for s < 256 && c.Match(byte(s)) {
			s++
		}
		if start == s-1 {
			fmt.Fprintf(&sb, "\\x%02x", start)
		} else {
			fmt.Fprintf(&sb, "\\x%02x-\\x%02x", start, s-1)
		}
	}
	return sb.String()
}
