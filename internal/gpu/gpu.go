// Package gpu models the paper's GPU baselines (§IV-C): an off-the-shelf
// CUDA kNN kernel modified to use 32-bit XOR + POPCOUNT, run on a Tegra K1
// and a Titan X. Results are computed exactly (bit-identical to the CPU
// baseline); runtime comes from a calibrated two-parameter model.
//
// The paper's measurements show the binarized kernel is dominated by a fixed
// per-launch overhead plus a per-candidate-pair cost that is nearly
// independent of dimensionality ("poor blocking of the binarized data" —
// the 1-bit-per-dimension vectors make the kernel's memory accesses too fine
// grained to reach bandwidth). The model reproduces both generations'
// published numbers within ~25% (see the calibration notes in README.md).
package gpu

import (
	"context"
	"fmt"
	"time"

	"repro/internal/aperr"
	"repro/internal/bitvec"
	"repro/internal/knn"
)

// Config describes one GPU and its calibrated kernel parameters.
type Config struct {
	Name string
	// LaunchOverhead is the fixed cost per batched kNN invocation (driver
	// launches, transfers, result sort).
	LaunchOverhead time.Duration
	// PairCostNs is the effective time per query/candidate distance pair in
	// nanoseconds (sub-nanosecond on a Titan X, hence not a time.Duration).
	PairCostNs float64
	// Workers bounds host-side parallelism when executing functionally.
	Workers int
}

// TegraK1 returns the Jetson TK1 model calibrated to Tables III/IV.
func TegraK1() Config {
	return Config{
		Name:           "Jetson TK1",
		LaunchOverhead: 110 * time.Millisecond,
		PairCostNs:     3.73,
		Workers:        4,
	}
}

// TitanX returns the Titan X model calibrated to Table IV.
func TitanX() Config {
	return Config{
		Name:           "Titan X",
		LaunchOverhead: 15 * time.Millisecond,
		PairCostNs:     0.23,
		Workers:        8,
	}
}

// Device executes kNN batches functionally and models their wall time.
type Device struct {
	cfg Config
}

// New returns a device model.
func New(cfg Config) (*Device, error) {
	if cfg.PairCostNs <= 0 || cfg.LaunchOverhead < 0 {
		return nil, fmt.Errorf("gpu: invalid config %+v", cfg)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	return &Device{cfg: cfg}, nil
}

// Result is one batched execution.
type Result struct {
	Neighbors [][]knn.Neighbor
	Time      time.Duration
}

// Search computes exact kNN for the batch (the CUDA kernel is exact) and
// attaches the modeled execution time. Results flow through the same
// (distance, ID) tie-break as every other engine — the host-side sort the
// kernel's unordered distance matrix would be fed through — so they are
// byte-identical to the CPU baseline.
func (d *Device) Search(ctx context.Context, ds *bitvec.Dataset, queries []bitvec.Vector, k int) (*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("gpu: got k=%d: %w", k, aperr.ErrBadK)
	}
	for i, q := range queries {
		if q.Dim() != ds.Dim() {
			return nil, fmt.Errorf("gpu: query %d dim %d != dataset dim %d: %w", i, q.Dim(), ds.Dim(), aperr.ErrDimMismatch)
		}
	}
	neighbors, err := knn.BatchContext(ctx, ds, queries, k, d.cfg.Workers)
	if err != nil {
		return nil, err
	}
	return &Result{
		Neighbors: neighbors,
		Time:      d.ModelTime(ds.Len(), len(queries)),
	}, nil
}

// ModelTime returns the modeled batch runtime: launch overhead plus the
// per-pair kernel cost.
func (d *Device) ModelTime(n, numQueries int) time.Duration {
	pairs := float64(n) * float64(numQueries)
	return d.cfg.LaunchOverhead + time.Duration(pairs*d.cfg.PairCostNs*float64(time.Nanosecond))
}
