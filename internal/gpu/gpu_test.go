package gpu

import (
	"context"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/knn"
	"repro/internal/stats"
)

func TestSearchMatchesCPU(t *testing.T) {
	rng := stats.NewRNG(5)
	ds := bitvec.RandomDataset(rng, 150, 64)
	queries := make([]bitvec.Vector, 11)
	for i := range queries {
		queries[i] = bitvec.Random(rng, 64)
	}
	dev, err := New(TegraK1())
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.Search(context.Background(), ds, queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := knn.Batch(ds, queries, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		for j := range want[qi] {
			if res.Neighbors[qi][j] != want[qi][j] {
				t.Errorf("query %d rank %d: gpu %v, cpu %v", qi, j, res.Neighbors[qi][j], want[qi][j])
			}
		}
	}
}

func TestModelTimeMatchesPaper(t *testing.T) {
	tk1, _ := New(TegraK1())
	// Table III: 125.80 ms, WordEmbed small.
	got := tk1.ModelTime(1024, 4096)
	if got < 100*time.Millisecond || got > 170*time.Millisecond {
		t.Errorf("TK1 small = %v, paper 125.8ms", got)
	}
	// Table IV: ~16 s large, flat across dimensionality.
	got = tk1.ModelTime(1<<20, 4096)
	if got < 12*time.Second || got > 22*time.Second {
		t.Errorf("TK1 large = %v, paper ~16s", got)
	}
	titan, _ := New(TitanX())
	got = titan.ModelTime(1<<20, 4096)
	if got < 700*time.Millisecond || got > 1500*time.Millisecond {
		t.Errorf("Titan X large = %v, paper ~1s", got)
	}
}

func TestTitanFasterThanTegra(t *testing.T) {
	tk1, _ := New(TegraK1())
	titan, _ := New(TitanX())
	if titan.ModelTime(1<<20, 4096) >= tk1.ModelTime(1<<20, 4096) {
		t.Error("Titan X should beat Tegra K1")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	dev, _ := New(TitanX())
	rng := stats.NewRNG(1)
	if _, err := dev.Search(context.Background(), bitvec.RandomDataset(rng, 4, 16), []bitvec.Vector{bitvec.Random(rng, 16)}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := dev.Search(context.Background(), bitvec.RandomDataset(rng, 4, 16), []bitvec.Vector{bitvec.Random(rng, 32)}, 1); err == nil {
		t.Error("dim mismatch accepted")
	}
}

// TestSearchTieBreakMatchesExact forces heavy distance ties — 8-bit codes
// over 300 vectors guarantee many duplicates — and requires the GPU model's
// results to be byte-identical to the exact CPU scan, including the shared
// (distance, ID) tie-break order. knn.Batch is the scan behind the public
// ExactSearch reference.
func TestSearchTieBreakMatchesExact(t *testing.T) {
	rng := stats.NewRNG(7)
	ds := bitvec.RandomDataset(rng, 300, 8)
	queries := make([]bitvec.Vector, 9)
	for i := range queries {
		queries[i] = bitvec.Random(rng, 8)
	}
	for _, cfg := range []Config{TegraK1(), TitanX()} {
		dev, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dev.Search(context.Background(), ds, queries, 12)
		if err != nil {
			t.Fatal(err)
		}
		want, err := knn.Batch(ds, queries, 12, 1)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range queries {
			if len(res.Neighbors[qi]) != len(want[qi]) {
				t.Fatalf("%s query %d: %d results, want %d", cfg.Name, qi, len(res.Neighbors[qi]), len(want[qi]))
			}
			for j := range want[qi] {
				if res.Neighbors[qi][j] != want[qi][j] {
					t.Errorf("%s query %d rank %d: gpu %v, exact %v", cfg.Name, qi, j, res.Neighbors[qi][j], want[qi][j])
				}
			}
		}
	}
}

func TestSearchCanceled(t *testing.T) {
	rng := stats.NewRNG(8)
	ds := bitvec.RandomDataset(rng, 64, 16)
	dev, _ := New(TitanX())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dev.Search(ctx, ds, []bitvec.Vector{bitvec.Random(rng, 16)}, 2); err == nil {
		t.Error("canceled context accepted")
	}
}
