package automata

import (
	"fmt"
)

// ElementID identifies an element within a Network.
type ElementID int32

// Kind discriminates the AP element types.
type Kind uint8

// Element kinds, mirroring the AP fabric (paper §II-B): STEs implement NFA
// states, counters implement threshold events, gates implement two-input
// boolean logic.
const (
	KindSTE Kind = iota
	KindCounter
	KindGate
)

func (k Kind) String() string {
	switch k {
	case KindSTE:
		return "ste"
	case KindCounter:
		return "counter"
	case KindGate:
		return "gate"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// StartKind describes how an STE can self-activate (paper §II-B: "start
// states do not need an upstream state to be active").
type StartKind uint8

const (
	// StartNone: the STE activates only when a predecessor was active.
	StartNone StartKind = iota
	// StartOfData: the STE is enabled only on the first symbol of a stream.
	StartOfData
	// StartAll: the STE is enabled on every symbol.
	StartAll
)

func (s StartKind) String() string {
	switch s {
	case StartNone:
		return "none"
	case StartOfData:
		return "start-of-data"
	case StartAll:
		return "all-input"
	default:
		return fmt.Sprintf("start(%d)", uint8(s))
	}
}

// CounterMode selects the counter's output behaviour at threshold.
type CounterMode uint8

const (
	// CounterPulse emits a single-cycle activation when the count reaches
	// the threshold (the mode the temporal sort uses, §III-B).
	CounterPulse CounterMode = iota
	// CounterLatch holds the output active from threshold until reset.
	CounterLatch
	// CounterRollOver pulses at threshold and immediately resets to zero.
	CounterRollOver
)

func (m CounterMode) String() string {
	switch m {
	case CounterPulse:
		return "pulse"
	case CounterLatch:
		return "latch"
	case CounterRollOver:
		return "roll-over"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// GateOp is the boolean element's function. The AP's boolean elements can be
// programmed as any standard two-input gate (§II-B); OR and AND additionally
// accept wider fan-in here because the hardware routing matrix implements
// wired-OR into a gate input.
type GateOp uint8

const (
	GateOR GateOp = iota
	GateAND
	GateNOT // single input
	GateNAND
	GateNOR
	GateXOR
	GateXNOR
)

func (op GateOp) String() string {
	switch op {
	case GateOR:
		return "or"
	case GateAND:
		return "and"
	case GateNOT:
		return "not"
	case GateNAND:
		return "nand"
	case GateNOR:
		return "nor"
	case GateXOR:
		return "xor"
	case GateXNOR:
		return "xnor"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Port selects which input of a counter an edge drives.
type Port uint8

const (
	// PortDefault drives an STE's or gate's activation input.
	PortDefault Port = iota
	// PortCount drives a counter's increment-by-one port.
	PortCount
	// PortReset drives a counter's reset port.
	PortReset
)

// element is the internal representation of one AP element.
type element struct {
	kind      Kind
	name      string
	class     SymbolClass // STE only
	start     StartKind   // STE only
	threshold uint32      // counter only
	mode      CounterMode // counter only
	dynSrc    ElementID   // counter only: dynamic threshold source, -1 if none
	op        GateOp      // gate only
	reporting bool
	reportID  int32

	// successor edges, fan-out of this element's activation signal
	succ []edge
	// predecessor counts per port, for validation and fan-in analysis
	predDefault int
	predCount   int
	predReset   int
}

type edge struct {
	to   ElementID
	port Port
}

// Network is a mutable automata network: the ANML-level design that is
// compiled onto the AP and executed by the Simulator.
type Network struct {
	elems []element
	// gateOrder is the topological evaluation order of gates, computed by
	// Validate; gates are combinational so they must be loop-free.
	gateOrder []ElementID
	validated bool
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{}
}

// STEOpt mutates an STE under construction.
type STEOpt func(*element)

// WithStart marks the STE with a start kind.
func WithStart(s StartKind) STEOpt {
	return func(e *element) { e.start = s }
}

// WithReport marks the element as reporting with the given report ID, the
// value returned to the host when the element activates (§II-B).
func WithReport(id int32) STEOpt {
	return func(e *element) { e.reporting = true; e.reportID = id }
}

// WithName attaches a debug/trace name.
func WithName(name string) STEOpt {
	return func(e *element) { e.name = name }
}

// AddSTE adds a state transition element matching class.
func (n *Network) AddSTE(class SymbolClass, opts ...STEOpt) ElementID {
	e := element{kind: KindSTE, class: class, dynSrc: -1, reportID: -1}
	for _, o := range opts {
		o(&e)
	}
	return n.add(e)
}

// AddCounter adds a threshold counter. Threshold must be positive.
func (n *Network) AddCounter(threshold int, mode CounterMode, opts ...STEOpt) ElementID {
	if threshold <= 0 {
		panic(fmt.Sprintf("automata: counter threshold must be positive, got %d", threshold))
	}
	e := element{kind: KindCounter, threshold: uint32(threshold), mode: mode, dynSrc: -1, reportID: -1}
	for _, o := range opts {
		o(&e)
	}
	return n.add(e)
}

// AddDynamicCounter adds a counter implementing the §VII-B architectural
// extension: instead of a static threshold, its output is active on every
// cycle in which its count strictly exceeds the current count of the src
// counter — the "if (A > B)" comparison construct of Fig. 8. Base AP
// hardware has no such element; it exists to evaluate the proposed
// extension.
func (n *Network) AddDynamicCounter(src ElementID, opts ...STEOpt) ElementID {
	n.checkID(src)
	if n.elems[src].kind != KindCounter {
		panic(fmt.Sprintf("automata: dynamic threshold source %d is not a counter", src))
	}
	e := element{kind: KindCounter, threshold: 1, mode: CounterPulse, dynSrc: src, reportID: -1}
	for _, o := range opts {
		o(&e)
	}
	return n.add(e)
}

// DynamicSrcOf returns the dynamic-threshold source of counter id, or
// (-1, false) for statically thresholded counters.
func (n *Network) DynamicSrcOf(id ElementID) (ElementID, bool) {
	n.checkID(id)
	src := n.elems[id].dynSrc
	return src, src >= 0
}

// AddGate adds a boolean element computing op over its inputs.
func (n *Network) AddGate(op GateOp, opts ...STEOpt) ElementID {
	e := element{kind: KindGate, op: op, dynSrc: -1, reportID: -1}
	for _, o := range opts {
		o(&e)
	}
	return n.add(e)
}

func (n *Network) add(e element) ElementID {
	n.elems = append(n.elems, e)
	n.validated = false
	return ElementID(len(n.elems) - 1)
}

// Connect wires from's activation output to to's default input. For counter
// destinations use ConnectPort.
func (n *Network) Connect(from, to ElementID) {
	n.ConnectPort(from, to, PortDefault)
}

// ConnectCount wires from to counter to's increment port.
func (n *Network) ConnectCount(from, to ElementID) {
	n.ConnectPort(from, to, PortCount)
}

// ConnectReset wires from to counter to's reset port.
func (n *Network) ConnectReset(from, to ElementID) {
	n.ConnectPort(from, to, PortReset)
}

// ConnectPort wires from's output to the given port of to.
func (n *Network) ConnectPort(from, to ElementID, port Port) {
	n.checkID(from)
	n.checkID(to)
	dst := &n.elems[to]
	switch port {
	case PortDefault:
		if dst.kind == KindCounter {
			panic("automata: counters take PortCount or PortReset edges, not PortDefault")
		}
		dst.predDefault++
	case PortCount:
		if dst.kind != KindCounter {
			panic("automata: PortCount edge into non-counter element")
		}
		dst.predCount++
	case PortReset:
		if dst.kind != KindCounter {
			panic("automata: PortReset edge into non-counter element")
		}
		dst.predReset++
	}
	n.elems[from].succ = append(n.elems[from].succ, edge{to: to, port: port})
	n.validated = false
}

func (n *Network) checkID(id ElementID) {
	if id < 0 || int(id) >= len(n.elems) {
		panic(fmt.Sprintf("automata: element id %d out of range [0,%d)", id, len(n.elems)))
	}
}

// Len returns the number of elements.
func (n *Network) Len() int { return len(n.elems) }

// KindOf returns the kind of element id.
func (n *Network) KindOf(id ElementID) Kind { n.checkID(id); return n.elems[id].kind }

// NameOf returns the debug name of element id (may be empty).
func (n *Network) NameOf(id ElementID) string { n.checkID(id); return n.elems[id].name }

// ClassOf returns the symbol class of STE id.
func (n *Network) ClassOf(id ElementID) SymbolClass { n.checkID(id); return n.elems[id].class }

// StartOf returns the start kind of STE id.
func (n *Network) StartOf(id ElementID) StartKind { n.checkID(id); return n.elems[id].start }

// ThresholdOf returns the threshold of counter id.
func (n *Network) ThresholdOf(id ElementID) int { n.checkID(id); return int(n.elems[id].threshold) }

// ModeOf returns the mode of counter id.
func (n *Network) ModeOf(id ElementID) CounterMode { n.checkID(id); return n.elems[id].mode }

// OpOf returns the op of gate id.
func (n *Network) OpOf(id ElementID) GateOp { n.checkID(id); return n.elems[id].op }

// IsReporting reports whether element id reports, and its report ID.
func (n *Network) IsReporting(id ElementID) (bool, int32) {
	n.checkID(id)
	return n.elems[id].reporting, n.elems[id].reportID
}

// Successors returns the successor IDs (default-port edges expanded with
// their ports) of element id. The slice is freshly allocated.
func (n *Network) Successors(id ElementID) []ElementID {
	n.checkID(id)
	out := make([]ElementID, 0, len(n.elems[id].succ))
	for _, e := range n.elems[id].succ {
		out = append(out, e.to)
	}
	return out
}

// Edge describes one activation wire for external tooling (ANML export,
// placement).
type Edge struct {
	To   ElementID
	Port Port
}

// Edges returns the outgoing edges of element id with their destination
// ports. The slice is freshly allocated.
func (n *Network) Edges(id ElementID) []Edge {
	n.checkID(id)
	out := make([]Edge, 0, len(n.elems[id].succ))
	for _, e := range n.elems[id].succ {
		out = append(out, Edge{To: e.to, Port: e.port})
	}
	return out
}

// FanIn returns the number of default-port predecessors of element id, the
// quantity the AP routing matrix constrains (§VI-A's routing pressure).
func (n *Network) FanIn(id ElementID) int {
	n.checkID(id)
	return n.elems[id].predDefault
}

// Stats summarizes the resource content of the network.
type Stats struct {
	STEs       int
	Counters   int
	Gates      int
	Reporting  int
	Edges      int
	StartSTEs  int
	MaxFanIn   int
	MaxFanOut  int
	Components int
}

// Stats computes resource statistics used by the AP placer.
func (n *Network) Stats() Stats {
	var s Stats
	for i := range n.elems {
		e := &n.elems[i]
		switch e.kind {
		case KindSTE:
			s.STEs++
			if e.start != StartNone {
				s.StartSTEs++
			}
		case KindCounter:
			s.Counters++
		case KindGate:
			s.Gates++
		}
		if e.reporting {
			s.Reporting++
		}
		s.Edges += len(e.succ)
		fanIn := e.predDefault + e.predCount + e.predReset
		if fanIn > s.MaxFanIn {
			s.MaxFanIn = fanIn
		}
		if len(e.succ) > s.MaxFanOut {
			s.MaxFanOut = len(e.succ)
		}
	}
	s.Components = len(n.Components())
	return s
}

// Components returns the weakly connected components of the network, each a
// sorted list of element IDs. The AP placer maps one component per NFA: an
// NFA cannot span AP half-cores (§II-B), so components are the placement
// granule.
func (n *Network) Components() [][]ElementID {
	parent := make([]int32, len(n.elems))
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := range n.elems {
		for _, e := range n.elems[i].succ {
			union(int32(i), int32(e.to))
		}
	}
	groups := make(map[int32][]ElementID)
	for i := range n.elems {
		r := find(int32(i))
		groups[r] = append(groups[r], ElementID(i))
	}
	out := make([][]ElementID, 0, len(groups))
	for i := range n.elems {
		if find(int32(i)) == int32(i) {
			out = append(out, groups[int32(i)])
		}
	}
	return out
}

// Validate checks structural invariants and prepares the gate evaluation
// order. It must be called (directly or via NewSimulator) before simulation.
func (n *Network) Validate() error {
	n.gateOrder = n.gateOrder[:0]
	// Gate arity checks.
	for i := range n.elems {
		e := &n.elems[i]
		if e.kind != KindGate {
			continue
		}
		switch e.op {
		case GateNOT:
			if e.predDefault != 1 {
				return fmt.Errorf("automata: NOT gate %d has %d inputs, want 1", i, e.predDefault)
			}
		case GateXOR, GateXNOR:
			if e.predDefault != 2 {
				return fmt.Errorf("automata: %v gate %d has %d inputs, want 2", e.op, i, e.predDefault)
			}
		default:
			if e.predDefault < 1 {
				return fmt.Errorf("automata: %v gate %d has no inputs", e.op, i)
			}
		}
	}
	// Gates are combinational: find a topological order over gate-to-gate
	// edges, rejecting combinational loops.
	gateIn := make(map[ElementID]int)
	gateSucc := make(map[ElementID][]ElementID)
	for i := range n.elems {
		if n.elems[i].kind == KindGate {
			gateIn[ElementID(i)] = 0
		}
	}
	for i := range n.elems {
		if n.elems[i].kind != KindGate {
			continue
		}
		for _, e := range n.elems[i].succ {
			if n.elems[e.to].kind == KindGate {
				gateSucc[ElementID(i)] = append(gateSucc[ElementID(i)], e.to)
				gateIn[e.to]++
			}
		}
	}
	var queue []ElementID
	for i := range n.elems {
		id := ElementID(i)
		if n.elems[i].kind == KindGate && gateIn[id] == 0 {
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		n.gateOrder = append(n.gateOrder, id)
		for _, s := range gateSucc[id] {
			gateIn[s]--
			if gateIn[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(n.gateOrder) != len(gateIn) {
		return fmt.Errorf("automata: combinational loop among boolean elements (%d of %d ordered)",
			len(n.gateOrder), len(gateIn))
	}
	// Counters must have at least one count edge to be meaningful.
	for i := range n.elems {
		e := &n.elems[i]
		if e.kind == KindCounter && e.predCount == 0 {
			return fmt.Errorf("automata: counter %d has no count-enable input", i)
		}
	}
	n.validated = true
	return nil
}

// MustValidate is Validate that panics on error, for generator code whose
// outputs are correct by construction.
func (n *Network) MustValidate() {
	if err := n.Validate(); err != nil {
		panic(err)
	}
}
