// Package automata implements the execution substrate of the Micron Automata
// Processor (AP): nondeterministic finite automata extended with the AP's
// hardware elements — state transition elements (STEs) that match 8-bit
// symbol classes, saturating threshold counters with count-enable and reset
// ports, and two-input boolean elements — driven cycle by cycle from an
// external symbol stream (paper §II-B).
//
// The simulator reproduces the AP's timing model: an element's activation is
// visible to its successors on the following cycle, counters increment by at
// most one per cycle, and reporting elements emit (report ID, cycle offset)
// records exactly like the AP's reporting STEs.
package automata

import (
	"fmt"
	"math/bits"
	"strings"
)

// SymbolClass is a set of 8-bit symbols, the AP's per-STE match condition
// (a PCRE character class in the AP programming model). It is a 256-bit
// bitmap indexed by symbol value.
type SymbolClass [4]uint64

// EmptyClass matches no symbol.
func EmptyClass() SymbolClass { return SymbolClass{} }

// AllClass matches every symbol — the "*" state of the paper's figures.
func AllClass() SymbolClass {
	return SymbolClass{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
}

// SingleClass matches exactly one symbol.
func SingleClass(b byte) SymbolClass {
	var c SymbolClass
	c.Add(b)
	return c
}

// RangeClass matches the inclusive symbol range [lo, hi].
func RangeClass(lo, hi byte) SymbolClass {
	var c SymbolClass
	for s := int(lo); s <= int(hi); s++ {
		c.Add(byte(s))
	}
	return c
}

// ClassOf matches exactly the listed symbols.
func ClassOf(symbols ...byte) SymbolClass {
	var c SymbolClass
	for _, s := range symbols {
		c.Add(s)
	}
	return c
}

// Add inserts symbol b into the class.
func (c *SymbolClass) Add(b byte) {
	c[b>>6] |= 1 << (uint(b) & 63)
}

// Remove deletes symbol b from the class.
func (c *SymbolClass) Remove(b byte) {
	c[b>>6] &^= 1 << (uint(b) & 63)
}

// Match reports whether symbol b is in the class.
func (c SymbolClass) Match(b byte) bool {
	return c[b>>6]>>(uint(b)&63)&1 == 1
}

// Negate returns the complement class — e.g. the "^EOF" class of the
// paper's sort state.
func (c SymbolClass) Negate() SymbolClass {
	return SymbolClass{^c[0], ^c[1], ^c[2], ^c[3]}
}

// Union returns the set union of c and o.
func (c SymbolClass) Union(o SymbolClass) SymbolClass {
	return SymbolClass{c[0] | o[0], c[1] | o[1], c[2] | o[2], c[3] | o[3]}
}

// Intersect returns the set intersection of c and o.
func (c SymbolClass) Intersect(o SymbolClass) SymbolClass {
	return SymbolClass{c[0] & o[0], c[1] & o[1], c[2] & o[2], c[3] & o[3]}
}

// Minus returns the set difference c \ o.
func (c SymbolClass) Minus(o SymbolClass) SymbolClass {
	return SymbolClass{c[0] &^ o[0], c[1] &^ o[1], c[2] &^ o[2], c[3] &^ o[3]}
}

// Count returns the number of symbols in the class.
func (c SymbolClass) Count() int {
	return bits.OnesCount64(c[0]) + bits.OnesCount64(c[1]) +
		bits.OnesCount64(c[2]) + bits.OnesCount64(c[3])
}

// IsEmpty reports whether the class matches no symbol.
func (c SymbolClass) IsEmpty() bool {
	return c == SymbolClass{}
}

// Equal reports whether two classes match the same symbol set.
func (c SymbolClass) Equal(o SymbolClass) bool { return c == o }

// TernaryClass parses an 8-character bit pattern of '0', '1' and '*'
// (most-significant bit first, the paper's "0b*******1" notation from §VI-B)
// and returns the class of all symbols consistent with it. A leading "0b"
// prefix is permitted.
func TernaryClass(pattern string) (SymbolClass, error) {
	p := strings.TrimPrefix(pattern, "0b")
	if len(p) != 8 {
		return SymbolClass{}, fmt.Errorf("automata: ternary pattern %q must have 8 bit positions", pattern)
	}
	var care, value byte
	for i, r := range p {
		bit := uint(7 - i)
		switch r {
		case '0':
			care |= 1 << bit
		case '1':
			care |= 1 << bit
			value |= 1 << bit
		case '*':
		default:
			return SymbolClass{}, fmt.Errorf("automata: invalid ternary rune %q in %q", r, pattern)
		}
	}
	var c SymbolClass
	for s := 0; s < 256; s++ {
		if byte(s)&care == value {
			c.Add(byte(s))
		}
	}
	return c, nil
}

// MinimalBitWidth returns the smallest number of symbol-stream bit positions
// a lookup table needs to observe to decide membership in the class. This is
// the quantity the STE-decomposition extension exploits (paper §VII-C): a
// class whose membership depends on w bits fits in a 2^w-entry LUT, so a
// decomposed STE of w inputs can implement it.
//
// Formally it finds the minimum-cardinality set B of bit positions such that
// any two symbols agreeing on B are either both in or both out of the class.
// The search space is the 256 subsets of {0..7}, checked exactly.
func (c SymbolClass) MinimalBitWidth() int {
	if c.IsEmpty() || c.Equal(AllClass()) {
		return 0 // constant function: no input bits needed
	}
	best := 8
	for mask := 0; mask < 256; mask++ {
		w := bits.OnesCount8(uint8(mask))
		if w >= best {
			continue
		}
		if c.dependsOnlyOn(byte(mask)) {
			best = w
		}
	}
	return best
}

// dependsOnlyOn reports whether class membership is a function of only the
// bit positions set in mask. It groups the 256 symbols by their projection
// onto mask and checks each group is uniform.
func (c SymbolClass) dependsOnlyOn(mask byte) bool {
	// state per projection: 0 = unseen, 1 = all out so far, 2 = all in so far
	var seen [256]byte
	for s := 0; s < 256; s++ {
		key := byte(s) & mask
		in := c.Match(byte(s))
		want := byte(1)
		if in {
			want = 2
		}
		switch seen[key] {
		case 0:
			seen[key] = want
		case want:
		default:
			return false
		}
	}
	return true
}

// String renders the class compactly as sorted ranges, e.g. "[0x00-0x01 0x41]".
func (c SymbolClass) String() string {
	if c.IsEmpty() {
		return "[]"
	}
	if c.Equal(AllClass()) {
		return "[*]"
	}
	var sb strings.Builder
	sb.WriteByte('[')
	first := true
	s := 0
	for s < 256 {
		if !c.Match(byte(s)) {
			s++
			continue
		}
		start := s
		for s < 256 && c.Match(byte(s)) {
			s++
		}
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		if start == s-1 {
			fmt.Fprintf(&sb, "0x%02X", start)
		} else {
			fmt.Fprintf(&sb, "0x%02X-0x%02X", start, s-1)
		}
	}
	sb.WriteByte(']')
	return sb.String()
}
