package automata

import (
	"testing"
)

// Edge-case and failure-injection tests for the simulator.

func TestEmptyStream(t *testing.T) {
	net := buildSequenceMatcher("ab")
	sim := MustSimulator(net)
	if got := sim.Run(nil); len(got) != 0 {
		t.Errorf("empty stream produced reports: %v", got)
	}
	if sim.Cycle() != 0 {
		t.Errorf("cycle = %d after empty stream", sim.Cycle())
	}
}

func TestRunIsRepeatable(t *testing.T) {
	net, _ := buildCounterNet(3, CounterPulse)
	sim := MustSimulator(net)
	first := sim.Run([]byte("aaa..r"))
	second := sim.Run([]byte("aaa..r"))
	if len(first) != len(second) {
		t.Fatalf("runs differ: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("report %d differs across identical runs", i)
		}
	}
}

func TestSimultaneousResetAndIncrement(t *testing.T) {
	// A symbol that drives both ports on the same cycle: reset must win
	// (the counter's reset port has priority, §II-B).
	net := NewNetwork()
	both := net.AddSTE(SingleClass('x'), WithStart(StartAll))
	c := net.AddCounter(2, CounterPulse)
	net.ConnectCount(both, c)
	net.ConnectReset(both, c)
	out := net.AddSTE(AllClass(), WithReport(1))
	net.Connect(c, out)
	sim := MustSimulator(net)
	reports := sim.Run([]byte("xxxxxx"))
	if len(reports) != 0 {
		t.Errorf("counter fired despite same-cycle resets: %v", reports)
	}
	if got := sim.CounterValue(c); got != 0 {
		t.Errorf("count = %d, want 0 under reset priority", got)
	}
}

func TestThresholdOneCounter(t *testing.T) {
	net, _ := buildCounterNet(1, CounterPulse)
	sim := MustSimulator(net)
	// One increment -> immediate threshold -> report one cycle later.
	reports := sim.Run([]byte("a.."))
	if len(reports) != 1 || reports[0].Cycle != 2 {
		t.Errorf("threshold-1 reports = %v, want one at cycle 2", reports)
	}
}

func TestStepReturnsOnlyNewReports(t *testing.T) {
	net := NewNetwork()
	net.AddSTE(SingleClass('a'), WithStart(StartAll), WithReport(1))
	sim := MustSimulator(net)
	sim.Reset()
	if got := sim.Step('a'); len(got) != 1 {
		t.Fatalf("step 1 reports = %v", got)
	}
	if got := sim.Step('b'); len(got) != 0 {
		t.Errorf("step 2 reports = %v, want none", got)
	}
	if got := sim.Step('a'); len(got) != 1 {
		t.Errorf("step 3 reports = %v, want one", got)
	}
}

func TestSelfLoopOnStartState(t *testing.T) {
	// A start state with a self loop stays active for runs of its symbol.
	net := NewNetwork()
	a := net.AddSTE(SingleClass('a'), WithStart(StartAll), WithReport(1))
	net.Connect(a, a)
	sim := MustSimulator(net)
	if got := len(sim.Run([]byte("aaa"))); got != 3 {
		t.Errorf("self-looping start matched %d times, want 3", got)
	}
}

func TestDynamicCounterTiesDoNotFire(t *testing.T) {
	// A == B must not activate the A > B comparator.
	net := NewNetwork()
	en := net.AddSTE(SingleClass('x'), WithStart(StartAll))
	b := net.AddCounter(1<<20, CounterPulse)
	net.ConnectCount(en, b)
	a := net.AddDynamicCounter(b, WithReport(5))
	net.ConnectCount(en, a)
	sim := MustSimulator(net)
	// Both counters increment in lockstep: always equal, never A > B.
	if got := sim.Run([]byte("xxxxxx")); len(got) != 0 {
		t.Errorf("equal counts reported: %v", got)
	}
}

func TestLargeFanoutCorrectness(t *testing.T) {
	// One source driving 500 reporting STEs: all must fire exactly once.
	net := NewNetwork()
	src := net.AddSTE(SingleClass('s'), WithStart(StartAll))
	for i := 0; i < 500; i++ {
		dst := net.AddSTE(AllClass(), WithReport(int32(i)))
		net.Connect(src, dst)
	}
	sim := MustSimulator(net)
	reports := sim.Run([]byte("s."))
	if len(reports) != 500 {
		t.Fatalf("got %d reports, want 500", len(reports))
	}
	seen := map[int32]bool{}
	for _, r := range reports {
		if r.Cycle != 1 {
			t.Errorf("report %d at cycle %d, want 1", r.ReportID, r.Cycle)
		}
		if seen[r.ReportID] {
			t.Errorf("duplicate report %d", r.ReportID)
		}
		seen[r.ReportID] = true
	}
}

func TestDiamondTopologySingleActivation(t *testing.T) {
	// Two paths converging on one state within the same cycle must produce
	// exactly one activation (and one report).
	net := NewNetwork()
	a1 := net.AddSTE(SingleClass('a'), WithStart(StartAll))
	a2 := net.AddSTE(SingleClass('a'), WithStart(StartAll))
	join := net.AddSTE(AllClass(), WithReport(9))
	net.Connect(a1, join)
	net.Connect(a2, join)
	sim := MustSimulator(net)
	reports := sim.Run([]byte("a."))
	if len(reports) != 1 {
		t.Errorf("diamond join reported %d times, want 1", len(reports))
	}
}

func TestCounterValuePanicsOnNonCounter(t *testing.T) {
	net := NewNetwork()
	ste := net.AddSTE(AllClass(), WithStart(StartAll))
	sim := MustSimulator(net)
	defer func() {
		if recover() == nil {
			t.Error("CounterValue on STE did not panic")
		}
	}()
	sim.CounterValue(ste)
}
