package automata

import (
	"testing"
	"testing/quick"
)

func TestSymbolClassBasics(t *testing.T) {
	c := SingleClass('a')
	if !c.Match('a') || c.Match('b') {
		t.Error("SingleClass membership wrong")
	}
	if c.Count() != 1 {
		t.Errorf("Count = %d, want 1", c.Count())
	}
	c.Add('z')
	if !c.Match('z') || c.Count() != 2 {
		t.Error("Add failed")
	}
	c.Remove('a')
	if c.Match('a') || c.Count() != 1 {
		t.Error("Remove failed")
	}
}

func TestAllAndEmpty(t *testing.T) {
	all, empty := AllClass(), EmptyClass()
	if all.Count() != 256 || empty.Count() != 0 {
		t.Fatalf("counts: all=%d empty=%d", all.Count(), empty.Count())
	}
	for s := 0; s < 256; s++ {
		if !all.Match(byte(s)) {
			t.Fatalf("AllClass missing %d", s)
		}
		if empty.Match(byte(s)) {
			t.Fatalf("EmptyClass contains %d", s)
		}
	}
	if !all.Negate().Equal(empty) || !empty.Negate().Equal(all) {
		t.Error("Negate of all/empty wrong")
	}
}

func TestRangeClass(t *testing.T) {
	c := RangeClass('a', 'f')
	if c.Count() != 6 {
		t.Errorf("Count = %d, want 6", c.Count())
	}
	if !c.Match('a') || !c.Match('f') || c.Match('g') || c.Match('`') {
		t.Error("range membership wrong")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := RangeClass(0, 9)
	b := RangeClass(5, 15)
	if got := a.Union(b).Count(); got != 16 {
		t.Errorf("Union count = %d, want 16", got)
	}
	if got := a.Intersect(b).Count(); got != 5 {
		t.Errorf("Intersect count = %d, want 5", got)
	}
	if got := a.Minus(b).Count(); got != 5 {
		t.Errorf("Minus count = %d, want 5", got)
	}
}

// Property: De Morgan's law on symbol classes.
func TestClassDeMorgan(t *testing.T) {
	f := func(a, b SymbolClass) bool {
		lhs := a.Union(b).Negate()
		rhs := a.Negate().Intersect(b.Negate())
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Negate is an involution and Count(Negate) = 256 - Count.
func TestClassNegateInvolution(t *testing.T) {
	f := func(a SymbolClass) bool {
		return a.Negate().Negate().Equal(a) && a.Negate().Count() == 256-a.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTernaryClass(t *testing.T) {
	// Paper §VI-B: 0b*******1 matches all symbols whose low bit is 1.
	c, err := TernaryClass("0b*******1")
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != 128 {
		t.Fatalf("Count = %d, want 128", c.Count())
	}
	for s := 0; s < 256; s++ {
		want := s&1 == 1
		if c.Match(byte(s)) != want {
			t.Fatalf("symbol %#x: match = %v, want %v", s, c.Match(byte(s)), want)
		}
	}
	exact, err := TernaryClass("01000001") // 'A', no prefix
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Equal(SingleClass('A')) {
		t.Error("exact ternary pattern != SingleClass")
	}
	star, err := TernaryClass("********")
	if err != nil {
		t.Fatal(err)
	}
	if !star.Equal(AllClass()) {
		t.Error("all-star ternary pattern != AllClass")
	}
}

func TestTernaryClassErrors(t *testing.T) {
	if _, err := TernaryClass("0b***"); err == nil {
		t.Error("short pattern accepted")
	}
	if _, err := TernaryClass("0b*******2"); err == nil {
		t.Error("invalid rune accepted")
	}
}

func TestMinimalBitWidth(t *testing.T) {
	cases := []struct {
		name string
		c    SymbolClass
		want int
	}{
		{"all", AllClass(), 0},
		{"empty", EmptyClass(), 0},
		{"single", SingleClass(0x41), 8},
		{"low bit", mustTernary(t, "0b*******1"), 1},
		{"bit 5", mustTernary(t, "0b**1*****"), 1},
		{"two bits", mustTernary(t, "0b**1****0"), 2},
		{"low nibble", mustTernary(t, "0b****0110"), 4},
		{"ascii half", RangeClass(0, 127), 1}, // depends only on bit 7
	}
	for _, c := range cases {
		if got := c.c.MinimalBitWidth(); got != c.want {
			t.Errorf("%s: MinimalBitWidth = %d, want %d", c.name, got, c.want)
		}
	}
}

func mustTernary(t *testing.T, p string) SymbolClass {
	t.Helper()
	c, err := TernaryClass(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClassString(t *testing.T) {
	if s := AllClass().String(); s != "[*]" {
		t.Errorf("AllClass.String = %q", s)
	}
	if s := EmptyClass().String(); s != "[]" {
		t.Errorf("EmptyClass.String = %q", s)
	}
	c := ClassOf(0x00, 0x01, 0x41)
	if s := c.String(); s != "[0x00-0x01 0x41]" {
		t.Errorf("String = %q", s)
	}
}
