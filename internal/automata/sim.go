package automata

import "fmt"

// Report is one reporting-element activation: the AP returns the unique
// report ID and the cycle offset within the symbol stream at which the
// element activated (paper §II-B). Cycle offsets are zero-based.
type Report struct {
	Element  ElementID
	ReportID int32
	Cycle    int
}

// CycleTrace is the per-cycle observation delivered to a trace callback:
// everything needed to regenerate the paper's Fig. 3 execution diagrams.
type CycleTrace struct {
	Cycle    int
	Symbol   byte
	Active   []ElementID // elements emitting an activation this cycle
	Counters []CounterTrace
}

// CounterTrace is a counter's state within a CycleTrace.
type CounterTrace struct {
	Element ElementID
	Count   int
	Output  bool
}

// Simulator executes a validated Network cycle by cycle against a symbol
// stream with the AP's timing model:
//
//   - An STE activates on cycle t iff its class matches symbol t and it is
//     enabled — it is a start state, or some predecessor emitted on t-1.
//   - A counter samples its ports from activations emitted on t-1: reset has
//     priority; otherwise one or more active count edges increment the count
//     by one (or by the number of active edges when the §VII-A
//     counter-increment extension is enabled).
//   - Boolean elements are combinational over same-cycle outputs and their
//     consumers observe them with the standard one-cycle edge latency.
//
// The zero Simulator is not usable; construct with NewSimulator.
type Simulator struct {
	net *Network

	// ExtendedIncrement enables the §VII-A architectural extension: counters
	// add the number of simultaneously active count edges instead of
	// saturating the per-cycle increment at one.
	ExtendedIncrement bool

	// Trace, when non-nil, receives a CycleTrace after every step. Tracing
	// is O(elements) per cycle; leave nil for performance runs.
	Trace func(CycleTrace)

	cycle     int
	epoch     int32
	candStamp []int32 // STE enabled-candidate marks, by epoch
	emitStamp []int32 // element emitted-this-cycle marks, by epoch
	incrStamp []int32 // counter increment marks, by epoch
	incrCount []int32 // active count edges this cycle (valid when stamped)
	rstStamp  []int32 // counter reset marks, by epoch

	frontier []ElementID // elements that emitted on the previous cycle
	scratch  []ElementID

	counts  []uint32 // counter values (indexed by element ID; 0 for others)
	fired   []bool   // pulse-mode counters that already pulsed since reset
	latched []bool   // latch-mode counters currently holding output
	pulse   []bool   // per-cycle pulse outputs, scratch for phase 3b

	counters  []ElementID // all counter IDs
	startAll  []ElementID // STEs enabled every cycle
	startData []ElementID // STEs enabled on cycle 0 only
	gatePreds [][]ElementID

	reports []Report
}

// NewSimulator validates the network and returns a fresh simulator.
func NewSimulator(net *Network) (*Simulator, error) {
	if !net.validated {
		if err := net.Validate(); err != nil {
			return nil, err
		}
	}
	n := len(net.elems)
	s := &Simulator{
		net:       net,
		candStamp: make([]int32, n),
		emitStamp: make([]int32, n),
		incrStamp: make([]int32, n),
		incrCount: make([]int32, n),
		rstStamp:  make([]int32, n),
		counts:    make([]uint32, n),
		fired:     make([]bool, n),
		latched:   make([]bool, n),
		pulse:     make([]bool, n),
	}
	s.gatePreds = make([][]ElementID, n)
	for i := range net.elems {
		e := &net.elems[i]
		switch e.kind {
		case KindCounter:
			s.counters = append(s.counters, ElementID(i))
		case KindSTE:
			switch e.start {
			case StartAll:
				s.startAll = append(s.startAll, ElementID(i))
			case StartOfData:
				s.startData = append(s.startData, ElementID(i))
			}
		}
		for _, edge := range e.succ {
			if net.elems[edge.to].kind == KindGate && edge.port == PortDefault {
				s.gatePreds[edge.to] = append(s.gatePreds[edge.to], ElementID(i))
			}
		}
	}
	s.Reset()
	return s, nil
}

// MustSimulator is NewSimulator that panics on error, for generated networks
// that are valid by construction.
func MustSimulator(net *Network) *Simulator {
	s, err := NewSimulator(net)
	if err != nil {
		panic(err)
	}
	return s
}

// Reset returns the simulator to the pre-stream state: no activations, all
// counters zero, cycle counter rewound.
func (s *Simulator) Reset() {
	s.cycle = 0
	s.epoch++
	s.frontier = s.frontier[:0]
	for i := range s.counts {
		s.counts[i] = 0
		s.fired[i] = false
		s.latched[i] = false
	}
	s.reports = s.reports[:0]
}

// Cycle returns the number of symbols consumed since the last Reset.
func (s *Simulator) Cycle() int { return s.cycle }

// CounterValue returns the current count of counter id, for tests and traces.
func (s *Simulator) CounterValue(id ElementID) int {
	if s.net.elems[id].kind != KindCounter {
		panic(fmt.Sprintf("automata: element %d is not a counter", id))
	}
	return int(s.counts[id])
}

// Step consumes one symbol and returns the reports emitted on this cycle.
// The returned slice aliases internal storage valid until the next Step.
func (s *Simulator) Step(sym byte) []Report {
	net := s.net
	s.epoch++
	epoch := s.epoch
	reportStart := len(s.reports)

	// Phase 1: propagate last cycle's activations to this cycle's inputs.
	for _, id := range s.frontier {
		for _, e := range net.elems[id].succ {
			switch e.port {
			case PortDefault:
				if net.elems[e.to].kind == KindSTE {
					s.candStamp[e.to] = epoch
				}
				// Gate inputs are combinational and read in phase 4.
			case PortCount:
				if s.incrStamp[e.to] != epoch {
					s.incrStamp[e.to] = epoch
					s.incrCount[e.to] = 0
				}
				s.incrCount[e.to]++
			case PortReset:
				s.rstStamp[e.to] = epoch
			}
		}
	}

	// Phase 2: STE activations.
	next := s.scratch[:0]
	activate := func(id ElementID) {
		if s.emitStamp[id] == epoch {
			return
		}
		s.emitStamp[id] = epoch
		next = append(next, id)
		if e := &net.elems[id]; e.reporting {
			s.reports = append(s.reports, Report{Element: id, ReportID: e.reportID, Cycle: s.cycle})
		}
	}
	for _, id := range s.startAll {
		s.candStamp[id] = epoch
	}
	if s.cycle == 0 {
		for _, id := range s.startData {
			s.candStamp[id] = epoch
		}
	}
	// Enabled STEs were stamped either by frontier propagation or as start
	// states; scan the frontier successors again is unnecessary — instead we
	// collect stamped STEs while stamping. To keep phase 1 branch-free we
	// re-derive them here from the stamp array only for start states and
	// frontier successors.
	for _, id := range s.frontier {
		for _, e := range net.elems[id].succ {
			if e.port == PortDefault && net.elems[e.to].kind == KindSTE &&
				s.candStamp[e.to] == epoch && net.elems[e.to].class.Match(sym) {
				activate(e.to)
			}
		}
	}
	for _, id := range s.startAll {
		if net.elems[id].class.Match(sym) {
			activate(id)
		}
	}
	if s.cycle == 0 {
		for _, id := range s.startData {
			if net.elems[id].class.Match(sym) {
				activate(id)
			}
		}
	}

	// Phase 3a: update counter state. Outputs are computed afterwards so
	// dynamically thresholded counters (§VII-B) compare same-cycle counts
	// regardless of element order.
	for _, id := range s.counters {
		e := &net.elems[id]
		s.pulse[id] = false
		switch {
		case s.rstStamp[id] == epoch:
			s.counts[id] = 0
			s.fired[id] = false
			s.latched[id] = false
		case s.incrStamp[id] == epoch:
			incr := int32(1)
			if s.ExtendedIncrement {
				incr = s.incrCount[id]
			}
			old := s.counts[id]
			s.counts[id] += uint32(incr)
			crossed := old < e.threshold && s.counts[id] >= e.threshold
			switch e.mode {
			case CounterPulse:
				if crossed && !s.fired[id] {
					s.fired[id] = true
					s.pulse[id] = true
				}
			case CounterLatch:
				if crossed {
					s.latched[id] = true
				}
			case CounterRollOver:
				if crossed {
					s.pulse[id] = true
					s.counts[id] = 0
				}
			}
		}
	}
	// Phase 3b: counter outputs.
	for _, id := range s.counters {
		e := &net.elems[id]
		out := s.pulse[id] || s.latched[id]
		if e.dynSrc >= 0 {
			out = s.counts[id] > s.counts[e.dynSrc]
		}
		if out {
			activate(id)
		}
	}

	// Phase 4: boolean elements, in topological order over same-cycle inputs.
	for _, id := range net.gateOrder {
		e := &net.elems[id]
		preds := s.gatePreds[id]
		var out bool
		switch e.op {
		case GateOR, GateNOR:
			out = false
			for _, p := range preds {
				if s.emitStamp[p] == epoch {
					out = true
					break
				}
			}
			if e.op == GateNOR {
				out = !out
			}
		case GateAND, GateNAND:
			out = true
			for _, p := range preds {
				if s.emitStamp[p] != epoch {
					out = false
					break
				}
			}
			if e.op == GateNAND {
				out = !out
			}
		case GateNOT:
			out = s.emitStamp[preds[0]] != epoch
		case GateXOR, GateXNOR:
			a := s.emitStamp[preds[0]] == epoch
			b := s.emitStamp[preds[1]] == epoch
			out = a != b
			if e.op == GateXNOR {
				out = !out
			}
		}
		if out {
			activate(id)
		}
	}

	if s.Trace != nil {
		s.emitTrace(sym, next)
	}

	// Swap frontiers.
	s.scratch = s.frontier[:0]
	s.frontier = next
	s.cycle++
	return s.reports[reportStart:]
}

func (s *Simulator) emitTrace(sym byte, active []ElementID) {
	tc := CycleTrace{Cycle: s.cycle, Symbol: sym, Active: append([]ElementID(nil), active...)}
	for _, id := range s.counters {
		tc.Counters = append(tc.Counters, CounterTrace{
			Element: id,
			Count:   int(s.counts[id]),
			Output:  s.emitStamp[id] == s.epoch,
		})
	}
	s.Trace(tc)
}

// Run resets the simulator, consumes the whole stream, and returns all
// reports. The returned slice is owned by the caller.
func (s *Simulator) Run(stream []byte) []Report {
	s.Reset()
	for _, sym := range stream {
		s.Step(sym)
	}
	out := make([]Report, len(s.reports))
	copy(out, s.reports)
	return out
}
