package automata

import (
	"testing"
)

// buildSequenceMatcher returns a network that reports when the exact byte
// sequence pat is seen, reporting on the cycle of the last byte.
func buildSequenceMatcher(pat string) *Network {
	net := NewNetwork()
	var prev ElementID = -1
	for i := 0; i < len(pat); i++ {
		opts := []STEOpt{WithName(string(pat[i]))}
		if i == 0 {
			opts = append(opts, WithStart(StartAll))
		}
		if i == len(pat)-1 {
			opts = append(opts, WithReport(1))
		}
		id := net.AddSTE(SingleClass(pat[i]), opts...)
		if prev >= 0 {
			net.Connect(prev, id)
		}
		prev = id
	}
	return net
}

func TestSequenceMatch(t *testing.T) {
	net := buildSequenceMatcher("abc")
	sim := MustSimulator(net)
	reports := sim.Run([]byte("xxabcxabcab"))
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2: %v", len(reports), reports)
	}
	if reports[0].Cycle != 4 || reports[1].Cycle != 8 {
		t.Errorf("report cycles = %d,%d want 4,8", reports[0].Cycle, reports[1].Cycle)
	}
	if reports[0].ReportID != 1 {
		t.Errorf("report ID = %d, want 1", reports[0].ReportID)
	}
}

func TestOverlappingMatches(t *testing.T) {
	// NFA semantics: overlapping occurrences all report.
	net := buildSequenceMatcher("aa")
	sim := MustSimulator(net)
	reports := sim.Run([]byte("aaaa"))
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3 (overlapping)", len(reports))
	}
}

func TestStartOfDataOnlyFirstCycle(t *testing.T) {
	net := NewNetwork()
	net.AddSTE(SingleClass('a'), WithStart(StartOfData), WithReport(7))
	sim := MustSimulator(net)
	if got := len(sim.Run([]byte("aa"))); got != 1 {
		t.Errorf("start-of-data matched %d times, want 1", got)
	}
	if got := len(sim.Run([]byte("ba"))); got != 0 {
		t.Errorf("start-of-data matched %d times on offset symbol, want 0", got)
	}
}

func TestStartAllEveryCycle(t *testing.T) {
	net := NewNetwork()
	net.AddSTE(SingleClass('a'), WithStart(StartAll), WithReport(7))
	sim := MustSimulator(net)
	if got := len(sim.Run([]byte("ababa"))); got != 3 {
		t.Errorf("all-input start matched %d times, want 3", got)
	}
}

func TestActivationLatencyIsOneCycle(t *testing.T) {
	// a -> b: b can only match the symbol AFTER a matched.
	net := NewNetwork()
	a := net.AddSTE(SingleClass('a'), WithStart(StartAll))
	b := net.AddSTE(SingleClass('b'), WithReport(1))
	net.Connect(a, b)
	sim := MustSimulator(net)
	// "ab" reports at cycle 1; a bare "b" never reports.
	if got := sim.Run([]byte("ab")); len(got) != 1 || got[0].Cycle != 1 {
		t.Errorf("got %v, want one report at cycle 1", got)
	}
	if got := sim.Run([]byte("b")); len(got) != 0 {
		t.Errorf("unreachable state reported: %v", got)
	}
}

func TestSelfLoopHoldsActivation(t *testing.T) {
	// Classic "a.*b" style: a, then any symbols, then b.
	net := NewNetwork()
	a := net.AddSTE(SingleClass('a'), WithStart(StartAll))
	hold := net.AddSTE(AllClass())
	b := net.AddSTE(SingleClass('b'), WithReport(2))
	net.Connect(a, hold)
	net.Connect(hold, hold) // self loop
	net.Connect(a, b)
	net.Connect(hold, b)
	sim := MustSimulator(net)
	reports := sim.Run([]byte("axxxb"))
	if len(reports) != 1 || reports[0].Cycle != 4 {
		t.Errorf("got %v, want report at cycle 4", reports)
	}
}

// buildCounterNet: STE 'a' (start-all) drives a counter with the given
// threshold and mode; STE 'r' drives reset; a reporting STE follows the
// counter output.
func buildCounterNet(threshold int, mode CounterMode) (*Network, ElementID) {
	net := NewNetwork()
	a := net.AddSTE(SingleClass('a'), WithStart(StartAll), WithName("inc"))
	r := net.AddSTE(SingleClass('r'), WithStart(StartAll), WithName("rst"))
	c := net.AddCounter(threshold, mode, WithName("ctr"))
	out := net.AddSTE(AllClass(), WithReport(9), WithName("out"))
	net.ConnectCount(a, c)
	net.ConnectReset(r, c)
	net.Connect(c, out)
	return net, c
}

func TestCounterPulseTiming(t *testing.T) {
	net, c := buildCounterNet(3, CounterPulse)
	sim := MustSimulator(net)
	// 'a' at cycles 0,1,2: counter increments at cycles 1,2,3 (one-cycle
	// latency), reaches threshold 3 at cycle 3 and pulses; the reporting STE
	// downstream activates at cycle 4.
	reports := sim.Run([]byte("aaa...."))
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1: %v", len(reports), reports)
	}
	if reports[0].Cycle != 4 {
		t.Errorf("report cycle = %d, want 4", reports[0].Cycle)
	}
	if got := sim.CounterValue(c); got != 3 {
		t.Errorf("final count = %d, want 3", got)
	}
}

func TestCounterPulseOnlyOnce(t *testing.T) {
	net, _ := buildCounterNet(2, CounterPulse)
	sim := MustSimulator(net)
	// Count keeps increasing past the threshold; pulse mode must fire once
	// (Fig. 3 shows the count rising to 8 with a single pulse at threshold).
	reports := sim.Run([]byte("aaaaaa.."))
	if len(reports) != 1 {
		t.Errorf("pulse mode fired %d times, want 1", len(reports))
	}
}

func TestCounterResetPriority(t *testing.T) {
	net, c := buildCounterNet(5, CounterPulse)
	sim := MustSimulator(net)
	// Increment twice, reset, then verify count restarted from zero.
	sim.Run([]byte("aar"))
	_ = c
	sim2 := MustSimulator(net)
	sim2.Reset()
	for _, sym := range []byte("aar.") {
		sim2.Step(sym)
	}
	if got := sim2.CounterValue(c); got != 0 {
		t.Errorf("count after reset = %d, want 0", got)
	}
}

func TestCounterPulseAgainAfterReset(t *testing.T) {
	net, _ := buildCounterNet(2, CounterPulse)
	sim := MustSimulator(net)
	// Two pulses: one before reset, one after.
	reports := sim.Run([]byte("aa.r.aa.."))
	if len(reports) != 2 {
		t.Errorf("got %d reports, want 2: %v", len(reports), reports)
	}
}

func TestCounterLatchHolds(t *testing.T) {
	net, _ := buildCounterNet(2, CounterLatch)
	sim := MustSimulator(net)
	// After threshold, the latched output stays high every cycle until reset,
	// so the downstream reporting STE fires repeatedly.
	reports := sim.Run([]byte("aa....r.."))
	// count reaches 2 at cycle 2 -> latch high cycles 2..7 (reset 'r' at
	// cycle 6 lands at cycle 7); downstream reports cycles 3..8 minus
	// post-reset. Expect >= 4 reports and none after reset settles.
	if len(reports) < 4 {
		t.Fatalf("latch produced %d reports, want >= 4: %v", len(reports), reports)
	}
	last := reports[len(reports)-1]
	if last.Cycle > 7 {
		t.Errorf("latch still reporting at cycle %d after reset", last.Cycle)
	}
}

func TestCounterRollOver(t *testing.T) {
	net, c := buildCounterNet(2, CounterRollOver)
	sim := MustSimulator(net)
	// Every 2 increments -> pulse + self reset: 6 increments = 3 pulses.
	reports := sim.Run([]byte("aaaaaa.."))
	if len(reports) != 3 {
		t.Errorf("roll-over fired %d times, want 3", len(reports))
	}
	if got := sim.CounterValue(c); got != 0 {
		t.Errorf("roll-over final count = %d, want 0", got)
	}
}

func TestExtendedIncrement(t *testing.T) {
	// Two STEs drive the same counter; with the §VII-A extension the counter
	// adds 2 per cycle, without it at most 1.
	build := func() *Network {
		net := NewNetwork()
		a := net.AddSTE(SingleClass('a'), WithStart(StartAll))
		b := net.AddSTE(SingleClass('a'), WithStart(StartAll))
		c := net.AddCounter(4, CounterPulse)
		out := net.AddSTE(AllClass(), WithReport(1))
		net.ConnectCount(a, c)
		net.ConnectCount(b, c)
		net.Connect(c, out)
		return net
	}
	base := MustSimulator(build())
	baseReports := base.Run([]byte("aaaa.."))
	// baseline: 1/cycle -> threshold 4 at cycle 4, report cycle 5
	if len(baseReports) != 1 || baseReports[0].Cycle != 5 {
		t.Errorf("baseline reports = %v, want one at cycle 5", baseReports)
	}
	ext := MustSimulator(build())
	ext.ExtendedIncrement = true
	extReports := ext.Run([]byte("aaaa.."))
	// extended: 2/cycle -> threshold 4 at cycle 2, report cycle 3
	if len(extReports) != 1 || extReports[0].Cycle != 3 {
		t.Errorf("extended reports = %v, want one at cycle 3", extReports)
	}
}

func TestGateAndOr(t *testing.T) {
	net := NewNetwork()
	a := net.AddSTE(SingleClass('a'), WithStart(StartAll))
	b := net.AddSTE(SingleClass('b'), WithStart(StartAll))
	and := net.AddGate(GateAND, WithReport(1))
	or := net.AddGate(GateOR, WithReport(2))
	net.Connect(a, and)
	net.Connect(b, and)
	net.Connect(a, or)
	net.Connect(b, or)
	sim := MustSimulator(net)
	// Symbols hit at most one of 'a'/'b' per cycle so AND never fires.
	reports := sim.Run([]byte("ab"))
	var andCount, orCount int
	for _, r := range reports {
		switch r.ReportID {
		case 1:
			andCount++
		case 2:
			orCount++
		}
	}
	if andCount != 0 {
		t.Errorf("AND fired %d times, want 0", andCount)
	}
	if orCount != 2 {
		t.Errorf("OR fired %d times, want 2", orCount)
	}
}

func TestGateCombinationalSameCycle(t *testing.T) {
	// STE -> gate is same-cycle; gate -> STE adds one cycle. Total a->or->b
	// path behaves like a->b.
	net := NewNetwork()
	a := net.AddSTE(SingleClass('a'), WithStart(StartAll))
	g := net.AddGate(GateOR)
	b := net.AddSTE(SingleClass('b'), WithReport(1))
	net.Connect(a, g)
	net.Connect(g, b)
	sim := MustSimulator(net)
	reports := sim.Run([]byte("ab"))
	if len(reports) != 1 || reports[0].Cycle != 1 {
		t.Errorf("got %v, want report at cycle 1", reports)
	}
}

func TestGateXORandNOT(t *testing.T) {
	net := NewNetwork()
	a := net.AddSTE(SingleClass('a'), WithStart(StartAll))
	b := net.AddSTE(SingleClass('b'), WithStart(StartAll))
	x := net.AddGate(GateXOR, WithReport(1))
	net.Connect(a, x)
	net.Connect(b, x)
	notG := net.AddGate(GateNOT, WithReport(2))
	net.Connect(a, notG)
	sim := MustSimulator(net)
	reports := sim.Run([]byte("a."))
	var xor, not int
	for _, r := range reports {
		switch r.ReportID {
		case 1:
			xor++
		case 2:
			not++
		}
	}
	if xor != 1 {
		t.Errorf("XOR fired %d, want 1 ('a' cycle only)", xor)
	}
	if not != 1 {
		t.Errorf("NOT fired %d, want 1 ('.' cycle only)", not)
	}
}

func TestGateChainTopologicalOrder(t *testing.T) {
	// or1 -> or2 -> or3 all combinational within a cycle.
	net := NewNetwork()
	a := net.AddSTE(SingleClass('a'), WithStart(StartAll))
	g1 := net.AddGate(GateOR)
	g2 := net.AddGate(GateOR)
	g3 := net.AddGate(GateOR, WithReport(1))
	net.Connect(a, g1)
	net.Connect(g1, g2)
	net.Connect(g2, g3)
	sim := MustSimulator(net)
	reports := sim.Run([]byte("a"))
	if len(reports) != 1 || reports[0].Cycle != 0 {
		t.Errorf("gate chain reports = %v, want one at cycle 0", reports)
	}
}

func TestCombinationalLoopRejected(t *testing.T) {
	net := NewNetwork()
	a := net.AddSTE(SingleClass('a'), WithStart(StartAll))
	g1 := net.AddGate(GateOR)
	g2 := net.AddGate(GateOR)
	net.Connect(a, g1)
	net.Connect(g1, g2)
	net.Connect(g2, g1) // loop
	if err := net.Validate(); err == nil {
		t.Error("combinational gate loop not rejected")
	}
}

func TestValidateRejectsBadGateArity(t *testing.T) {
	net := NewNetwork()
	a := net.AddSTE(SingleClass('a'), WithStart(StartAll))
	x := net.AddGate(GateXOR)
	net.Connect(a, x) // XOR needs exactly 2
	if err := net.Validate(); err == nil {
		t.Error("1-input XOR accepted")
	}
}

func TestValidateRejectsCounterWithoutEnable(t *testing.T) {
	net := NewNetwork()
	a := net.AddSTE(SingleClass('a'), WithStart(StartAll))
	c := net.AddCounter(2, CounterPulse)
	net.ConnectReset(a, c) // reset only, no count edge
	if err := net.Validate(); err == nil {
		t.Error("counter without count-enable accepted")
	}
}

func TestConnectPanicsOnCounterDefaultPort(t *testing.T) {
	net := NewNetwork()
	a := net.AddSTE(SingleClass('a'))
	c := net.AddCounter(2, CounterPulse)
	defer func() {
		if recover() == nil {
			t.Error("PortDefault into counter did not panic")
		}
	}()
	net.Connect(a, c)
}

func TestNetworkStats(t *testing.T) {
	net, _ := buildCounterNet(3, CounterPulse)
	s := net.Stats()
	if s.STEs != 3 || s.Counters != 1 || s.Reporting != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Components != 1 {
		t.Errorf("components = %d, want 1", s.Components)
	}
}

func TestComponents(t *testing.T) {
	net := NewNetwork()
	a := net.AddSTE(SingleClass('a'), WithStart(StartAll))
	b := net.AddSTE(SingleClass('b'))
	net.Connect(a, b)
	net.AddSTE(SingleClass('c'), WithStart(StartAll)) // isolated
	comps := net.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0])+len(comps[1]) != 3 {
		t.Errorf("component sizes %d+%d != 3", len(comps[0]), len(comps[1]))
	}
}

func TestTraceCallback(t *testing.T) {
	net := buildSequenceMatcher("ab")
	sim := MustSimulator(net)
	var cycles []int
	var actives []int
	sim.Trace = func(tc CycleTrace) {
		cycles = append(cycles, tc.Cycle)
		actives = append(actives, len(tc.Active))
	}
	sim.Run([]byte("ab"))
	if len(cycles) != 2 || cycles[0] != 0 || cycles[1] != 1 {
		t.Errorf("trace cycles = %v", cycles)
	}
	if actives[0] != 1 || actives[1] != 1 {
		t.Errorf("trace active counts = %v", actives)
	}
}

func TestResetClearsState(t *testing.T) {
	net, c := buildCounterNet(10, CounterPulse)
	sim := MustSimulator(net)
	sim.Run([]byte("aaaa"))
	if sim.CounterValue(c) == 0 {
		t.Fatal("precondition: counter should be nonzero")
	}
	sim.Reset()
	if sim.CounterValue(c) != 0 {
		t.Error("Reset did not clear counter")
	}
	if sim.Cycle() != 0 {
		t.Error("Reset did not rewind cycle")
	}
}
