// Package index implements the approximate-kNN spatial indexing structures
// the paper benchmarks in Table V (§II-A, §III-D): randomized kd-trees,
// hierarchical k-means trees, and (multi-probe) locality sensitive hashing,
// all operating on binary codes under Hamming distance.
//
// Following §III-D, index traversal happens on the host while bucket scans
// are offloaded: an Index maps a query to candidate buckets whose contents
// are then scanned exactly (on the CPU baselines here, or on the AP via the
// partial-reconfiguration engine). Bucket size is naturally matched to one
// AP board configuration.
package index

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/knn"
)

// Index maps queries to candidate buckets of dataset vector IDs.
type Index interface {
	// Buckets returns the candidate buckets for q, nearest-first, up to
	// maxProbes buckets. Implementations must return at least one bucket
	// for any query when the index is non-empty.
	Buckets(q bitvec.Vector, maxProbes int) [][]int
	// NumBuckets returns the total number of leaf buckets.
	NumBuckets() int
}

// Search scans the candidate buckets of idx exactly and returns the k best
// neighbors found, (Dist, ID)-sorted. It also reports how many candidate
// vectors were scanned, the quantity the §V-B analytical model charges.
func Search(ds *bitvec.Dataset, idx Index, q bitvec.Vector, k, maxProbes int) ([]knn.Neighbor, int) {
	if k <= 0 {
		panic(fmt.Sprintf("index: k must be positive, got %d", k))
	}
	scanned := 0
	seen := map[int]bool{}
	var best []knn.Neighbor
	for _, bucket := range idx.Buckets(q, maxProbes) {
		var local []knn.Neighbor
		for _, id := range bucket {
			if seen[id] {
				continue
			}
			seen[id] = true
			scanned++
			local = append(local, knn.Neighbor{ID: id, Dist: ds.Hamming(id, q)})
		}
		knn.SortNeighbors(local)
		if len(local) > k {
			local = local[:k]
		}
		best = knn.MergeTopK(best, local, k)
	}
	return best, scanned
}

// Recall returns |got ∩ exact| / |exact|, the standard recall@k metric for
// approximate search quality.
func Recall(got, exact []knn.Neighbor) float64 {
	if len(exact) == 0 {
		return 1
	}
	ids := map[int]bool{}
	for _, n := range got {
		ids[n.ID] = true
	}
	hit := 0
	for _, n := range exact {
		if ids[n.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// varianceOrder returns dimension indices sorted by decreasing bit variance
// (p*(1-p) is maximal at p=0.5, so ordering by |p-0.5| ascending matches
// FLANN's highest-variance-dimension heuristic for binary data).
func varianceOrder(ds *bitvec.Dataset, ids []int) []int {
	dim := ds.Dim()
	ones := make([]int, dim)
	for _, id := range ids {
		v := ds.At(id)
		for b := 0; b < dim; b++ {
			if v.Bit(b) {
				ones[b]++
			}
		}
	}
	order := make([]int, dim)
	for i := range order {
		order[i] = i
	}
	n := float64(len(ids))
	score := func(b int) float64 {
		p := float64(ones[b]) / n
		return p * (1 - p)
	}
	sort.SliceStable(order, func(a, b int) bool { return score(order[a]) > score(order[b]) })
	return order
}
