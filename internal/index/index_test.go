package index

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/knn"
	"repro/internal/stats"
)

// clusteredDataset plants clusters so approximate indexes have structure to
// find: centers with small-radius perturbations.
func clusteredDataset(rng *stats.RNG, centers, perCenter, dim, radius int) *bitvec.Dataset {
	ds := bitvec.NewDataset(dim)
	for c := 0; c < centers; c++ {
		center := bitvec.Random(rng, dim)
		for i := 0; i < perCenter; i++ {
			v := center.Clone()
			for f := 0; f < radius; f++ {
				v.Flip(rng.Intn(dim))
			}
			ds.Append(v)
		}
	}
	return ds
}

func buildAll(t *testing.T, ds *bitvec.Dataset, leaf int) map[string]Index {
	t.Helper()
	rng := stats.NewRNG(42)
	kd, err := BuildKDForest(ds, DefaultKDForestConfig(leaf), rng)
	if err != nil {
		t.Fatal(err)
	}
	km, err := BuildKMeansTree(ds, DefaultKMeansConfig(leaf), rng)
	if err != nil {
		t.Fatal(err)
	}
	lsh, err := BuildLSH(ds, DefaultLSHConfig(ds.Len(), leaf), rng)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Index{"kd": kd, "kmeans": km, "lsh": lsh}
}

func TestIndexesCoverAllVectors(t *testing.T) {
	rng := stats.NewRNG(7)
	ds := clusteredDataset(rng, 8, 32, 64, 4)
	for name, idx := range buildAll(t, ds, 16) {
		if idx.NumBuckets() == 0 {
			t.Errorf("%s: no buckets", name)
		}
		// Every vector must be findable when used as its own query with
		// enough probes: recall of the exact nearest neighbor (itself).
		misses := 0
		for i := 0; i < ds.Len(); i += 7 {
			got, _ := Search(ds, idx, ds.At(i), 1, 64)
			if len(got) == 0 || got[0].Dist != 0 {
				misses++
			}
		}
		if misses > 0 {
			t.Errorf("%s: %d self-queries missed their own vector", name, misses)
		}
	}
}

func TestSearchReturnsSortedSubset(t *testing.T) {
	rng := stats.NewRNG(21)
	ds := clusteredDataset(rng, 6, 40, 48, 3)
	q := bitvec.Random(rng, 48)
	for name, idx := range buildAll(t, ds, 20) {
		got, scanned := Search(ds, idx, q, 5, 8)
		if scanned == 0 {
			t.Errorf("%s: scanned nothing", name)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Less(got[i-1]) {
				t.Errorf("%s: results out of order: %v", name, got)
			}
		}
		// Distances must be honest.
		for _, n := range got {
			if n.Dist != ds.Hamming(n.ID, q) {
				t.Errorf("%s: reported distance %d, actual %d", name, n.Dist, ds.Hamming(n.ID, q))
			}
		}
	}
}

func TestRecallImprovesWithProbes(t *testing.T) {
	rng := stats.NewRNG(99)
	ds := clusteredDataset(rng, 10, 50, 64, 4)
	queries := make([]bitvec.Vector, 30)
	for i := range queries {
		base := ds.At(rng.Intn(ds.Len())).Clone()
		base.Flip(rng.Intn(64))
		queries[i] = base
	}
	idx := buildAll(t, ds, 25)["lsh"]
	avgRecall := func(probes int) float64 {
		total := 0.0
		for _, q := range queries {
			exact := knn.Linear(ds, q, 4)
			got, _ := Search(ds, idx, q, 4, probes)
			total += Recall(got, exact)
		}
		return total / float64(len(queries))
	}
	lo, hi := avgRecall(1), avgRecall(40)
	if hi < lo {
		t.Errorf("recall decreased with more probes: %v -> %v", lo, hi)
	}
	if hi < 0.5 {
		t.Errorf("multi-probe recall = %v, want >= 0.5 on clustered data", hi)
	}
}

func TestRecallMetric(t *testing.T) {
	exact := []knn.Neighbor{{ID: 1, Dist: 0}, {ID: 2, Dist: 1}, {ID: 3, Dist: 2}}
	got := []knn.Neighbor{{ID: 1, Dist: 0}, {ID: 9, Dist: 1}, {ID: 3, Dist: 2}}
	if r := Recall(got, exact); r < 0.66 || r > 0.67 {
		t.Errorf("Recall = %v, want 2/3", r)
	}
	if r := Recall(nil, nil); r != 1 {
		t.Errorf("Recall of empty exact = %v, want 1", r)
	}
}

func TestKDForestBucketsBounded(t *testing.T) {
	rng := stats.NewRNG(3)
	ds := bitvec.RandomDataset(rng, 300, 32)
	kd, err := BuildKDForest(ds, KDForestConfig{Trees: 4, LeafSize: 20, TopDims: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	q := bitvec.Random(rng, 32)
	buckets := kd.Buckets(q, 0)
	if len(buckets) != 4 {
		t.Errorf("got %d buckets, want one per tree", len(buckets))
	}
	if kd.TraversalCost(q) == 0 {
		t.Error("zero traversal cost on a 300-vector forest")
	}
	if got := kd.Buckets(q, 2); len(got) != 2 {
		t.Errorf("maxProbes=2 returned %d buckets", len(got))
	}
}

func TestKMeansTraversalCostsDistances(t *testing.T) {
	rng := stats.NewRNG(4)
	ds := bitvec.RandomDataset(rng, 400, 32)
	km, err := BuildKMeansTree(ds, DefaultKMeansConfig(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	q := bitvec.Random(rng, 32)
	// §II-A: k-means traversal pays a distance calculation per centroid per
	// level — must be nonzero and larger than a kd-tree's bit compares.
	if km.TraversalCost(q) < 2 {
		t.Errorf("k-means traversal cost = %d, want >= branching", km.TraversalCost(q))
	}
}

func TestLSHProbesPerQuery(t *testing.T) {
	rng := stats.NewRNG(5)
	ds := bitvec.RandomDataset(rng, 256, 64)
	lsh, err := BuildLSH(ds, LSHConfig{Tables: 4, Bits: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := lsh.ProbesPerQuery(); got != 4*(1+4) {
		t.Errorf("ProbesPerQuery = %d, want 20", got)
	}
}

func TestLSHAlwaysReturnsABucket(t *testing.T) {
	rng := stats.NewRNG(6)
	ds := bitvec.RandomDataset(rng, 64, 32)
	lsh, err := BuildLSH(ds, LSHConfig{Tables: 2, Bits: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Adversarial query far from everything still yields candidates.
	for trial := 0; trial < 20; trial++ {
		q := bitvec.Random(rng, 32)
		if buckets := lsh.Buckets(q, 64); len(buckets) == 0 {
			t.Fatal("LSH returned no buckets")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	rng := stats.NewRNG(8)
	ds := bitvec.RandomDataset(rng, 10, 16)
	if _, err := BuildKDForest(ds, KDForestConfig{Trees: 0, LeafSize: 4}, rng); err == nil {
		t.Error("0 trees accepted")
	}
	if _, err := BuildKMeansTree(ds, KMeansConfig{Branching: 1, LeafSize: 4}, rng); err == nil {
		t.Error("branching 1 accepted")
	}
	if _, err := BuildLSH(ds, LSHConfig{Tables: 1, Bits: 64}, rng); err == nil {
		t.Error("hash width > dim accepted")
	}
}

func TestDefaultLSHConfigTargetsBucketSize(t *testing.T) {
	cfg := DefaultLSHConfig(1<<20, 512)
	// 2^20 / 2^11 = 512.
	if cfg.Bits != 11 {
		t.Errorf("Bits = %d, want 11", cfg.Bits)
	}
}
