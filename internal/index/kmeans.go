package index

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/knn"
	"repro/internal/stats"
)

// KMeansTree is the hierarchical k-means index of §II-A: the dataset is
// recursively partitioned into clusters around Hamming-space centroids
// ("unlike randomized kd-trees, traversing the k-means index requires a
// distance calculation at each node"). Centroids are per-bit majority votes,
// the Hamming-space analogue of the Euclidean mean.
type KMeansTree struct {
	ds      *bitvec.Dataset
	root    *kmNode
	buckets int
}

type kmNode struct {
	centroids []bitvec.Vector
	children  []*kmNode
	bucket    []int // leaf only
}

// KMeansConfig configures construction.
type KMeansConfig struct {
	Branching int // clusters per node (paper-style default 8)
	LeafSize  int // bucket capacity = one AP board configuration
	Iters     int // Lloyd iterations per node
}

// DefaultKMeansConfig mirrors a FLANN-like setup.
func DefaultKMeansConfig(leafSize int) KMeansConfig {
	return KMeansConfig{Branching: 8, LeafSize: leafSize, Iters: 5}
}

// BuildKMeansTree indexes ds.
func BuildKMeansTree(ds *bitvec.Dataset, cfg KMeansConfig, rng *stats.RNG) (*KMeansTree, error) {
	if cfg.Branching < 2 || cfg.LeafSize <= 0 {
		return nil, fmt.Errorf("index: k-means tree needs branching >= 2 (%d) and positive leaf size (%d)",
			cfg.Branching, cfg.LeafSize)
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 5
	}
	t := &KMeansTree{ds: ds}
	all := make([]int, ds.Len())
	for i := range all {
		all[i] = i
	}
	t.root = t.build(all, cfg, rng)
	return t, nil
}

func (t *KMeansTree) build(ids []int, cfg KMeansConfig, rng *stats.RNG) *kmNode {
	if len(ids) <= cfg.LeafSize {
		t.buckets++
		return &kmNode{bucket: append([]int(nil), ids...)}
	}
	centroids, assign := t.lloyd(ids, cfg, rng)
	// Degenerate clustering (all points identical): cut to a leaf.
	nonEmpty := 0
	for _, members := range assign {
		if len(members) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.buckets++
		return &kmNode{bucket: append([]int(nil), ids...)}
	}
	node := &kmNode{}
	for c, members := range assign {
		if len(members) == 0 {
			continue
		}
		node.centroids = append(node.centroids, centroids[c])
		node.children = append(node.children, t.build(members, cfg, rng))
	}
	return node
}

// lloyd runs k-means with Hamming majority centroids.
func (t *KMeansTree) lloyd(ids []int, cfg KMeansConfig, rng *stats.RNG) ([]bitvec.Vector, [][]int) {
	k := cfg.Branching
	if k > len(ids) {
		k = len(ids)
	}
	// Seed centroids with distinct random members.
	perm := rng.Perm(len(ids))
	centroids := make([]bitvec.Vector, k)
	for i := 0; i < k; i++ {
		centroids[i] = t.ds.At(ids[perm[i]]).Clone()
	}
	var assign [][]int
	for iter := 0; iter < cfg.Iters; iter++ {
		assign = make([][]int, k)
		for _, id := range ids {
			best, bestD := 0, t.ds.Dim()+1
			for c, cent := range centroids {
				if d := t.ds.At(id).Hamming(cent); d < bestD {
					best, bestD = c, d
				}
			}
			assign[best] = append(assign[best], id)
		}
		for c, members := range assign {
			if len(members) == 0 {
				continue
			}
			centroids[c] = majorityCentroid(t.ds, members)
		}
	}
	return centroids, assign
}

// majorityCentroid returns the per-bit majority vote of the members, the
// Hamming-distance minimizer.
func majorityCentroid(ds *bitvec.Dataset, ids []int) bitvec.Vector {
	dim := ds.Dim()
	out := bitvec.New(dim)
	for b := 0; b < dim; b++ {
		ones := 0
		for _, id := range ids {
			if ds.At(id).Bit(b) {
				ones++
			}
		}
		if 2*ones > len(ids) {
			out.Set(b, true)
		}
	}
	return out
}

// Buckets descends to the leaf whose centroid chain is nearest the query;
// maxProbes > 1 additionally explores the runner-up children at the root.
func (t *KMeansTree) Buckets(q bitvec.Vector, maxProbes int) [][]int {
	if maxProbes <= 0 {
		maxProbes = 1
	}
	var out [][]int
	var descend func(n *kmNode, probes int)
	descend = func(n *kmNode, probes int) {
		if n.bucket != nil || len(n.children) == 0 {
			out = append(out, n.bucket)
			return
		}
		order := centroidOrder(n, q)
		for i := 0; i < probes && i < len(order); i++ {
			remaining := 1
			if i == 0 {
				remaining = probes - min(probes-1, len(order)-1)
			}
			descend(n.children[order[i]], remaining)
			if len(out) >= probes {
				return
			}
		}
	}
	descend(t.root, maxProbes)
	if len(out) > maxProbes {
		out = out[:maxProbes]
	}
	return out
}

func centroidOrder(n *kmNode, q bitvec.Vector) []int {
	ns := make([]knn.Neighbor, len(n.centroids))
	for i, c := range n.centroids {
		ns[i] = knn.Neighbor{ID: i, Dist: c.Hamming(q)}
	}
	knn.SortNeighbors(ns)
	out := make([]int, len(ns))
	for i, nb := range ns {
		out[i] = nb.ID
	}
	return out
}

// NumBuckets returns the number of leaf buckets.
func (t *KMeansTree) NumBuckets() int { return t.buckets }

// TraversalCost returns the number of full distance calculations one query
// spends descending to its primary leaf — the k-means-specific cost §II-A
// highlights.
func (t *KMeansTree) TraversalCost(q bitvec.Vector) int {
	cost := 0
	n := t.root
	for n.bucket == nil && len(n.children) > 0 {
		cost += len(n.centroids)
		best := centroidOrder(n, q)[0]
		n = n.children[best]
	}
	return cost
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
