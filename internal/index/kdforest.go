package index

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/stats"
)

// KDForest is the randomized kd-tree index of §II-A: several trees, each
// splitting on a dimension chosen randomly among the highest-variance
// dimensions, with leaf buckets scanned linearly at query time. On binary
// data a split sends bit-0 vectors left and bit-1 vectors right.
type KDForest struct {
	ds    *bitvec.Dataset
	trees []*kdNode
	// LeafSize is the bucket capacity; the paper sets it to one AP board
	// configuration (§V-B).
	leafSize int
	buckets  int
}

type kdNode struct {
	dim    int // split dimension; -1 for leaves
	left   *kdNode
	right  *kdNode
	bucket []int // leaf only
}

// KDForestConfig configures construction.
type KDForestConfig struct {
	Trees    int // paper: 4 parallel kd-trees
	LeafSize int
	// TopDims is the pool of highest-variance dimensions the random split
	// choice draws from (FLANN uses 5).
	TopDims int
}

// DefaultKDForestConfig mirrors the paper's setup: 4 trees.
func DefaultKDForestConfig(leafSize int) KDForestConfig {
	return KDForestConfig{Trees: 4, LeafSize: leafSize, TopDims: 5}
}

// BuildKDForest indexes ds.
func BuildKDForest(ds *bitvec.Dataset, cfg KDForestConfig, rng *stats.RNG) (*KDForest, error) {
	if cfg.Trees <= 0 || cfg.LeafSize <= 0 {
		return nil, fmt.Errorf("index: kd-forest needs positive trees (%d) and leaf size (%d)", cfg.Trees, cfg.LeafSize)
	}
	if cfg.TopDims <= 0 {
		cfg.TopDims = 5
	}
	f := &KDForest{ds: ds, leafSize: cfg.LeafSize}
	all := make([]int, ds.Len())
	for i := range all {
		all[i] = i
	}
	for t := 0; t < cfg.Trees; t++ {
		f.trees = append(f.trees, f.split(all, cfg, rng, 0))
	}
	return f, nil
}

func (f *KDForest) split(ids []int, cfg KDForestConfig, rng *stats.RNG, depth int) *kdNode {
	if len(ids) <= cfg.LeafSize || depth >= f.ds.Dim() {
		bucket := append([]int(nil), ids...)
		f.buckets++
		return &kdNode{dim: -1, bucket: bucket}
	}
	order := varianceOrder(f.ds, ids)
	pool := cfg.TopDims
	if pool > len(order) {
		pool = len(order)
	}
	// Random choice among the top-variance dimensions decorrelates trees.
	splitDim := order[rng.Intn(pool)]
	var left, right []int
	for _, id := range ids {
		if f.ds.At(id).Bit(splitDim) {
			right = append(right, id)
		} else {
			left = append(left, id)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		// Degenerate split (constant bit slipped through): make a leaf.
		bucket := append([]int(nil), ids...)
		f.buckets++
		return &kdNode{dim: -1, bucket: bucket}
	}
	return &kdNode{
		dim:   splitDim,
		left:  f.split(left, cfg, rng, depth+1),
		right: f.split(right, cfg, rng, depth+1),
	}
}

// Buckets descends each tree by the query's bits and returns the leaf
// buckets, one per tree, deduplication left to the caller.
func (f *KDForest) Buckets(q bitvec.Vector, maxProbes int) [][]int {
	var out [][]int
	for _, root := range f.trees {
		if maxProbes > 0 && len(out) >= maxProbes {
			break
		}
		n := root
		for n.dim >= 0 {
			if q.Bit(n.dim) {
				n = n.right
			} else {
				n = n.left
			}
		}
		out = append(out, n.bucket)
	}
	return out
}

// NumBuckets returns the number of leaf buckets across all trees.
func (f *KDForest) NumBuckets() int { return f.buckets }

// TraversalCost returns the comparisons one query spends descending the
// forest: kd-trees compare a single bit per level (§II-A notes index
// traversal is cheap relative to k-means).
func (f *KDForest) TraversalCost(q bitvec.Vector) int {
	cost := 0
	for _, root := range f.trees {
		n := root
		for n.dim >= 0 {
			cost++
			if q.Bit(n.dim) {
				n = n.right
			} else {
				n = n.left
			}
		}
	}
	return cost
}
