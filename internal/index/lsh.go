package index

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/stats"
)

// LSH is the locality-sensitive-hashing index of §II-A: L hash tables, each
// hashing on a random sample of bit positions (bit sampling is the canonical
// LSH family for Hamming space), with optional multi-probe expansion — the
// MPLSH variant of Table V probes neighboring buckets at hash distance one
// in addition to the exact bucket.
type LSH struct {
	ds     *bitvec.Dataset
	tables []lshTable
}

type lshTable struct {
	bits    []int // sampled bit positions forming the hash
	buckets map[uint64][]int
}

// LSHConfig configures construction.
type LSHConfig struct {
	Tables int // paper: "we use four hash tables for LSH"
	Bits   int // hash width per table
}

// DefaultLSHConfig mirrors the paper's four-table setup with a hash width
// that targets the given expected bucket size for dataset size n.
func DefaultLSHConfig(n, targetBucket int) LSHConfig {
	bits := 0
	for (n>>uint(bits)) > targetBucket && bits < 20 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return LSHConfig{Tables: 4, Bits: bits}
}

// BuildLSH indexes ds.
func BuildLSH(ds *bitvec.Dataset, cfg LSHConfig, rng *stats.RNG) (*LSH, error) {
	if cfg.Tables <= 0 || cfg.Bits <= 0 || cfg.Bits > 63 {
		return nil, fmt.Errorf("index: LSH needs positive tables (%d) and bits in [1,63] (%d)", cfg.Tables, cfg.Bits)
	}
	if cfg.Bits > ds.Dim() {
		return nil, fmt.Errorf("index: LSH hash width %d exceeds dimensionality %d", cfg.Bits, ds.Dim())
	}
	l := &LSH{ds: ds}
	for t := 0; t < cfg.Tables; t++ {
		perm := rng.Perm(ds.Dim())
		table := lshTable{bits: perm[:cfg.Bits], buckets: map[uint64][]int{}}
		for id := 0; id < ds.Len(); id++ {
			h := table.hash(ds.At(id))
			table.buckets[h] = append(table.buckets[h], id)
		}
		l.tables = append(l.tables, table)
	}
	return l, nil
}

func (t lshTable) hash(v bitvec.Vector) uint64 {
	var h uint64
	for i, b := range t.bits {
		if v.Bit(b) {
			h |= 1 << uint(i)
		}
	}
	return h
}

// Buckets returns the exact bucket of each table, then (multi-probe) the
// hash-distance-1 buckets, nearest tables first, up to maxProbes buckets.
func (l *LSH) Buckets(q bitvec.Vector, maxProbes int) [][]int {
	if maxProbes <= 0 {
		maxProbes = len(l.tables)
	}
	var out [][]int
	add := func(b []int) bool {
		if len(b) > 0 {
			out = append(out, b)
		}
		return len(out) >= maxProbes
	}
	hashes := make([]uint64, len(l.tables))
	for i, t := range l.tables {
		hashes[i] = t.hash(q)
		if add(t.buckets[hashes[i]]) {
			return out
		}
	}
	// Multi-probe: flip one hash bit at a time.
	for i, t := range l.tables {
		for b := 0; b < len(t.bits); b++ {
			if add(t.buckets[hashes[i]^(1<<uint(b))]) {
				return out
			}
		}
	}
	if len(out) == 0 {
		// Nothing hashed nearby: fall back to the first table's largest
		// bucket so the contract (>= 1 bucket) holds.
		var biggest []int
		for _, b := range l.tables[0].buckets {
			if len(b) > len(biggest) {
				biggest = b
			}
		}
		out = append(out, biggest)
	}
	return out
}

// NumBuckets returns the number of non-empty buckets across tables.
func (l *LSH) NumBuckets() int {
	n := 0
	for _, t := range l.tables {
		n += len(t.buckets)
	}
	return n
}

// ProbesPerQuery returns the bucket probes a full multi-probe query issues:
// one exact bucket per table plus one per hash bit per table.
func (l *LSH) ProbesPerQuery() int {
	n := 0
	for _, t := range l.tables {
		n += 1 + len(t.bits)
	}
	return n
}
