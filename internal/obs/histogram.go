// Package obs is the observability layer of the stack: lock-free
// log-bucketed latency histograms, a named-metric registry with Prometheus
// text exposition, and a lightweight per-request span recorder. Every tier
// records into it — the serve batcher's queue wait, the kernel's scan and
// merge, the WAL's append and fsync, the cluster router's per-shard legs —
// and both server binaries expose the same registry on GET /metrics and as
// quantile summaries inside /v1/stats.
//
// The histogram is built for the hot path: Record is a handful of atomic
// adds with no locks and no allocation, so instrumenting a microsecond-scale
// scan costs well under a percent. Buckets are log-linear (HDR-style): 16
// sub-buckets per power of two, giving a worst-case relative quantile error
// of 1/16 ≈ 6% across the full nanosecond-to-hours range.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits is the log-linear resolution: 2^subBits sub-buckets per
	// power of two, bounding relative bucket width to 2^-subBits.
	subBits = 4
	// subCount is the sub-buckets per octave (16).
	subCount = 1 << subBits
	// numBuckets covers every non-negative int64 nanosecond value: values
	// below subCount get exact unit buckets, every octave above adds
	// subCount more. bits.Len64 of the largest int64 is 63, so the highest
	// index is (63-subBits)*subCount + subCount - 1 < numBuckets.
	numBuckets = (64 - subBits) * subCount
)

// bucketIndex maps a nanosecond value to its log-linear bucket. Negative
// values clamp to bucket 0 (they cannot happen from monotonic timing, but a
// histogram must never index out of range on hostile input).
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subCount {
		return int(v)
	}
	h := bits.Len64(uint64(v))     // 2^(h-1) <= v < 2^h, h >= subBits+1
	shift := uint(h - 1 - subBits) // scale the mantissa into [subCount, 2*subCount)
	return (h-subBits-1)*subCount + int(v>>shift)
}

// bucketUpper is the largest nanosecond value that maps to bucket i — the
// inclusive upper bound quantile interpolation and exposition use.
func bucketUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	octave := i/subCount - 1 // octaves above the exact range
	mantissa := int64(i%subCount + subCount)
	return (mantissa+1)<<uint(octave) - 1
}

// bucketLower is the smallest nanosecond value that maps to bucket i.
func bucketLower(i int) int64 {
	if i == 0 {
		return 0
	}
	return bucketUpper(i-1) + 1
}

// Histogram is a lock-free log-bucketed latency histogram. Record is safe
// for concurrent use from any number of goroutines; Snapshot can race
// records freely and observes each one atomically (a snapshot taken mid-add
// may miss the newest record, never tear one).
type Histogram struct {
	name, help string
	counts     []atomic.Int64
	count      atomic.Int64
	sum        atomic.Int64
	max        atomic.Int64
	minute     *Window
}

// newHistogram builds an unregistered histogram; callers go through a
// Registry so names stay unique per process.
func newHistogram(name, help string) *Histogram {
	h := &Histogram{name: name, help: help, counts: make([]atomic.Int64, numBuckets)}
	h.minute = NewWindow(h, defaultWindowSlots, defaultWindowWidth)
	return h
}

// NewUnregisteredHistogram builds a histogram outside any Registry — for
// per-instance series (e.g. one per cluster replica) whose quantiles feed
// decisions rather than the /metrics exposition.
func NewUnregisteredHistogram(name, help string) *Histogram {
	return newHistogram(name, help)
}

// Name returns the metric name the histogram was registered under.
func (h *Histogram) Name() string { return h.name }

// Record adds one duration sample. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) { h.RecordNS(int64(d)) }

// RecordNS adds one nanosecond sample: two unconditional atomic adds, one
// bucket add, and a max CAS that only loops while the maximum is actually
// moving — after warmup it is a single load.
func (h *Histogram) RecordNS(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot copies the histogram's current state. Snapshots are plain values:
// mergeable, quantile-queryable, safe to retain.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Name:   h.name,
		Help:   h.help,
		Counts: make([]int64, numBuckets),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Max:    h.max.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Snapshot is a point-in-time copy of a Histogram, detached from its atomic
// backing store. The zero value is an empty histogram.
type Snapshot struct {
	Name   string
	Help   string
	Counts []int64
	Count  int64
	Sum    int64
	Max    int64
}

// Merge returns the combination of two snapshots — bucket-wise addition, so
// merging is associative and commutative and a merged quantile equals the
// quantile of the concatenated sample streams (up to bucket resolution).
// The receiver's Name/Help win when set.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Name:   s.Name,
		Help:   s.Help,
		Counts: make([]int64, numBuckets),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
		Max:    s.Max,
	}
	if out.Name == "" {
		out.Name, out.Help = o.Name, o.Help
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	copy(out.Counts, s.Counts)
	for i, c := range o.Counts {
		out.Counts[i] += c
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) in nanoseconds by linear
// interpolation inside the bucket holding the target rank. An empty
// snapshot returns 0; q outside [0,1] clamps.
func (s Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is 1-based: the ceil(q*count)-th smallest sample, so q=1 is the
	// largest and q=0 the smallest.
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo, hi := bucketLower(i), bucketUpper(i)
			if hi > s.Max && s.Max >= lo {
				hi = s.Max // the tracked max tightens the top bucket
			}
			frac := float64(rank-seen) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		seen += c
	}
	return s.Max
}

// Mean returns the mean sample in nanoseconds, 0 when empty.
func (s Snapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Summary is the compact quantile block /v1/stats reports per metric. JSON
// field names are part of the serving API.
type Summary struct {
	Count  int64 `json:"count"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// Summary condenses the snapshot into the /v1/stats quantile block.
func (s Snapshot) Summary() Summary {
	return Summary{
		Count:  s.Count,
		MeanNS: s.Mean(),
		P50NS:  s.Quantile(0.50),
		P90NS:  s.Quantile(0.90),
		P99NS:  s.Quantile(0.99),
		MaxNS:  s.Max,
	}
}
