package obs

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Version is the build's human-readable revision, injected at link time:
//
//	go build -ldflags "-X repro/internal/obs.Version=v1.2.3"
//
// Unset builds fall back to the VCS revision recorded by the Go toolchain,
// then to "dev".
var Version = ""

// BuildVersion resolves the effective build version (see Version).
func BuildVersion() string {
	if Version != "" {
		return Version
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				return s.Value[:12]
			}
		}
	}
	return "dev"
}

// WriteBuildInfo emits the standard build-attribution gauge, so dashboards
// can pin every series scrape to an exact binary:
//
//	apknn_build_info{version="abc123",go="go1.22.1"} 1
func WriteBuildInfo(w io.Writer) {
	fmt.Fprintf(w, "# HELP apknn_build_info Build and runtime identity of this process (constant 1).\n")
	fmt.Fprintf(w, "# TYPE apknn_build_info gauge\n")
	fmt.Fprintf(w, "apknn_build_info{version=%q,go=%q} 1\n", BuildVersion(), runtime.Version())
}
