package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// RequestIDHeader is the HTTP header request identity travels in: apserve
// assigns one when the caller didn't, aprouter forwards the caller's on
// every scatter leg, and both echo it on the response — so one ID names a
// request across the whole cluster and ties the shard-side slow-query log
// line back to the caller.
const RequestIDHeader = "X-Request-ID"

// TraceContextHeader carries span-tree parentage across the router→shard
// hop: "traceID/parentSpanID". The shard adopts the trace ID for its own
// tree and records the parent span ID as a root attribute, so the router
// can later stitch the shard's tree under the exact scatter leg that
// produced it (hedged legs carry distinct span IDs).
const TraceContextHeader = "X-Trace-Context"

// MaxRequestIDLen caps a caller-supplied request ID after sanitization.
// Long enough for a UUID plus prefix, short enough that a hostile header
// cannot bloat every log line and trace record it rides into.
const MaxRequestIDLen = 64

type ctxKey int

const (
	requestIDKey ctxKey = iota
	traceKey
	spanKey
	traceContextKey
)

// NewRequestID returns a fresh 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to a
		// constant rather than panicking on a telemetry path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a fresh 8-hex-char span ID — unique enough to tell
// sibling scatter legs of one trace apart, which is all stitching needs.
func NewSpanID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

// SanitizeRequestID filters a caller-supplied request ID down to the
// charset [A-Za-z0-9._-] and caps its length, so a hostile X-Request-ID
// header cannot inject forged fields into structured log lines or trace
// attributes. Disallowed bytes are dropped; an ID with nothing left
// returns "" and the caller assigns a fresh one.
func SanitizeRequestID(id string) string {
	if len(id) > 4*MaxRequestIDLen {
		// Don't even scan an absurd header; take a bounded prefix first.
		id = id[:4*MaxRequestIDLen]
	}
	var b strings.Builder
	for i := 0; i < len(id) && b.Len() < MaxRequestIDLen; i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b.WriteByte(c)
		}
	}
	return b.String()
}

// FormatTraceContext renders the TraceContextHeader value.
func FormatTraceContext(traceID, spanID string) string {
	return traceID + "/" + spanID
}

// ParseTraceContext splits a TraceContextHeader value into its sanitized
// trace and parent-span IDs. Malformed or empty values report ok=false.
func ParseTraceContext(v string) (traceID, spanID string, ok bool) {
	i := strings.IndexByte(v, '/')
	if i < 0 {
		return "", "", false
	}
	traceID = SanitizeRequestID(v[:i])
	spanID = SanitizeRequestID(v[i+1:])
	if traceID == "" || spanID == "" {
		return "", "", false
	}
	return traceID, spanID, true
}

// WithRequestID attaches a request ID to the context; Client.do forwards it
// upstream as the RequestIDHeader.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the context's request ID, "" when none was attached.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

type traceContext struct {
	traceID string
	spanID  string
}

// WithTraceContext attaches outgoing span parentage to the context;
// Client.do forwards it upstream as the TraceContextHeader. The router sets
// one per scatter attempt, each with that attempt's own span ID.
func WithTraceContext(ctx context.Context, traceID, spanID string) context.Context {
	return context.WithValue(ctx, traceContextKey, traceContext{traceID: traceID, spanID: spanID})
}

// TraceContext returns the context's outgoing span parentage, ok=false when
// none was attached.
func TraceContext(ctx context.Context) (traceID, spanID string, ok bool) {
	tc, ok := ctx.Value(traceContextKey).(traceContext)
	return tc.traceID, tc.spanID, ok
}

// Stage is one named timing inside a request's span breakdown — the flat
// projection of the span tree the slow-query log prints.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Attr is one key/value annotation on a span, kept in set order.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed node of a request's trace tree. Spans are safe for
// concurrent use: sibling children may be created and ended from different
// goroutines (hedged scatter legs, flush workers). Every method is nil-safe
// — a nil *Span ignores calls and StartChild returns nil — so untraced code
// paths pay only a nil check.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// NewSpan starts a detached root span, clocked from now. The batcher uses
// one per flush and grafts it into every member's tree afterwards.
func NewSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild creates and returns a running child span, clocked from now.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// ObserveChild appends an already-completed child span that ended now and
// lasted d — the span form of the flat Trace.Observe.
func (s *Span) ObserveChild(name string, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	child := &Span{name: name, start: time.Now().Add(-d), dur: d, ended: true}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// AttachChild grafts an existing (completed) span as a child — how one
// flush's backend span lands in every coalesced member's tree. The subtree
// may be shared between parents; it must not be mutated after attachment.
func (s *Span) AttachChild(child *Span) {
	if s == nil || child == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
}

// End closes the span, fixing its duration at now−start. Second and later
// calls are ignored, so defer sp.End() composes with explicit ends.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// EndIn closes the span with an explicit duration.
func (s *Span) EndIn(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = d
		s.ended = true
	}
	s.mu.Unlock()
}

// SetAttr annotates the span; a repeated key overwrites in place.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Attr returns the span's value for key, "" when unset.
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Name returns the span's name, "" for nil.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// StartTime returns when the span started.
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the recorded duration; a still-running span reports its
// elapsed time so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// Children returns a snapshot of the span's direct children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Wire deep-copies the span tree into its JSON wire form. Safe to call
// while sibling branches are still being recorded.
func (s *Span) Wire() *WireSpan {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	ws := &WireSpan{
		Name:        s.name,
		StartUnixNS: s.start.UnixNano(),
		DurNS:       int64(s.dur),
	}
	if !s.ended {
		ws.DurNS = int64(time.Since(s.start))
	}
	if len(s.attrs) > 0 {
		ws.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			ws.Attrs[a.Key] = a.Value
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		ws.Children = append(ws.Children, c.Wire())
	}
	return ws
}

// WireSpan is the JSON form of one span — what /v1/debug/traces serves and
// what the router stitches shard-side trees into.
type WireSpan struct {
	Name        string            `json:"name"`
	StartUnixNS int64             `json:"start_unix_ns"`
	DurNS       int64             `json:"dur_ns"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	Children    []*WireSpan       `json:"children,omitempty"`
}

// Attr returns the wire span's value for key, "" when unset.
func (ws *WireSpan) Attr(key string) string {
	if ws == nil {
		return ""
	}
	return ws.Attrs[key]
}

// Find returns the first span named name in a depth-first walk, the
// receiver included; nil when absent.
func (ws *WireSpan) Find(name string) *WireSpan {
	if ws == nil {
		return nil
	}
	if ws.Name == name {
		return ws
	}
	for _, c := range ws.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// Clone deep-copies the wire tree — stitching grafts fetched shard trees
// into a copy so the recorder's retained records stay untouched.
func (ws *WireSpan) Clone() *WireSpan {
	if ws == nil {
		return nil
	}
	out := &WireSpan{Name: ws.Name, StartUnixNS: ws.StartUnixNS, DurNS: ws.DurNS}
	if len(ws.Attrs) > 0 {
		out.Attrs = make(map[string]string, len(ws.Attrs))
		for k, v := range ws.Attrs {
			out.Attrs[k] = v
		}
	}
	for _, c := range ws.Children {
		out.Children = append(out.Children, c.Clone())
	}
	return out
}

// Walk visits every span depth-first, the receiver first.
func (ws *WireSpan) Walk(fn func(*WireSpan)) {
	if ws == nil {
		return
	}
	fn(ws)
	for _, c := range ws.Children {
		c.Walk(fn)
	}
}

// Trace is the per-request span tree: the handler creates one, every tier
// the request crosses records spans into it, the slow-query log prints the
// flattened breakdown and the flight recorder retains the whole tree.
// Observe and Stages are safe for concurrent use (a flush goroutine records
// backend time while the handler goroutine waits); a nil *Trace ignores
// every call, so deep layers can observe unconditionally.
type Trace struct {
	ID    string
	Start time.Time

	root *Span
}

// NewTrace begins a trace whose root span carries rootName.
func NewTrace(id, rootName string) *Trace {
	root := NewSpan(rootName)
	return &Trace{ID: id, Start: root.start, root: root}
}

// StartTrace begins a trace for one request with the generic root name.
func StartTrace(id string) *Trace {
	return NewTrace(id, "request")
}

// Root returns the trace's root span, nil for a nil trace.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Observe appends one completed stage as a direct child of the root — the
// flat recording form deep layers keep using. Nil-safe.
func (t *Trace) Observe(stage string, d time.Duration) {
	if t == nil {
		return
	}
	t.root.ObserveChild(stage, d)
}

// Stages flattens the span tree depth-first (root excluded) into the flat
// stage list the slow-query log prints.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	var out []Stage
	var walk func(s *Span)
	walk = func(s *Span) {
		for _, c := range s.Children() {
			out = append(out, Stage{Name: c.Name(), Dur: c.Duration()})
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Attrs renders the trace as slog attributes — request_id, total, then one
// attribute per stage — the one line format of the slow-query log.
func (t *Trace) Attrs(total time.Duration) []slog.Attr {
	attrs := []slog.Attr{
		slog.String("request_id", t.ID),
		slog.Duration("total", total),
	}
	for _, s := range t.Stages() {
		attrs = append(attrs, slog.Duration("stage_"+s.Name, s.Dur))
	}
	return attrs
}

// WithTrace attaches a span recorder to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey, t)
}

// TraceFrom returns the context's span recorder, nil (safe to Observe on)
// when the request is not being traced.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// WithSpan marks sp as the context's current span, so nested layers attach
// their children under it rather than under the trace root.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		// Untraced request: don't grow the context chain — every value
		// wrapper is an allocation plus a longer Value() walk on the
		// search hot path.
		return ctx
	}
	return context.WithValue(ctx, spanKey, sp)
}

// CurrentSpan returns the context's current span, falling back to the
// attached trace's root; nil (safe to use) when the request is untraced.
func CurrentSpan(ctx context.Context) *Span {
	if sp, _ := ctx.Value(spanKey).(*Span); sp != nil {
		return sp
	}
	return TraceFrom(ctx).Root()
}

// StartSpan starts a child of the context's current span. The caller must
// End it; a nil result (untraced request) ends as a no-op.
func StartSpan(ctx context.Context, name string) *Span {
	return CurrentSpan(ctx).StartChild(name)
}
