package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"sync"
	"time"
)

// RequestIDHeader is the HTTP header request identity travels in: apserve
// assigns one when the caller didn't, aprouter forwards the caller's on
// every scatter leg, and both echo it on the response — so one ID names a
// request across the whole cluster and ties the shard-side slow-query log
// line back to the caller.
const RequestIDHeader = "X-Request-ID"

type ctxKey int

const (
	requestIDKey ctxKey = iota
	traceKey
)

// NewRequestID returns a fresh 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to a
		// constant rather than panicking on a telemetry path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID attaches a request ID to the context; Client.do forwards it
// upstream as the RequestIDHeader.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the context's request ID, "" when none was attached.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// Stage is one named timing inside a request's span breakdown.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Trace is the per-request span recorder: the handler creates one, every
// tier the request crosses observes its stage into it, and the slow-query
// log prints the assembled breakdown. Observe and Stages are safe for
// concurrent use (a flush goroutine records backend time while the handler
// goroutine waits); a nil *Trace ignores every call, so deep layers can
// observe unconditionally.
type Trace struct {
	ID    string
	Start time.Time

	mu     sync.Mutex
	stages []Stage
}

// StartTrace begins a span for one request.
func StartTrace(id string) *Trace {
	return &Trace{ID: id, Start: time.Now()}
}

// Observe appends one stage timing. Nil-safe.
func (t *Trace) Observe(stage string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = append(t.stages, Stage{Name: stage, Dur: d})
	t.mu.Unlock()
}

// Stages returns a copy of the recorded stages in observation order.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Stage, len(t.stages))
	copy(out, t.stages)
	return out
}

// Attrs renders the span as slog attributes — request_id, total, then one
// attribute per stage — the one line format of the slow-query log.
func (t *Trace) Attrs(total time.Duration) []slog.Attr {
	attrs := []slog.Attr{
		slog.String("request_id", t.ID),
		slog.Duration("total", total),
	}
	for _, s := range t.Stages() {
		attrs = append(attrs, slog.Duration("stage_"+s.Name, s.Dur))
	}
	return attrs
}

// WithTrace attaches a span recorder to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey, t)
}

// TraceFrom returns the context's span recorder, nil (safe to Observe on)
// when the request is not being traced.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}
