package obs

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWindowQuantilesAgainstOracle is the per-window property test: record
// a distinct sample distribution into each slot-width of simulated time,
// and at every step require the window's quantiles to match the sorted
// oracle built from exactly the samples still inside the window.
func TestWindowQuantilesAgainstOracle(t *testing.T) {
	const (
		slots     = 6
		width     = 10 * time.Second
		perEpoch  = 3000
		numEpochs = 15
	)
	rng := rand.New(rand.NewSource(99))
	h := newHistogram("win", "")
	w := NewWindow(h, slots, width)
	base := time.Unix(1_700_000_000, 0)

	epochs := make([][]int64, 0, numEpochs)
	for e := 0; e < numEpochs; e++ {
		now := base.Add(time.Duration(e) * width)
		w.Snapshot(now) // rotate to this epoch before recording into it
		// Shift the distribution every epoch so stale samples leaking into
		// the window would move the quantiles detectably.
		scale := int64(1000 * (e + 1))
		samples := make([]int64, perEpoch)
		for i := range samples {
			samples[i] = scale + rng.Int63n(scale)
			h.RecordNS(samples[i])
		}
		epochs = append(epochs, samples)

		got := w.Snapshot(now)
		// The window holds this epoch and the previous slots-1 epochs
		// (the oldest boundary is slots-1 rotations back).
		lo := e - (slots - 1)
		if lo < 0 {
			lo = 0
		}
		var oracle []int64
		for _, ep := range epochs[lo:] {
			oracle = append(oracle, ep...)
		}
		sort.Slice(oracle, func(i, j int) bool { return oracle[i] < oracle[j] })
		if got.Count != int64(len(oracle)) {
			t.Fatalf("epoch %d: window count %d, want %d", e, got.Count, len(oracle))
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			est := got.Quantile(q)
			want := oracleQuantile(oracle, q)
			tol := int64(float64(want)*2/subCount) + 2
			if est < want-tol || est > want+tol {
				t.Errorf("epoch %d q%.2f = %d, oracle %d (tol %d)", e, q, est, want, tol)
			}
		}
		// Windowed max approximates from the top delta bucket: it must be
		// within one bucket width above the true max and never below it by
		// more than bucket resolution.
		trueMax := oracle[len(oracle)-1]
		if got.Max < trueMax-int64(float64(trueMax)/subCount)-1 || got.Max > bucketUpper(bucketIndex(trueMax)) {
			t.Errorf("epoch %d windowed max %d, true %d", e, got.Max, trueMax)
		}
	}
}

// TestWindowExpiry pins that samples actually leave: after slots epochs of
// silence the window reads empty even though the cumulative histogram does
// not, and the zero-count window produces all-zero summaries.
func TestWindowExpiry(t *testing.T) {
	h := newHistogram("expire", "")
	w := NewWindow(h, 3, time.Second)
	base := time.Unix(1_700_000_000, 0)
	w.Snapshot(base)
	for i := 0; i < 100; i++ {
		h.RecordNS(int64(1000 + i))
	}
	if got := w.Snapshot(base); got.Count != 100 {
		t.Fatalf("fresh window count %d, want 100", got.Count)
	}
	// Rotate past every slot with no new records.
	for e := 1; e <= 4; e++ {
		w.Snapshot(base.Add(time.Duration(e) * time.Second))
	}
	got := w.Snapshot(base.Add(5 * time.Second))
	if got.Count != 0 || got.Sum != 0 || got.Max != 0 {
		t.Fatalf("expired window = {count %d, sum %d, max %d}, want zeros", got.Count, got.Sum, got.Max)
	}
	if s := got.Summary(); s.P50NS != 0 || s.P99NS != 0 || s.MeanNS != 0 {
		t.Fatalf("zero-count window summary not zero: %+v", s)
	}
	if h.Snapshot().Count != 100 {
		t.Fatal("cumulative histogram lost samples on window expiry")
	}
}

// TestWindowZeroAndClamps covers the edges: a never-rotated window reports
// everything since boot; Sub with a zero snapshot is identity; Sub clamps
// negative deltas instead of corrupting quantile ranks; missed rotations
// clamp to the ring size.
func TestWindowZeroAndClamps(t *testing.T) {
	h := newHistogram("edge", "")
	for i := 0; i < 50; i++ {
		h.RecordNS(777)
	}
	w := NewWindow(h, 6, 10*time.Second)
	if got := w.Snapshot(time.Unix(1_700_000_000, 0)); got.Count != 50 {
		t.Fatalf("young window count %d, want everything since boot (50)", got.Count)
	}

	live := h.Snapshot()
	if d := live.Sub(Snapshot{}); d.Count != live.Count || d.Sum != live.Sum {
		t.Fatalf("Sub(zero) changed count/sum: %d/%d vs %d/%d", d.Count, d.Sum, live.Count, live.Sum)
	}
	// An "older" snapshot with a larger bucket count (impossible except under
	// racing copies) must clamp, not go negative.
	older := live
	older.Counts = append([]int64(nil), live.Counts...)
	older.Counts[bucketIndex(777)] += 5
	older.Sum += 5 * 777
	d := live.Sub(older)
	if d.Count != 0 || d.Sum != 0 {
		t.Fatalf("Sub did not clamp racing deltas: count %d sum %d", d.Count, d.Sum)
	}

	// A gap far longer than the ring: epochs clamp, window empties, and the
	// ring head stays in range.
	w.Snapshot(time.Unix(1_700_000_000, 0).Add(1000 * time.Second))
	if got := w.Snapshot(time.Unix(1_700_000_000, 0).Add(1001 * time.Second)); got.Count != 0 {
		t.Fatalf("window after 100-slot gap count %d, want 0", got.Count)
	}
}

// TestWindowMergedRingOracle is the satellite edge case: quantiles of the
// merge of several windowed views must equal the merged-then-queried oracle
// — i.e. Sub composes with Merge the way the cluster stats aggregation
// assumes when it merges windowed snapshots from many shards.
func TestWindowMergedRingOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := time.Unix(1_700_000_000, 0)
	const shards = 3
	hs := make([]*Histogram, shards)
	ws := make([]*Window, shards)
	for i := range hs {
		hs[i] = newHistogram("shard", "")
		ws[i] = NewWindow(hs[i], 4, time.Second)
		ws[i].Snapshot(base)
	}
	var all []int64
	// Two epochs of old data that will expire, then two in-window epochs.
	for e := 0; e < 4; e++ {
		now := base.Add(time.Duration(e) * time.Second)
		for i := range ws {
			ws[i].Snapshot(now)
		}
		for j := 0; j < 2000; j++ {
			v := int64(rng.ExpFloat64() * 50_000)
			hs[j%shards].RecordNS(v)
			if e >= 1 { // epochs 1..3 are inside the 4-slot window at the end
				all = append(all, v)
			}
		}
	}
	// A fourth rotation pushes epoch 0 out of the 4-slot ring, leaving
	// exactly epochs 1..3 in every shard's window.
	now := base.Add(4 * time.Second)
	merged := ws[0].Snapshot(now)
	for i := 1; i < shards; i++ {
		merged = merged.Merge(ws[i].Snapshot(now))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if merged.Count != int64(len(all)) {
		t.Fatalf("merged window count %d, want %d", merged.Count, len(all))
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := merged.Quantile(q)
		want := oracleQuantile(all, q)
		tol := int64(float64(want)*2/subCount) + 2
		if got < want-tol || got > want+tol {
			t.Errorf("merged q%.2f = %d, oracle %d (tol %d)", q, got, want, tol)
		}
	}
}

// TestWindowRotationRacesRecord is the -race hammer for the window path:
// writers hammer Record (lock-free) while readers rotate and subtract
// concurrently. Windowed views must never report more samples than were
// recorded in total, never tear (bucket sum == count by construction of
// Sub), and the final settled window must account for every sample.
func TestWindowRotationRacesRecord(t *testing.T) {
	const (
		writers   = 8
		perWriter = 4000
	)
	h := newHistogram("race", "")
	w := NewWindow(h, 4, 50*time.Millisecond)
	var now atomic.Int64
	base := time.Unix(1_700_000_000, 0)
	now.Store(base.UnixNano())
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Advance simulated time so rotation actually happens while
				// records are in flight.
				t0 := time.Unix(0, now.Add(int64(7*time.Millisecond)))
				s := w.Snapshot(t0)
				var buckets int64
				for _, c := range s.Counts {
					buckets += c
				}
				if buckets != s.Count {
					t.Errorf("windowed snapshot tore: bucket sum %d != count %d", buckets, s.Count)
					return
				}
				if s.Count > int64(writers*perWriter) {
					t.Errorf("window count %d exceeds total recorded", s.Count)
					return
				}
				_ = s.Quantile(0.99)
			}
		}()
	}
	var writerWG sync.WaitGroup
	for i := 0; i < writers; i++ {
		writerWG.Add(1)
		go func(seed int64) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < perWriter; j++ {
				h.RecordNS(rng.Int63n(1_000_000))
			}
		}(int64(i))
	}
	writerWG.Wait()
	close(stop)
	readers.Wait()
	if got := h.Snapshot().Count; got != int64(writers*perWriter) {
		t.Fatalf("cumulative count %d, want %d", got, writers*perWriter)
	}
}

// TestRegistryWindowSummaries pins the /v1/stats windowed block and the
// /metrics _1m summary exposition: non-empty windows appear, empty ones are
// omitted, and the summary family carries quantile labels in seconds.
func TestRegistryWindowSummaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("apknn_win_seconds", "windowed test")
	r.Histogram("apknn_idle_seconds", "never fires")
	now := time.Unix(1_700_000_000, 0)
	h.MinuteWindow().Snapshot(now)
	h.RecordNS(int64(2 * time.Millisecond))
	h.RecordNS(int64(4 * time.Millisecond))

	sums := r.WindowSummaries(now)
	if _, ok := sums["apknn_idle_seconds"]; ok {
		t.Fatal("idle histogram reported a windowed summary")
	}
	s, ok := sums["apknn_win_seconds"]
	if !ok || s.Count != 2 {
		t.Fatalf("windowed summary = %+v ok=%v", s, ok)
	}

	var sb strings.Builder
	r.WriteWindowed(&sb, now)
	text := sb.String()
	for _, want := range []string{
		"# TYPE apknn_win_seconds_1m summary",
		`apknn_win_seconds_1m{quantile="0.99"}`,
		"apknn_win_seconds_1m_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("windowed exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "apknn_idle_seconds") {
		t.Errorf("windowed exposition includes empty histogram:\n%s", text)
	}
}
