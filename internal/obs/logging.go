package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the process logger the server binaries use: text (the
// default, one key=value line per record) or json (one JSON object per
// line, for log shippers). Both formats carry the same keys, so switching
// -log-format never loses information.
func NewLogger(format string, w io.Writer) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// PprofFlagDoc is the shared help text of the -pprof flag.
const PprofFlagDoc = "expose net/http/pprof profiling handlers under /debug/pprof/ (off by default)"

// SlowQueryFlagDoc is the shared help text of the -slow-query flag.
const SlowQueryFlagDoc = "log requests at least this slow with a per-stage breakdown; 0 logs every request, negative disables"
