package obs

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip pins the bucket geometry: every boundary value maps
// into a bucket whose [lower, upper] range contains it, indexes are
// monotone, and the relative bucket width never exceeds 2^-subBits.
func TestBucketRoundTrip(t *testing.T) {
	values := []int64{0, 1, 2, 15, 16, 17, 31, 32, 33, 63, 64, 1000, 1e6, 1e9, 1e12, math.MaxInt64}
	prev := -1
	for _, v := range values {
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if lo, hi := bucketLower(i), bucketUpper(i); v < lo || v > hi {
			t.Fatalf("value %d mapped to bucket %d = [%d, %d]", v, i, lo, hi)
		}
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		prev = i
	}
	for i := 0; i < numBuckets-1; i++ {
		if bucketLower(i+1) != bucketUpper(i)+1 {
			t.Fatalf("gap between bucket %d upper %d and %d lower %d",
				i, bucketUpper(i), i+1, bucketLower(i+1))
		}
		lo, hi := bucketLower(i), bucketUpper(i)
		if lo >= subCount && float64(hi-lo+1)/float64(lo) > 1.0/subCount+1e-9 {
			t.Fatalf("bucket %d = [%d, %d] wider than 1/%d relative", i, lo, hi, subCount)
		}
	}
	if got := bucketIndex(math.MaxInt64); got != numBuckets-1 {
		t.Fatalf("MaxInt64 lands on bucket %d, want the last bucket %d", got, numBuckets-1)
	}
}

// oracleQuantile is the sorted-sample reference the histogram estimate is
// judged against: the ceil(q*n)-th smallest sample (1-based, rounded), the
// same rank rule Snapshot.Quantile targets.
func oracleQuantile(sorted []int64, q float64) int64 {
	rank := int64(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > int64(len(sorted)) {
		rank = int64(len(sorted))
	}
	return sorted[rank-1]
}

// TestQuantilesAgainstOracle drives the histogram with several sample
// distributions and requires every estimated quantile to sit within one
// bucket width (2/subCount relative) of the exact sorted-sample answer.
func TestQuantilesAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := map[string]func() int64{
		"uniform":   func() int64 { return rng.Int63n(1_000_000) },
		"exp":       func() int64 { return int64(rng.ExpFloat64() * 50_000) },
		"lognormal": func() int64 { return int64(math.Exp(rng.NormFloat64()*2 + 10)) },
		"constant":  func() int64 { return 12345 },
		"bimodal": func() int64 {
			if rng.Intn(10) == 0 {
				return 5_000_000 + rng.Int63n(1000) // the straggler mode
			}
			return 1000 + rng.Int63n(100)
		},
	}
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for name, draw := range distributions {
		t.Run(name, func(t *testing.T) {
			h := newHistogram("test", "")
			samples := make([]int64, 0, 20000)
			for i := 0; i < 20000; i++ {
				v := draw()
				samples = append(samples, v)
				h.RecordNS(v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			s := h.Snapshot()
			if s.Count != int64(len(samples)) {
				t.Fatalf("count %d, want %d", s.Count, len(samples))
			}
			if s.Max != samples[len(samples)-1] {
				t.Fatalf("max %d, want %d", s.Max, samples[len(samples)-1])
			}
			for _, q := range quantiles {
				got := s.Quantile(q)
				want := oracleQuantile(samples, q)
				// One log-linear bucket of slack either side.
				tol := int64(float64(want)*2/subCount) + 2
				if got < want-tol || got > want+tol {
					t.Errorf("q%.3f = %d, oracle %d (tol %d)", q, got, want, tol)
				}
			}
		})
	}
}

// TestMergeAssociativity splits one sample stream into three shards and
// checks that any merge order reproduces the unsharded histogram exactly —
// the property the cluster tier's scatter-gather aggregation relies on.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	whole := newHistogram("whole", "")
	parts := []*Histogram{newHistogram("a", ""), newHistogram("b", ""), newHistogram("c", "")}
	for i := 0; i < 30000; i++ {
		v := int64(rng.ExpFloat64() * 123456)
		whole.RecordNS(v)
		parts[i%3].RecordNS(v)
	}
	a, b, c := parts[0].Snapshot(), parts[1].Snapshot(), parts[2].Snapshot()
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	want := whole.Snapshot()
	for name, got := range map[string]Snapshot{"left": left, "right": right} {
		if got.Count != want.Count || got.Sum != want.Sum || got.Max != want.Max {
			t.Fatalf("%s merge: count/sum/max (%d,%d,%d) want (%d,%d,%d)",
				name, got.Count, got.Sum, got.Max, want.Count, want.Sum, want.Max)
		}
		for i := range want.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("%s merge: bucket %d = %d, want %d", name, i, got.Counts[i], want.Counts[i])
			}
		}
	}
	// Identity: merging with an empty snapshot changes nothing.
	if got := want.Merge(Snapshot{}); got.Count != want.Count || got.Sum != want.Sum {
		t.Fatalf("merge with zero snapshot changed count/sum")
	}
}

// TestConcurrentRecordSnapshot is the -race hammer: many goroutines record
// while others snapshot; every recorded sample must be accounted for at the
// end, and mid-flight snapshots must be internally consistent enough to
// never exceed the true totals.
func TestConcurrentRecordSnapshot(t *testing.T) {
	const (
		writers     = 8
		perWriter   = 5000
		snapshoters = 4
	)
	h := newHistogram("hammer", "")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < snapshoters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := h.Snapshot()
				var buckets int64
				for _, c := range snap.Counts {
					buckets += c
				}
				// count is added after the bucket, so a mid-flight snapshot
				// may see more bucket entries than count — never fewer.
				if buckets < snap.Count {
					t.Errorf("snapshot tore: %d bucket entries < count %d", buckets, snap.Count)
					return
				}
				_ = snap.Quantile(0.99)
			}
		}()
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				h.RecordNS(rng.Int63n(1_000_000))
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()
	final := h.Snapshot()
	if want := int64(writers * perWriter); final.Count != want {
		t.Fatalf("final count %d, want %d", final.Count, want)
	}
}

// TestRegistryGetOrCreate pins the sharing semantics: same name, same
// histogram; and Summaries omits series that never recorded.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("x_seconds", "help")
	b := r.Histogram("x_seconds", "other help ignored")
	if a != b {
		t.Fatal("same name returned distinct histograms")
	}
	r.Histogram("empty_seconds", "")
	a.Record(3 * time.Millisecond)
	sums := r.Summaries()
	if _, ok := sums["empty_seconds"]; ok {
		t.Fatal("empty histogram reported a summary")
	}
	s, ok := sums["x_seconds"]
	if !ok || s.Count != 1 || s.MaxNS != int64(3*time.Millisecond) {
		t.Fatalf("summary = %+v, ok=%v", s, ok)
	}
}

// TestPrometheusExposition checks the wire format: HELP/TYPE headers,
// cumulative monotone buckets ending at +Inf == _count, and seconds units.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("apknn_test_seconds", "test histogram")
	h.Record(1 * time.Millisecond)
	h.Record(2 * time.Millisecond)
	h.Record(1 * time.Second)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"# HELP apknn_test_seconds test histogram",
		"# TYPE apknn_test_seconds histogram",
		`apknn_test_seconds_bucket{le="+Inf"} 3`,
		"apknn_test_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Buckets must be cumulative and non-decreasing.
	var last int64 = -1
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "apknn_test_seconds_bucket") {
			continue
		}
		n, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = n
	}
	if last != 3 {
		t.Fatalf("last bucket %d, want 3", last)
	}
}
