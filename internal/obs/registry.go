package obs

import (
	"sort"
	"sync"
)

// Registry holds named histograms. Registration is GetOrCreate by name: two
// packages (or two servers in one process) asking for the same metric share
// one histogram, exactly how one process exports one Prometheus series.
type Registry struct {
	mu    sync.RWMutex
	hists map[string]*Histogram
}

// NewRegistry builds an empty registry. Most callers use Default.
func NewRegistry() *Registry {
	return &Registry{hists: make(map[string]*Histogram)}
}

// Default is the process-wide registry both /metrics handlers expose and
// /v1/stats summarizes.
var Default = NewRegistry()

// Histogram returns the histogram registered under name, creating it with
// the given help text on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(name, help)
		r.hists[name] = h
	}
	return h
}

// NewHistogram registers (or fetches) name on the Default registry — the
// one-liner package-level metric declarations use.
func NewHistogram(name, help string) *Histogram {
	return Default.Histogram(name, help)
}

// sortHistograms orders histograms by registered name.
func sortHistograms(hists []*Histogram) {
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
}

// Snapshots returns a name-sorted snapshot of every registered histogram.
func (r *Registry) Snapshots() []Snapshot {
	r.mu.RLock()
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.RUnlock()
	sortHistograms(hists)
	out := make([]Snapshot, len(hists))
	for i, h := range hists {
		out[i] = h.Snapshot()
	}
	return out
}

// Summaries condenses every registered histogram that has recorded at least
// one sample into its /v1/stats quantile block, keyed by metric name.
// Metrics that never fired are omitted so a static apserve's stats block
// does not list empty WAL or cluster series.
func (r *Registry) Summaries() map[string]Summary {
	out := make(map[string]Summary)
	for _, s := range r.Snapshots() {
		if s.Count == 0 {
			continue
		}
		out[s.Name] = s.Summary()
	}
	return out
}
