package obs

import (
	"sort"
	"sync"
	"time"
)

// Trace classes the flight recorder retains independently. A completed
// trace may land in several at once (a slow hedge win is "recent", "slow"
// and "hedge").
const (
	// ClassRecent retains every completed request — the rolling tail of
	// traffic for "what does a normal request look like right now".
	ClassRecent = "recent"
	// ClassSlow retains requests whose total breached SlowFactor times the
	// windowed p99 — the structural stragglers worth a post-mortem.
	ClassSlow = "slow"
	// ClassError retains requests answered with a 5xx or an internal error.
	ClassError = "error"
	// ClassShed retains requests refused by admission control (429).
	ClassShed = "shed"
	// ClassHedge retains requests where a hedged scatter leg won.
	ClassHedge = "hedge"
)

// Classes lists every retained class in display order.
var Classes = []string{ClassRecent, ClassSlow, ClassError, ClassShed, ClassHedge}

// TraceRecord is one completed request's retained trace — the flight
// recorder's unit and the /v1/debug/traces wire element.
type TraceRecord struct {
	// TraceID names the cross-node tree this record belongs to; on a shard
	// it equals the router-assigned trace ID carried by X-Trace-Context.
	TraceID string `json:"trace_id"`
	// Node is the recording node's identity (NodeID or listen address).
	Node string `json:"node,omitempty"`
	// Classes lists which ring buffers retained this trace.
	Classes []string `json:"classes"`
	// StartUnixNS/TotalNS bound the request end to end.
	StartUnixNS int64 `json:"start_unix_ns"`
	TotalNS     int64 `json:"total_ns"`
	// Status is the HTTP status the request was answered with.
	Status int `json:"status,omitempty"`
	// Error carries the terminal error string for errored requests.
	Error string `json:"error,omitempty"`
	// Root is the request's span tree.
	Root *WireSpan `json:"root"`
}

// Outcome is what the handler knows about a finished request beyond the
// span tree itself.
type Outcome struct {
	// Status is the HTTP status written for the request (0 counts as 200).
	Status int
	// Err is the terminal error string, "" on success.
	Err string
}

// traceRing is one fixed-capacity overwrite-oldest buffer of records.
type traceRing struct {
	buf  []*TraceRecord
	next int // index the next record lands in
	n    int // records stored, ≤ len(buf)
}

func newTraceRing(depth int) *traceRing {
	return &traceRing{buf: make([]*TraceRecord, depth)}
}

func (r *traceRing) add(rec *TraceRecord) {
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// list returns up to n records, newest first.
func (r *traceRing) list(n int) []*TraceRecord {
	if n <= 0 || n > r.n {
		n = r.n
	}
	out := make([]*TraceRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// FlightRecorder retains the last Depth completed traces per class in
// fixed ring buffers — always on, bounded memory, one mutex acquisition
// per completed request (never on the per-candidate hot path).
type FlightRecorder struct {
	node       string
	depth      int
	slowFactor float64
	// p99 reports the windowed end-to-end p99 in nanoseconds (0 = no signal
	// yet); the slow classifier compares each total against slowFactor×p99.
	p99 func(now time.Time) int64

	mu       sync.Mutex
	rings    map[string]*traceRing
	recorded int64
}

// DefaultTraceDepth is the per-class retention when the caller passes 0.
const DefaultTraceDepth = 64

// DefaultSlowFactor classifies a request as slow at 4× the windowed p99 —
// far enough above the tail that the slow ring holds genuine outliers.
const DefaultSlowFactor = 4

// NewFlightRecorder builds a recorder identified as node, retaining depth
// traces per class. p99 may be nil (disables the slow classifier).
func NewFlightRecorder(node string, depth int, slowFactor float64, p99 func(now time.Time) int64) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultTraceDepth
	}
	if slowFactor <= 0 {
		slowFactor = DefaultSlowFactor
	}
	rings := make(map[string]*traceRing, len(Classes))
	for _, c := range Classes {
		rings[c] = newTraceRing(depth)
	}
	return &FlightRecorder{node: node, depth: depth, slowFactor: slowFactor, p99: p99, rings: rings}
}

// Depth returns the per-class retention.
func (f *FlightRecorder) Depth() int {
	if f == nil {
		return 0
	}
	return f.depth
}

// Complete classifies and retains one finished request. Nil-safe — a nil
// recorder drops the trace — so handlers record unconditionally.
func (f *FlightRecorder) Complete(tr *Trace, total time.Duration, o Outcome) *TraceRecord {
	if f == nil || tr == nil {
		return nil
	}
	root := tr.Root().Wire()
	rec := &TraceRecord{
		TraceID:     tr.ID,
		Node:        f.node,
		StartUnixNS: tr.Start.UnixNano(),
		TotalNS:     int64(total),
		Status:      o.Status,
		Error:       o.Err,
		Root:        root,
	}
	classes := []string{ClassRecent}
	switch {
	case o.Status == 429:
		classes = append(classes, ClassShed)
	case o.Status >= 500 || (o.Err != "" && o.Status == 0):
		classes = append(classes, ClassError)
	}
	if f.p99 != nil {
		if p := f.p99(time.Now()); p > 0 && float64(total.Nanoseconds()) >= f.slowFactor*float64(p) {
			classes = append(classes, ClassSlow)
		}
	}
	if hedgeWon(root) {
		classes = append(classes, ClassHedge)
	}
	rec.Classes = classes
	f.mu.Lock()
	f.recorded++
	for _, c := range classes {
		f.rings[c].add(rec)
	}
	f.mu.Unlock()
	return rec
}

// hedgeWon reports whether any span in the tree is a hedged attempt marked
// as the winner — the router sets both attrs on scatter legs.
func hedgeWon(ws *WireSpan) bool {
	won := false
	ws.Walk(func(s *WireSpan) {
		if s.Attr("hedged") == "true" && s.Attr("winner") == "true" {
			won = true
		}
	})
	return won
}

// Recorded returns how many traces have been completed into the recorder.
func (f *FlightRecorder) Recorded() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.recorded
}

// ClassCounts returns how many records each class currently retains.
func (f *FlightRecorder) ClassCounts() map[string]int {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int, len(f.rings))
	for c, ring := range f.rings {
		out[c] = ring.n
	}
	return out
}

// Class returns up to n retained records of one class, newest first; n ≤ 0
// means the full ring. An unknown class returns nil.
func (f *FlightRecorder) Class(class string, n int) []*TraceRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ring, ok := f.rings[class]
	if !ok {
		return nil
	}
	return ring.list(n)
}

// ByTraceID returns every retained record with the given trace ID, newest
// first — several when a request landed in the ring more than once is not
// possible (one record, many classes), but the recent ring may still hold
// an older same-ID record after a client reused an ID.
func (f *FlightRecorder) ByTraceID(id string) []*TraceRecord {
	if f == nil || id == "" {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	seen := make(map[*TraceRecord]bool)
	var out []*TraceRecord
	for _, ring := range f.rings {
		for _, rec := range ring.list(0) {
			if rec.TraceID == id && !seen[rec] {
				seen[rec] = true
				out = append(out, rec)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNS > out[j].StartUnixNS })
	return out
}

// Dump snapshots every ring, newest first per class — the anomaly bundle's
// traces.json payload.
func (f *FlightRecorder) Dump() map[string][]*TraceRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string][]*TraceRecord, len(f.rings))
	for c, ring := range f.rings {
		out[c] = ring.list(0)
	}
	return out
}
