package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func completeOne(rec *FlightRecorder, id string, total time.Duration, o Outcome) *Trace {
	tr := StartTrace(id)
	tr.Root().EndIn(total)
	rec.Complete(tr, total, o)
	return tr
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var rec *FlightRecorder
	rec.Complete(StartTrace("x"), time.Millisecond, Outcome{})
	if rec.Recorded() != 0 || rec.Depth() != 0 {
		t.Fatal("nil recorder reported state")
	}
	if got := rec.Class(ClassRecent, 5); got != nil {
		t.Fatalf("nil recorder listed %v", got)
	}
	// A recorder must also tolerate a nil trace (untraced internal call).
	live := NewFlightRecorder("n", 4, 0, nil)
	live.Complete(nil, time.Millisecond, Outcome{})
	if live.Recorded() != 0 {
		t.Fatal("nil trace was recorded")
	}
}

// TestFlightRecorderEviction fills a depth-4 ring past capacity and checks
// the retained set is exactly the newest 4, listed newest-first.
func TestFlightRecorderEviction(t *testing.T) {
	rec := NewFlightRecorder("node-a", 4, 0, nil)
	for i := 0; i < 10; i++ {
		completeOne(rec, fmt.Sprintf("t%02d", i), time.Millisecond, Outcome{Status: 200})
	}
	got := rec.Class(ClassRecent, 0)
	if len(got) != 4 {
		t.Fatalf("retained %d records, want 4", len(got))
	}
	want := []string{"t09", "t08", "t07", "t06"}
	for i, r := range got {
		if r.TraceID != want[i] {
			t.Fatalf("record %d = %s, want %s", i, r.TraceID, want[i])
		}
		if r.Node != "node-a" {
			t.Fatalf("record node = %q", r.Node)
		}
	}
	if n := len(rec.Class(ClassRecent, 2)); n != 2 {
		t.Fatalf("n=2 returned %d records", n)
	}
	if rec.Recorded() != 10 {
		t.Fatalf("recorded = %d, want 10", rec.Recorded())
	}
}

func TestFlightRecorderClassification(t *testing.T) {
	// Fixed windowed p99 of 10ms; slow factor 4 → slow at >= 40ms.
	p99 := func(time.Time) int64 { return (10 * time.Millisecond).Nanoseconds() }
	rec := NewFlightRecorder("n", 8, 4, p99)

	completeOne(rec, "fine", time.Millisecond, Outcome{Status: 200})
	completeOne(rec, "slow1", 50*time.Millisecond, Outcome{Status: 200})
	completeOne(rec, "shed1", time.Millisecond, Outcome{Status: 429})
	completeOne(rec, "err1", time.Millisecond, Outcome{Status: 502, Err: "bad gateway"})

	hedged := StartTrace("hedge1")
	leg := hedged.Root().StartChild("shard0_leg")
	leg.SetAttr("hedged", "true")
	leg.SetAttr("winner", "true")
	leg.EndIn(time.Millisecond)
	hedged.Root().EndIn(2 * time.Millisecond)
	rec.Complete(hedged, 2*time.Millisecond, Outcome{Status: 200})

	counts := rec.ClassCounts()
	wantCounts := map[string]int{ClassRecent: 5, ClassSlow: 1, ClassShed: 1, ClassError: 1, ClassHedge: 1}
	for class, want := range wantCounts {
		if counts[class] != want {
			t.Errorf("class %s has %d records, want %d (all: %v)", class, counts[class], want, counts)
		}
	}
	if got := rec.Class(ClassSlow, 0); len(got) != 1 || got[0].TraceID != "slow1" {
		t.Fatalf("slow ring = %v", got)
	}
	if got := rec.Class(ClassError, 0); len(got) != 1 || got[0].Error != "bad gateway" {
		t.Fatalf("error ring = %v", got)
	}

	// ByTraceID finds across rings and dedups: slow1 sits in both recent
	// and slow but must come back once.
	if got := rec.ByTraceID("slow1"); len(got) != 1 || len(got[0].Classes) != 2 {
		t.Fatalf("ByTraceID(slow1) = %+v", got)
	}
	if got := rec.ByTraceID("missing"); len(got) != 0 {
		t.Fatalf("ByTraceID(missing) = %v", got)
	}
}

// TestAnomalyWatcher trips the watcher with a breaching p99 and checks the
// bundle lands on disk with the three JSON artifacts.
func TestAnomalyWatcher(t *testing.T) {
	dir := t.TempDir()
	rec := NewFlightRecorder("n", 4, 0, nil)
	completeOne(rec, "victim", 90*time.Millisecond, Outcome{Status: 200})
	breach := (90 * time.Millisecond).Nanoseconds()
	w := NewAnomalyWatcher(AnomalyConfig{
		Target:   10 * time.Millisecond,
		Factor:   3,
		Interval: time.Millisecond,
		Cooldown: time.Hour, // one trip only
		Dir:      dir,
	}, func(time.Time) int64 { return breach }, rec, Default)
	defer w.Close()

	deadline := time.Now().Add(5 * time.Second)
	for w.Trips() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never tripped")
		}
		time.Sleep(time.Millisecond)
	}
	w.Close()
	if got := w.Trips(); got != 1 {
		t.Fatalf("trips = %d, want 1 (cooldown must hold)", got)
	}
	bundles, err := filepath.Glob(filepath.Join(dir, "anomaly-*"))
	if err != nil || len(bundles) != 1 {
		t.Fatalf("bundles = %v (err %v)", bundles, err)
	}
	for _, name := range []string{"meta.json", "traces.json", "windows.json"} {
		if _, err := os.Stat(filepath.Join(bundles[0], name)); err != nil {
			t.Errorf("bundle missing %s: %v", name, err)
		}
	}
}
