package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Prometheus text exposition (version 0.0.4) writers. Histogram samples are
// recorded in nanoseconds but exposed in seconds with float `le` bounds, the
// Prometheus convention for latency series; only non-empty buckets are
// emitted (plus the mandatory +Inf), which is valid exposition — bucket
// bounds just have to be increasing and cumulative, not exhaustive.

// secs formats a nanosecond count as the shortest float-seconds literal.
func secs(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// WriteHistogram writes one histogram family: HELP/TYPE header, cumulative
// non-empty buckets, the +Inf bucket, _sum and _count.
func WriteHistogram(w io.Writer, s Snapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", s.Name, s.Help, s.Name)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", s.Name, secs(bucketUpper(i)), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", s.Name, s.Count)
	fmt.Fprintf(w, "%s_sum %s\n", s.Name, secs(s.Sum))
	fmt.Fprintf(w, "%s_count %d\n", s.Name, s.Count)
}

// WriteCounter writes one unlabeled counter family.
func WriteCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// LabeledValue is one (label value, sample) pair of a labeled family.
type LabeledValue struct {
	Value string
	Count int64
}

// WriteCounterVec writes a counter family with one label dimension, e.g.
// per-shard leg counts.
func WriteCounterVec(w io.Writer, name, help, label string, vals []LabeledValue) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for _, v := range vals {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, v.Value, v.Count)
	}
}

// WriteGauge writes one unlabeled gauge family.
func WriteGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		name, help, name, name, strconv.FormatFloat(v, 'g', -1, 64))
}

// WritePrometheus writes every registered histogram in name order — the
// shared half of both /metrics handlers; each handler appends its own
// counters and gauges after this.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, s := range r.Snapshots() {
		WriteHistogram(w, s)
	}
}

// MetricsContentType is the exposition format version both /metrics
// handlers declare.
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// SetMetricsHeaders marks a response as Prometheus text exposition.
func SetMetricsHeaders(w http.ResponseWriter) {
	w.Header().Set("Content-Type", MetricsContentType)
}
