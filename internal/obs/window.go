package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Windowed quantiles. A Histogram's counters are cumulative since boot,
// which is the right shape for Prometheus scrapes (the server does rate()
// math) but useless for anything that needs "p99 over the last minute"
// directly: /v1/stats consumers without a scraper, and the SLO admission
// controller that steers on the current queue-wait tail.
//
// The mechanism keeps Record untouched and lock-free: a Window owns a
// rotating ring of *cumulative boundary snapshots* of its histogram, one per
// elapsed slot of `width`. The windowed view is then
//
//	live snapshot  −  oldest boundary
//
// a bucket-wise subtraction (Snapshot.Sub), covering between (slots−1) and
// slots slot-widths of wall time. Rotation is lazy: it happens under a
// mutex on the read path (scrapes, /v1/stats, the controller tick), never
// on the record path. The one approximation this buys: samples recorded
// during a read gap longer than one slot are attributed to the catch-up
// boundary, i.e. treated as old — irrelevant in practice because every
// consumer of a Window polls it at sub-slot intervals.

// Window derives sliding-window views from a Histogram via a rotating ring
// of boundary snapshots. Safe for concurrent use; the wrapped histogram's
// Record path is never touched.
type Window struct {
	h     *Histogram
	slots int
	width time.Duration

	mu      sync.Mutex
	ring    []Snapshot // cumulative boundaries; newest at head
	head    int
	epoch   int64 // slot index (unix nanos / width) of the newest boundary
	started bool
}

// NewWindow wraps h in a sliding window of slots×width. The window "length"
// is nominally slots×width but, as with any ring of boundaries, the view
// covers between (slots−1)×width and slots×width of real time depending on
// the phase within the current slot.
func NewWindow(h *Histogram, slots int, width time.Duration) *Window {
	if slots < 1 {
		slots = 1
	}
	if width <= 0 {
		width = 10 * time.Second
	}
	return &Window{h: h, slots: slots, width: width, ring: make([]Snapshot, slots)}
}

// rotate lazily advances the ring to now's slot. Called with mu held.
func (w *Window) rotate(now time.Time) {
	cur := now.UnixNano() / int64(w.width)
	if !w.started {
		// First observation: anchor the epoch without pushing boundaries,
		// so a young window reports everything since boot (the honest
		// answer until a full window of time has elapsed).
		w.epoch, w.started = cur, true
		return
	}
	if cur <= w.epoch {
		return
	}
	missed := cur - w.epoch
	if missed > int64(w.slots) {
		missed = int64(w.slots)
	}
	live := w.h.Snapshot()
	for i := int64(0); i < missed; i++ {
		w.head = (w.head + 1) % w.slots
		w.ring[w.head] = live
	}
	w.epoch = cur
}

// Snapshot returns the windowed view at `now`: the live cumulative snapshot
// minus the oldest ring boundary. Taking `now` explicitly keeps rotation
// deterministic under test; production callers pass time.Now().
func (w *Window) Snapshot(now time.Time) Snapshot {
	w.mu.Lock()
	w.rotate(now)
	oldest := w.ring[(w.head+1)%w.slots]
	w.mu.Unlock()
	return w.h.Snapshot().Sub(oldest)
}

// Summary is Snapshot(now).Summary() — the /v1/stats windowed block.
func (w *Window) Summary(now time.Time) Summary {
	return w.Snapshot(now).Summary()
}

// Sub returns the samples present in s but not in o — the windowed delta
// between two cumulative snapshots of the same histogram (o taken earlier).
// Count is recomputed from the delta buckets so quantile ranks stay
// internally consistent even when the two snapshots raced concurrent
// records; negative bucket deltas (possible only under such races) clamp
// to zero. Max cannot be recovered exactly from cumulative state, so it is
// approximated as the upper bound of the highest non-empty delta bucket,
// tightened by the cumulative max when that falls inside the bucket —
// within one bucket width (≤1/subCount relative) of the true windowed max.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	out := Snapshot{Name: s.Name, Help: s.Help, Counts: make([]int64, numBuckets)}
	top := -1
	for i := range s.Counts {
		d := s.Counts[i]
		if i < len(o.Counts) {
			d -= o.Counts[i]
		}
		if d < 0 {
			d = 0
		}
		out.Counts[i] = d
		out.Count += d
		if d > 0 {
			top = i
		}
	}
	out.Sum = s.Sum - o.Sum
	if out.Sum < 0 {
		out.Sum = 0
	}
	if top >= 0 {
		out.Max = bucketUpper(top)
		if s.Max >= bucketLower(top) && s.Max < out.Max {
			out.Max = s.Max
		}
	}
	return out
}

// Default minute window: every registered histogram carries a 6×10s ring so
// /v1/stats and /metrics can answer "over the last minute" with no extra
// wiring at the record sites.
const (
	defaultWindowSlots = 6
	defaultWindowWidth = 10 * time.Second
)

// MinuteWindow returns the histogram's built-in ~1-minute window.
func (h *Histogram) MinuteWindow() *Window { return h.minute }

// WindowSnapshot is the histogram's view over roughly the last minute.
func (h *Histogram) WindowSnapshot(now time.Time) Snapshot {
	return h.minute.Snapshot(now)
}

// WindowSummaries condenses every registered histogram with at least one
// sample in its minute window into a quantile block, keyed by metric name —
// the `latency_1m` half of /v1/stats.
func (r *Registry) WindowSummaries(now time.Time) map[string]Summary {
	r.mu.RLock()
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.RUnlock()
	out := make(map[string]Summary)
	for _, h := range hists {
		s := h.WindowSnapshot(now)
		if s.Count == 0 {
			continue
		}
		out[h.name] = s.Summary()
	}
	return out
}

// WriteWindowSummary writes one windowed quantile family as a Prometheus
// summary named <name>_1m: pre-computed p50/p90/p99 over roughly the last
// minute, in seconds, plus the windowed _sum/_count.
func WriteWindowSummary(w io.Writer, name string, s Snapshot) {
	fam := name + "_1m"
	fmt.Fprintf(w, "# HELP %s quantiles of %s over roughly the last minute\n# TYPE %s summary\n",
		fam, name, fam)
	for _, q := range [...]struct {
		label string
		q     float64
	}{{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}} {
		fmt.Fprintf(w, "%s{quantile=%q} %s\n", fam, q.label, secs(s.Quantile(q.q)))
	}
	fmt.Fprintf(w, "%s_sum %s\n", fam, secs(s.Sum))
	fmt.Fprintf(w, "%s_count %d\n", fam, s.Count)
}

// WriteWindowed appends a <name>_1m summary family for every histogram with
// samples in its minute window — called by both /metrics handlers after
// WritePrometheus.
func (r *Registry) WriteWindowed(w io.Writer, now time.Time) {
	r.mu.RLock()
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.RUnlock()
	sortHistograms(hists)
	for _, h := range hists {
		s := h.WindowSnapshot(now)
		if s.Count == 0 {
			continue
		}
		WriteWindowSummary(w, h.name, s)
	}
}
