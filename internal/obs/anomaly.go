package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// AnomalyConfig tunes an AnomalyWatcher.
type AnomalyConfig struct {
	// Target is the latency objective the watcher guards; a windowed p99 at
	// or above Factor×Target trips a dump. Required.
	Target time.Duration
	// Factor is the breach multiple over Target (default 3).
	Factor float64
	// Interval is the check period (default 2s).
	Interval time.Duration
	// Cooldown is the minimum gap between two dumps, so a sustained breach
	// produces one bundle per episode rather than one per tick (default 30s).
	Cooldown time.Duration
	// Dir receives one bundle directory per trip (required).
	Dir string
	// Profiles adds heap and goroutine pprof profiles to each bundle.
	Profiles bool
	// Logger, when non-nil, gets one structured line per trip.
	Logger *slog.Logger
}

func (c AnomalyConfig) withDefaults() AnomalyConfig {
	if c.Factor <= 0 {
		c.Factor = 3
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	return c
}

// AnomalyWatcher is the always-on tail guard: a background loop compares
// the windowed end-to-end p99 against a multiple of the target and, on
// breach, dumps a post-mortem bundle — retained traces, per-metric window
// summaries, and optional runtime profiles — into AnomalyConfig.Dir.
type AnomalyWatcher struct {
	cfg AnomalyConfig
	p99 func(now time.Time) int64
	rec *FlightRecorder
	reg *Registry

	trips    atomic.Int64
	lastTrip atomic.Int64 // unix ns of the last dump
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewAnomalyWatcher builds and starts a watcher. p99 reports the windowed
// end-to-end p99 in nanoseconds (0 = no traffic); rec supplies the traces
// and reg the window summaries of each bundle. Close stops the loop.
func NewAnomalyWatcher(cfg AnomalyConfig, p99 func(now time.Time) int64,
	rec *FlightRecorder, reg *Registry) *AnomalyWatcher {
	w := &AnomalyWatcher{
		cfg:  cfg.withDefaults(),
		p99:  p99,
		rec:  rec,
		reg:  reg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go w.run()
	return w
}

// Trips returns how many bundles the watcher has dumped.
func (w *AnomalyWatcher) Trips() int64 {
	if w == nil {
		return 0
	}
	return w.trips.Load()
}

// Close stops the watcher loop; safe to call more than once.
func (w *AnomalyWatcher) Close() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

func (w *AnomalyWatcher) run() {
	defer close(w.done)
	ticker := time.NewTicker(w.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case now := <-ticker.C:
			w.check(now)
		}
	}
}

func (w *AnomalyWatcher) check(now time.Time) {
	p := w.p99(now)
	threshold := w.cfg.Factor * float64(w.cfg.Target.Nanoseconds())
	if p <= 0 || float64(p) < threshold {
		return
	}
	if last := w.lastTrip.Load(); last > 0 && now.UnixNano()-last < w.cfg.Cooldown.Nanoseconds() {
		return
	}
	w.lastTrip.Store(now.UnixNano())
	w.trips.Add(1)
	dir, err := w.dump(now, p)
	if lg := w.cfg.Logger; lg != nil {
		if err != nil {
			lg.Error("anomaly dump failed",
				"p99", time.Duration(p), "target", w.cfg.Target, "factor", w.cfg.Factor, "error", err)
		} else {
			lg.Warn("anomaly detected: p99 breached target multiple",
				"p99", time.Duration(p), "target", w.cfg.Target, "factor", w.cfg.Factor, "bundle", dir)
		}
	}
}

// dump writes one bundle directory: meta.json (what tripped), traces.json
// (the flight recorder's full retained set), windows.json (per-metric
// minute-window summaries), and optional heap/goroutine profiles.
func (w *AnomalyWatcher) dump(now time.Time, p99 int64) (string, error) {
	dir := filepath.Join(w.cfg.Dir, "anomaly-"+now.UTC().Format("20060102T150405.000Z"))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	meta := map[string]interface{}{
		"tripped_at_unix_ns": now.UnixNano(),
		"window_p99_ns":      p99,
		"target_ns":          w.cfg.Target.Nanoseconds(),
		"factor":             w.cfg.Factor,
	}
	if err := writeJSONFile(filepath.Join(dir, "meta.json"), meta); err != nil {
		return dir, err
	}
	if err := writeJSONFile(filepath.Join(dir, "traces.json"), w.rec.Dump()); err != nil {
		return dir, err
	}
	if w.reg != nil {
		if err := writeJSONFile(filepath.Join(dir, "windows.json"), w.reg.WindowSummaries(now)); err != nil {
			return dir, err
		}
	}
	if w.cfg.Profiles {
		for _, name := range []string{"heap", "goroutine"} {
			if err := writeProfile(filepath.Join(dir, name+".pprof"), name); err != nil {
				return dir, fmt.Errorf("write %s profile: %w", name, err)
			}
		}
	}
	return dir, nil
}

func writeJSONFile(path string, v interface{}) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeProfile(path, name string) error {
	prof := pprof.Lookup(name)
	if prof == nil {
		return fmt.Errorf("unknown profile %q", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := prof.WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
