package obs

import (
	"context"
	"regexp"
	"sync"
	"testing"
	"time"
)

func TestNewRequestID(t *testing.T) {
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	a, b := NewRequestID(), NewRequestID()
	if !hex16.MatchString(a) || !hex16.MatchString(b) {
		t.Fatalf("malformed request IDs %q, %q", a, b)
	}
	if a == b {
		t.Fatalf("two fresh request IDs collided: %q", a)
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if id := RequestID(ctx); id != "" {
		t.Fatalf("empty context has request ID %q", id)
	}
	ctx = WithRequestID(ctx, "deadbeefdeadbeef")
	if id := RequestID(ctx); id != "deadbeefdeadbeef" {
		t.Fatalf("round-trip gave %q", id)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Observe("anything", time.Second) // must not panic
	if got := tr.Stages(); got != nil {
		t.Fatalf("nil trace has stages %v", got)
	}
	if TraceFrom(context.Background()) != nil {
		t.Fatal("empty context returned a trace")
	}
}

func TestTraceStagesAndAttrs(t *testing.T) {
	tr := StartTrace("abc123")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace did not round-trip through context")
	}
	tr.Observe("queue_wait", 2*time.Millisecond)
	tr.Observe("backend", 5*time.Millisecond)
	stages := tr.Stages()
	if len(stages) != 2 || stages[0].Name != "queue_wait" || stages[1].Dur != 5*time.Millisecond {
		t.Fatalf("stages = %+v", stages)
	}
	attrs := tr.Attrs(10 * time.Millisecond)
	// request_id, total, then one per stage.
	if len(attrs) != 4 {
		t.Fatalf("attrs = %v", attrs)
	}
	if attrs[0].Key != "request_id" || attrs[0].Value.String() != "abc123" {
		t.Fatalf("first attr = %v", attrs[0])
	}
	if attrs[2].Key != "stage_queue_wait" {
		t.Fatalf("third attr = %v", attrs[2])
	}
}

// TestTraceConcurrent exercises Observe from many goroutines while Stages
// reads — the handler-vs-flush-goroutine race the mutex exists for.
func TestTraceConcurrent(t *testing.T) {
	tr := StartTrace("race")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Observe("s", time.Microsecond)
				_ = tr.Stages()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Stages()); got != 800 {
		t.Fatalf("recorded %d stages, want 800", got)
	}
}
