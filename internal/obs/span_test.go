package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSanitizeRequestID(t *testing.T) {
	cases := []struct{ in, want string }{
		{"ci-trace-0042", "ci-trace-0042"},
		{"a.b_c-D9", "a.b_c-D9"},
		{"", ""},
		{"with space", "withspace"},
		{"inject=\"x\"\nlevel=ERROR", "injectxlevelERROR"},
		{"\x1b[31mred\x1b[0m", "31mred0m"},
		{"{};'`$()", ""},
		{strings.Repeat("a", 500), strings.Repeat("a", MaxRequestIDLen)},
	}
	for _, c := range cases {
		if got := SanitizeRequestID(c.in); got != c.want {
			t.Errorf("SanitizeRequestID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tid, sid := NewRequestID(), NewSpanID()
	gotTID, gotSID, ok := ParseTraceContext(FormatTraceContext(tid, sid))
	if !ok || gotTID != tid || gotSID != sid {
		t.Fatalf("round-trip gave (%q, %q, %v), want (%q, %q, true)", gotTID, gotSID, ok, tid, sid)
	}
	for _, bad := range []string{"", "no-slash", "/x", "x/", "$()/'`"} {
		if _, _, ok := ParseTraceContext(bad); ok {
			t.Errorf("ParseTraceContext(%q) accepted", bad)
		}
	}
	// Hostile-but-salvageable input sanitizes rather than rejects.
	if tid, sid, ok := ParseTraceContext("ti d/$(sid)"); !ok || tid != "tid" || sid != "sid" {
		t.Fatalf("sanitizing parse gave (%q, %q, %v)", tid, sid, ok)
	}
	ctx := WithTraceContext(context.Background(), tid, sid)
	if gotTID, gotSID, ok := TraceContext(ctx); !ok || gotTID != tid || gotSID != sid {
		t.Fatalf("context round-trip gave (%q, %q, %v)", gotTID, gotSID, ok)
	}
	if _, _, ok := TraceContext(context.Background()); ok {
		t.Fatal("empty context claimed a trace context")
	}
}

// TestSpanNilSafe drives the whole span surface through nil receivers — the
// untraced hot path (apbench, direct library use) runs exactly these no-ops
// per request and must never allocate a tree or panic.
func TestSpanNilSafe(t *testing.T) {
	var sp *Span
	if child := sp.StartChild("x"); child != nil {
		t.Fatalf("nil span spawned child %v", child)
	}
	sp.ObserveChild("x", time.Second)
	sp.AttachChild(NewSpan("y"))
	sp.SetAttr("k", "v")
	sp.End()
	sp.EndIn(time.Second)
	if sp.Wire() != nil {
		t.Fatal("nil span produced a wire tree")
	}
	if CurrentSpan(context.Background()) != nil {
		t.Fatal("empty context has a current span")
	}
	if StartSpan(context.Background(), "x") != nil {
		t.Fatal("StartSpan on empty context allocated")
	}
}

func TestSpanTreeWire(t *testing.T) {
	root := NewSpan("request")
	root.SetAttr("node", "shard0-a")
	q := root.StartChild("queue_wait")
	q.EndIn(2 * time.Millisecond)
	b := root.StartChild("backend")
	k := b.StartChild("kernel_scan")
	k.EndIn(3 * time.Millisecond)
	b.EndIn(5 * time.Millisecond)
	root.EndIn(8 * time.Millisecond)

	w := root.Wire()
	if w.Name != "request" || w.DurNS != (8*time.Millisecond).Nanoseconds() {
		t.Fatalf("root wire = %+v", w)
	}
	if w.Attr("node") != "shard0-a" {
		t.Fatalf("root attrs = %v", w.Attrs)
	}
	if len(w.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(w.Children))
	}
	if got := w.Find("kernel_scan"); got == nil || got.DurNS != (3*time.Millisecond).Nanoseconds() {
		t.Fatalf("kernel_scan = %+v", got)
	}
	var names []string
	w.Walk(func(ws *WireSpan) { names = append(names, ws.Name) })
	if strings.Join(names, ",") != "request,queue_wait,backend,kernel_scan" {
		t.Fatalf("walk order = %v", names)
	}

	// Clone must be a deep copy: grafting into the clone (what the router's
	// stitcher does) must not leak into the recorder's retained original.
	c := w.Clone()
	c.Children[0].Children = append(c.Children[0].Children, &WireSpan{Name: "grafted"})
	c.Children[0].Attrs = map[string]string{"stitch_error": "x"}
	if w.Find("grafted") != nil || w.Children[0].Attr("stitch_error") != "" {
		t.Fatal("mutating the clone reached the original")
	}
}

// TestSpanConcurrentChildren creates children from many goroutines while a
// reader snapshots — the scatter-legs-vs-debug-endpoint race. Run with
// -race to make this meaningful.
func TestSpanConcurrentChildren(t *testing.T) {
	root := NewSpan("request")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := root.StartChild("leg")
				sp.SetAttr("k", "v")
				sp.EndIn(time.Microsecond)
				_ = root.Wire()
			}
		}()
	}
	wg.Wait()
	if got := len(root.Wire().Children); got != 400 {
		t.Fatalf("recorded %d children, want 400", got)
	}
}

// TestTraceStagesFlattenTree verifies Stages() still feeds the slow-query
// log after the span-tree upgrade: nested spans flatten depth-first, the
// root excluded, so stage_<name> attrs keep their pre-tree names.
func TestTraceStagesFlattenTree(t *testing.T) {
	tr := StartTrace("abc")
	tr.Observe("queue_wait", 2*time.Millisecond)
	b := tr.Root().StartChild("backend")
	b.StartChild("kernel_scan").EndIn(time.Millisecond)
	b.EndIn(4 * time.Millisecond)
	stages := tr.Stages()
	if len(stages) != 3 {
		t.Fatalf("stages = %+v", stages)
	}
	want := []string{"queue_wait", "backend", "kernel_scan"}
	for i, s := range stages {
		if s.Name != want[i] {
			t.Fatalf("stage %d = %q, want %q (all: %+v)", i, s.Name, want[i], stages)
		}
	}
}
