// Package shard implements the data-parallel multi-board query engine: the
// dataset is partitioned across B simulated AP boards, every board streams
// the same query batch against its own partitions concurrently, and the host
// merges the per-board top-k lists with the deterministic (distance, ID)
// order every engine in this repository shares.
//
// The paper scales past one board configuration with partial
// reconfiguration on a single board (§III-C), which serializes the
// configuration sweep; the real headroom of automata processors is data
// parallelism — multiple chips, ranks or boards answering the same query
// stream over disjoint dataset slices simultaneously. Sharding turns the
// modeled query time from a sum over partitions into a max over boards, and
// (in fast mode) turns million-vector host workloads into parallel scans.
package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/ap"
	"repro/internal/aperr"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/knn"
)

// Options configures New.
type Options struct {
	// Boards is the number of simulated boards the dataset is sharded
	// across (default 1). Shard boundaries are aligned to whole board
	// configurations, so a dataset spanning fewer configurations than
	// Boards uses fewer boards.
	Boards int
	// Workers bounds how many boards stream concurrently (default: one
	// worker per board). The bound is shared by every concurrent caller of
	// Query/QueryBatch on this engine.
	Workers int
	// Capacity overrides vectors per board configuration (0 = paper
	// default, see core.DefaultBoardCapacity).
	Capacity int
	// Layout overrides the default monotonic stream layout.
	Layout *core.Layout
	// Fast selects the semantics-equivalent fast engine per shard instead
	// of cycle-accurate board simulation. Results are identical; modeled
	// time is computed analytically from the same clock and
	// reconfiguration model the boards charge.
	Fast bool
	// Config is the board variant (zero value = ap.Gen2()).
	Config ap.DeviceConfig
}

// BatchResult is one completed batch of an asynchronous QueryBatch call.
type BatchResult struct {
	// Batch is the index of the batch in the submitted slice. Results are
	// delivered in submission order.
	Batch int
	// Results holds the k nearest neighbors per query, (distance, ID)-sorted.
	Results [][]knn.Neighbor
	// Err is the first error the batch hit, if any.
	Err error
}

// partitionEngine is the per-shard execution substrate: core.Engine on a
// dedicated board, or core.FastEngine.
type partitionEngine interface {
	QueryEncoded(ctx context.Context, batch *core.EncodedBatch, k int) ([][]knn.Neighbor, error)
	Partitions() int
}

// shard is one board's slice of the dataset. Its mutex serializes access to
// the underlying (stateful) board across concurrent callers.
type shard struct {
	mu       sync.Mutex
	engine   partitionEngine
	board    *ap.Board // nil in fast mode
	idOffset int
	size     int
	parts    int
	// fast-mode modeled-cost accounting, mirroring ap.Board's counters.
	symbols   int
	reconfigs int
}

// Engine is the sharded multi-board query engine. It is safe for concurrent
// use: shards serialize their own board access and the worker bound is
// shared across callers.
type Engine struct {
	layout     core.Layout
	cfg        ap.DeviceConfig
	capacity   int
	fast       bool
	datasetLen int
	shards     []*shard
	fleet      *ap.Fleet // nil in fast mode
	sem        chan struct{}
}

// New shards ds across opts.Boards boards and precompiles every shard's
// board images (sim mode) or partition plan (fast mode).
func New(ds *bitvec.Dataset, opts Options) (*Engine, error) {
	boards := opts.Boards
	if boards == 0 {
		boards = 1
	}
	if boards < 0 {
		return nil, fmt.Errorf("shard: board count %d must be positive", boards)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("shard: worker count %d must not be negative", opts.Workers)
	}
	layout, err := core.ResolveLayout(ds.Dim(), opts.Layout)
	if err != nil {
		return nil, err
	}
	capacity, err := core.ResolveCapacity(ds.Dim(), opts.Capacity)
	if err != nil {
		return nil, err
	}
	cfg := opts.Config
	if cfg.ClockHz == 0 {
		cfg = ap.Gen2()
	}
	e := &Engine{
		layout: layout, cfg: cfg, capacity: capacity,
		fast: opts.Fast, datasetLen: ds.Len(),
	}
	ranges := Split(ds.Len(), capacity, boards)
	if !opts.Fast {
		e.fleet = ap.NewFleet(cfg, len(ranges))
	}
	engOpts := core.EngineOptions{Layout: &layout, Capacity: capacity}
	for i, r := range ranges {
		sub := ds.Slice(r[0], r[1])
		s := &shard{idOffset: r[0], size: r[1] - r[0]}
		if opts.Fast {
			s.engine, err = core.NewFastEngine(sub, engOpts)
		} else {
			s.board = e.fleet.Board(i)
			s.engine, err = core.NewEngine(s.board, sub, engOpts)
		}
		if err != nil {
			return nil, fmt.Errorf("shard: board %d [%d,%d): %w", i, r[0], r[1], err)
		}
		s.parts = s.engine.Partitions()
		e.shards = append(e.shards, s)
	}
	workers := opts.Workers
	if workers == 0 || workers > len(e.shards) {
		workers = len(e.shards)
	}
	if workers < 1 {
		workers = 1
	}
	e.sem = make(chan struct{}, workers)
	return e, nil
}

// Split plans the shard boundaries: the dataset's board configurations
// (capacity-sized ranges) are distributed contiguously and as evenly as
// possible across up to boards shards. Boundaries land on whole
// configurations so every shard's partitioning — and therefore its report
// IDs and merge behaviour — is exactly the slice of the serial engine's.
// Shards that would receive no configurations are dropped.
func Split(n, capacity, boards int) [][2]int {
	parts := core.PartitionRanges(n, capacity)
	if boards > len(parts) {
		boards = len(parts)
	}
	var out [][2]int
	for i := 0; i < boards; i++ {
		lo := i * len(parts) / boards
		hi := (i + 1) * len(parts) / boards
		if lo == hi {
			continue
		}
		out = append(out, [2]int{parts[lo][0], parts[hi-1][1]})
	}
	return out
}

// Shards returns the number of boards actually in use.
func (e *Engine) Shards() int { return len(e.shards) }

// Partitions returns the total board configurations across all shards —
// identical to the serial engine's count for the same dataset and capacity.
func (e *Engine) Partitions() int {
	n := 0
	for _, s := range e.shards {
		n += s.parts
	}
	return n
}

// Layout returns the shared stream layout.
func (e *Engine) Layout() core.Layout { return e.layout }

// Fleet returns the underlying boards, or nil in fast mode.
func (e *Engine) Fleet() *ap.Fleet { return e.fleet }

// prepare validates a query batch and, in sim mode, encodes its symbol
// stream once for all boards.
func (e *Engine) prepare(queries []bitvec.Vector) (*core.EncodedBatch, error) {
	if e.fast {
		return core.ValidateBatch(queries, e.layout)
	}
	return core.EncodeBatch(queries, e.layout)
}

// Query answers a batch of queries with the k nearest neighbors each, all
// shards streaming concurrently under the worker bound. Results are
// (distance, ID)-sorted and byte-identical to the serial engines'.
// Cancellation of ctx aborts the in-flight fan-out: boards stop at their
// next partition boundary and Query returns an error wrapping
// aperr.ErrCanceled.
func (e *Engine) Query(ctx context.Context, queries []bitvec.Vector, k int) ([][]knn.Neighbor, error) {
	batch, err := e.prepare(queries)
	if err != nil {
		return nil, err
	}
	return e.run(ctx, batch, k)
}

// QueryBatch answers many batches asynchronously, pipelining query encoding
// against board streaming and report decoding: while the boards stream
// batch i, batch i+1 is already being encoded. Results arrive on the
// returned channel in submission order; the channel is closed after the
// last batch. The engine may be queried concurrently from multiple
// goroutines — the shared worker bound still applies.
//
// Canceling ctx aborts the pipeline promptly: the in-flight batch stops at
// its next partition boundary, every not-yet-started batch is delivered
// with an error wrapping aperr.ErrCanceled, and the channel still closes.
// Results delivered before the cancellation remain valid — the channel is
// buffered for the whole submission, so a consumer can keep draining
// completed batches after canceling.
func (e *Engine) QueryBatch(ctx context.Context, batches [][]bitvec.Vector, k int) <-chan BatchResult {
	type encJob struct {
		idx   int
		batch *core.EncodedBatch
		err   error
	}
	// Buffering the output for every batch means a slow consumer never
	// stalls the boards; pipelineDepth bounds how far encoding runs ahead.
	const pipelineDepth = 2
	enc := make(chan encJob, pipelineDepth)
	out := make(chan BatchResult, len(batches))
	go func() {
		defer close(enc)
		for i, qs := range batches {
			if ctx.Err() != nil {
				// The runner fills in canceled results for the indexes the
				// encoder never produced.
				return
			}
			b, err := e.prepare(qs)
			select {
			case enc <- encJob{idx: i, batch: b, err: err}:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		defer close(out)
		next := 0
		for j := range enc {
			if j.err == nil && ctx.Err() != nil {
				j.err = aperr.Canceled(ctx.Err())
			}
			if j.err != nil {
				out <- BatchResult{Batch: j.idx, Err: j.err}
			} else {
				res, err := e.run(ctx, j.batch, k)
				out <- BatchResult{Batch: j.idx, Results: res, Err: err}
			}
			next = j.idx + 1
		}
		// On cancellation the encoder stops early; deliver the undone tail
		// so consumers always see one result per submitted batch.
		for ; next < len(batches); next++ {
			out <- BatchResult{Batch: next, Err: aperr.Canceled(ctx.Err())}
		}
	}()
	return out
}

// run fans one encoded batch out across all shards and merges the per-shard
// top-k lists in shard order. It is the single k-validation point for both
// Query and QueryBatch. A canceled ctx keeps queued shards from ever
// acquiring a worker slot and stops streaming shards at their next
// partition boundary.
func (e *Engine) run(ctx context.Context, batch *core.EncodedBatch, k int) ([][]knn.Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("shard: got k=%d: %w", k, aperr.ErrBadK)
	}
	if err := ctx.Err(); err != nil {
		return nil, aperr.Canceled(err)
	}
	perShard := make([][][]knn.Neighbor, len(e.shards))
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	for si, s := range e.shards {
		wg.Add(1)
		go func(si int, s *shard) {
			defer wg.Done()
			select {
			case e.sem <- struct{}{}:
			case <-ctx.Done():
				errs[si] = aperr.Canceled(ctx.Err())
				return
			}
			defer func() { <-e.sem }()
			perShard[si], errs[si] = s.query(ctx, batch, k, e.layout)
		}(si, s)
	}
	wg.Wait()
	// The context error takes precedence: a canceled fan-out reports the
	// cancellation, not whichever shard happened to observe it first.
	if err := ctx.Err(); err != nil {
		return nil, aperr.Canceled(err)
	}
	for si, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: board %d: %w", si, err)
		}
	}
	results := make([][]knn.Neighbor, batch.Len())
	for qi := range results {
		for si := range e.shards {
			results[qi] = knn.MergeTopK(results[qi], perShard[si][qi], k)
		}
	}
	return results, nil
}

// query executes the batch on one shard, translating shard-local report IDs
// into global dataset IDs. The shard mutex serializes board access across
// concurrent callers; in fast mode it also guards the modeled-cost meter.
func (s *shard) query(ctx context.Context, batch *core.EncodedBatch, k int, l core.Layout) ([][]knn.Neighbor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := s.engine.QueryEncoded(ctx, batch, k)
	if err != nil {
		return nil, err
	}
	if s.board == nil {
		// Mirror ap.Board's accounting: one reconfiguration and one full
		// batch stream per partition of the configuration sweep.
		s.symbols += s.parts * batch.Len() * l.StreamLen()
		s.reconfigs += s.parts
	}
	for _, ns := range res {
		for i := range ns {
			ns[i].ID += s.idOffset
		}
	}
	return res, nil
}

// modeledTime returns one shard's modeled wall-clock under its mutex — the
// board's own accounting in sim mode, the mirrored analytic model (symbols
// at the stream clock plus reconfigurations beyond the first) in fast mode.
func (s *shard) modeledTime(cfg ap.DeviceConfig) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.board != nil {
		return s.board.ModeledTime()
	}
	t := cfg.StreamTime(s.symbols)
	if s.reconfigs > 1 {
		t += time.Duration(s.reconfigs-1) * cfg.ReconfigLatency
	}
	return t
}

// ModeledTime returns the fleet's modeled wall-clock: the maximum across
// boards, since shards stream concurrently. Safe to call while queries are
// in flight — each shard is sampled under its own lock.
func (e *Engine) ModeledTime() time.Duration {
	var max time.Duration
	for _, s := range e.shards {
		if t := s.modeledTime(e.cfg); t > max {
			max = t
		}
	}
	return max
}

// SymbolsStreamed returns total symbols across shards (both modes).
func (e *Engine) SymbolsStreamed() int {
	n := 0
	for _, s := range e.shards {
		s.mu.Lock()
		if s.board != nil {
			n += s.board.SymbolsStreamed()
		} else {
			n += s.symbols
		}
		s.mu.Unlock()
	}
	return n
}

// Reconfigs returns the total board configurations loaded across shards
// (both modes) — the reconfiguration count the §III-C sweep charges.
func (e *Engine) Reconfigs() int {
	n := 0
	for _, s := range e.shards {
		s.mu.Lock()
		if s.board != nil {
			n += s.board.Reconfigs()
		} else {
			n += s.reconfigs
		}
		s.mu.Unlock()
	}
	return n
}

// BoardTimes returns every board's modeled wall-clock, index-aligned with
// the shard order. ModeledTime is the maximum of these; the spread between
// them shows how evenly the configuration sweep divides across the fleet.
func (e *Engine) BoardTimes() []time.Duration {
	out := make([]time.Duration, len(e.shards))
	for i, s := range e.shards {
		out[i] = s.modeledTime(e.cfg)
	}
	return out
}
