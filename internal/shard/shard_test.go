package shard_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/ap"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/knn"
	"repro/internal/shard"
	"repro/internal/stats"
)

// queryEngine answers a batch; implemented by the serial core engines.
type queryEngine interface {
	Query(queries []bitvec.Vector, k int) ([][]knn.Neighbor, error)
}

func mustQuery(t *testing.T, e queryEngine, queries []bitvec.Vector, k int) [][]knn.Neighbor {
	t.Helper()
	res, err := e.Query(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustQueryShard(t *testing.T, e *shard.Engine, queries []bitvec.Vector, k int) [][]knn.Neighbor {
	t.Helper()
	res, err := e.Query(context.Background(), queries, k)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertIdentical requires byte-identical neighbor lists: same IDs, same
// distances, same (distance, ID) tie-break order, same lengths.
func assertIdentical(t *testing.T, label string, got, want [][]knn.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d result lists, want %d", label, len(got), len(want))
	}
	for qi := range want {
		if len(got[qi]) != len(want[qi]) {
			t.Fatalf("%s: query %d has %d neighbors, want %d", label, qi, len(got[qi]), len(want[qi]))
		}
		for j := range want[qi] {
			if got[qi][j] != want[qi][j] {
				t.Fatalf("%s: query %d rank %d = %+v, want %+v", label, qi, j, got[qi][j], want[qi][j])
			}
		}
	}
}

// TestShardEquivalenceFast sweeps the full matrix on the fast substrate:
// seeded random datasets across dims {32, 128, 256}, several capacities and
// k values, board counts {1, 2, 4, 7} — the sharded engine must return
// byte-identical neighbor lists to the serial FastEngine.
func TestShardEquivalenceFast(t *testing.T) {
	cases := []struct {
		dim, n     int
		capacities []int
		ks         []int
	}{
		{dim: 32, n: 130, capacities: []int{7, 16, 64}, ks: []int{1, 3, 10}},
		{dim: 128, n: 96, capacities: []int{8, 24}, ks: []int{2, 5}},
		{dim: 256, n: 100, capacities: []int{10, 33}, ks: []int{1, 4, 150}},
	}
	for _, c := range cases {
		rng := stats.NewRNG(uint64(c.dim))
		ds := bitvec.RandomDataset(rng, c.n, c.dim)
		queries := make([]bitvec.Vector, 5)
		for i := range queries {
			queries[i] = bitvec.Random(rng, c.dim)
		}
		for _, capacity := range c.capacities {
			serial, err := core.NewFastEngine(ds, core.EngineOptions{Capacity: capacity})
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range c.ks {
				want := mustQuery(t, serial, queries, k)
				for _, boards := range []int{1, 2, 4, 7} {
					eng, err := shard.New(ds, shard.Options{Boards: boards, Capacity: capacity, Fast: true})
					if err != nil {
						t.Fatal(err)
					}
					got := mustQueryShard(t, eng, queries, k)
					assertIdentical(t,
						labelOf("fast", c.dim, capacity, k, boards), got, want)
				}
			}
		}
	}
}

// TestShardEquivalenceSimulated runs the cycle-accurate matrix: the sharded
// multi-board engine, the serial board Engine and the FastEngine must agree
// exactly, including tie-breaks, across dims {32, 128, 256} and board
// counts {1, 2, 4, 7}.
func TestShardEquivalenceSimulated(t *testing.T) {
	cases := []struct {
		dim, n, capacity, k int
	}{
		{dim: 32, n: 60, capacity: 9, k: 4},
		{dim: 128, n: 28, capacity: 4, k: 3},
		{dim: 256, n: 14, capacity: 2, k: 2},
	}
	for _, c := range cases {
		rng := stats.NewRNG(uint64(1000 + c.dim))
		ds := bitvec.RandomDataset(rng, c.n, c.dim)
		queries := []bitvec.Vector{bitvec.Random(rng, c.dim), bitvec.Random(rng, c.dim)}

		serial, err := core.NewEngine(ap.NewBoard(ap.Gen2()), ds, core.EngineOptions{Capacity: c.capacity})
		if err != nil {
			t.Fatal(err)
		}
		want := mustQuery(t, serial, queries, c.k)

		fast, err := core.NewFastEngine(ds, core.EngineOptions{Capacity: c.capacity})
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, labelOf("fastref", c.dim, c.capacity, c.k, 1),
			mustQuery(t, fast, queries, c.k), want)

		for _, boards := range []int{1, 2, 4, 7} {
			eng, err := shard.New(ds, shard.Options{Boards: boards, Capacity: c.capacity})
			if err != nil {
				t.Fatal(err)
			}
			if eng.Partitions() != serial.Partitions() {
				t.Fatalf("sharded partitions = %d, serial = %d", eng.Partitions(), serial.Partitions())
			}
			got := mustQueryShard(t, eng, queries, c.k)
			assertIdentical(t, labelOf("sim", c.dim, c.capacity, c.k, boards), got, want)
		}
	}
}

// TestShardModeledTime checks the scaling claim: the sharded engine's
// modeled time is the maximum across its boards, and for >= 2 shards it is
// strictly less than the serial single-board sweep of the same workload.
func TestShardModeledTime(t *testing.T) {
	rng := stats.NewRNG(17)
	ds := bitvec.RandomDataset(rng, 60, 32)
	queries := []bitvec.Vector{bitvec.Random(rng, 32), bitvec.Random(rng, 32)}
	const capacity, k = 10, 3

	serialBoard := ap.NewBoard(ap.Gen1())
	serial, err := core.NewEngine(serialBoard, ds, core.EngineOptions{Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	mustQuery(t, serial, queries, k)
	serialTime := serialBoard.ModeledTime()

	for _, boards := range []int{2, 4} {
		eng, err := shard.New(ds, shard.Options{Boards: boards, Capacity: capacity, Config: ap.Gen1()})
		if err != nil {
			t.Fatal(err)
		}
		mustQueryShard(t, eng, queries, k)
		got := eng.ModeledTime()
		if got <= 0 || got >= serialTime {
			t.Errorf("boards=%d: modeled time %v, want in (0, %v)", boards, got, serialTime)
		}
		// Max-across-shards by definition: equal to the slowest fleet board.
		fleet := eng.Fleet()
		var max = fleet.Board(0).ModeledTime()
		for i := 1; i < fleet.Len(); i++ {
			if tm := fleet.Board(i).ModeledTime(); tm > max {
				max = tm
			}
		}
		if got != max {
			t.Errorf("boards=%d: ModeledTime %v != max board %v", boards, got, max)
		}
	}

	// Fast mode charges the same analytic model as the single board.
	fastSerial, err := shard.New(ds, shard.Options{Boards: 1, Capacity: capacity, Fast: true, Config: ap.Gen1()})
	if err != nil {
		t.Fatal(err)
	}
	mustQueryShard(t, fastSerial, queries, k)
	if got := fastSerial.ModeledTime(); got != serialTime {
		t.Errorf("fast 1-board modeled time %v, want %v (the board's own accounting)", got, serialTime)
	}
	fast4, err := shard.New(ds, shard.Options{Boards: 4, Capacity: capacity, Fast: true, Config: ap.Gen1()})
	if err != nil {
		t.Fatal(err)
	}
	mustQueryShard(t, fast4, queries, k)
	if got := fast4.ModeledTime(); got <= 0 || got >= serialTime {
		t.Errorf("fast 4-board modeled time %v, want in (0, %v)", got, serialTime)
	}
}

// TestSplit checks the shard planner invariants: full coverage, contiguity,
// boundaries on whole configurations, and balanced distribution.
func TestSplit(t *testing.T) {
	for _, c := range []struct{ n, capacity, boards int }{
		{0, 8, 4}, {5, 8, 4}, {100, 7, 1}, {100, 7, 3}, {100, 7, 100},
		{1024, 1024, 4}, {4096, 512, 7},
	} {
		ranges := shard.Split(c.n, c.capacity, c.boards)
		if c.n == 0 {
			if len(ranges) != 0 {
				t.Fatalf("Split(%v) = %v, want empty", c, ranges)
			}
			continue
		}
		if len(ranges) > c.boards {
			t.Fatalf("Split(%v) = %d shards > %d boards", c, len(ranges), c.boards)
		}
		pos := 0
		for _, r := range ranges {
			if r[0] != pos || r[1] <= r[0] {
				t.Fatalf("Split(%v): range %v not contiguous from %d", c, r, pos)
			}
			if r[0]%c.capacity != 0 {
				t.Fatalf("Split(%v): boundary %d not on a configuration", c, r[0])
			}
			pos = r[1]
		}
		if pos != c.n {
			t.Fatalf("Split(%v): covers [0,%d), want [0,%d)", c, pos, c.n)
		}
	}
}

// TestQueryBatchOrderAndErrors checks asynchronous delivery: submission
// order, per-batch error isolation, and closure of the channel.
func TestQueryBatchOrderAndErrors(t *testing.T) {
	rng := stats.NewRNG(23)
	ds := bitvec.RandomDataset(rng, 50, 32)
	eng, err := shard.New(ds, shard.Options{Boards: 2, Capacity: 8, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := core.NewFastEngine(ds, core.EngineOptions{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	good0 := []bitvec.Vector{bitvec.Random(rng, 32)}
	bad := []bitvec.Vector{bitvec.Random(rng, 16)} // wrong dimensionality
	good2 := []bitvec.Vector{bitvec.Random(rng, 32), bitvec.Random(rng, 32)}

	i := 0
	for res := range eng.QueryBatch(context.Background(), [][]bitvec.Vector{good0, bad, good2}, 4) {
		if res.Batch != i {
			t.Fatalf("batch %d delivered at position %d", res.Batch, i)
		}
		switch i {
		case 0, 2:
			if res.Err != nil {
				t.Fatalf("batch %d: %v", i, res.Err)
			}
			qs := good0
			if i == 2 {
				qs = good2
			}
			want := mustQuery(t, serial, qs, 4)
			assertIdentical(t, "batch", res.Results, want)
		case 1:
			if res.Err == nil {
				t.Fatal("dimensionality error not surfaced")
			}
		}
		i++
	}
	if i != 3 {
		t.Fatalf("received %d results, want 3", i)
	}

	for res := range eng.QueryBatch(context.Background(), [][]bitvec.Vector{good0}, 0) {
		if res.Err == nil {
			t.Fatal("k=0 accepted")
		}
	}
}

// TestConcurrentQueryBatch hammers one engine from many goroutines — the
// -race coverage for the shared worker pool, the per-shard board mutexes
// and the fast-mode meters. Every caller must see results identical to the
// serial reference.
func TestConcurrentQueryBatch(t *testing.T) {
	rng := stats.NewRNG(31)
	const dim, n, k = 64, 200, 6
	ds := bitvec.RandomDataset(rng, n, dim)
	queries := make([]bitvec.Vector, 4)
	for i := range queries {
		queries[i] = bitvec.Random(rng, dim)
	}
	serial, err := core.NewFastEngine(ds, core.EngineOptions{Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.Query(queries, k)
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"sim", false}} {
		t.Run(mode.name, func(t *testing.T) {
			eng, err := shard.New(ds, shard.Options{Boards: 4, Workers: 2, Capacity: 32, Fast: mode.fast})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, 64)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					batches := [][]bitvec.Vector{queries, queries}
					for res := range eng.QueryBatch(context.Background(), batches, k) {
						if res.Err != nil {
							errs <- res.Err
							return
						}
						if !reflect.DeepEqual(res.Results, want) {
							errs <- errMismatch
							return
						}
						// Sampling the accounting while queries are in
						// flight must be race-free in both modes.
						if eng.ModeledTime() < 0 || eng.SymbolsStreamed() < 0 {
							errs <- errMismatch
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

var errMismatch = errorString("concurrent result diverged from serial reference")

type errorString string

func (e errorString) Error() string { return string(e) }

func labelOf(mode string, dim, capacity, k, boards int) string {
	return mode + " d=" + itoa(dim) + " cap=" + itoa(capacity) + " k=" + itoa(k) + " B=" + itoa(boards)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
