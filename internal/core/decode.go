package core

import (
	"fmt"

	"repro/internal/automata"
	"repro/internal/knn"
)

// DecodeReports converts raw AP report records into per-query neighbor
// lists. Each reporting activation carries the vector's report ID and the
// cycle offset at which its counter crossed the threshold; the offset within
// the query window encodes the inverted Hamming distance (§III-B), which the
// host converts back to a Hamming distance. Result lists are sorted by
// (distance, ID) — equidistant vectors report on the same cycle and the host
// breaks the tie by ID.
//
// idOffset translates macro-local report IDs into global dataset IDs, which
// the partial-reconfiguration driver uses across board configurations.
func DecodeReports(reports []automata.Report, l Layout, numQueries, idOffset int) ([][]knn.Neighbor, error) {
	out := make([][]knn.Neighbor, numQueries)
	for _, r := range reports {
		if r.Cycle < 0 {
			return nil, fmt.Errorf("core: report at negative cycle %d", r.Cycle)
		}
		q, off := l.WindowOf(r.Cycle)
		if q >= numQueries {
			return nil, fmt.Errorf("core: report at cycle %d beyond the %d-query stream", r.Cycle, numQueries)
		}
		ihd, err := l.IHDFromCycle(off)
		if err != nil {
			return nil, fmt.Errorf("core: query %d: %w", q, err)
		}
		out[q] = append(out[q], knn.Neighbor{
			ID:   idOffset + int(r.ReportID),
			Dist: l.Dim - ihd,
		})
	}
	for _, ns := range out {
		knn.SortNeighbors(ns)
	}
	return out, nil
}

// TopK truncates a (Dist, ID)-sorted neighbor list to its k best entries.
func TopK(ns []knn.Neighbor, k int) []knn.Neighbor {
	if k > len(ns) {
		k = len(ns)
	}
	return ns[:k]
}
