// Package core implements the paper's primary contribution: automata designs
// for k-nearest-neighbor similarity search on the AP (§III).
//
// Each dataset vector becomes a Hamming macro — a guard state, a star/match
// compute chain, a collector reduction tree and an inverted-Hamming-distance
// counter — extended with a sorting macro whose temporally encoded sort makes
// closer vectors report earlier (Fig. 2). The package also provides the
// symbol-stream builder and report decoder, the partial-reconfiguration
// engine for datasets larger than one board (§III-C), the three automata
// optimizations of §VI (vector packing, symbol-stream multiplexing,
// statistical activation reduction) and the architectural extensions of §VII.
package core

import (
	"fmt"
)

// Symbol-stream alphabet. Specials occupy dedicated high bits so every STE
// class in the plain kNN design is a one-bit ternary match, the property the
// STE-decomposition analysis of §VII-C exploits. Data symbols carry the
// query bit for the current dimension in bit 0.
const (
	SymBit0 byte = 0x00 // query bit 0
	SymBit1 byte = 0x01 // query bit 1
	SymSOF  byte = 0x80 // start of file: begins a query window (bit 7)
	SymPad  byte = 0x40 // ^EOF filler driving the temporal sort (bit 6)
	SymEOF  byte = 0x20 // end of file: resets counters (bit 5)
)

// Layout fixes the temporal structure of one query window: how many collector
// levels the Hamming macro uses, how long the sort phase runs, and therefore
// at which cycle a vector of a given inverted Hamming distance reports.
//
// Reproduction note (see README.md): with the paper's Fig. 2c/3 layout the
// sort state's first counter increment coincides with the final collector
// flush, so whether the last dimension matched shifts the report cycle by
// one and adjacent distances can collide. The default layout therefore
// delays the sort state by DelaySlack >= CollectorDepth cycles, which makes
// the temporal sort provably monotonic. PaperExact reproduces the original
// Fig. 3 timing for the golden trace tests.
type Layout struct {
	// Dim is the vector dimensionality d.
	Dim int
	// CollectorFanIn bounds the fan-in of each collector state; larger trees
	// are split into levels ("a reduction tree of '*' states to limit the
	// maximum state fan in and improve routability", §III-A).
	CollectorFanIn int
	// DelaySlack is the number of delay states between the compute chain and
	// the sort state. Monotonic sorting requires DelaySlack >= CollectorDepth.
	DelaySlack int
	// PaperExact selects the paper's Fig. 2/3 layout: a single collector,
	// no delay slack, and d+2 padding symbols.
	PaperExact bool
}

// NewLayout returns the default, provably monotonic layout for dimension d.
func NewLayout(d int) Layout {
	l := Layout{Dim: d, CollectorFanIn: 16}
	l.DelaySlack = l.CollectorDepth()
	return l
}

// PaperLayout returns the layout that replicates the paper's Fig. 3 cycle
// timing exactly (single collector, no delay).
func PaperLayout(d int) Layout {
	return Layout{Dim: d, CollectorFanIn: d, PaperExact: true}
}

// Validate checks the layout invariants.
func (l Layout) Validate() error {
	if l.Dim <= 0 {
		return fmt.Errorf("core: layout dimension %d must be positive", l.Dim)
	}
	if l.CollectorFanIn <= 1 {
		return fmt.Errorf("core: collector fan-in %d must be at least 2", l.CollectorFanIn)
	}
	if !l.PaperExact && l.DelaySlack != l.CollectorDepth() {
		// Slack below the collector depth lets sort increments overlap
		// collector flushes (the Fig. 3 hazard); slack above it makes the
		// all-dimensions-match case report off-schedule. Both break the
		// cycle -> distance decoding, so the slack is pinned to the depth.
		return fmt.Errorf("core: delay slack %d must equal collector depth %d for a monotonic, decodable sort",
			l.DelaySlack, l.CollectorDepth())
	}
	return nil
}

// CollectorDepth returns the number of collector levels needed to reduce d
// match states with the configured fan-in.
func (l Layout) CollectorDepth() int {
	if l.PaperExact {
		return 1
	}
	depth := 0
	n := l.Dim
	for n > 1 {
		n = (n + l.CollectorFanIn - 1) / l.CollectorFanIn
		depth++
	}
	if depth == 0 {
		depth = 1 // a single match state still passes through one collector
	}
	return depth
}

// PadSymbols returns the number of ^EOF filler symbols per query (Fig. 2c).
func (l Layout) PadSymbols() int {
	if l.PaperExact {
		return l.Dim + 2
	}
	return l.Dim + l.DelaySlack + 1
}

// StreamLen returns the total symbols per query window:
// SOF + d data symbols + padding + EOF.
func (l Layout) StreamLen() int {
	return 1 + l.Dim + l.PadSymbols() + 1
}

// ReportCycle returns the cycle offset within a query window at which a
// vector with inverted Hamming distance ihd reports. Closer vectors (higher
// ihd) report earlier — the temporal sort of §III-B.
//
// For PaperExact layouts the value is nominal: the Fig. 3 timing carries a
// one-cycle ambiguity depending on whether the final dimension matched.
func (l Layout) ReportCycle(ihd int) int {
	if ihd < 0 || ihd > l.Dim {
		panic(fmt.Sprintf("core: inverted Hamming distance %d out of range [0,%d]", ihd, l.Dim))
	}
	if l.PaperExact {
		return 2*l.Dim + 3 - ihd
	}
	return 2*l.Dim + l.DelaySlack + 2 - ihd
}

// IHDFromCycle inverts ReportCycle: the inverted Hamming distance implied by
// a report at the given cycle offset within a query window.
func (l Layout) IHDFromCycle(cycle int) (int, error) {
	var ihd int
	if l.PaperExact {
		ihd = 2*l.Dim + 3 - cycle
	} else {
		ihd = 2*l.Dim + l.DelaySlack + 2 - cycle
	}
	if ihd < 0 || ihd > l.Dim {
		return 0, fmt.Errorf("core: report cycle %d outside the sort window of layout d=%d", cycle, l.Dim)
	}
	return ihd, nil
}

// QueryLatencyCycles returns the per-query latency in symbol cycles, the
// quantity the paper's performance model charges per query (§VI-C uses 2d).
func (l Layout) QueryLatencyCycles() int { return l.StreamLen() }
