package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ap"
	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/knn"
	"repro/internal/stats"
)

// TestJaccardMacroIntersection: the macro's report cycle must encode the
// intersection size exactly.
func TestJaccardMacroIntersection(t *testing.T) {
	f := func(seedV, seedQ uint64, rawDim uint8) bool {
		dim := int(rawDim)%24 + 2
		l := NewLayout(dim)
		v := bitvec.Random(stats.NewRNG(seedV), dim)
		q := bitvec.Random(stats.NewRNG(seedQ), dim)
		net := automata.NewNetwork()
		BuildJaccardMacro(net, v, l, 0)
		sim := automata.MustSimulator(net)
		reports := sim.Run(BuildQueryStream(q, l))
		if len(reports) != 1 {
			return false
		}
		wantInter := 0
		for i := 0; i < dim; i++ {
			if v.Bit(i) && q.Bit(i) {
				wantInter++
			}
		}
		return reports[0].Cycle == l.ReportCycle(wantInter)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestJaccardMacroAllZeroVector(t *testing.T) {
	dim := 8
	l := NewLayout(dim)
	net := automata.NewNetwork()
	BuildJaccardMacro(net, bitvec.New(dim), l, 0)
	sim := automata.MustSimulator(net)
	reports := sim.Run(BuildQueryStream(bitvec.Random(stats.NewRNG(1), dim), l))
	if len(reports) != 1 || reports[0].Cycle != l.ReportCycle(0) {
		t.Errorf("all-zero vector reports = %v, want cycle %d", reports, l.ReportCycle(0))
	}
}

func TestJaccardDecodeMatchesReference(t *testing.T) {
	rng := stats.NewRNG(606)
	const dim, n = 16, 10
	l := NewLayout(dim)
	ds := bitvec.RandomDataset(rng, n, dim)
	queries := []bitvec.Vector{bitvec.Random(rng, dim), bitvec.Random(rng, dim)}
	net := automata.NewNetwork()
	setBits := make([]int, n)
	for i := 0; i < n; i++ {
		m := BuildJaccardMacro(net, ds.At(i), l, int32(i))
		setBits[i] = m.SetBits
	}
	sim := automata.MustSimulator(net)
	reports := sim.Run(BuildStream(queries, l))
	queryBits := []int{queries[0].PopCount(), queries[1].PopCount()}
	decoded, err := DecodeJaccardReports(reports, l, len(queries), setBits, queryBits)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		if len(decoded[qi]) != n {
			t.Fatalf("query %d: %d results, want %d", qi, len(decoded[qi]), n)
		}
		for _, r := range decoded[qi] {
			want := JaccardSimilarity(ds.At(r.ID), q)
			if math.Abs(r.Similarity-want) > 1e-12 {
				t.Errorf("query %d vector %d: similarity %v, reference %v", qi, r.ID, r.Similarity, want)
			}
		}
		// Sorted by descending similarity.
		for i := 1; i < len(decoded[qi]); i++ {
			if decoded[qi][i].Similarity > decoded[qi][i-1].Similarity {
				t.Errorf("query %d: results out of order at %d", qi, i)
			}
		}
	}
}

func TestJaccardSimilarityReference(t *testing.T) {
	a, _ := bitvec.ParseBits("1100")
	b, _ := bitvec.ParseBits("1010")
	// intersection 1, union 3.
	if got := JaccardSimilarity(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
	z := bitvec.New(4)
	if got := JaccardSimilarity(z, z); got != 1 {
		t.Errorf("Jaccard of empty sets = %v, want 1", got)
	}
}

func TestJaccardMacroSmallerForSparseVectors(t *testing.T) {
	dim := 64
	l := NewLayout(dim)
	sparse := bitvec.New(dim)
	sparse.Set(3, true)
	netSparse := automata.NewNetwork()
	BuildJaccardMacro(netSparse, sparse, l, 0)
	dense := bitvec.New(dim)
	for i := 0; i < dim; i++ {
		dense.Set(i, true)
	}
	netDense := automata.NewNetwork()
	BuildJaccardMacro(netDense, dense, l, 0)
	if netSparse.Stats().STEs >= netDense.Stats().STEs {
		t.Errorf("sparse macro (%d STEs) not smaller than dense (%d)",
			netSparse.Stats().STEs, netDense.Stats().STEs)
	}
}

// ---- ApproxEngine (§VI-C end to end) ----

func TestApproxEngineSubsetOfExactAndHonest(t *testing.T) {
	rng := stats.NewRNG(7070)
	const dim, n, numQ, k = 16, 64, 6, 2
	ds := bitvec.RandomDataset(rng, n, dim)
	queries := make([]bitvec.Vector, numQ)
	for i := range queries {
		queries[i] = bitvec.Random(rng, dim)
	}
	board := ap.NewBoard(ap.Gen2())
	eng, err := NewApproxEngine(board, ds, EngineOptions{Capacity: 32}, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Partitions() != 2 {
		t.Fatalf("partitions = %d, want 2", eng.Partitions())
	}
	got, err := eng.Query(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := knn.Batch(ds, queries, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	recallSum := 0.0
	for qi := range queries {
		// Distances must be honest for every returned neighbor.
		for _, nb := range got[qi] {
			if nb.Dist != ds.Hamming(nb.ID, queries[qi]) {
				t.Errorf("query %d: dishonest distance for vector %d", qi, nb.ID)
			}
		}
		hits := 0
		ids := map[int]bool{}
		for _, nb := range got[qi] {
			ids[nb.ID] = true
		}
		for _, nb := range exact[qi] {
			if ids[nb.ID] {
				hits++
			}
		}
		recallSum += float64(hits) / float64(len(exact[qi]))
	}
	// Faithful hardware suppression at kPrime=2 keeps the top-2 almost
	// always (Table VI addendum: ~0% incorrect).
	if avg := recallSum / numQ; avg < 0.9 {
		t.Errorf("average recall = %v, want >= 0.9", avg)
	}
}

func TestApproxEngineReducesReports(t *testing.T) {
	rng := stats.NewRNG(8080)
	const dim, n, k = 16, 64, 2
	ds := bitvec.RandomDataset(rng, n, dim)
	queries := []bitvec.Vector{bitvec.Random(rng, dim)}

	exactBoard := ap.NewBoard(ap.Gen2())
	exactEng, err := NewEngine(exactBoard, ds, EngineOptions{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exactEng.Query(queries, k); err != nil {
		t.Fatal(err)
	}

	approxBoard := ap.NewBoard(ap.Gen2())
	approxEng, err := NewApproxEngine(approxBoard, ds, EngineOptions{Capacity: 64}, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := approxEng.Query(queries, k); err != nil {
		t.Fatal(err)
	}

	full := exactBoard.ReportsEmitted()
	reduced := approxEng.ReportsDelivered()
	if full != n {
		t.Fatalf("exact engine emitted %d reports, want %d", full, n)
	}
	if reduced >= full/2 {
		t.Errorf("reduction engine delivered %d of %d reports; want < half (paper's p/k' reduction)",
			reduced, full)
	}
}

func TestApproxEngineValidation(t *testing.T) {
	rng := stats.NewRNG(11)
	ds := bitvec.RandomDataset(rng, 8, 8)
	board := ap.NewBoard(ap.Gen2())
	if _, err := NewApproxEngine(board, ds, EngineOptions{}, 1, 2); err == nil {
		t.Error("group size 1 accepted")
	}
	if _, err := NewApproxEngine(board, ds, EngineOptions{}, 4, 0); err == nil {
		t.Error("kPrime 0 accepted")
	}
}
