package core

import (
	"testing"
	"testing/quick"

	"repro/internal/ap"
	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/knn"
	"repro/internal/stats"
)

func mustBits(t *testing.T, s string) bitvec.Vector {
	t.Helper()
	v, err := bitvec.ParseBits(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestLayoutValidate(t *testing.T) {
	if err := NewLayout(64).Validate(); err != nil {
		t.Errorf("default layout invalid: %v", err)
	}
	if err := PaperLayout(4).Validate(); err != nil {
		t.Errorf("paper layout invalid: %v", err)
	}
	bad := NewLayout(64)
	bad.DelaySlack = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero delay slack accepted for d=64")
	}
	if err := (Layout{Dim: 0, CollectorFanIn: 16}).Validate(); err == nil {
		t.Error("zero dim accepted")
	}
}

func TestLayoutCollectorDepth(t *testing.T) {
	cases := []struct{ d, fanIn, want int }{
		{4, 16, 1}, {16, 16, 1}, {17, 16, 2}, {128, 16, 2}, {256, 16, 2},
		{257, 16, 3}, {1, 16, 1},
	}
	for _, c := range cases {
		l := Layout{Dim: c.d, CollectorFanIn: c.fanIn}
		if got := l.CollectorDepth(); got != c.want {
			t.Errorf("depth(d=%d,f=%d) = %d, want %d", c.d, c.fanIn, got, c.want)
		}
	}
}

func TestReportCycleRoundTrip(t *testing.T) {
	for _, d := range []int{4, 16, 64, 128, 256} {
		l := NewLayout(d)
		for ihd := 0; ihd <= d; ihd++ {
			c := l.ReportCycle(ihd)
			if c >= l.StreamLen() {
				t.Fatalf("d=%d ihd=%d: report cycle %d outside stream of %d", d, ihd, c, l.StreamLen())
			}
			back, err := l.IHDFromCycle(c)
			if err != nil || back != ihd {
				t.Fatalf("d=%d ihd=%d: round trip gave %d, %v", d, ihd, back, err)
			}
		}
	}
}

func TestReportCycleMonotonic(t *testing.T) {
	// Closer vectors (higher IHD) must report strictly earlier.
	l := NewLayout(32)
	for ihd := 1; ihd <= 32; ihd++ {
		if l.ReportCycle(ihd) >= l.ReportCycle(ihd-1) {
			t.Fatalf("sort not monotonic at ihd=%d", ihd)
		}
	}
}

// runMacro builds a single macro for vector v, streams query q, and returns
// the report cycles.
func runMacro(t *testing.T, v, q bitvec.Vector, l Layout) []automata.Report {
	t.Helper()
	net := automata.NewNetwork()
	BuildMacro(net, v, l, 0)
	sim := automata.MustSimulator(net)
	return sim.Run(BuildQueryStream(q, l))
}

// TestFig3GoldenTrace replicates the paper's Fig. 3 execution exactly:
// vector {1,0,1,1}, query {1,0,0,1}, d=4, paper layout. The paper numbers
// time steps from t=1; our cycles are 0-based, so cycle = t-1.
func TestFig3GoldenTrace(t *testing.T) {
	l := PaperLayout(4)
	v := mustBits(t, "1011")
	q := mustBits(t, "1001")

	net := automata.NewNetwork()
	m := BuildMacro(net, v, l, 0)
	sim := automata.MustSimulator(net)

	activeAt := map[automata.ElementID][]int{}
	countAt := map[int]int{}
	sim.Trace = func(tc automata.CycleTrace) {
		for _, id := range tc.Active {
			activeAt[id] = append(activeAt[id], tc.Cycle)
		}
		for _, c := range tc.Counters {
			countAt[tc.Cycle] = c.Count
		}
	}
	stream := BuildQueryStream(q, l)
	if len(stream) != 12 {
		t.Fatalf("stream length %d, want 12 (Fig. 3 has t=1..12)", len(stream))
	}
	reports := sim.Run(stream)

	// Fig. 3: guard active at t=1 (cycle 0).
	wantActive := map[string][]int{
		"guard": {0},
		// X0 matches at t=2, X1 at t=3, X3 at t=5; X2 does not match.
		"x0": {1}, "x1": {2}, "x2": nil, "x3": {4},
		// Sort state active t=6..11 (cycles 5..10).
		"sort": {5, 6, 7, 8, 9, 10},
		// EOF state at t=12 (cycle 11).
		"eof": {11},
		// Reporting state at t=9 (cycle 8).
		"rep": {8},
	}
	ids := map[string]automata.ElementID{
		"guard": m.Guard, "x0": m.Matches[0], "x1": m.Matches[1],
		"x2": m.Matches[2], "x3": m.Matches[3],
		"sort": m.Sort, "eof": m.EOF, "rep": m.Report,
	}
	for name, want := range wantActive {
		got := activeAt[ids[name]]
		if len(got) != len(want) {
			t.Errorf("%s active cycles = %v, want %v", name, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s active cycles = %v, want %v", name, got, want)
				break
			}
		}
	}
	// Fig. 3 counter values: count=1 at t=4, 2 at t=5, 2 at t=6, 3 at t=7,
	// 4 at t=8 (threshold pulse), then 5,6,7,8 through t=12.
	wantCounts := map[int]int{3: 1, 4: 2, 5: 2, 6: 3, 7: 4, 8: 5, 9: 6, 10: 7, 11: 8}
	for cycle, want := range wantCounts {
		if got := countAt[cycle]; got != want {
			t.Errorf("counter at cycle %d (t=%d) = %d, want %d", cycle, cycle+1, got, want)
		}
	}
	if len(reports) != 1 || reports[0].Cycle != 8 {
		t.Errorf("reports = %v, want single report at cycle 8 (t=9)", reports)
	}
}

// fig4Cycles runs the Fig. 4 scenario — A={1,0,1,1}, B={0,0,0,0}, query
// {1,0,0,1} — and returns the two report cycles.
func fig4Cycles(t *testing.T, l Layout) (cycleA, cycleB int) {
	t.Helper()
	net := automata.NewNetwork()
	BuildMacro(net, mustBits(t, "1011"), l, 0) // A, IHD 3, last dim matches
	BuildMacro(net, mustBits(t, "0000"), l, 1) // B, IHD 2, last dim differs
	sim := automata.MustSimulator(net)
	reports := sim.Run(BuildQueryStream(mustBits(t, "1001"), l))
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	cycleA, cycleB = -1, -1
	for _, r := range reports {
		if r.ReportID == 0 {
			cycleA = r.Cycle
		} else {
			cycleB = r.Cycle
		}
	}
	if cycleA < 0 || cycleB < 0 {
		t.Fatalf("missing report: %v", reports)
	}
	return cycleA, cycleB
}

// TestFig4TemporalOrder replicates Fig. 4 with the monotonic layout: A must
// report strictly before B because it has the higher inverted Hamming
// distance.
func TestFig4TemporalOrder(t *testing.T) {
	cycleA, cycleB := fig4Cycles(t, NewLayout(4))
	if cycleA >= cycleB {
		t.Errorf("A reported at %d, B at %d; want A strictly first", cycleA, cycleB)
	}
}

// TestFig4PaperLayoutHazard pins down the reproduction finding documented in
// README.md: under the paper's own Fig. 2c/3 timing, the sort state's first
// increment overlaps the final collector flush, so A (IHD 3, final dimension
// matched) and B (IHD 2, final dimension unmatched) report on the SAME
// cycle, contradicting the strict order Fig. 4 depicts. The default layout
// (delay slack = collector depth) removes the hazard; this test documents
// the faithful-to-the-paper behaviour.
func TestFig4PaperLayoutHazard(t *testing.T) {
	cycleA, cycleB := fig4Cycles(t, PaperLayout(4))
	if cycleA != cycleB {
		t.Errorf("paper layout: A at %d, B at %d; the documented hazard expects a collision", cycleA, cycleB)
	}
}

// Property: for the monotonic layout, every vector reports exactly once per
// query at the cycle the layout formula predicts.
func TestMacroReportCycleMatchesFormula(t *testing.T) {
	f := func(seedV, seedQ uint64, rawDim uint8) bool {
		dim := int(rawDim)%33 + 1
		l := NewLayout(dim)
		v := bitvec.Random(stats.NewRNG(seedV), dim)
		q := bitvec.Random(stats.NewRNG(seedQ), dim)
		net := automata.NewNetwork()
		BuildMacro(net, v, l, 0)
		sim := automata.MustSimulator(net)
		reports := sim.Run(BuildQueryStream(q, l))
		if len(reports) != 1 {
			return false
		}
		return reports[0].Cycle == l.ReportCycle(v.InvertedHamming(q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestMacroAllAndNoneMatch covers the IHD extremes.
func TestMacroAllAndNoneMatch(t *testing.T) {
	dim := 8
	l := NewLayout(dim)
	v := bitvec.Random(stats.NewRNG(3), dim)
	// Identical query: ihd = d.
	reports := runMacro(t, v, v.Clone(), l)
	if len(reports) != 1 || reports[0].Cycle != l.ReportCycle(dim) {
		t.Errorf("identical query: reports = %v, want cycle %d", reports, l.ReportCycle(dim))
	}
	// Complement query: ihd = 0.
	comp := v.Clone()
	for i := 0; i < dim; i++ {
		comp.Flip(i)
	}
	reports = runMacro(t, v, comp, l)
	if len(reports) != 1 || reports[0].Cycle != l.ReportCycle(0) {
		t.Errorf("complement query: reports = %v, want cycle %d", reports, l.ReportCycle(0))
	}
}

// TestMacroMultiQueryStream checks that EOF resets state between queries and
// windows decode independently.
func TestMacroMultiQueryStream(t *testing.T) {
	dim := 12
	l := NewLayout(dim)
	rng := stats.NewRNG(17)
	v := bitvec.Random(rng, dim)
	queries := []bitvec.Vector{bitvec.Random(rng, dim), v.Clone(), bitvec.Random(rng, dim)}
	net := automata.NewNetwork()
	BuildMacro(net, v, l, 0)
	sim := automata.MustSimulator(net)
	reports := sim.Run(BuildStream(queries, l))
	if len(reports) != len(queries) {
		t.Fatalf("got %d reports for %d queries", len(reports), len(queries))
	}
	for i, q := range queries {
		window, off := l.WindowOf(reports[i].Cycle)
		if window != i {
			t.Errorf("report %d in window %d, want %d", i, window, i)
		}
		ihd, err := l.IHDFromCycle(off)
		if err != nil {
			t.Fatal(err)
		}
		if want := v.InvertedHamming(q); ihd != want {
			t.Errorf("query %d decoded ihd = %d, want %d", i, ihd, want)
		}
	}
}

func TestMacroSTECost(t *testing.T) {
	for _, d := range []int{4, 16, 64, 128, 256} {
		l := NewLayout(d)
		net := automata.NewNetwork()
		BuildMacro(net, bitvec.Random(stats.NewRNG(uint64(d)), d), l, 0)
		stats := net.Stats()
		if stats.STEs != MacroSTECost(l) {
			t.Errorf("d=%d: actual STEs %d != MacroSTECost %d", d, stats.STEs, MacroSTECost(l))
		}
		if stats.Counters != 1 {
			t.Errorf("d=%d: counters = %d, want 1", d, stats.Counters)
		}
	}
}

// TestEngineMatchesCPU is the central integration property: the AP engine
// (cycle-accurate simulation, temporal sort, partial reconfiguration,
// host-side merge) must return exactly the CPU baseline's answer.
func TestEngineMatchesCPU(t *testing.T) {
	rng := stats.NewRNG(2025)
	const dim, n, numQ, k = 24, 90, 6, 5
	ds := bitvec.RandomDataset(rng, n, dim)
	queries := make([]bitvec.Vector, numQ)
	for i := range queries {
		queries[i] = bitvec.Random(rng, dim)
	}
	// Capacity 32 forces 3 partitions -> exercises reconfiguration merging.
	engine, err := NewEngine(ap.NewBoard(ap.Gen2()), ds, EngineOptions{Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	if engine.Partitions() != 3 {
		t.Fatalf("partitions = %d, want 3", engine.Partitions())
	}
	got, err := engine.Query(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	want, err := knn.Batch(ds, queries, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		if len(got[qi]) != len(want[qi]) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got[qi]), len(want[qi]))
		}
		for j := range want[qi] {
			if got[qi][j] != want[qi][j] {
				t.Errorf("query %d rank %d: AP %v, CPU %v", qi, j, got[qi][j], want[qi][j])
			}
		}
	}
}

// TestFastEngineMatchesEngine validates the fast model against the
// cycle-accurate engine.
func TestFastEngineMatchesEngine(t *testing.T) {
	rng := stats.NewRNG(404)
	const dim, n, numQ, k = 16, 70, 5, 4
	ds := bitvec.RandomDataset(rng, n, dim)
	queries := make([]bitvec.Vector, numQ)
	for i := range queries {
		queries[i] = bitvec.Random(rng, dim)
	}
	engine, err := NewEngine(ap.NewBoard(ap.Gen2()), ds, EngineOptions{Capacity: 25})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewFastEngine(ds, EngineOptions{Capacity: 25})
	if err != nil {
		t.Fatal(err)
	}
	if engine.Partitions() != fast.Partitions() {
		t.Fatalf("partition mismatch: %d vs %d", engine.Partitions(), fast.Partitions())
	}
	got, err := engine.Query(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fast.Query(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		for j := range want[qi] {
			if got[qi][j] != want[qi][j] {
				t.Errorf("query %d rank %d: engine %v, fast %v", qi, j, got[qi][j], want[qi][j])
			}
		}
	}
}

// Property: fast-engine report cycles equal the cycles the real automata
// produce.
func TestFastEngineReportCyclesMatchAutomata(t *testing.T) {
	rng := stats.NewRNG(808)
	const dim, n = 10, 12
	ds := bitvec.RandomDataset(rng, n, dim)
	q := bitvec.Random(rng, dim)
	l := NewLayout(dim)
	net := automata.NewNetwork()
	BuildLinear(net, ds, l)
	sim := automata.MustSimulator(net)
	reports := sim.Run(BuildQueryStream(q, l))
	fast, err := NewFastEngine(ds, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := fast.ReportCycles(q)
	if len(reports) != n {
		t.Fatalf("got %d reports, want %d", len(reports), n)
	}
	for _, r := range reports {
		if r.Cycle != want[r.ReportID] {
			t.Errorf("vector %d reported at %d, fast model says %d", r.ReportID, r.Cycle, want[r.ReportID])
		}
	}
}

func TestEngineRejectsBadInputs(t *testing.T) {
	rng := stats.NewRNG(5)
	ds := bitvec.RandomDataset(rng, 10, 8)
	engine, err := NewEngine(ap.NewBoard(ap.Gen2()), ds, EngineOptions{Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Query([]bitvec.Vector{bitvec.Random(rng, 8)}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := engine.Query([]bitvec.Vector{bitvec.Random(rng, 16)}, 1); err == nil {
		t.Error("wrong-dimension query accepted")
	}
}
