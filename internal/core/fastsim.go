package core

import (
	"context"
	"fmt"

	"repro/internal/aperr"
	"repro/internal/bitvec"
	"repro/internal/knn"
)

// FastEngine is a semantics-equivalent model of Engine: it computes the same
// per-query neighbor lists — including partition boundaries, report-cycle
// encoding and tie behaviour — directly from Hamming distances, without
// cycle-accurate simulation. Property tests in this package verify it
// against the real automata execution; the large Monte Carlo experiments
// (Table VI) and the million-vector workloads run on it.
type FastEngine struct {
	ds       *bitvec.Dataset
	layout   Layout
	capacity int
}

// NewFastEngine mirrors NewEngine's partitioning without building automata.
func NewFastEngine(ds *bitvec.Dataset, opts EngineOptions) (*FastEngine, error) {
	layout, err := ResolveLayout(ds.Dim(), opts.Layout)
	if err != nil {
		return nil, err
	}
	capacity, err := ResolveCapacity(ds.Dim(), opts.Capacity)
	if err != nil {
		return nil, err
	}
	return &FastEngine{ds: ds, layout: layout, capacity: capacity}, nil
}

// Layout returns the stream layout.
func (f *FastEngine) Layout() Layout { return f.layout }

// Partitions returns the number of board configurations the dataset needs.
func (f *FastEngine) Partitions() int {
	return (f.ds.Len() + f.capacity - 1) / f.capacity
}

// ReportCycles returns, for one query, the window-relative cycle at which
// each dataset vector's macro reports — the temporal-sort encoding a real
// board would emit.
func (f *FastEngine) ReportCycles(q bitvec.Vector) []int {
	out := make([]int, f.ds.Len())
	for i := 0; i < f.ds.Len(); i++ {
		ihd := f.ds.Dim() - f.ds.Hamming(i, q)
		out[i] = f.layout.ReportCycle(ihd)
	}
	return out
}

// Query returns the same results Engine.Query produces.
func (f *FastEngine) Query(queries []bitvec.Vector, k int) ([][]knn.Neighbor, error) {
	batch, err := ValidateBatch(queries, f.layout)
	if err != nil {
		return nil, err
	}
	return f.QueryEncoded(context.Background(), batch, k)
}

// QueryEncoded answers a pre-validated batch without re-checking dimensions;
// the symbol stream, if any, is ignored — this engine models the board
// semantics directly from Hamming distances. Like the board-backed sweep,
// cancellation is honored at partition boundaries.
func (f *FastEngine) QueryEncoded(ctx context.Context, batch *EncodedBatch, k int) ([][]knn.Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: got k=%d: %w", k, aperr.ErrBadK)
	}
	queries := batch.Queries()
	results := make([][]knn.Neighbor, len(queries))
	for _, r := range PartitionRanges(f.ds.Len(), f.capacity) {
		if err := ctx.Err(); err != nil {
			return nil, aperr.Canceled(err)
		}
		lo, hi := r[0], r[1]
		part := f.ds.Slice(lo, hi)
		for qi, q := range queries {
			local := knn.Linear(part, q, k)
			for i := range local {
				local[i].ID += lo
			}
			results[qi] = knn.MergeTopK(results[qi], local, k)
		}
	}
	return results, nil
}

// SymbolsStreamed returns the total symbols a board would consume answering
// numQueries queries: one full query stream per partition (§III-C).
func (f *FastEngine) SymbolsStreamed(numQueries int) int {
	return f.Partitions() * numQueries * f.layout.StreamLen()
}

// ReportRecords returns the number of report records a board would emit: one
// per (partition vector, query).
func (f *FastEngine) ReportRecords(numQueries int) int {
	return f.ds.Len() * numQueries
}
