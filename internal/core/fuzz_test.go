package core_test

import (
	"encoding/binary"
	"testing"

	"repro/internal/automata"
	"repro/internal/core"
)

// FuzzDecodeReports feeds arbitrary report streams — including cycles far
// outside any query window, negative cycles and garbage report IDs — to the
// host-side decoder. Malformed streams must surface as errors, never
// panics; well-formed output must be sorted and within distance bounds.
func FuzzDecodeReports(f *testing.F) {
	f.Add(uint8(4), uint8(2), []byte{0, 10, 0, 0, 0})
	f.Add(uint8(32), uint8(3), []byte{1, 0xFF, 0xFF, 0xFF, 0xFF, 2, 0, 1, 0, 0})
	f.Add(uint8(64), uint8(1), []byte{})
	f.Fuzz(func(t *testing.T, dimRaw, nqRaw uint8, raw []byte) {
		dim := 1 + int(dimRaw)%128
		numQueries := int(nqRaw) % 8
		l := core.NewLayout(dim)

		var reports []automata.Report
		for i := 0; i+5 <= len(raw) && len(reports) < 256; i += 5 {
			reports = append(reports, automata.Report{
				ReportID: int32(raw[i]),
				Cycle:    int(int32(binary.LittleEndian.Uint32(raw[i+1 : i+5]))),
			})
		}

		decoded, err := core.DecodeReports(reports, l, numQueries, 0)
		if err != nil {
			return // malformed stream surfaced as an error — the contract
		}
		if len(decoded) != numQueries {
			t.Fatalf("decoded %d query lists, want %d", len(decoded), numQueries)
		}
		for qi, ns := range decoded {
			for j, n := range ns {
				if n.Dist < 0 || n.Dist > dim {
					t.Fatalf("query %d neighbor %d: distance %d outside [0,%d]", qi, j, n.Dist, dim)
				}
				if j > 0 && n.Less(ns[j-1]) {
					t.Fatalf("query %d: neighbors not (dist, ID)-sorted at %d", qi, j)
				}
			}
		}
	})
}
