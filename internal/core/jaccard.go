package core

import (
	"fmt"

	"repro/internal/automata"
	"repro/internal/bitvec"
)

// Jaccard support. §II-C notes that besides Hamming distance, "Jaccard
// similarity on the AP is well-documented and can be efficiently
// implemented": the intersection size |A ∩ B| is countable with the same
// macro structure by matching only the dimensions where the encoded vector
// has a 1-bit, and the temporal sort then orders vectors by descending
// intersection size. The host combines the intersection with the known set
// sizes to obtain the Jaccard index |A∩B| / (|A| + |B| - |A∩B|).

// JaccardMacro extends Macro with the encoded vector's set size, which the
// decoder needs to compute the index.
type JaccardMacro struct {
	Macro
	SetBits int
}

// BuildJaccardMacro appends a macro that counts |v ∩ query| and reports at
// cycle ReportCycle(intersection) under the same layout timing as the
// Hamming macro. Only 1-bits of v get match states, so the macro is smaller
// for sparse vectors.
func BuildJaccardMacro(net *automata.Network, v bitvec.Vector, l Layout, reportID int32) *JaccardMacro {
	if err := l.Validate(); err != nil {
		panic(err)
	}
	if v.Dim() != l.Dim {
		panic(fmt.Sprintf("core: vector dim %d != layout dim %d", v.Dim(), l.Dim))
	}
	if l.PaperExact {
		panic("core: Jaccard macros require the monotonic layout")
	}
	d := l.Dim
	m := &JaccardMacro{Macro: Macro{VectorID: reportID}, SetBits: v.PopCount()}
	name := func(s string, i int) string { return fmt.Sprintf("j%d.%s%d", reportID, s, i) }

	m.Guard = net.AddSTE(classGuard,
		automata.WithStart(automata.StartAll), automata.WithName(fmt.Sprintf("j%d.guard", reportID)))
	prev := m.Guard
	for i := 0; i < d; i++ {
		if v.Bit(i) {
			match := net.AddSTE(classBit1, automata.WithName(name("x", i)))
			net.Connect(prev, match)
			m.Matches = append(m.Matches, match)
		}
		star := net.AddSTE(automata.AllClass(), automata.WithName(name("s", i)))
		net.Connect(prev, star)
		m.Stars = append(m.Stars, star)
		prev = star
	}

	// The counter still counts to d: the sort phase uniformly tops up from
	// the intersection size, so the temporal order is by descending
	// intersection and ReportCycle/IHDFromCycle decode unchanged.
	m.Counter = net.AddCounter(d, automata.CounterPulse, automata.WithName(fmt.Sprintf("j%d.cnt", reportID)))

	// Collector tree over however many match states exist; keep the tree the
	// same depth as the layout's Hamming tree so timing stays aligned.
	level := m.Matches
	depth := l.CollectorDepth()
	if len(level) == 0 {
		// Degenerate all-zero vector: intersection is always 0; a never-
		// matching state keeps the counter's count port legal.
		dead := net.AddSTE(automata.EmptyClass(), automata.WithName(name("dead", 0)))
		net.Connect(m.Guard, dead)
		level = []automata.ElementID{dead}
	}
	for lvl := 0; lvl < depth; lvl++ {
		var next []automata.ElementID
		for lo := 0; lo < len(level); lo += l.CollectorFanIn {
			hi := lo + l.CollectorFanIn
			if hi > len(level) {
				hi = len(level)
			}
			col := net.AddSTE(automata.AllClass(), automata.WithName(name("col", lvl)))
			for _, src := range level[lo:hi] {
				net.Connect(src, col)
			}
			next = append(next, col)
		}
		level = next
	}
	net.ConnectCount(level[0], m.Counter)

	prevSort := m.Stars[d-1]
	for j := 0; j < l.delaySlack(); j++ {
		dly := net.AddSTE(automata.AllClass(), automata.WithName(name("dly", j)))
		net.Connect(prevSort, dly)
		m.Delays = append(m.Delays, dly)
		prevSort = dly
	}
	m.Sort = net.AddSTE(classPad, automata.WithName(fmt.Sprintf("j%d.sort", reportID)))
	net.Connect(prevSort, m.Sort)
	net.Connect(m.Sort, m.Sort)
	net.ConnectCount(m.Sort, m.Counter)
	m.EOF = net.AddSTE(classEOF, automata.WithName(fmt.Sprintf("j%d.eof", reportID)))
	net.Connect(m.Sort, m.EOF)
	net.ConnectReset(m.EOF, m.Counter)
	m.Report = net.AddSTE(automata.AllClass(),
		automata.WithReport(reportID), automata.WithName(fmt.Sprintf("j%d.rep", reportID)))
	net.Connect(m.Counter, m.Report)
	return m
}

// JaccardResult is one decoded Jaccard match.
type JaccardResult struct {
	ID           int
	Intersection int
	// Similarity is the Jaccard index in [0, 1].
	Similarity float64
}

// DecodeJaccardReports converts report records into per-query Jaccard
// results sorted by descending similarity (ties by ID). setBits[i] must hold
// the i-th encoded vector's population count; queryBits the query's.
func DecodeJaccardReports(reports []automata.Report, l Layout, numQueries int, setBits []int, queryBits []int) ([][]JaccardResult, error) {
	out := make([][]JaccardResult, numQueries)
	for _, r := range reports {
		q, off := l.WindowOf(r.Cycle)
		if q >= numQueries {
			return nil, fmt.Errorf("core: jaccard report beyond stream")
		}
		inter, err := l.IHDFromCycle(off)
		if err != nil {
			return nil, err
		}
		id := int(r.ReportID)
		union := setBits[id] + queryBits[q] - inter
		sim := 1.0 // both sets empty
		if union > 0 {
			sim = float64(inter) / float64(union)
		}
		out[q] = append(out[q], JaccardResult{ID: id, Intersection: inter, Similarity: sim})
	}
	for _, rs := range out {
		sortJaccard(rs)
	}
	return out, nil
}

func sortJaccard(rs []JaccardResult) {
	// Insertion sort: result lists are per-query and small-to-moderate; a
	// dependency-free sort keeps this file self-contained.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && jaccardLess(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func jaccardLess(a, b JaccardResult) bool {
	if a.Similarity != b.Similarity {
		return a.Similarity > b.Similarity
	}
	return a.ID < b.ID
}

// JaccardSimilarity is the host reference: |a ∩ b| / |a ∪ b|.
func JaccardSimilarity(a, b bitvec.Vector) float64 {
	if a.Dim() != b.Dim() {
		panic(fmt.Sprintf("core: dim mismatch %d vs %d", a.Dim(), b.Dim()))
	}
	inter := 0
	union := 0
	for i := 0; i < a.Dim(); i++ {
		ab, bb := a.Bit(i), b.Bit(i)
		if ab && bb {
			inter++
		}
		if ab || bb {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
