package core

import (
	"fmt"

	"repro/internal/automata"
	"repro/internal/bitvec"
)

// Symbol classes of the plain kNN design. Every class is a one-bit ternary
// match on the dedicated bit of its special symbol, so the compute states
// observe exactly one bit of the stream — the property §VII-C's STE
// decomposition analysis measures. Enabledness (chain position) protects
// the match states from the special symbols that share their bit-0 value.
var (
	classGuard = mustTernary("1*******") // SOF (bit 7)
	classPad   = mustTernary("**0*****") // ^EOF: anything but EOF (bit 5 clear)
	classEOF   = mustTernary("**1*****") // EOF (bit 5 set)
	classBit0  = mustTernary("*******0") // data symbol with query bit 0
	classBit1  = mustTernary("*******1") // data symbol with query bit 1
)

func mustTernary(p string) automata.SymbolClass {
	c, err := automata.TernaryClass(p)
	if err != nil {
		panic(err)
	}
	return c
}

// bitClass returns the match class for a dataset bit value.
func bitClass(b bool) automata.SymbolClass {
	if b {
		return classBit1
	}
	return classBit0
}

// Macro holds the element handles of one Hamming + sorting macro (Fig. 2),
// used by traces, tests and the optimization generators.
type Macro struct {
	VectorID int32
	Guard    automata.ElementID
	Stars    []automata.ElementID
	Matches  []automata.ElementID
	// Collectors lists the reduction-tree states level by level, root last.
	Collectors []automata.ElementID
	Delays     []automata.ElementID
	Sort       automata.ElementID
	EOF        automata.ElementID
	Counter    automata.ElementID
	Report     automata.ElementID
}

// BuildMacro appends one Hamming + sorting macro encoding v to net, with the
// given report ID, following the layout. The macro structure is the paper's
// Fig. 2: guard -> star/match chain -> collector tree -> inverted Hamming
// distance counter -> reporting state, plus the sort and EOF states.
func BuildMacro(net *automata.Network, v bitvec.Vector, l Layout, reportID int32) *Macro {
	if err := l.Validate(); err != nil {
		panic(err)
	}
	if v.Dim() != l.Dim {
		panic(fmt.Sprintf("core: vector dim %d != layout dim %d", v.Dim(), l.Dim))
	}
	d := l.Dim
	m := &Macro{VectorID: reportID}
	name := func(s string, i int) string { return fmt.Sprintf("v%d.%s%d", reportID, s, i) }

	m.Guard = net.AddSTE(classGuard,
		automata.WithStart(automata.StartAll), automata.WithName(fmt.Sprintf("v%d.guard", reportID)))

	// Compute chain: star states advance the position, match states fire when
	// the query bit equals the encoded bit.
	prev := m.Guard
	for i := 0; i < d; i++ {
		match := net.AddSTE(bitClass(v.Bit(i)), automata.WithName(name("x", i)))
		net.Connect(prev, match)
		m.Matches = append(m.Matches, match)
		star := net.AddSTE(automata.AllClass(), automata.WithName(name("s", i)))
		net.Connect(prev, star)
		m.Stars = append(m.Stars, star)
		prev = star
	}

	// Collector reduction tree (§III-A), balanced so every match state is the
	// same number of hops from the counter.
	m.Counter = net.AddCounter(d, automata.CounterPulse, automata.WithName(fmt.Sprintf("v%d.ihd", reportID)))
	level := m.Matches
	depth := l.CollectorDepth()
	fanIn := l.CollectorFanIn
	if l.PaperExact {
		fanIn = d // single collector regardless of width
	}
	for lvl := 0; lvl < depth; lvl++ {
		var nextLevel []automata.ElementID
		for lo := 0; lo < len(level); lo += fanIn {
			hi := lo + fanIn
			if hi > len(level) {
				hi = len(level)
			}
			col := net.AddSTE(automata.AllClass(), automata.WithName(name("col", len(m.Collectors))))
			for _, src := range level[lo:hi] {
				net.Connect(src, col)
			}
			m.Collectors = append(m.Collectors, col)
			nextLevel = append(nextLevel, col)
		}
		level = nextLevel
	}
	// With a correct depth the tree reduced to a single root; connect it to
	// the counter's increment port.
	if len(level) != 1 {
		panic(fmt.Sprintf("core: collector tree reduced to %d roots, want 1 (d=%d fanIn=%d depth=%d)",
			len(level), d, fanIn, depth))
	}
	net.ConnectCount(level[0], m.Counter)

	// Sorting macro (Fig. 2b): optional delay slack, then the self-looping
	// sort state that uniformly increments the counter until EOF.
	prevSort := m.Stars[d-1]
	for j := 0; j < l.delaySlack(); j++ {
		dly := net.AddSTE(automata.AllClass(), automata.WithName(name("dly", j)))
		net.Connect(prevSort, dly)
		m.Delays = append(m.Delays, dly)
		prevSort = dly
	}
	m.Sort = net.AddSTE(classPad, automata.WithName(fmt.Sprintf("v%d.sort", reportID)))
	net.Connect(prevSort, m.Sort)
	net.Connect(m.Sort, m.Sort) // self loop: active until EOF arrives
	net.ConnectCount(m.Sort, m.Counter)

	m.EOF = net.AddSTE(classEOF, automata.WithName(fmt.Sprintf("v%d.eof", reportID)))
	net.Connect(m.Sort, m.EOF)
	net.ConnectReset(m.EOF, m.Counter)

	m.Report = net.AddSTE(automata.AllClass(),
		automata.WithReport(reportID), automata.WithName(fmt.Sprintf("v%d.rep", reportID)))
	net.Connect(m.Counter, m.Report)
	return m
}

// delaySlack returns the effective delay-state count for the layout.
func (l Layout) delaySlack() int {
	if l.PaperExact {
		return 0
	}
	return l.DelaySlack
}

// BuildLinear builds one macro per dataset vector with report IDs equal to
// the vector indices, the linear-search automata of §III. It returns the
// macros in dataset order.
func BuildLinear(net *automata.Network, ds *bitvec.Dataset, l Layout) []*Macro {
	macros := make([]*Macro, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		macros[i] = BuildMacro(net, ds.At(i), l, int32(i))
	}
	return macros
}

// MacroSTECost returns the number of STEs one plain macro consumes for the
// layout — the analytical-model unit cost ("1 NFA state ~ 1 STE resource",
// §VII-D).
func MacroSTECost(l Layout) int {
	d := l.Dim
	collectors := 0
	level := d
	fanIn := l.CollectorFanIn
	if l.PaperExact {
		fanIn = d
	}
	for lvl := 0; lvl < l.CollectorDepth(); lvl++ {
		level = (level + fanIn - 1) / fanIn
		collectors += level
	}
	// guard + d stars + d matches + collectors + delays + sort + eof + report
	return 1 + 2*d + collectors + l.delaySlack() + 3
}
