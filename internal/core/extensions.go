package core

import (
	"fmt"
	"math/bits"

	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/knn"
)

// ---- §VII-A: counter increment extension ----

// MultiDimLayout is the stream layout of the counter-increment extension:
// each data symbol carries up to seven vector dimensions, so the Hamming
// phase shrinks from d to ceil(d/7) cycles while the sort phase stays d —
// the paper's "d + d/7 cycles which is a 43% improvement or 1.75x better".
// The design requires counters that accept multiple simultaneous increments
// (Simulator.ExtendedIncrement) and removes the collector tree entirely:
// match states drive the counter's increment port directly.
type MultiDimLayout struct {
	Dim           int
	DimsPerSymbol int // 1..7
}

// NewMultiDimLayout returns the layout packing the maximum 7 dimensions per
// symbol.
func NewMultiDimLayout(d int) MultiDimLayout {
	return MultiDimLayout{Dim: d, DimsPerSymbol: 7}
}

// Validate checks the layout.
func (l MultiDimLayout) Validate() error {
	if l.Dim <= 0 {
		return fmt.Errorf("core: multi-dim layout dimension %d must be positive", l.Dim)
	}
	if l.DimsPerSymbol < 1 || l.DimsPerSymbol > 7 {
		return fmt.Errorf("core: dims per symbol %d out of range [1,7]", l.DimsPerSymbol)
	}
	return nil
}

// DataSymbols returns the number of data symbols per query.
func (l MultiDimLayout) DataSymbols() int {
	return (l.Dim + l.DimsPerSymbol - 1) / l.DimsPerSymbol
}

// StreamLen returns symbols per query window: SOF + data + pads + EOF.
func (l MultiDimLayout) StreamLen() int {
	return l.DataSymbols() + l.Dim + 3
}

// ReportCycle returns the report cycle for inverted Hamming distance ihd.
func (l MultiDimLayout) ReportCycle(ihd int) int {
	if ihd < 0 || ihd > l.Dim {
		panic(fmt.Sprintf("core: ihd %d out of range [0,%d]", ihd, l.Dim))
	}
	return l.DataSymbols() + 2 + l.Dim - ihd
}

// IHDFromCycle inverts ReportCycle.
func (l MultiDimLayout) IHDFromCycle(cycle int) (int, error) {
	ihd := l.DataSymbols() + 2 + l.Dim - cycle
	if ihd < 0 || ihd > l.Dim {
		return 0, fmt.Errorf("core: multi-dim report cycle %d outside sort window", cycle)
	}
	return ihd, nil
}

// WindowOf splits a stream cycle into (query, offset).
func (l MultiDimLayout) WindowOf(cycle int) (query, offset int) {
	n := l.StreamLen()
	return cycle / n, cycle % n
}

// SpeedupOverPlain returns the query-latency improvement over the plain
// design (paper: 1.75x at 7 dims/symbol).
func (l MultiDimLayout) SpeedupOverPlain() float64 {
	plain := 2 * l.Dim
	ext := l.DataSymbols() + l.Dim
	return float64(plain) / float64(ext)
}

// BuildMultiDimMacro appends a counter-increment-extension macro encoding v.
// It uses the multiplexed special symbols (bit 7 framing) and bit-sliced
// ternary matches; the simulator must run with ExtendedIncrement enabled.
func BuildMultiDimMacro(net *automata.Network, v bitvec.Vector, l MultiDimLayout, reportID int32) *Macro {
	if err := l.Validate(); err != nil {
		panic(err)
	}
	if v.Dim() != l.Dim {
		panic(fmt.Sprintf("core: vector dim %d != layout dim %d", v.Dim(), l.Dim))
	}
	m := &Macro{VectorID: reportID}
	name := func(s string, i int) string { return fmt.Sprintf("md%d.%s%d", reportID, s, i) }

	m.Guard = net.AddSTE(muxGuardClass(),
		automata.WithStart(automata.StartAll), automata.WithName(name("guard", 0)))
	m.Counter = net.AddCounter(l.Dim, automata.CounterPulse, automata.WithName(name("ihd", 0)))

	prev := m.Guard
	D := l.DataSymbols()
	for t := 0; t < D; t++ {
		lo := t * l.DimsPerSymbol
		hi := lo + l.DimsPerSymbol
		if hi > l.Dim {
			hi = l.Dim
		}
		for j := lo; j < hi; j++ {
			match := net.AddSTE(muxBitClass(j-lo, v.Bit(j)), automata.WithName(name("x", j)))
			net.Connect(prev, match)
			// §VII-A: with multi-increment counters the collector tree
			// disappears; matches drive the counter directly.
			net.ConnectCount(match, m.Counter)
			m.Matches = append(m.Matches, match)
		}
		star := net.AddSTE(automata.AllClass(), automata.WithName(name("s", t)))
		net.Connect(prev, star)
		m.Stars = append(m.Stars, star)
		prev = star
	}

	m.Sort = net.AddSTE(muxPadClass(), automata.WithName(name("sort", 0)))
	net.Connect(prev, m.Sort)
	net.Connect(m.Sort, m.Sort)
	net.ConnectCount(m.Sort, m.Counter)
	m.EOF = net.AddSTE(muxEOFClass(), automata.WithName(name("eof", 0)))
	net.Connect(m.Sort, m.EOF)
	net.ConnectReset(m.EOF, m.Counter)
	m.Report = net.AddSTE(automata.AllClass(),
		automata.WithReport(reportID), automata.WithName(name("rep", 0)))
	net.Connect(m.Counter, m.Report)
	return m
}

// BuildMultiDimStream encodes queries for the counter-increment extension:
// each data symbol packs DimsPerSymbol dimensions into bits 0..6.
func BuildMultiDimStream(queries []bitvec.Vector, l MultiDimLayout) []byte {
	out := make([]byte, 0, len(queries)*l.StreamLen())
	for _, q := range queries {
		if q.Dim() != l.Dim {
			panic(fmt.Sprintf("core: query dim %d != layout dim %d", q.Dim(), l.Dim))
		}
		out = append(out, MuxSOF)
		D := l.DataSymbols()
		for t := 0; t < D; t++ {
			var sym byte
			lo := t * l.DimsPerSymbol
			for j := lo; j < lo+l.DimsPerSymbol && j < l.Dim; j++ {
				if q.Bit(j) {
					sym |= 1 << uint(j-lo)
				}
			}
			out = append(out, sym)
		}
		for i := 0; i < l.Dim+1; i++ {
			out = append(out, MuxPad)
		}
		out = append(out, MuxEOF)
	}
	return out
}

// DecodeMultiDimReports converts extension report records to neighbor lists.
func DecodeMultiDimReports(reports []automata.Report, l MultiDimLayout, numQueries, idOffset int) ([][]knn.Neighbor, error) {
	out := make([][]knn.Neighbor, numQueries)
	for _, r := range reports {
		if r.Cycle < 0 {
			return nil, fmt.Errorf("core: multi-dim report at negative cycle %d", r.Cycle)
		}
		q, off := l.WindowOf(r.Cycle)
		if q >= numQueries {
			return nil, fmt.Errorf("core: multi-dim report beyond stream")
		}
		ihd, err := l.IHDFromCycle(off)
		if err != nil {
			return nil, err
		}
		out[q] = append(out[q], knn.Neighbor{ID: idOffset + int(r.ReportID), Dist: l.Dim - ihd})
	}
	for _, ns := range out {
		knn.SortNeighbors(ns)
	}
	return out, nil
}

// ---- §VII-B: dynamic counter thresholds ----

// ComparisonMacro is the Fig. 8 construct: two counters driven by event
// streams A and B, and an output state that activates while count(A) >
// count(B) — the "if (A > B) ... else ..." building block the extension
// enables.
type ComparisonMacro struct {
	CounterA automata.ElementID
	CounterB automata.ElementID
	Out      automata.ElementID
}

// BuildComparisonMacro wires enA and enB (any activation sources) into the
// comparison construct; rst resets both counters. Out reports with reportID
// whenever count(A) exceeds count(B).
func BuildComparisonMacro(net *automata.Network, enA, enB, rst automata.ElementID, reportID int32) *ComparisonMacro {
	// B is an ordinary counter whose live count serves as A's threshold; its
	// own static threshold is unreachable so it never fires on its own.
	b := net.AddCounter(1<<30, automata.CounterPulse, automata.WithName("cmp.b"))
	net.ConnectCount(enB, b)
	net.ConnectReset(rst, b)
	a := net.AddDynamicCounter(b, automata.WithName("cmp.a"))
	net.ConnectCount(enA, a)
	net.ConnectReset(rst, a)
	out := net.AddSTE(automata.AllClass(),
		automata.WithReport(reportID), automata.WithName("cmp.out"))
	net.Connect(a, out)
	return &ComparisonMacro{CounterA: a, CounterB: b, Out: out}
}

// ---- §VII-C: STE decomposition ----

// DecompositionReport is the resource analysis behind Table VII: the
// distribution of minimal LUT widths across a design's STEs and the
// resulting savings from decomposing 8-input STEs into x smaller ones.
type DecompositionReport struct {
	TotalSTEs int
	// Widths[w] counts STEs whose symbol class depends on w input bits.
	Widths [9]int
}

// AnalyzeDecomposition computes the exact minimal bit width of every STE's
// symbol class in net.
func AnalyzeDecomposition(net *automata.Network) *DecompositionReport {
	r := &DecompositionReport{}
	for i := 0; i < net.Len(); i++ {
		id := automata.ElementID(i)
		if net.KindOf(id) != automata.KindSTE {
			continue
		}
		r.TotalSTEs++
		r.Widths[net.ClassOf(id).MinimalBitWidth()]++
	}
	return r
}

// Savings returns the resource-saving factor at decomposition factor x
// (a power of two: an 8-input STE becomes x STEs of 8-log2(x) inputs). The
// cost model follows §VII-C: states narrow enough to fit a decomposed STE
// pack x per physical STE; wider states still cost a whole one.
func (r *DecompositionReport) Savings(x int) float64 {
	if x < 1 || x&(x-1) != 0 || x > 256 {
		panic(fmt.Sprintf("core: decomposition factor %d must be a power of two in [1,256]", x))
	}
	if r.TotalSTEs == 0 {
		return 1
	}
	lutWidth := 8 - bits.TrailingZeros(uint(x))
	fit, unfit := 0, 0
	for w := 0; w <= 8; w++ {
		if w <= lutWidth {
			fit += r.Widths[w]
		} else {
			unfit += r.Widths[w]
		}
	}
	cost := (fit+x-1)/x + unfit
	return float64(r.TotalSTEs) / float64(cost)
}

// ---- §VII-D: technology scaling ----

// TechnologyScaling returns the density gain from shrinking the AP's 50 nm
// lithography to a competing node: (50/nm)^2, the paper's 3.19x at 28 nm.
func TechnologyScaling(targetNm float64) float64 {
	return (50 / targetNm) * (50 / targetNm)
}
