package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/ap"
	"repro/internal/aperr"
	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/knn"
)

// EncodedBatch is a query batch prepared for execution: the validated query
// vectors plus, for board-backed engines, the symbol stream that drives every
// partition of a configuration sweep. Encoding once per batch — instead of
// once per engine invocation — is what lets the sharded driver pipeline
// query encoding against board streaming and feed the same stream to every
// board (§III-C streams the identical query batch against each partition).
type EncodedBatch struct {
	queries []bitvec.Vector
	encode  sync.Once
	stream  []byte
}

// EncodeBatch validates the queries against the layout and builds their
// symbol stream.
func EncodeBatch(queries []bitvec.Vector, l Layout) (*EncodedBatch, error) {
	b, err := ValidateBatch(queries, l)
	if err != nil {
		return nil, err
	}
	b.Stream(l)
	return b, nil
}

// ValidateBatch validates the queries without building the stream — the
// preparation step for engines that never touch a symbol stream (FastEngine).
func ValidateBatch(queries []bitvec.Vector, l Layout) (*EncodedBatch, error) {
	if err := ValidateQueries(queries, l); err != nil {
		return nil, err
	}
	return &EncodedBatch{queries: queries}, nil
}

// ValidateQueries checks every query's dimensionality against the layout.
func ValidateQueries(queries []bitvec.Vector, l Layout) error {
	for i, q := range queries {
		if q.Dim() != l.Dim {
			return fmt.Errorf("core: query %d has dim %d, want %d: %w", i, q.Dim(), l.Dim, aperr.ErrDimMismatch)
		}
	}
	return nil
}

// Len returns the number of queries in the batch.
func (b *EncodedBatch) Len() int { return len(b.queries) }

// Queries returns the validated query vectors.
func (b *EncodedBatch) Queries() []bitvec.Vector { return b.queries }

// Stream returns the encoded symbol stream, building it on first use for
// batches prepared with ValidateBatch. Safe for concurrent callers — a
// batch may be shared across boards streaming in parallel.
func (b *EncodedBatch) Stream(l Layout) []byte {
	b.encode.Do(func() { b.stream = BuildStream(b.queries, l) })
	return b.stream
}

// PartitionRanges splits n dataset vectors into the contiguous [lo,hi)
// capacity-sized ranges that become board configurations — the partitioning
// rule shared by every engine and by the shard planner, so partition
// boundaries (and therefore report IDs and merge behaviour) agree across all
// execution paths. It panics on a non-positive capacity: callers resolve
// user-supplied capacities through ResolveCapacity first, so a bad value
// here is a programming error, not a runtime condition.
func PartitionRanges(n, capacity int) [][2]int {
	if capacity <= 0 {
		panic(fmt.Sprintf("core: non-positive board capacity %d", capacity))
	}
	var out [][2]int
	for lo := 0; lo < n; lo += capacity {
		hi := lo + capacity
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// ResolveCapacity applies the paper default when the option is zero.
func ResolveCapacity(dim, capacity int) (int, error) {
	if capacity == 0 {
		capacity = DefaultBoardCapacity(dim)
	}
	if capacity <= 0 {
		return 0, fmt.Errorf("core: non-positive board capacity %d", capacity)
	}
	return capacity, nil
}

// ResolveLayout applies the default monotonic layout and validates.
func ResolveLayout(dim int, override *Layout) (Layout, error) {
	layout := NewLayout(dim)
	if override != nil {
		layout = *override
	}
	if err := layout.Validate(); err != nil {
		return Layout{}, err
	}
	return layout, nil
}

// compilePartitions builds one board image per capacity range of ds: build
// populates the network for a partition (vectors [lo,hi), report IDs local
// to the partition), then the image is validated and placed for the board
// configuration. This is the §III-C precompilation path shared by the linear
// and reduction engines.
func compilePartitions(cfg ap.DeviceConfig, ds *bitvec.Dataset, capacity int, what string,
	build func(net *automata.Network, part *bitvec.Dataset)) ([]partition, error) {
	var parts []partition
	for _, r := range PartitionRanges(ds.Len(), capacity) {
		lo, hi := r[0], r[1]
		net := automata.NewNetwork()
		build(net, ds.Slice(lo, hi))
		if err := net.Validate(); err != nil {
			return nil, fmt.Errorf("core: %s partition [%d,%d): %w", what, lo, hi, err)
		}
		placement, err := ap.Compile(net, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: %s partition [%d,%d): %w", what, lo, hi, err)
		}
		parts = append(parts, partition{
			net: net, placement: placement, idOffset: lo, size: hi - lo,
		})
	}
	return parts, nil
}

// queryPartitions is the partial-reconfiguration execution loop shared by
// the board-backed engines: reconfigure the board once per precompiled
// partition, stream the batch, decode the reports into per-query neighbor
// lists, and merge each partition's top-k into the running result on the
// host (§III-C). Cancellation is checked between partitions — one
// reconfigure-and-stream pass is the unit of preemption.
func queryPartitions(ctx context.Context, board *ap.Board, parts []partition, l Layout, batch *EncodedBatch, k int) ([][]knn.Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: got k=%d: %w", k, aperr.ErrBadK)
	}
	results := make([][]knn.Neighbor, batch.Len())
	stream := batch.Stream(l)
	for _, p := range parts {
		if err := ctx.Err(); err != nil {
			return nil, aperr.Canceled(err)
		}
		if err := board.ConfigurePlaced(p.net, p.placement); err != nil {
			return nil, err
		}
		reports := board.Stream(stream)
		decoded, err := DecodeReports(reports, l, batch.Len(), p.idOffset)
		if err != nil {
			return nil, err
		}
		for qi := range results {
			results[qi] = knn.MergeTopK(results[qi], TopK(decoded[qi], k), k)
		}
	}
	return results, nil
}
