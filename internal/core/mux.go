package core

import (
	"fmt"

	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/knn"
)

// MaxMuxSlices is the number of parallel queries one 8-bit symbol stream can
// carry: seven, because the eighth bit distinguishes the special framing
// symbols ("we cannot achieve an 8x improvement because of special symbols
// like the SOF and EOF", §VI-B).
const MaxMuxSlices = 7

// Multiplexed special symbols: bit 7 set marks a special; bits 0..2 select
// which. Data symbols keep bit 7 clear and carry one query bit per slice in
// bits 0..6.
const (
	MuxSOF byte = 0x81
	MuxPad byte = 0x82
	MuxEOF byte = 0x84
)

func muxGuardClass() automata.SymbolClass {
	return mustTernary("1******1")
}

func muxEOFClass() automata.SymbolClass {
	return mustTernary("1****1**")
}

func muxPadClass() automata.SymbolClass {
	return muxEOFClass().Negate()
}

// muxBitClass returns the ternary match for query-slice j carrying value v:
// a data symbol (bit 7 clear) whose j-th bit equals v — the TCAM-style
// ternary encoding of §VI-B.
func muxBitClass(slice int, v bool) automata.SymbolClass {
	pattern := []byte("0*******") // MSB first; bit 7 is position 0
	if v {
		pattern[7-slice] = '1'
	} else {
		pattern[7-slice] = '0'
	}
	c, err := automata.TernaryClass(string(pattern))
	if err != nil {
		panic(err)
	}
	return c
}

// MuxGroup is the §VI-B symbol-stream-multiplexing design: for each dataset
// vector, up to seven replica NFAs are instantiated, each programmed with
// ternary matches that observe a different bit slice of the symbol stream,
// so seven queries are answered per stream pass.
type MuxGroup struct {
	Slices int
	// Reports[v][s] is the reporting state of vector v's slice-s replica.
	Reports [][]automata.ElementID
}

// BuildMux appends the multiplexed kNN automata for ds to net. Replica
// (vector v, slice s) reports with ID v*slices + s.
func BuildMux(net *automata.Network, ds *bitvec.Dataset, l Layout, slices int) *MuxGroup {
	if err := l.Validate(); err != nil {
		panic(err)
	}
	if slices < 1 || slices > MaxMuxSlices {
		panic(fmt.Sprintf("core: mux slices %d out of range [1,%d]", slices, MaxMuxSlices))
	}
	if l.PaperExact {
		panic("core: multiplexing requires the monotonic layout")
	}
	d := l.Dim
	g := &MuxGroup{Slices: slices}
	for vi := 0; vi < ds.Len(); vi++ {
		v := ds.At(vi)
		var vecReports []automata.ElementID
		for s := 0; s < slices; s++ {
			id := int32(vi*slices + s)
			name := func(part string, i int) string {
				return fmt.Sprintf("mux.v%d.s%d.%s%d", vi, s, part, i)
			}
			guard := net.AddSTE(muxGuardClass(),
				automata.WithStart(automata.StartAll), automata.WithName(name("guard", 0)))
			prev := guard
			counter := net.AddCounter(d, automata.CounterPulse, automata.WithName(name("ihd", 0)))
			var matches []automata.ElementID
			for i := 0; i < d; i++ {
				match := net.AddSTE(muxBitClass(s, v.Bit(i)), automata.WithName(name("x", i)))
				net.Connect(prev, match)
				matches = append(matches, match)
				star := net.AddSTE(automata.AllClass(), automata.WithName(name("st", i)))
				net.Connect(prev, star)
				prev = star
			}
			level := matches
			for lvl := 0; lvl < l.CollectorDepth(); lvl++ {
				var next []automata.ElementID
				for lo := 0; lo < len(level); lo += l.CollectorFanIn {
					hi := lo + l.CollectorFanIn
					if hi > len(level) {
						hi = len(level)
					}
					col := net.AddSTE(automata.AllClass(), automata.WithName(name("col", lvl)))
					for _, src := range level[lo:hi] {
						net.Connect(src, col)
					}
					next = append(next, col)
				}
				level = next
			}
			net.ConnectCount(level[0], counter)
			for j := 0; j < l.delaySlack(); j++ {
				dly := net.AddSTE(automata.AllClass(), automata.WithName(name("dly", j)))
				net.Connect(prev, dly)
				prev = dly
			}
			sortSte := net.AddSTE(muxPadClass(), automata.WithName(name("sort", 0)))
			net.Connect(prev, sortSte)
			net.Connect(sortSte, sortSte)
			net.ConnectCount(sortSte, counter)
			eof := net.AddSTE(muxEOFClass(), automata.WithName(name("eof", 0)))
			net.Connect(sortSte, eof)
			net.ConnectReset(eof, counter)
			report := net.AddSTE(automata.AllClass(),
				automata.WithReport(id), automata.WithName(name("rep", 0)))
			net.Connect(counter, report)
			vecReports = append(vecReports, report)
		}
		g.Reports = append(g.Reports, vecReports)
	}
	return g
}

// BuildMuxStream packs queries into multiplexed windows of up to `slices`
// queries each: window w carries queries w*slices .. w*slices+slices-1 in
// bit slices 0..slices-1. Missing tail queries are encoded as zeros and
// ignored at decode time.
func BuildMuxStream(queries []bitvec.Vector, l Layout, slices int) []byte {
	if slices < 1 || slices > MaxMuxSlices {
		panic(fmt.Sprintf("core: mux slices %d out of range [1,%d]", slices, MaxMuxSlices))
	}
	windows := (len(queries) + slices - 1) / slices
	out := make([]byte, 0, windows*l.StreamLen())
	for w := 0; w < windows; w++ {
		out = append(out, MuxSOF)
		for i := 0; i < l.Dim; i++ {
			var sym byte
			for s := 0; s < slices; s++ {
				qi := w*slices + s
				if qi < len(queries) && queries[qi].Bit(i) {
					sym |= 1 << uint(s)
				}
			}
			out = append(out, sym)
		}
		for i := 0; i < l.PadSymbols(); i++ {
			out = append(out, MuxPad)
		}
		out = append(out, MuxEOF)
	}
	return out
}

// DecodeMuxReports converts multiplexed report records into per-query
// neighbor lists for numQueries real queries.
func DecodeMuxReports(reports []automata.Report, l Layout, slices, numQueries, idOffset int) ([][]knn.Neighbor, error) {
	out := make([][]knn.Neighbor, numQueries)
	for _, r := range reports {
		window, off := l.WindowOf(r.Cycle)
		ihd, err := l.IHDFromCycle(off)
		if err != nil {
			return nil, fmt.Errorf("core: mux window %d: %w", window, err)
		}
		vec := int(r.ReportID) / slices
		slice := int(r.ReportID) % slices
		qi := window*slices + slice
		if qi >= numQueries {
			continue // padding slice of the final window
		}
		out[qi] = append(out[qi], knn.Neighbor{ID: idOffset + vec, Dist: l.Dim - ihd})
	}
	for _, ns := range out {
		knn.SortNeighbors(ns)
	}
	return out, nil
}

// MuxThroughputGain returns the query-throughput multiplier of multiplexing
// s slices: s queries per stream pass.
func MuxThroughputGain(s int) float64 { return float64(s) }
