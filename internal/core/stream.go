package core

import (
	"fmt"

	"repro/internal/bitvec"
)

// BuildQueryStream encodes one query vector as a symbol-stream window
// (Fig. 2c): SOF, the d query bits, the ^EOF padding that drives the
// temporal sort, and EOF.
func BuildQueryStream(q bitvec.Vector, l Layout) []byte {
	if q.Dim() != l.Dim {
		panic(fmt.Sprintf("core: query dim %d != layout dim %d", q.Dim(), l.Dim))
	}
	out := make([]byte, 0, l.StreamLen())
	out = append(out, SymSOF)
	for i := 0; i < l.Dim; i++ {
		if q.Bit(i) {
			out = append(out, SymBit1)
		} else {
			out = append(out, SymBit0)
		}
	}
	for i := 0; i < l.PadSymbols(); i++ {
		out = append(out, SymPad)
	}
	out = append(out, SymEOF)
	return out
}

// BuildStream concatenates the query windows of a batch into one symbol
// stream, the way the host drives the AP (§II-B).
func BuildStream(queries []bitvec.Vector, l Layout) []byte {
	out := make([]byte, 0, len(queries)*l.StreamLen())
	for _, q := range queries {
		out = append(out, BuildQueryStream(q, l)...)
	}
	return out
}

// WindowOf returns which query window a stream cycle belongs to and the
// offset within it.
func (l Layout) WindowOf(cycle int) (query, offset int) {
	n := l.StreamLen()
	return cycle / n, cycle % n
}
